// End-to-end tests of the slimsim command-line tool (run as a subprocess).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

#include <unistd.h>

#include "models/failover.hpp"
#include "models/gps.hpp"
#include "models/sensor_filter.hpp"
#include "support/json.hpp"
#include "support/metrics_text.hpp"

namespace {

#ifndef SLIMSIM_CLI_PATH
#error "SLIMSIM_CLI_PATH must be defined by the build"
#endif

struct CliResult {
    int exit_code = -1;
    std::string output;
};

CliResult run_cli(const std::string& args) {
    const std::string cmd = std::string(SLIMSIM_CLI_PATH) + " " + args + " 2>&1";
    std::FILE* pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    CliResult res;
    std::array<char, 4096> buf{};
    while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) res.output += buf.data();
    const int status = pclose(pipe);
    res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return res;
}

class CliTest : public ::testing::Test {
protected:
    // ctest may run several test processes in the same directory
    // concurrently; use process-unique fixture file names.
    static std::string gps_file() {
        static const std::string name =
            "cli_gps_" + std::to_string(getpid()) + ".slim";
        return name;
    }
    static std::string sf_file() {
        static const std::string name = "cli_sf_" + std::to_string(getpid()) + ".slim";
        return name;
    }
    static std::string panic_file() {
        static const std::string name =
            "cli_panic_" + std::to_string(getpid()) + ".slim";
        return name;
    }
    static std::string failover_file() {
        static const std::string name =
            "cli_failover_" + std::to_string(getpid()) + ".slim";
        return name;
    }

    static void SetUpTestSuite() {
        std::ofstream(gps_file()) << slimsim::models::gps_source();
        std::ofstream(sf_file()) << slimsim::models::sensor_filter_source(1);
        std::ofstream(panic_file()) << slimsim::models::sensor_filter_panic_source();
        std::ofstream(failover_file()) << slimsim::models::failover_source();
    }

    static void TearDownTestSuite() {
        std::remove(gps_file().c_str());
        std::remove(sf_file().c_str());
        std::remove(panic_file().c_str());
        std::remove(failover_file().c_str());
    }

    static std::string read_file(const std::string& path) {
        std::ifstream in(path, std::ios::binary);
        EXPECT_TRUE(in.is_open()) << path;
        return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
    }
};

TEST_F(CliTest, HelpExitsCleanly) {
    const CliResult res = run_cli("--help");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("usage:"), std::string::npos);
    EXPECT_NE(res.output.find("--strategy"), std::string::npos);
}

TEST_F(CliTest, MissingModelShowsUsage) {
    const CliResult res = run_cli("");
    EXPECT_EQ(res.exit_code, 2);
}

TEST_F(CliTest, ValidateMode) {
    const CliResult res = run_cli(gps_file() + "  --validate");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("validation ok"), std::string::npos);
    EXPECT_NE(res.output.find("2 processes"), std::string::npos);
}

TEST_F(CliTest, EstimateWithGoalAndBound) {
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound '30 min' --eps 0.05 "
                "--strategy asap --seed 3");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("P( <> [0,1800] gps.measurement )"), std::string::npos);
    EXPECT_NE(res.output.find("strategy asap"), std::string::npos);
}

TEST_F(CliTest, EstimateWithPattern) {
    const CliResult res = run_cli(
        gps_file() +
        " --property 'probability of reaching gps.measurement within 30 min' "
        "--eps 0.05");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("~="), std::string::npos);
}

TEST_F(CliTest, PathsMode) {
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --paths 2 --seed 5");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("--- path 1:"), std::string::npos);
    EXPECT_NE(res.output.find("--- path 2:"), std::string::npos);
    EXPECT_NE(res.output.find("path ends:"), std::string::npos);
}

TEST_F(CliTest, TraceFileMode) {
    const std::string trace = "cli_trace_" + std::to_string(getpid()) + ".json";
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --eps 0.1 "
                "--seed 5 --trace " + trace);
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("wrote execution trace"), std::string::npos);
    std::ifstream in(trace);
    ASSERT_TRUE(in.good());
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("sim.path"), std::string::npos);
    std::remove(trace.c_str());
}

TEST_F(CliTest, WitnessMode) {
    const std::string dir = "cli_witness_" + std::to_string(getpid());
    // Bound 60 s sits inside the [10,120] s acquisition window: the default
    // progressive strategy yields both accepting and rejecting paths.
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound 60 --eps 0.1 "
                "--seed 5 --witness " + dir);
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("witness path(s)"), std::string::npos);
    // Both outcomes occur at this bound; each kind is exported as text and
    // as VCD.
    EXPECT_TRUE(std::ifstream(dir + "/accepting-1.txt").good());
    EXPECT_TRUE(std::ifstream(dir + "/accepting-1.vcd").good());
    EXPECT_TRUE(std::ifstream(dir + "/rejecting-1.txt").good());
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

TEST_F(CliTest, ProgressFlag) {
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --eps 0.1 "
                "--seed 5 --progress");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("samples"), std::string::npos);
    EXPECT_NE(res.output.find("p^ ="), std::string::npos);
}

TEST_F(CliTest, CtmcMode) {
    const CliResult res =
        run_cli(sf_file() + "  --goal failed --bound '100 hour' --ctmc");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("ctmc flow: p = 0.77"), std::string::npos);
}

TEST_F(CliTest, CtmcRejectsTimedModel) {
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --ctmc");
    EXPECT_EQ(res.exit_code, 1);
    EXPECT_NE(res.output.find("error:"), std::string::npos);
}

TEST_F(CliTest, HypothesisMode) {
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound '30 min' --test 0.5 "
                "--strategy asap");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("accept (P >= threshold)"), std::string::npos);
}

TEST_F(CliTest, CutSetsMode) {
    const CliResult res =
        run_cli(sf_file() + "  --goal 'sensor0.reading > 5' --bound 3600 --cut-sets 1");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("sensor0:failed"), std::string::npos);
}

TEST_F(CliTest, ParallelWorkers) {
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --eps 0.05 "
                "--workers 3 --seed 9");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("~="), std::string::npos);
}

TEST_F(CliTest, InfoMode) {
    const CliResult res = run_cli(gps_file() + "  --info");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("instances (2):"), std::string::npos);
    EXPECT_NE(res.output.find("fault injections: 3"), std::string::npos);
}

TEST_F(CliTest, PrintMode) {
    const CliResult res = run_cli(gps_file() + "  --print");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("system implementation GPS.Imp"), std::string::npos);
    EXPECT_NE(res.output.find("fault injections"), std::string::npos);
    // The normalized output is itself a valid model.
    std::ofstream("cli_printed_" + std::to_string(getpid()) + ".slim" "") << res.output;
    const CliResult revalidate = run_cli("cli_printed_" + std::to_string(getpid()) + ".slim" " --validate");
    EXPECT_EQ(revalidate.exit_code, 0);
}

TEST_F(CliTest, VcdMode) {
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --vcd cli_path.vcd "
                "--seed 4 --strategy asap");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("wrote cli_path.vcd"), std::string::npos);
    std::ifstream vcd("cli_path.vcd");
    ASSERT_TRUE(vcd.good());
    std::string first;
    std::getline(vcd, first);
    EXPECT_NE(first.find("$comment"), std::string::npos);
}

TEST_F(CliTest, InvalidEpsFailsWithDiagnostic) {
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --eps 1.5");
    EXPECT_EQ(res.exit_code, 1);
    EXPECT_NE(res.output.find("error:"), std::string::npos);
    EXPECT_NE(res.output.find("--eps"), std::string::npos);
    EXPECT_NE(res.output.find("(0,1)"), std::string::npos);
}

TEST_F(CliTest, InvalidDeltaFailsWithDiagnostic) {
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --delta 0");
    EXPECT_EQ(res.exit_code, 1);
    EXPECT_NE(res.output.find("error:"), std::string::npos);
    EXPECT_NE(res.output.find("--delta"), std::string::npos);
    // Non-numeric input gets the same one-line diagnostic, not a stod abort.
    const CliResult junk =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --delta banana");
    EXPECT_EQ(junk.exit_code, 1);
    EXPECT_NE(junk.output.find("--delta"), std::string::npos);
}

TEST_F(CliTest, CurveGridMode) {
    const std::string csv = "cli_curve_" + std::to_string(getpid()) + ".csv";
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound '30 min' --eps 0.1 "
                "--seed 3 --curve-grid 4 --curve-csv " + csv);
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("curve over 4 bounds"), std::string::npos);
    EXPECT_NE(res.output.find("wrote curve CSV"), std::string::npos);
    std::ifstream in(csv);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "bound,estimate,successes,samples");
    std::size_t rows = 0;
    for (std::string line; std::getline(in, line);) {
        if (!line.empty()) ++rows;
    }
    EXPECT_EQ(rows, 4u);
    std::remove(csv.c_str());
}

TEST_F(CliTest, CurveExplicitBounds) {
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --eps 0.1 "
                "--seed 3 --curve '600,1200,30 min'");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("curve over 3 bounds"), std::string::npos);
    EXPECT_NE(res.output.find("u = 1800"), std::string::npos);
}

TEST_F(CliTest, CurveRejectsConflictsAndBadBands) {
    const CliResult both =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --eps 0.1 "
                "--curve 600 --curve-grid 4");
    EXPECT_EQ(both.exit_code, 1);
    EXPECT_NE(both.output.find("error:"), std::string::npos);
    const CliResult band =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --eps 0.1 "
                "--curve-grid 4 --curve-band nope");
    EXPECT_EQ(band.exit_code, 1);
    EXPECT_NE(band.output.find("unknown curve band"), std::string::npos);
    const CliResult csv_alone =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --eps 0.1 "
                "--curve-csv out.csv");
    EXPECT_EQ(csv_alone.exit_code, 1);
}

TEST_F(CliTest, CoverageSummaryFlagsDeadModel) {
    // Under ASAP the panic transition can never fire (the monitor reacts to
    // the first failure with zero delay), so the coverage summary must warn
    // about it and the unreached panic mode.
    const CliResult res =
        run_cli(panic_file() + "  --goal panicked --bound '4 hour' --strategy asap "
                "--delta 0.1 --eps 0.05 --seed 7 --coverage");
    EXPECT_EQ(res.exit_code, 0);
    EXPECT_NE(res.output.find("coverage:"), std::string::npos);
    EXPECT_NE(res.output.find("never fired"), std::string::npos);
    EXPECT_NE(res.output.find("never reached"), std::string::npos);
    EXPECT_NE(res.output.find("panic"), std::string::npos);
}

TEST_F(CliTest, CoverageOutputsDeterministicAcrossWorkerCounts) {
    // The coverage CSV, the JSON coverage section, and the deterministic
    // prefix of the Prometheus exposition must be byte-identical for
    // workers 1, 2 and 4 at a fixed seed.
    const std::string tag = std::to_string(getpid());
    struct Artifacts {
        std::string csv, prom_prefix, coverage_json;
    };
    auto run_with_workers = [&](int workers) {
        const std::string csv = "cli_cov_" + tag + ".csv";
        const std::string prom = "cli_cov_" + tag + ".prom";
        const std::string json = "cli_cov_" + tag + ".json";
        const CliResult res = run_cli(
            panic_file() + "  --goal panicked --bound '4 hour' --delta 0.1 --eps 0.05 "
            "--seed 7 --workers " + std::to_string(workers) + " --coverage " + csv +
            " --metrics-out " + prom + " --json " + json);
        EXPECT_EQ(res.exit_code, 0) << res.output;
        Artifacts a;
        a.csv = read_file(csv);
        a.prom_prefix =
            slimsim::telemetry::prometheus_deterministic_section(read_file(prom));
        const auto doc = slimsim::json::Value::parse(read_file(json));
        a.coverage_json = doc.at("coverage").dump(2);
        std::remove(csv.c_str());
        std::remove(prom.c_str());
        std::remove(json.c_str());
        return a;
    };
    const Artifacts one = run_with_workers(1);
    EXPECT_NE(one.csv.find("kind,name,count,occupancy_seconds"), std::string::npos);
    EXPECT_NE(one.prom_prefix.find("slimsim_coverage_paths_total"), std::string::npos);
    for (const int workers : {2, 4}) {
        const Artifacts w = run_with_workers(workers);
        EXPECT_EQ(w.csv, one.csv) << workers << " workers";
        EXPECT_EQ(w.prom_prefix, one.prom_prefix) << workers << " workers";
        EXPECT_EQ(w.coverage_json, one.coverage_json) << workers << " workers";
    }
}

TEST_F(CliTest, CoverageUnwritablePathFailsWithDiagnostic) {
    const CliResult cov =
        run_cli(panic_file() + "  --goal panicked --bound 3600 --coverage "
                "/nonexistent-dir/cov.csv");
    EXPECT_EQ(cov.exit_code, 1);
    EXPECT_NE(cov.output.find("--coverage"), std::string::npos);
    EXPECT_NE(cov.output.find("cannot open"), std::string::npos);

    const CliResult prom =
        run_cli(panic_file() + "  --goal panicked --bound 3600 --metrics-out "
                "/nonexistent-dir/run.prom");
    EXPECT_EQ(prom.exit_code, 1);
    EXPECT_NE(prom.output.find("--metrics-out"), std::string::npos);
    EXPECT_NE(prom.output.find("cannot open"), std::string::npos);
}

TEST_F(CliTest, CoverageRejectedOutsideEstimationModes) {
    const CliResult res =
        run_cli(sf_file() + "  --goal failed --bound '100 hour' --ctmc --coverage");
    EXPECT_EQ(res.exit_code, 1);
    EXPECT_NE(res.output.find("--coverage"), std::string::npos);
}

TEST_F(CliTest, CountFlagsRejectBadValuesWithDiagnostics) {
    // --workers 0 used to fall through to a silent sequential run; now every
    // count flag validates at the CLI boundary and names itself.
    const CliResult zero =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --workers 0");
    EXPECT_EQ(zero.exit_code, 1);
    EXPECT_NE(zero.output.find("error:"), std::string::npos);
    EXPECT_NE(zero.output.find("--workers"), std::string::npos);
    const CliResult junk =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --workers banana");
    EXPECT_EQ(junk.exit_code, 1);
    EXPECT_NE(junk.output.find("--workers"), std::string::npos);
    const CliResult negative =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --max-samples -5");
    EXPECT_EQ(negative.exit_code, 1);
    EXPECT_NE(negative.output.find("--max-samples"), std::string::npos);
    const CliResult paths =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --paths 0");
    EXPECT_EQ(paths.exit_code, 1);
    EXPECT_NE(paths.output.find("--paths"), std::string::npos);
}

TEST_F(CliTest, BudgetExhaustionWarnsButExitsZero) {
    const std::string json = "cli_budget_" + std::to_string(getpid()) + ".json";
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --eps 0.02 "
                "--seed 3 --max-samples 100 --json " + json);
    EXPECT_EQ(res.exit_code, 0) << res.output;
    EXPECT_NE(res.output.find("warning: run budget_exhausted"), std::string::npos);
    EXPECT_NE(res.output.find("--max-samples"), std::string::npos);
    const auto doc = slimsim::json::Value::parse(read_file(json));
    EXPECT_EQ(doc.at("run_status").at("status").as_string(), "budget_exhausted");
    EXPECT_EQ(doc.at("result").at("samples").as_int(), 100);
    EXPECT_GT(doc.at("run_status").at("achieved_half_width").as_double(), 0.0);
    std::remove(json.c_str());
}

TEST_F(CliTest, CheckpointResumeReproducesTheFullRun) {
    const std::string tag = std::to_string(getpid());
    const std::string ref_ck = "cli_ref_" + tag + ".ckpt";
    const std::string ref_json = "cli_ref_" + tag + ".json";
    const std::string cut_ck = "cli_cut_" + tag + ".ckpt";
    const std::string res_json = "cli_res_" + tag + ".json";
    const std::string common =
        gps_file() + "  --goal gps.measurement --bound 1800 --eps 0.05 --seed 9 ";

    // Reference: uninterrupted run (a --checkpoint flag forces the same
    // per-path RNG streams the resumed run uses).
    const CliResult ref = run_cli(common + "--checkpoint " + ref_ck + " --json " +
                                  ref_json);
    EXPECT_EQ(ref.exit_code, 0) << ref.output;
    EXPECT_NE(ref.output.find("wrote checkpoint"), std::string::npos);

    // Interrupted at 80 samples, then resumed with a different worker count.
    const CliResult cut = run_cli(common + "--max-samples 80 --checkpoint " + cut_ck);
    EXPECT_EQ(cut.exit_code, 0) << cut.output;
    EXPECT_NE(cut.output.find("warning: run budget_exhausted"), std::string::npos);
    const CliResult resumed =
        run_cli(common + "--workers 4 --resume " + cut_ck + " --json " + res_json);
    EXPECT_EQ(resumed.exit_code, 0) << resumed.output;

    const auto ref_doc = slimsim::json::Value::parse(read_file(ref_json));
    const auto res_doc = slimsim::json::Value::parse(read_file(res_json));
    EXPECT_EQ(res_doc.at("result").dump(0), ref_doc.at("result").dump(0));
    EXPECT_EQ(res_doc.at("terminals").dump(0), ref_doc.at("terminals").dump(0));
    for (const std::string& f : {ref_ck, ref_json, cut_ck, res_json}) {
        std::remove(f.c_str());
    }
}

TEST_F(CliTest, ResumeRejectsAMismatchedRun) {
    const std::string tag = std::to_string(getpid());
    const std::string ck = "cli_mismatch_" + tag + ".ckpt";
    const CliResult make =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --eps 0.05 "
                "--seed 9 --max-samples 20 --checkpoint " + ck);
    EXPECT_EQ(make.exit_code, 0) << make.output;
    const CliResult wrong =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --eps 0.05 "
                "--seed 10 --resume " + ck);
    EXPECT_EQ(wrong.exit_code, 1);
    EXPECT_NE(wrong.output.find("error:"), std::string::npos);
    EXPECT_NE(wrong.output.find("--seed"), std::string::npos);
    std::remove(ck.c_str());
}

TEST_F(CliTest, FaultPolicyGovernsZenoModels) {
    // An immediate self-loop: every path trips the Zeno guard.
    const std::string zeno = "cli_zeno_" + std::to_string(getpid()) + ".slim";
    std::ofstream(zeno) << R"(
        root S.I;
        system S
        features never: out data port bool default false;
        end S;
        system implementation S.I
        modes a: initial mode;
        transitions a -[]-> a;
        end S.I;
    )";
    const std::string common =
        zeno + " --goal never --bound 1 --strategy asap --delta 0.1 --eps 0.1 "
               "--max-path-steps 100 ";
    // Default fail-fast: the path fault aborts the run with one diagnostic.
    const CliResult failfast = run_cli(common);
    EXPECT_EQ(failfast.exit_code, 1);
    EXPECT_NE(failfast.output.find("error:"), std::string::npos);
    EXPECT_NE(failfast.output.find("Zeno"), std::string::npos);
    // Tolerate: error-tagged samples, a degraded-run warning, exit 0.
    const CliResult tolerate = run_cli(common + "--fault tolerate --max-path-errors 5");
    EXPECT_EQ(tolerate.exit_code, 0) << tolerate.output;
    EXPECT_NE(tolerate.output.find("warning: run degraded"), std::string::npos);
    EXPECT_NE(tolerate.output.find("--max-path-errors"), std::string::npos);
    std::remove(zeno.c_str());
}

TEST_F(CliTest, HardeningFlagsRejectedOutsideEstimationModes) {
    const CliResult ctmc =
        run_cli(sf_file() + "  --goal failed --bound '100 hour' --ctmc --max-samples 10");
    EXPECT_EQ(ctmc.exit_code, 1);
    EXPECT_NE(ctmc.output.find("estimation-mode"), std::string::npos);
    const CliResult every =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 "
                "--checkpoint-every 10");
    EXPECT_EQ(every.exit_code, 1);
    EXPECT_NE(every.output.find("--checkpoint-every"), std::string::npos);
}

TEST_F(CliTest, SplittingModeEstimatesAndReports) {
    const std::string json = "cli_split_" + std::to_string(getpid()) + ".json";
    const CliResult res = run_cli(
        failover_file() +
        "  --goal failed --bound '2 hour' --seed 3 --split-roots 256 "
        "--split-factor 4 --split '(if primary.broken then 1 else 0) + "
        "(if backup.broken then 1 else 0)' --json " + json);
    EXPECT_EQ(res.exit_code, 0) << res.output;
    EXPECT_NE(res.output.find("importance splitting"), std::string::npos);
    EXPECT_NE(res.output.find("p^ ="), std::string::npos);
    const auto doc = slimsim::json::Value::parse(read_file(json));
    EXPECT_EQ(doc.at("mode").as_string(), "estimate-splitting");
    EXPECT_EQ(doc.at("splitting").at("roots").as_int(), 256);
    EXPECT_EQ(doc.at("splitting").at("factor").as_int(), 4);
    EXPECT_GT(doc.at("splitting").at("total_paths").as_int(), 256);
    std::remove(json.c_str());
}

TEST_F(CliTest, SplittingDeterministicAcrossWorkerCounts) {
    const std::string args =
        failover_file() +
        "  --goal failed --bound '2 hour' --seed 9 --split-roots 256 "
        "--split '(if primary.broken then 1 else 0) + "
        "(if backup.broken then 1 else 0)'";
    const CliResult seq = run_cli(args);
    const CliResult par = run_cli(args + " --workers 4");
    EXPECT_EQ(seq.exit_code, 0) << seq.output;
    EXPECT_EQ(par.exit_code, 0) << par.output;
    const auto headline = [](const std::string& out) {
        const std::size_t pos = out.find("p^ =");
        EXPECT_NE(pos, std::string::npos) << out;
        return out.substr(pos, out.find('\n', pos) - pos);
    };
    EXPECT_EQ(headline(seq.output), headline(par.output));
}

TEST_F(CliTest, SplittingAutoMode) {
    const std::string json = "cli_split_auto_" + std::to_string(getpid()) + ".json";
    const CliResult res = run_cli(
        failover_file() +
        "  --goal failed --bound '2 hour' --seed 5 --split-auto "
        "--split-roots 256 --split-pilot 64 --json " + json);
    EXPECT_EQ(res.exit_code, 0) << res.output;
    const auto doc = slimsim::json::Value::parse(read_file(json));
    EXPECT_EQ(doc.at("splitting").at("level").as_string(), "auto");
    EXPECT_EQ(doc.at("splitting").at("pilot_paths").as_int(), 64);
    // The pilot's coverage/occupancy profile rides in the report.
    EXPECT_NE(doc.find("coverage"), nullptr);
    std::remove(json.c_str());
}

TEST_F(CliTest, SplittingBadLevelExpressionFailsWithOneLineDiagnostic) {
    for (const char* bad : {"'ghost + 1'", "'primary.broken'", "'1 +'"}) {
        const CliResult res = run_cli(
            failover_file() + "  --goal failed --bound '2 hour' --split " +
            std::string(bad));
        EXPECT_EQ(res.exit_code, 1) << res.output;
        // Exactly one diagnostic line, prefixed with the flag name — the
        // multi-line resolution summary must have been collapsed.
        std::size_t error_lines = 0;
        std::istringstream lines(res.output);
        for (std::string line; std::getline(lines, line);) {
            if (line.rfind("error:", 0) == 0) {
                ++error_lines;
                EXPECT_EQ(line.rfind("error: --split: ", 0), 0u) << line;
            }
        }
        EXPECT_EQ(error_lines, 1u) << res.output;
    }
}

TEST_F(CliTest, SplittingRejectsConflictingModes) {
    const std::string base =
        failover_file() + "  --goal failed --bound '2 hour' --split-auto";
    for (const char* extra :
         {"--ctmc", "--test 0.5", "--curve-grid 4", "--coverage",
          "--witness wdir", "--checkpoint ck.bin", "--resume ck.bin",
          "--split '(if primary.broken then 1 else 0)'"}) {
        const CliResult res = run_cli(base + " " + extra);
        EXPECT_EQ(res.exit_code, 1) << extra << ": " << res.output;
        EXPECT_NE(res.output.find("--split"), std::string::npos) << res.output;
    }
}

TEST_F(CliTest, SplittingPathBudgetWarnsButExitsZero) {
    const std::string json = "cli_split_budget_" + std::to_string(getpid()) + ".json";
    const CliResult res = run_cli(
        failover_file() +
        "  --goal failed --bound '2 hour' --seed 3 --split-roots 4096 "
        "--split-factor 8 --split-max-paths 500 "
        "--split '(if primary.broken then 1 else 0) + "
        "(if backup.broken then 1 else 0)' --json " + json);
    EXPECT_EQ(res.exit_code, 0) << res.output;
    EXPECT_NE(res.output.find("warning: run budget_exhausted"), std::string::npos)
        << res.output;
    EXPECT_NE(res.output.find("--split-max-paths"), std::string::npos);
    const auto doc = slimsim::json::Value::parse(read_file(json));
    EXPECT_EQ(doc.at("run_status").at("status").as_string(), "budget_exhausted");
    EXPECT_LE(doc.at("splitting").at("total_paths").as_int(), 500);
    std::remove(json.c_str());
}

// Runs an arbitrary shell pipeline and extracts the CLI's exit code from a
// trailing "CLI_EXIT:N" marker (popen only reports the pipeline's status).
CliResult run_shell(const std::string& pipeline) {
    std::FILE* pipe = popen(pipeline.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    CliResult res;
    std::array<char, 4096> buf{};
    while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) res.output += buf.data();
    pclose(pipe);
    const std::size_t marker = res.output.rfind("CLI_EXIT:");
    if (marker != std::string::npos)
        res.exit_code = std::atoi(res.output.c_str() + marker + 9);
    return res;
}

// A model whose every path self-loops for ~4M discrete steps (~1 s): the
// interrupt flag is only polled between samples, so a signal sent mid-run
// reliably lands inside a path — wide deterministic windows for the
// signal-hardening tests below.
std::string slow_path_file() {
    static const std::string name = "cli_slow_" + std::to_string(getpid()) + ".slim";
    static const bool written = [] {
        std::ofstream(name) << R"(
            root S.I;
            system S
            features broken: out data port bool default false;
            end S;
            system implementation S.I end S.I;
            error model EM
            features ok: initial state; bad: error state;
            end EM;
            error model implementation EM.I
            events f: error event occurrence poisson 2000.0 per sec;
            transitions ok -[f]-> ok;
            end EM.I;
            fault injections
              component root uses error model EM.I;
              component root in state bad effect broken := true;
            end fault injections;
        )";
        return true;
    }();
    (void)written;
    return name;
}

TEST_F(CliTest, SigtermDrainsToInterruptedRunWithArtifacts) {
    const std::string json = "cli_term_" + std::to_string(getpid()) + ".json";
    const std::string cmd = std::string(SLIMSIM_CLI_PATH) + " " + slow_path_file() +
                            " --goal broken --bound 2000 --eps 0.05 --seed 1"
                            " --max-path-steps 100000000 --json " + json +
                            " 2>&1 & pid=$!; sleep 0.3; kill -TERM $pid;"
                            " wait $pid; echo CLI_EXIT:$?";
    const CliResult res = run_shell(cmd);
    EXPECT_EQ(res.exit_code, 0) << res.output;
    EXPECT_NE(res.output.find("warning: run interrupted"), std::string::npos)
        << res.output;
    const auto doc = slimsim::json::Value::parse(read_file(json));
    EXPECT_EQ(doc.at("run_status").at("status").as_string(), "interrupted");
    std::remove(json.c_str());
}

TEST_F(CliTest, SecondSigtermAbortsImmediatelyWith130) {
    const std::string json = "cli_term2_" + std::to_string(getpid()) + ".json";
    // The second signal arrives while the first one's drain is still inside
    // the current (~1 s) path; the handler _exit(130)s without artifacts.
    const std::string cmd = std::string(SLIMSIM_CLI_PATH) + " " + slow_path_file() +
                            " --goal broken --bound 2000 --eps 0.05 --seed 1"
                            " --max-path-steps 100000000 --json " + json +
                            " 2>&1 & pid=$!; sleep 0.3; kill -TERM $pid;"
                            " sleep 0.05; kill -TERM $pid 2>/dev/null;"
                            " wait $pid; echo CLI_EXIT:$?";
    const CliResult res = run_shell(cmd);
    EXPECT_EQ(res.exit_code, 130) << res.output;
    EXPECT_FALSE(std::filesystem::exists(json));
    std::remove(json.c_str());
}

TEST_F(CliTest, CorruptCheckpointYieldsOneLineResumeError) {
    const std::string tag = std::to_string(getpid());
    const std::string ck = "cli_corrupt_" + tag + ".ckpt";
    const CliResult make =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --eps 0.05 "
                "--seed 9 --max-samples 20 --checkpoint " + ck);
    ASSERT_EQ(make.exit_code, 0) << make.output;

    std::string bytes = read_file(ck);
    ASSERT_GT(bytes.size(), 8u);
    bytes[bytes.size() / 2] ^= 0x5a; // flip a byte in the middle
    std::ofstream(ck, std::ios::binary | std::ios::trunc) << bytes;

    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --eps 0.05 "
                "--seed 9 --resume " + ck);
    EXPECT_EQ(res.exit_code, 1) << res.output;
    EXPECT_NE(res.output.find("error: --resume"), std::string::npos) << res.output;
    // One diagnostic line, not an unhandled-exception dump.
    std::size_t error_lines = 0;
    std::istringstream lines(res.output);
    for (std::string line; std::getline(lines, line);)
        if (line.rfind("error:", 0) == 0) ++error_lines;
    EXPECT_EQ(error_lines, 1u) << res.output;
    EXPECT_EQ(res.output.find("terminate"), std::string::npos) << res.output;
    std::remove(ck.c_str());
}

TEST_F(CliTest, ProcessesFlagRunsSupervisedAndReportsIt) {
    const std::string json = "cli_procs_" + std::to_string(getpid()) + ".json";
    const CliResult res =
        run_cli(gps_file() + "  --goal gps.measurement --bound 1800 --eps 0.05 "
                "--seed 9 --processes 2 --json " + json);
    EXPECT_EQ(res.exit_code, 0) << res.output;
    const auto doc = slimsim::json::Value::parse(read_file(json));
    EXPECT_EQ(doc.at("version").as_int(), 6);
    EXPECT_EQ(doc.at("supervision").at("processes").as_int(), 2);
    EXPECT_EQ(doc.at("supervision").at("restarts").as_int(), 0);
    std::remove(json.c_str());
}

TEST_F(CliTest, SupervisionFlagsRequireProcesses) {
    for (const char* extra :
         {"--worker-timeout 5", "--worker-retries 2", "--inject worker-crash@3"}) {
        const CliResult res =
            run_cli(gps_file() + "  --goal gps.measurement --bound 1800 " + extra);
        EXPECT_EQ(res.exit_code, 1) << extra;
        EXPECT_NE(res.output.find("--processes"), std::string::npos) << res.output;
    }
}

TEST_F(CliTest, ProcessesRejectsConflictingModes) {
    const std::string base =
        gps_file() + "  --goal gps.measurement --bound 1800 --processes 2 ";
    for (const char* extra : {"--coverage", "--ctmc", "--test 0.5"}) {
        const CliResult res = run_cli(base + extra);
        EXPECT_EQ(res.exit_code, 1) << extra << ": " << res.output;
        EXPECT_NE(res.output.find("--processes"), std::string::npos) << res.output;
    }
}

TEST_F(CliTest, UnknownOptionFails) {
    const CliResult res = run_cli(gps_file() + "  --frobnicate");
    EXPECT_EQ(res.exit_code, 1);
    EXPECT_NE(res.output.find("unknown option"), std::string::npos);
}

TEST_F(CliTest, MissingFileFails) {
    const CliResult res = run_cli("no_such_model.slim --validate");
    EXPECT_EQ(res.exit_code, 1);
    EXPECT_NE(res.output.find("cannot open"), std::string::npos);
}

} // namespace
