#include "sim/hypothesis.hpp"

#include <gtest/gtest.h>

#include "stat/generators.hpp"

namespace slimsim::sim {
namespace {

/// P(broken within 1 s) = 1 - exp(-rate): ~0.632 at rate 1.
constexpr const char* kFaultModel = R"(
    root S.I;
    system S
    features broken: out data port bool default false;
    end S;
    system implementation S.I end S.I;
    error model EM
    features ok: initial state; bad: error state;
    end EM;
    error model implementation EM.I
    events f: error event occurrence poisson 1 per sec;
    transitions ok -[f]-> bad;
    end EM.I;
    fault injections
      component root uses error model EM.I;
      component root in state bad effect broken := true;
    end fault injections;
)";

struct HypothesisTest : ::testing::Test {
    eda::Network net = eda::build_network_from_source(kFaultModel);
    PathFormula prop = make_reachability(net.model(), "broken", 1.0);
    // true p ~ 0.632
};

TEST_F(HypothesisTest, AcceptsWhenWellAboveThreshold) {
    const HypothesisResult res =
        test_hypothesis(net, prop, StrategyKind::Progressive, 0.4, 1);
    EXPECT_EQ(res.verdict, HypothesisVerdict::AcceptAbove);
    EXPECT_GT(res.samples, 0u);
}

TEST_F(HypothesisTest, RejectsWhenWellBelowThreshold) {
    const HypothesisResult res =
        test_hypothesis(net, prop, StrategyKind::Progressive, 0.9, 1);
    EXPECT_EQ(res.verdict, HypothesisVerdict::AcceptBelow);
}

TEST_F(HypothesisTest, NeedsFarFewerSamplesThanEstimation) {
    // Deciding "p >= 0.4" vs estimating p to eps=0.01: SPRT should be
    // orders of magnitude cheaper for a clear-cut case.
    const HypothesisResult res =
        test_hypothesis(net, prop, StrategyKind::Progressive, 0.4, 7);
    const std::size_t ch = stat::ChernoffHoeffding::sample_count(0.01, 0.01);
    EXPECT_LT(res.samples, ch / 20);
}

TEST_F(HypothesisTest, InconclusiveWithinIndifferenceRegion) {
    // Threshold placed at the true probability with a tiny budget: the SPRT
    // walks inside the indifference region and cannot decide.
    HypothesisOptions opt;
    opt.max_samples = 50;
    opt.indifference = 0.001;
    const HypothesisResult res =
        test_hypothesis(net, prop, StrategyKind::Progressive, 0.632, 3, opt);
    EXPECT_EQ(res.verdict, HypothesisVerdict::Inconclusive);
    EXPECT_EQ(res.samples, 50u);
}

TEST_F(HypothesisTest, DeterministicInSeed) {
    const HypothesisResult a =
        test_hypothesis(net, prop, StrategyKind::Progressive, 0.5, 42);
    const HypothesisResult b =
        test_hypothesis(net, prop, StrategyKind::Progressive, 0.5, 42);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.verdict, b.verdict);
}

TEST_F(HypothesisTest, ReportsParameters) {
    HypothesisOptions opt;
    opt.indifference = 0.05;
    opt.delta = 0.02;
    const HypothesisResult res =
        test_hypothesis(net, prop, StrategyKind::Asap, 0.3, 5, opt);
    EXPECT_DOUBLE_EQ(res.threshold, 0.3);
    EXPECT_DOUBLE_EQ(res.indifference, 0.05);
    EXPECT_DOUBLE_EQ(res.delta, 0.02);
    EXPECT_EQ(res.strategy, "asap");
    EXPECT_NE(res.to_string().find("accept"), std::string::npos);
}

// Error-rate sweep: over repeated experiments at a clear margin, the SPRT's
// wrong-decision frequency stays near/below delta.
class SprtErrorRate : public ::testing::TestWithParam<double> {};

TEST_P(SprtErrorRate, WrongDecisionsAreRare) {
    const eda::Network net = eda::build_network_from_source(kFaultModel);
    const PathFormula prop = make_reachability(net.model(), "broken", 1.0);
    const double threshold = GetParam(); // true p ~ 0.632
    HypothesisOptions opt;
    opt.delta = 0.05;
    opt.indifference = 0.05;
    int wrong = 0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
        const HypothesisResult res = test_hypothesis(
            net, prop, StrategyKind::Progressive, threshold,
            1000 + static_cast<std::uint64_t>(t), opt);
        const bool truth_above = 0.632 >= threshold;
        if ((res.verdict == HypothesisVerdict::AcceptAbove) != truth_above &&
            res.verdict != HypothesisVerdict::Inconclusive) {
            ++wrong;
        }
    }
    EXPECT_LE(wrong, 6); // ~delta * trials with slack
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SprtErrorRate, ::testing::Values(0.45, 0.8));

} // namespace
} // namespace slimsim::sim
