// Tests of the model coverage, occupancy & decision profiler: the stable
// element numbering (eda::ElementIndex), shard recording + deterministic
// merging, the strategy-sensitivity scenario (a goal unreachable under ASAP
// but reached under Progressive, with dead-model warnings), byte-identity
// across worker counts, the CSV rendering and the Prometheus text
// exposition.
#include "sim/coverage.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/analysis.hpp"
#include "models/sensor_filter.hpp"
#include "support/diagnostics.hpp"
#include "support/metrics_text.hpp"

namespace slimsim {
namespace {

class CoverageTest : public ::testing::Test {
protected:
    CoverageTest()
        : net(eda::build_network_from_source(models::sensor_filter_panic_source(),
                                             "sensor_filter_panic.slim")) {}

    eda::Network net;
    static constexpr double kBound = 4.0 * 3600.0; // 4 hours

    [[nodiscard]] AnalysisRequest base_request(sim::StrategyKind strategy) const {
        AnalysisRequest req;
        req.property = sim::make_reachability(net.model(),
                                              models::sensor_filter_panic_goal(), kBound);
        req.model_label = "sensor_filter_panic.slim";
        req.strategy = strategy;
        req.delta = 0.1;
        req.eps = 0.05;
        req.seed = 7;
        req.coverage = true;
        return req;
    }
};

TEST_F(CoverageTest, ElementIndexNumbersModelElements) {
    const eda::ElementIndex index(net.model());
    // Monitor modes (m_0_0, dead, panic) plus two error models (ok, failed).
    EXPECT_GE(index.mode_count(), 7u);
    // Three monitor transitions plus one fault transition per error model.
    EXPECT_GE(index.transition_count(), 5u);
    EXPECT_EQ(index.alternative_count(), index.transition_count()); // no sync actions

    std::set<std::string> mode_names;
    for (std::uint32_t id = 0; id < index.mode_count(); ++id) {
        EXPECT_TRUE(mode_names.insert(index.mode_name(id)).second)
            << "duplicate mode name " << index.mode_name(id);
    }
    EXPECT_TRUE(mode_names.count("<root>.panic")) << "root modes use the process name";
    EXPECT_TRUE(mode_names.count("<root>.dead"));

    std::set<std::string> transition_names;
    bool saw_error = false;
    bool saw_monitor = false;
    for (std::uint32_t id = 0; id < index.transition_count(); ++id) {
        EXPECT_TRUE(transition_names.insert(index.transition_name(id)).second)
            << "duplicate transition name " << index.transition_name(id);
        // Destination modes stay within the mode id space.
        EXPECT_LT(index.transition_dst_mode(id), index.mode_count());
        if (index.transition_is_error(id)) saw_error = true;
        if (index.transition_name(id).find("panic") != std::string::npos) {
            saw_monitor = true;
            EXPECT_FALSE(index.transition_is_error(id));
        }
    }
    EXPECT_TRUE(saw_error) << "fault transitions are error-event activations";
    EXPECT_TRUE(saw_monitor);
}

TEST_F(CoverageTest, AsapNeverFiresThePanicTransition) {
    // ASAP reacts to the first failure with zero delay, so the panic guard
    // (both failure signatures at once) never becomes enabled: the goal is
    // unreachable and the profiler must flag the dead transition and mode.
    const AnalysisResult res = run_analysis(net, base_request(sim::StrategyKind::Asap));
    EXPECT_EQ(res.value, 0.0);
    ASSERT_TRUE(res.coverage.enabled);
    EXPECT_GT(res.coverage.paths, 0u);

    const auto never = res.coverage.never_fired_transitions();
    EXPECT_FALSE(never.empty());
    EXPECT_TRUE(std::any_of(never.begin(), never.end(), [](const std::string& n) {
        return n.find("panic") != std::string::npos;
    })) << "the panic transition must be reported as never fired";

    const auto unreached = res.coverage.unreached_modes();
    EXPECT_TRUE(std::find(unreached.begin(), unreached.end(), "<root>.panic") !=
                unreached.end());

    // The warnings surface in the human-readable summary.
    const std::string summary = res.coverage.summary_text();
    EXPECT_NE(summary.find("never fired"), std::string::npos);
    EXPECT_NE(summary.find("never reached"), std::string::npos);
}

TEST_F(CoverageTest, ProgressiveReachesThePanicMode) {
    const AnalysisResult res =
        run_analysis(net, base_request(sim::StrategyKind::Progressive));
    EXPECT_GT(res.value, 0.0);
    ASSERT_TRUE(res.coverage.enabled);

    std::uint64_t panic_fires = 0;
    for (const auto& t : res.coverage.transitions) {
        if (t.name.find("panic") != std::string::npos) panic_fires += t.fires;
    }
    EXPECT_GT(panic_fires, 0u);

    bool panic_reached = false;
    for (const auto& m : res.coverage.modes) {
        if (m.name == "<root>.panic") panic_reached = m.visits > 0;
    }
    EXPECT_TRUE(panic_reached);
    // Under Progressive every element of this model is exercised.
    EXPECT_EQ(res.coverage.covered_elements(), res.coverage.total_elements());
}

TEST_F(CoverageTest, OccupancyAccountsModelTimePerProcess) {
    const AnalysisResult res =
        run_analysis(net, base_request(sim::StrategyKind::Progressive));
    const std::size_t processes = net.model().processes.size();
    double total = 0.0;
    for (const auto& m : res.coverage.modes) total += m.occupancy_seconds;
    EXPECT_GT(total, 0.0);
    // Each process occupies exactly one mode at a time and every path lasts
    // at most the bound (model time), so the total is bounded by
    // paths * processes * bound.
    EXPECT_LE(total, static_cast<double>(res.coverage.paths) *
                         static_cast<double>(processes) * kBound * (1.0 + 1e-9));
}

TEST_F(CoverageTest, DecisionHistogramsAreConsistent) {
    const AnalysisResult res =
        run_analysis(net, base_request(sim::StrategyKind::Progressive));
    ASSERT_FALSE(res.coverage.choice_points.empty());
    for (const auto& cp : res.coverage.choice_points) {
        EXPECT_FALSE(cp.key.empty());
        std::uint64_t sum = 0;
        for (const auto& alt : cp.alternatives) sum += alt.count;
        EXPECT_EQ(sum, cp.decisions) << "choice point " << cp.key;
        EXPECT_GT(cp.decisions, 0u);
    }
    // The double-failure choice point offers the dead and panic transitions
    // simultaneously; under Progressive both alternatives get picked.
    const bool saw_panic_choice = std::any_of(
        res.coverage.choice_points.begin(), res.coverage.choice_points.end(),
        [](const telemetry::CoverageChoicePoint& cp) {
            return cp.key.find("panic") != std::string::npos &&
                   cp.alternatives.size() >= 2;
        });
    EXPECT_TRUE(saw_panic_choice);
}

TEST_F(CoverageTest, SaturationSeriesIsMonotone) {
    const AnalysisResult res =
        run_analysis(net, base_request(sim::StrategyKind::Progressive));
    ASSERT_FALSE(res.coverage.saturation.empty());
    std::uint64_t prev_paths = 0;
    std::uint64_t prev_covered = 0;
    for (const auto& p : res.coverage.saturation) {
        EXPECT_GT(p.paths, prev_paths);
        EXPECT_GE(p.covered, prev_covered);
        prev_paths = p.paths;
        prev_covered = p.covered;
    }
    EXPECT_EQ(res.coverage.saturation.back().paths, res.coverage.paths);
    EXPECT_EQ(res.coverage.saturation.back().covered, res.coverage.covered_elements());
    EXPECT_LE(res.coverage.covered_elements(), res.coverage.total_elements());
}

TEST_F(CoverageTest, ByteIdenticalAcrossWorkerCounts) {
    const AnalysisResult seq =
        run_analysis(net, base_request(sim::StrategyKind::Progressive));
    for (const std::size_t workers : {2u, 4u}) {
        AnalysisRequest par = base_request(sim::StrategyKind::Progressive);
        par.mode = AnalysisMode::EstimateParallel;
        par.workers = workers;
        const AnalysisResult res = run_analysis(net, par);
        EXPECT_EQ(res.value, seq.value) << workers << " workers";
        EXPECT_EQ(res.coverage.paths, seq.coverage.paths);
        // The serialized coverage sections are byte-identical: same counts,
        // same occupancy doubles, same saturation series.
        EXPECT_EQ(res.report.to_json().at("coverage").dump(2),
                  seq.report.to_json().at("coverage").dump(2))
            << workers << " workers";
    }
}

TEST_F(CoverageTest, SequentialMergeMatchesManualReplay) {
    // Drive a shard by hand over the exact per-path streams a coverage run
    // uses and check the merged profile against the engine's.
    const AnalysisRequest req = base_request(sim::StrategyKind::Asap);
    const AnalysisResult res = run_analysis(net, req);
    const eda::ElementIndex index(net.model());
    sim::CoverageShard shard(index);
    const auto strat = sim::make_strategy(sim::StrategyKind::Asap);
    strat->set_observer(&shard);
    sim::SimOptions options;
    options.coverage = true;
    options.coverage_shard = &shard;
    const sim::PathGenerator gen(net, req.property, *strat, options);
    const Rng master(7);
    for (std::uint64_t j = 0; j < res.coverage.paths; ++j) {
        Rng rng = master.split(j);
        (void)gen.run(rng);
    }
    ASSERT_EQ(shard.path_count(), res.coverage.paths);
    const sim::CoverageShard* shard_ptr = &shard;
    const std::uint64_t accepted = res.coverage.paths;
    const telemetry::CoverageReport manual =
        sim::merge_coverage({&shard_ptr, 1}, {&accepted, 1});
    EXPECT_EQ(manual.to_json().dump(2), res.coverage.to_json().dump(2));
}

TEST_F(CoverageTest, CsvRendering) {
    const AnalysisResult res = run_analysis(net, base_request(sim::StrategyKind::Asap));
    const std::string csv = res.coverage.to_csv();
    std::istringstream is(csv);
    std::string header;
    ASSERT_TRUE(std::getline(is, header));
    EXPECT_EQ(header, "kind,name,count,occupancy_seconds");
    std::map<std::string, std::size_t> kinds;
    std::string line;
    while (std::getline(is, line)) {
        ASSERT_FALSE(line.empty());
        // kind is a bare token; the name field after it is RFC 4180 quoted.
        const std::size_t comma = line.find(',');
        ASSERT_NE(comma, std::string::npos);
        ASSERT_EQ(line[comma + 1], '"') << line;
        ++kinds[line.substr(0, comma)];
    }
    EXPECT_EQ(kinds["mode"], res.coverage.modes.size());
    EXPECT_GT(kinds["transition"], 0u);
    EXPECT_GT(kinds["error-event"], 0u);
    EXPECT_GT(kinds["decision"], 0u);
    EXPECT_EQ(kinds["saturation"], res.coverage.saturation.size());
}

/// Prometheus text-format lint: every sample line's family must have been
/// declared by a preceding # TYPE line, and no family is declared twice.
void lint_exposition(const std::string& text) {
    std::set<std::string> declared;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        if (line.rfind("# TYPE ", 0) == 0) {
            std::istringstream fields(line.substr(7));
            std::string family, type;
            ASSERT_TRUE(fields >> family >> type) << line;
            EXPECT_TRUE(type == "gauge" || type == "counter") << line;
            EXPECT_TRUE(declared.insert(family).second)
                << "family declared twice: " << family;
            continue;
        }
        if (line[0] == '#') continue;
        const std::size_t name_end = line.find_first_of("{ ");
        ASSERT_NE(name_end, std::string::npos) << line;
        EXPECT_TRUE(declared.count(line.substr(0, name_end)))
            << "sample before # TYPE: " << line;
    }
}

TEST_F(CoverageTest, PrometheusExpositionIsWellFormed) {
    const AnalysisResult res =
        run_analysis(net, base_request(sim::StrategyKind::Progressive));
    const std::string text = telemetry::prometheus_text(res.report);
    lint_exposition(text);
    EXPECT_NE(text.find("slimsim_coverage_paths_total"), std::string::npos);
    EXPECT_NE(text.find("slimsim_coverage_mode_occupancy_seconds"), std::string::npos);
    EXPECT_NE(text.find("slimsim_coverage_decisions_total"), std::string::npos);
    EXPECT_NE(text.find(telemetry::kMetricsRuntimeMarker), std::string::npos);
    // Counter families end in _total (exposition-format convention).
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("# TYPE ", 0) != 0) continue;
        std::istringstream fields(line.substr(7));
        std::string family, type;
        fields >> family >> type;
        if (type == "counter") {
            EXPECT_TRUE(family.size() > 6 &&
                        family.compare(family.size() - 6, 6, "_total") == 0)
                << family;
        }
    }
}

TEST_F(CoverageTest, PrometheusDeterministicSectionStableAcrossWorkers) {
    const AnalysisResult seq =
        run_analysis(net, base_request(sim::StrategyKind::Progressive));
    AnalysisRequest par = base_request(sim::StrategyKind::Progressive);
    par.mode = AnalysisMode::EstimateParallel;
    par.workers = 3;
    const AnalysisResult res = run_analysis(net, par);
    EXPECT_EQ(telemetry::prometheus_deterministic_section(
                  telemetry::prometheus_text(seq.report)),
              telemetry::prometheus_deterministic_section(
                  telemetry::prometheus_text(res.report)));
}

TEST_F(CoverageTest, RejectedOutsideEstimationModes) {
    AnalysisRequest req = base_request(sim::StrategyKind::Progressive);
    req.mode = AnalysisMode::HypothesisTest;
    req.threshold = 0.1;
    EXPECT_THROW((void)run_analysis(net, req), Error);

    AnalysisRequest par = base_request(sim::StrategyKind::Progressive);
    par.mode = AnalysisMode::EstimateParallel;
    par.workers = 2;
    par.collection = sim::CollectionMode::FirstCome;
    EXPECT_THROW((void)run_analysis(net, par), Error);
}

TEST_F(CoverageTest, ObserverGuardRestoresPreviousObserver) {
    const eda::ElementIndex index(net.model());
    sim::CoverageShard outer(index);
    sim::CoverageShard inner(index);
    const auto strat = sim::make_strategy(sim::StrategyKind::Asap);
    strat->set_observer(&outer);
    {
        const sim::ObserverGuard guard(*strat, &inner);
        EXPECT_EQ(strat->observer(), &inner);
    }
    EXPECT_EQ(strat->observer(), &outer);
}

TEST_F(CoverageTest, DisabledByDefault) {
    AnalysisRequest req = base_request(sim::StrategyKind::Progressive);
    req.coverage = false;
    const AnalysisResult res = run_analysis(net, req);
    EXPECT_FALSE(res.coverage.enabled);
    EXPECT_EQ(res.report.to_json().find("coverage"), nullptr);
}

} // namespace
} // namespace slimsim
