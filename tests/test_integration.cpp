// Cross-validation: the Monte Carlo simulator against the exhaustive CTMC
// flow on untimed models (the heart of the paper's Table I claim is that
// both compute the same probabilities, one approximately, one exactly).
#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/flow.hpp"
#include "models/sensor_filter.hpp"
#include "sim/parallel_runner.hpp"

namespace slimsim {
namespace {

struct Comparison {
    double exact = 0.0;
    double simulated = 0.0;
};

Comparison compare(const std::string& src, const std::string& goal, double bound,
                   double eps, std::uint64_t seed) {
    const eda::Network net = eda::build_network_from_source(src);
    const auto prop = sim::make_reachability(net.model(), goal, bound);
    Comparison out;
    out.exact = ctmc::run_ctmc_flow(net, *prop.goal, bound).probability;
    const stat::ChernoffHoeffding ch(0.02, eps);
    // ASAP matches the maximal-progress semantics of the CTMC abstraction.
    out.simulated = sim::estimate(net, prop, sim::StrategyKind::Asap, ch, seed).estimate;
    return out;
}

TEST(Integration, TwoStateFailure) {
    const auto c = compare(R"(
        root S.I;
        system S
        features broken: out data port bool default false;
        end S;
        system implementation S.I end S.I;
        error model EM
        features ok: initial state; bad: error state;
        end EM;
        error model implementation EM.I
        events f: error event occurrence poisson 0.4 per sec;
        transitions ok -[f]-> bad;
        end EM.I;
        fault injections
          component root uses error model EM.I;
          component root in state bad effect broken := true;
        end fault injections;
    )",
                           "broken", 2.0, 0.02, 5);
    EXPECT_NEAR(c.exact, 1.0 - std::exp(-0.8), 1e-9);
    EXPECT_NEAR(c.simulated, c.exact, 0.03);
}

TEST(Integration, RepairableSystemSteadyFlow) {
    // Failure and (Markovian) repair: availability-style model.
    const auto c = compare(R"(
        root S.I;
        system S
        features
          down_twice: out data port bool default false;
          count: out data port int [0..10] default 0;
        end S;
        system implementation S.I
        subcomponents broken: data bool default false;
        modes watch: initial mode; indown: mode; seen: mode;
        transitions
          watch -[when broken and count < 2 then count := count + 1]-> indown;
          indown -[when not broken]-> watch;
          watch -[when count >= 2 then down_twice := true]-> seen;
        end S.I;
        error model EM
        features ok: initial state; down: error state;
        end EM;
        error model implementation EM.I
        events
          fail: error event occurrence poisson 1 per sec;
          fix: error event occurrence poisson 2 per sec;
        transitions
          ok -[fail]-> down;
          down -[fix]-> ok;
        end EM.I;
        fault injections
          component root uses error model EM.I;
          component root in state down effect broken := true;
        end fault injections;
    )",
                           "down_twice", 3.0, 0.02, 9);
    EXPECT_GT(c.exact, 0.5);
    EXPECT_LT(c.exact, 1.0);
    EXPECT_NEAR(c.simulated, c.exact, 0.03);
}

TEST(Integration, SensorFilterSmallSizes) {
    // The Table I benchmark model at small redundancy: exact vs simulated.
    for (const int r : {1, 2, 3}) {
        const eda::Network net =
            eda::build_network_from_source(models::sensor_filter_source(r, 0.05, 0.02));
        const double bound = 30.0 * 3600.0;
        const auto prop =
            sim::make_reachability(net.model(), models::sensor_filter_goal(), bound);
        const double exact = ctmc::run_ctmc_flow(net, *prop.goal, bound).probability;
        const stat::ChernoffHoeffding ch(0.02, 0.02);
        const double simulated =
            sim::estimate(net, prop, sim::StrategyKind::Asap, ch, 13).estimate;
        EXPECT_NEAR(simulated, exact, 0.03) << "R=" << r;
        EXPECT_GT(exact, 0.01);
        EXPECT_LT(exact, 0.999);
    }
}

TEST(Integration, BisimulationReducesSensorFilter) {
    // Redundant units are symmetric: lumping must shrink the chain.
    const eda::Network net =
        eda::build_network_from_source(models::sensor_filter_source(2));
    const auto prop =
        sim::make_reachability(net.model(), models::sensor_filter_goal(), 3600.0);
    ctmc::FlowOptions with;
    ctmc::FlowOptions without;
    without.minimize = false;
    const auto rw = ctmc::run_ctmc_flow(net, *prop.goal, 3600.0, with);
    const auto ro = ctmc::run_ctmc_flow(net, *prop.goal, 3600.0, without);
    EXPECT_LT(rw.lumped_states, rw.ctmc_states);
    EXPECT_NEAR(rw.probability, ro.probability, 1e-9);
}

// Randomized cross-validation: generate small untimed fault models with
// random rates and a random monotone failure condition; the Monte Carlo
// estimate must agree with the exact CTMC value on every one of them.
class RandomizedCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedCrossValidation, SimulatorAgreesWithExactFlow) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
    const int n = 2 + static_cast<int>(rng.uniform_index(3)); // 2..4 components

    std::string src = "root S.I;\n"
                      "system Leaf\nfeatures broken: out data port bool default false;\n"
                      "end Leaf;\nsystem implementation Leaf.I end Leaf.I;\n"
                      "system S\nfeatures failed: out data port bool default false;\n"
                      "end S;\nsystem implementation S.I\nsubcomponents\n";
    for (int i = 0; i < n; ++i) src += "  c" + std::to_string(i) + ": system Leaf.I;\n";
    // Random monotone condition: OR over random AND-pairs (and singles).
    src += "flows\n  failed := ";
    const int terms = 1 + static_cast<int>(rng.uniform_index(2));
    for (int t = 0; t < terms; ++t) {
        if (t > 0) src += " or ";
        const int a = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n)));
        const int b = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n)));
        src += "(c" + std::to_string(a) + ".broken and c" + std::to_string(b) +
               ".broken)";
    }
    src += ";\nend S.I;\n";
    // Per-component error model: fail / (sometimes) repair at random rates.
    for (int i = 0; i < n; ++i) {
        const double fail = 0.2 + rng.uniform(0.0, 1.5);
        const bool repairable = rng.bernoulli(0.5);
        const double fix = 0.5 + rng.uniform(0.0, 2.0);
        const std::string em = "EM" + std::to_string(i);
        src += "error model " + em + "\nfeatures ok: initial state; bad: error state;\n";
        src += "end " + em + ";\n";
        src += "error model implementation " + em + ".I\nevents\n";
        src += "  f: error event occurrence poisson " + std::to_string(fail) +
               " per sec;\n";
        if (repairable) {
            src += "  g: error event occurrence poisson " + std::to_string(fix) +
                   " per sec;\n";
        }
        src += "transitions\n  ok -[f]-> bad;\n";
        if (repairable) src += "  bad -[g]-> ok;\n";
        src += "end " + em + ".I;\n";
    }
    src += "fault injections\n";
    for (int i = 0; i < n; ++i) {
        src += "  component c" + std::to_string(i) + " uses error model EM" +
               std::to_string(i) + ".I;\n";
        src += "  component c" + std::to_string(i) +
               " in state bad effect broken := true;\n";
    }
    src += "end fault injections;\n";

    const eda::Network net = eda::build_network_from_source(src);
    const double bound = 0.5 + rng.uniform(0.0, 2.0);
    const auto prop = sim::make_reachability(net.model(), "failed", bound);
    const double exact = ctmc::run_ctmc_flow(net, *prop.goal, bound).probability;
    const stat::ChernoffHoeffding ch(0.05, 0.025);
    const double simulated =
        sim::estimate(net, prop, sim::StrategyKind::Asap, ch,
                      static_cast<std::uint64_t>(GetParam()))
            .estimate;
    EXPECT_NEAR(simulated, exact, 0.04) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedCrossValidation, ::testing::Range(1, 21));

TEST(Integration, ParallelMatchesSequential) {
    const eda::Network net =
        eda::build_network_from_source(models::sensor_filter_source(1, 0.05, 0.02));
    const double bound = 20.0 * 3600.0;
    const auto prop =
        sim::make_reachability(net.model(), models::sensor_filter_goal(), bound);
    const stat::ChernoffHoeffding ch(0.05, 0.03);
    const auto seq = sim::estimate(net, prop, sim::StrategyKind::Asap, ch, 101);
    sim::ParallelOptions po;
    po.workers = 4;
    const auto par =
        sim::estimate_parallel(net, prop, sim::StrategyKind::Asap, ch, 101, po);
    EXPECT_NEAR(par.estimate, seq.estimate, 0.05);
    EXPECT_GE(par.samples, seq.samples); // rounds may overshoot N slightly
}

} // namespace
} // namespace slimsim
