#include "sim/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace slimsim::sim {
namespace {

constexpr const char* kModel = R"(
    root S.I;
    system S
    features broken: out data port bool default false;
    end S;
    system implementation S.I end S.I;
    error model EM
    features ok: initial state; bad: error state;
    end EM;
    error model implementation EM.I
    events f: error event occurrence poisson 0.5 per sec;
    transitions ok -[f]-> bad;
    end EM.I;
    fault injections
      component root uses error model EM.I;
      component root in state bad effect broken := true;
    end fault injections;
)";

struct ParallelTest : ::testing::Test {
    eda::Network net = eda::build_network_from_source(kModel);
    TimedReachability prop = make_reachability(net.model(), "broken", 2.0);
    double expected = 1.0 - std::exp(-1.0);
};

TEST_F(ParallelTest, EstimateMatchesAnalytic) {
    const stat::ChernoffHoeffding ch(0.05, 0.02);
    ParallelOptions po;
    po.workers = 4;
    const auto res = estimate_parallel(net, prop, StrategyKind::Progressive, ch, 7, po);
    EXPECT_NEAR(res.estimate, expected, 0.03);
    EXPECT_GE(res.samples, *ch.fixed_sample_count());
}

TEST_F(ParallelTest, DeterministicInSeedAndWorkerCount) {
    const stat::ChernoffHoeffding ch(0.1, 0.05);
    ParallelOptions po;
    po.workers = 3;
    const auto r1 = estimate_parallel(net, prop, StrategyKind::Progressive, ch, 42, po);
    const auto r2 = estimate_parallel(net, prop, StrategyKind::Progressive, ch, 42, po);
    EXPECT_EQ(r1.samples, r2.samples);
    EXPECT_EQ(r1.successes, r2.successes);
}

TEST_F(ParallelTest, DifferentWorkerCountsAgreeStatistically) {
    const stat::ChernoffHoeffding ch(0.05, 0.03);
    for (const std::size_t workers : {1u, 2u, 8u}) {
        ParallelOptions po;
        po.workers = workers;
        const auto res =
            estimate_parallel(net, prop, StrategyKind::Progressive, ch, 11, po);
        EXPECT_NEAR(res.estimate, expected, 0.05) << workers << " workers";
    }
}

TEST_F(ParallelTest, FirstComeModeStillWorksOnUnbiasedWorkload) {
    // With homogeneous workers the bias of first-come collection is
    // negligible; the mode exists to demonstrate the hazard in the bench.
    const stat::ChernoffHoeffding ch(0.05, 0.03);
    ParallelOptions po;
    po.workers = 4;
    po.collection = CollectionMode::FirstCome;
    const auto res = estimate_parallel(net, prop, StrategyKind::Progressive, ch, 3, po);
    EXPECT_NEAR(res.estimate, expected, 0.05);
}

TEST_F(ParallelTest, RejectsBadConfiguration) {
    const stat::ChernoffHoeffding ch(0.1, 0.1);
    ParallelOptions po;
    po.workers = 0;
    EXPECT_THROW(estimate_parallel(net, prop, StrategyKind::Progressive, ch, 1, po),
                 Error);
    po.workers = 2;
    EXPECT_THROW(estimate_parallel(net, prop, StrategyKind::Input, ch, 1, po), Error);
}

TEST_F(ParallelTest, WorkerErrorsPropagate) {
    // A Zeno model (immediate self-loop) makes every worker throw.
    const eda::Network zeno = eda::build_network_from_source(R"(
        root S.I;
        system S
        features never: out data port bool default false;
        end S;
        system implementation S.I
        modes a: initial mode;
        transitions a -[]-> a;
        end S.I;
    )");
    const TimedReachability p = make_reachability(zeno.model(), "never", 1.0);
    const stat::ChernoffHoeffding ch(0.1, 0.1);
    ParallelOptions po;
    po.workers = 2;
    po.sim.max_steps = 500;
    EXPECT_THROW(estimate_parallel(zeno, p, StrategyKind::Asap, ch, 1, po), Error);
}

} // namespace
} // namespace slimsim::sim
