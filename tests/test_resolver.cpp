#include "slim/resolver.hpp"

#include <gtest/gtest.h>

#include "slim/parser.hpp"

namespace slimsim::slim {
namespace {

ResolvedModel resolve_src(const std::string& src) { return resolve(parse_model(src)); }

constexpr const char* kMinimal = R"(
    root S.Imp;
    system S end S;
    system implementation S.Imp
    end S.Imp;
)";

TEST(Resolver, MinimalModel) {
    const ResolvedModel m = resolve_src(kMinimal);
    EXPECT_EQ(m.root_impl, "S.Imp");
    EXPECT_EQ(m.impls.size(), 1u);
    EXPECT_FALSE(m.impl_of("S.Imp").has_behavior());
}

TEST(Resolver, RootInferredWhenUnique) {
    const ResolvedModel m = resolve_src(R"(
        system Leaf end Leaf;
        system implementation Leaf.Imp end Leaf.Imp;
        system Top end Top;
        system implementation Top.Imp
        subcomponents l: system Leaf.Imp;
        end Top.Imp;
    )");
    EXPECT_EQ(m.root_impl, "Top.Imp"); // Leaf is used as a subcomponent
}

TEST(Resolver, AmbiguousRootRejected) {
    EXPECT_THROW(resolve_src(R"(
        system A end A;
        system implementation A.I end A.I;
        system B end B;
        system implementation B.I end B.I;
    )"),
                 Error);
}

TEST(Resolver, SymbolTableContents) {
    const ResolvedModel m = resolve_src(R"(
        root S.Imp;
        system Sub
        features
          val: out data port int default 1;
          cmd: in data port bool;
        end Sub;
        system implementation Sub.Imp end Sub.Imp;
        system S
        features
          o: out data port real;
        end S;
        system implementation S.Imp
        subcomponents
          x: data clock;
          child: system Sub.Imp;
        end S.Imp;
    )");
    const ResolvedImpl& impl = m.impl_of("S.Imp");
    ASSERT_TRUE(impl.symbols.find("o") != nullptr);
    EXPECT_EQ(impl.symbols.find("o")->kind, SymKind::OutDataPort);
    ASSERT_TRUE(impl.symbols.find("x") != nullptr);
    EXPECT_EQ(impl.symbols.find("x")->kind, SymKind::Data);
    ASSERT_TRUE(impl.symbols.find("child.val") != nullptr);
    EXPECT_EQ(impl.symbols.find("child.val")->kind, SymKind::SubOutDataPort);
    ASSERT_TRUE(impl.symbols.find("child.cmd") != nullptr);
    EXPECT_EQ(impl.symbols.find("child.cmd")->kind, SymKind::SubInDataPort);
    ASSERT_TRUE(impl.symbols.find("@timer") != nullptr);
    EXPECT_EQ(impl.symbols.find("@timer")->type.kind, TypeKind::Clock);
}

TEST(Resolver, ModeBookkeeping) {
    const ResolvedModel m = resolve_src(R"(
        root S.Imp;
        system S end S;
        system implementation S.Imp
        modes
          a: mode;
          b: initial mode;
        transitions
          a -[]-> b;
        end S.Imp;
    )");
    const ResolvedImpl& impl = m.impl_of("S.Imp");
    EXPECT_EQ(impl.mode_names, (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(impl.initial_mode, 1);
}

TEST(Resolver, RejectsNoInitialMode) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system S end S;
        system implementation S.Imp
        modes a: mode;
        end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, RejectsTwoInitialModes) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system S end S;
        system implementation S.Imp
        modes
          a: initial mode;
          b: initial mode;
        end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, RejectsTransitionsWithoutModes) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system S end S;
        system implementation S.Imp
        transitions a -[]-> b;
        end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, RejectsUnknownModeInTransition) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system S end S;
        system implementation S.Imp
        modes a: initial mode;
        transitions a -[]-> nowhere;
        end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, RejectsRecursiveContainment) {
    EXPECT_THROW(resolve_src(R"(
        root A.I;
        system A end A;
        system implementation A.I
        subcomponents child: system A.I;
        end A.I;
    )"),
                 Error);
}

TEST(Resolver, RejectsMutualRecursion) {
    EXPECT_THROW(resolve_src(R"(
        root A.I;
        system A end A;
        system B end B;
        system implementation A.I
        subcomponents b: system B.I;
        end A.I;
        system implementation B.I
        subcomponents a: system A.I;
        end B.I;
    )"),
                 Error);
}

TEST(Resolver, RejectsUnknownSubcomponentImpl) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system S end S;
        system implementation S.Imp
        subcomponents x: system Ghost.Imp;
        end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, TypeNameResolvesUniqueImplementation) {
    const ResolvedModel m = resolve_src(R"(
        root S.Imp;
        system Leaf end Leaf;
        system implementation Leaf.OnlyOne end Leaf.OnlyOne;
        system S end S;
        system implementation S.Imp
        subcomponents l: system Leaf;
        end S.Imp;
    )");
    EXPECT_EQ(m.impl_of("S.Imp").subcomp_impl.at("l"), "Leaf.OnlyOne");
}

TEST(Resolver, RejectsAmbiguousTypeName) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system Leaf end Leaf;
        system implementation Leaf.A end Leaf.A;
        system implementation Leaf.B end Leaf.B;
        system S end S;
        system implementation S.Imp
        subcomponents l: system Leaf;
        end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, RejectsCategoryMismatch) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system Leaf end Leaf;
        system implementation Leaf.I end Leaf.I;
        system S end S;
        system implementation S.Imp
        subcomponents l: device Leaf.I;
        end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, RejectsTimedDataPort) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system S
        features c: out data port clock;
        end S;
        system implementation S.Imp end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, RejectsNonConstantDefault) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system S end S;
        system implementation S.Imp
        subcomponents
          a: data int default 1;
          b: data int default a + 1;
        end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, RejectsNonBooleanGuard) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system S end S;
        system implementation S.Imp
        subcomponents x: data int default 0;
        modes a: initial mode;
        transitions a -[when x + 1]-> a;
        end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, RejectsEffectOnInputPort) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system S
        features i: in data port int;
        end S;
        system implementation S.Imp
        modes a: initial mode;
        transitions a -[then i := 1]-> a;
        end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, RejectsEffectTypeMismatch) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system S end S;
        system implementation S.Imp
        subcomponents b: data bool;
        modes a: initial mode;
        transitions a -[then b := 3]-> a;
        end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, ConnectionDirectionality) {
    // Legal: sub.out -> sub.in, sub.out -> own out, own in -> sub.in.
    const ResolvedModel m = resolve_src(R"(
        root S.Imp;
        system Leaf
        features
          o: out data port int default 0;
          i: in data port int default 0;
        end Leaf;
        system implementation Leaf.I end Leaf.I;
        system S
        features
          so: out data port int default 0;
          si: in data port int default 0;
        end S;
        system implementation S.Imp
        subcomponents
          a: system Leaf.I;
          b: system Leaf.I;
        connections
          data port a.o -> b.i;
          data port a.o -> so;
          data port si -> b.i;
        end S.Imp;
    )");
    EXPECT_EQ(m.impl_of("S.Imp").impl->connections.size(), 3u);
}

TEST(Resolver, RejectsBackwardConnection) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system Leaf
        features o: out data port int default 0;
        end Leaf;
        system implementation Leaf.I end Leaf.I;
        system S end S;
        system implementation S.Imp
        subcomponents a: system Leaf.I;
                      b: system Leaf.I;
        connections
          data port a.o -> b.o;
        end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, RejectsConnectionKindMismatch) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system Leaf
        features
          o: out data port int default 0;
          e: in event port;
        end Leaf;
        system implementation Leaf.I end Leaf.I;
        system S end S;
        system implementation S.Imp
        subcomponents a: system Leaf.I;
                      b: system Leaf.I;
        connections
          event port a.o -> b.e;
        end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, ErrorModelResolution) {
    const ResolvedModel m = resolve_src(R"(
        root S.Imp;
        system S end S;
        system implementation S.Imp end S.Imp;
        error model EM
        features
          ok: initial state;
          bad: error state while @timer <= 1;
        end EM;
        error model implementation EM.I
        events f: error event occurrence poisson 1 per hour;
        transitions ok -[f]-> bad;
        end EM.I;
    )");
    const ResolvedErrorImpl& e = m.error_impl_of("EM.I");
    EXPECT_EQ(e.initial_state, 0);
    EXPECT_EQ(e.state_names, (std::vector<std::string>{"ok", "bad"}));
    ASSERT_EQ(e.state_invariants.size(), 2u);
    EXPECT_EQ(e.state_invariants[0], nullptr);
    ASSERT_NE(e.state_invariants[1], nullptr);
}

TEST(Resolver, RejectsGuardOnPoissonEvent) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system S end S;
        system implementation S.Imp end S.Imp;
        error model EM
        features ok: initial state; bad: error state;
        end EM;
        error model implementation EM.I
        events f: error event occurrence poisson 1 per hour;
        transitions ok -[f when @timer >= 1]-> bad;
        end EM.I;
    )"),
                 Error);
}

TEST(Resolver, RejectsErrorModelWithoutInitialState) {
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system S end S;
        system implementation S.Imp end S.Imp;
        error model EM
        features ok: state;
        end EM;
        error model implementation EM.I
        end EM.I;
    )"),
                 Error);
}

TEST(Resolver, RejectsDuplicateDeclarations) {
    EXPECT_THROW(resolve_src("system A end A;\nsystem A end A;"), Error);
    EXPECT_THROW(resolve_src(R"(
        root S.Imp;
        system S end S;
        system implementation S.Imp
        subcomponents x: data int; x: data bool;
        end S.Imp;
    )"),
                 Error);
}

TEST(Resolver, CollectsMultipleErrors) {
    // Both the unknown mode and the bad guard should be reported.
    try {
        (void)resolve_src(R"(
            root S.Imp;
            system S end S;
            system implementation S.Imp
            modes a: initial mode;
            transitions
              a -[when 3]-> a;
              a -[]-> nowhere;
            end S.Imp;
        )");
        FAIL() << "expected an error";
    } catch (const Error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("2 error"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace slimsim::slim
