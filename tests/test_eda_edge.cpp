// Corner cases of the Event-Data Automata network: hierarchical event
// re-export, timed synchronization windows, activation cascades,
// parent-child propagation, multi-process invariant horizons.
#include <gtest/gtest.h>

#include <limits>

#include "eda/network.hpp"

namespace slimsim::eda {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(EdaEdge, EventReExportAcrossHierarchy) {
    // inner sender's port is re-exported up through its parent, connected
    // sideways, and routed down into the inner receiver: one sync group.
    const Network net = build_network_from_source(R"(
        root Top.I;
        system Inner
        features ding: out event port;
        end Inner;
        system implementation Inner.I
        modes a: initial mode; b: mode;
        transitions a -[ding]-> b;
        end Inner.I;
        system InnerRx
        features dong: in event port;
        end InnerRx;
        system implementation InnerRx.I
        modes idle: initial mode; rung: mode;
        transitions idle -[dong]-> rung;
        end InnerRx.I;
        system Left
        features out_ding: out event port;
        end Left;
        system implementation Left.I
        subcomponents inner: system Inner.I;
        connections event port inner.ding -> out_ding;
        end Left.I;
        system Right
        features in_ding: in event port;
        end Right;
        system implementation Right.I
        subcomponents rx: system InnerRx.I;
        connections event port in_ding -> rx.dong;
        end Right.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          l: system Left.I;
          r: system Right.I;
        connections event port l.out_ding -> r.in_ding;
        end Top.I;
    )");
    const auto& m = net.model();
    ASSERT_EQ(m.actions.size(), 1u); // one group across three levels
    EXPECT_EQ(m.actions[0].participants.size(), 2u); // only the two leaves

    NetworkState s = net.initial_state();
    Rng rng(1);
    const auto cands = net.candidates(s, kInf);
    ASSERT_EQ(cands.size(), 1u);
    const StepInfo info = net.execute(s, cands[0], rng);
    EXPECT_EQ(info.fired.size(), 2u);
    const auto rx = m.instances[m.instance("r.rx")].process;
    EXPECT_EQ(s.locations[rx], 1);
}

TEST(EdaEdge, TimedSyncWindowIsIntersection) {
    const Network net = build_network_from_source(R"(
        root Top.I;
        system Sender
        features go: out event port;
        end Sender;
        system implementation Sender.I
        subcomponents x: data clock;
        modes a: initial mode while x <= 5; b: mode;
        transitions a -[go when x >= 2]-> b;
        end Sender.I;
        system Receiver
        features hear: in event port;
        end Receiver;
        system implementation Receiver.I
        subcomponents y: data clock;
        modes idle: initial mode while y <= 8; busy: mode;
        transitions idle -[hear when y >= 4]-> busy;
        end Receiver.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          s: system Sender.I;
          r: system Receiver.I;
        connections event port s.go -> r.hear;
        end Top.I;
    )");
    const NetworkState s = net.initial_state();
    const double horizon = net.invariant_horizon(s);
    EXPECT_DOUBLE_EQ(horizon, 5.0); // the sender's invariant binds first
    const auto cands = net.candidates(s, horizon);
    ASSERT_EQ(cands.size(), 1u);
    ASSERT_EQ(cands[0].enabled.parts().size(), 1u);
    // Sender ready on [2,5], receiver on [4,8]: the sync window is [4,5].
    EXPECT_DOUBLE_EQ(cands[0].enabled.parts()[0].lo, 4.0);
    EXPECT_DOUBLE_EQ(cands[0].enabled.parts()[0].hi, 5.0);
}

TEST(EdaEdge, GrandchildActivationCascade) {
    const Network net = build_network_from_source(R"(
        root Top.I;
        system Leaf end Leaf;
        system implementation Leaf.I
        subcomponents c: data clock;
        modes on: initial mode;
        end Leaf.I;
        system Mid end Mid;
        system implementation Mid.I
        subcomponents leaf: system Leaf.I;
        end Mid.I;
        system Top end Top;
        system implementation Top.I
        subcomponents mid: system Mid.I in modes (running);
        modes
          running: initial mode;
          halted: mode;
        transitions
          running -[when @timer >= 1]-> halted;
          halted -[when @timer >= 1]-> running;
        end Top.I;
    )");
    const auto& m = net.model();
    NetworkState s = net.initial_state();
    Rng rng(1);
    const auto leaf_inst = m.instance("mid.leaf");
    const VarId c = m.var("mid.leaf.c");
    EXPECT_TRUE(s.instance_active(leaf_inst));

    // Parent halts: mid and, transitively, mid.leaf deactivate.
    net.elapse(s, 1.0);
    auto cands = net.candidates(s, 10.0);
    ASSERT_EQ(cands.size(), 1u);
    net.execute(s, cands[0], rng);
    EXPECT_FALSE(s.instance_active(m.instance("mid")));
    EXPECT_FALSE(s.instance_active(leaf_inst));
    const double frozen = s.values[c].as_real();
    net.elapse(s, 1.0);
    EXPECT_DOUBLE_EQ(s.values[c].as_real(), frozen); // grandchild clock frozen

    // Resume: both reactivate.
    cands = net.candidates(s, 10.0);
    ASSERT_EQ(cands.size(), 1u);
    net.execute(s, cands[0], rng);
    EXPECT_TRUE(s.instance_active(leaf_inst));
    net.elapse(s, 1.0);
    EXPECT_DOUBLE_EQ(s.values[c].as_real(), frozen + 1.0);
}

TEST(EdaEdge, ParentChildPropagation) {
    const Network net = build_network_from_source(R"(
        root Top.I;
        system Child end Child;
        system implementation Child.I end Child.I;
        system Top end Top;
        system implementation Top.I
        subcomponents kid: system Child.I;
        end Top.I;
        error model ChildEM
        features ok: initial state; bad: error state; scream: out propagation;
        end ChildEM;
        error model implementation ChildEM.I
        events f: error event occurrence poisson 1 per sec;
        transitions
          ok -[f]-> bad;
          bad -[scream]-> bad;
        end ChildEM.I;
        error model ParentEM
        features calm: initial state; alarmed: error state; scream: in propagation;
        end ParentEM;
        error model implementation ParentEM.I
        transitions calm -[scream]-> alarmed;
        end ParentEM.I;
        fault injections
          component kid uses error model ChildEM.I;
          component root uses error model ParentEM.I;
        end fault injections;
    )");
    const auto& m = net.model();
    NetworkState s = net.initial_state();
    Rng rng(2);
    // Child fails, then screams; the parent's error model hears it.
    net.execute_markovian(s, net.markovian_rates(s)[0].process, rng);
    const auto cands = net.candidates(s, kInf);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0].kind, Candidate::Kind::BroadcastSend);
    const StepInfo info = net.execute(s, cands[0], rng);
    EXPECT_EQ(info.fired.size(), 2u);
    const auto parent_ep = m.instances[m.instance("")].error_process;
    EXPECT_EQ(s.locations[parent_ep], 1); // alarmed
}

TEST(EdaEdge, HorizonIsMinimumOverProcesses) {
    const Network net = build_network_from_source(R"(
        root Top.I;
        system Tank end Tank;
        system implementation Tank.I
        subcomponents level: data continuous default 10;
        modes draining: initial mode while level >= 0;
        trends level' = -2 in draining;
        end Tank.I;
        system Timer end Timer;
        system implementation Timer.I
        subcomponents t: data clock;
        modes waiting: initial mode while t <= 3; done: mode;
        transitions waiting -[when t >= 3]-> done;
        end Timer.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          tank: system Tank.I;
          timer: system Timer.I;
        end Top.I;
    )");
    NetworkState s = net.initial_state();
    // Tank allows 5 s (10 / 2), timer allows 3 s: the horizon is 3 s.
    EXPECT_DOUBLE_EQ(net.invariant_horizon(s), 3.0);
    net.elapse(s, 3.0);
    Rng rng(1);
    const auto cands = net.candidates(s, net.invariant_horizon(s));
    ASSERT_EQ(cands.size(), 1u);
    net.execute(s, cands[0], rng);
    // After the timer is done, only the tank constrains: 10 - 2*3 = 4 left,
    // at slope 2 -> horizon 2.
    EXPECT_DOUBLE_EQ(net.invariant_horizon(s), 2.0);
    EXPECT_DOUBLE_EQ(s.values[net.model().var("tank.level")].as_real(), 4.0);
}

TEST(EdaEdge, SyncBlockedForeverIsDeadlockForCandidates) {
    const Network net = build_network_from_source(R"(
        root Top.I;
        system Sender
        features go: out event port;
        end Sender;
        system implementation Sender.I
        modes a: initial mode; b: mode;
        transitions a -[go]-> b;
        end Sender.I;
        system Receiver
        features hear: in event port;
        end Receiver;
        system implementation Receiver.I
        subcomponents never: data bool default false;
        modes idle: initial mode; busy: mode;
        transitions idle -[hear when never]-> busy;
        end Receiver.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          s: system Sender.I;
          r: system Receiver.I;
        connections event port s.go -> r.hear;
        end Top.I;
    )");
    const NetworkState s = net.initial_state();
    EXPECT_TRUE(net.candidates(s, kInf).empty());
    EXPECT_TRUE(net.markovian_rates(s).empty());
}

} // namespace
} // namespace slimsim::eda
