#include "expr/eval.hpp"

#include <gtest/gtest.h>

#include "slim/parser.hpp"
#include "slim/resolver.hpp"

namespace slimsim {
namespace {

using expr::BinaryOp;
using expr::ExprPtr;
using expr::UnaryOp;

/// Helper: parse + resolve an expression over the given symbols, then
/// evaluate it against `values` (identity bindings).
Value eval_str(const std::string& source, const std::vector<std::pair<std::string, Value>>&
                                              vars = {}) {
    slim::SymbolTable table;
    std::vector<Value> values;
    for (const auto& [name, value] : vars) {
        slim::Symbol sym;
        sym.name = name;
        sym.kind = slim::SymKind::Data;
        sym.type = value.is_bool()  ? Type::boolean()
                   : value.is_int() ? Type::integer()
                                    : Type::real();
        table.add(std::move(sym));
        values.push_back(value);
    }
    ExprPtr e = slim::parse_expression(source);
    DiagnosticSink sink;
    slim::resolve_expr(*e, table, sink);
    sink.throw_if_errors("test expression");
    return expr::evaluate(*e, expr::EvalContext{values, {}});
}

TEST(Eval, Literals) {
    EXPECT_EQ(eval_str("true"), Value(true));
    EXPECT_EQ(eval_str("false"), Value(false));
    EXPECT_EQ(eval_str("42"), Value(std::int64_t{42}));
    EXPECT_EQ(eval_str("2.5"), Value(2.5));
}

TEST(Eval, TimeUnitLiterals) {
    EXPECT_EQ(eval_str("300 msec"), Value(0.3));
    EXPECT_EQ(eval_str("2 min"), Value(120.0));
    EXPECT_EQ(eval_str("1 hour"), Value(3600.0));
    EXPECT_EQ(eval_str("1.5 sec"), Value(1.5));
}

TEST(Eval, IntegerArithmetic) {
    EXPECT_EQ(eval_str("2 + 3 * 4"), Value(std::int64_t{14}));
    EXPECT_EQ(eval_str("(2 + 3) * 4"), Value(std::int64_t{20}));
    EXPECT_EQ(eval_str("7 / 2"), Value(std::int64_t{3}));
    EXPECT_EQ(eval_str("7 mod 2"), Value(std::int64_t{1}));
    EXPECT_EQ(eval_str("-5 + 2"), Value(std::int64_t{-3}));
}

TEST(Eval, MixedArithmeticWidensToReal) {
    EXPECT_EQ(eval_str("1 + 2.5"), Value(3.5));
    EXPECT_EQ(eval_str("5 / 2.0"), Value(2.5));
}

TEST(Eval, DivisionByZeroThrows) {
    EXPECT_THROW(eval_str("1 / 0"), Error);
    EXPECT_THROW(eval_str("1 mod 0"), Error);
    EXPECT_THROW(eval_str("1.0 / 0.0"), Error);
}

TEST(Eval, Comparisons) {
    EXPECT_EQ(eval_str("1 < 2"), Value(true));
    EXPECT_EQ(eval_str("2 <= 2"), Value(true));
    EXPECT_EQ(eval_str("3 > 4"), Value(false));
    EXPECT_EQ(eval_str("3 >= 4"), Value(false));
    EXPECT_EQ(eval_str("3 = 3"), Value(true));
    EXPECT_EQ(eval_str("3 != 3"), Value(false));
    EXPECT_EQ(eval_str("1 = 1.0"), Value(true)); // numeric comparison widens
    EXPECT_EQ(eval_str("true = true"), Value(true));
    EXPECT_EQ(eval_str("true != false"), Value(true));
}

TEST(Eval, Logic) {
    EXPECT_EQ(eval_str("true and false"), Value(false));
    EXPECT_EQ(eval_str("true or false"), Value(true));
    EXPECT_EQ(eval_str("not true"), Value(false));
    EXPECT_EQ(eval_str("false => true"), Value(true));
    EXPECT_EQ(eval_str("true => false"), Value(false));
    EXPECT_EQ(eval_str("false => false"), Value(true));
}

TEST(Eval, ShortCircuitPreventsDivisionByZero) {
    EXPECT_EQ(eval_str("false and 1 / 0 = 1"), Value(false));
    EXPECT_EQ(eval_str("true or 1 / 0 = 1"), Value(true));
    EXPECT_EQ(eval_str("false => 1 / 0 = 1"), Value(true));
}

TEST(Eval, IfThenElse) {
    EXPECT_EQ(eval_str("if true then 1 else 2"), Value(std::int64_t{1}));
    EXPECT_EQ(eval_str("if 1 > 2 then 1 else 2"), Value(std::int64_t{2}));
    EXPECT_EQ(eval_str("if true then 1.5 else 2"), Value(1.5));
}

TEST(Eval, Variables) {
    EXPECT_EQ(eval_str("x + y", {{"x", Value(std::int64_t{2})}, {"y", Value(std::int64_t{5})}}),
              Value(std::int64_t{7}));
    EXPECT_EQ(eval_str("flag and x > 1",
                       {{"flag", Value(true)}, {"x", Value(std::int64_t{2})}}),
              Value(true));
}

TEST(Eval, DottedVariableNames) {
    EXPECT_EQ(eval_str("gps.measurement", {{"gps.measurement", Value(true)}}), Value(true));
}

TEST(Eval, OperatorPrecedence) {
    // and binds tighter than or; comparisons tighter than logic.
    EXPECT_EQ(eval_str("true or false and false"), Value(true));
    EXPECT_EQ(eval_str("1 + 1 = 2 and 2 * 2 = 4"), Value(true));
    // implies is right-associative and weakest.
    EXPECT_EQ(eval_str("false => false => false"), Value(true));
}

TEST(Eval, UnaryMinusPrecedence) {
    EXPECT_EQ(eval_str("-2 * 3"), Value(std::int64_t{-6}));
    EXPECT_EQ(eval_str("2 - -3"), Value(std::int64_t{5}));
}

TEST(TypeChecking, RejectsBadTypes) {
    EXPECT_THROW(eval_str("1 and true"), Error);
    EXPECT_THROW(eval_str("not 3"), Error);
    EXPECT_THROW(eval_str("true + 1"), Error);
    EXPECT_THROW(eval_str("true < false"), Error);
    EXPECT_THROW(eval_str("1.5 mod 2"), Error);
    EXPECT_THROW(eval_str("if 1 then 2 else 3"), Error);
    EXPECT_THROW(eval_str("if true then 1 else false"), Error);
}

TEST(TypeChecking, UnknownVariable) {
    EXPECT_THROW(eval_str("nonexistent"), Error);
}

TEST(ExprAst, CloneIsDeep) {
    ExprPtr e = slim::parse_expression("x + 2 * y");
    ExprPtr c = expr::clone(*e);
    EXPECT_NE(e.get(), c.get());
    EXPECT_NE(e->a.get(), c->a.get());
    EXPECT_EQ(e->to_string(), c->to_string());
    // Mutating the clone leaves the original untouched.
    c->a->var_name = "z";
    EXPECT_NE(e->to_string(), c->to_string());
}

TEST(ExprAst, ToStringRoundTrips) {
    const ExprPtr e = slim::parse_expression("(a + 1) * b >= 3 and not c");
    const std::string s = e->to_string();
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("not"), std::string::npos);
}

TEST(ValueTest, CoerceToTruncatesTowardZero) {
    EXPECT_EQ(Value(2.9).coerce_to(Type::integer()), Value(std::int64_t{2}));
    EXPECT_EQ(Value(-2.9).coerce_to(Type::integer()), Value(std::int64_t{-2}));
    EXPECT_EQ(Value(std::int64_t{3}).coerce_to(Type::real()), Value(3.0));
}

TEST(ValueTest, DefaultForType) {
    EXPECT_EQ(Value::default_for(Type::boolean()), Value(false));
    EXPECT_EQ(Value::default_for(Type::integer()), Value(std::int64_t{0}));
    EXPECT_EQ(Value::default_for(Type::integer_range(3, 9)), Value(std::int64_t{3}));
    EXPECT_EQ(Value::default_for(Type::clock()), Value(0.0));
}

TEST(TypeTest, Accepts) {
    EXPECT_TRUE(Type::boolean().accepts(Type::boolean()));
    EXPECT_FALSE(Type::boolean().accepts(Type::integer()));
    EXPECT_TRUE(Type::real().accepts(Type::integer()));
    EXPECT_TRUE(Type::integer().accepts(Type::real())); // dynamic truncation
    EXPECT_FALSE(Type::integer().accepts(Type::boolean()));
}

} // namespace
} // namespace slimsim
