#include "ctmc/bisim.hpp"

#include <gtest/gtest.h>

#include "ctmc/uniformization.hpp"
#include "support/rng.hpp"

namespace slimsim::ctmc {
namespace {

TEST(Bisim, SymmetricStatesAreLumped) {
    // Two identical branches 0 -> {1, 2} -> 3(goal); 1 and 2 are bisimilar.
    CtmcModel m;
    m.transitions.resize(4);
    m.transitions[0] = {{1, 1.0}, {2, 1.0}};
    m.transitions[1] = {{3, 2.0}};
    m.transitions[2] = {{3, 2.0}};
    m.goal = {0, 0, 0, 1};
    m.initial = {{0, 1.0}};

    const LumpResult r = lump(m);
    EXPECT_EQ(r.block_of[1], r.block_of[2]);
    EXPECT_NE(r.block_of[0], r.block_of[1]);
    EXPECT_NE(r.block_of[1], r.block_of[3]);
    EXPECT_EQ(r.block_count, 3u);
}

TEST(Bisim, DifferentRatesNotLumped) {
    CtmcModel m;
    m.transitions.resize(4);
    m.transitions[0] = {{1, 1.0}, {2, 1.0}};
    m.transitions[1] = {{3, 2.0}};
    m.transitions[2] = {{3, 5.0}}; // different rate
    m.goal = {0, 0, 0, 1};
    m.initial = {{0, 1.0}};
    const LumpResult r = lump(m);
    EXPECT_NE(r.block_of[1], r.block_of[2]);
}

TEST(Bisim, GoalLabelSeparates) {
    // Identical dynamics but different labels must not merge.
    CtmcModel m;
    m.transitions.resize(2);
    m.transitions[0] = {};
    m.transitions[1] = {};
    m.goal = {0, 1};
    m.initial = {{0, 1.0}};
    const LumpResult r = lump(m);
    EXPECT_NE(r.block_of[0], r.block_of[1]);
}

TEST(Bisim, QuotientPreservesStructure) {
    CtmcModel m;
    m.transitions.resize(4);
    m.transitions[0] = {{1, 1.0}, {2, 1.0}};
    m.transitions[1] = {{3, 2.0}};
    m.transitions[2] = {{3, 2.0}};
    m.goal = {0, 0, 0, 1};
    m.initial = {{0, 1.0}};

    const CtmcModel q = minimize(m);
    EXPECT_EQ(q.state_count(), 3u);
    q.check();
    // Quotient: initial -> merged middle with total rate 2 -> goal rate 2.
    EXPECT_NEAR(transient_reachability(q, 1.7), transient_reachability(m, 1.7), 1e-9);
}

TEST(Bisim, ChainOfIdenticalStatesDoesNotOverMerge) {
    // Erlang chain: states differ by distance to goal; nothing lumps.
    CtmcModel m;
    m.transitions.resize(4);
    m.transitions[0] = {{1, 1.0}};
    m.transitions[1] = {{2, 1.0}};
    m.transitions[2] = {{3, 1.0}};
    m.goal = {0, 0, 0, 1};
    m.initial = {{0, 1.0}};
    const LumpResult r = lump(m);
    EXPECT_EQ(r.block_count, 4u);
}

// Property-based: random symmetric duplication — duplicate every state of a
// random chain; the lumped quotient must have (at most) the original size
// and identical transient probabilities.
class BisimRandom : public ::testing::TestWithParam<int> {};

TEST_P(BisimRandom, DuplicatedChainLumpsToOriginal) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 5);
    const std::size_t n = 4 + rng.uniform_index(5);
    // Random base chain over states 0..n-1, last state is the goal.
    CtmcModel base;
    base.transitions.resize(n);
    base.goal.assign(n, 0);
    base.goal[n - 1] = 1;
    base.initial = {{0, 1.0}};
    for (std::size_t s = 0; s + 1 < n; ++s) {
        const std::size_t fanout = 1 + rng.uniform_index(2);
        for (std::size_t k = 0; k < fanout; ++k) {
            const auto target = static_cast<StateId>(1 + rng.uniform_index(n - 1));
            base.transitions[s].emplace_back(target,
                                             0.25 * static_cast<double>(1 + rng.uniform_index(4)));
        }
    }

    // Duplicate: state s' = s + n mirrors s; initial mass split 50/50.
    CtmcModel dup;
    dup.transitions.resize(2 * n);
    dup.goal.assign(2 * n, 0);
    for (std::size_t s = 0; s < n; ++s) {
        dup.goal[s] = dup.goal[s + n] = base.goal[s];
        for (const auto& [t, r] : base.transitions[s]) {
            dup.transitions[s].emplace_back(t, r);
            dup.transitions[s + n].emplace_back(static_cast<StateId>(t + n), r);
        }
    }
    dup.initial = {{0, 0.5}, {static_cast<StateId>(n), 0.5}};

    LumpResult lr;
    const CtmcModel q = minimize(dup, &lr);
    EXPECT_LE(q.state_count(), n);
    for (std::size_t s = 0; s < n; ++s) {
        EXPECT_EQ(lr.block_of[s], lr.block_of[s + n]) << "state " << s;
    }
    for (const double t : {0.3, 1.0, 2.5}) {
        EXPECT_NEAR(transient_reachability(q, t), transient_reachability(base, t), 1e-8);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BisimRandom, ::testing::Range(1, 21));

} // namespace
} // namespace slimsim::ctmc
