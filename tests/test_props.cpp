#include "props/pattern.hpp"

#include <gtest/gtest.h>

#include "eda/network.hpp"
#include "sim/property.hpp"

namespace slimsim {
namespace {

TEST(ParseDuration, PlainSeconds) {
    EXPECT_DOUBLE_EQ(props::parse_duration("1800"), 1800.0);
    EXPECT_DOUBLE_EQ(props::parse_duration("2.5"), 2.5);
}

TEST(ParseDuration, Units) {
    EXPECT_DOUBLE_EQ(props::parse_duration("300 msec"), 0.3);
    EXPECT_DOUBLE_EQ(props::parse_duration("30 min"), 1800.0);
    EXPECT_DOUBLE_EQ(props::parse_duration("2 hour"), 7200.0);
    EXPECT_DOUBLE_EQ(props::parse_duration("2h"), 7200.0);
    EXPECT_DOUBLE_EQ(props::parse_duration("1 day"), 86400.0);
    EXPECT_DOUBLE_EQ(props::parse_duration("  5 sec  "), 5.0);
}

TEST(ParseDuration, Rejects) {
    EXPECT_THROW((void)props::parse_duration("abc"), Error);
    EXPECT_THROW((void)props::parse_duration("5 lightyears"), Error);
    EXPECT_THROW((void)props::parse_duration(""), Error);
}

TEST(ParsePattern, ProbabilisticExistence) {
    const props::ParsedPattern p =
        props::parse_pattern("probability of reaching gps.measurement within 30 min");
    EXPECT_EQ(p.goal_text, "gps.measurement");
    EXPECT_DOUBLE_EQ(p.bound, 1800.0);
}

TEST(ParsePattern, CaseInsensitiveKeywords) {
    const props::ParsedPattern p =
        props::parse_pattern("Probability of reaching failed within 2 hour");
    EXPECT_EQ(p.goal_text, "failed");
    EXPECT_DOUBLE_EQ(p.bound, 7200.0);
}

TEST(ParsePattern, ComplexGoalExpression) {
    const props::ParsedPattern p = props::parse_pattern(
        "probability of reaching a.x > 3 and not b.y within 10 sec");
    EXPECT_EQ(p.goal_text, "a.x > 3 and not b.y");
    EXPECT_DOUBLE_EQ(p.bound, 10.0);
}

TEST(ParsePattern, CslSpelling) {
    const props::ParsedPattern p = props::parse_pattern("P( <> [0, 2 hour] failure )");
    EXPECT_EQ(p.goal_text, "failure");
    EXPECT_DOUBLE_EQ(p.bound, 7200.0);
}

TEST(ParsePattern, CslNonZeroLowerBoundIsIntervalReach) {
    const props::ParsedPattern p = props::parse_pattern("P( <> [1, 2] failure )");
    EXPECT_EQ(p.kind, props::PatternKind::Reach);
    EXPECT_DOUBLE_EQ(p.lo, 1.0);
    EXPECT_DOUBLE_EQ(p.bound, 2.0);
}

TEST(ParsePattern, BetweenInterval) {
    const props::ParsedPattern p = props::parse_pattern(
        "probability of reaching failed between 10 min and 2 hour");
    EXPECT_EQ(p.kind, props::PatternKind::Reach);
    EXPECT_EQ(p.goal_text, "failed");
    EXPECT_DOUBLE_EQ(p.lo, 600.0);
    EXPECT_DOUBLE_EQ(p.bound, 7200.0);
}

TEST(ParsePattern, UntilVerbose) {
    const props::ParsedPattern p = props::parse_pattern(
        "probability of not b.failed until a.failed within 30 min");
    EXPECT_EQ(p.kind, props::PatternKind::Until);
    EXPECT_EQ(p.hold_text, "not b.failed");
    EXPECT_EQ(p.goal_text, "a.failed");
    EXPECT_DOUBLE_EQ(p.lo, 0.0);
    EXPECT_DOUBLE_EQ(p.bound, 1800.0);
}

TEST(ParsePattern, UntilVerboseWithInterval) {
    const props::ParsedPattern p = props::parse_pattern(
        "probability of safe until done between 5 sec and 10 sec");
    EXPECT_EQ(p.kind, props::PatternKind::Until);
    EXPECT_EQ(p.hold_text, "safe");
    EXPECT_EQ(p.goal_text, "done");
    EXPECT_DOUBLE_EQ(p.lo, 5.0);
    EXPECT_DOUBLE_EQ(p.bound, 10.0);
}

TEST(ParsePattern, MaintainingGlobally) {
    const props::ParsedPattern p =
        props::parse_pattern("probability of maintaining not failure for 2 hour");
    EXPECT_EQ(p.kind, props::PatternKind::Globally);
    EXPECT_EQ(p.goal_text, "not failure");
    EXPECT_DOUBLE_EQ(p.bound, 7200.0);
}

TEST(ParsePattern, CslIntervalReach) {
    const props::ParsedPattern p = props::parse_pattern("P( <> [5 sec, 2 min] done )");
    EXPECT_EQ(p.kind, props::PatternKind::Reach);
    EXPECT_DOUBLE_EQ(p.lo, 5.0);
    EXPECT_DOUBLE_EQ(p.bound, 120.0);
    EXPECT_EQ(p.goal_text, "done");
}

TEST(ParsePattern, CslUntil) {
    const props::ParsedPattern p =
        props::parse_pattern("P( (safe and armed) U [0, 1 hour] (done or x > 3) )");
    EXPECT_EQ(p.kind, props::PatternKind::Until);
    EXPECT_EQ(p.hold_text, "safe and armed");
    EXPECT_EQ(p.goal_text, "done or x > 3");
    EXPECT_DOUBLE_EQ(p.bound, 3600.0);
}

TEST(ParsePattern, CslGlobally) {
    const props::ParsedPattern p = props::parse_pattern("P( [] [0, 90 sec] ok )");
    EXPECT_EQ(p.kind, props::PatternKind::Globally);
    EXPECT_EQ(p.goal_text, "ok");
    EXPECT_DOUBLE_EQ(p.bound, 90.0);
}

TEST(ParsePattern, RejectsBadIntervals) {
    EXPECT_THROW(props::parse_pattern("P( <> [5, 2] x )"), Error);
    EXPECT_THROW(props::parse_pattern("probability of reaching x between 9 sec and 2 sec"),
                 Error);
    EXPECT_THROW(props::parse_pattern("P( [] [1, 5] x )"), Error);
    EXPECT_THROW(props::parse_pattern("probability of a until b"), Error);
    EXPECT_THROW(props::parse_pattern("probability of maintaining x"), Error);
    EXPECT_THROW(props::parse_pattern("P( (a U [0,5] b )"), Error);
}

TEST(ParsePattern, RejectsMalformed) {
    EXPECT_THROW(props::parse_pattern("reach x eventually"), Error);
    EXPECT_THROW(props::parse_pattern("probability of reaching x"), Error);
    EXPECT_THROW(props::parse_pattern("probability of reaching within 5"), Error);
    EXPECT_THROW(props::parse_pattern("P( <> [0 2] x )"), Error);
}

TEST(Property, MakeReachabilityResolvesGoal) {
    const eda::Network net = eda::build_network_from_source(R"(
        root S.I;
        system S
        features ok: out data port bool default true;
        end S;
        system implementation S.I
        subcomponents n: data int default 0;
        end S.I;
    )");
    const sim::TimedReachability prop =
        sim::make_reachability(net.model(), "ok and n >= 0", 10.0);
    EXPECT_DOUBLE_EQ(prop.bound, 10.0);
    const eda::NetworkState s = net.initial_state();
    EXPECT_TRUE(net.eval_global(s, *prop.goal));
}

TEST(Property, RejectsUnknownVariable) {
    const eda::Network net = eda::build_network_from_source(R"(
        root S.I;
        system S end S;
        system implementation S.I end S.I;
    )");
    EXPECT_THROW(sim::make_reachability(net.model(), "ghost", 1.0), Error);
}

TEST(Property, RejectsNonBooleanGoal) {
    const eda::Network net = eda::build_network_from_source(R"(
        root S.I;
        system S end S;
        system implementation S.I
        subcomponents n: data int default 0;
        end S.I;
    )");
    EXPECT_THROW(sim::make_reachability(net.model(), "n + 1", 1.0), Error);
}

TEST(Property, RejectsNonPositiveBound) {
    const eda::Network net = eda::build_network_from_source(R"(
        root S.I;
        system S end S;
        system implementation S.I end S.I;
    )");
    EXPECT_THROW(sim::make_reachability(net.model(), "true", 0.0), Error);
    EXPECT_THROW(sim::make_reachability(net.model(), "true", -5.0), Error);
}

} // namespace
} // namespace slimsim
