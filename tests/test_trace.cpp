#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "models/gps.hpp"
#include "sim/runner.hpp"

namespace slimsim::sim {
namespace {

TEST(TraceTest, RecordsAndFormats) {
    Trace t;
    t.record(0.0, "start");
    t.record(1.5, "something happened");
    ASSERT_EQ(t.steps().size(), 2u);
    EXPECT_DOUBLE_EQ(t.steps()[1].time, 1.5);
    const std::string text = t.to_string();
    EXPECT_NE(text.find("[t=0]"), std::string::npos);
    EXPECT_NE(text.find("[t=1.5] something happened"), std::string::npos);
}

TEST(TraceTest, DescribeStateListsProcessesAndValues) {
    const eda::Network net = eda::build_network_from_source(models::gps_source());
    const eda::NetworkState s = net.initial_state();
    const std::string text = describe_state(net, s);
    EXPECT_NE(text.find("gps@acquisition"), std::string::npos);
    EXPECT_NE(text.find("gps#error@ok"), std::string::npos);
    EXPECT_NE(text.find("gps.measurement=false"), std::string::npos);
    // Timer variables are elided.
    EXPECT_EQ(text.find("@timer="), std::string::npos);
}

TEST(TraceTest, DescribeStepNamesTransition) {
    const eda::Network net = eda::build_network_from_source(models::gps_source());
    eda::NetworkState s = net.initial_state();
    Rng rng(1);
    net.elapse(s, 20.0);
    const auto cands = net.candidates(s, 120.0);
    ASSERT_FALSE(cands.empty());
    const eda::StepInfo info = net.execute(s, cands[0], rng);
    const std::string text = describe_step(net, info);
    EXPECT_NE(text.find("gps: acquisition -> active"), std::string::npos);
}

TEST(TraceTest, DescribeStepOnMarkovian) {
    const eda::Network net = eda::build_network_from_source(models::gps_source());
    eda::NetworkState s = net.initial_state();
    Rng rng(2);
    const auto rates = net.markovian_rates(s);
    ASSERT_EQ(rates.size(), 1u);
    const eda::StepInfo info = net.execute_markovian(s, rates[0].process, rng);
    const std::string text = describe_step(net, info);
    EXPECT_NE(text.find("gps#error: ok ->"), std::string::npos);
    EXPECT_NE(text.find("(rate"), std::string::npos);
}

TEST(TraceTest, CandidateDescribe) {
    const eda::Network net = eda::build_network_from_source(models::gps_source());
    const eda::NetworkState s = net.initial_state();
    const auto cands = net.candidates(s, 120.0);
    ASSERT_EQ(cands.size(), 1u);
    const std::string text = cands[0].describe(net.model());
    EXPECT_NE(text.find("tau gps"), std::string::npos);
    EXPECT_NE(text.find("[10, 120]"), std::string::npos);
}

TEST(TraceTest, FullPathTraceIsChronological) {
    const eda::Network net =
        eda::build_network_from_source(models::gps_restart_source(true));
    const auto prop =
        sim::make_reachability(net.model(), models::gps_restart_goal(), 2700.0);
    auto strat = make_strategy(StrategyKind::Asap);
    const PathGenerator gen(net, prop, *strat);
    Rng rng(12);
    Trace trace;
    (void)gen.run_traced(rng, trace);
    ASSERT_GE(trace.steps().size(), 2u);
    for (std::size_t i = 1; i < trace.steps().size(); ++i) {
        EXPECT_GE(trace.steps()[i].time, trace.steps()[i - 1].time - 1e-12);
    }
}

} // namespace
} // namespace slimsim::sim
