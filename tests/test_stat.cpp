#include "stat/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace slimsim::stat {
namespace {

TEST(Bernoulli, SummaryBasics) {
    BernoulliSummary s;
    EXPECT_EQ(s.mean(), 0.0);
    s.add(true);
    s.add(false);
    s.add(true);
    s.add(true);
    EXPECT_EQ(s.count, 4u);
    EXPECT_EQ(s.successes, 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.75);
}

TEST(Bernoulli, VarianceWorstCaseBeforeData) {
    BernoulliSummary s;
    EXPECT_DOUBLE_EQ(s.variance(), 0.25);
    s.add(true);
    EXPECT_DOUBLE_EQ(s.variance(), 0.25);
}

TEST(NormalQuantile, KnownValues) {
    EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
    EXPECT_NEAR(normal_quantile(0.995), 2.575829, 1e-5);
    EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
    EXPECT_NEAR(normal_quantile(1e-6), -4.753424, 1e-4);
}

TEST(ChernoffHoeffdingTest, SampleCountFormula) {
    // N = ceil(ln(2/delta) / (2 eps^2)).
    EXPECT_EQ(ChernoffHoeffding::sample_count(0.05, 0.01),
              static_cast<std::size_t>(std::ceil(std::log(2.0 / 0.05) / (2.0 * 1e-4))));
    // The paper's Fig. 5 parameters.
    const std::size_t n = ChernoffHoeffding::sample_count(0.1, 0.005);
    EXPECT_EQ(n, static_cast<std::size_t>(std::ceil(std::log(20.0) / (2.0 * 2.5e-5))));
}

TEST(ChernoffHoeffdingTest, StopsExactlyAtN) {
    const ChernoffHoeffding ch(0.1, 0.1);
    const std::size_t n = *ch.fixed_sample_count();
    BernoulliSummary s;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        s.add(false);
        EXPECT_FALSE(ch.should_stop(s));
    }
    s.add(true);
    EXPECT_TRUE(ch.should_stop(s));
}

TEST(ChernoffHoeffdingTest, RejectsBadParameters) {
    EXPECT_THROW(ChernoffHoeffding(0.0, 0.1), Error);
    EXPECT_THROW(ChernoffHoeffding(1.0, 0.1), Error);
    EXPECT_THROW(ChernoffHoeffding(0.1, 0.0), Error);
    EXPECT_THROW(ChernoffHoeffding(0.1, 1.0), Error);
}

TEST(ChernoffHoeffdingTest, CoverageProperty) {
    // Empirically: the CH estimate is within eps of the true p with
    // frequency >= 1 - delta (loose check over repeated experiments).
    const double p = 0.3;
    const double delta = 0.2;
    const double eps = 0.05;
    const ChernoffHoeffding ch(delta, eps);
    const std::size_t n = *ch.fixed_sample_count();
    Rng rng(2024);
    int covered = 0;
    const int experiments = 60;
    for (int e = 0; e < experiments; ++e) {
        std::size_t hits = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (rng.bernoulli(p)) ++hits;
        }
        const double estimate = static_cast<double>(hits) / static_cast<double>(n);
        if (std::abs(estimate - p) <= eps) ++covered;
    }
    EXPECT_GE(covered, static_cast<int>(experiments * (1.0 - delta)));
}

TEST(GaussTest, SmallerThanChernoffHoeffding) {
    const GaussCriterion g(0.05, 0.01);
    const ChernoffHoeffding ch(0.05, 0.01);
    EXPECT_LT(*g.fixed_sample_count(), *ch.fixed_sample_count());
    EXPECT_GT(*g.fixed_sample_count(), 0u);
}

TEST(ChowRobbinsTest, AdaptsToExtremeProbabilities) {
    // For p near 0, Chow-Robbins stops far earlier than CH.
    const ChowRobbins cr(0.05, 0.01);
    const ChernoffHoeffding ch(0.05, 0.01);
    Rng rng(7);
    BernoulliSummary s;
    std::size_t n_cr = 0;
    while (!cr.should_stop(s)) {
        s.add(rng.bernoulli(0.001));
        ++n_cr;
    }
    EXPECT_LT(n_cr, *ch.fixed_sample_count() / 2);
}

TEST(ChowRobbinsTest, NeedsMinimumSamples) {
    const ChowRobbins cr(0.05, 0.5, 64);
    BernoulliSummary s;
    for (int i = 0; i < 63; ++i) {
        s.add(false);
        EXPECT_FALSE(cr.should_stop(s));
    }
}

TEST(SprtTest, DecidesCorrectlyForClearCases) {
    Rng rng(99);
    // True p = 0.8, threshold 0.5: H0 (p >= 0.55) should be accepted.
    {
        const Sprt sprt(0.5, 0.05, 0.01);
        BernoulliSummary s;
        while (!sprt.should_stop(s)) s.add(rng.bernoulli(0.8));
        EXPECT_EQ(sprt.verdict(s), +1);
    }
    // True p = 0.2: H1 (p <= 0.45) should be accepted.
    {
        const Sprt sprt(0.5, 0.05, 0.01);
        BernoulliSummary s;
        while (!sprt.should_stop(s)) s.add(rng.bernoulli(0.2));
        EXPECT_EQ(sprt.verdict(s), -1);
    }
}

TEST(SprtTest, RejectsBadIndifference) {
    EXPECT_THROW(Sprt(0.5, 0.6, 0.05), Error);
    EXPECT_THROW(Sprt(0.01, 0.05, 0.05), Error);
}

TEST(MakeCriterion, Factory) {
    EXPECT_EQ(make_criterion(CriterionKind::ChernoffHoeffding, 0.1, 0.1)->name(),
              "chernoff-hoeffding");
    EXPECT_EQ(make_criterion(CriterionKind::Gauss, 0.1, 0.1)->name(), "gauss");
    EXPECT_EQ(make_criterion(CriterionKind::ChowRobbins, 0.1, 0.1)->name(),
              "chow-robbins");
}

// Parameterized sweep: CH sample count is monotone in delta and eps.
class ChMonotone : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ChMonotone, MonotoneInParameters) {
    const auto [delta, eps] = GetParam();
    const std::size_t n = ChernoffHoeffding::sample_count(delta, eps);
    EXPECT_GE(n, ChernoffHoeffding::sample_count(delta * 1.5, eps));
    EXPECT_GE(n, ChernoffHoeffding::sample_count(delta, eps * 1.5));
}

INSTANTIATE_TEST_SUITE_P(Grid, ChMonotone,
                         ::testing::Combine(::testing::Values(0.01, 0.05, 0.1, 0.3),
                                            ::testing::Values(0.005, 0.01, 0.05, 0.1)));

} // namespace
} // namespace slimsim::stat
