// Tests of the estimator health diagnostics (stat/diagnostics), the run
// journal's cross-worker determinism, and the /series time-series store
// (docs/observability.md): synthetic reports exercise each check's trigger
// condition, end-to-end runs prove the journal's deterministic fields and
// the diagnostics section are byte-identical across worker counts, and a
// seeded degenerate-splitting config is provably flagged with a hint.
#include "stat/diagnostics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/analysis.hpp"
#include "sim/observe.hpp"
#include "support/journal.hpp"

namespace slimsim {
namespace {

using telemetry::DiagnosticItem;
using telemetry::DiagnosticsReport;
using telemetry::RunReport;

const DiagnosticItem* find_check(const DiagnosticsReport& report,
                                 const std::string& check) {
    for (const auto& item : report.items) {
        if (item.check == check) return &item;
    }
    return nullptr;
}

// --- drift ------------------------------------------------------------------

TEST(Diagnostics, DriftingEstimateIsFlagged) {
    RunReport report;
    report.samples = 1000;
    report.successes = 500;
    report.run_status.achieved_half_width = 0.01;
    // At the midpoint the estimate was 0.2; it ended at 0.5 — a 30
    // half-width drift.
    report.stop_trajectory = {{250, 0, 50}, {500, 0, 100}, {1000, 0, 500}};
    const DiagnosticsReport diag = stat::diagnose_run(report);
    ASSERT_TRUE(diag.enabled);
    const DiagnosticItem* drift = find_check(diag, "estimate-drift");
    ASSERT_NE(drift, nullptr);
    EXPECT_EQ(drift->severity, "warning");
    EXPECT_GT(drift->value, 1.0);
    EXPECT_NE(drift->hint.find("--eps"), std::string::npos);
    EXPECT_GE(diag.warnings, 1u);
}

TEST(Diagnostics, StableEstimateIsOk) {
    RunReport report;
    report.samples = 1000;
    report.successes = 500;
    report.run_status.achieved_half_width = 0.05;
    report.stop_trajectory = {{500, 0, 251}, {1000, 0, 500}};
    const DiagnosticsReport diag = stat::diagnose_run(report);
    const DiagnosticItem* drift = find_check(diag, "estimate-drift");
    ASSERT_NE(drift, nullptr);
    EXPECT_EQ(drift->severity, "ok");
    EXPECT_TRUE(drift->hint.empty());
}

// --- CI calibration ---------------------------------------------------------

TEST(Diagnostics, OverdispersedBatchesAreFlagged) {
    RunReport report;
    report.samples = 800;
    report.successes = 400;
    report.run_status.achieved_half_width = 1.0; // mute the drift check
    // Eight 100-sample segments alternating between 90% and 10% success:
    // far more between-batch variance than iid Bernoulli sampling allows.
    std::uint64_t samples = 0;
    std::uint64_t successes = 0;
    for (int i = 0; i < 8; ++i) {
        samples += 100;
        successes += (i % 2 == 0) ? 90 : 10;
        report.stop_trajectory.push_back({samples, 0, successes});
    }
    const DiagnosticsReport diag = stat::diagnose_run(report);
    const DiagnosticItem* cal = find_check(diag, "ci-calibration");
    ASSERT_NE(cal, nullptr);
    EXPECT_EQ(cal->severity, "warning");
    EXPECT_GT(cal->value, 2.0);
    EXPECT_NE(cal->hint.find("effective sample size"), std::string::npos);
    const DiagnosticItem* ess = find_check(diag, "effective-sample-size");
    ASSERT_NE(ess, nullptr);
    EXPECT_LT(ess->value, 100.0); // ~800 / 73
}

TEST(Diagnostics, WellCalibratedBatchesAreOk) {
    RunReport report;
    report.samples = 800;
    report.successes = 400;
    report.run_status.achieved_half_width = 1.0;
    std::uint64_t samples = 0;
    std::uint64_t successes = 0;
    for (int i = 0; i < 8; ++i) {
        samples += 100;
        successes += 50;
        report.stop_trajectory.push_back({samples, 0, successes});
    }
    const DiagnosticsReport diag = stat::diagnose_run(report);
    const DiagnosticItem* cal = find_check(diag, "ci-calibration");
    ASSERT_NE(cal, nullptr);
    EXPECT_EQ(cal->severity, "ok");
}

TEST(Diagnostics, TooFewBatchesStaySilent) {
    RunReport report;
    report.samples = 300;
    report.successes = 150;
    report.stop_trajectory = {{100, 0, 50}, {200, 0, 100}, {300, 0, 150}};
    const DiagnosticsReport diag = stat::diagnose_run(report);
    EXPECT_EQ(find_check(diag, "ci-calibration"), nullptr);
}

// --- splitting health -------------------------------------------------------

TEST(Diagnostics, StarvedSplittingLevelIsFlagged) {
    RunReport report;
    report.splitting.enabled = true;
    report.splitting.roots = 1000;
    report.splitting.goal_hits = 3;
    // 5 of 1000 roots crossed level 1: 0.5% — starved.
    report.splitting.levels = {{1, 5, 40}};
    const DiagnosticsReport diag = stat::diagnose_run(report);
    const DiagnosticItem* level = find_check(diag, "splitting-level");
    ASSERT_NE(level, nullptr);
    EXPECT_EQ(level->severity, "warning");
    EXPECT_NE(level->hint.find("--split"), std::string::npos);
    EXPECT_NE(level->hint.find("starved"), std::string::npos);
}

TEST(Diagnostics, SaturatedSplittingLevelIsFlagged) {
    RunReport report;
    report.splitting.enabled = true;
    report.splitting.roots = 1000;
    report.splitting.goal_hits = 900;
    // 950 of 1000 roots crossed level 1: the level is nearly free.
    report.splitting.levels = {{1, 950, 0}};
    const DiagnosticsReport diag = stat::diagnose_run(report);
    const DiagnosticItem* level = find_check(diag, "splitting-level");
    ASSERT_NE(level, nullptr);
    EXPECT_EQ(level->severity, "warning");
    EXPECT_NE(level->hint.find("--split-auto"), std::string::npos);
}

TEST(Diagnostics, ZeroGoalHitsAreCritical) {
    RunReport report;
    report.splitting.enabled = true;
    report.splitting.roots = 1000;
    report.splitting.goal_hits = 0;
    const DiagnosticsReport diag = stat::diagnose_run(report);
    const DiagnosticItem* hits = find_check(diag, "splitting-goal-hits");
    ASSERT_NE(hits, nullptr);
    EXPECT_EQ(hits->severity, "critical");
    EXPECT_NE(hits->hint.find("--split"), std::string::npos);
}

// --- curve band -------------------------------------------------------------

TEST(Diagnostics, LooseCurveBandAndEmptyBoundsAreFlagged) {
    RunReport report;
    report.params = {{"eps", 0.01}};
    report.curve.simultaneous_eps = 0.05;
    report.curve.points = {{1.0, 0, 0.0}, {2.0, 7, 0.1}};
    const DiagnosticsReport diag = stat::diagnose_run(report);
    const DiagnosticItem* band = find_check(diag, "curve-band");
    ASSERT_NE(band, nullptr);
    EXPECT_EQ(band->severity, "warning");
    const DiagnosticItem* empty = find_check(diag, "curve-empty-bounds");
    ASSERT_NE(empty, nullptr);
    EXPECT_EQ(empty->severity, "warning");
    EXPECT_EQ(empty->value, 1.0);
}

// --- series store -----------------------------------------------------------

sim::ProgressSnapshot snapshot_at(std::uint64_t samples) {
    sim::ProgressSnapshot s;
    s.samples = samples;
    s.successes = samples / 2;
    s.estimate = 0.5;
    return s;
}

TEST(SeriesStore, CoarsensByDoublingTheStride) {
    sim::SeriesStore store(8);
    for (std::uint64_t i = 1; i <= 100; ++i) store.push(snapshot_at(i));
    const std::vector<sim::ProgressSnapshot> points = store.points();
    ASSERT_GE(points.size(), 2u);
    EXPECT_LE(points.size(), 9u); // capacity + the exact latest snapshot
    // Oldest first, strictly increasing, latest exact.
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_LT(points[i - 1].samples, points[i].samples);
    }
    EXPECT_EQ(points.back().samples, 100u);
    const std::string json = store.to_json();
    EXPECT_NE(json.find("\"stride\":"), std::string::npos);
    EXPECT_NE(json.find("\"points\":["), std::string::npos);
}

TEST(SeriesStore, LatestIsAlwaysRetained) {
    sim::SeriesStore store(4);
    for (std::uint64_t i = 1; i <= 7; ++i) store.push(snapshot_at(i));
    EXPECT_EQ(store.points().back().samples, 7u);
    store.push(snapshot_at(1000));
    EXPECT_EQ(store.points().back().samples, 1000u);
}

// --- end-to-end determinism -------------------------------------------------

// Markovian single-fault model: P( <> [0,2] broken ) = 1 - e^{-1}.
constexpr const char* kModel = R"(
    root S.I;
    system S
    features broken: out data port bool default false;
    end S;
    system implementation S.I end S.I;
    error model EM
    features ok: initial state; bad: error state;
    end EM;
    error model implementation EM.I
    events f: error event occurrence poisson 0.5 per sec;
    transitions ok -[f]-> bad;
    end EM.I;
    fault injections
      component root uses error model EM.I;
      component root in state bad effect broken := true;
    end fault injections;
)";

/// Two rarely-failing components; the goal needs both failed. With the
/// failure count as the level function, level 1 is crossed by well under 1%
/// of roots at this bound: a seeded degenerate-level configuration.
constexpr const char* kRareModel = R"(
    root S.I;
    system Leaf
    features broken: out data port bool default false;
    end Leaf;
    system implementation Leaf.I end Leaf.I;
    system S
    features all_broken: out data port bool default false;
    end S;
    system implementation S.I
    subcomponents
      c0: system Leaf.I;
      c1: system Leaf.I;
    flows
      all_broken := c0.broken and c1.broken;
    end S.I;
    error model EM
    features ok: initial state; bad: error state;
    end EM;
    error model implementation EM.I
    events f: error event occurrence poisson 0.001 per sec;
    transitions ok -[f]-> bad;
    end EM.I;
    fault injections
      component c0 uses error model EM.I;
      component c0 in state bad effect broken := true;
      component c1 uses error model EM.I;
      component c1 in state bad effect broken := true;
    end fault injections;
)";

// The journal's deterministic fields and the diagnostics section must be
// byte-identical across worker counts under per-path streams (the ISSUE's
// acceptance bar for the observability surface).
TEST(JournalDeterminism, DeterministicViewIsByteIdenticalAcrossWorkers) {
    const eda::Network net = eda::build_network_from_source(kModel);
    std::string reference_journal;
    DiagnosticsReport reference_diag;
    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        journal::Journal journal(journal::Level::Trace);
        AnalysisRequest req;
        req.property = sim::make_reachability(net.model(), "broken", 2.0);
        req.model_label = "fault.slim";
        req.mode = AnalysisMode::EstimateParallel;
        req.workers = workers;
        req.delta = 0.1;
        req.eps = 0.05;
        req.seed = 7;
        req.sim.control.deterministic_streams = true;
        req.journal = &journal;
        const AnalysisResult res = run_analysis(net, req);
        ASSERT_TRUE(res.report.diagnostics.enabled);

        const std::string jsonl = journal.to_jsonl(/*deterministic_view=*/true);
        EXPECT_NE(jsonl.find("\"event\":\"run_start\""), std::string::npos);
        EXPECT_NE(jsonl.find("\"event\":\"mark\""), std::string::npos);
        EXPECT_NE(jsonl.find("\"event\":\"run_end\""), std::string::npos);
        // The deterministic view zeroes wall-clock fields.
        EXPECT_EQ(jsonl.find("\"t\":0,"), jsonl.find("\"t\":"));
        if (workers == 1) {
            reference_journal = jsonl;
            reference_diag = res.report.diagnostics;
            continue;
        }
        EXPECT_EQ(jsonl, reference_journal) << "workers=" << workers;
        const DiagnosticsReport& diag = res.report.diagnostics;
        EXPECT_EQ(diag.warnings, reference_diag.warnings);
        ASSERT_EQ(diag.items.size(), reference_diag.items.size());
        for (std::size_t i = 0; i < diag.items.size(); ++i) {
            EXPECT_EQ(diag.items[i].check, reference_diag.items[i].check);
            EXPECT_EQ(diag.items[i].severity, reference_diag.items[i].severity);
            EXPECT_EQ(diag.items[i].value, reference_diag.items[i].value);
            EXPECT_EQ(diag.items[i].hint, reference_diag.items[i].hint);
        }
    }
}

// Turning the journal on must not move a single sample.
TEST(JournalDeterminism, ResultsAreByteIdenticalWithJournalOnAndOff) {
    const eda::Network net = eda::build_network_from_source(kModel);
    for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
        AnalysisRequest req;
        req.property = sim::make_reachability(net.model(), "broken", 2.0);
        req.mode = workers > 1 ? AnalysisMode::EstimateParallel
                               : AnalysisMode::Estimate;
        req.workers = workers;
        req.delta = 0.1;
        req.eps = 0.05;
        req.seed = 11;
        const AnalysisResult plain = run_analysis(net, req);

        journal::Journal journal(journal::Level::Trace);
        req.journal = &journal;
        const AnalysisResult logged = run_analysis(net, req);
        EXPECT_EQ(plain.estimation.samples, logged.estimation.samples);
        EXPECT_EQ(plain.estimation.successes, logged.estimation.successes);
        EXPECT_EQ(plain.value, logged.value);
        EXPECT_GT(journal.size(), 0u);
    }
}

// The report carries the diagnostics section under schema v5.
TEST(JournalDeterminism, ReportJsonCarriesDiagnosticsSection) {
    const eda::Network net = eda::build_network_from_source(kModel);
    AnalysisRequest req;
    req.property = sim::make_reachability(net.model(), "broken", 2.0);
    req.delta = 0.1;
    req.eps = 0.05;
    const AnalysisResult res = run_analysis(net, req);
    const std::string doc = res.report.to_json().dump();
    EXPECT_NE(doc.find("\"version\":6"), std::string::npos);
    EXPECT_NE(doc.find("\"diagnostics\":{"), std::string::npos);
    EXPECT_NE(doc.find("\"checks\":["), std::string::npos);
}

// The acceptance-criterion config: a seeded splitting run whose level 1 is
// provably starved, flagged with an actionable --split hint end to end.
TEST(SplittingDiagnostics, DegenerateLevelIsFlaggedWithAHint) {
    const eda::Network net = eda::build_network_from_source(kRareModel);
    AnalysisRequest req;
    req.property = sim::make_reachability(net.model(), "all_broken", 1.0);
    req.mode = AnalysisMode::EstimateSplitting;
    req.seed = 5;
    req.splitting.level =
        "(if c0.broken then 1 else 0) + (if c1.broken then 1 else 0)";
    req.splitting.factor = 4;
    req.splitting.base_runs = 2048;
    const AnalysisResult res = run_analysis(net, req);
    const DiagnosticsReport& diag = res.report.diagnostics;
    ASSERT_TRUE(diag.enabled);
    EXPECT_GE(diag.warnings, 1u);
    bool flagged = false;
    for (const auto& item : diag.items) {
        if (item.severity == "ok") continue;
        if ((item.check == "splitting-level" &&
             item.hint.find("--split") != std::string::npos) ||
            (item.check == "splitting-goal-hits" &&
             item.hint.find("--split") != std::string::npos)) {
            flagged = true;
        }
    }
    EXPECT_TRUE(flagged) << res.report.to_json().dump(2);
}

} // namespace
} // namespace slimsim
