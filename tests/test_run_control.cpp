// Run hardening tests (docs/robustness.md): checkpoint serialization and
// validation, the RunGovernor's deterministic stop order, achieved
// half-widths, budget-limited partial results, cooperative interruption,
// deterministic checkpoint/resume across worker counts and interruption
// points, and fault-isolated workers (FailFast vs Tolerate).
#include "sim/run_control.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <csignal>
#include <fstream>

#include "sim/parallel_runner.hpp"
#include "sim/runner.hpp"
#include "stat/generators.hpp"

namespace slimsim::sim {
namespace {

constexpr const char* kModel = R"(
    root S.I;
    system S
    features broken: out data port bool default false;
    end S;
    system implementation S.I end S.I;
    error model EM
    features ok: initial state; bad: error state;
    end EM;
    error model implementation EM.I
    events f: error event occurrence poisson 0.5 per sec;
    transitions ok -[f]-> bad;
    end EM.I;
    fault injections
      component root uses error model EM.I;
      component root in state bad effect broken := true;
    end fault injections;
)";

// Immediate self-loop: every path trips the Zeno guard (max_steps).
constexpr const char* kZeno = R"(
    root S.I;
    system S
    features never: out data port bool default false;
    end S;
    system implementation S.I
    modes a: initial mode;
    transitions a -[]-> a;
    end S.I;
)";

// One immediate transition into a mode with no successors: every path
// deadlocks at t=0.
constexpr const char* kDeadlock = R"(
    root S.I;
    system S
    features never: out data port bool default false;
    end S;
    system implementation S.I
    modes a: initial mode; b: mode;
    transitions a -[]-> b;
    end S.I;
)";

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

RunCheckpoint sample_checkpoint() {
    RunCheckpoint ck;
    ck.model_hash = 0x1234abcdULL;
    ck.seed = 42;
    ck.property_hash = fnv1a64("P( <> [0,2] broken )");
    ck.strategy = "progressive";
    ck.criterion = "chernoff-hoeffding";
    ck.cursor = 137;
    ck.successes = 55;
    ck.total_steps = 4211;
    ck.terminal_tags = {55, 80, 0, 1, 0, 1};
    ck.error_log = {"path 12: deadlock at t=0.000000", "path 99: boom"};
    ck.curve_bounds = {0.5, 1.0, 2.0};
    ck.curve_tree = {0, 3, 7, 11};
    return ck;
}

TEST(RunCheckpoint, RoundTripIsBitExact) {
    const RunCheckpoint ck = sample_checkpoint();
    const std::string path = temp_path("ck_roundtrip.bin");
    ck.save(path);
    const RunCheckpoint back = RunCheckpoint::load(path);
    EXPECT_EQ(back.version, RunCheckpoint::kVersion);
    EXPECT_EQ(back.model_hash, ck.model_hash);
    EXPECT_EQ(back.seed, ck.seed);
    EXPECT_EQ(back.property_hash, ck.property_hash);
    EXPECT_EQ(back.strategy, ck.strategy);
    EXPECT_EQ(back.criterion, ck.criterion);
    EXPECT_EQ(back.cursor, ck.cursor);
    EXPECT_EQ(back.successes, ck.successes);
    EXPECT_EQ(back.total_steps, ck.total_steps);
    EXPECT_EQ(back.terminal_tags, ck.terminal_tags);
    EXPECT_EQ(back.error_log, ck.error_log);
    EXPECT_EQ(back.curve_bounds, ck.curve_bounds);
    EXPECT_EQ(back.curve_tree, ck.curve_tree);
}

TEST(RunCheckpoint, SaveIsAtomic) {
    // The temp file is renamed away; only the final name remains.
    const std::string path = temp_path("ck_atomic.bin");
    sample_checkpoint().save(path);
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    EXPECT_TRUE(std::ifstream(path).good());
}

TEST(RunCheckpoint, LoadRejectsMissingCorruptAndTruncatedFiles) {
    const auto message_of = [](const std::string& p) {
        try {
            (void)RunCheckpoint::load(p);
        } catch (const Error& e) {
            return std::string(e.what());
        }
        return std::string();
    };
    EXPECT_NE(message_of(temp_path("ck_does_not_exist.bin")).find("--resume"),
              std::string::npos);

    const std::string garbage = temp_path("ck_garbage.bin");
    std::ofstream(garbage) << "definitely not a checkpoint";
    EXPECT_NE(message_of(garbage).find("--resume"), std::string::npos);

    const std::string good = temp_path("ck_to_corrupt.bin");
    sample_checkpoint().save(good);
    std::string bytes;
    {
        std::ifstream in(good, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    // Flip one payload byte: the checksum must catch it.
    std::string corrupt_bytes = bytes;
    corrupt_bytes[bytes.size() / 2] ^= 0x40;
    const std::string corrupt = temp_path("ck_corrupt.bin");
    std::ofstream(corrupt, std::ios::binary).write(corrupt_bytes.data(),
                                                   corrupt_bytes.size());
    EXPECT_NE(message_of(corrupt).find("checksum"), std::string::npos);

    // Truncation is also a checksum/size failure, never UB.
    const std::string truncated = temp_path("ck_truncated.bin");
    std::ofstream(truncated, std::ios::binary).write(bytes.data(), bytes.size() / 3);
    EXPECT_NE(message_of(truncated).find("--resume"), std::string::npos);
}

TEST(RunCheckpoint, EveryTruncationPrefixIsRejectedWithTheFlagName) {
    // A checkpoint cut at ANY byte boundary — mid-magic, mid-header,
    // mid-payload, mid-checksum — must come back as the one-line --resume
    // diagnostic, never an unhandled exception or a bogus parse.
    const std::string good = temp_path("ck_prefixes.bin");
    sample_checkpoint().save(good);
    std::string bytes;
    {
        std::ifstream in(good, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    ASSERT_GT(bytes.size(), 16u);
    const std::string cut = temp_path("ck_prefix_cut.bin");
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        std::ofstream(cut, std::ios::binary | std::ios::trunc)
            .write(bytes.data(), static_cast<std::streamsize>(len));
        try {
            (void)RunCheckpoint::load(cut);
            FAIL() << "prefix of " << len << " bytes was accepted";
        } catch (const Error& e) {
            EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos)
                << "prefix " << len << ": " << e.what();
        }
    }
    std::remove(cut.c_str());
    std::remove(good.c_str());
}

TEST(RunCheckpoint, ValidateNamesTheMismatch) {
    const RunCheckpoint ck = sample_checkpoint();
    const std::string prop = "P( <> [0,2] broken )";
    const auto expect_validate_error = [&](auto mutate, const char* needle) {
        RunCheckpoint bad = ck;
        std::uint64_t model = ck.model_hash;
        std::uint64_t seed = ck.seed;
        std::string property = prop;
        std::string strategy = ck.strategy;
        std::string criterion = ck.criterion;
        std::vector<double> bounds = ck.curve_bounds;
        mutate(bad, model, seed, property, strategy, criterion, bounds);
        try {
            bad.validate(model, seed, property, strategy, criterion, bounds);
            FAIL() << "expected a validation error mentioning " << needle;
        } catch (const Error& e) {
            EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
                << e.what();
        }
    };
    // The happy path validates.
    EXPECT_NO_THROW(ck.validate(ck.model_hash, ck.seed, prop, ck.strategy,
                                ck.criterion, ck.curve_bounds));
    // A zero model hash on either side skips the model check.
    EXPECT_NO_THROW(ck.validate(0, ck.seed, prop, ck.strategy, ck.criterion,
                                ck.curve_bounds));
    expect_validate_error([](RunCheckpoint&, std::uint64_t& model, std::uint64_t&,
                             std::string&, std::string&, std::string&,
                             std::vector<double>&) { model ^= 1; },
                          "model");
    expect_validate_error([](RunCheckpoint&, std::uint64_t&, std::uint64_t& seed,
                             std::string&, std::string&, std::string&,
                             std::vector<double>&) { seed += 1; },
                          "--seed");
    expect_validate_error([](RunCheckpoint&, std::uint64_t&, std::uint64_t&,
                             std::string& property, std::string&, std::string&,
                             std::vector<double>&) { property += "x"; },
                          "property");
    expect_validate_error([](RunCheckpoint&, std::uint64_t&, std::uint64_t&,
                             std::string&, std::string& strategy, std::string&,
                             std::vector<double>&) { strategy = "asap"; },
                          "strategy");
    expect_validate_error([](RunCheckpoint&, std::uint64_t&, std::uint64_t&,
                             std::string&, std::string&, std::string& criterion,
                             std::vector<double>&) { criterion = "gauss"; },
                          "criterion");
    expect_validate_error([](RunCheckpoint&, std::uint64_t&, std::uint64_t&,
                             std::string&, std::string&, std::string&,
                             std::vector<double>& bounds) { bounds.push_back(9.0); },
                          "curve");
}

TEST(RunGovernor, DeterministicCausesBeatTimingDependentOnes) {
    // An exhausted sample budget AND a raised interrupt flag: the sample
    // budget must win so the stop point is host-independent.
    std::atomic<bool> flag{true};
    RunControlOptions control;
    control.budget.max_samples = 10;
    control.interrupt = &flag;
    RunGovernor governor(control, std::chrono::steady_clock::now());
    EXPECT_TRUE(governor.should_stop(10, 0, 0));
    EXPECT_EQ(governor.status(), RunStatus::BudgetExhausted);
    EXPECT_NE(governor.stop_cause().find("--max-samples"), std::string::npos);
}

TEST(RunGovernor, InterruptStopsAndLatches) {
    std::atomic<bool> flag{false};
    RunControlOptions control;
    control.interrupt = &flag;
    RunGovernor governor(control, std::chrono::steady_clock::now());
    EXPECT_FALSE(governor.should_stop(1000, 1000, 0));
    flag.store(true);
    EXPECT_TRUE(governor.should_stop(1001, 1001, 0));
    EXPECT_EQ(governor.status(), RunStatus::Interrupted);
    // Latched: the first cause sticks even if the flag clears.
    flag.store(false);
    EXPECT_TRUE(governor.should_stop(1002, 1002, 0));
    EXPECT_EQ(governor.status(), RunStatus::Interrupted);
}

TEST(RunGovernor, ErrorBudgetDegrades) {
    RunControlOptions control;
    control.fault.kind = FaultPolicyKind::Tolerate;
    control.fault.max_path_errors = 3;
    RunGovernor governor(control, std::chrono::steady_clock::now());
    EXPECT_FALSE(governor.should_stop(10, 0, 3));
    EXPECT_TRUE(governor.should_stop(11, 0, 4));
    EXPECT_EQ(governor.status(), RunStatus::Degraded);
    EXPECT_NE(governor.stop_cause().find("--max-path-errors"), std::string::npos);
}

TEST(RunGovernor, StepBudget) {
    RunControlOptions control;
    control.budget.max_total_steps = 500;
    RunGovernor governor(control, std::chrono::steady_clock::now());
    EXPECT_FALSE(governor.should_stop(1, 499, 0));
    EXPECT_TRUE(governor.should_stop(2, 500, 0));
    EXPECT_EQ(governor.status(), RunStatus::BudgetExhausted);
    EXPECT_NE(governor.stop_cause().find("--max-steps"), std::string::npos);
}

TEST(AchievedHalfWidth, MatchesTheCriterionFormulas) {
    stat::BernoulliSummary s;
    const stat::ChernoffHoeffding ch(0.05, 0.01);
    EXPECT_EQ(ch.achieved_half_width(s), 0.0); // nothing yet
    s.count = 1000;
    s.successes = 300;
    EXPECT_NEAR(ch.achieved_half_width(s), std::sqrt(std::log(2.0 / 0.05) / 2000.0),
                1e-12);
    // More samples -> tighter achieved width, for every criterion.
    const stat::GaussCriterion gauss(0.05, 0.01);
    const stat::ChowRobbins chow(0.05, 0.01);
    for (const stat::StopCriterion* c :
         {static_cast<const stat::StopCriterion*>(&ch),
          static_cast<const stat::StopCriterion*>(&gauss),
          static_cast<const stat::StopCriterion*>(&chow)}) {
        stat::BernoulliSummary few{1000, 300};
        stat::BernoulliSummary many{4000, 1200};
        EXPECT_GT(c->achieved_half_width(few), 0.0) << c->name();
        EXPECT_GT(c->achieved_half_width(few), c->achieved_half_width(many))
            << c->name();
    }
}

TEST(SignalHandling, FlagIsSetOnceAndClearable) {
    install_signal_handlers();
    clear_interrupt();
    ASSERT_FALSE(interrupt_flag()->load());
    std::raise(SIGINT); // our handler: sets the flag, does not terminate
    EXPECT_TRUE(interrupt_flag()->load());
    clear_interrupt();
    EXPECT_FALSE(interrupt_flag()->load());
}

struct RunControlSim : ::testing::Test {
    eda::Network net = eda::build_network_from_source(kModel);
    TimedReachability prop = make_reachability(net.model(), "broken", 2.0);
    stat::ChernoffHoeffding ch{0.1, 0.05}; // 600 samples
};

TEST_F(RunControlSim, SampleBudgetReturnsPartialEstimate) {
    SimOptions options;
    options.control.budget.max_samples = 100;
    const auto res = estimate(net, prop, StrategyKind::Progressive, ch, 7, options);
    EXPECT_EQ(res.status, RunStatus::BudgetExhausted);
    EXPECT_EQ(res.samples, 100u);
    EXPECT_NE(res.stop_cause.find("--max-samples"), std::string::npos);
    EXPECT_NEAR(res.achieved_half_width, std::sqrt(std::log(2.0 / 0.1) / 200.0), 1e-12);
    EXPECT_GT(res.estimate, 0.0); // partial but real
}

TEST_F(RunControlSim, StepBudgetReturnsPartialEstimate) {
    SimOptions options;
    options.control.budget.max_total_steps = 50;
    const auto res = estimate(net, prop, StrategyKind::Progressive, ch, 7, options);
    EXPECT_EQ(res.status, RunStatus::BudgetExhausted);
    EXPECT_LT(res.samples, *ch.fixed_sample_count());
    EXPECT_NE(res.stop_cause.find("--max-steps"), std::string::npos);
}

TEST_F(RunControlSim, InterruptFlagStopsSequentialAndParallelRuns) {
    std::atomic<bool> flag{true}; // already raised: stop before any sample
    SimOptions options;
    options.control.interrupt = &flag;
    const auto res = estimate(net, prop, StrategyKind::Progressive, ch, 7, options);
    EXPECT_EQ(res.status, RunStatus::Interrupted);
    EXPECT_EQ(res.samples, 0u);
    EXPECT_EQ(res.stop_cause, "interrupted by signal");

    ParallelOptions po;
    po.workers = 2;
    po.sim = options;
    const auto par = estimate_parallel(net, prop, StrategyKind::Progressive, ch, 7, po);
    EXPECT_EQ(par.status, RunStatus::Interrupted);
    EXPECT_LT(par.samples, *ch.fixed_sample_count());
}

TEST_F(RunControlSim, BudgetStopWritesACheckpoint) {
    const std::string path = temp_path("ck_budget_stop.bin");
    SimOptions options;
    options.control.budget.max_samples = 64;
    options.control.checkpoint_path = path;
    const auto res = estimate(net, prop, StrategyKind::Progressive, ch, 7, options);
    EXPECT_EQ(res.status, RunStatus::BudgetExhausted);
    const RunCheckpoint ck = RunCheckpoint::load(path);
    EXPECT_EQ(ck.cursor, 64u);
    EXPECT_EQ(ck.successes, res.successes);
    EXPECT_NO_THROW(ck.validate(0, 7, prop.text, "progressive",
                                "chernoff-hoeffding", {}));
}

TEST_F(RunControlSim, ResumeReproducesTheUninterruptedRunByteIdentically) {
    // Reference: one uninterrupted run with per-path streams.
    SimOptions ref_options;
    ref_options.control.deterministic_streams = true;
    const auto ref = estimate(net, prop, StrategyKind::Progressive, ch, 7, ref_options);
    EXPECT_EQ(ref.status, RunStatus::Converged);

    for (const std::uint64_t cut : {1ULL, 37ULL, 599ULL}) {
        // Interrupt the run at `cut` accepted samples via a sample budget.
        const std::string path = temp_path("ck_resume_seq.bin");
        SimOptions first;
        first.control.budget.max_samples = cut;
        first.control.checkpoint_path = path;
        const auto partial = estimate(net, prop, StrategyKind::Progressive, ch, 7, first);
        EXPECT_EQ(partial.samples, cut);

        const RunCheckpoint ck = RunCheckpoint::load(path);
        SimOptions second;
        second.control.resume = &ck;
        const auto resumed = estimate(net, prop, StrategyKind::Progressive, ch, 7, second);
        EXPECT_EQ(resumed.status, RunStatus::Converged) << "cut " << cut;
        EXPECT_EQ(resumed.samples, ref.samples) << "cut " << cut;
        EXPECT_EQ(resumed.successes, ref.successes) << "cut " << cut;
        EXPECT_EQ(resumed.estimate, ref.estimate) << "cut " << cut;
        EXPECT_EQ(resumed.terminals, ref.terminals) << "cut " << cut;
    }
}

TEST_F(RunControlSim, ParallelResumeIsByteIdenticalAtEveryWorkerCount) {
    SimOptions ref_options;
    ref_options.control.deterministic_streams = true;
    const auto ref = estimate(net, prop, StrategyKind::Progressive, ch, 11, ref_options);

    for (const std::size_t workers : {1u, 2u, 4u}) {
        const std::string path = temp_path("ck_resume_par.bin");
        ParallelOptions first;
        first.workers = workers;
        first.sim.control.budget.max_samples = 113;
        first.sim.control.checkpoint_path = path;
        const auto partial =
            estimate_parallel(net, prop, StrategyKind::Progressive, ch, 11, first);
        EXPECT_EQ(partial.samples, 113u) << workers << " workers";
        EXPECT_EQ(partial.status, RunStatus::BudgetExhausted);

        const RunCheckpoint ck = RunCheckpoint::load(path);
        EXPECT_EQ(ck.cursor, 113u);
        for (const std::size_t resume_workers : {1u, 2u, 4u}) {
            ParallelOptions second;
            second.workers = resume_workers;
            second.sim.control.resume = &ck;
            const auto resumed =
                estimate_parallel(net, prop, StrategyKind::Progressive, ch, 11, second);
            EXPECT_EQ(resumed.samples, ref.samples)
                << workers << " -> " << resume_workers << " workers";
            EXPECT_EQ(resumed.successes, ref.successes)
                << workers << " -> " << resume_workers << " workers";
            EXPECT_EQ(resumed.terminals, ref.terminals)
                << workers << " -> " << resume_workers << " workers";
        }
    }
}

TEST_F(RunControlSim, PeriodicCheckpointsDoNotPerturbTheRun) {
    SimOptions ref_options;
    ref_options.control.deterministic_streams = true;
    const auto ref = estimate(net, prop, StrategyKind::Progressive, ch, 5, ref_options);

    SimOptions options;
    options.control.checkpoint_path = temp_path("ck_periodic.bin");
    options.control.checkpoint_every = 50;
    const auto res = estimate(net, prop, StrategyKind::Progressive, ch, 5, options);
    EXPECT_EQ(res.samples, ref.samples);
    EXPECT_EQ(res.successes, ref.successes);
    // The final checkpoint reflects the converged state.
    const RunCheckpoint ck = RunCheckpoint::load(options.control.checkpoint_path);
    EXPECT_EQ(ck.cursor, res.samples);
    EXPECT_EQ(ck.successes, res.successes);
}

TEST_F(RunControlSim, CurveResumeIsByteIdentical) {
    CurveOptions curve;
    curve.bounds = {0.5, 1.0, 2.0};
    SimOptions plain;
    const auto ref = estimate_curve(net, prop, StrategyKind::Progressive, ch, curve, 3,
                                    plain, nullptr);

    const std::string path = temp_path("ck_resume_curve.bin");
    SimOptions first;
    first.control.budget.max_samples = 200;
    first.control.checkpoint_path = path;
    const auto partial = estimate_curve(net, prop, StrategyKind::Progressive, ch, curve,
                                        3, first, nullptr);
    EXPECT_EQ(partial.samples, 200u);
    EXPECT_EQ(partial.status, RunStatus::BudgetExhausted);

    const RunCheckpoint ck = RunCheckpoint::load(path);
    EXPECT_EQ(ck.curve_bounds, curve.bounds);
    for (const std::size_t workers : {0u, 1u, 2u, 4u}) {
        CurveResult resumed;
        if (workers == 0) {
            SimOptions second;
            second.control.resume = &ck;
            resumed = estimate_curve(net, prop, StrategyKind::Progressive, ch, curve, 3,
                                     second, nullptr);
        } else {
            ParallelOptions second;
            second.workers = workers;
            second.sim.control.resume = &ck;
            resumed = estimate_curve_parallel(net, prop, StrategyKind::Progressive, ch,
                                              curve, 3, second, nullptr);
        }
        EXPECT_EQ(resumed.samples, ref.samples) << workers << " workers";
        ASSERT_EQ(resumed.points.size(), ref.points.size());
        for (std::size_t i = 0; i < ref.points.size(); ++i) {
            EXPECT_EQ(resumed.points[i].successes, ref.points[i].successes)
                << workers << " workers, bound " << ref.points[i].bound;
        }
        EXPECT_EQ(resumed.terminals, ref.terminals) << workers << " workers";
    }
}

TEST_F(RunControlSim, ResumeValidationRejectsMismatchedRuns) {
    const std::string path = temp_path("ck_mismatch.bin");
    SimOptions first;
    first.control.budget.max_samples = 10;
    first.control.checkpoint_path = path;
    (void)estimate(net, prop, StrategyKind::Progressive, ch, 7, first);
    const RunCheckpoint ck = RunCheckpoint::load(path);

    SimOptions wrong_seed;
    wrong_seed.control.resume = &ck;
    EXPECT_THROW((void)estimate(net, prop, StrategyKind::Progressive, ch, 8, wrong_seed),
                 Error);
    SimOptions wrong_strategy;
    wrong_strategy.control.resume = &ck;
    EXPECT_THROW((void)estimate(net, prop, StrategyKind::Asap, ch, 7, wrong_strategy),
                 Error);
    const stat::GaussCriterion gauss(0.1, 0.05);
    SimOptions wrong_criterion;
    wrong_criterion.control.resume = &ck;
    EXPECT_THROW(
        (void)estimate(net, prop, StrategyKind::Progressive, gauss, 7, wrong_criterion),
        Error);
}

struct FaultIsolation : ::testing::Test {
    eda::Network zeno = eda::build_network_from_source(kZeno);
    TimedReachability zeno_prop = make_reachability(zeno.model(), "never", 1.0);
    eda::Network dead = eda::build_network_from_source(kDeadlock);
    TimedReachability dead_prop = make_reachability(dead.model(), "never", 1.0);
    stat::ChernoffHoeffding ch{0.1, 0.1}; // 150 samples
};

TEST_F(FaultIsolation, FailFastMessageSurvivesTheWorkerBoundary) {
    // Deadlock and timelock faults raised inside worker threads must arrive
    // at the caller with their original diagnostic, at every worker count.
    for (const std::size_t workers : {1u, 2u, 4u}) {
        ParallelOptions po;
        po.workers = workers;
        po.sim.deadlock = StuckPolicy::Error;
        try {
            (void)estimate_parallel(dead, dead_prop, StrategyKind::Asap, ch, 1, po);
            FAIL() << "expected a deadlock error at " << workers << " workers";
        } catch (const Error& e) {
            EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos)
                << e.what();
        }
        ParallelOptions zo;
        zo.workers = workers;
        zo.sim.max_steps = 100;
        try {
            (void)estimate_parallel(zeno, zeno_prop, StrategyKind::Asap, ch, 1, zo);
            FAIL() << "expected a Zeno error at " << workers << " workers";
        } catch (const Error& e) {
            EXPECT_NE(std::string(e.what()).find("Zeno"), std::string::npos) << e.what();
        }
    }
}

TEST_F(FaultIsolation, FailFastStillFillsTheReport) {
    ParallelOptions po;
    po.workers = 2;
    po.sim.max_steps = 100;
    telemetry::RunReport report;
    EXPECT_THROW((void)estimate_parallel(zeno, zeno_prop, StrategyKind::Asap, ch, 1, po,
                                         &report),
                 Error);
    // The partial summary was finalized before the rethrow.
    EXPECT_EQ(report.run_status.status, "degraded");
    EXPECT_EQ(report.run_status.stop_cause, "fail-fast worker abort");
}

TEST_F(FaultIsolation, TolerateTurnsFaultsIntoErrorSamplesDeterministically) {
    // Every Zeno path errors; under Tolerate the run degrades once the error
    // budget is exceeded — at the same accepted prefix for every worker
    // count (per-path streams).
    EstimationResult reference;
    for (const std::size_t workers : {1u, 2u, 4u}) {
        ParallelOptions po;
        po.workers = workers;
        po.sim.max_steps = 100;
        po.sim.control.fault.kind = FaultPolicyKind::Tolerate;
        po.sim.control.fault.max_path_errors = 10;
        po.sim.control.deterministic_streams = true;
        const auto res =
            estimate_parallel(zeno, zeno_prop, StrategyKind::Asap, ch, 1, po);
        EXPECT_EQ(res.status, RunStatus::Degraded) << workers << " workers";
        EXPECT_NE(res.stop_cause.find("--max-path-errors"), std::string::npos);
        EXPECT_GT(res.path_errors, 10u);
        EXPECT_EQ(res.terminals[static_cast<std::size_t>(PathTerminal::Error)],
                  res.path_errors);
        EXPECT_FALSE(res.error_log.empty());
        EXPECT_LE(res.error_log.size(), kMaxQuarantinedErrors);
        EXPECT_NE(res.error_log.front().find("path 0:"), std::string::npos);
        if (workers == 1) {
            reference = res;
        } else {
            EXPECT_EQ(res.samples, reference.samples) << workers << " workers";
            EXPECT_EQ(res.path_errors, reference.path_errors) << workers << " workers";
            EXPECT_EQ(res.error_log, reference.error_log) << workers << " workers";
        }
    }
}

TEST_F(FaultIsolation, TolerateCompletesWhenTheErrorBudgetHolds) {
    // A generous error budget: the run converges with every sample counted
    // as an unsatisfied Error sample (estimate 0), sequential and parallel.
    SimOptions options;
    options.max_steps = 100;
    options.control.fault.kind = FaultPolicyKind::Tolerate;
    options.control.fault.max_path_errors = 100000;
    const auto seq = estimate(zeno, zeno_prop, StrategyKind::Asap, ch, 1, options);
    EXPECT_EQ(seq.status, RunStatus::Converged);
    EXPECT_EQ(seq.estimate, 0.0);
    EXPECT_EQ(seq.samples, *ch.fixed_sample_count());
    EXPECT_EQ(seq.path_errors, seq.samples);

    ParallelOptions po;
    po.workers = 2;
    po.sim = options;
    const auto par = estimate_parallel(zeno, zeno_prop, StrategyKind::Asap, ch, 1, po);
    EXPECT_EQ(par.status, RunStatus::Converged);
    EXPECT_EQ(par.path_errors, par.samples);
}

TEST_F(FaultIsolation, SequentialFailFastIsStillTheDefault) {
    SimOptions options;
    options.max_steps = 100;
    EXPECT_THROW((void)estimate(zeno, zeno_prop, StrategyKind::Asap, ch, 1, options),
                 Error);
}

// Regression: the progress ETA used to extrapolate purely from the stop
// criterion and could promise hours of work that an active RunBudget would
// cut short. The reported ETA must be min(criterion ETA, budget remaining).
TEST(ProgressEta, WallClockBudgetCapsTheCriterionEta) {
    ProgressOptions o;
    // Fixed criterion wants 100k samples; at 500 samples/s that is 198 s out.
    ProgressSnapshot s = make_progress_snapshot(1000, 500, 100'000, 2.0, o);
    EXPECT_NEAR(s.eta_seconds, 198.0, 1e-9);

    // A 10 s wall budget with 2 s elapsed caps the ETA at 8 s.
    o.budget_max_seconds = 10.0;
    s = make_progress_snapshot(1000, 500, 100'000, 2.0, o);
    EXPECT_NEAR(s.eta_seconds, 8.0, 1e-9);

    // An exhausted wall budget reports 0, never a negative ETA.
    o.budget_max_seconds = 1.5;
    s = make_progress_snapshot(1000, 500, 100'000, 2.0, o);
    EXPECT_DOUBLE_EQ(s.eta_seconds, 0.0);
}

TEST(ProgressEta, SampleBudgetLowersTheTarget) {
    ProgressOptions o;
    o.budget_max_samples = 2000;
    // 1000 of 2000 budgeted samples done at 500/s: 2 s left, not the 198 s
    // the 100k-sample criterion alone would extrapolate.
    ProgressSnapshot s = make_progress_snapshot(1000, 500, 100'000, 2.0, o);
    EXPECT_NEAR(s.eta_seconds, 2.0, 1e-9);

    // The sample budget also gives an ETA when the criterion has none
    // (adaptive criterion, eps unset -> target otherwise unknown).
    o.eps = 0.0;
    s = make_progress_snapshot(1000, 500, 0, 2.0, o);
    EXPECT_NEAR(s.eta_seconds, 2.0, 1e-9);
}

TEST(ProgressEta, UnknownCriterionEtaStillHonoursTheWallBudget) {
    ProgressOptions o;
    o.eps = 0.0; // adaptive criterion with no extrapolation target
    ProgressSnapshot s = make_progress_snapshot(1000, 500, 0, 2.0, o);
    EXPECT_LT(s.eta_seconds, 0.0); // unknown without a budget

    o.budget_max_seconds = 30.0;
    s = make_progress_snapshot(1000, 500, 0, 2.0, o);
    EXPECT_NEAR(s.eta_seconds, 28.0, 1e-9);
}

} // namespace
} // namespace slimsim::sim
