#include "slim/lexer.hpp"

#include <gtest/gtest.h>

namespace slimsim::slim {
namespace {

std::vector<TokenKind> kinds(std::string_view src) {
    std::vector<TokenKind> out;
    for (const Token& t : tokenize(src)) out.push_back(t.kind);
    return out;
}

TEST(Lexer, EmptyInput) {
    const auto toks = tokenize("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, TokenKind::EndOfFile);
}

TEST(Lexer, Identifiers) {
    const auto toks = tokenize("foo Bar_9 _x");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].text, "foo");
    EXPECT_EQ(toks[1].text, "Bar_9");
    EXPECT_EQ(toks[1].folded, "bar_9"); // case-folded for keyword matching
    EXPECT_EQ(toks[2].text, "_x");
}

TEST(Lexer, Numbers) {
    const auto toks = tokenize("42 3.25 1e3 2.5e-2");
    EXPECT_EQ(toks[0].kind, TokenKind::Integer);
    EXPECT_EQ(toks[0].int_value, 42);
    EXPECT_EQ(toks[1].kind, TokenKind::Real);
    EXPECT_DOUBLE_EQ(toks[1].real_value, 3.25);
    EXPECT_EQ(toks[2].kind, TokenKind::Real);
    EXPECT_DOUBLE_EQ(toks[2].real_value, 1000.0);
    EXPECT_DOUBLE_EQ(toks[3].real_value, 0.025);
}

TEST(Lexer, RangeDotsAreNotFraction) {
    // `0..5` must lex as Integer DotDot Integer, not as reals.
    const auto k = kinds("0..5");
    ASSERT_EQ(k.size(), 4u);
    EXPECT_EQ(k[0], TokenKind::Integer);
    EXPECT_EQ(k[1], TokenKind::DotDot);
    EXPECT_EQ(k[2], TokenKind::Integer);
}

TEST(Lexer, NumberFollowedByIdentE) {
    // `2 end` must not eat `e` as an exponent.
    const auto toks = tokenize("2 end");
    EXPECT_EQ(toks[0].kind, TokenKind::Integer);
    EXPECT_EQ(toks[1].text, "end");
}

TEST(Lexer, TransitionPunctuation) {
    const auto k = kinds("a -[ e when g then x := 1 ]-> b;");
    EXPECT_EQ(k[1], TokenKind::TransBegin);
    EXPECT_EQ(k[7], TokenKind::Assign);
    EXPECT_EQ(k[9], TokenKind::TransEnd);
    EXPECT_EQ(k[11], TokenKind::Semicolon);
}

TEST(Lexer, ArrowVsMinus) {
    const auto k = kinds("a -> b - c -[");
    EXPECT_EQ(k[1], TokenKind::Arrow);
    EXPECT_EQ(k[3], TokenKind::Minus);
    EXPECT_EQ(k[5], TokenKind::TransBegin);
}

TEST(Lexer, ComparisonOperators) {
    const auto k = kinds("< <= > >= = != =>");
    EXPECT_EQ(k[0], TokenKind::Lt);
    EXPECT_EQ(k[1], TokenKind::Le);
    EXPECT_EQ(k[2], TokenKind::Gt);
    EXPECT_EQ(k[3], TokenKind::Ge);
    EXPECT_EQ(k[4], TokenKind::EqEq);
    EXPECT_EQ(k[5], TokenKind::Neq);
    EXPECT_EQ(k[6], TokenKind::FatArrow);
}

TEST(Lexer, CommentsRunToEndOfLine) {
    const auto toks = tokenize("a -- comment with -[ tokens ]->\nb");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, SourceLocations) {
    const auto toks = tokenize("a\n  b", "test.slim");
    EXPECT_EQ(toks[0].loc.line, 1u);
    EXPECT_EQ(toks[0].loc.column, 1u);
    EXPECT_EQ(toks[1].loc.line, 2u);
    EXPECT_EQ(toks[1].loc.column, 3u);
    EXPECT_EQ(toks[1].loc.file, "test.slim");
}

TEST(Lexer, AtPrime) {
    const auto k = kinds("@timer x' = 1");
    EXPECT_EQ(k[0], TokenKind::At);
    EXPECT_EQ(k[2], TokenKind::Ident);
    EXPECT_EQ(k[3], TokenKind::Prime);
}

TEST(Lexer, RejectsBadCharacters) {
    EXPECT_THROW(tokenize("a # b"), Error);
    EXPECT_THROW(tokenize("a ! b"), Error); // bare ! (not !=)
    EXPECT_THROW(tokenize("a $ b"), Error);
}

TEST(Lexer, BracketCloseVsTransEnd) {
    const auto k = kinds("x[1] ]->");
    EXPECT_EQ(k[1], TokenKind::LBracket);
    EXPECT_EQ(k[3], TokenKind::RBracket);
    EXPECT_EQ(k[4], TokenKind::TransEnd);
}

} // namespace
} // namespace slimsim::slim
