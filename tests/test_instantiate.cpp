#include "slim/instantiate.hpp"

#include <gtest/gtest.h>

#include "slim/parser.hpp"
#include "slim/validate.hpp"

namespace slimsim::slim {
namespace {

InstanceModel build(const std::string& src) {
    auto resolved = std::make_shared<ResolvedModel>(resolve(parse_model(src)));
    return instantiate(std::move(resolved));
}

TEST(Instantiate, InstanceTreeAndVariables) {
    const InstanceModel m = build(R"(
        root Top.I;
        system Leaf
        features v: out data port int default 7;
        end Leaf;
        system implementation Leaf.I
        subcomponents d: data bool default true;
        end Leaf.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          a: system Leaf.I;
          b: system Leaf.I;
        end Top.I;
    )");
    EXPECT_EQ(m.instances.size(), 3u);
    EXPECT_EQ(m.instance(""), 0);
    EXPECT_EQ(m.instances[m.instance("a")].parent, 0);
    EXPECT_EQ(m.instances[m.instance("b")].parent, 0);
    // Each Leaf has v, d, @timer; Top has @timer.
    EXPECT_EQ(m.vars.size(), 7u);
    EXPECT_EQ(m.vars[m.var("a.v")].init, Value(std::int64_t{7}));
    EXPECT_EQ(m.vars[m.var("b.d")].init, Value(true));
    EXPECT_NO_THROW((void)m.var("a.@timer"));
    EXPECT_THROW((void)m.var("c.v"), Error);
    EXPECT_THROW((void)m.instance("ghost"), Error);
}

TEST(Instantiate, ProcessFromModes) {
    const InstanceModel m = build(R"(
        root S.I;
        system S end S;
        system implementation S.I
        subcomponents
          x: data clock;
          e: data continuous default 10;
        modes
          run: initial mode while e >= 0;
          halt: mode;
        transitions
          run -[when x >= 5]-> halt;
        trends
          e' = -2 in run;
        end S.I;
    )");
    ASSERT_EQ(m.processes.size(), 1u);
    const InstProcess& p = m.processes[0];
    EXPECT_EQ(p.locations.size(), 2u);
    EXPECT_EQ(p.initial_location, 0);
    ASSERT_EQ(p.transitions.size(), 1u);
    EXPECT_EQ(p.transitions[0].src, 0);
    EXPECT_EQ(p.transitions[0].dst, 1);

    // Rates in `run`: x'=1 (clock), e'=-2 (trend), @timer'=1.
    const auto& rates_run = p.locations[0].rates;
    ASSERT_EQ(rates_run.size(), 3u);
    // Rates in `halt`: x'=1, @timer'=1 (e defaults to slope 0 -> omitted).
    const auto& rates_halt = p.locations[1].rates;
    ASSERT_EQ(rates_halt.size(), 2u);
}

TEST(Instantiate, EventConnectionsBecomeSyncActions) {
    const InstanceModel m = build(R"(
        root Top.I;
        system Sender
        features done: out event port;
        end Sender;
        system implementation Sender.I
        modes a: initial mode; b: mode;
        transitions a -[done]-> b;
        end Sender.I;
        system Receiver
        features go: in event port;
        end Receiver;
        system implementation Receiver.I
        modes idle: initial mode; busy: mode;
        transitions idle -[go]-> busy;
        end Receiver.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          s: system Sender.I;
          r: system Receiver.I;
        connections
          event port s.done -> r.go;
        end Top.I;
    )");
    ASSERT_EQ(m.actions.size(), 1u);
    EXPECT_EQ(m.actions[0].participants.size(), 2u);
    // Both processes' transitions carry the action with matching roles.
    const auto& ps = m.processes[m.instances[m.instance("s")].process];
    const auto& pr = m.processes[m.instances[m.instance("r")].process];
    EXPECT_EQ(ps.transitions[0].action, 0);
    EXPECT_EQ(ps.transitions[0].role, PortDir::Out);
    EXPECT_EQ(pr.transitions[0].action, 0);
    EXPECT_EQ(pr.transitions[0].role, PortDir::In);
}

TEST(Instantiate, UnconnectedPortsGetSeparateActions) {
    const InstanceModel m = build(R"(
        root Top.I;
        system A
        features e1: out event port;
                 e2: out event port;
        end A;
        system implementation A.I
        modes x: initial mode;
        transitions
          x -[e1]-> x;
          x -[e2]-> x;
        end A.I;
        system Top end Top;
        system implementation Top.I
        subcomponents a: system A.I;
        end Top.I;
    )");
    EXPECT_EQ(m.actions.size(), 2u); // singleton groups
}

TEST(Instantiate, DataConnectionsBecomeFlows) {
    const InstanceModel m = build(R"(
        root Top.I;
        system Leaf
        features
          o: out data port int default 3;
          i: in data port int default 0;
        end Leaf;
        system implementation Leaf.I end Leaf.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          a: system Leaf.I;
          b: system Leaf.I;
        connections
          data port a.o -> b.i;
        end Top.I;
    )");
    ASSERT_EQ(m.flows.size(), 1u);
    EXPECT_EQ(m.flows[0].target, m.var("b.i"));
    // Initial valuation propagates the connection.
    const auto vals = m.initial_valuation();
    EXPECT_EQ(vals[m.var("b.i")], Value(std::int64_t{3}));
}

TEST(Instantiate, FlowChainIsTopologicallySorted) {
    const InstanceModel m = build(R"(
        root Top.I;
        system Stage
        features
          i: in data port int default 0;
          o: out data port int default 0;
        end Stage;
        system implementation Stage.I
        flows o := i + 1;
        end Stage.I;
        system Top
        features result: out data port int default 0;
        end Top;
        system implementation Top.I
        subcomponents
          s1: system Stage.I;
          s2: system Stage.I;
        connections
          data port s1.o -> s2.i;
          data port s2.o -> result;
        end Top.I;
    )");
    // s1.i=0 -> s1.o=1 -> s2.i=1 -> s2.o=2 -> result=2, regardless of
    // declaration order.
    const auto vals = m.initial_valuation();
    EXPECT_EQ(vals[m.var("result")], Value(std::int64_t{2}));
}

TEST(Instantiate, RejectsFlowCycle) {
    EXPECT_THROW(build(R"(
        root Top.I;
        system Stage
        features
          i: in data port int default 0;
          o: out data port int default 0;
        end Stage;
        system implementation Stage.I
        flows o := i + 1;
        end Stage.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          s1: system Stage.I;
          s2: system Stage.I;
        connections
          data port s1.o -> s2.i;
          data port s2.o -> s1.i;
        end Top.I;
    )"),
                 Error);
}

TEST(Instantiate, RejectsConflictingFlows) {
    EXPECT_THROW(build(R"(
        root Top.I;
        system Leaf
        features
          o: out data port int default 0;
          i: in data port int default 0;
        end Leaf;
        system implementation Leaf.I end Leaf.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          a: system Leaf.I;
          b: system Leaf.I;
          c: system Leaf.I;
        connections
          data port a.o -> c.i;
          data port b.o -> c.i;
        end Top.I;
    )"),
                 Error);
}

TEST(Instantiate, AllowsDisjointModeGatedFlows) {
    const InstanceModel m = build(R"(
        root Top.I;
        system Leaf
        features
          o: out data port int default 3;
          i: in data port int default 0;
        end Leaf;
        system implementation Leaf.I end Leaf.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          a: system Leaf.I;
          b: system Leaf.I;
          c: system Leaf.I;
        connections
          data port a.o -> c.i in modes (use_a);
          data port b.o -> c.i in modes (use_b);
        modes
          use_a: initial mode;
          use_b: mode;
        transitions
          use_a -[]-> use_b;
        end Top.I;
    )");
    EXPECT_EQ(m.flows.size(), 2u);
}

TEST(Instantiate, RejectsFlowReadingClock) {
    EXPECT_THROW(build(R"(
        root S.I;
        system S
        features o: out data port real default 0;
        end S;
        system implementation S.I
        subcomponents x: data clock;
        flows o := x;
        end S.I;
    )"),
                 Error);
}

TEST(Instantiate, ErrorBindingCreatesProcessAndInjections) {
    const InstanceModel m = build(R"(
        root Top.I;
        system Leaf
        features v: out data port bool default true;
        end Leaf;
        system implementation Leaf.I end Leaf.I;
        system Top end Top;
        system implementation Top.I
        subcomponents a: system Leaf.I;
        end Top.I;
        error model EM
        features ok: initial state; bad: error state;
        end EM;
        error model implementation EM.I
        events f: error event occurrence poisson 1 per hour;
        transitions ok -[f]-> bad;
        end EM.I;
        fault injections
          component a uses error model EM.I;
          component a in state bad effect v := false;
        end fault injections;
    )");
    const auto& inst = m.instances[m.instance("a")];
    ASSERT_GE(inst.error_process, 0);
    const InstProcess& ep = m.processes[inst.error_process];
    EXPECT_TRUE(ep.is_error);
    EXPECT_EQ(ep.locations.size(), 2u);
    ASSERT_EQ(ep.transitions.size(), 1u);
    EXPECT_GT(ep.transitions[0].rate, 0.0);
    ASSERT_EQ(m.injections.size(), 1u);
    EXPECT_EQ(m.injections[0].target, m.var("a.v"));
    EXPECT_EQ(m.injections[0].value, Value(false));
    EXPECT_EQ(m.injections[0].restore, Value(true));
}

TEST(Instantiate, RejectsInjectionWithoutBinding) {
    EXPECT_THROW(build(R"(
        root Top.I;
        system Leaf
        features v: out data port bool default true;
        end Leaf;
        system implementation Leaf.I end Leaf.I;
        system Top end Top;
        system implementation Top.I
        subcomponents a: system Leaf.I;
        end Top.I;
        error model EM features ok: initial state; end EM;
        error model implementation EM.I end EM.I;
        fault injections
          component a in state ok effect v := false;
        end fault injections;
    )"),
                 Error);
}

TEST(Instantiate, RejectsDoubleErrorBinding) {
    EXPECT_THROW(build(R"(
        root Top.I;
        system Leaf end Leaf;
        system implementation Leaf.I end Leaf.I;
        system Top end Top;
        system implementation Top.I
        subcomponents a: system Leaf.I;
        end Top.I;
        error model EM features ok: initial state; end EM;
        error model implementation EM.I end EM.I;
        fault injections
          component a uses error model EM.I;
          component a uses error model EM.I;
        end fault injections;
    )"),
                 Error);
}

TEST(Instantiate, PropagationPeersAreSiblingsAndParentChild) {
    const InstanceModel m = build(R"(
        root Top.I;
        system Leaf end Leaf;
        system implementation Leaf.I end Leaf.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          a: system Leaf.I;
          b: system Leaf.I;
        end Top.I;
        error model EM
        features
          ok: initial state;
          bad: error state;
          fail: out propagation;
          hear: in propagation;
        end EM;
        error model implementation EM.I
        events f: error event occurrence poisson 1 per hour;
        transitions
          ok -[f]-> bad;
          bad -[fail]-> bad;
          ok -[hear]-> bad;
        end EM.I;
        fault injections
          component a uses error model EM.I;
          component b uses error model EM.I;
          component root uses error model EM.I;
        end fault injections;
    )");
    EXPECT_EQ(m.channels.size(), 2u); // fail + hear... (interned per name)
    const auto pa = m.instances[m.instance("a")].error_process;
    const auto pb = m.instances[m.instance("b")].error_process;
    const auto proot = m.instances[m.instance("")].error_process;
    // a's peers: sibling b and parent root.
    const auto& peers = m.processes[pa].propagation_peers;
    EXPECT_EQ(peers.size(), 2u);
    EXPECT_TRUE(std::find(peers.begin(), peers.end(), pb) != peers.end());
    EXPECT_TRUE(std::find(peers.begin(), peers.end(), proot) != peers.end());
    // root's peers: children a and b (it has no parent/siblings).
    const auto& rpeers = m.processes[proot].propagation_peers;
    EXPECT_EQ(rpeers.size(), 2u);
}

TEST(Instantiate, ModeGatedSubcomponentActivation) {
    const InstanceModel m = build(R"(
        root Top.I;
        system Leaf end Leaf;
        system implementation Leaf.I
        modes on: initial mode;
        end Leaf.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          primary: system Leaf.I in modes (normal);
          backup: system Leaf.I in modes (degraded);
        modes
          normal: initial mode;
          degraded: mode;
        transitions
          normal -[]-> degraded;
        end Top.I;
    )");
    const auto& primary = m.instances[m.instance("primary")];
    const auto& backup = m.instances[m.instance("backup")];
    EXPECT_EQ(primary.parent_modes, (std::vector<int>{0}));
    EXPECT_EQ(backup.parent_modes, (std::vector<int>{1}));
}

TEST(Instantiate, IntegerRangeViolationInDefaultRejected) {
    EXPECT_THROW(build(R"(
        root S.I;
        system S end S;
        system implementation S.I
        subcomponents x: data int [0..5] default 9;
        end S.I;
    )"),
                 Error);
}

TEST(Validate, WarnsOnRateGuardMixing) {
    const InstanceModel m = build(R"(
        root S.I;
        system S end S;
        system implementation S.I end S.I;
        error model EM
        features ok: initial state; bad: error state;
        end EM;
        error model implementation EM.I
        events
          f: error event occurrence poisson 1 per hour;
          g: error event;
        transitions
          ok -[f]-> bad;
          ok -[g when @timer >= 1]-> bad;
        end EM.I;
        fault injections
          component root uses error model EM.I;
        end fault injections;
    )");
    const auto diags = validate(m);
    ASSERT_FALSE(diags.empty());
    EXPECT_EQ(diags[0].severity, Severity::Warning);
    EXPECT_NO_THROW(validate_or_throw(m)); // warnings only
}

} // namespace
} // namespace slimsim::slim
