#include "expr/timeline.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "slim/parser.hpp"
#include "slim/resolver.hpp"

namespace slimsim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Test fixture providing variables with values and time derivatives.
class TimelineTest : public ::testing::Test {
protected:
    void add(const std::string& name, Value v, double rate, Type type) {
        slim::Symbol sym;
        sym.name = name;
        sym.kind = slim::SymKind::Data;
        sym.type = type;
        table_.add(std::move(sym));
        values_.push_back(v);
        rates_.push_back(rate);
    }

    void add_clock(const std::string& name, double value, double rate = 1.0) {
        add(name, Value(value), rate, Type::clock());
    }

    void add_int(const std::string& name, std::int64_t value) {
        add(name, Value(value), 0.0, Type::integer());
    }

    void add_bool(const std::string& name, bool value) {
        add(name, Value(value), 0.0, Type::boolean());
    }

    expr::ExprPtr parse(const std::string& source) {
        expr::ExprPtr e = slim::parse_expression(source);
        DiagnosticSink sink;
        slim::resolve_expr(*e, table_, sink);
        sink.throw_if_errors("test expression");
        return e;
    }

    expr::TimedEvalContext ctx() const { return {values_, {}, rates_}; }

    IntervalSet sat(const std::string& source) {
        return expr::satisfying_times(*parse(source), ctx());
    }

    expr::LinForm affine(const std::string& source) {
        return expr::eval_affine(*parse(source), ctx());
    }

    slim::SymbolTable table_;
    std::vector<Value> values_;
    std::vector<double> rates_;
};

TEST_F(TimelineTest, AffineOfConstant) {
    const auto f = affine("3 + 4");
    EXPECT_DOUBLE_EQ(f.a, 7.0);
    EXPECT_DOUBLE_EQ(f.b, 0.0);
    EXPECT_TRUE(f.constant());
}

TEST_F(TimelineTest, AffineOfClock) {
    add_clock("x", 2.0);
    const auto f = affine("x");
    EXPECT_DOUBLE_EQ(f.a, 2.0);
    EXPECT_DOUBLE_EQ(f.b, 1.0);
    EXPECT_DOUBLE_EQ(f.at(3.0), 5.0);
}

TEST_F(TimelineTest, AffineArithmetic) {
    add_clock("x", 1.0, 2.0);  // x(t) = 1 + 2t
    add_clock("y", 5.0, -1.0); // y(t) = 5 - t
    const auto sum = affine("x + y"); // 6 + t
    EXPECT_DOUBLE_EQ(sum.a, 6.0);
    EXPECT_DOUBLE_EQ(sum.b, 1.0);
    const auto diff = affine("x - y"); // -4 + 3t
    EXPECT_DOUBLE_EQ(diff.a, -4.0);
    EXPECT_DOUBLE_EQ(diff.b, 3.0);
    const auto scaled = affine("3 * x"); // 3 + 6t
    EXPECT_DOUBLE_EQ(scaled.a, 3.0);
    EXPECT_DOUBLE_EQ(scaled.b, 6.0);
    const auto divided = affine("x / 2"); // 0.5 + t
    EXPECT_DOUBLE_EQ(divided.a, 0.5);
    EXPECT_DOUBLE_EQ(divided.b, 1.0);
}

TEST_F(TimelineTest, NegationOfClock) {
    add_clock("x", 1.0);
    const auto f = affine("-x");
    EXPECT_DOUBLE_EQ(f.a, -1.0);
    EXPECT_DOUBLE_EQ(f.b, -1.0);
}

TEST_F(TimelineTest, NonAffineProductThrows) {
    add_clock("x", 1.0);
    add_clock("y", 1.0);
    EXPECT_THROW(affine("x * y"), Error);
    EXPECT_THROW(affine("1 / x"), Error);
}

TEST_F(TimelineTest, TimeIndependentSubtreesAreFine) {
    add_int("n", 7);
    add_clock("x", 0.0);
    // n mod 2 is time-independent even though mod is non-affine in general.
    const auto f = affine("x + n mod 2");
    EXPECT_DOUBLE_EQ(f.a, 1.0);
    EXPECT_DOUBLE_EQ(f.b, 1.0);
}

TEST_F(TimelineTest, ComparisonUpcrossing) {
    add_clock("x", 0.0); // x(t) = t
    const IntervalSet s = sat("x >= 5");
    ASSERT_EQ(s.parts().size(), 1u);
    EXPECT_EQ(s.parts()[0], (Interval{5.0, kInf}));
}

TEST_F(TimelineTest, ComparisonDowncrossing) {
    add_clock("x", 0.0);
    const IntervalSet s = sat("x <= 5");
    ASSERT_EQ(s.parts().size(), 1u);
    EXPECT_EQ(s.parts()[0], (Interval{0.0, 5.0}));
}

TEST_F(TimelineTest, ComparisonAlreadyPast) {
    add_clock("x", 10.0);
    EXPECT_TRUE(sat("x <= 5").empty());
    EXPECT_EQ(sat("x >= 5"), IntervalSet::all());
}

TEST_F(TimelineTest, DecreasingVariable) {
    add("energy", Value(10.0), -2.0, Type::continuous()); // energy(t) = 10 - 2t
    const IntervalSet s = sat("energy >= 0");
    ASSERT_EQ(s.parts().size(), 1u);
    EXPECT_EQ(s.parts()[0], (Interval{0.0, 5.0}));
    const IntervalSet empty_after = sat("energy <= 0");
    EXPECT_EQ(empty_after.parts()[0], (Interval{5.0, kInf}));
}

TEST_F(TimelineTest, EqualityGivesPoint) {
    add_clock("x", 0.0);
    const IntervalSet s = sat("x = 3");
    ASSERT_EQ(s.parts().size(), 1u);
    EXPECT_TRUE(s.parts()[0].is_point());
    EXPECT_DOUBLE_EQ(s.parts()[0].lo, 3.0);
}

TEST_F(TimelineTest, EqualityInThePastIsEmpty) {
    add_clock("x", 5.0);
    EXPECT_TRUE(sat("x = 3").empty());
}

TEST_F(TimelineTest, WindowConjunction) {
    add_clock("t", 0.0);
    const IntervalSet s = sat("t >= 0.2 and t <= 0.3");
    ASSERT_EQ(s.parts().size(), 1u);
    EXPECT_DOUBLE_EQ(s.parts()[0].lo, 0.2);
    EXPECT_DOUBLE_EQ(s.parts()[0].hi, 0.3);
}

TEST_F(TimelineTest, Disjunction) {
    add_clock("t", 0.0);
    const IntervalSet s = sat("t <= 1 or t >= 3");
    ASSERT_EQ(s.parts().size(), 2u);
}

TEST_F(TimelineTest, NotInvertsWindow) {
    add_clock("t", 0.0);
    const IntervalSet s = sat("not (t >= 2 and t <= 4)");
    // Closed over-approximation: [0,2] u [4,inf).
    ASSERT_EQ(s.parts().size(), 2u);
    EXPECT_DOUBLE_EQ(s.parts()[0].hi, 2.0);
    EXPECT_DOUBLE_EQ(s.parts()[1].lo, 4.0);
}

TEST_F(TimelineTest, ImplicationOverTime) {
    add_clock("t", 0.0);
    add_bool("armed", true);
    // armed => t >= 2: holds from t=2 on.
    const IntervalSet s = sat("armed => t >= 2");
    EXPECT_EQ(s.parts()[0], (Interval{2.0, kInf}));
}

TEST_F(TimelineTest, BooleanConstantsShortcut) {
    add_bool("flag", false);
    add_clock("t", 0.0);
    EXPECT_EQ(sat("flag or t >= 1"), IntervalSet(1.0, kInf));
    EXPECT_TRUE(sat("flag and t >= 1").empty());
}

TEST_F(TimelineTest, TimeDependentIte) {
    add_clock("t", 0.0);
    add_bool("mode_a", true);
    // if t <= 2 then mode_a else t >= 5
    const IntervalSet s = sat("if t <= 2 then mode_a else t >= 5");
    ASSERT_EQ(s.parts().size(), 2u);
    EXPECT_EQ(s.parts()[0], (Interval{0.0, 2.0}));
    EXPECT_EQ(s.parts()[1], (Interval{5.0, kInf}));
}

TEST_F(TimelineTest, TwoClocksRelativeDrift) {
    add_clock("fast", 0.0, 3.0);
    add_clock("slow", 4.0, 1.0);
    // fast >= slow: 3t >= 4 + t -> t >= 2.
    const IntervalSet s = sat("fast >= slow");
    EXPECT_EQ(s.parts()[0], (Interval{2.0, kInf}));
}

TEST_F(TimelineTest, NeGuardIsClosedOverApproximated) {
    add_clock("x", 0.0);
    // x != 3 is approximated as always-true (measure-zero hole).
    EXPECT_EQ(sat("x != 3"), IntervalSet::all());
}

TEST_F(TimelineTest, IsTimeDependent) {
    add_clock("x", 0.0);
    add_int("n", 1);
    EXPECT_TRUE(expr::is_time_dependent(*parse("x + 1"), ctx()));
    EXPECT_FALSE(expr::is_time_dependent(*parse("n + 1"), ctx()));
    // A clock variable with zero rate (frozen) is not time dependent.
    add("frozen", Value(1.0), 0.0, Type::clock());
    EXPECT_FALSE(expr::is_time_dependent(*parse("frozen"), ctx()));
}

// Property sweep: satisfying_times agrees with pointwise evaluation.
class TimelinePointwise : public ::testing::TestWithParam<int> {};

TEST_P(TimelinePointwise, AgreesWithDirectEvaluation) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 1);
    slim::SymbolTable table;
    std::vector<Value> values;
    std::vector<double> rates;
    for (int v = 0; v < 3; ++v) {
        slim::Symbol sym;
        sym.name = std::string(1, static_cast<char>('a' + v));
        sym.kind = slim::SymKind::Data;
        sym.type = Type::clock();
        table.add(std::move(sym));
        values.push_back(Value(rng.uniform(0.0, 5.0)));
        rates.push_back(rng.uniform(-2.0, 2.0));
    }
    expr::ExprPtr e = slim::parse_expression(
        "(a >= 2 and b <= 6) or (c >= 1 and c <= 4) or a - b >= 1");
    DiagnosticSink sink;
    slim::resolve_expr(*e, table, sink);
    sink.throw_if_errors("test");
    const expr::TimedEvalContext tctx{values, {}, rates};
    const IntervalSet s = expr::satisfying_times(*e, tctx);

    // Compare against explicit evaluation at sampled time points (avoiding
    // boundaries where the closed over-approximation may differ).
    for (int i = 0; i < 200; ++i) {
        const double t = rng.uniform(0.0, 10.0);
        std::vector<Value> shifted = values;
        for (std::size_t v = 0; v < shifted.size(); ++v) {
            shifted[v] = Value(values[v].as_real() + rates[v] * t);
        }
        const bool direct = expr::evaluate_bool(*e, expr::EvalContext{shifted, {}});
        if (direct != s.contains(t)) {
            // Tolerate only boundary effects: a point within 1e-9 of a part
            // boundary may disagree.
            bool near_boundary = false;
            for (const auto& part : s.parts()) {
                if (std::abs(part.lo - t) < 1e-6 || std::abs(part.hi - t) < 1e-6) {
                    near_boundary = true;
                }
            }
            EXPECT_TRUE(near_boundary)
                << "mismatch at t=" << t << " set=" << s.to_string();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelinePointwise, ::testing::Range(1, 25));

} // namespace
} // namespace slimsim
