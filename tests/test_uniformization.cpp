#include "ctmc/uniformization.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/diagnostics.hpp"

namespace slimsim::ctmc {
namespace {

TEST(PoissonWeightsTest, SumsToOne) {
    for (const double lambda : {0.1, 1.0, 10.0, 100.0, 5000.0}) {
        const PoissonWeights pw = poisson_weights(lambda, 1e-10);
        double total = 0.0;
        for (const double w : pw.weights) total += w;
        EXPECT_NEAR(total, 1.0, 1e-12) << "lambda=" << lambda;
    }
}

TEST(PoissonWeightsTest, MatchesExactSmallLambda) {
    const double lambda = 2.0;
    const PoissonWeights pw = poisson_weights(lambda, 1e-12);
    ASSERT_EQ(pw.left, 0u);
    for (std::size_t k = 0; k < 8; ++k) {
        double expected = std::exp(-lambda);
        for (std::size_t i = 1; i <= k; ++i) expected *= lambda / static_cast<double>(i);
        EXPECT_NEAR(pw.weights[k], expected, 1e-10) << "k=" << k;
    }
}

TEST(PoissonWeightsTest, ZeroLambdaIsDirac) {
    const PoissonWeights pw = poisson_weights(0.0, 1e-10);
    ASSERT_EQ(pw.weights.size(), 1u);
    EXPECT_DOUBLE_EQ(pw.weights[0], 1.0);
}

TEST(PoissonWeightsTest, LargeLambdaTruncatesLeft) {
    const PoissonWeights pw = poisson_weights(10000.0, 1e-10);
    EXPECT_GT(pw.left, 9000u); // left truncation kicks in
    EXPECT_LT(pw.weights.size(), 4000u);
}

/// Two-state chain: 0 --rate r--> 1 (absorbing goal).
CtmcModel two_state(double r) {
    CtmcModel m;
    m.transitions.resize(2);
    m.transitions[0] = {{1, r}};
    m.goal = {0, 1};
    m.initial = {{0, 1.0}};
    return m;
}

TEST(Transient, SingleExponentialStep) {
    // P(reach goal by t) = 1 - exp(-r t).
    const CtmcModel m = two_state(0.5);
    for (const double t : {0.1, 1.0, 3.0, 10.0}) {
        EXPECT_NEAR(transient_reachability(m, t), 1.0 - std::exp(-0.5 * t), 1e-9)
            << "t=" << t;
    }
}

TEST(Transient, TimeZero) {
    const CtmcModel m = two_state(1.0);
    EXPECT_DOUBLE_EQ(transient_reachability(m, 0.0), 0.0);
}

TEST(Transient, GoalInInitialState) {
    CtmcModel m;
    m.transitions.resize(1);
    m.goal = {1};
    m.initial = {{0, 1.0}};
    EXPECT_DOUBLE_EQ(transient_reachability(m, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(transient_reachability(m, 5.0), 1.0);
}

TEST(Transient, ErlangChain) {
    // 0 -r-> 1 -r-> 2 (goal): Erlang(2, r) CDF = 1 - e^{-rt}(1 + rt).
    CtmcModel m;
    m.transitions.resize(3);
    m.transitions[0] = {{1, 2.0}};
    m.transitions[1] = {{2, 2.0}};
    m.goal = {0, 0, 1};
    m.initial = {{0, 1.0}};
    for (const double t : {0.5, 1.0, 2.0}) {
        const double expected = 1.0 - std::exp(-2.0 * t) * (1.0 + 2.0 * t);
        EXPECT_NEAR(transient_reachability(m, t), expected, 1e-9);
    }
}

TEST(Transient, CompetingRisks) {
    // 0 splits to goal (rate a) and a non-goal trap (rate b):
    // P(goal eventually) = a/(a+b); by time t: (a/(a+b))(1 - e^{-(a+b)t}).
    const double a = 1.5, b = 0.5;
    CtmcModel m;
    m.transitions.resize(3);
    m.transitions[0] = {{1, a}, {2, b}};
    m.goal = {0, 1, 0};
    m.initial = {{0, 1.0}};
    for (const double t : {0.2, 1.0, 4.0}) {
        const double expected = a / (a + b) * (1.0 - std::exp(-(a + b) * t));
        EXPECT_NEAR(transient_reachability(m, t), expected, 1e-9);
    }
}

TEST(Transient, InitialDistribution) {
    // Start 50/50 in state 0 (rate 1 to goal) and in the goal itself.
    CtmcModel m;
    m.transitions.resize(2);
    m.transitions[0] = {{1, 1.0}};
    m.goal = {0, 1};
    m.initial = {{0, 0.5}, {1, 0.5}};
    EXPECT_NEAR(transient_reachability(m, 1.0), 0.5 + 0.5 * (1.0 - std::exp(-1.0)), 1e-9);
}

TEST(Transient, SelfLoopInUniformizedChainIsHandled) {
    // Different exit rates force self-loops in the uniformized DTMC.
    CtmcModel m;
    m.transitions.resize(3);
    m.transitions[0] = {{1, 0.1}};
    m.transitions[1] = {{2, 10.0}};
    m.goal = {0, 0, 1};
    m.initial = {{0, 1.0}};
    // Hypoexponential(0.1, 10): CDF(t) = 1 - (b e^{-at} - a e^{-bt})/(b-a).
    const double aa = 0.1, bb = 10.0, t = 5.0;
    const double expected =
        1.0 - (bb * std::exp(-aa * t) - aa * std::exp(-bb * t)) / (bb - aa);
    EXPECT_NEAR(transient_reachability(m, t), expected, 1e-8);
}

TEST(Transient, RejectsNegativeTime) {
    EXPECT_THROW((void)transient_reachability(two_state(1.0), -1.0), Error);
}

TEST(Transient, StatsReported) {
    TransientStats stats;
    (void)transient_reachability(two_state(2.0), 3.0, {}, &stats);
    EXPECT_DOUBLE_EQ(stats.uniformization_rate, 2.0);
    EXPECT_GT(stats.iterations, 0u);
}

// Parameterized: reachability is monotone in t and bounded by 1.
class TransientMonotone : public ::testing::TestWithParam<double> {};

TEST_P(TransientMonotone, MonotoneInTime) {
    const CtmcModel m = two_state(GetParam());
    double prev = 0.0;
    for (double t = 0.0; t <= 8.0; t += 0.5) {
        const double p = transient_reachability(m, t);
        EXPECT_GE(p, prev - 1e-12);
        EXPECT_LE(p, 1.0);
        prev = p;
    }
}

INSTANTIATE_TEST_SUITE_P(Rates, TransientMonotone,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 10.0));

} // namespace
} // namespace slimsim::ctmc
