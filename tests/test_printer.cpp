// SLIM pretty-printer round-trips: parse -> print -> parse is idempotent and
// behaviour-preserving on every bundled model.
#include "slim/printer.hpp"

#include <gtest/gtest.h>

#include "models/failover.hpp"
#include "models/gps.hpp"
#include "models/launcher.hpp"
#include "models/sensor_filter.hpp"
#include "sim/runner.hpp"
#include "slim/parser.hpp"

namespace slimsim::slim {
namespace {

struct NamedModel {
    std::string name;
    std::string source;
    std::string goal;
    double bound;
};

std::vector<NamedModel> bundled_models() {
    models::LauncherOptions recoverable;
    recoverable.recoverable_dpu = true;
    models::FailoverOptions timed_failover;
    timed_failover.detection_latency = 0.5;
    return {
        {"gps", models::gps_source(), models::gps_goal(), 1800.0},
        {"gps_restart", models::gps_restart_source(true), models::gps_restart_goal(),
         2700.0},
        {"gps_norestart", models::gps_restart_source(false), models::gps_restart_goal(),
         2700.0},
        {"sensor_filter", models::sensor_filter_source(2), models::sensor_filter_goal(),
         100.0 * 3600.0},
        {"launcher", models::launcher_source(), models::launcher_goal(), 1800.0},
        {"launcher_rec", models::launcher_source(recoverable), models::launcher_goal(),
         1800.0},
        {"failover", models::failover_source(), models::failover_goal(), 7200.0},
        {"failover_timed", models::failover_source(timed_failover),
         models::failover_goal(), 7200.0},
    };
}

class PrinterRoundTrip : public ::testing::TestWithParam<NamedModel> {};

TEST_P(PrinterRoundTrip, PrintParseIdempotent) {
    const NamedModel& m = GetParam();
    const ModelFile first = parse_model(m.source, m.name);
    const std::string printed = print_model(first);
    ModelFile second;
    ASSERT_NO_THROW(second = parse_model(printed, m.name + "-printed")) << printed;
    const std::string printed_again = print_model(second);
    EXPECT_EQ(printed, printed_again) << "printer is not a fixpoint for " << m.name;
}

TEST_P(PrinterRoundTrip, PrintedModelBehavesIdentically) {
    const NamedModel& m = GetParam();
    const std::string printed = print_model(parse_model(m.source, m.name));

    const eda::Network original = eda::build_network_from_source(m.source);
    const eda::Network reprinted = eda::build_network_from_source(printed);
    ASSERT_EQ(original.model().processes.size(), reprinted.model().processes.size());
    ASSERT_EQ(original.model().vars.size(), reprinted.model().vars.size());

    const auto p1 = sim::make_reachability(original.model(), m.goal, m.bound);
    const auto p2 = sim::make_reachability(reprinted.model(), m.goal, m.bound);
    const stat::ChernoffHoeffding ch(0.2, 0.1); // small N: exact-match check
    const auto r1 = sim::estimate(original, p1, sim::StrategyKind::Progressive, ch, 77);
    const auto r2 = sim::estimate(reprinted, p2, sim::StrategyKind::Progressive, ch, 77);
    // Identical models and seeds must produce identical sample paths.
    EXPECT_EQ(r1.successes, r2.successes) << m.name;
    EXPECT_EQ(r1.samples, r2.samples) << m.name;
}

INSTANTIATE_TEST_SUITE_P(Bundled, PrinterRoundTrip, ::testing::ValuesIn(bundled_models()),
                         [](const auto& info) { return info.param.name; });

TEST(Printer, CoversAllDeclarationForms) {
    // One synthetic model touching every syntactic corner.
    const char* src = R"(
        root Top.I;
        abstract Box
        features
          e_in: in event port;
          e_out: out event port;
          d_in: in data port int [0..5] default 2;
          d_out: out data port real default 1.5;
        end Box;
        abstract implementation Box.I
        subcomponents
          b: data bool default true;
          c: data clock;
          k: data continuous default 3;
        flows
          d_out := d_in * 2 in modes (m1);
        modes
          m1: initial mode while c <= 9;
          m2: mode;
        transitions
          m1 -[e_in when c >= 1 and b then d_out := 0.25; b := false]-> m2;
          m2 -[e_out]-> m1;
          m2 -[@activation then c := 0]-> m1;
          m1 -[@deactivation]-> m2;
          m1 -[when @timer >= 2]-> m2;
        trends
          k' = -0.5 in m1, m2;
        end Box.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          one: abstract Box.I in modes (up);
          two: abstract Box.I;
        connections
          event port one.e_out -> two.e_in;
          data port one.d_out -> two.d_in in modes (up);
        modes
          up: initial mode;
          down: mode;
        transitions
          up -[]-> down;
        end Top.I;
        error model EM
        features
          ok: initial state;
          sick: error state while @timer <= 4;
          yell: out propagation;
          hear: in propagation;
        end EM;
        error model implementation EM.I
        events
          f: error event occurrence poisson 0.25 per sec;
          g: error event;
        subcomponents
          t: data clock;
        transitions
          ok -[f]-> sick;
          sick -[g when t >= 1]-> ok;
          sick -[yell]-> sick;
          ok -[hear]-> sick;
        end EM.I;
        fault injections
          component one uses error model EM.I;
          component one in state sick effect d_out := 0;
          component root uses error model EM.I;
        end fault injections;
    )";
    const ModelFile parsed = parse_model(src);
    const std::string printed = print_model(parsed);
    const ModelFile reparsed = parse_model(printed);
    EXPECT_EQ(printed, print_model(reparsed));
    // Spot-checks on the printed text.
    EXPECT_NE(printed.find("int [0..5]"), std::string::npos);
    EXPECT_NE(printed.find("in modes (m1)"), std::string::npos);
    EXPECT_NE(printed.find("@activation"), std::string::npos);
    EXPECT_NE(printed.find("k' = "), std::string::npos);
    EXPECT_NE(printed.find("occurrence poisson"), std::string::npos);
    EXPECT_NE(printed.find("component root uses error model EM.I;"), std::string::npos);
}

} // namespace
} // namespace slimsim::slim
