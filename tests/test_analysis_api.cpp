// Tests of the unified analysis API: every mode through run_analysis(),
// report content, and byte-identical deterministic report views.
#include "api/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hpp"

namespace slimsim {
namespace {

// Markovian single-fault model: P( <> [0,2] broken ) = 1 - e^{-0.5 * 2}.
constexpr const char* kModel = R"(
    root S.I;
    system S
    features broken: out data port bool default false;
    end S;
    system implementation S.I end S.I;
    error model EM
    features ok: initial state; bad: error state;
    end EM;
    error model implementation EM.I
    events f: error event occurrence poisson 0.5 per sec;
    transitions ok -[f]-> bad;
    end EM.I;
    fault injections
      component root uses error model EM.I;
      component root in state bad effect broken := true;
    end fault injections;
)";

struct AnalysisApiTest : ::testing::Test {
    eda::Network net = eda::build_network_from_source(kModel);
    double expected = 1.0 - std::exp(-1.0);

    [[nodiscard]] AnalysisRequest base_request() const {
        AnalysisRequest req;
        req.property = sim::make_reachability(net.model(), "broken", 2.0);
        req.model_label = "fault.slim";
        req.delta = 0.1;
        req.eps = 0.05;
        req.seed = 7;
        return req;
    }

    [[nodiscard]] static bool has_phase(const telemetry::RunReport& report,
                                        std::string_view name) {
        return std::any_of(report.phases.begin(), report.phases.end(),
                           [&](const telemetry::Phase& p) { return p.name == name; });
    }
};

TEST_F(AnalysisApiTest, EstimateModeFillsReport) {
    const AnalysisResult res = run_analysis(net, base_request());
    EXPECT_EQ(res.mode, AnalysisMode::Estimate);
    EXPECT_NEAR(res.value, expected, 0.08);
    EXPECT_EQ(res.value, res.estimation.estimate);

    const telemetry::RunReport& report = res.report;
    EXPECT_EQ(report.mode, "estimate");
    EXPECT_EQ(report.model, "fault.slim");
    EXPECT_EQ(report.property, "<> [0,2] broken");
    EXPECT_EQ(report.strategy, "progressive");
    EXPECT_EQ(report.criterion, "chernoff-hoeffding");
    EXPECT_EQ(report.seed, 7u);
    EXPECT_EQ(report.workers, 1u);
    EXPECT_GT(report.samples, 0u);
    ASSERT_EQ(report.worker_stats.size(), 1u);
    EXPECT_EQ(report.worker_stats[0].rng_stream, 0u);
    EXPECT_EQ(report.worker_stats[0].accepted, report.samples);
    EXPECT_FALSE(report.terminals.empty());
    EXPECT_FALSE(report.stop_trajectory.empty());
    EXPECT_EQ(report.stop_trajectory.back().samples, report.samples);
    EXPECT_TRUE(has_phase(report, "simulate"));
    // Engine telemetry flowed through the recorder into the report.
    const auto paths =
        std::find_if(report.counters.begin(), report.counters.end(),
                     [](const auto& c) { return c.first == "sim.paths"; });
    ASSERT_NE(paths, report.counters.end());
    EXPECT_GE(paths->second, report.samples);
}

TEST_F(AnalysisApiTest, MatchesLegacyEntryPoint) {
    AnalysisRequest req = base_request();
    const AnalysisResult res = run_analysis(net, req);
    const stat::ChernoffHoeffding ch(req.delta, req.eps);
    const sim::EstimationResult legacy = sim::estimate(
        net, req.property, sim::StrategyKind::Progressive, ch, req.seed);
    EXPECT_EQ(res.estimation.samples, legacy.samples);
    EXPECT_EQ(res.estimation.successes, legacy.successes);
    EXPECT_EQ(res.value, legacy.estimate);
}

TEST_F(AnalysisApiTest, DeterministicViewIsByteStableAcrossRuns) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
        AnalysisRequest req = base_request();
        if (workers > 1) {
            req.mode = AnalysisMode::EstimateParallel;
            req.workers = workers;
        }
        const AnalysisResult a = run_analysis(net, req);
        const AnalysisResult b = run_analysis(net, req);
        const std::string da =
            telemetry::deterministic_view(a.report.to_json()).dump(2);
        const std::string db =
            telemetry::deterministic_view(b.report.to_json()).dump(2);
        EXPECT_EQ(da, db) << workers << " workers";
    }
}

TEST_F(AnalysisApiTest, ParallelModeReportsPerWorkerStreams) {
    AnalysisRequest req = base_request();
    req.mode = AnalysisMode::EstimateParallel;
    req.workers = 3;
    const AnalysisResult res = run_analysis(net, req);
    EXPECT_NEAR(res.value, expected, 0.08);
    const telemetry::RunReport& report = res.report;
    EXPECT_EQ(report.mode, "estimate-parallel");
    EXPECT_EQ(report.workers, 3u);
    ASSERT_EQ(report.worker_stats.size(), 3u);
    std::uint64_t accepted = 0;
    for (std::size_t w = 0; w < 3; ++w) {
        EXPECT_EQ(report.worker_stats[w].worker, w);
        EXPECT_EQ(report.worker_stats[w].rng_stream, w);
        accepted += report.worker_stats[w].accepted;
    }
    EXPECT_EQ(accepted, report.samples);
    EXPECT_GT(report.collector.rounds, 0u);
    EXPECT_EQ(report.collector.accepted, report.samples);
}

TEST_F(AnalysisApiTest, HypothesisTestMode) {
    AnalysisRequest req = base_request();
    req.mode = AnalysisMode::HypothesisTest;
    req.threshold = 0.1; // far below the true 0.63: accept quickly
    const AnalysisResult res = run_analysis(net, req);
    EXPECT_EQ(res.hypothesis.verdict, sim::HypothesisVerdict::AcceptAbove);
    EXPECT_EQ(res.report.mode, "hypothesis-test");
    EXPECT_EQ(res.report.criterion, "sprt");
    EXPECT_FALSE(res.report.verdict.empty());
    EXPECT_GT(res.report.samples, 0u);
    const double threshold =
        std::find_if(res.report.params.begin(), res.report.params.end(),
                     [](const auto& p) { return p.first == "threshold"; })
            ->second;
    EXPECT_EQ(threshold, 0.1);
}

TEST_F(AnalysisApiTest, CtmcFlowMode) {
    AnalysisRequest req = base_request();
    req.mode = AnalysisMode::CtmcFlow;
    const AnalysisResult res = run_analysis(net, req);
    EXPECT_NEAR(res.value, expected, 1e-6);
    EXPECT_EQ(res.report.mode, "ctmc-flow");
    EXPECT_TRUE(has_phase(res.report, "explore"));
    EXPECT_TRUE(has_phase(res.report, "transient"));
    const auto states =
        std::find_if(res.report.counters.begin(), res.report.counters.end(),
                     [](const auto& c) { return c.first == "ctmc.imc_states"; });
    ASSERT_NE(states, res.report.counters.end());
    EXPECT_GT(states->second, 0u);
}

TEST_F(AnalysisApiTest, CtmcFlowRejectsUnsupportedProperties) {
    AnalysisRequest req = base_request();
    req.mode = AnalysisMode::CtmcFlow;
    req.property = sim::make_reachability_interval(net.model(), "broken", 0.5, 2.0);
    EXPECT_THROW((void)run_analysis(net, req), Error);
}

TEST_F(AnalysisApiTest, TelemetryOffStillReportsResults) {
    AnalysisRequest req = base_request();
    req.telemetry = false;
    const AnalysisResult res = run_analysis(net, req);
    EXPECT_NEAR(res.value, expected, 0.08);
    EXPECT_GT(res.report.samples, 0u);
    EXPECT_EQ(res.report.value, res.value);
    EXPECT_FALSE(res.report.terminals.empty());
    EXPECT_TRUE(res.report.counters.empty());
    EXPECT_TRUE(res.report.stop_trajectory.empty());
}

TEST_F(AnalysisApiTest, ReportJsonRoundTripsThroughParser) {
    const AnalysisResult res = run_analysis(net, base_request());
    const json::Value doc = res.report.to_json();
    EXPECT_EQ(json::Value::parse(doc.dump()), doc);
    EXPECT_EQ(json::Value::parse(doc.dump(2)), doc);
    EXPECT_EQ(doc.at("schema").as_string(), "slimsim-run-report");
    EXPECT_EQ(doc.at("analysis").at("workers").as_uint(), 1u);
}

TEST_F(AnalysisApiTest, WitnessCaptureReturnsBothKinds) {
    AnalysisRequest req = base_request();
    req.witness.per_kind = 2;
    const AnalysisResult res = run_analysis(net, req);
    const auto& witnesses = res.estimation.witnesses;
    ASSERT_FALSE(witnesses.empty());
    std::size_t accepting = 0;
    std::size_t rejecting = 0;
    for (const sim::Witness& w : witnesses) {
        // The replayed trace agrees with the outcome captured live.
        EXPECT_TRUE(w.trace.finished());
        EXPECT_EQ(w.trace.satisfied(), w.outcome.satisfied);
        EXPECT_EQ(w.trace.end_time(), w.outcome.end_time);
        (w.outcome.satisfied ? accepting : rejecting) += 1;
    }
    // True p ~ 0.63: both outcomes occur well within the sample budget.
    EXPECT_EQ(accepting, 2u);
    EXPECT_EQ(rejecting, 2u);
    // Accepting witnesses come first, each kind in path-index order.
    EXPECT_TRUE(witnesses[0].outcome.satisfied);
    EXPECT_LE(witnesses[0].path_index, witnesses[1].path_index);
}

TEST_F(AnalysisApiTest, WitnessCaptureIsDeterministic) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
        AnalysisRequest req = base_request();
        req.witness.per_kind = 1;
        if (workers > 1) {
            req.mode = AnalysisMode::EstimateParallel;
            req.workers = workers;
        }
        const AnalysisResult a = run_analysis(net, req);
        const AnalysisResult b = run_analysis(net, req);
        ASSERT_EQ(a.estimation.witnesses.size(), b.estimation.witnesses.size())
            << workers << " workers";
        for (std::size_t i = 0; i < a.estimation.witnesses.size(); ++i) {
            const sim::Witness& wa = a.estimation.witnesses[i];
            const sim::Witness& wb = b.estimation.witnesses[i];
            EXPECT_EQ(wa.worker, wb.worker);
            EXPECT_EQ(wa.path_index, wb.path_index);
            // Byte-identical witness text for the same (seed, workers).
            EXPECT_EQ(wa.trace.to_string(), wb.trace.to_string())
                << workers << " workers, witness " << i;
        }
    }
}

TEST_F(AnalysisApiTest, WitnessCaptureDoesNotPerturbTheEstimate) {
    AnalysisRequest req = base_request();
    const AnalysisResult plain = run_analysis(net, req);
    req.witness.per_kind = 2;
    const AnalysisResult with = run_analysis(net, req);
    EXPECT_EQ(plain.value, with.value);
    EXPECT_EQ(plain.estimation.samples, with.estimation.samples);
    // Replay does not double-count engine telemetry: sim.paths still
    // matches the sample count.
    const auto paths =
        std::find_if(with.report.counters.begin(), with.report.counters.end(),
                     [](const auto& c) { return c.first == "sim.paths"; });
    ASSERT_NE(paths, with.report.counters.end());
    EXPECT_EQ(paths->second, with.report.samples);
}

TEST_F(AnalysisApiTest, TracerRecordsLanesPerMode) {
    // Sequential estimation: one "main" lane with sim.path spans.
    {
        tracer::Tracer tracer;
        AnalysisRequest req = base_request();
        req.tracer = &tracer;
        (void)run_analysis(net, req);
        tracer::Lane* main_lane = tracer.lane("main");
        ASSERT_NE(main_lane, nullptr);
        EXPECT_GT(main_lane->total(), 0u);
    }
    // Parallel estimation: per-worker lanes plus the collector lane, in
    // deterministic id order.
    {
        tracer::Tracer tracer;
        AnalysisRequest req = base_request();
        req.mode = AnalysisMode::EstimateParallel;
        req.workers = 2;
        req.tracer = &tracer;
        (void)run_analysis(net, req);
        tracer::Lane* w0 = tracer.lane("worker 0");
        tracer::Lane* w1 = tracer.lane("worker 1");
        tracer::Lane* coll = tracer.lane("collector");
        ASSERT_NE(w0, nullptr);
        ASSERT_NE(w1, nullptr);
        ASSERT_NE(coll, nullptr);
        EXPECT_EQ(w0->id(), 0u);
        EXPECT_EQ(w1->id(), 1u);
        EXPECT_EQ(coll->id(), 2u);
        EXPECT_GT(w0->total(), 0u);
        EXPECT_GT(w1->total(), 0u);
        EXPECT_GT(coll->total(), 0u);
        const json::Value doc = tracer.to_chrome_json();
        EXPECT_EQ(json::Value::parse(doc.dump()), doc);
    }
    // Disabled tracer attached: no lanes are created.
    {
        tracer::Tracer::Options off;
        off.enabled = false;
        tracer::Tracer tracer(off);
        AnalysisRequest req = base_request();
        req.tracer = &tracer;
        (void)run_analysis(net, req);
        EXPECT_EQ(tracer.to_chrome_json().at("traceEvents").size(), 1u);
    }
}

TEST_F(AnalysisApiTest, ProgressCallbackStreamsMonotonically) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
        AnalysisRequest req = base_request();
        if (workers > 1) {
            req.mode = AnalysisMode::EstimateParallel;
            req.workers = workers;
        }
        std::vector<sim::ProgressSnapshot> snaps;
        req.progress.callback = [&](const sim::ProgressSnapshot& p) {
            snaps.push_back(p);
        };
        req.progress.min_interval_seconds = 0.0; // every round
        const AnalysisResult res = run_analysis(net, req);
        ASSERT_FALSE(snaps.empty()) << workers << " workers";
        std::uint64_t prev = 0;
        for (const sim::ProgressSnapshot& p : snaps) {
            EXPECT_GE(p.samples, prev);
            prev = p.samples;
            EXPECT_LE(p.successes, p.samples);
            EXPECT_GE(p.half_width, 0.0);
        }
        // The final snapshot is always emitted and matches the result.
        EXPECT_EQ(snaps.back().samples, res.estimation.samples);
        EXPECT_EQ(snaps.back().successes, res.estimation.successes);
        EXPECT_EQ(snaps.back().required, res.estimation.samples);
    }
}

TEST_F(AnalysisApiTest, ProgressSnapshotMath) {
    sim::ProgressOptions opt;
    opt.delta = 0.05;
    const sim::ProgressSnapshot p = sim::make_progress_snapshot(100, 50, 400, 1.0, opt);
    EXPECT_EQ(p.samples, 100u);
    EXPECT_EQ(p.estimate, 0.5);
    // CLT half-width at 95%: 1.96 * sqrt(0.25/100) ~ 0.098.
    EXPECT_NEAR(p.half_width, 0.098, 0.002);
    // Fixed criterion: ETA extrapolates run rate to the remaining samples.
    EXPECT_NEAR(p.eta_seconds, 3.0, 1e-9);
}

TEST_F(AnalysisApiTest, ProgressEtaHonorsAdaptiveSampleFloor) {
    // Regression: with few successes the variance extrapolation can target
    // fewer samples than the adaptive criterion's floor, making the ETA hit
    // 0 while Chow-Robbins is still barred from stopping. The target must be
    // clamped to min_samples.
    sim::ProgressOptions opt;
    opt.delta = 0.05;
    opt.eps = 0.1;
    opt.min_samples = 64;
    const sim::ProgressSnapshot p = sim::make_progress_snapshot(30, 1, 0, 1.0, opt);
    EXPECT_GT(p.eta_seconds, 0.0);
    EXPECT_NEAR(p.eta_seconds, 1.0 * (64.0 - 30.0) / 30.0, 1e-9);
    // Past the floor the variance extrapolation governs again.
    const sim::ProgressSnapshot q = sim::make_progress_snapshot(70, 2, 0, 1.0, opt);
    EXPECT_EQ(q.eta_seconds, 0.0);
}

TEST_F(AnalysisApiTest, AdaptiveProgressNeverReportsZeroEtaBeforeFloor) {
    AnalysisRequest req = base_request();
    req.criterion = stat::CriterionKind::ChowRobbins;
    std::vector<sim::ProgressSnapshot> snaps;
    req.progress.callback = [&](const sim::ProgressSnapshot& p) { snaps.push_back(p); };
    req.progress.min_interval_seconds = 0.0;
    const AnalysisResult res = run_analysis(net, req);
    ASSERT_FALSE(snaps.empty());
    EXPECT_GE(res.estimation.samples, 64u); // the Chow-Robbins floor held
    for (const sim::ProgressSnapshot& p : snaps) {
        if (p.samples >= 2 && p.samples < 64) {
            // ETA is either unknown (< 0, elapsed not yet measurable) or a
            // genuine positive extrapolation — never "done now".
            EXPECT_NE(p.eta_seconds, 0.0) << "at " << p.samples << " samples";
        }
    }
}

TEST_F(AnalysisApiTest, CoverageSectionByteIdenticalAcrossWorkerCounts) {
    // Coverage runs use per-path RNG streams, so the serialized coverage
    // section — counts, occupancy doubles, saturation series — must match
    // byte for byte whatever the worker count (docs/coverage.md).
    AnalysisRequest seq = base_request();
    seq.coverage = true;
    const AnalysisResult a = run_analysis(net, seq);
    ASSERT_TRUE(a.coverage.enabled);
    EXPECT_GT(a.coverage.paths, 0u);
    const json::Value doc = a.report.to_json();
    const json::Value* section = doc.find("coverage");
    ASSERT_NE(section, nullptr);
    const std::string reference = section->dump(2);
    for (const std::size_t workers : {2u, 4u}) {
        AnalysisRequest par = base_request();
        par.coverage = true;
        par.mode = AnalysisMode::EstimateParallel;
        par.workers = workers;
        const AnalysisResult b = run_analysis(net, par);
        EXPECT_EQ(b.value, a.value) << workers << " workers";
        EXPECT_EQ(b.report.to_json().at("coverage").dump(2), reference)
            << workers << " workers";
    }
}

TEST_F(AnalysisApiTest, CoverageRejectedOutsideEstimationModes) {
    AnalysisRequest req = base_request();
    req.coverage = true;
    req.mode = AnalysisMode::HypothesisTest;
    req.threshold = 0.5;
    EXPECT_THROW((void)run_analysis(net, req), Error);
    req.mode = AnalysisMode::CtmcFlow;
    EXPECT_THROW((void)run_analysis(net, req), Error);
}

TEST_F(AnalysisApiTest, SplittingModeFillsReport) {
    AnalysisRequest req = base_request();
    req.mode = AnalysisMode::EstimateSplitting;
    req.splitting.level = "(if broken then 1 else 0)";
    req.splitting.factor = 2;
    req.splitting.base_runs = 2048;
    const AnalysisResult res = run_analysis(net, req);
    EXPECT_EQ(res.mode, AnalysisMode::EstimateSplitting);
    EXPECT_NEAR(res.value, expected, 0.08);
    EXPECT_EQ(res.value, res.splitting.estimate);
    EXPECT_EQ(res.splitting.status, sim::RunStatus::Converged);

    const telemetry::RunReport& report = res.report;
    EXPECT_EQ(report.mode, "estimate-splitting");
    EXPECT_EQ(report.samples, 2048u);
    EXPECT_EQ(report.criterion, "fixed-roots(2048)");
    ASSERT_TRUE(report.splitting.enabled);
    EXPECT_EQ(report.splitting.level, req.splitting.level);
    EXPECT_EQ(report.splitting.factor, 2u);
    EXPECT_EQ(report.splitting.roots, 2048u);
    EXPECT_GT(report.splitting.total_paths, 2048u);
    EXPECT_EQ(report.splitting.goal_hits, res.splitting.goal_hits);

    const json::Value doc = report.to_json();
    ASSERT_NE(doc.find("version"), nullptr);
    EXPECT_EQ(doc.find("version")->as_int(), telemetry::RunReport::kSchemaVersion);
    const json::Value* sp = doc.find("splitting");
    ASSERT_NE(sp, nullptr);
    EXPECT_EQ(sp->find("factor")->as_int(), 2);
    EXPECT_EQ(sp->find("roots")->as_int(), 2048);

    const std::string text = res.to_string();
    EXPECT_NE(text.find("importance splitting"), std::string::npos);
    EXPECT_NE(text.find("roots"), std::string::npos);
}

TEST_F(AnalysisApiTest, SplittingReportByteIdenticalAcrossWorkerCounts) {
    // The report's result-bearing sections must not move by a byte when the
    // worker count changes. (The whole deterministic view cannot be compared
    // across worker counts: it embeds the workers parameter itself, and with
    // one worker the recorder counters are deterministic and stay in the
    // deterministic part.)
    const auto result_sections = [](const telemetry::RunReport& report) {
        const json::Value doc = report.to_json();
        std::string out;
        for (const char* key : {"result", "run_status", "terminals", "splitting"}) {
            const json::Value* section = doc.find(key);
            if (section != nullptr) out += section->dump(2) + "\n";
        }
        return out;
    };
    std::string reference;
    std::string reference_text;
    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        AnalysisRequest req = base_request();
        req.mode = AnalysisMode::EstimateSplitting;
        req.splitting.level = "(if broken then 1 else 0)";
        req.splitting.factor = 4;
        req.splitting.base_runs = 512;
        req.workers = workers;
        const AnalysisResult res = run_analysis(net, req);
        const std::string view = result_sections(res.report);
        if (reference.empty()) {
            reference = view;
            reference_text = res.to_string();
        } else {
            EXPECT_EQ(view, reference) << workers << " workers";
            EXPECT_EQ(res.to_string(), reference_text) << workers << " workers";
        }
    }
}

TEST_F(AnalysisApiTest, SplittingAutoPlacementFillsPilotCoverage) {
    AnalysisRequest req = base_request();
    req.mode = AnalysisMode::EstimateSplitting;
    req.splitting.auto_levels = true;
    req.splitting.base_runs = 512;
    req.splitting.pilot_runs = 128;
    const AnalysisResult res = run_analysis(net, req);
    EXPECT_NEAR(res.value, expected, 0.1);
    EXPECT_EQ(res.splitting.pilot_paths, 128u);
    EXPECT_TRUE(res.coverage.enabled); // the pilot's profile
    EXPECT_TRUE(res.report.coverage.enabled);
    EXPECT_EQ(res.report.splitting.level, "auto");
    EXPECT_EQ(res.report.splitting.pilot_paths, 128u);
}

TEST_F(AnalysisApiTest, SplittingRejectsCurveWitnessAndCoverage) {
    AnalysisRequest req = base_request();
    req.mode = AnalysisMode::EstimateSplitting;
    req.splitting.level = "(if broken then 1 else 0)";
    req.curve_bounds = {1.0, 2.0};
    EXPECT_THROW((void)run_analysis(net, req), Error);
    req.curve_bounds.clear();
    req.witness.per_kind = 1;
    EXPECT_THROW((void)run_analysis(net, req), Error);
    req.witness.per_kind = 0;
    req.coverage = true;
    EXPECT_THROW((void)run_analysis(net, req), Error);
}

TEST_F(AnalysisApiTest, ToStringCarriesHeadline) {
    const AnalysisResult res = run_analysis(net, base_request());
    const std::string text = res.to_string();
    EXPECT_NE(text.find("P( <> [0,2] broken ) ~="), std::string::npos);
    EXPECT_NE(text.find("terminals:"), std::string::npos);
    EXPECT_NE(text.find("goal="), std::string::npos);
}

} // namespace
} // namespace slimsim
