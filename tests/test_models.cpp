#include "models/gps.hpp"
#include "models/launcher.hpp"
#include "models/sensor_filter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "eda/network.hpp"
#include "sim/runner.hpp"
#include "slim/validate.hpp"

namespace slimsim {
namespace {

TEST(GpsModel, ParsesAndValidates) {
    const eda::Network net = eda::build_network_from_source(models::gps_source());
    const auto& m = net.model();
    EXPECT_EQ(m.instances.size(), 2u); // satellite + gps
    // Processes: gps nominal + gps error model.
    EXPECT_EQ(m.processes.size(), 2u);
    EXPECT_EQ(m.injections.size(), 3u);
}

TEST(GpsModel, AsapAcquiresFixAtTenSeconds) {
    const eda::Network net = eda::build_network_from_source(models::gps_source());
    const auto prop = sim::make_reachability(net.model(), models::gps_goal(), 1800.0);
    auto strat = sim::make_strategy(sim::StrategyKind::Asap);
    const sim::PathGenerator gen(net, prop, *strat);
    Rng rng(1);
    const sim::PathOutcome out = gen.run(rng);
    EXPECT_TRUE(out.satisfied);
    // ASAP fires the acquisition transition at its earliest instant, 10 s
    // (unless an extremely early fault preempted it, which seed 1 does not).
    EXPECT_NEAR(out.end_time, 10.0, 1e-9);
}

TEST(GpsModel, AllStrategiesReachFixWithHighProbability) {
    const eda::Network net = eda::build_network_from_source(models::gps_source());
    const auto prop = sim::make_reachability(net.model(), models::gps_goal(), 1800.0);
    const stat::ChernoffHoeffding ch(0.1, 0.05);
    for (const auto k : sim::automated_strategies()) {
        const auto res = sim::estimate(net, prop, k, ch, 11);
        EXPECT_GT(res.estimate, 0.9) << sim::to_string(k);
    }
}

TEST(GpsModel, ProgressiveAcquisitionIsUniformOverWindow) {
    // Under Progressive, the fix time is ~uniform over [10 s, 120 s]
    // (Sec. III-B): P(fix by 65 s) = (65-10)/110 = 0.5.
    const eda::Network net = eda::build_network_from_source(models::gps_source());
    const auto prop = sim::make_reachability(net.model(), models::gps_goal(), 65.0);
    const stat::ChernoffHoeffding ch(0.05, 0.02);
    const auto res = sim::estimate(net, prop, sim::StrategyKind::Progressive, ch, 23);
    EXPECT_NEAR(res.estimate, 55.0 / 110.0, 0.03);
}

TEST(SensorFilterModel, GeneratesForEachRedundancy) {
    for (int r = 1; r <= 4; ++r) {
        const eda::Network net =
            eda::build_network_from_source(models::sensor_filter_source(r));
        const auto& m = net.model();
        // Instances: root + r sensors + r filters.
        EXPECT_EQ(m.instances.size(), 1u + 2u * static_cast<std::size_t>(r));
        // Processes: root monitor + 2r error models.
        EXPECT_EQ(m.processes.size(), 1u + 2u * static_cast<std::size_t>(r));
        // Injections: one per unit.
        EXPECT_EQ(m.injections.size(), 2u * static_cast<std::size_t>(r));
        // Monitor has r^2 + 1 modes.
        EXPECT_EQ(m.processes[0].locations.size(),
                  static_cast<std::size_t>(r) * static_cast<std::size_t>(r) + 1u);
    }
}

TEST(SensorFilterModel, RejectsZeroRedundancy) {
    EXPECT_THROW(models::sensor_filter_source(0), Error);
}

TEST(SensorFilterModel, NoRedundancyFailsOnFirstFault) {
    // R=1: first unit failure kills the system; P = 1 - exp(-(ls+lf)u).
    const eda::Network net = eda::build_network_from_source(
        models::sensor_filter_source(1, 0.01, 0.005));
    const auto prop =
        sim::make_reachability(net.model(), models::sensor_filter_goal(), 100.0 * 3600.0);
    const stat::ChernoffHoeffding ch(0.05, 0.02);
    const auto res = sim::estimate(net, prop, sim::StrategyKind::Asap, ch, 3);
    const double expected = 1.0 - std::exp(-(0.01 + 0.005) * 100.0);
    EXPECT_NEAR(res.estimate, expected, 0.03);
}

TEST(SensorFilterModel, RedundancyImprovesReliability) {
    const double u = 200.0 * 3600.0;
    const stat::ChernoffHoeffding ch(0.05, 0.02);
    double prev = 1.1;
    for (int r = 1; r <= 3; ++r) {
        const eda::Network net =
            eda::build_network_from_source(models::sensor_filter_source(r));
        const auto prop =
            sim::make_reachability(net.model(), models::sensor_filter_goal(), u);
        const double p = sim::estimate(net, prop, sim::StrategyKind::Asap, ch, 17).estimate;
        EXPECT_LT(p, prev + 0.01) << "R=" << r;
        prev = p;
    }
}

TEST(LauncherModel, ParsesBothVariants) {
    for (const bool recoverable : {false, true}) {
        models::LauncherOptions opt;
        opt.recoverable_dpu = recoverable;
        const eda::Network net =
            eda::build_network_from_source(models::launcher_source(opt));
        const auto& m = net.model();
        EXPECT_EQ(m.instances.size(), 23u); // root + devices + batteries + PCDU outputs
        // 12 bound error models + 3 behavioural processes (2 batteries...).
        std::size_t error_processes = 0;
        for (const auto& p : m.processes) {
            if (p.is_error) ++error_processes;
        }
        EXPECT_EQ(error_processes, 12u);
        EXPECT_GE(m.injections.size(), 16u);
        const auto diags = slim::validate(m);
        for (const auto& d : diags) {
            EXPECT_NE(d.severity, Severity::Error) << d.to_string();
        }
    }
}

TEST(LauncherModel, NoFailureInitially) {
    const eda::Network net = eda::build_network_from_source(models::launcher_source());
    const eda::NetworkState s = net.initial_state();
    const auto prop = sim::make_reachability(net.model(), models::launcher_goal(), 60.0);
    EXPECT_FALSE(net.eval_global(s, *prop.goal));
    // Commands are initially live.
    EXPECT_EQ(s.values[net.model().var("dpu1.command")], Value(true));
    EXPECT_EQ(s.values[net.model().var("dpu2.command")], Value(true));
}

TEST(LauncherModel, PermanentVariantStrategiesAgree) {
    models::LauncherOptions opt;
    opt.recoverable_dpu = false;
    const eda::Network net = eda::build_network_from_source(models::launcher_source(opt));
    const double u = 2.0 * 3600.0;
    const auto prop = sim::make_reachability(net.model(), models::launcher_goal(), u);
    const stat::ChernoffHoeffding ch(0.1, 0.04);
    // Fig. 5 left: all strategies coincide (within statistical error) since
    // only probabilistic/deterministic behaviour remains.
    const double p_asap =
        sim::estimate(net, prop, sim::StrategyKind::Asap, ch, 21).estimate;
    const double p_max =
        sim::estimate(net, prop, sim::StrategyKind::MaxTime, ch, 22).estimate;
    EXPECT_NEAR(p_asap, p_max, 0.1);
    EXPECT_GT(p_asap, 0.3); // exaggerated rates produce a visible failure mass
}

TEST(LauncherModel, RecoverableVariantSeparatesStrategies) {
    models::LauncherOptions opt;
    opt.recoverable_dpu = true;
    const eda::Network net = eda::build_network_from_source(models::launcher_source(opt));
    const double u = 2.0 * 3600.0;
    const auto prop = sim::make_reachability(net.model(), models::launcher_goal(), u);
    const stat::ChernoffHoeffding ch(0.1, 0.04);
    // Fig. 5 right: ASAP always repairs too early (fault becomes permanent),
    // MaxTime always repairs in time.
    const double p_asap =
        sim::estimate(net, prop, sim::StrategyKind::Asap, ch, 31).estimate;
    const double p_max =
        sim::estimate(net, prop, sim::StrategyKind::MaxTime, ch, 32).estimate;
    const double p_prog =
        sim::estimate(net, prop, sim::StrategyKind::Progressive, ch, 33).estimate;
    EXPECT_GT(p_asap, p_max + 0.2);
    EXPECT_GT(p_asap + 0.02, p_prog);
    EXPECT_GT(p_prog + 0.02, p_max);
}

} // namespace
} // namespace slimsim
