// Nested probabilistic operators (paper Sec. VII-A future work).
#include "sim/nested.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/runner.hpp"
#include "slim/parser.hpp"

namespace slimsim::sim {
namespace {

/// Repairable component: fails at rate 1/s, repaired at rate 2/s.
constexpr const char* kRepairable = R"(
    root S.I;
    system S
    features broken: out data port bool default false;
    end S;
    system implementation S.I end S.I;
    error model EM
    features ok: initial state; down: error state;
    end EM;
    error model implementation EM.I
    events
      fail: error event occurrence poisson 1 per sec;
      fix: error event occurrence poisson 2 per sec;
    transitions
      ok -[fail]-> down;
      down -[fix]-> ok;
    end EM.I;
    fault injections
      component root uses error model EM.I;
      component root in state down effect broken := true;
    end fault injections;
)";

expr::ExprPtr goal_of(const eda::Network& net, const std::string& src) {
    return resolve_goal(net.model(), slim::parse_expression(src));
}

TEST(Nested, StateFormulaStructure) {
    const eda::Network net = eda::build_network_from_source(kRepairable);
    const StateFormula atom = StateFormula::atom(goal_of(net, "broken"));
    EXPECT_FALSE(atom.has_nested());
    PathFormula inner = make_reachability(net.model(), "broken", 1.0);
    const StateFormula prob = StateFormula::probability_at_least(inner, 0.5);
    EXPECT_TRUE(prob.has_nested());
    EXPECT_TRUE(StateFormula::negation(prob).has_nested());
    EXPECT_TRUE(StateFormula::conjunction(atom, prob).has_nested());
    EXPECT_FALSE(StateFormula::disjunction(atom, atom).has_nested());
}

TEST(Nested, PureAtomMatchesPlainEstimation) {
    const eda::Network net = eda::build_network_from_source(kRepairable);
    const StateFormula phi = StateFormula::atom(goal_of(net, "broken"));
    NestedOptions opt;
    opt.eps = 0.02;
    const NestedResult nested = estimate_nested(net, phi, 1.0, 7, opt);
    EXPECT_EQ(nested.inner_tests, 0u);

    const auto prop = make_reachability(net.model(), "broken", 1.0);
    const stat::ChernoffHoeffding ch(0.05, 0.02);
    const double plain = estimate(net, prop, StrategyKind::Asap, ch, 7).estimate;
    EXPECT_NEAR(nested.estimate, plain, 0.03);
}

TEST(Nested, InnerOperatorMatchesAnalytic) {
    // "Risky" := P>=0.9( <> [0,1] broken ). From `ok`, P(break within 1 s)
    // = 1 - e^-1 ~ 0.63 < 0.9: not risky. From `down` it is 1: risky.
    // Hence P( <> [0,u] Risky ) = P(first failure within u) = 1 - e^-u.
    const eda::Network net = eda::build_network_from_source(kRepairable);
    PathFormula inner = make_reachability(net.model(), "broken", 1.0);
    const StateFormula risky = StateFormula::probability_at_least(inner, 0.9, 0.05, 0.01);
    const double u = 1.5;
    NestedOptions opt;
    opt.eps = 0.02;
    const NestedResult res = estimate_nested(net, risky, u, 11, opt);
    EXPECT_NEAR(res.estimate, 1.0 - std::exp(-u), 0.04);
    // Memoization: the model has exactly two discrete states.
    EXPECT_LE(res.inner_tests, 2u);
    EXPECT_GT(res.memo_hits, res.inner_tests);
}

TEST(Nested, NegationAndConjunction) {
    // NOT risky AND NOT broken: true exactly in `ok`-with-low-risk... with
    // threshold 0.5 (< 0.63), even `ok` is risky, so the formula is never
    // true and the outer probability is 0.
    const eda::Network net = eda::build_network_from_source(kRepairable);
    PathFormula inner = make_reachability(net.model(), "broken", 1.0);
    const StateFormula risky = StateFormula::probability_at_least(inner, 0.5, 0.05, 0.01);
    const StateFormula phi = StateFormula::conjunction(
        StateFormula::negation(risky), StateFormula::atom(goal_of(net, "not broken")));
    NestedOptions opt;
    opt.eps = 0.05;
    const NestedResult res = estimate_nested(net, phi, 1.0, 3, opt);
    EXPECT_DOUBLE_EQ(res.estimate, 0.0);
}

TEST(Nested, DeterministicInSeed) {
    const eda::Network net = eda::build_network_from_source(kRepairable);
    PathFormula inner = make_reachability(net.model(), "broken", 1.0);
    const StateFormula risky = StateFormula::probability_at_least(inner, 0.9, 0.05, 0.05);
    NestedOptions opt;
    opt.eps = 0.05;
    const NestedResult a = estimate_nested(net, risky, 1.0, 21, opt);
    const NestedResult b = estimate_nested(net, risky, 1.0, 21, opt);
    EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
    EXPECT_EQ(a.inner_paths, b.inner_paths);
}

TEST(Nested, RejectsTimedModels) {
    const eda::Network net = eda::build_network_from_source(R"(
        root S.I;
        system S
        features done: out data port bool default false;
        end S;
        system implementation S.I
        subcomponents x: data clock;
        modes a: initial mode while x <= 5; b: mode;
        transitions a -[when x >= 1 then done := true]-> b;
        end S.I;
    )");
    const StateFormula phi = StateFormula::atom(goal_of(net, "done"));
    EXPECT_THROW((void)estimate_nested(net, phi, 1.0, 1, {}), Error);
}

TEST(Nested, InconclusiveSprtRaises) {
    // Threshold placed at the true inner probability with a hair-thin
    // indifference region and a small budget: must raise, not loop forever.
    const eda::Network net = eda::build_network_from_source(kRepairable);
    PathFormula inner = make_reachability(net.model(), "broken", 1.0);
    const StateFormula risky =
        StateFormula::probability_at_least(inner, 1.0 - std::exp(-1.0), 1e-6, 0.01);
    NestedOptions opt;
    opt.inner_max_samples = 200;
    EXPECT_THROW((void)estimate_nested(net, risky, 1.0, 5, opt), Error);
}

TEST(Nested, RejectsBadBound) {
    const eda::Network net = eda::build_network_from_source(kRepairable);
    const StateFormula phi = StateFormula::atom(goal_of(net, "broken"));
    EXPECT_THROW((void)estimate_nested(net, phi, 0.0, 1, {}), Error);
}

} // namespace
} // namespace slimsim::sim
