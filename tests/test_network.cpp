#include "eda/network.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace slimsim::eda {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Network net_of(const std::string& src) { return build_network_from_source(src); }

TEST(Network, InitialState) {
    const Network net = net_of(R"(
        root S.I;
        system S end S;
        system implementation S.I
        subcomponents n: data int default 5;
        modes a: initial mode; b: mode;
        end S.I;
    )");
    const NetworkState s = net.initial_state();
    EXPECT_EQ(s.locations, (std::vector<int>{0}));
    EXPECT_EQ(s.values[net.model().var("n")], Value(std::int64_t{5}));
    EXPECT_EQ(s.time, 0.0);
    EXPECT_TRUE(s.instance_active(0));
}

TEST(Network, InvariantHorizon) {
    const Network net = net_of(R"(
        root S.I;
        system S end S;
        system implementation S.I
        subcomponents x: data clock;
        modes a: initial mode while x <= 7;
        transitions a -[when x >= 7]-> a;
        end S.I;
    )");
    NetworkState s = net.initial_state();
    EXPECT_DOUBLE_EQ(net.invariant_horizon(s), 7.0);
    net.elapse(s, 3.0);
    EXPECT_DOUBLE_EQ(net.invariant_horizon(s), 4.0);
    EXPECT_DOUBLE_EQ(s.time, 3.0);
    EXPECT_DOUBLE_EQ(s.values[net.model().var("x")].as_real(), 3.0);
}

TEST(Network, HorizonUnboundedWithoutInvariants) {
    const Network net = net_of(R"(
        root S.I;
        system S end S;
        system implementation S.I
        modes a: initial mode;
        end S.I;
    )");
    const NetworkState s = net.initial_state();
    EXPECT_EQ(net.invariant_horizon(s), kInf);
    EXPECT_TRUE(net.candidates(s, kInf).empty());
    EXPECT_TRUE(net.markovian_rates(s).empty());
}

TEST(Network, CandidateWindows) {
    const Network net = net_of(R"(
        root S.I;
        system S end S;
        system implementation S.I
        subcomponents x: data clock;
        modes a: initial mode while x <= 10; b: mode;
        transitions a -[when x >= 4 and x <= 6]-> b;
        end S.I;
    )");
    const NetworkState s = net.initial_state();
    const double h = net.invariant_horizon(s);
    EXPECT_DOUBLE_EQ(h, 10.0);
    const auto cands = net.candidates(s, h);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0].kind, Candidate::Kind::Tau);
    ASSERT_EQ(cands[0].enabled.parts().size(), 1u);
    EXPECT_DOUBLE_EQ(cands[0].enabled.parts()[0].lo, 4.0);
    EXPECT_DOUBLE_EQ(cands[0].enabled.parts()[0].hi, 6.0);
}

TEST(Network, ExecuteAppliesEffectsAndResetsTimer) {
    const Network net = net_of(R"(
        root S.I;
        system S end S;
        system implementation S.I
        subcomponents
          n: data int default 0;
        modes a: initial mode; b: mode;
        transitions a -[when @timer >= 2 then n := n + 41]-> b;
        end S.I;
    )");
    NetworkState s = net.initial_state();
    Rng rng(1);
    net.elapse(s, 2.5);
    const auto cands = net.candidates(s, 10.0);
    ASSERT_EQ(cands.size(), 1u);
    net.execute(s, cands[0], rng);
    EXPECT_EQ(s.locations[0], 1);
    EXPECT_EQ(s.values[net.model().var("n")], Value(std::int64_t{41}));
    EXPECT_DOUBLE_EQ(s.values[net.model().var("@timer")].as_real(), 0.0);
}

TEST(Network, SynchronizationFiresJointly) {
    const Network net = net_of(R"(
        root Top.I;
        system Sender
        features done: out event port;
        end Sender;
        system implementation Sender.I
        subcomponents sent: data bool default false;
        modes a: initial mode; b: mode;
        transitions a -[done then sent := true]-> b;
        end Sender.I;
        system Receiver
        features go: in event port;
        end Receiver;
        system implementation Receiver.I
        subcomponents got: data bool default false;
        modes idle: initial mode; busy: mode;
        transitions idle -[go then got := true]-> busy;
        end Receiver.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          s: system Sender.I;
          r: system Receiver.I;
        connections
          event port s.done -> r.go;
        end Top.I;
    )");
    NetworkState s = net.initial_state();
    Rng rng(1);
    const auto cands = net.candidates(s, kInf);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0].kind, Candidate::Kind::Sync);
    const StepInfo info = net.execute(s, cands[0], rng);
    EXPECT_EQ(info.fired.size(), 2u); // both processes moved
    EXPECT_EQ(s.values[net.model().var("s.sent")], Value(true));
    EXPECT_EQ(s.values[net.model().var("r.got")], Value(true));
}

TEST(Network, SyncBlockedWhenReceiverNotReady) {
    const Network net = net_of(R"(
        root Top.I;
        system Sender
        features done: out event port;
        end Sender;
        system implementation Sender.I
        modes a: initial mode; b: mode;
        transitions a -[done]-> b;
        end Sender.I;
        system Receiver
        features go: in event port;
        end Receiver;
        system implementation Receiver.I
        subcomponents armed: data bool default false;
        modes idle: initial mode; busy: mode;
        transitions idle -[go when armed]-> busy;
        end Receiver.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          s: system Sender.I;
          r: system Receiver.I;
        connections
          event port s.done -> r.go;
        end Top.I;
    )");
    const NetworkState s = net.initial_state();
    // Receiver's guard is false, so the CSP synchronization cannot happen.
    EXPECT_TRUE(net.candidates(s, kInf).empty());
}

TEST(Network, MarkovianRaceAndExecution) {
    const Network net = net_of(R"(
        root S.I;
        system S end S;
        system implementation S.I end S.I;
        error model EM
        features ok: initial state; bad: error state; worse: error state;
        end EM;
        error model implementation EM.I
        events
          f1: error event occurrence poisson 3 per sec;
          f2: error event occurrence poisson 1 per sec;
        transitions
          ok -[f1]-> bad;
          ok -[f2]-> worse;
        end EM.I;
        fault injections
          component root uses error model EM.I;
        end fault injections;
    )");
    NetworkState s = net.initial_state();
    const auto rates = net.markovian_rates(s);
    ASSERT_EQ(rates.size(), 1u);
    EXPECT_DOUBLE_EQ(rates[0].total_rate, 4.0);

    // Branch probabilities proportional to rates: ~3/4 to `bad`.
    Rng rng(1234);
    int to_bad = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        NetworkState copy = s;
        net.execute_markovian(copy, rates[0].process, rng);
        if (copy.locations[rates[0].process] == 1) ++to_bad;
    }
    EXPECT_NEAR(static_cast<double>(to_bad) / n, 0.75, 0.02);
}

TEST(Network, InjectionAppliesAndRestores) {
    const Network net = net_of(R"(
        root Top.I;
        system Leaf
        features v: out data port bool default true;
        end Leaf;
        system implementation Leaf.I end Leaf.I;
        system Top end Top;
        system implementation Top.I
        subcomponents a: system Leaf.I;
        end Top.I;
        error model EM
        features ok: initial state; bad: error state;
        end EM;
        error model implementation EM.I
        events
          f: error event occurrence poisson 1 per sec;
          r: error event;
        transitions
          ok -[f]-> bad;
          bad -[r when @timer >= 1]-> ok;
        end EM.I;
        fault injections
          component a uses error model EM.I;
          component a in state bad effect v := false;
        end fault injections;
    )");
    NetworkState s = net.initial_state();
    Rng rng(7);
    const VarId v = net.model().var("a.v");
    EXPECT_EQ(s.values[v], Value(true));
    // Fault fires -> injection forces v=false.
    const auto rates = net.markovian_rates(s);
    ASSERT_EQ(rates.size(), 1u);
    net.execute_markovian(s, rates[0].process, rng);
    EXPECT_EQ(s.values[v], Value(false));
    // Recovery -> v restored to its default.
    net.elapse(s, 1.5);
    const auto cands = net.candidates(s, 10.0);
    ASSERT_EQ(cands.size(), 1u);
    net.execute(s, cands[0], rng);
    EXPECT_EQ(s.values[v], Value(true));
}

TEST(Network, BroadcastPropagation) {
    const Network net = net_of(R"(
        root Top.I;
        system Leaf end Leaf;
        system implementation Leaf.I end Leaf.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          a: system Leaf.I;
          b: system Leaf.I;
          c: system Leaf.I;
        end Top.I;
        error model Src
        features ok: initial state; bad: error state; fail: out propagation;
        end Src;
        error model implementation Src.I
        events f: error event occurrence poisson 1 per sec;
        transitions
          ok -[f]-> bad;
          bad -[fail]-> bad;
        end Src.I;
        error model Dst
        features ok: initial state; dead: error state; fail: in propagation;
        end Dst;
        error model implementation Dst.I
        transitions ok -[fail]-> dead;
        end Dst.I;
        fault injections
          component a uses error model Src.I;
          component b uses error model Dst.I;
          component c uses error model Dst.I;
        end fault injections;
    )");
    NetworkState s = net.initial_state();
    Rng rng(5);
    // Fire the fault in a.
    net.execute_markovian(s, net.markovian_rates(s)[0].process, rng);
    // Now a#error can broadcast `fail`; both b and c listen.
    const auto cands = net.candidates(s, kInf);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0].kind, Candidate::Kind::BroadcastSend);
    const StepInfo info = net.execute(s, cands[0], rng);
    EXPECT_EQ(info.fired.size(), 3u); // sender + two receivers
    const auto pb = net.model().instances[net.model().instance("b")].error_process;
    const auto pc = net.model().instances[net.model().instance("c")].error_process;
    EXPECT_EQ(s.locations[pb], 1);
    EXPECT_EQ(s.locations[pc], 1);
}

TEST(Network, BroadcastDoesNotBlockOnUnreadyReceiver) {
    const Network net = net_of(R"(
        root Top.I;
        system Leaf end Leaf;
        system implementation Leaf.I end Leaf.I;
        system Top end Top;
        system implementation Top.I
        subcomponents
          a: system Leaf.I;
          b: system Leaf.I;
        end Top.I;
        error model Src
        features ok: initial state; bad: error state; fail: out propagation;
        end Src;
        error model implementation Src.I
        events f: error event occurrence poisson 1 per sec;
        transitions
          ok -[f]-> bad;
          bad -[fail]-> bad;
        end Src.I;
        error model Dst
        features ok: initial state; dead: error state; fail: in propagation;
        end Dst;
        error model implementation Dst.I
        transitions dead -[fail]-> dead; -- only listens in `dead`
        end Dst.I;
        fault injections
          component a uses error model Src.I;
          component b uses error model Dst.I;
        end fault injections;
    )");
    NetworkState s = net.initial_state();
    Rng rng(5);
    net.execute_markovian(s, net.markovian_rates(s)[0].process, rng);
    const auto cands = net.candidates(s, kInf);
    ASSERT_EQ(cands.size(), 1u); // the send is enabled even with no receiver
    const StepInfo info = net.execute(s, cands[0], rng);
    EXPECT_EQ(info.fired.size(), 1u); // sender alone
}

TEST(Network, DynamicReconfigurationFreezesAndActivates) {
    const Network net = net_of(R"(
        root Top.I;
        system Worker end Worker;
        system implementation Worker.I
        subcomponents
          c: data clock;
          restarted: data int [0..100] default 0;
        modes run: initial mode;
        transitions
          run -[@activation then restarted := restarted + 1]-> run;
        end Worker.I;
        system Top end Top;
        system implementation Top.I
        subcomponents w: system Worker.I in modes (on);
        modes
          on: initial mode;
          off: mode;
        transitions
          on -[when @timer >= 1]-> off;
          off -[when @timer >= 1]-> on;
        end Top.I;
    )");
    NetworkState s = net.initial_state();
    Rng rng(2);
    const VarId c = net.model().var("w.c");
    const VarId restarted = net.model().var("w.restarted");
    const auto w_inst = net.model().instance("w");

    EXPECT_TRUE(s.instance_active(w_inst));
    net.elapse(s, 1.0);
    EXPECT_DOUBLE_EQ(s.values[c].as_real(), 1.0);

    // Parent switches off: w deactivates, its clock freezes.
    auto cands = net.candidates(s, 10.0);
    ASSERT_EQ(cands.size(), 1u);
    net.execute(s, cands[0], rng);
    EXPECT_FALSE(s.instance_active(w_inst));
    net.elapse(s, 1.0);
    EXPECT_DOUBLE_EQ(s.values[c].as_real(), 1.0); // frozen

    // Parent switches back on: @activation fires, counter increments.
    cands = net.candidates(s, 10.0);
    ASSERT_EQ(cands.size(), 1u);
    net.execute(s, cands[0], rng);
    EXPECT_TRUE(s.instance_active(w_inst));
    EXPECT_EQ(s.values[restarted], Value(std::int64_t{1}));
}

TEST(Network, RangeViolationThrows) {
    const Network net = net_of(R"(
        root S.I;
        system S end S;
        system implementation S.I
        subcomponents n: data int [0..3] default 3;
        modes a: initial mode;
        transitions a -[when n <= 3 then n := n + 1]-> a;
        end S.I;
    )");
    NetworkState s = net.initial_state();
    Rng rng(1);
    const auto cands = net.candidates(s, 1.0);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_THROW(net.execute(s, cands[0], rng), Error);
}

TEST(Network, ModeGatedFlowSwitchesSource) {
    const Network net = net_of(R"(
        root Top.I;
        system Leaf
        features o: out data port int default 1;
        end Leaf;
        system implementation Leaf.I end Leaf.I;
        system Leaf2
        features o: out data port int default 2;
        end Leaf2;
        system implementation Leaf2.I end Leaf2.I;
        system Top
        features sel: out data port int default 0;
        end Top;
        system implementation Top.I
        subcomponents
          a: system Leaf.I;
          b: system Leaf2.I;
        flows
          sel := a.o in modes (use_a);
          sel := b.o in modes (use_b);
        modes
          use_a: initial mode;
          use_b: mode;
        transitions
          use_a -[]-> use_b;
        end Top.I;
    )");
    NetworkState s = net.initial_state();
    Rng rng(1);
    EXPECT_EQ(s.values[net.model().var("sel")], Value(std::int64_t{1}));
    const auto cands = net.candidates(s, 1.0);
    ASSERT_EQ(cands.size(), 1u);
    net.execute(s, cands[0], rng);
    EXPECT_EQ(s.values[net.model().var("sel")], Value(std::int64_t{2}));
}

} // namespace
} // namespace slimsim::eda
