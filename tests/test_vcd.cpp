#include "sim/vcd.hpp"
#include "slim/summary.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "models/failover.hpp"
#include "models/gps.hpp"
#include "sim/runner.hpp"

namespace slimsim::sim {
namespace {

TEST(Vcd, HeaderAndInitialDump) {
    const eda::Network net = eda::build_network_from_source(models::gps_source());
    const auto prop = make_reachability(net.model(), models::gps_goal(), 1800.0);
    auto strat = make_strategy(StrategyKind::Asap);
    const PathGenerator gen(net, prop, *strat);
    Rng rng(1);
    std::ostringstream out;
    const PathOutcome res = write_vcd(gen, rng, out);
    EXPECT_TRUE(res.satisfied);
    const std::string vcd = out.str();
    EXPECT_NE(vcd.find("$timescale 1 ms $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
    EXPECT_NE(vcd.find("gps_measurement"), std::string::npos);
    EXPECT_NE(vcd.find("gps_loc"), std::string::npos);
    EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
    EXPECT_NE(vcd.find("#0\n"), std::string::npos);
    // ASAP acquires at exactly 10 s = tick 10000.
    EXPECT_NE(vcd.find("#10000"), std::string::npos);
}

TEST(Vcd, TimestampsAreMonotone) {
    const eda::Network net =
        eda::build_network_from_source(models::gps_restart_source(true));
    const auto prop = make_reachability(net.model(), models::gps_restart_goal(), 2700.0);
    auto strat = make_strategy(StrategyKind::Asap);
    const PathGenerator gen(net, prop, *strat);
    Rng rng(4);
    std::ostringstream out;
    (void)write_vcd(gen, rng, out);
    std::istringstream in(out.str());
    std::string line;
    long long prev = -1;
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] == '#') {
            const long long t = std::stoll(line.substr(1));
            EXPECT_GT(t, prev);
            prev = t;
        }
    }
    EXPECT_GE(prev, 0);
}

TEST(Vcd, IntegerSignalsUseBinary) {
    const eda::Network net = eda::build_network_from_source(R"(
        root S.I;
        system S
        features n: out data port int [0..10] default 5;
        end S;
        system implementation S.I
        modes a: initial mode; b: mode;
        transitions a -[when @timer >= 1 then n := 6]-> b;
        end S.I;
    )");
    const auto prop = make_reachability(net.model(), "n = 6", 10.0);
    auto strat = make_strategy(StrategyKind::Asap);
    const PathGenerator gen(net, prop, *strat);
    Rng rng(1);
    std::ostringstream out;
    const PathOutcome res = write_vcd(gen, rng, out);
    EXPECT_TRUE(res.satisfied);
    EXPECT_NE(out.str().find("b101 "), std::string::npos); // 5
    EXPECT_NE(out.str().find("b110 "), std::string::npos); // 6
}

TEST(Vcd, RejectsBadTick) {
    const eda::Network net = eda::build_network_from_source(models::gps_source());
    const auto prop = make_reachability(net.model(), models::gps_goal(), 10.0);
    auto strat = make_strategy(StrategyKind::Asap);
    const PathGenerator gen(net, prop, *strat);
    Rng rng(1);
    std::ostringstream out;
    VcdOptions opt;
    opt.tick_seconds = 0.0;
    EXPECT_THROW((void)write_vcd(gen, rng, out, opt), Error);
}

TEST(Summary, ListsInventory) {
    const eda::Network net =
        eda::build_network_from_source(models::failover_source());
    const std::string text = slim::model_summary(net.model());
    EXPECT_NE(text.find("instances (4):"), std::string::npos);
    EXPECT_NE(text.find("controller (Controller.Imp)"), std::string::npos);
    EXPECT_NE(text.find("(2 error models)"), std::string::npos);
    EXPECT_NE(text.find("sync actions: 2"), std::string::npos);
    EXPECT_NE(text.find("fault injections: 2"), std::string::npos);
}

TEST(Summary, MarksModeGatedInstances) {
    const eda::Network net =
        eda::build_network_from_source(models::gps_restart_source(true));
    const std::string text = slim::model_summary(net.model());
    EXPECT_NE(text.find("(mode-gated)"), std::string::npos);
}

} // namespace
} // namespace slimsim::sim
