// Unit tests for the telemetry layer (counters, timers, histograms,
// recorder, run reports) and the JSON document model backing --json.
#include "support/telemetry.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/diagnostics.hpp"

namespace slimsim {
namespace {

TEST(Counter, AddsAndResets) {
    telemetry::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
    telemetry::Counter c;
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < 10'000; ++i) c.add();
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.value(), 40'000u);
}

TEST(Timer, ScopedTimerRecordsSections) {
    telemetry::Timer t;
    {
        telemetry::ScopedTimer scope(&t);
    }
    {
        telemetry::ScopedTimer scope(&t);
        scope.stop();
        scope.stop(); // idempotent
    }
    EXPECT_EQ(t.count(), 2u);
    EXPECT_GE(t.seconds(), 0.0);
}

TEST(Timer, NullScopedTimerIsNoop) {
    telemetry::ScopedTimer scope(nullptr);
    scope.stop(); // must not crash
}

TEST(Timer, NegativeDeltaClampsToZero) {
    // A caller differencing a non-steady clock can produce a negative delta;
    // it must not unwind the accumulated total.
    telemetry::Timer t;
    t.record_ns(1'000'000);
    t.record_ns(-5'000'000);
    EXPECT_EQ(t.count(), 2u);
    EXPECT_DOUBLE_EQ(t.seconds(), 1e-3);

    telemetry::Timer fresh;
    fresh.record_ns(-5);
    EXPECT_EQ(fresh.count(), 1u);
    EXPECT_EQ(fresh.seconds(), 0.0);
}

TEST(Histogram, PowerOfTwoBuckets) {
    telemetry::Histogram h;
    for (const std::uint64_t v : {0u, 1u, 2u, 3u, 4u, 7u, 8u}) h.add(v);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.sum(), 25u);
    const auto bins = h.bins();
    ASSERT_EQ(bins.size(), 5u);
    EXPECT_EQ(bins[0], (std::pair<std::string, std::uint64_t>{"0", 1}));
    EXPECT_EQ(bins[1], (std::pair<std::string, std::uint64_t>{"1", 1}));
    EXPECT_EQ(bins[2], (std::pair<std::string, std::uint64_t>{"2-3", 2}));
    EXPECT_EQ(bins[3], (std::pair<std::string, std::uint64_t>{"4-7", 2}));
    EXPECT_EQ(bins[4], (std::pair<std::string, std::uint64_t>{"8-15", 1}));
    EXPECT_EQ(telemetry::Histogram::bucket_label(4), "8-15");
}

TEST(Recorder, InstrumentsAreStableAcrossLookups) {
    telemetry::Recorder rec;
    telemetry::Counter& a = rec.counter("sim.paths");
    a.add(3);
    telemetry::Counter& b = rec.counter("sim.paths");
    EXPECT_EQ(&a, &b);
    // References survive registry growth.
    for (int i = 0; i < 100; ++i) rec.counter("c" + std::to_string(i)).add();
    a.add();
    EXPECT_EQ(rec.counter("sim.paths").value(), 4u);
}

TEST(Recorder, SnapshotsAreSortedByName) {
    telemetry::Recorder rec;
    rec.counter("zeta").add(1);
    rec.counter("alpha").add(2);
    const auto counters = rec.counters();
    ASSERT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters[0].first, "alpha");
    EXPECT_EQ(counters[1].first, "zeta");
}

TEST(Recorder, EnabledFlag) {
    telemetry::Recorder rec(false);
    EXPECT_FALSE(rec.enabled());
    rec.set_enabled(true);
    EXPECT_TRUE(rec.enabled());
}

TEST(Json, ScalarsRoundTrip) {
    EXPECT_EQ(json::Value(true).dump(), "true");
    EXPECT_EQ(json::Value(nullptr).dump(), "null");
    EXPECT_EQ(json::Value(-3).dump(), "-3");
    EXPECT_EQ(json::Value(18'446'744'073'709'551'615ull).dump(),
              "18446744073709551615");
    EXPECT_EQ(json::Value(0.25).dump(), "0.25");
    EXPECT_EQ(json::Value("a\"b\n").dump(), "\"a\\\"b\\n\"");
}

TEST(Json, ObjectsKeepInsertionOrder) {
    json::Value obj = json::Value::object();
    obj["zeta"] = 1;
    obj["alpha"] = 2;
    EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":2}");
    // Structural equality ignores member order.
    json::Value other = json::Value::object();
    other["alpha"] = 2;
    other["zeta"] = 1;
    EXPECT_EQ(obj, other);
}

TEST(Json, ParseDumpRoundTrip) {
    const std::string text =
        R"({"a":[1,2.5,"x",true,null],"b":{"nested":-7},"c":"é"})";
    const json::Value doc = json::Value::parse(text);
    EXPECT_EQ(doc.at("a").size(), 5u);
    EXPECT_EQ(doc.at("a").at(1).as_double(), 2.5);
    EXPECT_EQ(doc.at("b").at("nested").as_int(), -7);
    EXPECT_EQ(doc.at("c").as_string(), "\xc3\xa9");
    EXPECT_EQ(json::Value::parse(doc.dump()), doc);
    EXPECT_EQ(json::Value::parse(doc.dump(2)), doc);
}

TEST(Json, ParseRejectsMalformedInput) {
    EXPECT_THROW((void)json::Value::parse("{"), Error);
    EXPECT_THROW((void)json::Value::parse("[1,]"), Error);
    EXPECT_THROW((void)json::Value::parse("42 garbage"), Error);
    EXPECT_THROW((void)json::Value::parse(""), Error);
}

TEST(Json, FindAndMissingKeys) {
    json::Value obj = json::Value::object();
    obj["present"] = 1;
    EXPECT_NE(obj.find("present"), nullptr);
    EXPECT_EQ(obj.find("absent"), nullptr);
    EXPECT_THROW((void)obj.at("absent"), Error);
}

TEST(RunReport, JsonHasSchemaAndVersion) {
    telemetry::RunReport report;
    report.mode = "estimate";
    report.model = "m.slim";
    report.property = "<> [0,2] broken";
    report.strategy = "progressive";
    report.criterion = "chernoff-hoeffding";
    report.seed = 7;
    report.workers = 1;
    report.params.emplace_back("delta", 0.05);
    report.value = 0.5;
    report.samples = 10;
    report.successes = 5;
    report.terminals = {{"goal", 5}, {"time-bound", 5}};
    report.worker_stats = {{0, 0, 10, 10}};
    report.stop_trajectory = {{10, 10}};
    report.phases = {{"simulate", 0.1}};
    report.wall_seconds = 0.2;
    report.peak_rss_bytes = 1024;

    const json::Value doc = report.to_json();
    EXPECT_EQ(doc.at("schema").as_string(), "slimsim-run-report");
    EXPECT_EQ(doc.at("version").as_uint(), telemetry::RunReport::kSchemaVersion);
    EXPECT_EQ(doc.at("mode").as_string(), "estimate");
    EXPECT_EQ(doc.at("analysis").at("seed").as_uint(), 7u);
    EXPECT_EQ(doc.at("result").at("samples").as_uint(), 10u);
    EXPECT_EQ(doc.at("terminals").at("goal").as_uint(), 5u);
    EXPECT_EQ(doc.at("workers").at(0).at("rng_stream").as_uint(), 0u);
    EXPECT_NE(doc.find("runtime"), nullptr);
    EXPECT_NE(doc.find("resources"), nullptr);

    // The deterministic view drops exactly the wall-clock sections.
    const json::Value det = telemetry::deterministic_view(doc);
    EXPECT_EQ(det.find("runtime"), nullptr);
    EXPECT_EQ(det.find("resources"), nullptr);
    EXPECT_EQ(det.at("result").at("value").as_double(), 0.5);

    // Text rendering mentions the headline facts.
    const std::string text = report.to_text();
    EXPECT_NE(text.find("estimate"), std::string::npos);
    EXPECT_NE(text.find("goal=5"), std::string::npos);
}

TEST(RunReport, AbsorbMergesRecorderSnapshots) {
    telemetry::Recorder rec;
    rec.counter("sim.paths").add(12);
    rec.histogram("sim.steps_per_path").add(3);

    telemetry::RunReport report;
    report.counters.emplace_back("ctmc.imc_states", 99);
    report.absorb(rec);
    ASSERT_EQ(report.counters.size(), 2u);
    EXPECT_EQ(report.counters[0].first, "ctmc.imc_states"); // sorted, pre-fill kept
    EXPECT_EQ(report.counters[1].first, "sim.paths");
    EXPECT_EQ(report.counters[1].second, 12u);
    ASSERT_EQ(report.histograms.size(), 1u);
    EXPECT_EQ(report.histograms[0].first, "sim.steps_per_path");
}

TEST(RunReport, ParallelReportsMoveSharedInstrumentsToRuntime) {
    telemetry::RunReport report;
    report.workers = 4;
    report.counters.emplace_back("sim.paths", 100);
    report.worker_stats = {{0, 0, 25, 25}, {1, 1, 25, 25}};
    const json::Value doc = report.to_json();
    EXPECT_EQ(doc.find("counters"), nullptr);
    EXPECT_NE(doc.at("runtime").find("counters"), nullptr);
    EXPECT_EQ(doc.at("runtime").at("generated").size(), 2u);
}

} // namespace
} // namespace slimsim
