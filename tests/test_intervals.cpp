#include "support/intervals.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace slimsim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Interval, BasicProperties) {
    const Interval iv{1.0, 3.0};
    EXPECT_FALSE(iv.is_point());
    EXPECT_FALSE(iv.unbounded());
    EXPECT_DOUBLE_EQ(iv.length(), 2.0);
    EXPECT_TRUE(iv.contains(1.0));
    EXPECT_TRUE(iv.contains(3.0));
    EXPECT_FALSE(iv.contains(3.0001));

    const Interval pt{2.0, 2.0};
    EXPECT_TRUE(pt.is_point());
    EXPECT_DOUBLE_EQ(pt.length(), 0.0);

    const Interval ub{5.0, kInf};
    EXPECT_TRUE(ub.unbounded());
    EXPECT_TRUE(std::isinf(ub.length()));
    EXPECT_TRUE(ub.contains(1e18));
}

TEST(IntervalSet, EmptyAndAll) {
    const IntervalSet empty = IntervalSet::empty_set();
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.earliest(), std::nullopt);
    EXPECT_EQ(empty.latest(), std::nullopt);
    EXPECT_DOUBLE_EQ(empty.measure(), 0.0);

    const IntervalSet all = IntervalSet::all();
    EXPECT_FALSE(all.empty());
    EXPECT_EQ(all.earliest(), 0.0);
    EXPECT_EQ(all.latest(), std::nullopt); // unbounded
    EXPECT_TRUE(std::isinf(all.measure()));
    EXPECT_TRUE(all.contains(0.0));
    EXPECT_TRUE(all.contains(1e100));
}

TEST(IntervalSet, NormalizationMergesOverlaps) {
    const IntervalSet s({{1.0, 3.0}, {2.0, 5.0}, {7.0, 8.0}});
    ASSERT_EQ(s.parts().size(), 2u);
    EXPECT_EQ(s.parts()[0], (Interval{1.0, 5.0}));
    EXPECT_EQ(s.parts()[1], (Interval{7.0, 8.0}));
}

TEST(IntervalSet, NormalizationMergesAdjacent) {
    const IntervalSet s({{1.0, 2.0}, {2.0, 3.0}});
    ASSERT_EQ(s.parts().size(), 1u);
    EXPECT_EQ(s.parts()[0], (Interval{1.0, 3.0}));
}

TEST(IntervalSet, Contains) {
    const IntervalSet s({{1.0, 2.0}, {4.0, 4.0}, {6.0, 9.0}});
    EXPECT_FALSE(s.contains(0.5));
    EXPECT_TRUE(s.contains(1.0));
    EXPECT_TRUE(s.contains(2.0));
    EXPECT_FALSE(s.contains(3.0));
    EXPECT_TRUE(s.contains(4.0));
    EXPECT_FALSE(s.contains(4.1));
    EXPECT_TRUE(s.contains(7.0));
    EXPECT_FALSE(s.contains(9.1));
}

TEST(IntervalSet, Measure) {
    const IntervalSet s({{1.0, 2.0}, {4.0, 4.0}, {6.0, 9.0}});
    EXPECT_DOUBLE_EQ(s.measure(), 4.0);
}

TEST(IntervalSet, Unite) {
    const IntervalSet a(0.0, 2.0);
    const IntervalSet b(5.0, 7.0);
    const IntervalSet u = a.unite(b);
    EXPECT_EQ(u.parts().size(), 2u);
    EXPECT_TRUE(u.contains(1.0));
    EXPECT_TRUE(u.contains(6.0));
    EXPECT_FALSE(u.contains(3.0));
}

TEST(IntervalSet, Intersect) {
    const IntervalSet a({{0.0, 4.0}, {6.0, 10.0}});
    const IntervalSet b({{3.0, 7.0}});
    const IntervalSet i = a.intersect(b);
    ASSERT_EQ(i.parts().size(), 2u);
    EXPECT_EQ(i.parts()[0], (Interval{3.0, 4.0}));
    EXPECT_EQ(i.parts()[1], (Interval{6.0, 7.0}));
}

TEST(IntervalSet, IntersectDisjointIsEmpty) {
    const IntervalSet a(0.0, 1.0);
    const IntervalSet b(2.0, 3.0);
    EXPECT_TRUE(a.intersect(b).empty());
}

TEST(IntervalSet, IntersectWithPoint) {
    const IntervalSet a(0.0, 5.0);
    const IntervalSet p = IntervalSet::point(3.0);
    const IntervalSet i = a.intersect(p);
    ASSERT_EQ(i.parts().size(), 1u);
    EXPECT_TRUE(i.parts()[0].is_point());
}

TEST(IntervalSet, ComplementWithinBound) {
    const IntervalSet s({{1.0, 2.0}, {4.0, 5.0}});
    const IntervalSet c = s.complement(6.0);
    ASSERT_EQ(c.parts().size(), 3u);
    EXPECT_EQ(c.parts()[0], (Interval{0.0, 1.0}));
    EXPECT_EQ(c.parts()[1], (Interval{2.0, 4.0}));
    EXPECT_EQ(c.parts()[2], (Interval{5.0, 6.0}));
}

TEST(IntervalSet, ComplementOfEmptyIsFull) {
    const IntervalSet c = IntervalSet::empty_set().complement(3.0);
    ASSERT_EQ(c.parts().size(), 1u);
    EXPECT_EQ(c.parts()[0], (Interval{0.0, 3.0}));
}

TEST(IntervalSet, ComplementUnbounded) {
    const IntervalSet s(2.0, 3.0);
    const IntervalSet c = s.complement(kInf);
    ASSERT_EQ(c.parts().size(), 2u);
    EXPECT_TRUE(c.parts()[1].unbounded());
}

TEST(IntervalSet, ComplementStartingAtZero) {
    const IntervalSet s(0.0, 2.0);
    const IntervalSet c = s.complement(5.0);
    ASSERT_EQ(c.parts().size(), 1u);
    EXPECT_EQ(c.parts()[0], (Interval{2.0, 5.0}));
}

TEST(IntervalSet, Clamp) {
    const IntervalSet s({{0.0, 10.0}});
    const IntervalSet c = s.clamp(3.0, 5.0);
    ASSERT_EQ(c.parts().size(), 1u);
    EXPECT_EQ(c.parts()[0], (Interval{3.0, 5.0}));
}

TEST(IntervalSet, PrefixHorizon) {
    EXPECT_EQ(IntervalSet(0.0, 5.0).prefix_horizon(), 5.0);
    EXPECT_EQ(IntervalSet(1.0, 5.0).prefix_horizon(), std::nullopt);
    EXPECT_EQ(IntervalSet::all().prefix_horizon(), kInf);
    EXPECT_EQ(IntervalSet::empty_set().prefix_horizon(), std::nullopt);
    // [0,2] u [3,4]: the prefix stops at 2.
    const IntervalSet s({{0.0, 2.0}, {3.0, 4.0}});
    EXPECT_EQ(s.prefix_horizon(), 2.0);
}

TEST(IntervalSet, SampleUniformStaysInSet) {
    Rng rng(7);
    const IntervalSet s({{1.0, 2.0}, {5.0, 8.0}});
    for (int i = 0; i < 1000; ++i) {
        const double t = s.sample_uniform(rng);
        EXPECT_TRUE(s.contains(t)) << t;
    }
}

TEST(IntervalSet, SampleUniformProportionalToLength) {
    Rng rng(11);
    const IntervalSet s({{0.0, 1.0}, {10.0, 13.0}});
    int in_second = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (s.sample_uniform(rng) >= 10.0) ++in_second;
    }
    // Second part has 3/4 of the measure.
    EXPECT_NEAR(static_cast<double>(in_second) / n, 0.75, 0.02);
}

TEST(IntervalSet, SampleUniformPurestPoints) {
    Rng rng(3);
    const IntervalSet s({{1.0, 1.0}, {2.0, 2.0}});
    int ones = 0;
    for (int i = 0; i < 1000; ++i) {
        const double t = s.sample_uniform(rng);
        EXPECT_TRUE(t == 1.0 || t == 2.0);
        if (t == 1.0) ++ones;
    }
    EXPECT_GT(ones, 300);
    EXPECT_LT(ones, 700);
}

TEST(IntervalSet, ToString) {
    EXPECT_EQ(IntervalSet::empty_set().to_string(), "{}");
    EXPECT_EQ(IntervalSet(1.0, 2.0).to_string(), "[1, 2]");
    EXPECT_EQ(IntervalSet::all().to_string(), "[0, inf)");
}

// Property-style sweep: intersect/unite/complement laws on random sets.
class IntervalSetLaws : public ::testing::TestWithParam<int> {};

IntervalSet random_set(Rng& rng) {
    std::vector<Interval> parts;
    const std::size_t n = rng.uniform_index(4);
    for (std::size_t i = 0; i < n; ++i) {
        const double lo = rng.uniform(0.0, 20.0);
        parts.push_back({lo, lo + rng.uniform(0.0, 5.0)});
    }
    return IntervalSet(std::move(parts));
}

TEST_P(IntervalSetLaws, AlgebraicLaws) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const IntervalSet a = random_set(rng);
    const IntervalSet b = random_set(rng);

    // Commutativity.
    EXPECT_EQ(a.unite(b), b.unite(a));
    EXPECT_EQ(a.intersect(b), b.intersect(a));
    // Idempotence.
    EXPECT_EQ(a.unite(a), a);
    EXPECT_EQ(a.intersect(a), a);
    // Absorption: a ∩ (a u b) == a.
    EXPECT_EQ(a.intersect(a.unite(b)), a);
    // De Morgan within a bound (closure effects only at measure-zero
    // boundaries; check by membership sampling away from endpoints).
    const double bound = 30.0;
    const IntervalSet lhs = a.unite(b).complement(bound);
    const IntervalSet rhs = a.complement(bound).intersect(b.complement(bound));
    for (int i = 0; i < 100; ++i) {
        const double t = rng.uniform(0.0, bound);
        EXPECT_EQ(lhs.contains(t), rhs.contains(t)) << "at t=" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetLaws, ::testing::Range(1, 33));

} // namespace
} // namespace slimsim
