#include "safety/fmea.hpp"

#include <gtest/gtest.h>

#include "models/launcher.hpp"
#include "sim/property.hpp"

namespace slimsim::safety {
namespace {

struct LauncherSafety : ::testing::Test {
    LauncherSafety()
        : net(eda::build_network_from_source(models::launcher_source())),
          prop(sim::make_reachability(net.model(), models::launcher_goal(),
                                      2.0 * 3600.0)) {}

    eda::Network net;
    sim::PathFormula prop;
};

TEST_F(LauncherSafety, EnumeratesFailureModes) {
    const auto modes = failure_modes(net);
    // 2 batteries (dead) + 4 sensors (transient, permanent) + 2 DPUs
    // (permanent) + 4 thrusters (stuck) = 2 + 8 + 2 + 4 = 16.
    EXPECT_EQ(modes.size(), 16u);
    int battery_modes = 0;
    for (const auto& fm : modes) {
        if (fm.mode == "dead") ++battery_modes;
        EXPECT_FALSE(fm.component.empty());
    }
    EXPECT_EQ(battery_modes, 2);
}

TEST_F(LauncherSafety, SingleModesAreNotImmediateSystemFailures) {
    // The launcher is single-fault tolerant: no single mode trips the
    // failure condition at t = 0.
    for (const auto& fm : failure_modes(net)) {
        const auto s = net.forced_initial_state({{std::pair{fm.process, fm.state}}});
        EXPECT_FALSE(net.eval_global(s, *prop.goal))
            << fm.component << ":" << fm.mode;
    }
}

TEST_F(LauncherSafety, MinimalCutSetsOrderTwo) {
    const auto sets = minimal_cut_sets(net, prop.goal, 2);
    ASSERT_FALSE(sets.empty());
    // Every reported set must be of order 2 (single-fault tolerant design)...
    for (const auto& cs : sets) {
        EXPECT_EQ(cs.modes.size(), 2u) << format_cut_sets({cs});
    }
    // ... and must contain the expected combinations.
    const auto has = [&](const std::string& c1, const std::string& m1,
                         const std::string& c2, const std::string& m2) {
        return std::any_of(sets.begin(), sets.end(), [&](const CutSet& cs) {
            const auto match = [&](const FailureMode& fm, const std::string& c,
                                   const std::string& m) {
                return fm.component == c && fm.mode == m;
            };
            return (match(cs.modes[0], c1, m1) && match(cs.modes[1], c2, m2)) ||
                   (match(cs.modes[0], c2, m2) && match(cs.modes[1], c1, m1));
        });
    };
    // Both DPUs down kills both command chains.
    EXPECT_TRUE(has("dpu1", "permanent", "dpu2", "permanent"));
    // Both batteries dead unpowers both sides.
    EXPECT_TRUE(has("pcdu1.battery", "dead", "pcdu2.battery", "dead"));
    // Both GPS units failed kills navigation for both DPUs.
    EXPECT_TRUE(has("gps1", "permanent", "gps2", "permanent"));
    // Cross failures: one battery + the other side's DPU.
    EXPECT_TRUE(has("pcdu1.battery", "dead", "dpu2", "permanent"));
    // Thrusters do not feed the failure condition: no thruster cut sets.
    for (const auto& cs : sets) {
        for (const auto& fm : cs.modes) EXPECT_NE(fm.mode, "stuck");
    }
}

TEST_F(LauncherSafety, CutSetsRespectMinimality) {
    const auto sets = minimal_cut_sets(net, prop.goal, 2);
    // No set may be a superset of another.
    for (std::size_t i = 0; i < sets.size(); ++i) {
        for (std::size_t j = 0; j < sets.size(); ++j) {
            if (i == j) continue;
            const auto& small = sets[i].modes;
            const auto& big = sets[j].modes;
            if (small.size() >= big.size()) continue;
            const bool subset = std::all_of(
                small.begin(), small.end(), [&](const FailureMode& fm) {
                    return std::any_of(big.begin(), big.end(), [&](const FailureMode& o) {
                        return o.process == fm.process && o.state == fm.state;
                    });
                });
            EXPECT_FALSE(subset);
        }
    }
}

TEST_F(LauncherSafety, FmeaRanksCriticalModesHigher) {
    FmeaOptions opt;
    opt.eps = 0.05;
    // A short mission keeps the baseline low enough for margins to show.
    const auto rows = fmea(net, prop.goal, 0.5 * 3600.0, 42, opt);
    ASSERT_EQ(rows.size(), 16u);

    double dpu_perm = -1.0;
    double thruster = -1.0;
    double baseline = -1.0;
    for (const auto& r : rows) {
        baseline = r.baseline_probability;
        if (r.mode.component == "dpu1" && r.mode.mode == "permanent") {
            dpu_perm = r.failure_probability;
        }
        if (r.mode.component == "thruster1") thruster = r.failure_probability;
        EXPECT_FALSE(r.immediate_failure); // single-fault tolerant
    }
    ASSERT_GE(dpu_perm, 0.0);
    ASSERT_GE(thruster, 0.0);
    // Losing a DPU for good substantially raises the failure probability;
    // a stuck thruster is irrelevant to the (command-based) condition.
    EXPECT_GT(dpu_perm, baseline + 0.1);
    EXPECT_NEAR(thruster, baseline, 0.12);
    // Rows are sorted by severity.
    for (std::size_t i = 1; i < rows.size(); ++i) {
        EXPECT_GE(rows[i - 1].failure_probability, rows[i].failure_probability);
    }
}

TEST_F(LauncherSafety, FmeaReportsImmediateEffects) {
    FmeaOptions opt;
    opt.eps = 0.2; // effects only; keep the probability part cheap
    const auto rows = fmea(net, prop.goal, 60.0, 7, opt);
    // Find the battery failure row: it must unpower one power chain.
    bool found = false;
    for (const auto& r : rows) {
        if (r.mode.component == "pcdu1.battery" && r.mode.mode == "dead") {
            found = true;
            // power false propagates: battery.power, pcdu1.power, and the
            // power_in of gps1/gyro1/dpu1, plus dpu1.command.
            EXPECT_GE(r.immediate_effects.size(), 5u);
            bool saw_command = false;
            for (const auto& e : r.immediate_effects) {
                if (e.find("dpu1.command") != std::string::npos) saw_command = true;
            }
            EXPECT_TRUE(saw_command);
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(LauncherSafety, FormattersProduceReadableOutput) {
    const auto sets = minimal_cut_sets(net, prop.goal, 2);
    const std::string cs_text = format_cut_sets(sets);
    EXPECT_NE(cs_text.find("dpu1:permanent"), std::string::npos);
    FmeaOptions opt;
    opt.eps = 0.2;
    const auto rows = fmea(net, prop.goal, 60.0, 3, opt);
    const std::string table = format_fmea(rows);
    EXPECT_NE(table.find("P(failure)"), std::string::npos);
    EXPECT_NE(table.find("->"), std::string::npos);
}

} // namespace
} // namespace slimsim::safety
