// The pump fail-over model: event-port synchronization end-to-end, in the
// simulator *and* in the exhaustive CTMC flow, plus the GPS restart story
// (dynamic reconfiguration with @activation recovery).
#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/flow.hpp"
#include "models/failover.hpp"
#include "models/gps.hpp"
#include "sim/runner.hpp"

namespace slimsim {
namespace {

TEST(Failover, BuildsAndBootsThroughSync) {
    const eda::Network net =
        eda::build_network_from_source(models::failover_source());
    const auto& m = net.model();
    // Two sync actions: go_primary and go_backup connection groups.
    EXPECT_EQ(m.actions.size(), 2u);
    // Boot sequence: the monitor's first step synchronizes with the primary.
    eda::NetworkState s = net.initial_state();
    Rng rng(1);
    const auto cands = net.candidates(s, 100.0);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0].kind, eda::Candidate::Kind::Sync);
    const eda::StepInfo info = net.execute(s, cands[0], rng);
    EXPECT_EQ(info.fired.size(), 2u); // monitor + primary jointly
    EXPECT_EQ(s.values[m.var("primary.flow_ok")], Value(true));
    EXPECT_EQ(s.values[m.var("backup.flow_ok")], Value(false));
}

TEST(Failover, UntimedMatchesCtmcExactly) {
    // Instant detection: the system fails iff both pumps wear out within u.
    models::FailoverOptions opt;
    opt.pump_fail_per_hour = 0.5;
    const eda::Network net =
        eda::build_network_from_source(models::failover_source(opt));
    const double u = 2.0 * 3600.0;
    const auto prop = sim::make_reachability(net.model(), models::failover_goal(), u);

    const double exact = ctmc::run_ctmc_flow(net, *prop.goal, u).probability;
    const double lam = 0.5 / 3600.0;
    const double analytic = std::pow(1.0 - std::exp(-lam * u), 2.0);
    EXPECT_NEAR(exact, analytic, 1e-9);

    const stat::ChernoffHoeffding ch(0.05, 0.02);
    const double simulated =
        sim::estimate(net, prop, sim::StrategyKind::Asap, ch, 17).estimate;
    EXPECT_NEAR(simulated, exact, 0.03);
}

TEST(Failover, TimedDetectionLatencyLowersNothingUnderAsap) {
    // A small latency only delays the verdict; under ASAP the failure
    // probability is essentially unchanged (latency << mission time).
    models::FailoverOptions instant;
    models::FailoverOptions latent;
    latent.detection_latency = 0.5;
    const double u = 2.0 * 3600.0;
    const stat::ChernoffHoeffding ch(0.05, 0.02);

    const eda::Network n1 =
        eda::build_network_from_source(models::failover_source(instant));
    const eda::Network n2 =
        eda::build_network_from_source(models::failover_source(latent));
    const auto p1 = sim::make_reachability(n1.model(), models::failover_goal(), u);
    const auto p2 = sim::make_reachability(n2.model(), models::failover_goal(), u);
    const double a = sim::estimate(n1, p1, sim::StrategyKind::Asap, ch, 3).estimate;
    const double b = sim::estimate(n2, p2, sim::StrategyKind::Asap, ch, 3).estimate;
    EXPECT_NEAR(a, b, 0.04);
    // The timed variant is rejected by the CTMC flow.
    EXPECT_THROW((void)ctmc::run_ctmc_flow(n2, *p2.goal, u), Error);
}

TEST(Failover, RejectsBadOptions) {
    models::FailoverOptions opt;
    opt.pump_fail_per_hour = 0.0;
    EXPECT_THROW((void)models::failover_source(opt), Error);
    opt.pump_fail_per_hour = 1.0;
    opt.detection_latency = -1.0;
    EXPECT_THROW((void)models::failover_source(opt), Error);
}

TEST(GpsRestart, ControllerPowerCyclesOnHotFault) {
    const eda::Network net =
        eda::build_network_from_source(models::gps_restart_source(true));
    const auto& m = net.model();
    // The GPS is mode-gated by the satellite's `on` mode.
    const auto& gps = m.instances[m.instance("gps")];
    EXPECT_EQ(gps.parent_modes.size(), 1u);
    // The error model has an @activation recovery.
    bool has_activation_recovery = false;
    for (const auto& t : m.processes[gps.error_process].transitions) {
        if (t.trigger == slim::TriggerClass::OnActivate) has_activation_recovery = true;
    }
    EXPECT_TRUE(has_activation_recovery);
}

TEST(GpsRestart, RestartPolicyRestoresTheFix) {
    // Same GPS and fault rates; with the supervising controller, hot faults
    // are recovered by power-cycling, so a fix after the 30-minute mark is
    // far more likely.
    const double u = 45.0 * 60.0;
    const stat::ChernoffHoeffding ch(0.05, 0.02);

    const eda::Network plain =
        eda::build_network_from_source(models::gps_restart_source(false));
    const eda::Network restart =
        eda::build_network_from_source(models::gps_restart_source(true));
    const auto prop_plain =
        sim::make_reachability(plain.model(), models::gps_restart_goal(), u);
    const auto prop_restart =
        sim::make_reachability(restart.model(), models::gps_restart_goal(), u);

    const double p_plain =
        sim::estimate(plain, prop_plain, sim::StrategyKind::Asap, ch, 5).estimate;
    const double p_restart =
        sim::estimate(restart, prop_restart, sim::StrategyKind::Asap, ch, 5).estimate;
    // Without restart a hot fault before the mark usually kills the goal;
    // with restart only (rare) permanent faults do.
    EXPECT_GT(p_restart, p_plain + 0.15);
    EXPECT_GT(p_restart, 0.9);
}

TEST(GpsRestart, PermanentFaultDefeatsRestart) {
    // Force the error model into `permanent` at t = 0: no amount of power
    // cycling brings the fix back.
    const eda::Network net =
        eda::build_network_from_source(models::gps_restart_source(true));
    const auto& m = net.model();
    const auto ep = m.instances[m.instance("gps")].error_process;
    int permanent = -1;
    const auto& locs = m.processes[ep].locations;
    for (std::size_t i = 0; i < locs.size(); ++i) {
        if (locs[i].name == "permanent") permanent = static_cast<int>(i);
    }
    ASSERT_GE(permanent, 0);
    const auto prop =
        sim::make_reachability(m, models::gps_restart_goal(), 45.0 * 60.0);
    auto strat = sim::make_strategy(sim::StrategyKind::Asap);
    const sim::PathGenerator gen(net, prop, *strat);
    Rng rng(9);
    for (int i = 0; i < 20; ++i) {
        eda::NetworkState s = net.forced_initial_state({{std::pair{ep, permanent}}});
        std::size_t steps = 0;
        for (;;) {
            if (const auto out = gen.step(s, rng, steps)) {
                EXPECT_FALSE(out->satisfied);
                break;
            }
        }
    }
}

} // namespace
} // namespace slimsim
