#include "rare/splitting.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/flow.hpp"
#include "expr/eval.hpp"
#include "sim/runner.hpp"

namespace slimsim::rare {
namespace {

/// N independent components; the goal requires all of them failed.
std::string n_component_model(int n, double rate_per_sec) {
    std::string src = R"(
        root S.I;
        system Leaf
        features broken: out data port bool default false;
        end Leaf;
        system implementation Leaf.I end Leaf.I;
        system S
        features all_broken: out data port bool default false;
        end S;
        system implementation S.I
        subcomponents
)";
    for (int i = 0; i < n; ++i) src += "          c" + std::to_string(i) + ": system Leaf.I;\n";
    src += "        flows\n          all_broken := ";
    for (int i = 0; i < n; ++i) {
        if (i > 0) src += " and ";
        src += "c" + std::to_string(i) + ".broken";
    }
    src += ";\n        end S.I;\n";
    src += R"(
        error model EM
        features ok: initial state; bad: error state;
        end EM;
        error model implementation EM.I
        events f: error event occurrence poisson )";
    src += std::to_string(rate_per_sec);
    src += R"( per sec;
        transitions ok -[f]-> bad;
        end EM.I;
        fault injections
)";
    for (int i = 0; i < n; ++i) {
        src += "          component c" + std::to_string(i) + " uses error model EM.I;\n";
        src += "          component c" + std::to_string(i) +
               " in state bad effect broken := true;\n";
    }
    src += "        end fault injections;\n";
    return src;
}

std::string level_sum(int n) {
    std::string out;
    for (int i = 0; i < n; ++i) {
        if (i > 0) out += " + ";
        out += "(if c" + std::to_string(i) + ".broken then 1 else 0)";
    }
    return out;
}

TEST(Splitting, LevelFunctionResolution) {
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 1.0));
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(2));
    const eda::NetworkState s = net.initial_state();
    EXPECT_EQ(expr::evaluate(*level, expr::EvalContext{s.values, {}}).as_int(), 0);
    EXPECT_THROW((void)make_level_function(net.model(), "c0.broken"), Error); // bool
    EXPECT_THROW((void)make_level_function(net.model(), "ghost + 1"), Error);
}

TEST(Splitting, UnbiasedOnNonRareEvent) {
    // Moderate probability: splitting must agree with the exact value.
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 1.0));
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    const double exact = ctmc::run_ctmc_flow(net, *prop.goal, 1.0).probability;
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(2));
    SplittingOptions opt;
    opt.splitting_factor = 2;
    opt.base_runs = 8192;
    const SplittingResult res =
        estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 7, opt);
    EXPECT_NEAR(res.estimate, exact, 0.05);
    EXPECT_GT(res.total_paths, opt.base_runs); // clones were spawned
}

TEST(Splitting, RareEventWithinFactorOfExact) {
    // p = (1 - e^{-0.01})^3 ~ 9.7e-7: hopeless for crude Monte Carlo at
    // this budget, routine for splitting.
    const eda::Network net =
        eda::build_network_from_source(n_component_model(3, 0.01));
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    const double exact = ctmc::run_ctmc_flow(net, *prop.goal, 1.0).probability;
    ASSERT_LT(exact, 2e-6);
    ASSERT_GT(exact, 1e-7);

    const expr::ExprPtr level = make_level_function(net.model(), level_sum(3));
    SplittingOptions opt;
    opt.splitting_factor = 16;
    opt.base_runs = 20000;
    const SplittingResult res =
        estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 11, opt);
    EXPECT_GT(res.goal_hits, 0u);
    EXPECT_GT(res.estimate, exact / 3.0);
    EXPECT_LT(res.estimate, exact * 3.0);

    // Crude Monte Carlo with the same number of *root* paths almost surely
    // sees nothing.
    const stat::ChernoffHoeffding tiny(0.9, 0.0049); // ~20k paths
    const auto naive = sim::estimate(net, prop, sim::StrategyKind::Asap, tiny, 11);
    EXPECT_EQ(naive.successes, 0u);
}

TEST(Splitting, DeterministicInSeed) {
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 0.2));
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(2));
    SplittingOptions opt;
    opt.base_runs = 512;
    const auto a = estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 5, opt);
    const auto b = estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 5, opt);
    EXPECT_EQ(a.total_paths, b.total_paths);
    EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
}

TEST(Splitting, RejectsBadConfiguration) {
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 1.0));
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(2));
    const auto until = sim::make_until(net.model(), "not all_broken", "all_broken", 0.0, 1.0);
    EXPECT_THROW(
        (void)estimate_splitting(net, until, sim::StrategyKind::Asap, level, 1, {}),
        Error);
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    SplittingOptions opt;
    opt.splitting_factor = 0;
    EXPECT_THROW(
        (void)estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 1, opt),
        Error);
    opt.splitting_factor = 2;
    opt.base_runs = 0;
    EXPECT_THROW(
        (void)estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 1, opt),
        Error);
}

TEST(Splitting, PathBudgetEnforced) {
    const eda::Network net =
        eda::build_network_from_source(n_component_model(3, 2.0)); // faults common
    const auto prop = sim::make_reachability(net.model(), "all_broken", 5.0);
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(3));
    SplittingOptions opt;
    opt.splitting_factor = 16;
    opt.base_runs = 4096;
    opt.max_total_paths = 1000;
    EXPECT_THROW(
        (void)estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 1, opt),
        Error);
}

TEST(Splitting, SplittingFactorOneIsCrudeMonteCarlo) {
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 1.0));
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(2));
    SplittingOptions opt;
    opt.splitting_factor = 1;
    opt.base_runs = 2048;
    const auto res = estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 3, opt);
    EXPECT_EQ(res.total_paths, opt.base_runs); // no clones
    const double exact = ctmc::run_ctmc_flow(net, *prop.goal, 1.0).probability;
    EXPECT_NEAR(res.estimate, exact, 0.06);
}

} // namespace
} // namespace slimsim::rare
