#include "rare/splitting.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "ctmc/flow.hpp"
#include "expr/eval.hpp"
#include "models/failover.hpp"
#include "sim/runner.hpp"

namespace slimsim::rare {
namespace {

/// N independent components; the goal requires all of them failed.
std::string n_component_model(int n, double rate_per_sec) {
    std::string src = R"(
        root S.I;
        system Leaf
        features broken: out data port bool default false;
        end Leaf;
        system implementation Leaf.I end Leaf.I;
        system S
        features all_broken: out data port bool default false;
        end S;
        system implementation S.I
        subcomponents
)";
    for (int i = 0; i < n; ++i) src += "          c" + std::to_string(i) + ": system Leaf.I;\n";
    src += "        flows\n          all_broken := ";
    for (int i = 0; i < n; ++i) {
        if (i > 0) src += " and ";
        src += "c" + std::to_string(i) + ".broken";
    }
    src += ";\n        end S.I;\n";
    src += R"(
        error model EM
        features ok: initial state; bad: error state;
        end EM;
        error model implementation EM.I
        events f: error event occurrence poisson )";
    src += std::to_string(rate_per_sec);
    src += R"( per sec;
        transitions ok -[f]-> bad;
        end EM.I;
        fault injections
)";
    for (int i = 0; i < n; ++i) {
        src += "          component c" + std::to_string(i) + " uses error model EM.I;\n";
        src += "          component c" + std::to_string(i) +
               " in state bad effect broken := true;\n";
    }
    src += "        end fault injections;\n";
    return src;
}

std::string level_sum(int n) {
    std::string out;
    for (int i = 0; i < n; ++i) {
        if (i > 0) out += " + ";
        out += "(if c" + std::to_string(i) + ".broken then 1 else 0)";
    }
    return out;
}

TEST(Splitting, LevelFunctionResolution) {
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 1.0));
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(2));
    const eda::NetworkState s = net.initial_state();
    EXPECT_EQ(expr::evaluate(*level, expr::EvalContext{s.values, {}}).as_int(), 0);
    EXPECT_THROW((void)make_level_function(net.model(), "c0.broken"), Error); // bool
    EXPECT_THROW((void)make_level_function(net.model(), "ghost + 1"), Error);
}

TEST(Splitting, LevelFunctionDiagnosticsAreOneLineAndNameTheFlag) {
    // The CLI convention (docs/robustness.md): one line, prefixed with the
    // flag that carried the bad value.
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 1.0));
    for (const char* bad : {"c0.broken", "ghost + 1", "1 +"}) {
        try {
            (void)make_level_function(net.model(), bad);
            FAIL() << "expected a diagnostic for `" << bad << "`";
        } catch (const Error& err) {
            const std::string msg = err.what();
            EXPECT_EQ(msg.rfind("--split: ", 0), 0u) << msg;
            EXPECT_EQ(msg.find('\n'), std::string::npos) << msg;
        }
    }
}

TEST(Splitting, UnbiasedOnNonRareEvent) {
    // Moderate probability: splitting must agree with the exact value.
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 1.0));
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    const double exact = ctmc::run_ctmc_flow(net, *prop.goal, 1.0).probability;
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(2));
    SplittingOptions opt;
    opt.splitting_factor = 2;
    opt.base_runs = 8192;
    const SplittingResult res =
        estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 7, opt);
    EXPECT_NEAR(res.estimate, exact, 0.05);
    EXPECT_GT(res.total_paths, opt.base_runs); // clones were spawned
    EXPECT_EQ(res.status, sim::RunStatus::Converged);
    EXPECT_TRUE(res.stop_cause.empty());
}

TEST(Splitting, RareEventWithinFactorOfExact) {
    // p = (1 - e^{-0.01})^3 ~ 9.7e-7: hopeless for crude Monte Carlo at
    // this budget, routine for splitting.
    const eda::Network net =
        eda::build_network_from_source(n_component_model(3, 0.01));
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    const double exact = ctmc::run_ctmc_flow(net, *prop.goal, 1.0).probability;
    ASSERT_LT(exact, 2e-6);
    ASSERT_GT(exact, 1e-7);

    const expr::ExprPtr level = make_level_function(net.model(), level_sum(3));
    SplittingOptions opt;
    opt.splitting_factor = 16;
    opt.base_runs = 20000;
    const SplittingResult res =
        estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 11, opt);
    EXPECT_GT(res.goal_hits, 0u);
    EXPECT_GT(res.estimate, exact / 3.0);
    EXPECT_LT(res.estimate, exact * 3.0);

    // Crude Monte Carlo with the same number of *root* paths almost surely
    // sees nothing.
    const stat::ChernoffHoeffding tiny(0.9, 0.0049); // ~20k paths
    const auto naive = sim::estimate(net, prop, sim::StrategyKind::Asap, tiny, 11);
    EXPECT_EQ(naive.successes, 0u);
}

TEST(Splitting, DeterministicInSeed) {
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 0.2));
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(2));
    SplittingOptions opt;
    opt.base_runs = 512;
    const auto a = estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 5, opt);
    const auto b = estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 5, opt);
    EXPECT_EQ(a.total_paths, b.total_paths);
    EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
}

TEST(Splitting, ByteIdenticalAcrossWorkerCounts) {
    // The determinism contract: root trees merge in global root order, so
    // the whole result — estimate, variance, per-level stats, the rendered
    // summary — is byte-identical for every worker count at a fixed seed.
    const eda::Network net =
        eda::build_network_from_source(n_component_model(3, 0.05));
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(3));
    SplittingOptions opt;
    opt.splitting_factor = 8;
    opt.base_runs = 2048;
    opt.workers = 1;
    const auto ref = estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 42, opt);
    EXPECT_GT(ref.goal_hits, 0u);
    for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
        opt.workers = workers;
        const auto par =
            estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 42, opt);
        EXPECT_EQ(par.to_string(), ref.to_string()) << workers << " workers";
        EXPECT_DOUBLE_EQ(par.estimate, ref.estimate);
        EXPECT_DOUBLE_EQ(par.variance_per_root, ref.variance_per_root);
        EXPECT_EQ(par.total_paths, ref.total_paths);
        EXPECT_EQ(par.goal_hits, ref.goal_hits);
        EXPECT_EQ(par.terminals, ref.terminals);
        ASSERT_EQ(par.levels.size(), ref.levels.size());
        for (std::size_t i = 0; i < ref.levels.size(); ++i) {
            EXPECT_EQ(par.levels[i].level, ref.levels[i].level);
            EXPECT_EQ(par.levels[i].crossings, ref.levels[i].crossings);
            EXPECT_EQ(par.levels[i].clones, ref.levels[i].clones);
        }
    }
}

TEST(Splitting, SummaryOmitsWallClock) {
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 0.2));
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(2));
    SplittingOptions opt;
    opt.base_runs = 256;
    const auto res = estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 5, opt);
    EXPECT_GT(res.wall_seconds, 0.0);
    EXPECT_EQ(res.to_string().find("wall"), std::string::npos);
    EXPECT_EQ(res.to_string().find('s' + std::to_string(res.wall_seconds)),
              std::string::npos);
}

TEST(Splitting, MultiLevelJumpConservesWeight) {
    // A level function that jumps TWO levels per component failure: a single
    // step crosses levels 1 and 2 at once. The engine must split once per
    // level (weight / factor at each), so the estimator stays unbiased and
    // every level records the same first-crossing count as its intermediate.
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 1.0));
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    const double exact = ctmc::run_ctmc_flow(net, *prop.goal, 1.0).probability;
    const expr::ExprPtr level = make_level_function(
        net.model(),
        "2*(if c0.broken then 1 else 0) + 2*(if c1.broken then 1 else 0)");
    SplittingOptions opt;
    opt.splitting_factor = 2;
    opt.base_runs = 8192;
    const auto res = estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 9, opt);
    EXPECT_NEAR(res.estimate, exact, 0.05);
    EXPECT_EQ(res.max_level_seen, 4);
    ASSERT_EQ(res.levels.size(), 4u);
    // A jump crosses the intermediate and the target level back to back, and
    // the clone spawned at the intermediate level immediately crosses the
    // upper one too: upper-level crossings are exactly factor x the lower
    // level's, each crossing pairing its weight division with factor-1
    // clones — that multiplication is the weight-conservation invariant.
    const std::uint64_t factor = opt.splitting_factor;
    EXPECT_EQ(res.levels[1].crossings, factor * res.levels[0].crossings);
    EXPECT_EQ(res.levels[3].crossings, factor * res.levels[2].crossings);
    for (const auto& row : res.levels) {
        EXPECT_EQ(row.clones, row.crossings * (factor - 1));
    }
}

TEST(Splitting, RejectsBadConfiguration) {
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 1.0));
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(2));
    const auto until = sim::make_until(net.model(), "not all_broken", "all_broken", 0.0, 1.0);
    EXPECT_THROW(
        (void)estimate_splitting(net, until, sim::StrategyKind::Asap, level, 1, {}),
        Error);
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    SplittingOptions opt;
    opt.splitting_factor = 0;
    EXPECT_THROW(
        (void)estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 1, opt),
        Error);
    opt.splitting_factor = 2;
    opt.base_runs = 0;
    EXPECT_THROW(
        (void)estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 1, opt),
        Error);
    opt.base_runs = 16;
    opt.sim.control.checkpoint_path = "ck.bin";
    EXPECT_THROW(
        (void)estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 1, opt),
        Error);
    opt.sim.control.checkpoint_path.clear();
    LevelSpec empty; // neither expression nor auto placement
    EXPECT_THROW(
        (void)estimate_splitting(net, prop, sim::StrategyKind::Asap, empty, 1, opt),
        Error);
}

TEST(Splitting, PathBudgetReturnsPartialResultInsteadOfThrowing) {
    const eda::Network net =
        eda::build_network_from_source(n_component_model(3, 2.0)); // faults common
    const auto prop = sim::make_reachability(net.model(), "all_broken", 5.0);
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(3));
    SplittingOptions opt;
    // Factor 4 with 3 certain failures: every tree is ~4^3 paths, well under
    // the cap, so the cumulative budget stops the run between roots.
    opt.splitting_factor = 4;
    opt.base_runs = 4096;
    opt.max_total_paths = 1000;
    const auto res = estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 1, opt);
    EXPECT_EQ(res.status, sim::RunStatus::BudgetExhausted);
    EXPECT_NE(res.stop_cause.find("--split-max-paths"), std::string::npos)
        << res.stop_cause;
    EXPECT_LT(res.base_runs, opt.base_runs);
    EXPECT_LE(res.total_paths, opt.max_total_paths);
    // The accepted prefix is still an unbiased sample: with faults this
    // common the partial estimate must be strictly positive.
    EXPECT_GT(res.estimate, 0.0);

    // And the partial prefix is the same at any worker count.
    opt.workers = 3;
    const auto par = estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 1, opt);
    EXPECT_EQ(par.to_string(), res.to_string());
    EXPECT_EQ(par.status, sim::RunStatus::BudgetExhausted);

    // A runaway single tree (factor 16: ~16^3 paths) blows the cap on its
    // own; that too degrades to a partial result, never an exception.
    opt.workers = 1;
    opt.splitting_factor = 16;
    const auto runaway =
        estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 1, opt);
    EXPECT_EQ(runaway.status, sim::RunStatus::BudgetExhausted);
    EXPECT_NE(runaway.stop_cause.find("within one root tree"), std::string::npos)
        << runaway.stop_cause;
}

TEST(Splitting, RootBudgetStopsTheRunAsPartial) {
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 0.2));
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(2));
    SplittingOptions opt;
    opt.base_runs = 4096;
    opt.sim.control.budget.max_samples = 100; // roots are the sample unit
    const auto res = estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 3, opt);
    EXPECT_EQ(res.status, sim::RunStatus::BudgetExhausted);
    EXPECT_EQ(res.base_runs, 100u);
    EXPECT_FALSE(res.stop_cause.empty());
}

TEST(Splitting, InterruptFlagDrainsToPartialResult) {
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 0.2));
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(2));
    std::atomic<bool> flag{true}; // "SIGINT" raised before the first root
    SplittingOptions opt;
    opt.base_runs = 4096;
    opt.sim.control.interrupt = &flag;
    const auto res = estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 3, opt);
    EXPECT_EQ(res.status, sim::RunStatus::Interrupted);
    EXPECT_EQ(res.base_runs, 0u);
    EXPECT_FALSE(res.stop_cause.empty());
}

TEST(Splitting, SplittingFactorOneIsCrudeMonteCarlo) {
    const eda::Network net =
        eda::build_network_from_source(n_component_model(2, 1.0));
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    const expr::ExprPtr level = make_level_function(net.model(), level_sum(2));
    SplittingOptions opt;
    opt.splitting_factor = 1;
    opt.base_runs = 2048;
    const auto res = estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 3, opt);
    EXPECT_EQ(res.total_paths, opt.base_runs); // no clones
    const double exact = ctmc::run_ctmc_flow(net, *prop.goal, 1.0).probability;
    EXPECT_NEAR(res.estimate, exact, 0.06);
}

TEST(Splitting, AutoPlacementDerivesLevelsFromErrorStates) {
    const eda::Network net =
        eda::build_network_from_source(n_component_model(3, 0.05));
    const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
    const double exact = ctmc::run_ctmc_flow(net, *prop.goal, 1.0).probability;
    LevelSpec spec;
    spec.auto_levels = true;
    spec.text = "auto";
    SplittingOptions opt;
    opt.splitting_factor = 8;
    opt.base_runs = 8192;
    opt.pilot_runs = 256;
    const auto res = estimate_splitting(net, prop, sim::StrategyKind::Asap, spec, 13, opt);
    // Three components failing at 0.05/sec over 1s: deep failure counts are
    // rare, so the pilot must promote at least the deepest raw values.
    EXPECT_FALSE(res.auto_thresholds.empty());
    EXPECT_EQ(res.pilot_paths, opt.pilot_runs);
    EXPECT_TRUE(res.pilot_coverage.enabled);
    EXPECT_GT(res.goal_hits, 0u);
    EXPECT_GT(res.estimate, exact / 3.0);
    EXPECT_LT(res.estimate, exact * 3.0);

    // Auto placement is deterministic too — byte-identical across workers.
    opt.workers = 4;
    const auto par = estimate_splitting(net, prop, sim::StrategyKind::Asap, spec, 13, opt);
    EXPECT_EQ(par.to_string(), res.to_string());
    EXPECT_EQ(par.auto_thresholds, res.auto_thresholds);

    // A model without error processes cannot derive levels.
    const eda::Network plain = eda::build_network_from_source(R"(
        root P.I;
        system P
        features done: out data port bool default false;
        end P;
        system implementation P.I end P.I;
    )");
    const auto plain_prop = sim::make_reachability(plain.model(), "done", 1.0);
    EXPECT_THROW((void)estimate_splitting(plain, plain_prop, sim::StrategyKind::Asap,
                                          spec, 1, opt),
                 Error);
}

TEST(Splitting, UnbiasedOnTheFailoverModel) {
    // models/failover.slim (timed detection): no exact CTMC reference, so
    // cross-check splitting against crude Monte Carlo on the same strategy
    // within the combined confidence tolerance.
    const eda::Network net =
        eda::build_network_from_file(std::string(SLIMSIM_MODELS_DIR) +
                                     "/failover.slim");
    const auto prop =
        sim::make_reachability(net.model(), models::failover_goal(), 7200.0);
    const stat::ChernoffHoeffding crude_criterion(0.05, 0.02);
    const auto crude =
        sim::estimate(net, prop, sim::StrategyKind::Asap, crude_criterion, 21);

    const expr::ExprPtr level = make_level_function(
        net.model(),
        "(if primary.broken then 1 else 0) + (if backup.broken then 1 else 0)");
    SplittingOptions opt;
    opt.splitting_factor = 4;
    opt.base_runs = 4096;
    const auto split =
        estimate_splitting(net, prop, sim::StrategyKind::Asap, level, 21, opt);
    EXPECT_GT(split.goal_hits, 0u);
    EXPECT_NEAR(split.estimate, crude.estimate, 0.05);
}

} // namespace
} // namespace slimsim::rare
