#include "safety/fault_tree.hpp"
#include "safety/fdir.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/failover.hpp"
#include "models/gps.hpp"
#include "models/launcher.hpp"
#include "sim/runner.hpp"
#include "slim/parser.hpp"

namespace slimsim::safety {
namespace {

TEST(BasicEvent, SingleExponentialMode) {
    // GPS error model: P(hot within t) for a race of three exponentials:
    // P = (l_h / L)(1 - e^{-L t}) with L the total exit rate of `ok`.
    const eda::Network net = eda::build_network_from_source(models::gps_source());
    const auto modes = failure_modes(net);
    const double t = 3600.0;
    const double lt = 0.1 / 3600.0, lh = 0.05 / 3600.0, lp = 0.01 / 3600.0;
    const double total = lt + lh + lp;
    for (const auto& fm : modes) {
        const double p = basic_event_probability(net, fm, t);
        if (fm.mode == "hot") {
            EXPECT_NEAR(p, lh / total * (1.0 - std::exp(-total * t)), 1e-9);
        } else if (fm.mode == "permanent") {
            EXPECT_NEAR(p, lp / total * (1.0 - std::exp(-total * t)), 1e-9);
        }
    }
}

TEST(FaultTreeTest, FailoverMatchesAnalyticExactly) {
    // Permanent pump faults, instant detection: TOP = P(worn_1)·P(worn_2).
    models::FailoverOptions opt;
    opt.pump_fail_per_hour = 0.5;
    const eda::Network net =
        eda::build_network_from_source(models::failover_source(opt));
    // The static failure condition is the physical one (all pumping
    // capability lost); the monitor's `failed` flag is behavioural and
    // invisible to a static analysis.
    const auto loss = sim::resolve_goal(
        net.model(), slim::parse_expression("primary.broken and backup.broken"));
    const FaultTree tree = build_fault_tree(net, loss, 2.0 * 3600.0, 2);
    ASSERT_EQ(tree.cut_sets.size(), 1u);
    ASSERT_EQ(tree.events.size(), 2u);
    const double p_single = 1.0 - std::exp(-0.5 / 3600.0 * 2.0 * 3600.0);
    EXPECT_NEAR(tree.events[0].probability, p_single, 1e-9);
    EXPECT_NEAR(tree.top_probability, p_single * p_single, 1e-9);

    // ... which equals the simulated probability of the monitor-observed
    // failure on this model (the monitor reacts instantly).
    const auto prop = sim::make_reachability(net.model(), models::failover_goal(),
                                             2.0 * 3600.0);
    const stat::ChernoffHoeffding ch(0.05, 0.02);
    const double simulated =
        sim::estimate(net, prop, sim::StrategyKind::Asap, ch, 3).estimate;
    EXPECT_NEAR(tree.top_probability, simulated, 0.03);
}

TEST(FaultTreeTest, LauncherTreeIsConservative) {
    // Static cut sets ignore transient recovery and fault ordering, so the
    // tree's TOP is an upper bound on the simulated failure probability.
    const eda::Network net =
        eda::build_network_from_source(models::launcher_source());
    const double u = 0.5 * 3600.0;
    const auto prop = sim::make_reachability(net.model(), models::launcher_goal(), u);
    const FaultTree tree = build_fault_tree(net, prop.goal, u, 2);
    EXPECT_EQ(tree.cut_sets.size(), 20u);
    EXPECT_GT(tree.top_probability, 0.0);
    EXPECT_LE(tree.top_probability, 1.0);

    const stat::ChernoffHoeffding ch(0.1, 0.03);
    const double simulated =
        sim::estimate(net, prop, sim::StrategyKind::Asap, ch, 7).estimate;
    EXPECT_GE(tree.top_probability, simulated - 0.03);
}

TEST(FaultTreeTest, InclusionExclusionHandlesSharedEvents) {
    // Cut sets {A,B} and {A,C}: P(top) = P(A)(P(B)+P(C)-P(B)P(C)), not the
    // independent-gate product. Build a 3-component model where the goal is
    // a and (b or c).
    const eda::Network net = eda::build_network_from_source(R"(
        root S.I;
        system Leaf
        features broken: out data port bool default false;
        end Leaf;
        system implementation Leaf.I end Leaf.I;
        system S
        features hit: out data port bool default false;
        end S;
        system implementation S.I
        subcomponents
          a: system Leaf.I;
          b: system Leaf.I;
          c: system Leaf.I;
        flows
          hit := a.broken and (b.broken or c.broken);
        end S.I;
        error model EM
        features ok: initial state; bad: error state;
        end EM;
        error model implementation EM.I
        events f: error event occurrence poisson 1 per sec;
        transitions ok -[f]-> bad;
        end EM.I;
        fault injections
          component a uses error model EM.I;
          component a in state bad effect broken := true;
          component b uses error model EM.I;
          component b in state bad effect broken := true;
          component c uses error model EM.I;
          component c in state bad effect broken := true;
        end fault injections;
    )");
    const auto prop = sim::make_reachability(net.model(), "hit", 1.0);
    const FaultTree tree = build_fault_tree(net, prop.goal, 1.0, 2);
    ASSERT_EQ(tree.cut_sets.size(), 2u);
    ASSERT_EQ(tree.events.size(), 3u);
    const double p = 1.0 - std::exp(-1.0);
    EXPECT_NEAR(tree.top_probability, p * (2.0 * p - p * p), 1e-9);
}

TEST(FaultTreeTest, FormatterListsGatesAndEvents) {
    const eda::Network net =
        eda::build_network_from_source(models::failover_source());
    const auto loss = sim::resolve_goal(
        net.model(), slim::parse_expression("primary.broken and backup.broken"));
    const FaultTree tree = build_fault_tree(net, loss, 3600.0, 2);
    const std::string text = tree.to_string();
    EXPECT_NE(text.find("TOP event"), std::string::npos);
    EXPECT_NE(text.find("primary:worn & backup:worn"), std::string::npos);
    EXPECT_NE(text.find("basic events:"), std::string::npos);
}

TEST(Fdir, GpsRestartDetectionAndRecovery) {
    // Alarm: the fix is lost; nominal: the fix is back. A hot fault must be
    // recovered by the power-cycling controller; a permanent one must not.
    const eda::Network net =
        eda::build_network_from_source(models::gps_restart_source(true));
    const auto alarm = sim::resolve_goal(
        net.model(), slim::parse_expression("not gps.measurement"));
    const auto nominal =
        sim::resolve_goal(net.model(), slim::parse_expression("gps.measurement"));
    FdirOptions opt;
    opt.eps = 0.05;
    const auto rows = fdir_coverage(net, alarm, nominal, 15.0 * 60.0, 5, opt);
    ASSERT_EQ(rows.size(), 3u); // transient, hot, permanent
    for (const auto& r : rows) {
        EXPECT_DOUBLE_EQ(r.detection_probability, 1.0) << r.mode.mode;
        if (r.mode.mode == "hot" || r.mode.mode == "transient") {
            EXPECT_GT(r.recovery_probability, 0.85) << r.mode.mode;
        } else {
            EXPECT_LT(r.recovery_probability, 0.1) << r.mode.mode;
        }
    }
    const std::string table = format_fdir(rows);
    EXPECT_NE(table.find("P(detected)"), std::string::npos);
}

} // namespace
} // namespace slimsim::safety
