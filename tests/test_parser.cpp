#include "slim/parser.hpp"

#include <gtest/gtest.h>

namespace slimsim::slim {
namespace {

TEST(Parser, ComponentType) {
    const ModelFile f = parse_model(R"(
        system GPS
        features
          activation: in event port;
          measurement: out data port bool default false;
          level: out data port int [0..9] default 3;
          temp: in data port real;
        end GPS;
    )");
    ASSERT_EQ(f.component_types.size(), 1u);
    const ComponentType& t = f.component_types[0];
    EXPECT_EQ(t.name, "GPS");
    EXPECT_EQ(t.category, Category::System);
    ASSERT_EQ(t.features.size(), 4u);
    EXPECT_TRUE(t.features[0].is_event);
    EXPECT_EQ(t.features[0].dir, PortDir::In);
    EXPECT_FALSE(t.features[1].is_event);
    EXPECT_EQ(t.features[1].dir, PortDir::Out);
    EXPECT_EQ(t.features[1].data_type.kind, TypeKind::Bool);
    ASSERT_TRUE(t.features[1].default_value != nullptr);
    EXPECT_EQ(t.features[2].data_type, Type::integer_range(0, 9));
    EXPECT_EQ(t.features[3].data_type.kind, TypeKind::Real);
}

TEST(Parser, AllCategories) {
    const ModelFile f = parse_model(R"(
        system A end A;
        device B end B;
        processor C end C;
        process D end D;
        thread E end E;
        bus F end F;
        memory G end G;
        abstract H end H;
    )");
    ASSERT_EQ(f.component_types.size(), 8u);
    EXPECT_EQ(f.component_types[1].category, Category::Device);
    EXPECT_EQ(f.component_types[7].category, Category::Abstract);
}

TEST(Parser, Implementation) {
    const ModelFile f = parse_model(R"(
        system S end S;
        system implementation S.Imp
        subcomponents
          x: data clock;
          e: data continuous default 100.0;
          sub: device Dev.Imp in modes (working);
        modes
          working: initial mode while x <= 2 min;
          broken: mode;
        transitions
          working -[when x >= 10 then e := e + 1]-> broken;
          broken -[]-> working;
        trends
          e' = -0.5 in working;
        end S.Imp;
    )");
    ASSERT_EQ(f.component_impls.size(), 1u);
    const ComponentImpl& impl = f.component_impls[0];
    EXPECT_EQ(impl.full_name(), "S.Imp");
    ASSERT_EQ(impl.data.size(), 2u);
    EXPECT_EQ(impl.data[0].type.kind, TypeKind::Clock);
    ASSERT_EQ(impl.subcomponents.size(), 1u);
    EXPECT_EQ(impl.subcomponents[0].type_name, "Dev.Imp");
    ASSERT_EQ(impl.subcomponents[0].in_modes.size(), 1u);
    ASSERT_EQ(impl.modes.size(), 2u);
    EXPECT_TRUE(impl.modes[0].initial);
    ASSERT_TRUE(impl.modes[0].invariant != nullptr);
    ASSERT_EQ(impl.transitions.size(), 2u);
    EXPECT_EQ(impl.transitions[0].src, "working");
    EXPECT_EQ(impl.transitions[0].dst, "broken");
    ASSERT_TRUE(impl.transitions[0].guard != nullptr);
    ASSERT_EQ(impl.transitions[0].effects.size(), 1u);
    EXPECT_EQ(impl.transitions[1].trigger.kind, TriggerKind::Internal);
    ASSERT_EQ(impl.trends.size(), 1u);
    EXPECT_EQ(impl.trends[0].var, "e");
}

TEST(Parser, TransitionTriggers) {
    const ModelFile f = parse_model(R"(
        system S end S;
        system implementation S.Imp
        modes
          a: initial mode;
          b: mode;
        transitions
          a -[go]-> b;
          a -[@activation]-> b;
          b -[@deactivation]-> a;
          a -[when true]-> b;
          a -[then x := 1]-> b;
          a -[go when true then x := 1; y := 2]-> b;
        end S.Imp;
    )");
    const auto& tr = f.component_impls[0].transitions;
    ASSERT_EQ(tr.size(), 6u);
    EXPECT_EQ(tr[0].trigger.kind, TriggerKind::Port);
    EXPECT_EQ(tr[0].trigger.port.port, "go");
    EXPECT_EQ(tr[1].trigger.kind, TriggerKind::Activation);
    EXPECT_EQ(tr[2].trigger.kind, TriggerKind::Deactivation);
    EXPECT_EQ(tr[3].trigger.kind, TriggerKind::Internal);
    ASSERT_TRUE(tr[3].guard != nullptr);
    EXPECT_EQ(tr[4].effects.size(), 1u);
    EXPECT_EQ(tr[5].effects.size(), 2u);
}

TEST(Parser, ConnectionsAndFlows) {
    const ModelFile f = parse_model(R"(
        system S end S;
        system implementation S.Imp
        subcomponents
          a: device D.Imp;
          b: device D.Imp;
        connections
          data port a.out_p -> b.in_p;
          event port a.done -> b.go;
          data port a.out_p -> b.in_p in modes (m1, m2);
        flows
          b.in_p := a.out_p * 2;
        modes
          m1: initial mode;
          m2: mode;
        end S.Imp;
    )");
    const auto& impl = f.component_impls[0];
    ASSERT_EQ(impl.connections.size(), 3u);
    EXPECT_FALSE(impl.connections[0].is_event);
    EXPECT_EQ(impl.connections[0].src.to_string(), "a.out_p");
    EXPECT_TRUE(impl.connections[1].is_event);
    EXPECT_EQ(impl.connections[2].in_modes.size(), 2u);
    ASSERT_EQ(impl.flows.size(), 1u);
    EXPECT_EQ(impl.flows[0].target.to_string(), "b.in_p");
}

TEST(Parser, ErrorModel) {
    const ModelFile f = parse_model(R"(
        error model EM
        features
          ok: initial state;
          bad: error state while @timer <= 300 msec;
          fail_out: out propagation;
          fail_in: in propagation;
        end EM;
        error model implementation EM.Imp
        events
          fault: error event occurrence poisson 0.1 per hour;
          recover: error event;
        subcomponents
          c: data clock;
        transitions
          ok -[fault]-> bad;
          bad -[recover when c >= 1]-> ok;
          bad -[fail_out]-> bad;
          ok -[fail_in]-> bad;
        end EM.Imp;
    )");
    ASSERT_EQ(f.error_types.size(), 1u);
    const ErrorModelType& t = f.error_types[0];
    ASSERT_EQ(t.states.size(), 2u);
    EXPECT_TRUE(t.states[0].initial);
    ASSERT_TRUE(t.states[1].invariant != nullptr);
    ASSERT_EQ(t.propagations.size(), 2u);
    EXPECT_EQ(t.propagations[0].dir, PortDir::Out);
    EXPECT_EQ(t.propagations[1].dir, PortDir::In);

    ASSERT_EQ(f.error_impls.size(), 1u);
    const ErrorModelImpl& impl = f.error_impls[0];
    ASSERT_EQ(impl.events.size(), 2u);
    ASSERT_TRUE(impl.events[0].rate.has_value());
    EXPECT_NEAR(*impl.events[0].rate, 0.1 / 3600.0, 1e-12); // per hour -> per sec
    EXPECT_FALSE(impl.events[1].rate.has_value());
    EXPECT_EQ(impl.transitions.size(), 4u);
}

TEST(Parser, FaultInjections) {
    const ModelFile f = parse_model(R"(
        fault injections
          component gps uses error model EM.Imp;
          component gps in state bad effect measurement := false;
          component a.b.c uses error model EM.Imp;
          component root uses error model EM.Imp;
        end fault injections;
    )");
    ASSERT_EQ(f.error_bindings.size(), 3u);
    EXPECT_EQ(f.error_bindings[0].component_path,
              (std::vector<std::string>{"gps"}));
    EXPECT_EQ(f.error_bindings[1].component_path,
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(f.error_bindings[2].component_path.empty()); // "root"
    ASSERT_EQ(f.injections.size(), 1u);
    EXPECT_EQ(f.injections[0].state, "bad");
    EXPECT_EQ(f.injections[0].target_var, "measurement");
}

TEST(Parser, RootDeclaration) {
    const ModelFile f = parse_model("root Sys.Imp;\nsystem Sys end Sys;");
    EXPECT_EQ(f.root, "Sys.Imp");
}

TEST(Parser, RejectsMismatchedEnd) {
    EXPECT_THROW(parse_model("system A end B;"), Error);
    EXPECT_THROW(parse_model("system implementation A.I end A.J;"), Error);
}

TEST(Parser, RejectsGarbage) {
    EXPECT_THROW(parse_model("systems A end A;"), Error);
    EXPECT_THROW(parse_model("system A features x end A;"), Error);
    EXPECT_THROW(parse_model("system A end A"), Error); // missing semicolon
}

TEST(Parser, RejectsBadRate) {
    EXPECT_THROW(parse_model(R"(
        error model E features ok: initial state; end E;
        error model implementation E.I
        events f: error event occurrence poisson 0 per hour;
        end E.I;
    )"),
                 Error);
}

TEST(Parser, RejectsEmptyIntegerRange) {
    EXPECT_THROW(parse_model(R"(
        system S end S;
        system implementation S.I
        subcomponents x: data int [5..2];
        end S.I;
    )"),
                 Error);
}

TEST(Parser, ExpressionEntryPoint) {
    const expr::ExprPtr e = parse_expression("a and b or not c");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->kind, expr::ExprKind::Binary);
    EXPECT_EQ(e->bop, expr::BinaryOp::Or);
    EXPECT_THROW(parse_expression("a b"), Error); // trailing input
}

TEST(Parser, TimerInGuards) {
    const ModelFile f = parse_model(R"(
        system S end S;
        system implementation S.Imp
        modes
          a: initial mode;
        transitions
          a -[when @timer >= 200 msec]-> a;
        end S.Imp;
    )");
    const auto& g = f.component_impls[0].transitions[0].guard;
    ASSERT_TRUE(g != nullptr);
    EXPECT_NE(g->to_string().find("@timer"), std::string::npos);
}

TEST(Parser, RejectsUnknownImplicitVar) {
    EXPECT_THROW(parse_expression("@clock >= 1"), Error);
}

} // namespace
} // namespace slimsim::slim
