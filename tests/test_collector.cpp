#include "stat/collector.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "stat/curve.hpp"
#include "support/rng.hpp"

namespace slimsim::stat {
namespace {

TEST(Collector, DrainRequiresCompleteRounds) {
    SampleCollector c(3);
    BernoulliSummary s;
    c.push(0, true);
    c.push(1, true);
    EXPECT_EQ(c.drain_rounds(s), 0u); // worker 2 has not delivered yet
    c.push(2, false);
    EXPECT_EQ(c.drain_rounds(s), 3u);
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.successes, 2u);
}

TEST(Collector, DrainConsumesMultipleRounds) {
    SampleCollector c(2);
    for (int i = 0; i < 5; ++i) c.push(0, true);
    for (int i = 0; i < 3; ++i) c.push(1, false);
    BernoulliSummary s;
    EXPECT_EQ(c.drain_rounds(s), 6u); // 3 complete rounds
    EXPECT_EQ(c.buffered(), 2u);      // 2 leftover from worker 0
}

TEST(Collector, MaxRoundsLimitsConsumption) {
    SampleCollector c(2);
    for (int i = 0; i < 4; ++i) {
        c.push(0, true);
        c.push(1, true);
    }
    BernoulliSummary s;
    EXPECT_EQ(c.drain_rounds(s, 1), 2u);
    EXPECT_EQ(c.drain_rounds(s, 2), 4u);
    EXPECT_EQ(c.buffered(), 2u);
}

TEST(Collector, UnorderedDrainTakesEverything) {
    SampleCollector c(3);
    c.push(0, true);
    c.push(0, true);
    c.push(2, false);
    BernoulliSummary s;
    EXPECT_EQ(c.drain_unordered(s), 3u);
    EXPECT_EQ(c.buffered(), 0u);
}

TEST(Collector, RoundRobinOrderIsPerWorkerFifo) {
    SampleCollector c(2);
    c.push(0, true);
    c.push(1, false);
    c.push(0, false);
    c.push(1, true);
    BernoulliSummary s;
    c.drain_rounds(s);
    EXPECT_EQ(s.count, 4u);
    EXPECT_EQ(s.successes, 2u);
}

TEST(Collector, ThreadSafety) {
    SampleCollector c(4);
    std::vector<std::thread> threads;
    constexpr int kPerWorker = 10000;
    for (std::size_t w = 0; w < 4; ++w) {
        threads.emplace_back([&c, w] {
            Rng rng(w + 1);
            for (int i = 0; i < kPerWorker; ++i) c.push(w, rng.bernoulli(0.5));
        });
    }
    BernoulliSummary s;
    std::size_t consumed = 0;
    while (consumed < 4 * kPerWorker) {
        consumed += c.drain_rounds(s);
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(s.count, 4u * kPerWorker);
    EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Collector, RoundRobinEliminatesSpeedBias) {
    // Two workers sample the same Bernoulli(0.5) stream, but worker 1 only
    // delivers its *successes* early (simulating "fast paths finish first"
    // outcome-speed correlation). With first-come consumption, stopping
    // after 1000 samples is biased toward successes; with round-robin it is
    // not.
    Rng rng(77);
    const int target = 1000;

    // Build per-worker streams: worker 0 normal, worker 1 delivers failures
    // late (after all successes).
    std::vector<char> w0;
    std::vector<char> w1_success, w1_failure;
    for (int i = 0; i < 4000; ++i) {
        w0.push_back(rng.bernoulli(0.5) ? 1 : 0);
        const bool b = rng.bernoulli(0.5);
        (b ? w1_success : w1_failure).push_back(b ? 1 : 0);
    }

    // First-come: all of worker 1's early (success-only) deliveries count.
    {
        SampleCollector c(2);
        BernoulliSummary s;
        std::size_t i0 = 0, i1 = 0;
        while (s.count < target) {
            // Worker 1 "races ahead" with successes.
            if (i1 < w1_success.size()) c.push(1, w1_success[i1++] != 0);
            if (i1 < w1_success.size()) c.push(1, w1_success[i1++] != 0);
            if (i0 < w0.size()) c.push(0, w0[i0++] != 0);
            c.drain_unordered(s);
        }
        EXPECT_GT(s.mean(), 0.6); // visibly biased
    }

    // Round-robin: one sample per worker per round; worker 1's stream must
    // be consumed in its true order, so we emulate its true order here.
    {
        SampleCollector c(2);
        BernoulliSummary s;
        Rng r2(78);
        std::size_t i0 = 0;
        while (s.count < target) {
            if (i0 < w0.size()) c.push(0, w0[i0++] != 0);
            c.push(1, r2.bernoulli(0.5));
            c.drain_rounds(s);
        }
        EXPECT_NEAR(s.mean(), 0.5, 0.06);
    }
}

TEST(Collector, UnorderedDrainGrowsTagCounts) {
    // Regression: every drain path shares consume_locked, so a tag larger
    // than the current tag_counts size must grow the vector on the unordered
    // path too (not just drain_rounds).
    SampleCollector c(2);
    c.push(0, TaggedSample{true, 200});
    c.push(1, TaggedSample{false, 3});
    std::vector<std::uint64_t> tags;
    BernoulliSummary s;
    EXPECT_EQ(c.drain_unordered(s, &tags), 2u);
    ASSERT_EQ(tags.size(), 201u);
    EXPECT_EQ(tags[200], 1u);
    EXPECT_EQ(tags[3], 1u);
    EXPECT_EQ(tags[0], 0u);
}

TEST(Collector, OrderedDrainConsumesGlobalOrderAndStopsMidRound) {
    // Three workers, two buffered samples each. done() after 4 samples: the
    // accepted prefix is (w0,r0),(w1,r0),(w2,r0),(w0,r1) — it ends mid-round.
    SampleCollector c(3);
    for (std::size_t w = 0; w < 3; ++w) {
        c.push(w, TaggedSample{w == 0, 0, 1.0});
        c.push(w, TaggedSample{true, 0, 3.0});
    }
    BernoulliSummary s;
    CurveSummary curve({2.0, 4.0});
    const auto n = c.drain_ordered(s, &curve, nullptr, [&] { return s.count >= 4; });
    EXPECT_EQ(n, 4u);
    EXPECT_EQ(s.count, 4u);
    EXPECT_EQ(s.successes, 2u); // w0 round 0 (true@1.0) + w0 round 1 (true@3.0)
    EXPECT_EQ(curve.successes(0), 1u);
    EXPECT_EQ(curve.successes(1), 2u);
    EXPECT_EQ(c.buffered(), 2u); // w1/w2 round-1 samples stay buffered
}

TEST(Collector, OrderedDrainResumesMidRoundAcrossCalls) {
    // The cursor persists: after stopping mid-round at worker 1, the next
    // call must continue with worker 1, never re-serve worker 0.
    SampleCollector c(2);
    c.push(0, TaggedSample{true, 0, 1.0});
    c.push(1, TaggedSample{false, 0, 1.0});
    BernoulliSummary s;
    CurveSummary curve({2.0});
    EXPECT_EQ(c.drain_ordered(s, &curve, nullptr, [&] { return s.count >= 1; }), 1u);
    EXPECT_EQ(s.successes, 1u); // worker 0's sample
    EXPECT_EQ(c.drain_ordered(s, &curve, nullptr, [] { return false; }), 1u);
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.successes, 1u); // worker 1's failure, not a re-read of worker 0
    // A gap in the next-in-order worker stalls the drain even if others have
    // samples buffered (global order is sample r of w0, w1, then r+1 ...).
    c.push(1, TaggedSample{true, 0, 1.0});
    EXPECT_EQ(c.drain_ordered(s, &curve, nullptr, [] { return false; }), 0u);
    EXPECT_EQ(c.buffered(), 1u);
    c.push(0, TaggedSample{true, 0, 1.0});
    EXPECT_EQ(c.drain_ordered(s, &curve, nullptr, [] { return false; }), 2u);
    EXPECT_EQ(s.count, 4u);
}

} // namespace
} // namespace slimsim::stat
