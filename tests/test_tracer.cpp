// Tests of the execution tracer: ring-buffer overflow semantics, the
// disabled-tracer no-op path, and the Chrome trace-event JSON export.
#include "support/tracer/tracer.hpp"

#include <gtest/gtest.h>

#include <string>

namespace slimsim::tracer {
namespace {

Tracer::Options small(std::size_t capacity) {
    Tracer::Options o;
    o.lane_capacity = capacity;
    return o;
}

TEST(Tracer, LaneRecordsSpansAndInstants) {
    Tracer tracer;
    Lane* lane = tracer.lane("main");
    ASSERT_NE(lane, nullptr);
    const NameId work = lane->intern("work");
    const NameId tick = lane->intern("tick");
    const NameId count = lane->intern("count");

    lane->begin(work);
    lane->instant(tick);
    lane->end(count, 3.0);

    const auto events = lane->events();
    ASSERT_EQ(events.size(), 2u);
    // The instant completes first; the span is recorded when it closes.
    EXPECT_EQ(tracer.name(events[0].name), "tick");
    EXPECT_LT(events[0].dur_ns, 0);
    EXPECT_EQ(tracer.name(events[1].name), "work");
    EXPECT_GE(events[1].dur_ns, 0);
    EXPECT_EQ(tracer.name(events[1].arg_name), "count");
    EXPECT_EQ(events[1].arg, 3.0);
    EXPECT_EQ(lane->total(), 2u);
    EXPECT_EQ(lane->dropped(), 0u);
}

TEST(Tracer, RingOverflowKeepsNewest) {
    Tracer tracer(small(4));
    Lane* lane = tracer.lane("ring");
    ASSERT_NE(lane, nullptr);
    const NameId tick = lane->intern("tick");
    const NameId n = lane->intern("n");
    for (int i = 0; i < 10; ++i) {
        lane->instant(tick, n, static_cast<double>(i));
    }
    EXPECT_EQ(lane->total(), 10u);
    EXPECT_EQ(lane->dropped(), 6u);
    const auto events = lane->events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest first, and only the newest four survive.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(events[static_cast<std::size_t>(i)].arg, 6.0 + i);
    }
}

TEST(Tracer, DisabledTracerHandsOutNullLanes) {
    Tracer::Options off;
    off.enabled = false;
    Tracer tracer(off);
    EXPECT_FALSE(tracer.enabled());
    EXPECT_EQ(tracer.lane("main"), nullptr);
    // Null-lane spans are the no-op fast path instrumented code relies on.
    Span span(nullptr, kNoName);
    span.end(kNoName, 1.0);
    span.end();
    const json::Value doc = tracer.to_chrome_json();
    ASSERT_NE(doc.find("traceEvents"), nullptr);
}

TEST(Tracer, SpansNestWithinALane) {
    Tracer tracer;
    Lane* lane = tracer.lane("nest");
    const NameId outer = lane->intern("outer");
    const NameId inner = lane->intern("inner");
    lane->begin(outer);
    lane->begin(inner);
    lane->end();
    lane->end();
    const auto events = lane->events();
    ASSERT_EQ(events.size(), 2u);
    // Inner closes first; both are complete spans with inner nested inside.
    EXPECT_EQ(tracer.name(events[0].name), "inner");
    EXPECT_EQ(tracer.name(events[1].name), "outer");
    EXPECT_GE(events[0].ts_ns, events[1].ts_ns);
    EXPECT_LE(events[0].ts_ns + events[0].dur_ns, events[1].ts_ns + events[1].dur_ns);
}

TEST(Tracer, LaneLookupIsByLabel) {
    Tracer tracer;
    Lane* a = tracer.lane("worker 0");
    Lane* b = tracer.lane("worker 1");
    EXPECT_NE(a, b);
    EXPECT_EQ(tracer.lane("worker 0"), a);
    EXPECT_EQ(a->id(), 0u);
    EXPECT_EQ(b->id(), 1u);
    EXPECT_EQ(a->label(), "worker 0");
}

TEST(Tracer, ChromeJsonSchema) {
    Tracer tracer;
    Lane* lane = tracer.lane("worker 0");
    const NameId work = lane->intern("work");
    const NameId tick = lane->intern("tick");
    const NameId n = lane->intern("n");
    lane->begin(work);
    lane->end(n, 7.0);
    lane->instant(tick);

    const json::Value doc = tracer.to_chrome_json();
    // Round-trips through the parser (valid JSON).
    EXPECT_EQ(json::Value::parse(doc.dump()), doc);
    EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");

    const json::Value& events = doc.at("traceEvents");
    ASSERT_GE(events.size(), 4u); // >= 2 metadata + span + instant
    bool saw_thread_name = false;
    bool saw_span = false;
    bool saw_instant = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const json::Value& e = events.at(i);
        ASSERT_NE(e.find("ph"), nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        const std::string& ph = e.at("ph").as_string();
        if (ph == "M" && e.at("name").as_string() == "thread_name") {
            saw_thread_name =
                e.at("args").at("name").as_string() == "worker 0";
        } else if (ph == "X") {
            saw_span = true;
            EXPECT_EQ(e.at("name").as_string(), "work");
            EXPECT_NE(e.find("ts"), nullptr);
            EXPECT_GE(e.at("dur").as_double(), 0.0);
            EXPECT_EQ(e.at("args").at("n").as_double(), 7.0);
        } else if (ph == "i") {
            saw_instant = true;
            EXPECT_EQ(e.at("name").as_string(), "tick");
            EXPECT_EQ(e.at("s").as_string(), "t");
        }
    }
    EXPECT_TRUE(saw_thread_name);
    EXPECT_TRUE(saw_span);
    EXPECT_TRUE(saw_instant);
}

TEST(Tracer, DroppedEventsAreSurfacedInTheExport) {
    Tracer tracer(small(2));
    Lane* lane = tracer.lane("busy");
    const NameId tick = lane->intern("tick");
    for (int i = 0; i < 5; ++i) lane->instant(tick);
    const json::Value doc = tracer.to_chrome_json();
    bool saw_dropped = false;
    const json::Value& events = doc.at("traceEvents");
    for (std::size_t i = 0; i < events.size(); ++i) {
        const json::Value& e = events.at(i);
        if (e.at("name").as_string() == "tracer.dropped") {
            saw_dropped = true;
            EXPECT_EQ(e.at("args").at("events").as_double(), 3.0);
        }
    }
    EXPECT_TRUE(saw_dropped);
}

TEST(Tracer, DeterministicViewZeroesTimestamps) {
    Tracer tracer;
    Lane* lane = tracer.lane("main");
    const NameId work = lane->intern("work");
    lane->begin(work);
    lane->end();
    lane->instant(work);
    const json::Value det = deterministic_view(tracer.to_chrome_json());
    const json::Value& events = det.at("traceEvents");
    for (std::size_t i = 0; i < events.size(); ++i) {
        const json::Value& e = events.at(i);
        if (e.find("ts") != nullptr) EXPECT_EQ(e.at("ts").as_double(), 0.0);
        if (e.find("dur") != nullptr) EXPECT_EQ(e.at("dur").as_double(), 0.0);
    }
}

TEST(Tracer, UnclosedSpansAreDiscarded) {
    Tracer tracer;
    Lane* lane = tracer.lane("main");
    lane->begin(lane->intern("never closed"));
    // Still open: nothing recorded yet, so an abandoned span never shows.
    EXPECT_EQ(lane->events().size(), 0u);
    EXPECT_EQ(lane->total(), 0u);
    // end() without any matching begin() is ignored rather than corrupting.
    lane->end();
    lane->end();
    EXPECT_EQ(lane->total(), 1u);
}

} // namespace
} // namespace slimsim::tracer
