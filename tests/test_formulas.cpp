// Path formulas beyond plain reachability: interval reach, bounded Until,
// Globally (the paper's future-work CSL fragment).
#include <gtest/gtest.h>

#include <cmath>

#include "sim/runner.hpp"

namespace slimsim::sim {
namespace {

constexpr const char* kClockModel = R"(
    root S.I;
    system S end S;
    system implementation S.I
    subcomponents x: data clock;
    modes a: initial mode;
    end S.I;
)";


// Two independent fault sources bound to two subcomponents, with flags on
// the root.
constexpr const char* kTwoFaultsFull = R"(
    root S.I;
    system Leaf
    features broken: out data port bool default false;
    end Leaf;
    system implementation Leaf.I end Leaf.I;
    system S
    features
      a_failed: out data port bool default false;
      b_failed: out data port bool default false;
    end S;
    system implementation S.I
    subcomponents
      a: system Leaf.I;
      b: system Leaf.I;
    flows
      a_failed := a.broken;
      b_failed := b.broken;
    end S.I;
    error model EM
    features ok: initial state; bad: error state;
    end EM;
    error model implementation EM.FastEM
    events f: error event occurrence poisson 1.5 per sec;
    transitions ok -[f]-> bad;
    end EM.FastEM;
    error model implementation EM.SlowEM
    events f: error event occurrence poisson 0.5 per sec;
    transitions ok -[f]-> bad;
    end EM.SlowEM;
    fault injections
      component a uses error model EM.FastEM;
      component a in state bad effect broken := true;
      component b uses error model EM.SlowEM;
      component b in state bad effect broken := true;
    end fault injections;
)";

PathOutcome run_formula(const eda::Network& net, const PathFormula& f,
                        StrategyKind kind = StrategyKind::Asap, std::uint64_t seed = 1) {
    auto strat = make_strategy(kind);
    const PathGenerator gen(net, f, *strat);
    Rng rng(seed);
    return gen.run(rng);
}

double estimate_formula(const eda::Network& net, const PathFormula& f, double eps = 0.02,
                        std::uint64_t seed = 7) {
    const stat::ChernoffHoeffding ch(0.05, eps);
    return estimate(net, f, StrategyKind::Asap, ch, seed).estimate;
}

TEST(IntervalReach, LowerBoundDelaysSatisfaction) {
    const eda::Network net = eda::build_network_from_source(kClockModel);
    // x >= 3 becomes true at t=3, but the interval starts at 5.
    const PathFormula f = make_reachability_interval(net.model(), "x >= 3", 5.0, 10.0);
    const PathOutcome out = run_formula(net, f);
    EXPECT_TRUE(out.satisfied);
    EXPECT_DOUBLE_EQ(out.end_time, 5.0);
}

TEST(IntervalReach, TransientGoalMissedByWindow) {
    const eda::Network net = eda::build_network_from_source(kClockModel);
    // Goal only true on [3,4]; window [5,10] misses it.
    const PathFormula f =
        make_reachability_interval(net.model(), "x >= 3 and x <= 4", 5.0, 10.0);
    const PathOutcome out = run_formula(net, f);
    EXPECT_FALSE(out.satisfied);
    // This model has no discrete transitions at all, so running out the
    // window classifies as a deadlock (the paper's Sec. III-D semantics).
    EXPECT_EQ(out.terminal, PathTerminal::Deadlock);
}

TEST(IntervalReach, GoalInsideWindow) {
    const eda::Network net = eda::build_network_from_source(kClockModel);
    const PathFormula f =
        make_reachability_interval(net.model(), "x >= 7 and x <= 8", 5.0, 10.0);
    const PathOutcome out = run_formula(net, f);
    EXPECT_TRUE(out.satisfied);
    EXPECT_DOUBLE_EQ(out.end_time, 7.0);
}

TEST(IntervalReach, RejectsBadInterval) {
    const eda::Network net = eda::build_network_from_source(kClockModel);
    EXPECT_THROW((void)make_reachability_interval(net.model(), "x >= 1", 5.0, 3.0), Error);
    EXPECT_THROW((void)make_reachability_interval(net.model(), "x >= 1", -1.0, 3.0),
                 Error);
}

TEST(Until, DeterministicSatisfaction) {
    const eda::Network net = eda::build_network_from_source(kClockModel);
    // (x <= 7) U [0,10] (x >= 5): goal at 5, hold survives until 7 >= 5.
    const PathFormula f = make_until(net.model(), "x <= 7", "x >= 5", 0.0, 10.0);
    const PathOutcome out = run_formula(net, f);
    EXPECT_TRUE(out.satisfied);
    EXPECT_DOUBLE_EQ(out.end_time, 5.0);
}

TEST(Until, HoldFailsBeforeGoal) {
    const eda::Network net = eda::build_network_from_source(kClockModel);
    // (x <= 4) U [0,10] (x >= 5): hold dies at 4 before the goal at 5.
    const PathFormula f = make_until(net.model(), "x <= 4", "x >= 5", 0.0, 10.0);
    const PathOutcome out = run_formula(net, f);
    EXPECT_FALSE(out.satisfied);
    EXPECT_EQ(out.terminal, PathTerminal::Refuted);
    EXPECT_DOUBLE_EQ(out.end_time, 4.0);
}

TEST(Until, HoldFalseInitially) {
    const eda::Network net = eda::build_network_from_source(kClockModel);
    const PathFormula f = make_until(net.model(), "x >= 1", "x >= 5", 0.0, 10.0);
    const PathOutcome out = run_formula(net, f);
    EXPECT_FALSE(out.satisfied);
    EXPECT_EQ(out.terminal, PathTerminal::Refuted);
    EXPECT_DOUBLE_EQ(out.end_time, 0.0);
}

TEST(Until, GoalTrueImmediatelyOverridesHold) {
    const eda::Network net = eda::build_network_from_source(kClockModel);
    // psi true at t=0 within window: satisfied regardless of phi.
    const PathFormula f = make_until(net.model(), "x >= 99", "x <= 1", 0.0, 10.0);
    const PathOutcome out = run_formula(net, f);
    EXPECT_TRUE(out.satisfied);
    EXPECT_DOUBLE_EQ(out.end_time, 0.0);
}

TEST(Until, LowerBoundRequiresHoldThroughGap) {
    const eda::Network net = eda::build_network_from_source(kClockModel);
    // psi true everywhere, window [5,10]; phi = x <= 3 dies at 3 < 5.
    const PathFormula f = make_until(net.model(), "x <= 3", "true or x >= 0", 5.0, 10.0);
    const PathOutcome out = run_formula(net, f);
    EXPECT_FALSE(out.satisfied);
    EXPECT_DOUBLE_EQ(out.end_time, 3.0);
    // phi = x <= 6 also dies before 5? No: 6 >= 5, so psi at 5 wins.
    const PathFormula g = make_until(net.model(), "x <= 6", "x >= 0", 5.0, 10.0);
    const PathOutcome out2 = run_formula(net, g);
    EXPECT_TRUE(out2.satisfied);
    EXPECT_DOUBLE_EQ(out2.end_time, 5.0);
}

TEST(Until, CompetingExponentialsMatchAnalytic) {
    const eda::Network net = eda::build_network_from_source(kTwoFaultsFull);
    // P( not b_failed U [0,u] a_failed ): the fast fault (rate a=1.5) must
    // beat the slow one (rate b=0.5) within u:
    //   p = a/(a+b) * (1 - exp(-(a+b) u)).
    const double u = 1.0;
    const PathFormula f = make_until(net.model(), "not b_failed", "a_failed", 0.0, u);
    const double expected = 1.5 / 2.0 * (1.0 - std::exp(-2.0 * u));
    EXPECT_NEAR(estimate_formula(net, f), expected, 0.03);
}

TEST(Globally, ClockViolation) {
    const eda::Network net = eda::build_network_from_source(kClockModel);
    const PathFormula f = make_globally(net.model(), "x <= 5", 10.0);
    const PathOutcome out = run_formula(net, f);
    EXPECT_FALSE(out.satisfied);
    EXPECT_EQ(out.terminal, PathTerminal::Refuted);
    EXPECT_DOUBLE_EQ(out.end_time, 5.0);
}

TEST(Globally, SatisfiedWhenBoundEndsFirst) {
    const eda::Network net = eda::build_network_from_source(kClockModel);
    const PathFormula f = make_globally(net.model(), "x <= 5", 4.0);
    const PathOutcome out = run_formula(net, f);
    EXPECT_TRUE(out.satisfied);
    EXPECT_EQ(out.terminal, PathTerminal::Goal);
    EXPECT_DOUBLE_EQ(out.end_time, 4.0);
}

TEST(Globally, DeadlockDoesNotFalsify) {
    // A deadlocked model (no transitions) with a constantly-true invariant:
    // G [0,u] must be *satisfied*, unlike reachability.
    const eda::Network net = eda::build_network_from_source(R"(
        root S.I;
        system S
        features ok: out data port bool default true;
        end S;
        system implementation S.I
        modes a: initial mode;
        end S.I;
    )");
    const PathFormula f = make_globally(net.model(), "ok", 5.0);
    const PathOutcome out = run_formula(net, f);
    EXPECT_TRUE(out.satisfied);
}

TEST(Globally, ComplementOfReachability) {
    // G [0,u] not broken == not <> [0,u] broken: the estimates must be
    // complementary on the same model.
    const eda::Network net = eda::build_network_from_source(kTwoFaultsFull);
    const double u = 0.7;
    const PathFormula g = make_globally(net.model(), "not a_failed and not b_failed", u);
    const PathFormula r = make_reachability(net.model(), "a_failed or b_failed", u);
    const double pg = estimate_formula(net, g, 0.02, 5);
    const double pr = estimate_formula(net, r, 0.02, 6);
    EXPECT_NEAR(pg + pr, 1.0, 0.04);
    // Analytic: no fault within u at total rate 2: exp(-2u).
    EXPECT_NEAR(pg, std::exp(-2.0 * u), 0.03);
}

TEST(Globally, StochasticViolationTerminal) {
    const eda::Network net = eda::build_network_from_source(kTwoFaultsFull);
    // With a long bound, a fault almost surely violates G before it.
    const PathFormula g = make_globally(net.model(), "not a_failed", 100.0);
    const PathOutcome out = run_formula(net, g, StrategyKind::Asap, 3);
    EXPECT_FALSE(out.satisfied);
    EXPECT_EQ(out.terminal, PathTerminal::Refuted);
    EXPECT_LT(out.end_time, 100.0);
}

TEST(Formulas, ToStringAndText) {
    const eda::Network net = eda::build_network_from_source(kClockModel);
    EXPECT_EQ(to_string(FormulaKind::Reach), "reach");
    EXPECT_EQ(to_string(FormulaKind::Until), "until");
    EXPECT_EQ(to_string(FormulaKind::Globally), "globally");
    const PathFormula f = make_until(net.model(), "x <= 7", "x >= 5", 1.0, 10.0);
    EXPECT_NE(f.text.find("U [1,10]"), std::string::npos);
}

// Parameterized sweep: interval reach on the pure clock model, exact hit
// times for every (lo, goal threshold) combination.
class IntervalReachSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(IntervalReachSweep, HitTimeIsMaxOfThresholdAndLo) {
    const auto [lo, threshold] = GetParam();
    const eda::Network net = eda::build_network_from_source(kClockModel);
    const PathFormula f = make_reachability_interval(
        net.model(), "x >= " + std::to_string(threshold), lo, 20.0);
    const PathOutcome out = run_formula(net, f);
    ASSERT_TRUE(out.satisfied);
    EXPECT_NEAR(out.end_time, std::max(lo, threshold), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, IntervalReachSweep,
                         ::testing::Combine(::testing::Values(0.0, 2.0, 6.0),
                                            ::testing::Values(1.0, 5.0, 9.0)));

} // namespace
} // namespace slimsim::sim
