// The compile-once model API (docs/compiled-model.md): bytecode programs
// vs the reference tree-walking interpreter, hash-consing, model content
// hashes, estimate byte-identity, and CompiledModel reuse across analyses.
#include "expr/compile.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "api/analysis.hpp"
#include "eda/compiled.hpp"
#include "expr/eval.hpp"
#include "models/gps.hpp"
#include "sim/run_control.hpp"
#include "sim/runner.hpp"
#include "slim/parser.hpp"
#include "slim/printer.hpp"
#include "slim/resolver.hpp"

namespace slimsim {
namespace {

#ifndef SLIMSIM_MODELS_DIR
#error "SLIMSIM_MODELS_DIR must be defined by the build"
#endif

/// Parses + resolves an expression over the given typed variables.
expr::ExprPtr parse_resolved(const std::string& source,
                             const std::vector<std::pair<std::string, Value>>& vars) {
    slim::SymbolTable table;
    for (const auto& [name, value] : vars) {
        slim::Symbol sym;
        sym.name = name;
        sym.kind = slim::SymKind::Data;
        sym.type = value.is_bool()  ? Type::boolean()
                   : value.is_int() ? Type::integer()
                                    : Type::real();
        table.add(std::move(sym));
    }
    expr::ExprPtr e = slim::parse_expression(source);
    DiagnosticSink sink;
    slim::resolve_expr(*e, table, sink);
    sink.throw_if_errors("test expression");
    return e;
}

/// Asserts the compiled program and the reference interpreter agree on
/// `source` — same value, or the same error message.
void expect_agreement(const std::string& source,
                      const std::vector<std::pair<std::string, Value>>& vars = {}) {
    const expr::ExprPtr e = parse_resolved(source, vars);
    std::vector<Value> values;
    values.reserve(vars.size());
    for (const auto& [name, value] : vars) values.push_back(value);
    const expr::EvalContext ctx{values, {}};

    std::optional<Value> tree_value;
    std::string tree_error;
    try {
        tree_value = expr::testing::reference_evaluate(*e, ctx);
    } catch (const Error& err) {
        tree_error = err.what();
    }

    const expr::ProgramPtr prog = expr::compile(*e);
    expr::EvalScratch scratch;
    std::optional<Value> prog_value;
    std::string prog_error;
    try {
        prog_value = prog->run(values, scratch);
    } catch (const Error& err) {
        prog_error = err.what();
    }

    EXPECT_EQ(tree_value.has_value(), prog_value.has_value()) << source;
    if (tree_value && prog_value) {
        EXPECT_EQ(*tree_value, *prog_value) << source;
    }
    EXPECT_EQ(tree_error, prog_error) << source;
}

TEST(CompiledExpr, EveryExpressionKindMatchesInterpreter) {
    const std::vector<std::pair<std::string, Value>> vars = {
        {"b", Value(true)},     {"c", Value(false)},   {"i", Value(std::int64_t{7})},
        {"j", Value(std::int64_t{-3})}, {"x", Value(2.5)}, {"y", Value(-0.5)},
    };
    const std::vector<std::string> sources = {
        // Literals of every type.
        "true", "false", "42", "2.5", "300 msec",
        // Variables.
        "b", "i", "x",
        // Unary.
        "not b", "not c", "-i", "-x", "-(i + 1)",
        // Arithmetic: integer, real, mixed-width.
        "i + j", "i - j", "i * j", "i / 2", "i mod 2", "x + y", "x * y",
        "x / y", "1 + 2.5", "5 / 2.0", "i + x",
        // Comparisons, including Boolean equality.
        "i < 8", "i <= 7", "i > 8", "i >= 7", "i = 7", "i != 7", "1 = 1.0",
        "b = true", "b != c", "x < y", "x >= y",
        // Connectives (short-circuit) and ite.
        "b and c", "b or c", "b => c", "c => b", "b and i > 0",
        "if b then i else j", "if c then i else j",
        "if i > 0 then x else y",
        // Nested mixtures.
        "(i + 1) * 2 - j mod 2", "not (b and (i < 3 or x > 1.0))",
        "if b and not c then i + 1 else j - 1",
    };
    for (const auto& s : sources) expect_agreement(s, vars);
}

TEST(CompiledExpr, ErrorsMatchInterpreter) {
    expect_agreement("1 / 0");
    expect_agreement("1 mod 0");
    expect_agreement("1.0 / 0.0");
    expect_agreement("i / (i - 7)", {{"i", Value(std::int64_t{7})}});
}

TEST(CompiledExpr, ShortCircuitSkipsErrors) {
    // The unevaluated operand/branch contains a division by zero: both
    // evaluators must skip it identically.
    const std::vector<std::pair<std::string, Value>> vars = {
        {"b", Value(false)}, {"i", Value(std::int64_t{0})}};
    expect_agreement("b and 1 / i = 1", vars);
    expect_agreement("not b or 1 / i = 1", vars);
    expect_agreement("b => 1 / i = 1", vars);
    expect_agreement("if b then 1 / i else 5", vars);
    expect_agreement("if not b then 5 else 1 / i", vars);
}

TEST(CompiledExpr, HashConsingSharesStructurallyEqualPrograms) {
    const std::vector<std::pair<std::string, Value>> vars = {
        {"i", Value(std::int64_t{1})}};
    // Two independently parsed copies of the same expression compile to the
    // SAME program object.
    const expr::ExprPtr a = parse_resolved("i + 1 > 2", vars);
    const expr::ExprPtr b = parse_resolved("i + 1 > 2", vars);
    const expr::ProgramPtr pa = expr::compile(*a);
    const expr::ProgramPtr pb = expr::compile(*b);
    EXPECT_EQ(pa.get(), pb.get());
    EXPECT_EQ(pa->key_hash(), pb->key_hash());
    // A structurally different expression gets a different program.
    const expr::ExprPtr c = parse_resolved("i + 2 > 2", vars);
    EXPECT_NE(expr::compile(*c).get(), pa.get());
}

// --- bundled models: byte-identity of whole analyses -------------------------

struct BundledModel {
    const char* file;
    const char* goal;
    double bound;
};

constexpr BundledModel kBundled[] = {
    {"gps.slim", "gps.measurement", 1800.0},
    {"gps_restart.slim", "gps.measurement", 1800.0},
    {"failover.slim", "failed", 10.0},
    {"sensor_filter_panic.slim", "panicked", 14400.0},
};

std::string model_path(const char* file) {
    return std::string(SLIMSIM_MODELS_DIR) + "/" + file;
}

TEST(CompiledModel, EstimatesAreByteIdenticalToInterpreter) {
    for (const BundledModel& bm : kBundled) {
        eda::Network compiled = eda::build_network_from_file(model_path(bm.file));
        eda::Network reference(compiled.compiled());
        reference.set_reference_interpreter(true);
        const auto prop = sim::make_reachability(compiled.model(), bm.goal, bm.bound);
        const stat::ChernoffHoeffding ch(0.2, 0.1);
        for (const std::uint64_t seed : {1ULL, 42ULL}) {
            const auto fast = sim::estimate(compiled, prop,
                                            sim::StrategyKind::Progressive, ch, seed);
            const auto slow = sim::estimate(reference, prop,
                                            sim::StrategyKind::Progressive, ch, seed);
            EXPECT_EQ(fast.estimate, slow.estimate) << bm.file << " seed " << seed;
            EXPECT_EQ(fast.samples, slow.samples) << bm.file << " seed " << seed;
            EXPECT_EQ(fast.successes, slow.successes) << bm.file << " seed " << seed;
            EXPECT_EQ(fast.terminals, slow.terminals) << bm.file << " seed " << seed;
        }
    }
}

TEST(CompiledModel, EstimatesAreByteIdenticalAcrossWorkerCounts) {
    for (const BundledModel& bm : kBundled) {
        const eda::CompiledModelPtr cm = compile_file(model_path(bm.file));
        AnalysisRequest req;
        req.mode = AnalysisMode::EstimateParallel;
        req.property = sim::make_reachability(cm->model(), bm.goal, bm.bound);
        req.delta = 0.2;
        req.eps = 0.1;
        req.seed = 9;
        // Per-path RNG streams: path j always uses Rng(seed).split(j), so
        // the accepted sample set is a pure function of the seed.
        req.sim.control.deterministic_streams = true;
        std::optional<AnalysisResult> first;
        for (const std::size_t workers : {1U, 2U, 4U}) {
            req.workers = workers;
            const AnalysisResult res = run_analysis(cm, req);
            if (!first) {
                first = res;
                continue;
            }
            EXPECT_EQ(res.value, first->value) << bm.file << " x" << workers;
            EXPECT_EQ(res.estimation.samples, first->estimation.samples)
                << bm.file << " x" << workers;
            EXPECT_EQ(res.estimation.successes, first->estimation.successes)
                << bm.file << " x" << workers;
            EXPECT_EQ(res.estimation.terminals, first->estimation.terminals)
                << bm.file << " x" << workers;
        }
    }
}

TEST(CompiledModel, ReuseAcrossAnalysesIsIdentical) {
    const eda::CompiledModelPtr cm = compile_file(model_path("gps.slim"));
    AnalysisRequest req;
    req.property = sim::make_reachability(cm->model(), "gps.measurement", 1800.0);
    req.delta = 0.2;
    req.eps = 0.1;
    req.seed = 5;
    const AnalysisResult a = run_analysis(cm, req);
    const AnalysisResult b = run_analysis(cm, req);
    EXPECT_EQ(telemetry::deterministic_view(a.report.to_json()).dump(2),
              telemetry::deterministic_view(b.report.to_json()).dump(2));
    EXPECT_TRUE(a.report.compiled_model.present);
    EXPECT_EQ(a.report.compiled_model.content_hash.size(), 16u);
    EXPECT_EQ(a.report.compiled_model.content_hash,
              b.report.compiled_model.content_hash);
    // Hash-consing found duplicates among the model's expressions.
    EXPECT_LE(cm->stats().unique_programs, cm->stats().programs);
    EXPECT_GT(cm->stats().programs, 0u);
}

TEST(CompiledModel, CompilationIsCachedByContentHash) {
    const eda::CompiledModelPtr a = compile_source(models::gps_source(), "a.slim");
    const eda::CompiledModelPtr b = compile_source(models::gps_source(), "b.slim");
    EXPECT_EQ(a.get(), b.get()); // process-wide cache hit
}

TEST(CompiledModel, ContentHashSurvivesReformatting) {
    // The content hash is behavioral: pretty-printing (different layout,
    // same model) must not change it — resuming from a checkpoint accepts a
    // reformatted model file.
    const std::string original = std::string(models::gps_source());
    const std::string printed = slim::print_model(slim::parse_model(original, "m"));
    ASSERT_NE(original, printed);
    const eda::CompiledModelPtr a = compile_source(original, "x.slim");
    const eda::CompiledModelPtr b = compile_source(printed, "y.slim");
    EXPECT_EQ(a->content_hash(), b->content_hash());
}

TEST(CompiledModel, CheckpointRejectsContentHashMismatchNamingFlags) {
    const eda::CompiledModelPtr cm = compile_file(model_path("gps.slim"));
    sim::RunCheckpoint ck;
    ck.seed = 3;
    ck.strategy = "progressive";
    ck.criterion = "chernoff-hoeffding";
    ck.property_hash = sim::fnv1a64("<> [0,1800] gps.measurement");
    ck.model_hash = cm->content_hash() ^ 1; // a behaviorally different model
    try {
        ck.validate(cm->content_hash(), 3, "<> [0,1800] gps.measurement",
                    "progressive", "chernoff-hoeffding", {});
        FAIL() << "mismatched content hash must be rejected";
    } catch (const Error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("--resume"), std::string::npos) << msg;
        EXPECT_NE(msg.find("content hash"), std::string::npos) << msg;
    }
    // The matching hash passes.
    ck.model_hash = cm->content_hash();
    EXPECT_NO_THROW(ck.validate(cm->content_hash(), 3, "<> [0,1800] gps.measurement",
                                "progressive", "chernoff-hoeffding", {}));
}

} // namespace
} // namespace slimsim
