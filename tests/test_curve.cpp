// Tests of shared-path multi-bound curve estimation: the CurveSummary
// bookkeeping (Fenwick tree vs a naive CDF), the simultaneous-confidence
// band math, curve-aware stop criteria, and the engine mode end to end —
// including the property-based cross-check against the empirical CDF of
// per-path hit times and byte-identity across worker counts.
#include "stat/curve.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "api/analysis.hpp"
#include "models/sensor_filter.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace slimsim {
namespace {

TEST(CurveSummary, RejectsBadGrids) {
    EXPECT_THROW(stat::CurveSummary(std::vector<double>{}), Error);
    EXPECT_THROW(stat::CurveSummary({1.0, 1.0}), Error);
    EXPECT_THROW(stat::CurveSummary({2.0, 1.0}), Error);
    EXPECT_THROW(stat::CurveSummary({0.0, 1.0}), Error);
    EXPECT_THROW(stat::CurveSummary({-1.0, 1.0}), Error);
}

TEST(CurveSummary, CountsHitsPerBound) {
    stat::CurveSummary c({1.0, 2.0, 3.0});
    c.add(true, 0.5);  // hit before every bound
    c.add(true, 2.0);  // boundary hit counts at its bound (t <= u)
    c.add(true, 2.5);  // only the last bound
    c.add(false, 3.0); // unsatisfied: no bound
    EXPECT_EQ(c.count(), 4u);
    EXPECT_EQ(c.successes(0), 1u);
    EXPECT_EQ(c.successes(1), 2u);
    EXPECT_EQ(c.successes(2), 3u);
    EXPECT_EQ(c.estimate(1), 0.5);
    const stat::BernoulliSummary s = c.summary(2);
    EXPECT_EQ(s.count, 4u);
    EXPECT_EQ(s.successes, 3u);
}

TEST(CurveSummary, MatchesNaiveCdfOnRandomHits) {
    // Property-based check of the Fenwick bookkeeping against the obvious
    // sorted-hit-times CDF.
    std::vector<double> bounds;
    for (int i = 1; i <= 13; ++i) bounds.push_back(0.37 * i);
    stat::CurveSummary curve(bounds);
    std::vector<double> hits;
    Rng rng(42);
    const std::size_t n = 2000;
    for (std::size_t i = 0; i < n; ++i) {
        const bool satisfied = rng.bernoulli(0.7);
        const double t = rng.uniform(0.0, bounds.back());
        curve.add(satisfied, t);
        if (satisfied) hits.push_back(t);
    }
    std::sort(hits.begin(), hits.end());
    EXPECT_EQ(curve.count(), n);
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        const auto expected = static_cast<std::uint64_t>(
            std::upper_bound(hits.begin(), hits.end(), bounds[i]) - hits.begin());
        EXPECT_EQ(curve.successes(i), expected) << "bound " << bounds[i];
    }
}

TEST(CurveBand, SimultaneousHalfWidths) {
    // DKW needs the same n as a single Chernoff-Hoeffding bound: at
    // n = n_CH(delta, eps) the simultaneous half-width is (just under) eps.
    const std::size_t n = stat::ChernoffHoeffding::sample_count(0.05, 0.02);
    const double dkw = stat::simultaneous_half_width(stat::BandKind::DKW, 0.05, 16, n);
    EXPECT_LE(dkw, 0.02);
    EXPECT_NEAR(dkw, 0.02, 1e-3);
    // The Bonferroni union bound is strictly wider at the same n for K > 1.
    const double bonf =
        stat::simultaneous_half_width(stat::BandKind::Bonferroni, 0.05, 16, n);
    EXPECT_GT(bonf, dkw);
    // Per-bound deltas: DKW is uniform by construction, Bonferroni splits.
    EXPECT_EQ(stat::per_bound_delta(stat::BandKind::DKW, 0.05, 16), 0.05);
    EXPECT_EQ(stat::per_bound_delta(stat::BandKind::Bonferroni, 0.05, 16), 0.05 / 16);
    // No samples yet: the band is vacuous.
    EXPECT_EQ(stat::simultaneous_half_width(stat::BandKind::DKW, 0.05, 16, 0), 1.0);
    EXPECT_EQ(stat::to_string(stat::BandKind::DKW), "dkw");
    EXPECT_EQ(stat::to_string(stat::BandKind::Bonferroni), "bonferroni-chernoff");
}

TEST(CurveCriterion, FixedCountComparesSharedCount) {
    const stat::ChernoffHoeffding ch(0.1, 0.1);
    const std::size_t n = *ch.fixed_sample_count();
    stat::CurveSummary curve({1.0, 2.0});
    for (std::size_t i = 0; i + 1 < n; ++i) curve.add(false, 0.0);
    EXPECT_FALSE(ch.should_stop_curve(curve));
    curve.add(true, 0.5);
    EXPECT_TRUE(ch.should_stop_curve(curve));
}

TEST(CurveCriterion, AdaptiveStopsOnTheWorstBound) {
    // Alternate hits at t = 1.5: bound 1 sees p^ = 0 (tight interval),
    // bound 2 sees p^ = 0.5 (the widest possible). The curve must not stop
    // until the *worst* bound's interval is narrow enough.
    const stat::ChowRobbins chow(0.05, 0.05);
    stat::CurveSummary curve({1.0, 2.0});
    for (std::size_t i = 0; i < 100; ++i) curve.add(i % 2 == 0, 1.5);
    EXPECT_TRUE(chow.should_stop(curve.summary(0)));
    EXPECT_FALSE(chow.should_stop(curve.summary(1)));
    EXPECT_FALSE(chow.should_stop_curve(curve));
    // With a tolerant epsilon the worst bound passes too.
    const stat::ChowRobbins loose(0.05, 0.2);
    EXPECT_TRUE(loose.should_stop_curve(curve));
    EXPECT_EQ(chow.min_sample_count(), 64u);
}

// Engine-mode tests on the sensor/filter model (untimed, so hit times are
// spread over the whole horizon).
struct CurveEngineTest : ::testing::Test {
    eda::Network net =
        eda::build_network_from_source(models::sensor_filter_source(1));
    static constexpr double kBound = 360000.0; // 100 hours

    [[nodiscard]] AnalysisRequest base_request() const {
        AnalysisRequest req;
        req.property =
            sim::make_reachability(net.model(), models::sensor_filter_goal(), kBound);
        req.model_label = "sensor_filter.slim";
        req.delta = 0.1;
        req.eps = 0.05;
        req.seed = 11;
        for (int i = 1; i <= 8; ++i) req.curve_bounds.push_back(kBound * i / 8.0);
        return req;
    }
};

TEST_F(CurveEngineTest, EngineCurveMatchesEmpiricalHitTimeCdf) {
    const AnalysisRequest req = base_request();
    const AnalysisResult res = run_analysis(net, req);
    ASSERT_EQ(res.curve.points.size(), 8u);
    // CH at (delta, eps) = (0.1, 0.05): the DKW band costs no extra samples.
    EXPECT_EQ(res.curve.samples, stat::ChernoffHoeffding::sample_count(0.1, 0.05));

    // Re-simulate the exact per-path streams the engine used and build the
    // empirical CDF of first-hit times by hand.
    const auto strat = sim::make_strategy(sim::StrategyKind::Progressive);
    const sim::PathGenerator gen(net, req.property, *strat, sim::SimOptions{});
    const Rng master(req.seed);
    std::vector<double> hits;
    for (std::uint64_t j = 0; j < res.curve.samples; ++j) {
        Rng rng = master.split(j);
        const sim::PathOutcome out = gen.run(rng);
        if (out.satisfied) hits.push_back(out.end_time);
    }
    std::sort(hits.begin(), hits.end());
    for (std::size_t i = 0; i < res.curve.points.size(); ++i) {
        const auto expected = static_cast<std::uint64_t>(
            std::upper_bound(hits.begin(), hits.end(), req.curve_bounds[i]) -
            hits.begin());
        EXPECT_EQ(res.curve.points[i].successes, expected)
            << "bound " << req.curve_bounds[i];
        EXPECT_EQ(res.curve.points[i].estimate,
                  static_cast<double>(expected) /
                      static_cast<double>(res.curve.samples));
    }
    // Monotone: later bounds can only accumulate more hits.
    for (std::size_t i = 1; i < res.curve.points.size(); ++i) {
        EXPECT_GE(res.curve.points[i].successes, res.curve.points[i - 1].successes);
    }
    // The headline value is the largest bound's estimate.
    EXPECT_EQ(res.value, res.curve.points.back().estimate);
}

TEST_F(CurveEngineTest, ByteIdenticalAcrossWorkerCounts) {
    AnalysisRequest seq = base_request();
    AnalysisRequest par = base_request();
    par.mode = AnalysisMode::EstimateParallel;
    par.workers = 4;
    const AnalysisResult a = run_analysis(net, seq);
    const AnalysisResult b = run_analysis(net, par);
    ASSERT_EQ(a.curve.points.size(), b.curve.points.size());
    EXPECT_EQ(a.curve.samples, b.curve.samples);
    for (std::size_t i = 0; i < a.curve.points.size(); ++i) {
        EXPECT_EQ(a.curve.points[i].bound, b.curve.points[i].bound);
        EXPECT_EQ(a.curve.points[i].successes, b.curve.points[i].successes);
        EXPECT_EQ(a.curve.points[i].estimate, b.curve.points[i].estimate);
    }
    // The serialized curve sections are byte-identical — a stronger claim
    // than the per-fixed-worker-count determinism of plain estimation.
    EXPECT_EQ(a.report.to_json().at("curve").dump(2),
              b.report.to_json().at("curve").dump(2));
    EXPECT_EQ(a.curve.band, "dkw");
    EXPECT_GT(a.curve.simultaneous_eps, 0.0);
}

TEST_F(CurveEngineTest, AdaptiveCriterionIdenticalAcrossWorkerCounts) {
    // Chow-Robbins stops at a data-dependent n; sample-granular ordered
    // draining must land on the same n for any worker count.
    AnalysisRequest seq = base_request();
    seq.criterion = stat::CriterionKind::ChowRobbins;
    AnalysisRequest par = seq;
    par.mode = AnalysisMode::EstimateParallel;
    par.workers = 3;
    const AnalysisResult a = run_analysis(net, seq);
    const AnalysisResult b = run_analysis(net, par);
    EXPECT_EQ(a.curve.samples, b.curve.samples);
    ASSERT_EQ(a.curve.points.size(), b.curve.points.size());
    for (std::size_t i = 0; i < a.curve.points.size(); ++i) {
        EXPECT_EQ(a.curve.points[i].successes, b.curve.points[i].successes);
    }
}

TEST_F(CurveEngineTest, BonferroniBandTightensPerBoundDelta) {
    AnalysisRequest req = base_request();
    req.curve_band = stat::BandKind::Bonferroni;
    const AnalysisResult res = run_analysis(net, req);
    // CH at delta/K needs more samples than at delta.
    EXPECT_EQ(res.curve.samples,
              stat::ChernoffHoeffding::sample_count(0.1 / 8, 0.05));
    EXPECT_EQ(res.curve.band, "bonferroni-chernoff");
}

TEST_F(CurveEngineTest, ReportCarriesCurveSection) {
    const AnalysisResult res = run_analysis(net, base_request());
    const json::Value doc = res.report.to_json();
    ASSERT_NE(doc.find("curve"), nullptr);
    EXPECT_EQ(doc.at("curve").at("points").size(), 8u);
    EXPECT_EQ(doc.at("curve").at("band").as_string(), "dkw");
    // Round-trips through the parser and survives the deterministic view.
    EXPECT_EQ(json::Value::parse(doc.dump(2)), doc);
    EXPECT_NE(telemetry::deterministic_view(doc).find("curve"), nullptr);
    // Curve results render into the human-readable outputs too.
    EXPECT_NE(res.to_string().find("curve over 8 bounds"), std::string::npos);
    EXPECT_NE(res.report.to_text().find("curve ("), std::string::npos);
}

TEST_F(CurveEngineTest, RejectsInvalidRequests) {
    // Descending grid.
    AnalysisRequest req = base_request();
    req.curve_bounds = {2000.0, 1000.0};
    EXPECT_THROW((void)run_analysis(net, req), Error);
    // Bounds beyond the property bound.
    req = base_request();
    req.curve_bounds = {kBound * 2};
    EXPECT_THROW((void)run_analysis(net, req), Error);
    // Non-Reach property.
    req = base_request();
    req.property = sim::make_globally(net.model(), models::sensor_filter_goal(), kBound);
    EXPECT_THROW((void)run_analysis(net, req), Error);
    // Reach with a non-zero lower bound.
    req = base_request();
    req.property = sim::make_reachability_interval(
        net.model(), models::sensor_filter_goal(), 10.0, kBound);
    EXPECT_THROW((void)run_analysis(net, req), Error);
}

} // namespace
} // namespace slimsim
