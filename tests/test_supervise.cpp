// Process-isolated supervision (sim/supervise, docs/supervision.md).
//
// The supervised runners exec SLIMSIM_CLI_PATH as `--worker-mode FD`
// subprocesses, so these tests write the model to a real file (workers
// re-load it from disk) and point SuperviseOptions::worker_exe at the CLI
// binary — the default /proc/self/exe would re-exec the *test* binary.
#include "sim/supervise/supervise.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <unistd.h>

#include "eda/network.hpp"
#include "sim/runner.hpp"
#include "stat/generators.hpp"
#include "support/journal.hpp"
#include "support/metrics.hpp"

namespace slimsim::sim {
namespace {

constexpr const char* kModel = R"(
    root S.I;
    system S
    features broken: out data port bool default false;
    end S;
    system implementation S.I end S.I;
    error model EM
    features ok: initial state; bad: error state;
    end EM;
    error model implementation EM.I
    events f: error event occurrence poisson 0.5 per sec;
    transitions ok -[f]-> bad;
    end EM.I;
    fault injections
      component root uses error model EM.I;
      component root in state bad effect broken := true;
    end fault injections;
)";

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++n;
    return n;
}

struct SuperviseTest : ::testing::Test {
    std::string model_file;
    eda::Network net = eda::build_network_from_source(kModel);
    TimedReachability prop = make_reachability(net.model(), "broken", 2.0);
    // ~600 paths: enough for restart schedules, fast enough to run the
    // whole matrix of process counts under valgrind-ish CI machines.
    stat::ChernoffHoeffding ch{0.1, 0.05};

    void SetUp() override {
        model_file = "supervise_model_" + std::to_string(::getpid()) + ".slim";
        std::ofstream out(model_file);
        out << kModel;
    }
    void TearDown() override { std::remove(model_file.c_str()); }

    [[nodiscard]] supervise::SuperviseOptions options(std::size_t processes) const {
        supervise::SuperviseOptions so;
        so.processes = processes;
        so.worker_exe = SLIMSIM_CLI_PATH;
        so.model_path = model_file;
        so.worker_timeout_seconds = 2.0; // stall detection within one test
        so.backoff_initial_seconds = 0.01;
        return so;
    }
};

void expect_identical(const EstimationResult& a, const EstimationResult& b) {
    EXPECT_EQ(a.estimate, b.estimate);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.terminals, b.terminals);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.stop_cause, b.stop_cause);
    EXPECT_EQ(a.achieved_half_width, b.achieved_half_width);
    EXPECT_EQ(a.path_errors, b.path_errors);
    EXPECT_EQ(a.error_log, b.error_log);
}

void expect_identical(const CurveResult& a, const CurveResult& b) {
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].bound, b.points[i].bound) << "point " << i;
        EXPECT_EQ(a.points[i].successes, b.points[i].successes) << "point " << i;
        EXPECT_EQ(a.points[i].estimate, b.points[i].estimate) << "point " << i;
    }
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.terminals, b.terminals);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.simultaneous_eps, b.simultaneous_eps);
    EXPECT_EQ(a.achieved_half_width, b.achieved_half_width);
}

TEST_F(SuperviseTest, ParseInjectionRoundTrip) {
    const auto crash = supervise::parse_injection("worker-crash@12");
    EXPECT_EQ(crash.kind, supervise::InjectKind::WorkerCrash);
    EXPECT_EQ(crash.path, 12u);
    const auto stall = supervise::parse_injection("worker-stall@0");
    EXPECT_EQ(stall.kind, supervise::InjectKind::WorkerStall);
    const auto corrupt = supervise::parse_injection("frame-corrupt@7");
    EXPECT_EQ(corrupt.kind, supervise::InjectKind::FrameCorrupt);
    for (const char* bad : {"", "worker-crash", "worker-crash@", "worker-crash@x",
                            "meteor-strike@3", "worker-crash@-1"}) {
        try {
            (void)supervise::parse_injection(bad);
            FAIL() << "accepted " << bad;
        } catch (const Error& e) {
            EXPECT_NE(std::string(e.what()).find("--inject"), std::string::npos) << bad;
        }
    }
}

TEST_F(SuperviseTest, ScalarByteIdenticalAcrossProcessCounts) {
    const auto one = supervise::estimate_supervised(net, prop, StrategyKind::Progressive,
                                                    ch, 42, options(1));
    EXPECT_EQ(one.status, RunStatus::Converged);
    EXPECT_GE(one.samples, *ch.fixed_sample_count());
    for (const std::size_t procs : {2u, 4u}) {
        const auto res = supervise::estimate_supervised(
            net, prop, StrategyKind::Progressive, ch, 42, options(procs));
        expect_identical(res, one);
    }
}

TEST_F(SuperviseTest, ScalarMatchesInProcessPerPathRun) {
    // Supervised runs always use per-path RNG streams. The sequential
    // runner switches to the same stream layout whenever checkpointing is
    // active, so a checkpointed in-process run is the byte-identity
    // reference (a plain sequential run draws one continuous stream).
    const std::string ck = "supervise_ref_" + std::to_string(::getpid()) + ".ckpt";
    SimOptions so;
    so.control.checkpoint_path = ck;
    const auto reference =
        estimate(net, prop, StrategyKind::Progressive, ch, 42, so, nullptr);
    std::remove(ck.c_str());
    const auto res = supervise::estimate_supervised(net, prop, StrategyKind::Progressive,
                                                    ch, 42, options(2));
    expect_identical(res, reference);
}

TEST_F(SuperviseTest, CurveByteIdenticalToInProcessAcrossProcessCounts) {
    CurveOptions co;
    co.bounds = {0.5, 1.0, 1.5, 2.0};
    const auto reference = estimate_curve(net, prop, StrategyKind::Progressive, ch, co,
                                          42, SimOptions{}, nullptr);
    for (const std::size_t procs : {1u, 2u, 4u}) {
        const auto res = supervise::estimate_curve_supervised(
            net, prop, StrategyKind::Progressive, ch, co, 42, options(procs));
        expect_identical(res, reference);
    }
}

TEST_F(SuperviseTest, InjectedCrashIsInvisibleInTheResult) {
    const auto clean = supervise::estimate_supervised(net, prop, StrategyKind::Progressive,
                                                      ch, 7, options(2));
    auto so = options(2);
    so.injections = {{supervise::InjectKind::WorkerCrash, 11}};
    telemetry::RunReport report;
    const auto res = supervise::estimate_supervised(net, prop, StrategyKind::Progressive,
                                                    ch, 7, so, &report);
    expect_identical(res, clean);
    EXPECT_EQ(report.supervision.restarts, 1u);
    EXPECT_EQ(report.supervision.injected_faults, 1u);
    ASSERT_EQ(report.supervision.restarts_by_reason.size(), 3u);
    EXPECT_EQ(report.supervision.restarts_by_reason[0].first, "crash");
    EXPECT_EQ(report.supervision.restarts_by_reason[0].second, 1u);
    EXPECT_GT(report.supervision.reassigned_paths, 0u);
}

TEST_F(SuperviseTest, InjectedStallIsInvisibleInTheResult) {
    const auto clean = supervise::estimate_supervised(net, prop, StrategyKind::Progressive,
                                                      ch, 7, options(2));
    auto so = options(2);
    so.worker_timeout_seconds = 0.5; // keep the stall detection fast
    so.injections = {{supervise::InjectKind::WorkerStall, 24}};
    telemetry::RunReport report;
    const auto res = supervise::estimate_supervised(net, prop, StrategyKind::Progressive,
                                                    ch, 7, so, &report);
    expect_identical(res, clean);
    EXPECT_EQ(report.supervision.restarts, 1u);
    EXPECT_EQ(report.supervision.restarts_by_reason[1].first, "stall");
    EXPECT_EQ(report.supervision.restarts_by_reason[1].second, 1u);
}

TEST_F(SuperviseTest, InjectedCorruptFrameIsInvisibleInTheResult) {
    const auto clean = supervise::estimate_supervised(net, prop, StrategyKind::Progressive,
                                                      ch, 7, options(2));
    auto so = options(2);
    so.injections = {{supervise::InjectKind::FrameCorrupt, 16}};
    telemetry::RunReport report;
    const auto res = supervise::estimate_supervised(net, prop, StrategyKind::Progressive,
                                                    ch, 7, so, &report);
    expect_identical(res, clean);
    EXPECT_EQ(report.supervision.restarts, 1u);
    EXPECT_EQ(report.supervision.restarts_by_reason[2].first, "corrupt-frame");
    EXPECT_EQ(report.supervision.restarts_by_reason[2].second, 1u);
}

TEST_F(SuperviseTest, CrashScheduleDrivesJournalAndMetricsExactly) {
    metrics::Registry registry(2);
    journal::Journal journal(journal::Level::Debug);
    auto so = options(2);
    so.worker_timeout_seconds = 0.5;
    so.injections = {{supervise::InjectKind::WorkerCrash, 11},
                     {supervise::InjectKind::WorkerStall, 24}};
    so.sim.metrics = &registry;
    so.sim.journal = &journal;
    telemetry::RunReport report;
    const auto res = supervise::estimate_supervised(net, prop, StrategyKind::Progressive,
                                                    ch, 7, so, &report);
    EXPECT_EQ(res.status, RunStatus::Converged);
    EXPECT_EQ(report.supervision.restarts, 2u);
    EXPECT_EQ(report.supervision.spawns, 4u); // 2 initial + 2 restarts

    const std::string events = journal.to_jsonl(false);
    EXPECT_EQ(count_occurrences(events, "\"event\":\"worker_spawn\""), 4u);
    EXPECT_EQ(count_occurrences(events, "\"event\":\"worker_lost\""), 2u);
    EXPECT_EQ(count_occurrences(events, "\"event\":\"worker_restart\""), 2u);
    EXPECT_EQ(count_occurrences(events, "\"event\":\"range_reassigned\""), 2u);

    const std::string prom = registry.expose();
    EXPECT_NE(
        prom.find("slimsim_supervisor_restarts_total{reason=\"crash\"} 1"),
        std::string::npos)
        << prom;
    EXPECT_NE(
        prom.find("slimsim_supervisor_restarts_total{reason=\"stall\"} 1"),
        std::string::npos)
        << prom;
    EXPECT_NE(
        prom.find("slimsim_supervisor_restarts_total{reason=\"corrupt-frame\"} 0"),
        std::string::npos)
        << prom;
}

TEST_F(SuperviseTest, ExhaustedRetriesDegradeToPartialResult) {
    auto so = options(2);
    so.worker_retries = 1;
    // Both crashes land on worker slot 0 (even global indices with k = 2):
    // the first consumes the only allowed restart, the second exhausts it.
    so.injections = {{supervise::InjectKind::WorkerCrash, 2},
                     {supervise::InjectKind::WorkerCrash, 6}};
    telemetry::RunReport report;
    EstimationResult res;
    ASSERT_NO_THROW(res = supervise::estimate_supervised(
                        net, prop, StrategyKind::Progressive, ch, 7, so, &report));
    EXPECT_EQ(res.status, RunStatus::Degraded);
    EXPECT_NE(res.stop_cause.find("exhausted"), std::string::npos) << res.stop_cause;
    // Partial result: everything before the permanently lost path index.
    EXPECT_GT(res.samples, 0u);
    EXPECT_LT(res.samples, *ch.fixed_sample_count());
    EXPECT_EQ(report.run_status.status, "degraded");
}

TEST_F(SuperviseTest, ReportCarriesSupervisionSection) {
    telemetry::RunReport report;
    (void)supervise::estimate_supervised(net, prop, StrategyKind::Progressive, ch, 7,
                                         options(3), &report);
    EXPECT_TRUE(report.supervision.enabled);
    EXPECT_EQ(report.supervision.processes, 3u);
    EXPECT_EQ(report.supervision.spawns, 3u);
    EXPECT_EQ(report.supervision.restarts, 0u);
    EXPECT_EQ(report.supervision.worker_retries, 3u);
    const std::string json = report.to_json().dump();
    EXPECT_NE(json.find("\"supervision\""), std::string::npos);
    EXPECT_NE(json.find("\"version\":6"), std::string::npos);
}

TEST_F(SuperviseTest, RejectsUnsupportedConfigurations) {
    auto so = options(0);
    EXPECT_THROW((void)supervise::estimate_supervised(net, prop,
                                                      StrategyKind::Progressive, ch, 1, so),
                 Error);
    so = options(1);
    so.model_path.clear();
    EXPECT_THROW((void)supervise::estimate_supervised(net, prop,
                                                      StrategyKind::Progressive, ch, 1, so),
                 Error);
    so = options(1);
    so.sim.coverage = true;
    EXPECT_THROW((void)supervise::estimate_supervised(net, prop,
                                                      StrategyKind::Progressive, ch, 1, so),
                 Error);
}

TEST_F(SuperviseTest, ModelMismatchAbortsTheRun) {
    // The worker verifies the model's content hash against the
    // coordinator's before simulating anything.
    {
        std::string drifted(kModel);
        const std::size_t rate = drifted.find("poisson 0.5");
        ASSERT_NE(rate, std::string::npos);
        drifted.replace(rate, 11, "poisson 0.75");
        std::ofstream out(model_file);
        out << drifted;
    }
    EXPECT_THROW((void)supervise::estimate_supervised(net, prop,
                                                      StrategyKind::Progressive, ch, 1,
                                                      options(1)),
                 Error);
}

} // namespace
} // namespace slimsim::sim
