#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace slimsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, Uniform01InRange) {
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, Uniform01Mean) {
    Rng rng(9);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.uniform01();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(2.0, 7.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LE(u, 7.0);
    }
    EXPECT_DOUBLE_EQ(rng.uniform(3.0, 3.0), 3.0); // degenerate interval
}

TEST(Rng, UniformIndexCoversAllValues) {
    Rng rng(21);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexUnbiased) {
    Rng rng(33);
    std::array<int, 5> counts{};
    const int n = 50000;
    for (int i = 0; i < n; ++i) counts[rng.uniform_index(5)]++;
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
    }
}

TEST(Rng, ExponentialMeanMatchesRate) {
    Rng rng(41);
    const double rate = 2.5;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialMemorylessQuantile) {
    // P(X > t) == exp(-rate t): check the median.
    Rng rng(43);
    const double rate = 1.0;
    const double median = std::log(2.0) / rate;
    int above = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.exponential(rate) > median) ++above;
    }
    EXPECT_NEAR(static_cast<double>(above) / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency) {
    Rng rng(51);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
    Rng r2(52);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r2.bernoulli(0.0));
        EXPECT_TRUE(r2.bernoulli(1.0));
    }
}

TEST(Rng, SplitIsDeterministic) {
    const Rng parent(99);
    Rng a = parent.split(3);
    Rng b = parent.split(3);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitStreamsAreDecorrelated) {
    const Rng parent(99);
    Rng a = parent.split(0);
    Rng b = parent.split(1);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, SplitDiffersFromParent) {
    Rng parent(7);
    Rng child = parent.split(0);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (parent() == child()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

// Parameterized: each split stream passes the same basic statistics.
class SplitStreams : public ::testing::TestWithParam<int> {};

TEST_P(SplitStreams, UniformMean) {
    Rng stream = Rng(1234).split(static_cast<std::uint64_t>(GetParam()));
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += stream.uniform01();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Workers, SplitStreams, ::testing::Range(0, 16));

} // namespace
} // namespace slimsim
