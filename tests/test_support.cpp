#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "support/diagnostics.hpp"
#include "support/memprobe.hpp"
#include "support/thread_pool.hpp"

namespace slimsim {
namespace {

TEST(Diagnostics, SourceLocFormatting) {
    EXPECT_EQ((SourceLoc{"f.slim", 3, 7}).to_string(), "f.slim:3:7");
    EXPECT_EQ((SourceLoc{"", 3, 7}).to_string(), "<input>:3:7");
    EXPECT_EQ((SourceLoc{"f.slim", 0, 0}).to_string(), "f.slim");
    EXPECT_EQ((SourceLoc{}).to_string(), "<unknown>");
    EXPECT_FALSE(SourceLoc{}.known());
    EXPECT_TRUE((SourceLoc{"x", 1, 1}).known());
}

TEST(Diagnostics, ErrorCarriesLocation) {
    const Error plain("boom");
    EXPECT_STREQ(plain.what(), "boom");
    const Error located(SourceLoc{"m.slim", 2, 4}, "bad token");
    EXPECT_NE(std::string(located.what()).find("m.slim:2:4"), std::string::npos);
    EXPECT_EQ(located.where().line, 2u);
}

TEST(Diagnostics, SinkCollectsAndThrows) {
    DiagnosticSink sink;
    sink.note({}, "fyi");
    sink.warning({}, "hmm");
    EXPECT_FALSE(sink.has_errors());
    EXPECT_NO_THROW(sink.throw_if_errors("phase"));
    sink.error({}, "first");
    sink.error({"f", 1, 1}, "second");
    EXPECT_EQ(sink.error_count(), 2u);
    EXPECT_EQ(sink.all().size(), 4u);
    try {
        sink.throw_if_errors("testing");
        FAIL();
    } catch (const Error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("testing failed with 2 error(s)"), std::string::npos);
        EXPECT_NE(msg.find("first"), std::string::npos);
        EXPECT_NE(msg.find("second"), std::string::npos);
    }
}

TEST(Diagnostics, SeverityToString) {
    EXPECT_EQ(to_string(Severity::Note), "note");
    EXPECT_EQ(to_string(Severity::Warning), "warning");
    EXPECT_EQ(to_string(Severity::Error), "error");
    const Diagnostic d{Severity::Warning, {"f", 1, 2}, "msg"};
    EXPECT_EQ(d.to_string(), "f:1:2: warning: msg");
}

TEST(MemProbe, ReportsPlausibleValues) {
    const std::size_t current = current_rss_bytes();
    const std::size_t peak = peak_rss_bytes();
    EXPECT_GT(current, 1u << 20); // more than 1 MiB resident
    EXPECT_GE(peak, current / 2); // peak cannot be far below current
    EXPECT_NEAR(bytes_to_mib(1024 * 1024), 1.0, 1e-12);
}

TEST(MemProbe, GrowsWithAllocation) {
    const std::size_t before = current_rss_bytes();
    std::vector<char> hog(64u << 20, 1); // 64 MiB, touched
    const std::size_t after = current_rss_bytes();
    EXPECT_GT(after, before + (32u << 20));
}

TEST(ThreadPool, RunsAllTasks) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 1000; ++i) {
        pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 1000);
    EXPECT_EQ(pool.worker_count(), 4u);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
    ThreadPool pool(2);
    pool.wait_idle(); // must not hang
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; });
    pool.wait_idle();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsQueue) {
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i) {
            pool.submit([&counter] { counter.fetch_add(1); });
        }
        // no wait_idle: the destructor joins after draining
    }
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, TasksRunConcurrentlyOnDistinctThreads) {
    ThreadPool pool(4);
    std::mutex m;
    std::set<std::thread::id> ids;
    for (int i = 0; i < 200; ++i) {
        pool.submit([&] {
            std::lock_guard lock(m);
            ids.insert(std::this_thread::get_id());
        });
    }
    pool.wait_idle();
    EXPECT_GE(ids.size(), 1u);
    EXPECT_LE(ids.size(), 4u);
}

} // namespace
} // namespace slimsim
