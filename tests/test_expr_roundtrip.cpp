// Property-based round-trip: random typed expressions survive
// to_string -> parse -> resolve with identical evaluation results.
#include <gtest/gtest.h>

#include "expr/eval.hpp"
#include "slim/parser.hpp"
#include "slim/resolver.hpp"
#include "support/rng.hpp"

namespace slimsim {
namespace {

using expr::BinaryOp;
using expr::ExprPtr;
using expr::UnaryOp;

class RoundTrip : public ::testing::TestWithParam<int> {
protected:
    RoundTrip() {
        add("flag", Type::boolean());
        add("armed", Type::boolean());
        add("n", Type::integer());
        add("m", Type::integer_range(-5, 5));
        add("x", Type::real());
        add("y", Type::real());
    }

    void add(const std::string& name, Type type) {
        slim::Symbol sym;
        sym.name = name;
        sym.kind = slim::SymKind::Data;
        sym.type = type;
        table_.add(std::move(sym));
        types_.push_back(type);
        names_.push_back(name);
    }

    ExprPtr gen_numeric(Rng& rng, int depth) {
        if (depth <= 0 || rng.bernoulli(0.3)) {
            switch (rng.uniform_index(3)) {
            case 0:
                return expr::make_int(static_cast<std::int64_t>(rng.uniform_index(10)));
            case 1:
                // Multiples of 0.25 print exactly and re-parse bit-identically.
                return expr::make_real(0.25 * static_cast<double>(rng.uniform_index(40)));
            default: {
                // A numeric variable.
                const std::size_t pick = 2 + rng.uniform_index(4);
                return expr::make_var(names_[pick]);
            }
            }
        }
        switch (rng.uniform_index(4)) {
        case 0:
            return expr::make_binary(BinaryOp::Add, gen_numeric(rng, depth - 1),
                                     gen_numeric(rng, depth - 1));
        case 1:
            return expr::make_binary(BinaryOp::Sub, gen_numeric(rng, depth - 1),
                                     gen_numeric(rng, depth - 1));
        case 2:
            return expr::make_binary(BinaryOp::Mul, gen_numeric(rng, depth - 1),
                                     gen_numeric(rng, depth - 1));
        default:
            return expr::make_unary(UnaryOp::Neg, gen_numeric(rng, depth - 1));
        }
    }

    ExprPtr gen_bool(Rng& rng, int depth) {
        if (depth <= 0 || rng.bernoulli(0.25)) {
            switch (rng.uniform_index(3)) {
            case 0: return expr::make_bool(rng.bernoulli(0.5));
            case 1: return expr::make_var("flag");
            default: return expr::make_var("armed");
            }
        }
        switch (rng.uniform_index(6)) {
        case 0:
            return expr::make_binary(BinaryOp::And, gen_bool(rng, depth - 1),
                                     gen_bool(rng, depth - 1));
        case 1:
            return expr::make_binary(BinaryOp::Or, gen_bool(rng, depth - 1),
                                     gen_bool(rng, depth - 1));
        case 2:
            return expr::make_unary(UnaryOp::Not, gen_bool(rng, depth - 1));
        case 3: {
            static constexpr BinaryOp kCmp[] = {BinaryOp::Lt, BinaryOp::Le, BinaryOp::Gt,
                                                BinaryOp::Ge, BinaryOp::Eq, BinaryOp::Ne};
            return expr::make_binary(kCmp[rng.uniform_index(6)],
                                     gen_numeric(rng, depth - 1),
                                     gen_numeric(rng, depth - 1));
        }
        case 4:
            return expr::make_binary(BinaryOp::Implies, gen_bool(rng, depth - 1),
                                     gen_bool(rng, depth - 1));
        default:
            return expr::make_ite(gen_bool(rng, depth - 1), gen_bool(rng, depth - 1),
                                  gen_bool(rng, depth - 1));
        }
    }

    std::vector<Value> random_values(Rng& rng) {
        std::vector<Value> vals;
        vals.push_back(Value(rng.bernoulli(0.5)));
        vals.push_back(Value(rng.bernoulli(0.5)));
        vals.push_back(Value(static_cast<std::int64_t>(rng.uniform_index(20)) - 10));
        vals.push_back(Value(static_cast<std::int64_t>(rng.uniform_index(11)) - 5));
        vals.push_back(Value(0.5 * static_cast<double>(rng.uniform_index(20)) - 5.0));
        vals.push_back(Value(0.5 * static_cast<double>(rng.uniform_index(20)) - 5.0));
        return vals;
    }

    slim::SymbolTable table_;
    std::vector<Type> types_;
    std::vector<std::string> names_;
};

TEST_P(RoundTrip, PrintParseEvalAgree) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337 + 11);
    for (int trial = 0; trial < 40; ++trial) {
        ExprPtr original = gen_bool(rng, 4);
        DiagnosticSink sink;
        slim::resolve_expr(*original, table_, sink);
        ASSERT_FALSE(sink.has_errors());

        const std::string printed = original->to_string();
        ExprPtr reparsed;
        ASSERT_NO_THROW(reparsed = slim::parse_expression(printed)) << printed;
        DiagnosticSink sink2;
        slim::resolve_expr(*reparsed, table_, sink2);
        ASSERT_FALSE(sink2.has_errors()) << printed;

        for (int v = 0; v < 10; ++v) {
            const std::vector<Value> vals = random_values(rng);
            const expr::EvalContext ctx{vals, {}};
            EXPECT_EQ(expr::evaluate(*original, ctx), expr::evaluate(*reparsed, ctx))
                << printed;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip, ::testing::Range(1, 17));

} // namespace
} // namespace slimsim
