// Tests of the live run introspection surface (docs/observability.md): the
// sharded metrics registry, the shared Prometheus exposition writer, the
// embedded HTTP exporter, and the end-to-end /metrics + /status + /healthz
// serve path through run_analysis — including the invariant that serving
// never perturbs estimation results.
#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/analysis.hpp"
#include "support/http_server.hpp"
#include "support/journal.hpp"
#include "support/metrics_text.hpp"
#include "support/thread_pool.hpp"

namespace slimsim {
namespace {

using metrics::Registry;

// --- exposition writer ------------------------------------------------------

TEST(Exposition, LabelEscaping) {
    EXPECT_EQ(metrics::label_escape("plain"), "plain");
    EXPECT_EQ(metrics::label_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(metrics::label_escape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(metrics::label_escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(metrics::label("model", "a\"b"), "model=\"a\\\"b\"");
}

TEST(Exposition, HelpPrecedesTypeAndIsOptional) {
    metrics::Exposition x;
    x.family("with_help_total", "counter", "Documented.");
    x.sample("", "1");
    x.family("bare_gauge", "gauge");
    x.sample("", "2");
    const std::string text = x.take();
    EXPECT_EQ(text, "# HELP with_help_total Documented.\n"
                    "# TYPE with_help_total counter\n"
                    "with_help_total 1\n"
                    "# TYPE bare_gauge gauge\n"
                    "bare_gauge 2\n");
}

// --- registry ---------------------------------------------------------------

TEST(MetricsRegistry, CounterNamesMustEndInTotal) {
    Registry reg;
    EXPECT_THROW((void)reg.counter("bad_name", "help"), Error);
    EXPECT_NO_THROW((void)reg.counter("good_name_total", "help"));
}

TEST(MetricsRegistry, ReRegistrationReturnsTheSameInstrument) {
    Registry reg;
    metrics::Counter& a = reg.counter("x_total", "help");
    metrics::Counter& b = reg.counter("x_total", "help");
    EXPECT_EQ(&a, &b);
    a.add(0, 3);
    EXPECT_EQ(b.total(), 3u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
    Registry reg;
    (void)reg.counter("x_total", "help");
    EXPECT_THROW((void)reg.gauge("x_total", "help"), Error);
    EXPECT_THROW((void)reg.histogram("x_total", "help", metrics::time_buckets()),
                 Error);
}

// The exposition must not depend on how work was distributed over shards:
// the same logical counts spread over 1, 2 or 4 shards render byte-identical
// text. This is what makes the /metrics document stable across worker counts
// for deterministic quantities.
TEST(MetricsRegistry, ShardMergeIsDeterministic) {
    std::vector<std::string> exposed;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        Registry reg(shards);
        metrics::Counter& paths = reg.counter("paths_total", "Paths.");
        metrics::Counter& fires =
            reg.counter("fires_total", "Fires.", metrics::label("kind", "markovian"));
        metrics::Histogram& h =
            reg.histogram("latency_seconds", "Latency.", metrics::time_buckets());
        for (std::size_t i = 0; i < 100; ++i) {
            const std::size_t shard = i % shards;
            paths.add(shard);
            fires.add(shard, 2);
            h.observe(shard, 1e-5 * static_cast<double>(1 + i % 7));
        }
        reg.gauge("depth", "Depth.").set(42.0);
        exposed.push_back(reg.expose());
    }
    EXPECT_EQ(exposed[0], exposed[1]);
    EXPECT_EQ(exposed[0], exposed[2]);
    EXPECT_NE(exposed[0].find(metrics::kRuntimeMarker), std::string::npos);
    EXPECT_NE(exposed[0].find("paths_total 100"), std::string::npos);
    EXPECT_NE(exposed[0].find("fires_total{kind=\"markovian\"} 200"),
              std::string::npos);
    EXPECT_NE(exposed[0].find("depth 42"), std::string::npos);
}

// --- histogram math ---------------------------------------------------------

TEST(MetricsHistogram, TimeBucketsAreStrictlyAscending) {
    const std::span<const double> bounds = metrics::time_buckets();
    ASSERT_GE(bounds.size(), 2u);
    for (std::size_t i = 1; i < bounds.size(); ++i) {
        EXPECT_LT(bounds[i - 1], bounds[i]);
    }
}

TEST(MetricsHistogram, ObservationsLandInLeBuckets) {
    const double bounds[] = {0.1, 1.0, 10.0};
    metrics::Histogram h(1, bounds);
    h.observe(0, 0.05); // <= 0.1
    h.observe(0, 0.1);  // le semantics: exactly on the bound stays in it
    h.observe(0, 0.5);  // <= 1.0
    h.observe(0, 100.0); // +Inf
    const std::vector<std::uint64_t> totals = h.bucket_totals();
    ASSERT_EQ(totals.size(), 4u);
    EXPECT_EQ(totals[0], 2u);
    EXPECT_EQ(totals[1], 1u);
    EXPECT_EQ(totals[2], 0u);
    EXPECT_EQ(totals[3], 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_NEAR(h.sum(), 100.65, 1e-6);
}

TEST(MetricsHistogram, ExpositionSeriesAreCumulative) {
    Registry reg;
    const double bounds[] = {1.0, 2.0};
    metrics::Histogram& h = reg.histogram("work_seconds", "Work.", bounds);
    h.observe(0, 0.5);
    h.observe(0, 1.5);
    h.observe(0, 9.0);
    const std::string text = reg.expose();
    EXPECT_NE(text.find("# TYPE work_seconds histogram"), std::string::npos);
    EXPECT_NE(text.find("work_seconds_bucket{le=\"1\"} 1"), std::string::npos);
    EXPECT_NE(text.find("work_seconds_bucket{le=\"2\"} 2"), std::string::npos);
    EXPECT_NE(text.find("work_seconds_bucket{le=\"+Inf\"} 3"), std::string::npos);
    EXPECT_NE(text.find("work_seconds_count 3"), std::string::npos);
    EXPECT_NE(text.find("work_seconds_sum 11"), std::string::npos);
}

// --- thread pool instrumentation --------------------------------------------

TEST(ThreadPoolMetrics, RecordsOneObservationPerTask) {
    Registry reg(4);
    {
        ThreadPool pool(4, nullptr, &reg);
        for (int i = 0; i < 32; ++i) {
            pool.submit([] { std::this_thread::yield(); });
        }
        pool.wait_idle();
    }
    metrics::Histogram& h = reg.histogram("slimsim_pool_task_seconds", "",
                                          metrics::time_buckets());
    EXPECT_EQ(h.count(), 32u);
}

// --- HTTP server ------------------------------------------------------------

/// Minimal blocking HTTP client for loopback tests: one GET, returns the
/// full response (status line + headers + body).
std::string http_get(std::uint16_t port, const std::string& path,
                     const std::string& method = "GET") {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
        << std::strerror(errno);
    const std::string req = method + " " + path + " HTTP/1.1\r\n"
                            "Host: 127.0.0.1\r\nConnection: close\r\n\r\n";
    EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
              static_cast<ssize_t>(req.size()));
    std::string out;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) break;
        out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
}

std::string body_of(const std::string& response) {
    const std::size_t sep = response.find("\r\n\r\n");
    return sep == std::string::npos ? std::string() : response.substr(sep + 4);
}

TEST(HttpServer, ServesRoutesAndErrorCodes) {
    http::Server server;
    const std::uint16_t port =
        server.start(0, [](const http::Request& req) -> http::Response {
            if (req.path == "/hello") {
                return {200, "text/plain; charset=utf-8", "world\n"};
            }
            if (req.path == "/echo-query") {
                return {200, "text/plain; charset=utf-8", req.query + "\n"};
            }
            return {404, "text/plain; charset=utf-8", "not found\n"};
        });
    ASSERT_GT(port, 0);
    EXPECT_EQ(server.port(), port);

    const std::string ok = http_get(port, "/hello");
    EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(ok.find("Content-Type: text/plain; charset=utf-8"),
              std::string::npos);
    EXPECT_EQ(body_of(ok), "world\n");

    // Query strings are stripped from the routed path and handed to the
    // handler separately.
    EXPECT_EQ(body_of(http_get(port, "/hello?x=1")), "world\n");
    EXPECT_EQ(body_of(http_get(port, "/echo-query?tail=5&x=1")), "tail=5&x=1\n");

    const std::string missing = http_get(port, "/missing");
    EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);
    // Error responses still carry a Content-Type.
    EXPECT_NE(missing.find("Content-Type: text/plain; charset=utf-8"),
              std::string::npos);

    server.stop();
    server.stop(); // idempotent
}

TEST(HttpServer, HeadReturnsHeadersWithoutBody) {
    http::Server server;
    const std::uint16_t port =
        server.start(0, [](const http::Request&) -> http::Response {
            return {200, "text/plain; charset=utf-8", "world\n"};
        });
    ASSERT_GT(port, 0);
    const std::string head = http_get(port, "/hello", "HEAD");
    EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
    // Content-Length reflects the would-be GET body, but no body follows.
    EXPECT_NE(head.find("Content-Length: 6"), std::string::npos) << head;
    EXPECT_EQ(body_of(head), "");
    server.stop();
}

TEST(HttpServer, UnsupportedMethodsGet405WithAllow) {
    http::Server server;
    const std::uint16_t port =
        server.start(0, [](const http::Request&) -> http::Response {
            return {200, "text/plain; charset=utf-8", "world\n"};
        });
    ASSERT_GT(port, 0);
    for (const char* method : {"POST", "PUT", "DELETE"}) {
        const std::string res = http_get(port, "/hello", method);
        EXPECT_NE(res.find("HTTP/1.1 405"), std::string::npos) << method;
        EXPECT_NE(res.find("Allow: GET, HEAD"), std::string::npos) << method;
        EXPECT_NE(res.find("Content-Type: text/plain; charset=utf-8"),
                  std::string::npos)
            << method;
    }
    server.stop();
}

TEST(HttpServer, EphemeralPortsAreIndependent) {
    http::Server a;
    http::Server b;
    const std::uint16_t pa = a.start(
        0, [](const http::Request&) -> http::Response { return {200, "t", "a"}; });
    const std::uint16_t pb = b.start(
        0, [](const http::Request&) -> http::Response { return {200, "t", "b"}; });
    EXPECT_NE(pa, pb);
    EXPECT_EQ(body_of(http_get(pa, "/")), "a");
    EXPECT_EQ(body_of(http_get(pb, "/")), "b");
}

// --- end-to-end through run_analysis ---------------------------------------

// Markovian single-fault model: P( <> [0,2] broken ) = 1 - e^{-1}.
constexpr const char* kModel = R"(
    root S.I;
    system S
    features broken: out data port bool default false;
    end S;
    system implementation S.I end S.I;
    error model EM
    features ok: initial state; bad: error state;
    end EM;
    error model implementation EM.I
    events f: error event occurrence poisson 0.5 per sec;
    transitions ok -[f]-> bad;
    end EM.I;
    fault injections
      component root uses error model EM.I;
      component root in state bad effect broken := true;
    end fault injections;
)";

struct ServeAnalysisTest : ::testing::Test {
    eda::Network net = eda::build_network_from_source(kModel);

    [[nodiscard]] AnalysisRequest base_request() const {
        AnalysisRequest req;
        req.property = sim::make_reachability(net.model(), "broken", 2.0);
        req.model_label = "fault.slim";
        req.delta = 0.1;
        req.eps = 0.05;
        req.seed = 7;
        return req;
    }
};

/// Lints a /metrics document: every # TYPE names a known kind, HELP (when
/// present) directly precedes its TYPE, counters end in _total, histogram
/// sample names carry the _bucket/_sum/_count suffixes.
void lint_exposition(const std::string& text) {
    std::string prev_help_family;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.rfind("# HELP ", 0) == 0) {
            prev_help_family = line.substr(7, line.find(' ', 7) - 7);
            continue;
        }
        if (line.rfind("# TYPE ", 0) == 0) {
            const std::size_t sp = line.find(' ', 7);
            ASSERT_NE(sp, std::string::npos) << line;
            const std::string name = line.substr(7, sp - 7);
            const std::string kind = line.substr(sp + 1);
            EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
                << line;
            if (kind == "counter") {
                EXPECT_TRUE(name.size() > 6 &&
                            name.substr(name.size() - 6) == "_total")
                    << line;
            }
            if (!prev_help_family.empty()) {
                EXPECT_EQ(prev_help_family, name)
                    << "# HELP must directly precede its # TYPE: " << line;
            }
        }
        prev_help_family.clear();
    }
}

TEST_F(ServeAnalysisTest, EndpointsServeDuringAnInFlightRun) {
    std::atomic<bool> stop{false};
    std::atomic<std::uint16_t> port{0};

    AnalysisRequest req = base_request();
    req.workers = 2;
    req.mode = AnalysisMode::EstimateParallel;
    // A criterion far beyond reach: the run ends via the interrupt flag once
    // the endpoints have been exercised mid-flight.
    req.eps = 1e-5;
    req.sim.control.interrupt = &stop;
    req.serve.enabled = true;
    req.serve.port = 0;
    req.serve.on_bound = [&port](std::uint16_t p) { port.store(p); };

    AnalysisResult res;
    std::thread runner([&] { res = run_analysis(net, req); });
    while (port.load() == 0) std::this_thread::yield();

    EXPECT_EQ(body_of(http_get(port.load(), "/healthz")), "ok\n");

    // Poll /status until the run has consumed samples; then the snapshot
    // carries a live estimate and half-width.
    std::string status;
    for (int i = 0; i < 2000; ++i) {
        status = body_of(http_get(port.load(), "/status"));
        if (status.find("\"samples\":0") == std::string::npos &&
            status.find("\"progress\":null") == std::string::npos) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_NE(status.find("\"status\":\"running\""), std::string::npos) << status;
    EXPECT_NE(status.find("\"mode\":\"estimate-parallel\""), std::string::npos);
    EXPECT_NE(status.find("\"half_width\":"), std::string::npos);
    EXPECT_NE(status.find("\"content_hash\":"), std::string::npos);

    const std::string full = http_get(port.load(), "/metrics");
    EXPECT_NE(full.find("text/plain; version=0.0.4"), std::string::npos);
    const std::string scrape = body_of(full);
    EXPECT_NE(scrape.find(metrics::kRuntimeMarker), std::string::npos);
    EXPECT_NE(scrape.find("slimsim_paths_started_total"), std::string::npos);
    EXPECT_NE(scrape.find("slimsim_live_samples"), std::string::npos);
    EXPECT_NE(scrape.find("slimsim_path_seconds_bucket"), std::string::npos);
    lint_exposition(scrape);

    stop.store(true);
    runner.join();
    EXPECT_EQ(res.estimation.status, sim::RunStatus::Interrupted);
    EXPECT_GT(res.estimation.samples, 0u);
}

// Race detector fodder: scraper threads hammer every endpoint — /metrics,
// /status, /series and /journal — while the run is in flight AND while the
// interrupt flag drains it, so shard reads, the status board, the series
// ring and the journal all race the engine's writes and the shutdown path.
// The assertions are deliberately weak; under -DSLIMSIM_SANITIZE=thread this
// test is what proves the introspection surface data-race-free.
TEST_F(ServeAnalysisTest, ConcurrentScrapesRaceAnInterruptDrainedRun) {
    std::atomic<bool> stop{false};
    std::atomic<std::uint16_t> port{0};
    journal::Journal journal(journal::Level::Trace);

    AnalysisRequest req = base_request();
    req.workers = 2;
    req.mode = AnalysisMode::EstimateParallel;
    req.eps = 1e-5; // unreachable: the interrupt flag ends the run
    req.sim.control.interrupt = &stop;
    req.journal = &journal;
    req.serve.enabled = true;
    req.serve.port = 0;
    req.serve.on_bound = [&port](std::uint16_t p) { port.store(p); };

    AnalysisResult res;
    std::thread runner([&] { res = run_analysis(net, req); });
    while (port.load() == 0) std::this_thread::yield();

    // Tolerant scrape client: the server may shut down mid-loop once the
    // drain completes, so connect failures just end the scraper.
    auto try_get = [](std::uint16_t p, const char* path) -> std::string {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return {};
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(p);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
            ::close(fd);
            return {};
        }
        const std::string req = std::string("GET ") + path + " HTTP/1.1\r\n"
                                "Host: 127.0.0.1\r\nConnection: close\r\n\r\n";
        if (::send(fd, req.data(), req.size(), 0) !=
            static_cast<ssize_t>(req.size())) {
            ::close(fd);
            return {};
        }
        std::string out;
        char buf[4096];
        for (;;) {
            const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
            if (n <= 0) break;
            out.append(buf, static_cast<std::size_t>(n));
        }
        ::close(fd);
        return out;
    };

    std::atomic<bool> scrape_done{false};
    std::vector<std::thread> scrapers;
    const char* paths[] = {"/metrics", "/status", "/series", "/journal?tail=8"};
    for (const char* path : paths) {
        scrapers.emplace_back([&, path] {
            std::size_t hits = 0;
            while (!scrape_done.load()) {
                const std::string r = try_get(port.load(), path);
                if (r.empty()) break; // server shut down
                EXPECT_NE(r.find("HTTP/1.1 200"), std::string::npos) << path;
                ++hits;
            }
            EXPECT_GT(hits, 0u) << path;
        });
    }

    // Let the scrapers overlap the live run, then drain it mid-scrape.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop.store(true);
    runner.join();
    scrape_done.store(true);
    for (std::thread& t : scrapers) t.join();

    EXPECT_EQ(res.estimation.status, sim::RunStatus::Interrupted);
    EXPECT_GT(res.estimation.samples, 0u);
    // The journal recorded the lifecycle around the drained run.
    const std::string jsonl = journal.to_jsonl(false);
    EXPECT_NE(jsonl.find("\"event\":\"run_start\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"event\":\"run_end\""), std::string::npos);
}

// The whole point of the sharded design: turning on metrics + serving must
// not move a single sample. Byte-compare the deterministic report section
// and the exact estimation counts at several (seed, workers) points.
TEST_F(ServeAnalysisTest, ResultsAreByteIdenticalWithServingOnAndOff) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
        AnalysisRequest plain = base_request();
        if (workers > 1) {
            plain.mode = AnalysisMode::EstimateParallel;
            plain.workers = workers;
        }
        const AnalysisResult base = run_analysis(net, plain);

        Registry reg(workers);
        AnalysisRequest instrumented = plain;
        instrumented.metrics = &reg;
        instrumented.serve.enabled = true;
        instrumented.serve.port = 0;
        const AnalysisResult served = run_analysis(net, instrumented);

        EXPECT_EQ(base.estimation.samples, served.estimation.samples);
        EXPECT_EQ(base.estimation.successes, served.estimation.successes);
        EXPECT_EQ(base.value, served.value);
        EXPECT_EQ(telemetry::prometheus_deterministic_section(
                      telemetry::prometheus_text(base.report)),
                  telemetry::prometheus_deterministic_section(
                      telemetry::prometheus_text(served.report)));

        // The live registry picked up the run.
        const std::string scrape = reg.expose();
        EXPECT_NE(scrape.find("slimsim_paths_started_total"), std::string::npos);
        lint_exposition(scrape);
    }
}

// File and HTTP expositions are one code path: appending the live registry
// to the run-report exposition must not duplicate any family, and the
// deterministic prefix must stay byte-identical to the report-only render.
TEST_F(ServeAnalysisTest, MergedExpositionHasNoDuplicateFamilies) {
    Registry reg(1);
    AnalysisRequest req = base_request();
    req.metrics = &reg;
    const AnalysisResult res = run_analysis(net, req);

    const std::string merged = telemetry::prometheus_text(res.report, &reg);
    const std::string report_only = telemetry::prometheus_text(res.report);
    EXPECT_EQ(merged.substr(0, report_only.size()), report_only);

    std::vector<std::string> families;
    std::size_t pos = 0;
    while ((pos = merged.find("# TYPE ", pos)) != std::string::npos) {
        const std::size_t start = pos + 7;
        const std::size_t sp = merged.find(' ', start);
        families.push_back(merged.substr(start, sp - start));
        pos = sp;
    }
    for (std::size_t i = 0; i < families.size(); ++i) {
        for (std::size_t j = i + 1; j < families.size(); ++j) {
            EXPECT_NE(families[i], families[j]) << "duplicate family";
        }
    }
    lint_exposition(merged);
}

} // namespace
} // namespace slimsim
