#include "sim/strategy.hpp"

#include <gtest/gtest.h>

namespace slimsim::sim {
namespace {

/// Builds candidates with the given enablement sets (network/state are not
/// consulted by the automated strategies beyond the candidate list).
std::vector<eda::Candidate> cands(std::initializer_list<IntervalSet> sets) {
    std::vector<eda::Candidate> out;
    int i = 0;
    for (const auto& s : sets) {
        eda::Candidate c;
        c.kind = eda::Candidate::Kind::Tau;
        c.process = i;
        c.transition = 0;
        c.enabled = s;
        out.push_back(std::move(c));
        ++i;
    }
    return out;
}

/// A throwaway network for the strategy interface (never dereferenced by
/// the automated strategies). We build a minimal real one.
const eda::Network& dummy_net() {
    static const eda::Network net = eda::build_network_from_source(R"(
        root S.I;
        system S end S;
        system implementation S.I end S.I;
    )");
    return net;
}

struct StrategyTest : ::testing::Test {
    eda::NetworkState state = dummy_net().initial_state();
    Rng rng{42};
};

TEST_F(StrategyTest, NamesRoundTrip) {
    for (const StrategyKind k : automated_strategies()) {
        EXPECT_EQ(strategy_from_string(to_string(k)), k);
        EXPECT_EQ(make_strategy(k)->name(), to_string(k));
    }
    EXPECT_EQ(strategy_from_string("input"), StrategyKind::Input);
    EXPECT_EQ(strategy_from_string("bogus"), std::nullopt);
    EXPECT_THROW(make_strategy(StrategyKind::Input), Error);
}

TEST_F(StrategyTest, AsapPicksEarliestInstant) {
    auto s = make_strategy(StrategyKind::Asap);
    const auto cs = cands({IntervalSet(5.0, 9.0), IntervalSet(2.0, 3.0)});
    const auto choice = s->choose(dummy_net(), state, cs, 10.0, rng);
    ASSERT_TRUE(choice.has_value());
    EXPECT_DOUBLE_EQ(choice->delay, 2.0);
    EXPECT_EQ(choice->candidate, 1);
}

TEST_F(StrategyTest, AsapTieBrokenUniformly) {
    auto s = make_strategy(StrategyKind::Asap);
    const auto cs = cands({IntervalSet(2.0, 9.0), IntervalSet(2.0, 3.0)});
    int first = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto choice = s->choose(dummy_net(), state, cs, 10.0, rng);
        ASSERT_TRUE(choice.has_value());
        EXPECT_DOUBLE_EQ(choice->delay, 2.0);
        if (choice->candidate == 0) ++first;
    }
    EXPECT_GT(first, 800);
    EXPECT_LT(first, 1200);
}

TEST_F(StrategyTest, AsapNoCandidates) {
    auto s = make_strategy(StrategyKind::Asap);
    EXPECT_EQ(s->choose(dummy_net(), state, {}, 10.0, rng), std::nullopt);
}

TEST_F(StrategyTest, ProgressiveSamplesWithinUnion) {
    auto s = make_strategy(StrategyKind::Progressive);
    const auto cs = cands({IntervalSet(1.0, 2.0), IntervalSet(4.0, 6.0)});
    int in_second = 0;
    const int n = 6000;
    for (int i = 0; i < n; ++i) {
        const auto choice = s->choose(dummy_net(), state, cs, 10.0, rng);
        ASSERT_TRUE(choice.has_value());
        const double t = choice->delay;
        ASSERT_TRUE((t >= 1.0 && t <= 2.0) || (t >= 4.0 && t <= 6.0)) << t;
        ASSERT_GE(choice->candidate, 0);
        EXPECT_TRUE(cs[static_cast<std::size_t>(choice->candidate)].enabled.contains(t));
        if (t >= 4.0) ++in_second;
    }
    // The second window carries 2/3 of the measure.
    EXPECT_NEAR(static_cast<double>(in_second) / n, 2.0 / 3.0, 0.03);
}

TEST_F(StrategyTest, ProgressivePicksUniformlyAmongOverlapping) {
    auto s = make_strategy(StrategyKind::Progressive);
    const auto cs = cands({IntervalSet(0.0, 10.0), IntervalSet(0.0, 10.0)});
    int first = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto choice = s->choose(dummy_net(), state, cs, 10.0, rng);
        if (choice->candidate == 0) ++first;
    }
    EXPECT_GT(first, 800);
    EXPECT_LT(first, 1200);
}

TEST_F(StrategyTest, LocalIgnoresGuardsAndUsesHorizon) {
    auto s = make_strategy(StrategyKind::Local);
    // Candidate only enabled in [8,9], horizon 10: Local samples over
    // [0,10], so most draws hit no candidate (pure delay).
    const auto cs = cands({IntervalSet(8.0, 9.0)});
    int pure_delay = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        const auto choice = s->choose(dummy_net(), state, cs, 10.0, rng);
        ASSERT_TRUE(choice.has_value());
        EXPECT_GE(choice->delay, 0.0);
        EXPECT_LE(choice->delay, 10.0);
        if (choice->candidate < 0) {
            ++pure_delay;
        } else {
            EXPECT_TRUE(cs[0].enabled.contains(choice->delay));
        }
    }
    EXPECT_NEAR(static_cast<double>(pure_delay) / n, 0.9, 0.03);
}

TEST_F(StrategyTest, LocalWithNothingAtAll) {
    auto s = make_strategy(StrategyKind::Local);
    EXPECT_EQ(s->choose(dummy_net(), state, {}, 0.0, rng), std::nullopt);
    // With a positive horizon, Local still makes progress by pure delay.
    const auto choice = s->choose(dummy_net(), state, {}, 5.0, rng);
    ASSERT_TRUE(choice.has_value());
    EXPECT_EQ(choice->candidate, -1);
}

TEST_F(StrategyTest, MaxTimeDelaysToHorizon) {
    auto s = make_strategy(StrategyKind::MaxTime);
    const auto cs = cands({IntervalSet(2.0, 10.0)});
    const auto choice = s->choose(dummy_net(), state, cs, 10.0, rng);
    ASSERT_TRUE(choice.has_value());
    EXPECT_DOUBLE_EQ(choice->delay, 10.0);
    EXPECT_EQ(choice->candidate, 0);
}

TEST_F(StrategyTest, MaxTimePureDelayWhenNothingEnabledAtHorizon) {
    auto s = make_strategy(StrategyKind::MaxTime);
    const auto cs = cands({IntervalSet(1.0, 2.0)});
    const auto choice = s->choose(dummy_net(), state, cs, 10.0, rng);
    ASSERT_TRUE(choice.has_value());
    EXPECT_DOUBLE_EQ(choice->delay, 10.0);
    EXPECT_EQ(choice->candidate, -1); // actionlock detection behaviour
}

TEST_F(StrategyTest, MaxTimeActionlockAtZero) {
    auto s = make_strategy(StrategyKind::MaxTime);
    EXPECT_EQ(s->choose(dummy_net(), state, {}, 0.0, rng), std::nullopt);
}

TEST_F(StrategyTest, InputStrategyDelegates) {
    int calls = 0;
    auto s = make_input_strategy(
        [&calls](const eda::Network&, const eda::NetworkState&,
                 std::span<const eda::Candidate> cs,
                 double) -> std::optional<ScheduledChoice> {
            ++calls;
            if (cs.empty()) return std::nullopt;
            return ScheduledChoice{cs[0].enabled.earliest().value_or(0.0), 0};
        });
    EXPECT_EQ(s->name(), "input");
    const auto cs = cands({IntervalSet(3.0, 4.0)});
    const auto choice = s->choose(dummy_net(), state, cs, 10.0, rng);
    ASSERT_TRUE(choice.has_value());
    EXPECT_DOUBLE_EQ(choice->delay, 3.0);
    EXPECT_EQ(calls, 1);
    EXPECT_THROW(make_input_strategy(nullptr), Error);
}

// The paper's Fig. 2 walkthrough: guard [200,300] msec, invariant 300 msec.
class PaperExample : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(PaperExample, DelaySelection) {
    Rng rng(1);
    const eda::NetworkState state = dummy_net().initial_state();
    auto s = make_strategy(GetParam());
    const double horizon = 0.3;
    const auto cs = cands({IntervalSet(0.2, 0.3)});
    for (int i = 0; i < 200; ++i) {
        const auto choice = s->choose(dummy_net(), state, cs, horizon, rng);
        ASSERT_TRUE(choice.has_value());
        switch (GetParam()) {
        case StrategyKind::Asap:
            EXPECT_DOUBLE_EQ(choice->delay, 0.2); // schedules 200 msec
            break;
        case StrategyKind::MaxTime:
            EXPECT_DOUBLE_EQ(choice->delay, 0.3); // schedules 300 msec
            break;
        case StrategyKind::Progressive:
            EXPECT_GE(choice->delay, 0.2); // uniform over [200,300]
            EXPECT_LE(choice->delay, 0.3);
            break;
        case StrategyKind::Local:
            EXPECT_GE(choice->delay, 0.0); // uniform over [0,300]
            EXPECT_LE(choice->delay, 0.3);
            break;
        default:
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Paper, PaperExample,
                         ::testing::Values(StrategyKind::Asap, StrategyKind::Progressive,
                                           StrategyKind::Local, StrategyKind::MaxTime),
                         [](const auto& info) { return to_string(info.param); });

} // namespace
} // namespace slimsim::sim
