#include "sim/path_generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/runner.hpp"

namespace slimsim::sim {
namespace {

struct Harness {
    explicit Harness(const std::string& src) : net(eda::build_network_from_source(src)) {}

    PathOutcome run_once(const std::string& goal, double bound, StrategyKind kind,
                         std::uint64_t seed = 1, SimOptions opt = {}) {
        const TimedReachability prop = make_reachability(net.model(), goal, bound);
        auto strat = make_strategy(kind);
        const PathGenerator gen(net, prop, *strat, opt);
        Rng rng(seed);
        return gen.run(rng);
    }

    double estimate_p(const std::string& goal, double bound, StrategyKind kind,
                      double eps = 0.02, std::uint64_t seed = 7) {
        const TimedReachability prop = make_reachability(net.model(), goal, bound);
        const stat::ChernoffHoeffding ch(0.05, eps);
        return estimate(net, prop, kind, ch, seed).estimate;
    }

    eda::Network net;
};

TEST(PathGenerator, DeterministicTimedReachability) {
    // Transition enabled exactly in [4,6]; goal set on firing.
    Harness h(R"(
        root S.I;
        system S
        features done: out data port bool default false;
        end S;
        system implementation S.I
        subcomponents x: data clock;
        modes a: initial mode while x <= 6; b: mode;
        transitions a -[when x >= 4 then done := true]-> b;
        end S.I;
    )");
    // ASAP fires at t=4; bound 5 suffices.
    const PathOutcome asap = h.run_once("done", 5.0, StrategyKind::Asap);
    EXPECT_TRUE(asap.satisfied);
    EXPECT_EQ(asap.terminal, PathTerminal::Goal);
    EXPECT_DOUBLE_EQ(asap.end_time, 4.0);
    // MaxTime fires at t=6; bound 5 is missed.
    const PathOutcome late = h.run_once("done", 5.0, StrategyKind::MaxTime);
    EXPECT_FALSE(late.satisfied);
    // ... but bound 7 is reached.
    const PathOutcome ok = h.run_once("done", 7.0, StrategyKind::MaxTime);
    EXPECT_TRUE(ok.satisfied);
    EXPECT_DOUBLE_EQ(ok.end_time, 6.0);
}

TEST(PathGenerator, GoalOnClockDuringElapse) {
    // The goal depends on a clock only; no discrete transition exists.
    Harness h(R"(
        root S.I;
        system S end S;
        system implementation S.I
        subcomponents x: data clock;
        modes a: initial mode;
        end S.I;
    )");
    const PathOutcome out = h.run_once("x >= 3", 10.0, StrategyKind::Asap);
    EXPECT_TRUE(out.satisfied);
    EXPECT_DOUBLE_EQ(out.end_time, 3.0);
    const PathOutcome miss = h.run_once("x >= 30", 10.0, StrategyKind::Asap);
    EXPECT_FALSE(miss.satisfied);
}

TEST(PathGenerator, GoalAlreadyTrueInitially) {
    Harness h(R"(
        root S.I;
        system S
        features ok: out data port bool default true;
        end S;
        system implementation S.I end S.I;
    )");
    const PathOutcome out = h.run_once("ok", 1.0, StrategyKind::Progressive);
    EXPECT_TRUE(out.satisfied);
    EXPECT_DOUBLE_EQ(out.end_time, 0.0);
    EXPECT_EQ(out.steps, 0u);
}

TEST(PathGenerator, DeadlockFalsifiesByDefault) {
    Harness h(R"(
        root S.I;
        system S
        features never: out data port bool default false;
        end S;
        system implementation S.I
        modes a: initial mode;
        end S.I;
    )");
    const PathOutcome out = h.run_once("never", 5.0, StrategyKind::Asap);
    EXPECT_FALSE(out.satisfied);
    EXPECT_EQ(out.terminal, PathTerminal::Deadlock);
}

TEST(PathGenerator, DeadlockErrorPolicy) {
    Harness h(R"(
        root S.I;
        system S
        features never: out data port bool default false;
        end S;
        system implementation S.I
        modes a: initial mode;
        end S.I;
    )");
    SimOptions opt;
    opt.deadlock = StuckPolicy::Error;
    EXPECT_THROW(h.run_once("never", 5.0, StrategyKind::Asap, 1, opt), Error);
}

TEST(PathGenerator, TimelockDetected) {
    // Invariant expires at 2 with no enabled transition (guard needs x>=5).
    Harness h(R"(
        root S.I;
        system S
        features never: out data port bool default false;
        end S;
        system implementation S.I
        subcomponents x: data clock;
        modes a: initial mode while x <= 2; b: mode;
        transitions a -[when x >= 5]-> b;
        end S.I;
    )");
    const PathOutcome out = h.run_once("never", 10.0, StrategyKind::Progressive);
    EXPECT_FALSE(out.satisfied);
    EXPECT_EQ(out.terminal, PathTerminal::Timelock);
    EXPECT_DOUBLE_EQ(out.end_time, 2.0);

    SimOptions opt;
    opt.timelock = StuckPolicy::Error;
    EXPECT_THROW(h.run_once("never", 10.0, StrategyKind::Progressive, 1, opt), Error);
}

TEST(PathGenerator, ZenoModelRaisesStepLimit) {
    Harness h(R"(
        root S.I;
        system S
        features never: out data port bool default false;
        end S;
        system implementation S.I
        modes a: initial mode;
        transitions a -[]-> a;
        end S.I;
    )");
    SimOptions opt;
    opt.max_steps = 1000;
    EXPECT_THROW(h.run_once("never", 5.0, StrategyKind::Asap, 1, opt), Error);
}

TEST(PathGenerator, ExponentialReachabilityMatchesAnalytic) {
    Harness h(R"(
        root S.I;
        system S
        features broken: out data port bool default false;
        end S;
        system implementation S.I end S.I;
        error model EM
        features ok: initial state; bad: error state;
        end EM;
        error model implementation EM.I
        events f: error event occurrence poisson 0.7 per sec;
        transitions ok -[f]-> bad;
        end EM.I;
        fault injections
          component root uses error model EM.I;
          component root in state bad effect broken := true;
        end fault injections;
    )");
    const double expected = 1.0 - std::exp(-0.7 * 2.0);
    for (const StrategyKind k : automated_strategies()) {
        EXPECT_NEAR(h.estimate_p("broken", 2.0, k), expected, 0.03)
            << "strategy " << to_string(k);
    }
}

TEST(PathGenerator, MarkovianRacePreemptsScheduledDelay) {
    // A guarded transition is enabled in [5,10]; a fault races at a high
    // rate and usually preempts it.
    Harness h(R"(
        root S.I;
        system S
        features
          acted: out data port bool default false;
          broken: out data port bool default false;
        end S;
        system implementation S.I
        subcomponents x: data clock;
        modes a: initial mode while x <= 10; b: mode;
        transitions a -[when x >= 5 and not broken then acted := true]-> b;
        end S.I;
        error model EM
        features ok: initial state; bad: error state;
        end EM;
        error model implementation EM.I
        events f: error event occurrence poisson 2 per sec;
        transitions ok -[f]-> bad;
        end EM.I;
        fault injections
          component root uses error model EM.I;
          component root in state bad effect broken := true;
        end fault injections;
    )");
    // P(no fault before 5s) = exp(-10) ~ 0: 'acted' is almost never reached.
    EXPECT_LT(h.estimate_p("acted", 10.0, StrategyKind::Asap, 0.05), 0.02);
    EXPECT_GT(h.estimate_p("broken", 10.0, StrategyKind::Asap, 0.05), 0.98);
}

TEST(PathGenerator, TracedRunRecordsSteps) {
    Harness h(R"(
        root S.I;
        system S
        features done: out data port bool default false;
        end S;
        system implementation S.I
        subcomponents x: data clock;
        modes a: initial mode while x <= 2; b: mode;
        transitions a -[when x >= 1 then done := true]-> b;
        end S.I;
    )");
    const TimedReachability prop = make_reachability(h.net.model(), "done", 5.0);
    auto strat = make_strategy(StrategyKind::Asap);
    const PathGenerator gen(h.net, prop, *strat);
    Rng rng(3);
    Trace trace;
    const PathOutcome out = gen.run_traced(rng, trace);
    EXPECT_TRUE(out.satisfied);
    ASSERT_GE(trace.steps().size(), 2u);
    const std::string text = trace.to_string();
    EXPECT_NE(text.find("a -> b"), std::string::npos);
    EXPECT_NE(text.find("goal"), std::string::npos);
}

TEST(PathGenerator, ReproducibleForSameSeed) {
    Harness h(R"(
        root S.I;
        system S
        features broken: out data port bool default false;
        end S;
        system implementation S.I end S.I;
        error model EM
        features ok: initial state; bad: error state;
        end EM;
        error model implementation EM.I
        events f: error event occurrence poisson 0.3 per sec;
        transitions ok -[f]-> bad;
        end EM.I;
        fault injections
          component root uses error model EM.I;
          component root in state bad effect broken := true;
        end fault injections;
    )");
    const TimedReachability prop = make_reachability(h.net.model(), "broken", 2.0);
    const stat::ChernoffHoeffding ch(0.1, 0.05);
    const auto r1 = estimate(h.net, prop, StrategyKind::Progressive, ch, 99);
    const auto r2 = estimate(h.net, prop, StrategyKind::Progressive, ch, 99);
    EXPECT_EQ(r1.successes, r2.successes);
    EXPECT_EQ(r1.samples, r2.samples);
}

TEST(PathGenerator, MemoryPolicyContinueStillCorrectOnMarkovModel) {
    // On a purely Markovian model the memory policy must not change the
    // estimate (there is no strategy schedule to preserve).
    Harness h(R"(
        root S.I;
        system S
        features broken: out data port bool default false;
        end S;
        system implementation S.I end S.I;
        error model EM
        features ok: initial state; bad: error state;
        end EM;
        error model implementation EM.I
        events f: error event occurrence poisson 1 per sec;
        transitions ok -[f]-> bad;
        end EM.I;
        fault injections
          component root uses error model EM.I;
          component root in state bad effect broken := true;
        end fault injections;
    )");
    const TimedReachability prop = make_reachability(h.net.model(), "broken", 1.0);
    const stat::ChernoffHoeffding ch(0.05, 0.02);
    SimOptions cont;
    cont.memory = MemoryPolicy::Continue;
    const double p_restart =
        estimate(h.net, prop, StrategyKind::Progressive, ch, 5).estimate;
    auto strat = make_strategy(StrategyKind::Progressive);
    const double p_continue = estimate(h.net, prop, *strat, ch, 5, cont).estimate;
    const double expected = 1.0 - std::exp(-1.0);
    EXPECT_NEAR(p_restart, expected, 0.03);
    EXPECT_NEAR(p_continue, expected, 0.03);
}

} // namespace
} // namespace slimsim::sim
