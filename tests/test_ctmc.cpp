#include "ctmc/flow.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "eda/network.hpp"
#include "sim/property.hpp"

namespace slimsim::ctmc {
namespace {

TEST(Imc, EliminateNoVanishing) {
    Imc imc;
    imc.states.resize(2);
    imc.states[0].markovian = {{1, 2.0}};
    imc.states[1].goal = true;
    const CtmcModel m = eliminate_vanishing(imc);
    EXPECT_EQ(m.state_count(), 2u);
    EXPECT_EQ(m.transitions[0].size(), 1u);
    EXPECT_TRUE(m.goal[1]);
}

TEST(Imc, EliminateChainOfVanishing) {
    // 0 (markov r=1) -> 1 (vanishing, 50/50) -> {2, 3}.
    Imc imc;
    imc.states.resize(4);
    imc.states[0].markovian = {{1, 1.0}};
    imc.states[1].vanishing = true;
    imc.states[1].immediate = {{2, 0.5}, {3, 0.5}};
    imc.states[2].goal = true;
    const CtmcModel m = eliminate_vanishing(imc);
    EXPECT_EQ(m.state_count(), 3u); // states 0, 2, 3
    ASSERT_EQ(m.transitions[0].size(), 2u);
    EXPECT_DOUBLE_EQ(m.transitions[0][0].second, 0.5);
    EXPECT_DOUBLE_EQ(m.transitions[0][1].second, 0.5);
}

TEST(Imc, EliminateNestedVanishing) {
    // vanishing -> vanishing -> tangible; probabilities multiply.
    Imc imc;
    imc.states.resize(4);
    imc.initial = 0;
    imc.states[0].vanishing = true;
    imc.states[0].immediate = {{1, 0.5}, {3, 0.5}};
    imc.states[1].vanishing = true;
    imc.states[1].immediate = {{2, 1.0}};
    imc.states[2].goal = true;
    const CtmcModel m = eliminate_vanishing(imc);
    // Initial distribution: 0.5 to state 2 (goal), 0.5 to state 3.
    ASSERT_EQ(m.initial.size(), 2u);
    EXPECT_DOUBLE_EQ(m.initial[0].second, 0.5);
    EXPECT_DOUBLE_EQ(transient_reachability(m, 0.0), 0.5);
}

TEST(Imc, RejectsImmediateCycle) {
    Imc imc;
    imc.states.resize(3);
    imc.states[0].vanishing = true;
    imc.states[0].immediate = {{1, 1.0}};
    imc.states[1].vanishing = true;
    imc.states[1].immediate = {{0, 1.0}};
    EXPECT_THROW(eliminate_vanishing(imc), Error);
}

TEST(Imc, RejectsAllVanishing) {
    Imc imc;
    imc.states.resize(1);
    imc.states[0].vanishing = true;
    EXPECT_THROW(eliminate_vanishing(imc), Error);
}

// --- state-space builder on real SLIM models -------------------------------

eda::Network net_of(const std::string& src) {
    return eda::build_network_from_source(src);
}

constexpr const char* kSimpleMarkov = R"(
    root S.I;
    system S
    features broken: out data port bool default false;
    end S;
    system implementation S.I end S.I;
    error model EM
    features ok: initial state; bad: error state;
    end EM;
    error model implementation EM.I
    events f: error event occurrence poisson 0.5 per sec;
    transitions ok -[f]-> bad;
    end EM.I;
    fault injections
      component root uses error model EM.I;
      component root in state bad effect broken := true;
    end fault injections;
)";

TEST(StateSpace, SimpleMarkovModel) {
    const eda::Network net = net_of(kSimpleMarkov);
    const auto prop = sim::make_reachability(net.model(), "broken", 1.0);
    BuildStats stats;
    const Imc imc = build_state_space(net, *prop.goal, {}, &stats);
    EXPECT_EQ(stats.states, 2u);
    EXPECT_EQ(stats.vanishing, 0u);
    const CtmcModel m = eliminate_vanishing(imc);
    // P = 1 - exp(-0.5 * 1).
    EXPECT_NEAR(transient_reachability(m, 1.0), 1.0 - std::exp(-0.5), 1e-9);
}

TEST(StateSpace, RejectsTimedModels) {
    const eda::Network net = net_of(R"(
        root S.I;
        system S
        features done: out data port bool default false;
        end S;
        system implementation S.I
        subcomponents x: data clock;
        modes a: initial mode while x <= 5; b: mode;
        transitions a -[when x >= 1 then done := true]-> b;
        end S.I;
    )");
    const auto prop = sim::make_reachability(net.model(), "done", 1.0);
    EXPECT_THROW(build_state_space(net, *prop.goal), Error);
}

TEST(StateSpace, ImmediateTransitionsAreVanishing) {
    // Fault triggers an immediate monitor reaction (guarded, untimed).
    const eda::Network net = net_of(R"(
        root S.I;
        system S
        features alarm: out data port bool default false;
                 broken: out data port bool default false;
        end S;
        system implementation S.I
        modes watch: initial mode; alerted: mode;
        transitions watch -[when broken then alarm := true]-> alerted;
        end S.I;
        error model EM
        features ok: initial state; bad: error state;
        end EM;
        error model implementation EM.I
        events f: error event occurrence poisson 1 per sec;
        transitions ok -[f]-> bad;
        end EM.I;
        fault injections
          component root uses error model EM.I;
          component root in state bad effect broken := true;
        end fault injections;
    )");
    const auto prop = sim::make_reachability(net.model(), "alarm", 2.0);
    BuildStats stats;
    const Imc imc = build_state_space(net, *prop.goal, {}, &stats);
    EXPECT_GE(stats.vanishing, 1u);
    const CtmcModel m = eliminate_vanishing(imc);
    // The alarm follows the fault immediately: P = 1 - exp(-2).
    EXPECT_NEAR(transient_reachability(m, 2.0), 1.0 - std::exp(-2.0), 1e-9);
}

TEST(StateSpace, MaxStatesEnforced) {
    const eda::Network net = net_of(kSimpleMarkov);
    const auto prop = sim::make_reachability(net.model(), "broken", 1.0);
    BuildOptions opt;
    opt.max_states = 1;
    EXPECT_THROW(build_state_space(net, *prop.goal, opt), Error);
}

TEST(Flow, EndToEndMatchesAnalytic) {
    const eda::Network net = net_of(kSimpleMarkov);
    const auto prop = sim::make_reachability(net.model(), "broken", 3.0);
    const FlowResult res = run_ctmc_flow(net, *prop.goal, 3.0);
    EXPECT_NEAR(res.probability, 1.0 - std::exp(-1.5), 1e-9);
    EXPECT_GE(res.ctmc_states, res.lumped_states);
    EXPECT_GT(res.total_seconds, 0.0);
}

TEST(Flow, MinimizationTogglePreservesResult) {
    const eda::Network net = net_of(kSimpleMarkov);
    const auto prop = sim::make_reachability(net.model(), "broken", 2.0);
    FlowOptions with;
    FlowOptions without;
    without.minimize = false;
    const double p1 = run_ctmc_flow(net, *prop.goal, 2.0, with).probability;
    const double p2 = run_ctmc_flow(net, *prop.goal, 2.0, without).probability;
    EXPECT_NEAR(p1, p2, 1e-12);
}

TEST(Quotient, MergesParallelEdges) {
    CtmcModel m;
    m.transitions.resize(3);
    m.transitions[0] = {{1, 1.0}, {2, 1.0}};
    m.goal = {0, 1, 1};
    m.initial = {{0, 1.0}};
    // Merge states 1 and 2 into one block.
    const CtmcModel q = quotient(m, {0, 1, 1}, 2);
    ASSERT_EQ(q.transitions[0].size(), 1u);
    EXPECT_DOUBLE_EQ(q.transitions[0][0].second, 2.0);
    EXPECT_TRUE(q.goal[1]);
}

} // namespace
} // namespace slimsim::ctmc
