#include "expr/timeline.hpp"

#include <cmath>
#include <limits>

namespace slimsim::expr {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

[[noreturn]] void non_affine(const Expr& e) {
    throw Error(e.loc, "expression is not affine in time: " + e.to_string());
}

/// Solves a + b*t <op> 0 for t in [0, inf).
IntervalSet solve_comparison(BinaryOp op, const LinForm& f) {
    if (f.constant()) {
        bool holds = false;
        switch (op) {
        case BinaryOp::Eq: holds = f.a == 0.0; break;
        case BinaryOp::Ne: holds = f.a != 0.0; break;
        case BinaryOp::Lt: holds = f.a < 0.0; break;
        case BinaryOp::Le: holds = f.a <= 0.0; break;
        case BinaryOp::Gt: holds = f.a > 0.0; break;
        case BinaryOp::Ge: holds = f.a >= 0.0; break;
        default: SLIMSIM_ASSERT(false);
        }
        return holds ? IntervalSet::all() : IntervalSet::empty_set();
    }
    const double root = -f.a / f.b; // time at which the form crosses zero
    switch (op) {
    case BinaryOp::Eq:
        return root >= 0.0 ? IntervalSet::point(root) : IntervalSet::empty_set();
    case BinaryOp::Ne:
        // Closed over-approximation of [0,inf) \ {root} is [0,inf).
        return IntervalSet::all();
    case BinaryOp::Lt:
    case BinaryOp::Le:
        if (f.b > 0.0) {
            // decreasingly satisfied: a+bt <= 0 until t = root
            return root >= 0.0 ? IntervalSet(0.0, root) : IntervalSet::empty_set();
        }
        return IntervalSet(std::max(0.0, root), kInf);
    case BinaryOp::Gt:
    case BinaryOp::Ge:
        if (f.b > 0.0) return IntervalSet(std::max(0.0, root), kInf);
        return root >= 0.0 ? IntervalSet(0.0, root) : IntervalSet::empty_set();
    default: SLIMSIM_ASSERT(false);
    }
    return IntervalSet::empty_set();
}

} // namespace

bool is_time_dependent(const Expr& e, const TimedEvalContext& ctx) {
    switch (e.kind) {
    case ExprKind::Literal:
        return false;
    case ExprKind::Var: {
        SLIMSIM_ASSERT(e.slot != kInvalidSlot);
        const VarId id = ctx.global_id(e.slot);
        SLIMSIM_ASSERT(id < ctx.rates.size());
        return ctx.rates[id] != 0.0;
    }
    case ExprKind::Unary:
        return is_time_dependent(*e.a, ctx);
    case ExprKind::Binary:
        return is_time_dependent(*e.a, ctx) || is_time_dependent(*e.b, ctx);
    case ExprKind::Ite:
        return is_time_dependent(*e.a, ctx) || is_time_dependent(*e.b, ctx) ||
               is_time_dependent(*e.c, ctx);
    }
    return false;
}

LinForm eval_affine(const Expr& e, const TimedEvalContext& ctx) {
    // Time-independent subtrees (of any shape: mod, ite, ...) evaluate to a
    // constant form directly. Uses the reference tree walker so this module
    // stays a self-contained interpreter (the compiled layer mirrors it and
    // differential tests compare the two).
    if (!is_time_dependent(e, ctx)) {
        return {testing::reference_evaluate(e, ctx.untimed()).as_real(), 0.0};
    }
    switch (e.kind) {
    case ExprKind::Var: {
        const VarId id = ctx.global_id(e.slot);
        return {ctx.values[id].as_real(), ctx.rates[id]};
    }
    case ExprKind::Unary: {
        if (e.uop != UnaryOp::Neg) non_affine(e);
        const LinForm f = eval_affine(*e.a, ctx);
        return {-f.a, -f.b};
    }
    case ExprKind::Binary: {
        switch (e.bop) {
        case BinaryOp::Add: {
            const LinForm l = eval_affine(*e.a, ctx);
            const LinForm r = eval_affine(*e.b, ctx);
            return {l.a + r.a, l.b + r.b};
        }
        case BinaryOp::Sub: {
            const LinForm l = eval_affine(*e.a, ctx);
            const LinForm r = eval_affine(*e.b, ctx);
            return {l.a - r.a, l.b - r.b};
        }
        case BinaryOp::Mul: {
            const LinForm l = eval_affine(*e.a, ctx);
            const LinForm r = eval_affine(*e.b, ctx);
            if (l.constant()) return {l.a * r.a, l.a * r.b};
            if (r.constant()) return {l.a * r.a, l.b * r.a};
            non_affine(e); // product of two time-dependent expressions
        }
        case BinaryOp::Div: {
            const LinForm l = eval_affine(*e.a, ctx);
            const LinForm r = eval_affine(*e.b, ctx);
            if (!r.constant()) non_affine(e); // time-dependent divisor
            if (r.a == 0.0) throw Error(e.loc, "division by zero");
            return {l.a / r.a, l.b / r.a};
        }
        default:
            non_affine(e); // mod of time-dependent operands, or a Boolean op
        }
    }
    case ExprKind::Ite:
    case ExprKind::Literal:
        non_affine(e); // time-dependent ite in numeric position
    }
    SLIMSIM_ASSERT(false);
    return {};
}

IntervalSet satisfying_times(const Expr& e, const TimedEvalContext& ctx) {
    SLIMSIM_ASSERT(e.type.is_bool());
    if (!is_time_dependent(e, ctx)) {
        return testing::reference_evaluate(e, ctx.untimed()).as_bool()
                   ? IntervalSet::all()
                   : IntervalSet::empty_set();
    }
    switch (e.kind) {
    case ExprKind::Unary:
        SLIMSIM_ASSERT(e.uop == UnaryOp::Not);
        return satisfying_times(*e.a, ctx).complement(kInf);
    case ExprKind::Binary: {
        switch (e.bop) {
        case BinaryOp::And:
            return satisfying_times(*e.a, ctx).intersect(satisfying_times(*e.b, ctx));
        case BinaryOp::Or:
            return satisfying_times(*e.a, ctx).unite(satisfying_times(*e.b, ctx));
        case BinaryOp::Implies:
            return satisfying_times(*e.a, ctx)
                .complement(kInf)
                .unite(satisfying_times(*e.b, ctx));
        default:
            break;
        }
        if (is_comparison(e.bop)) {
            // Rewrite l <op> r as (l - r) <op> 0 and solve the linear form.
            const LinForm l = eval_affine(*e.a, ctx);
            const LinForm r = eval_affine(*e.b, ctx);
            return solve_comparison(e.bop, {l.a - r.a, l.b - r.b});
        }
        non_affine(e);
    }
    case ExprKind::Ite: {
        // (cond ? x : y) holds at t iff (cond & x) | (!cond & y) holds at t.
        const IntervalSet cond = satisfying_times(*e.a, ctx);
        const IntervalSet then_s = satisfying_times(*e.b, ctx);
        const IntervalSet else_s = satisfying_times(*e.c, ctx);
        return cond.intersect(then_s).unite(cond.complement(kInf).intersect(else_s));
    }
    case ExprKind::Literal:
    case ExprKind::Var:
        // Literals / Boolean variables are never time-dependent; handled above.
        SLIMSIM_ASSERT(false);
    }
    SLIMSIM_ASSERT(false);
    return IntervalSet::empty_set();
}

} // namespace slimsim::expr
