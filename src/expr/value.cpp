#include "expr/value.hpp"

#include <charconv>
#include <cmath>
#include <functional>

namespace slimsim {

Value Value::default_for(const Type& t) {
    switch (t.kind) {
    case TypeKind::Bool: return Value(false);
    case TypeKind::Int: return Value(t.lo.value_or(0));
    case TypeKind::Real:
    case TypeKind::Clock:
    case TypeKind::Continuous: return Value(0.0);
    }
    return Value(false);
}

Value Value::coerce_to(const Type& t) const {
    switch (t.kind) {
    case TypeKind::Bool:
        return Value(as_bool());
    case TypeKind::Int: {
        const std::int64_t i =
            is_int() ? as_int() : static_cast<std::int64_t>(std::trunc(as_real()));
        return Value(i);
    }
    case TypeKind::Real:
    case TypeKind::Clock:
    case TypeKind::Continuous:
        return Value(as_real());
    }
    return *this;
}

bool operator==(const Value& a, const Value& b) {
    if (a.is_bool() || b.is_bool()) {
        return a.is_bool() && b.is_bool() && a.as_bool() == b.as_bool();
    }
    return a.as_real() == b.as_real();
}

std::string Value::to_string() const {
    if (is_bool()) return as_bool() ? "true" : "false";
    if (is_int()) return std::to_string(as_int());
    // Shortest representation that parses back to exactly this double, kept
    // real-typed: a fraction-free spelling gets a `.0` suffix so reparsing
    // yields a real literal, not an integer (printer round-trips depend on
    // this — `120.0` printed as `120` would change the literal's type).
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), as_real());
    std::string s(buf, end);
    if (s.find_first_of(".eEn") == std::string::npos) s += ".0";
    return s;
}

std::size_t Value::hash() const {
    if (is_bool()) return as_bool() ? 0x9E3779B9u : 0x85EBCA6Bu;
    if (is_int()) return std::hash<std::int64_t>{}(as_int());
    return std::hash<double>{}(as_real());
}

} // namespace slimsim
