// Compile-once expression programs (the compiled-model layer's core).
//
// The simulator's hot loop evaluates the same guard/invariant/effect/flow
// expressions millions of times. Walking the shared_ptr-linked Expr tree for
// every evaluation chases pointers across the heap and re-resolves binding
// slots on every Var node. This module lowers a resolved expression ONCE into
// a flat expr::Program:
//
//   * a register bytecode (one instruction array, one Value register per
//     node) executed by Program::run() with explicit jumps reproducing the
//     interpreter's short-circuit semantics exactly — including which
//     subexpressions are (not) evaluated, so division-by-zero behaviour is
//     byte-identical to expr::evaluate();
//   * a flat post-order node table driving the timed evaluation
//     (Program::satisfying_times / affine analysis), mirroring
//     expr/timeline.cpp with a single O(n) bottom-up time-dependence pass
//     instead of the tree walker's per-node recursion;
//   * binding slots resolved to global VarIds at compile time, so running a
//     program needs only the global valuation.
//
// Programs are hash-consed: compile() keys a process-wide cache on the
// canonical structure (operators, types, literals, resolved global variable
// ids — source locations excluded), so structurally equal expressions share
// one Program object. Locations kept for error messages are first-wins.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "expr/ast.hpp"
#include "support/intervals.hpp"

namespace slimsim::expr {

namespace detail {
class Compiler;
} // namespace detail

/// Value of a numeric expression as a function of the elapsed time t
/// (mirrors expr/timeline.hpp; re-declared here to keep the compiled layer
/// usable without the tree-walking header).
struct AffineForm {
    double a = 0.0;
    double b = 0.0;

    [[nodiscard]] bool constant() const { return b == 0.0; }
};

/// Reusable evaluation buffers: one Value register per program node plus the
/// per-node time-dependence scratch of the timed evaluation. One scratch per
/// worker; programs only grow it (amortized allocation-free).
struct EvalScratch {
    std::vector<Value> regs;
    std::vector<char> time_dep;
};

/// One bytecode instruction. `dst`/`a`/`b` are register indices (registers
/// are node indices); for jumps `b` is the absolute target pc; `loc` indexes
/// the program's source-location table (error messages only).
struct Insn {
    enum class Op : std::uint8_t {
        LoadConst, // dst <- consts[a]
        LoadVar,   // dst <- values[a]  (a = global VarId)
        Not,       // dst <- !a  (bool)
        Neg,       // dst <- -a  (int or real, dynamic)
        Add, Sub, Mul, Div, Mod,           // dynamic int/real dispatch
        Eq, Ne, Lt, Le, Gt, Ge,            // bool==bool or as-real compare
        Move,      // dst <- a              (Ite result)
        MoveBool,  // dst <- a, asserts bool (logical-operator result)
        LoadTrue, LoadFalse,
        Jump,        // pc <- b
        JumpIfFalse, // if !a.as_bool(): pc <- b
        JumpIfTrue,  // if a.as_bool():  pc <- b
    };
    Op op;
    std::uint32_t dst = 0;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t loc = 0;
};

/// One node of the flat post-order expression table (children precede
/// parents; operand indices are strictly smaller than the node's own index).
struct ProgramNode {
    ExprKind kind = ExprKind::Literal;
    UnaryOp uop = UnaryOp::Not;
    BinaryOp bop = BinaryOp::Add;
    bool is_bool = false;   // static type is Boolean (satisfying_times nodes)
    std::uint32_t a = 0, b = 0, c = 0; // operand node indices
    std::uint32_t payload = 0;         // Literal: const index; Var: global VarId
    std::uint32_t loc = 0;             // source-location table index
    // Bytecode range computing this node's value into its register; each
    // subtree's code is contiguous (post-order emission), so the timed
    // evaluation can execute exactly one subtree.
    std::uint32_t code_begin = 0, code_end = 0;
};

/// A compiled expression. Immutable after compilation; safe to share across
/// threads (callers supply their own EvalScratch).
class Program {
public:
    /// Untimed evaluation against the global valuation. Exactly
    /// expr::evaluate(): same dynamic int/real dispatch, same short-circuit
    /// skipping, same Error texts on division/modulo by zero.
    [[nodiscard]] Value run(std::span<const Value> values, EvalScratch& scratch) const;
    [[nodiscard]] bool run_bool(std::span<const Value> values, EvalScratch& scratch) const {
        return run(values, scratch).as_bool();
    }

    /// Timed evaluation: the exact delay set at which this Boolean program
    /// holds under the per-variable derivative vector `rates` (mirrors
    /// expr::satisfying_times, including the evaluation of time-independent
    /// subtrees by the untimed bytecode).
    [[nodiscard]] IntervalSet satisfying_times(std::span<const Value> values,
                                               std::span<const double> rates,
                                               EvalScratch& scratch) const;

    /// Timed evaluation of a numeric program to a + b*t (mirrors
    /// expr::eval_affine). Throws slimsim::Error when not affine in t.
    [[nodiscard]] AffineForm eval_affine(std::span<const Value> values,
                                         std::span<const double> rates,
                                         EvalScratch& scratch) const;

    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
    [[nodiscard]] std::size_t insn_count() const { return code_.size(); }
    [[nodiscard]] std::size_t bytecode_bytes() const {
        return code_.size() * sizeof(Insn) + nodes_.size() * sizeof(ProgramNode);
    }
    /// Hash of the canonical structure key (the hash-consing key; stable
    /// across processes). Equal programs have equal key hashes.
    [[nodiscard]] std::uint64_t key_hash() const { return key_hash_; }

    [[nodiscard]] const std::vector<ProgramNode>& nodes() const { return nodes_; }

private:
    friend class ProgramCache;
    friend class detail::Compiler;

    // Fast-path shapes, recognized once per compilation (classify()). Nearly
    // every guard/invariant in real models is a single comparison of a
    // variable against a constant, and most effect right-hand sides are one
    // load; those shapes answer run()/satisfying_times() directly, skipping
    // the scratch buffers, the time-dependence pass and the node recursion.
    // Each fast path computes bit-identical results to the generic walk.
    enum class Fast : std::uint8_t {
        Generic, // full bytecode / node-table evaluation
        Load,    // single node: Var or Literal
        Compare, // root comparison over two numeric Var/Literal leaves
    };
    struct FastOperand {
        std::uint32_t var = 0;  // global VarId; kFastConst selects `constant`
        double constant = 0.0;
    };
    static constexpr std::uint32_t kFastConst = 0xffffffffu;

    void classify();
    void ensure_scratch(EvalScratch& scratch) const;
    Value run_range(std::uint32_t begin, std::uint32_t end,
                    std::span<const Value> values, std::uint32_t result_reg,
                    EvalScratch& scratch) const;
    void compute_time_dep(std::span<const double> rates, EvalScratch& scratch) const;
    [[nodiscard]] IntervalSet sat_node(std::uint32_t n, std::span<const Value> values,
                                       std::span<const double> rates,
                                       EvalScratch& scratch) const;
    [[nodiscard]] AffineForm affine_node(std::uint32_t n, std::span<const Value> values,
                                         std::span<const double> rates,
                                         EvalScratch& scratch) const;
    [[noreturn]] void non_affine(const ProgramNode& n) const;

    std::vector<ProgramNode> nodes_; // post-order; root is nodes_.back()
    std::vector<Insn> code_;
    std::vector<Value> consts_;
    std::vector<SourceLoc> locs_; // cold; indexed by Insn/ProgramNode loc
    std::uint64_t key_hash_ = 0;
    Fast fast_ = Fast::Generic;
    BinaryOp fast_bop_ = BinaryOp::Add; // Compare only
    FastOperand fast_lhs_, fast_rhs_;   // Compare only
};

using ProgramPtr = std::shared_ptr<const Program>;

/// Hash-consing program cache. Thread-safe; keys are canonical structural
/// serializations (never pointers), so lookups survive Expr reallocation and
/// equal expressions from different models share one Program.
class ProgramCache {
public:
    ProgramCache();

    /// Compiles `e` with `bindings` (empty = identity, as EvalContext), or
    /// returns the shared Program of a structurally equal prior compilation.
    [[nodiscard]] ProgramPtr get_or_compile(const Expr& e,
                                            std::span<const VarId> bindings = {});

    [[nodiscard]] std::size_t size() const;

private:
    struct Impl;
    std::shared_ptr<Impl> impl_;
};

/// The process-wide cache used by compile() and the expr::evaluate wrapper.
[[nodiscard]] ProgramCache& program_cache();

/// Compiles via the process-wide hash-consing cache.
[[nodiscard]] ProgramPtr compile(const Expr& e, std::span<const VarId> bindings = {});

} // namespace slimsim::expr
