// Expression evaluation against a variable valuation.
#pragma once

#include <span>

#include "expr/ast.hpp"

namespace slimsim::expr {

/// Evaluation context: the global valuation plus the binding table of the
/// evaluating component instance (slot -> global VarId). An empty binding
/// table means slots *are* global variable ids (identity binding), which is
/// what the programmatic model builders and the network's own expressions use.
struct EvalContext {
    std::span<const Value> values;
    std::span<const VarId> bindings = {};

    [[nodiscard]] const Value& value_of(Slot slot) const {
        const VarId id = bindings.empty() ? slot : bindings[slot];
        SLIMSIM_ASSERT(id < values.size());
        return values[id];
    }
};

/// Evaluates a resolved expression. Throws slimsim::Error on division by
/// zero or modulo by zero (user-visible model error); asserts on type
/// confusion (resolver bugs).
///
/// Implemented as compile-and-run over the hash-consing program cache
/// (expr/compile.hpp): every evaluation path in slimsim goes through the
/// compiled layer. Hot loops should compile() once instead of calling this
/// per state.
[[nodiscard]] Value evaluate(const Expr& e, const EvalContext& ctx);

/// Convenience: evaluates a Boolean expression.
[[nodiscard]] bool evaluate_bool(const Expr& e, const EvalContext& ctx);

namespace testing {
/// The direct tree-walking interpreter, exposed only for differential tests
/// and interpreter-baseline benchmarks. Production callers use evaluate().
[[nodiscard]] Value reference_evaluate(const Expr& e, const EvalContext& ctx);
} // namespace testing

} // namespace slimsim::expr
