#include "expr/eval.hpp"

#include "expr/compile.hpp"

namespace slimsim::expr {

namespace {

Value eval_arith(BinaryOp op, const Value& l, const Value& r, const SourceLoc& loc) {
    if (l.is_int() && r.is_int()) {
        const std::int64_t a = l.as_int();
        const std::int64_t b = r.as_int();
        switch (op) {
        case BinaryOp::Add: return Value(a + b);
        case BinaryOp::Sub: return Value(a - b);
        case BinaryOp::Mul: return Value(a * b);
        case BinaryOp::Div:
            if (b == 0) throw Error(loc, "integer division by zero");
            return Value(a / b);
        case BinaryOp::Mod:
            if (b == 0) throw Error(loc, "modulo by zero");
            return Value(a % b);
        default: SLIMSIM_ASSERT(false);
        }
    }
    const double a = l.as_real();
    const double b = r.as_real();
    switch (op) {
    case BinaryOp::Add: return Value(a + b);
    case BinaryOp::Sub: return Value(a - b);
    case BinaryOp::Mul: return Value(a * b);
    case BinaryOp::Div:
        if (b == 0.0) throw Error(loc, "division by zero");
        return Value(a / b);
    case BinaryOp::Mod: throw Error(loc, "mod requires integer operands");
    default: SLIMSIM_ASSERT(false);
    }
    return Value();
}

bool eval_compare(BinaryOp op, const Value& l, const Value& r) {
    if (l.is_bool() || r.is_bool()) {
        SLIMSIM_ASSERT(l.is_bool() && r.is_bool());
        switch (op) {
        case BinaryOp::Eq: return l.as_bool() == r.as_bool();
        case BinaryOp::Ne: return l.as_bool() != r.as_bool();
        default: SLIMSIM_ASSERT(false);
        }
    }
    const double a = l.as_real();
    const double b = r.as_real();
    switch (op) {
    case BinaryOp::Eq: return a == b;
    case BinaryOp::Ne: return a != b;
    case BinaryOp::Lt: return a < b;
    case BinaryOp::Le: return a <= b;
    case BinaryOp::Gt: return a > b;
    case BinaryOp::Ge: return a >= b;
    default: SLIMSIM_ASSERT(false);
    }
    return false;
}

// The direct tree walker. Kept internal so no production caller can bypass
// the compiled layer; reference_evaluate() exposes it for differential tests.
Value tree_evaluate(const Expr& e, const EvalContext& ctx) {
    switch (e.kind) {
    case ExprKind::Literal:
        return e.literal;
    case ExprKind::Var:
        SLIMSIM_ASSERT(e.slot != kInvalidSlot);
        return ctx.value_of(e.slot);
    case ExprKind::Unary: {
        const Value v = tree_evaluate(*e.a, ctx);
        if (e.uop == UnaryOp::Not) return Value(!v.as_bool());
        if (v.is_int()) return Value(-v.as_int());
        return Value(-v.as_real());
    }
    case ExprKind::Binary: {
        // Short-circuit logical operators.
        if (e.bop == BinaryOp::And) {
            if (!tree_evaluate(*e.a, ctx).as_bool()) return Value(false);
            return Value(tree_evaluate(*e.b, ctx).as_bool());
        }
        if (e.bop == BinaryOp::Or) {
            if (tree_evaluate(*e.a, ctx).as_bool()) return Value(true);
            return Value(tree_evaluate(*e.b, ctx).as_bool());
        }
        if (e.bop == BinaryOp::Implies) {
            if (!tree_evaluate(*e.a, ctx).as_bool()) return Value(true);
            return Value(tree_evaluate(*e.b, ctx).as_bool());
        }
        const Value l = tree_evaluate(*e.a, ctx);
        const Value r = tree_evaluate(*e.b, ctx);
        if (is_comparison(e.bop)) return Value(eval_compare(e.bop, l, r));
        return eval_arith(e.bop, l, r, e.loc);
    }
    case ExprKind::Ite:
        return tree_evaluate(tree_evaluate(*e.a, ctx).as_bool() ? *e.b : *e.c, ctx);
    }
    SLIMSIM_ASSERT(false);
    return Value();
}

} // namespace

Value evaluate(const Expr& e, const EvalContext& ctx) {
    // Compile-and-run through the process-wide hash-consing cache. Repeated
    // evaluations of a structurally equal expression hit the cache (one
    // canonical-key build, no recompilation); hot loops should still hold the
    // ProgramPtr themselves via expr::compile().
    thread_local EvalScratch scratch;
    return compile(e, ctx.bindings)->run(ctx.values, scratch);
}

bool evaluate_bool(const Expr& e, const EvalContext& ctx) {
    return evaluate(e, ctx).as_bool();
}

namespace testing {

Value reference_evaluate(const Expr& e, const EvalContext& ctx) {
    return tree_evaluate(e, ctx);
}

} // namespace testing

} // namespace slimsim::expr
