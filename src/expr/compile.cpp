#include "expr/compile.hpp"

#include <limits>
#include <mutex>
#include <unordered_map>

#include "support/hash.hpp"

namespace slimsim::expr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- canonical structure keys (hash-consing) --------------------------------

// One word per structural fact, appended in post-order. Locations are
// excluded (first compilation wins for error messages); type kinds are
// included because the satisfying_times recursion asserts on them and one
// global VarId can name differently-typed variables in different models.
void append_key(const Expr& e, std::span<const VarId> bindings,
                std::vector<std::uint64_t>& out) {
    const auto tag = [&](std::uint64_t a, std::uint64_t b = 0) {
        out.push_back(static_cast<std::uint64_t>(e.kind) |
                      (static_cast<std::uint64_t>(e.type.kind) << 8) | (a << 16) |
                      (b << 32));
    };
    switch (e.kind) {
    case ExprKind::Literal:
        tag(0);
        if (e.literal.is_bool()) {
            out.push_back(0x10 | (e.literal.as_bool() ? 1 : 0));
        } else if (e.literal.is_int()) {
            out.push_back(0x20);
            out.push_back(static_cast<std::uint64_t>(e.literal.as_int()));
        } else {
            out.push_back(0x30);
            out.push_back(double_bits(e.literal.as_real()));
        }
        return;
    case ExprKind::Var: {
        SLIMSIM_ASSERT(e.slot != kInvalidSlot);
        const VarId id = bindings.empty() ? e.slot : bindings[e.slot];
        tag(1, id);
        return;
    }
    case ExprKind::Unary:
        append_key(*e.a, bindings, out);
        tag(2, static_cast<std::uint64_t>(e.uop));
        return;
    case ExprKind::Binary:
        append_key(*e.a, bindings, out);
        append_key(*e.b, bindings, out);
        tag(3, static_cast<std::uint64_t>(e.bop));
        return;
    case ExprKind::Ite:
        append_key(*e.a, bindings, out);
        append_key(*e.b, bindings, out);
        append_key(*e.c, bindings, out);
        tag(4);
        return;
    }
    SLIMSIM_ASSERT(false);
}

struct ProgramKey {
    std::vector<std::uint64_t> words;
    std::uint64_t hash = 0;

    friend bool operator==(const ProgramKey& a, const ProgramKey& b) {
        return a.hash == b.hash && a.words == b.words;
    }
};

struct ProgramKeyHash {
    std::size_t operator()(const ProgramKey& k) const {
        return static_cast<std::size_t>(k.hash);
    }
};

} // namespace

// --- compilation ------------------------------------------------------------

namespace detail {

class Compiler {
public:
    Compiler(Program& out, std::span<const VarId> bindings)
        : p_(out), bindings_(bindings) {}

    void compile(const Expr& root) {
        const std::uint32_t r = emit(root);
        SLIMSIM_ASSERT(r + 1 == p_.nodes_.size());
    }

private:
    std::uint32_t intern_loc(const SourceLoc& loc) {
        // Locations repeat heavily within one expression; a linear scan over
        // the (tiny) table beats a map here and runs once per compilation.
        for (std::uint32_t i = 0; i < p_.locs_.size(); ++i) {
            if (p_.locs_[i].file == loc.file && p_.locs_[i].line == loc.line &&
                p_.locs_[i].column == loc.column) {
                return i;
            }
        }
        p_.locs_.push_back(loc);
        return static_cast<std::uint32_t>(p_.locs_.size() - 1);
    }

    std::uint32_t add_insn(Insn::Op op, std::uint32_t dst, std::uint32_t a = 0,
                           std::uint32_t b = 0, std::uint32_t loc = 0) {
        p_.code_.push_back({op, dst, a, b, loc});
        return static_cast<std::uint32_t>(p_.code_.size() - 1);
    }

    void patch_jump(std::uint32_t insn) {
        p_.code_[insn].b = static_cast<std::uint32_t>(p_.code_.size());
    }

    /// Emits node + bytecode for `e`; returns the node index (== register).
    std::uint32_t emit(const Expr& e) {
        const auto code_begin = static_cast<std::uint32_t>(p_.code_.size());
        ProgramNode n;
        n.kind = e.kind;
        n.uop = e.uop;
        n.bop = e.bop;
        n.is_bool = e.type.is_bool();
        n.loc = intern_loc(e.loc);

        switch (e.kind) {
        case ExprKind::Literal: {
            n.payload = static_cast<std::uint32_t>(p_.consts_.size());
            p_.consts_.push_back(e.literal);
            const std::uint32_t dst = push_node(n, code_begin);
            add_insn(Insn::Op::LoadConst, dst, n.payload);
            return finish(dst);
        }
        case ExprKind::Var: {
            SLIMSIM_ASSERT(e.slot != kInvalidSlot);
            n.payload = bindings_.empty() ? e.slot : bindings_[e.slot];
            const std::uint32_t dst = push_node(n, code_begin);
            add_insn(Insn::Op::LoadVar, dst, n.payload);
            return finish(dst);
        }
        case ExprKind::Unary: {
            const std::uint32_t a = emit(*e.a);
            n.a = a;
            const std::uint32_t dst = push_node(n, code_begin);
            add_insn(e.uop == UnaryOp::Not ? Insn::Op::Not : Insn::Op::Neg, dst, a);
            return finish(dst);
        }
        case ExprKind::Binary: {
            if (e.bop == BinaryOp::And || e.bop == BinaryOp::Or ||
                e.bop == BinaryOp::Implies) {
                return emit_logical(e, n, code_begin);
            }
            const std::uint32_t a = emit(*e.a);
            const std::uint32_t b = emit(*e.b);
            n.a = a;
            n.b = b;
            const std::uint32_t dst = push_node(n, code_begin);
            add_insn(binary_op(e.bop), dst, a, b, n.loc);
            return finish(dst);
        }
        case ExprKind::Ite: {
            // cond; if false -> else-branch; value of the chosen branch only
            // (the skipped branch's code never runs, as in the interpreter).
            const std::uint32_t a = emit(*e.a);
            n.a = a;
            const std::uint32_t jf = add_insn(Insn::Op::JumpIfFalse, 0, a);
            const std::uint32_t b = emit(*e.b);
            n.b = b;
            // dst is known only after both branches' nodes exist; reserve the
            // node now so the branch moves can target it.
            const std::uint32_t then_move = add_insn(Insn::Op::Move, 0, b);
            const std::uint32_t jend = add_insn(Insn::Op::Jump, 0);
            patch_jump(jf);
            const std::uint32_t c = emit(*e.c);
            n.c = c;
            const std::uint32_t else_move = add_insn(Insn::Op::Move, 0, c);
            patch_jump(jend);
            const std::uint32_t dst = push_node(n, code_begin);
            p_.code_[then_move].dst = dst;
            p_.code_[else_move].dst = dst;
            return finish(dst);
        }
        }
        SLIMSIM_ASSERT(false);
        return 0;
    }

    std::uint32_t emit_logical(const Expr& e, ProgramNode n, std::uint32_t code_begin) {
        const std::uint32_t a = emit(*e.a);
        n.a = a;
        // And:     a false -> false, else bool(b)
        // Or:      a true  -> true,  else bool(b)
        // Implies: a false -> true,  else bool(b)
        const bool jump_on_true = e.bop == BinaryOp::Or;
        const std::uint32_t jshort = add_insn(
            jump_on_true ? Insn::Op::JumpIfTrue : Insn::Op::JumpIfFalse, 0, a);
        const std::uint32_t b = emit(*e.b);
        n.b = b;
        const std::uint32_t move = add_insn(Insn::Op::MoveBool, 0, b);
        const std::uint32_t jend = add_insn(Insn::Op::Jump, 0);
        patch_jump(jshort);
        const std::uint32_t load = add_insn(
            e.bop == BinaryOp::And ? Insn::Op::LoadFalse : Insn::Op::LoadTrue, 0);
        patch_jump(jend);
        const std::uint32_t dst = push_node(n, code_begin);
        p_.code_[move].dst = dst;
        p_.code_[load].dst = dst;
        return finish(dst);
    }

    static Insn::Op binary_op(BinaryOp op) {
        switch (op) {
        case BinaryOp::Add: return Insn::Op::Add;
        case BinaryOp::Sub: return Insn::Op::Sub;
        case BinaryOp::Mul: return Insn::Op::Mul;
        case BinaryOp::Div: return Insn::Op::Div;
        case BinaryOp::Mod: return Insn::Op::Mod;
        case BinaryOp::Eq: return Insn::Op::Eq;
        case BinaryOp::Ne: return Insn::Op::Ne;
        case BinaryOp::Lt: return Insn::Op::Lt;
        case BinaryOp::Le: return Insn::Op::Le;
        case BinaryOp::Gt: return Insn::Op::Gt;
        case BinaryOp::Ge: return Insn::Op::Ge;
        default: SLIMSIM_ASSERT(false);
        }
        return Insn::Op::Add;
    }

    std::uint32_t push_node(ProgramNode& n, std::uint32_t code_begin) {
        n.code_begin = code_begin;
        p_.nodes_.push_back(n);
        return static_cast<std::uint32_t>(p_.nodes_.size() - 1);
    }

    std::uint32_t finish(std::uint32_t dst) {
        p_.nodes_[dst].code_end = static_cast<std::uint32_t>(p_.code_.size());
        return dst;
    }

    Program& p_;
    std::span<const VarId> bindings_;
};

} // namespace detail

namespace {

// --- arithmetic (identical to the expr/eval.cpp tree walker) ----------------

Value eval_arith(Insn::Op op, const Value& l, const Value& r, const SourceLoc& loc) {
    if (l.is_int() && r.is_int()) {
        const std::int64_t a = l.as_int();
        const std::int64_t b = r.as_int();
        switch (op) {
        case Insn::Op::Add: return Value(a + b);
        case Insn::Op::Sub: return Value(a - b);
        case Insn::Op::Mul: return Value(a * b);
        case Insn::Op::Div:
            if (b == 0) throw Error(loc, "integer division by zero");
            return Value(a / b);
        case Insn::Op::Mod:
            if (b == 0) throw Error(loc, "modulo by zero");
            return Value(a % b);
        default: SLIMSIM_ASSERT(false);
        }
    }
    const double a = l.as_real();
    const double b = r.as_real();
    switch (op) {
    case Insn::Op::Add: return Value(a + b);
    case Insn::Op::Sub: return Value(a - b);
    case Insn::Op::Mul: return Value(a * b);
    case Insn::Op::Div:
        if (b == 0.0) throw Error(loc, "division by zero");
        return Value(a / b);
    case Insn::Op::Mod: throw Error(loc, "mod requires integer operands");
    default: SLIMSIM_ASSERT(false);
    }
    return Value();
}

bool eval_compare(Insn::Op op, const Value& l, const Value& r) {
    if (l.is_bool() || r.is_bool()) {
        SLIMSIM_ASSERT(l.is_bool() && r.is_bool());
        switch (op) {
        case Insn::Op::Eq: return l.as_bool() == r.as_bool();
        case Insn::Op::Ne: return l.as_bool() != r.as_bool();
        default: SLIMSIM_ASSERT(false);
        }
    }
    const double a = l.as_real();
    const double b = r.as_real();
    switch (op) {
    case Insn::Op::Eq: return a == b;
    case Insn::Op::Ne: return a != b;
    case Insn::Op::Lt: return a < b;
    case Insn::Op::Le: return a <= b;
    case Insn::Op::Gt: return a > b;
    case Insn::Op::Ge: return a >= b;
    default: SLIMSIM_ASSERT(false);
    }
    return false;
}

/// Solves a + b*t <op> 0 for t in [0, inf); identical to expr/timeline.cpp.
IntervalSet solve_comparison(BinaryOp op, const AffineForm& f) {
    if (f.constant()) {
        bool holds = false;
        switch (op) {
        case BinaryOp::Eq: holds = f.a == 0.0; break;
        case BinaryOp::Ne: holds = f.a != 0.0; break;
        case BinaryOp::Lt: holds = f.a < 0.0; break;
        case BinaryOp::Le: holds = f.a <= 0.0; break;
        case BinaryOp::Gt: holds = f.a > 0.0; break;
        case BinaryOp::Ge: holds = f.a >= 0.0; break;
        default: SLIMSIM_ASSERT(false);
        }
        return holds ? IntervalSet::all() : IntervalSet::empty_set();
    }
    const double root = -f.a / f.b;
    switch (op) {
    case BinaryOp::Eq:
        return root >= 0.0 ? IntervalSet::point(root) : IntervalSet::empty_set();
    case BinaryOp::Ne:
        return IntervalSet::all();
    case BinaryOp::Lt:
    case BinaryOp::Le:
        if (f.b > 0.0) {
            return root >= 0.0 ? IntervalSet(0.0, root) : IntervalSet::empty_set();
        }
        return IntervalSet(std::max(0.0, root), kInf);
    case BinaryOp::Gt:
    case BinaryOp::Ge:
        if (f.b > 0.0) return IntervalSet(std::max(0.0, root), kInf);
        return root >= 0.0 ? IntervalSet(0.0, root) : IntervalSet::empty_set();
    default: SLIMSIM_ASSERT(false);
    }
    return IntervalSet::empty_set();
}

/// The double comparison of eval_compare, keyed by the AST operator.
bool compare_reals(BinaryOp op, double a, double b) {
    switch (op) {
    case BinaryOp::Eq: return a == b;
    case BinaryOp::Ne: return a != b;
    case BinaryOp::Lt: return a < b;
    case BinaryOp::Le: return a <= b;
    case BinaryOp::Gt: return a > b;
    case BinaryOp::Ge: return a >= b;
    default: SLIMSIM_ASSERT(false);
    }
    return false;
}

} // namespace

// --- fast-path classification -----------------------------------------------

void Program::classify() {
    const auto is_leaf = [](const ProgramNode& n) {
        return n.kind == ExprKind::Var || n.kind == ExprKind::Literal;
    };
    if (nodes_.size() == 1 && is_leaf(nodes_[0])) {
        fast_ = Fast::Load;
        return;
    }
    const ProgramNode& root = nodes_.back();
    if (nodes_.size() == 3 && root.kind == ExprKind::Binary &&
        is_comparison(root.bop)) {
        const ProgramNode& l = nodes_[root.a];
        const ProgramNode& r = nodes_[root.b];
        // Boolean operands (bool = / !=) stay on the generic path: their
        // compare is by as_bool, and a Boolean leaf has no affine form.
        if (is_leaf(l) && is_leaf(r) && !l.is_bool && !r.is_bool) {
            const auto operand = [&](const ProgramNode& n) -> FastOperand {
                if (n.kind == ExprKind::Var) return {n.payload, 0.0};
                return {kFastConst, consts_[n.payload].as_real()};
            };
            fast_ = Fast::Compare;
            fast_bop_ = root.bop;
            fast_lhs_ = operand(l);
            fast_rhs_ = operand(r);
        }
    }
}

// --- execution --------------------------------------------------------------

void Program::ensure_scratch(EvalScratch& scratch) const {
    if (scratch.regs.size() < nodes_.size()) scratch.regs.resize(nodes_.size());
    if (scratch.time_dep.size() < nodes_.size()) scratch.time_dep.resize(nodes_.size());
}

Value Program::run_range(std::uint32_t begin, std::uint32_t end,
                         std::span<const Value> values, std::uint32_t result_reg,
                         EvalScratch& scratch) const {
    std::vector<Value>& regs = scratch.regs;
    for (std::uint32_t pc = begin; pc != end;) {
        const Insn& i = code_[pc];
        switch (i.op) {
        case Insn::Op::LoadConst: regs[i.dst] = consts_[i.a]; break;
        case Insn::Op::LoadVar:
            SLIMSIM_ASSERT(i.a < values.size());
            regs[i.dst] = values[i.a];
            break;
        case Insn::Op::Not: regs[i.dst] = Value(!regs[i.a].as_bool()); break;
        case Insn::Op::Neg: {
            const Value& v = regs[i.a];
            regs[i.dst] = v.is_int() ? Value(-v.as_int()) : Value(-v.as_real());
            break;
        }
        case Insn::Op::Add:
        case Insn::Op::Sub:
        case Insn::Op::Mul:
        case Insn::Op::Div:
        case Insn::Op::Mod:
            regs[i.dst] = eval_arith(i.op, regs[i.a], regs[i.b], locs_[i.loc]);
            break;
        case Insn::Op::Eq:
        case Insn::Op::Ne:
        case Insn::Op::Lt:
        case Insn::Op::Le:
        case Insn::Op::Gt:
        case Insn::Op::Ge:
            regs[i.dst] = Value(eval_compare(i.op, regs[i.a], regs[i.b]));
            break;
        case Insn::Op::Move: regs[i.dst] = regs[i.a]; break;
        case Insn::Op::MoveBool: regs[i.dst] = Value(regs[i.a].as_bool()); break;
        case Insn::Op::LoadTrue: regs[i.dst] = Value(true); break;
        case Insn::Op::LoadFalse: regs[i.dst] = Value(false); break;
        case Insn::Op::Jump: pc = i.b; continue;
        case Insn::Op::JumpIfFalse:
            if (!regs[i.a].as_bool()) {
                pc = i.b;
                continue;
            }
            break;
        case Insn::Op::JumpIfTrue:
            if (regs[i.a].as_bool()) {
                pc = i.b;
                continue;
            }
            break;
        }
        ++pc;
    }
    return regs[result_reg];
}

Value Program::run(std::span<const Value> values, EvalScratch& scratch) const {
    if (fast_ == Fast::Load) {
        const ProgramNode& n = nodes_[0];
        if (n.kind == ExprKind::Literal) return consts_[n.payload];
        SLIMSIM_ASSERT(n.payload < values.size());
        return values[n.payload];
    }
    if (fast_ == Fast::Compare) {
        const auto operand = [&](const FastOperand& o) {
            if (o.var == kFastConst) return o.constant;
            SLIMSIM_ASSERT(o.var < values.size());
            return values[o.var].as_real();
        };
        return Value(compare_reals(fast_bop_, operand(fast_lhs_), operand(fast_rhs_)));
    }
    ensure_scratch(scratch);
    return run_range(0, static_cast<std::uint32_t>(code_.size()), values,
                     static_cast<std::uint32_t>(nodes_.size() - 1), scratch);
}

// --- timed evaluation -------------------------------------------------------

void Program::compute_time_dep(std::span<const double> rates,
                               EvalScratch& scratch) const {
    // One bottom-up pass; the tree walker recomputes this predicate at every
    // recursion step (quadratic), with identical per-node results.
    std::vector<char>& td = scratch.time_dep;
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
        const ProgramNode& n = nodes_[i];
        switch (n.kind) {
        case ExprKind::Literal: td[i] = 0; break;
        case ExprKind::Var:
            SLIMSIM_ASSERT(n.payload < rates.size());
            td[i] = rates[n.payload] != 0.0 ? 1 : 0;
            break;
        case ExprKind::Unary: td[i] = td[n.a]; break;
        case ExprKind::Binary: td[i] = td[n.a] | td[n.b]; break;
        case ExprKind::Ite: td[i] = td[n.a] | td[n.b] | td[n.c]; break;
        }
    }
}

void Program::non_affine(const ProgramNode& n) const {
    throw Error(locs_[n.loc], "expression is not affine in time");
}

AffineForm Program::affine_node(std::uint32_t ni, std::span<const Value> values,
                                std::span<const double> rates,
                                EvalScratch& scratch) const {
    const ProgramNode& n = nodes_[ni];
    if (scratch.time_dep[ni] == 0) {
        // Time-independent subtrees of any shape (mod, ite, ...) evaluate to
        // a constant form via the untimed bytecode (short-circuits intact).
        return {run_range(n.code_begin, n.code_end, values, ni, scratch).as_real(), 0.0};
    }
    switch (n.kind) {
    case ExprKind::Var:
        return {values[n.payload].as_real(), rates[n.payload]};
    case ExprKind::Unary: {
        if (n.uop != UnaryOp::Neg) non_affine(n);
        const AffineForm f = affine_node(n.a, values, rates, scratch);
        return {-f.a, -f.b};
    }
    case ExprKind::Binary: {
        switch (n.bop) {
        case BinaryOp::Add: {
            const AffineForm l = affine_node(n.a, values, rates, scratch);
            const AffineForm r = affine_node(n.b, values, rates, scratch);
            return {l.a + r.a, l.b + r.b};
        }
        case BinaryOp::Sub: {
            const AffineForm l = affine_node(n.a, values, rates, scratch);
            const AffineForm r = affine_node(n.b, values, rates, scratch);
            return {l.a - r.a, l.b - r.b};
        }
        case BinaryOp::Mul: {
            const AffineForm l = affine_node(n.a, values, rates, scratch);
            const AffineForm r = affine_node(n.b, values, rates, scratch);
            if (l.constant()) return {l.a * r.a, l.a * r.b};
            if (r.constant()) return {l.a * r.a, l.b * r.a};
            non_affine(n); // product of two time-dependent expressions
        }
        case BinaryOp::Div: {
            const AffineForm l = affine_node(n.a, values, rates, scratch);
            const AffineForm r = affine_node(n.b, values, rates, scratch);
            if (!r.constant()) non_affine(n); // time-dependent divisor
            if (r.a == 0.0) throw Error(locs_[n.loc], "division by zero");
            return {l.a / r.a, l.b / r.a};
        }
        default:
            non_affine(n); // mod of time-dependent operands, or a Boolean op
        }
    }
    case ExprKind::Ite:
    case ExprKind::Literal:
        non_affine(n); // time-dependent ite in numeric position
    }
    SLIMSIM_ASSERT(false);
    return {};
}

IntervalSet Program::sat_node(std::uint32_t ni, std::span<const Value> values,
                              std::span<const double> rates,
                              EvalScratch& scratch) const {
    const ProgramNode& n = nodes_[ni];
    SLIMSIM_ASSERT(n.is_bool);
    if (scratch.time_dep[ni] == 0) {
        return run_range(n.code_begin, n.code_end, values, ni, scratch).as_bool()
                   ? IntervalSet::all()
                   : IntervalSet::empty_set();
    }
    switch (n.kind) {
    case ExprKind::Unary:
        SLIMSIM_ASSERT(n.uop == UnaryOp::Not);
        return sat_node(n.a, values, rates, scratch).complement(kInf);
    case ExprKind::Binary: {
        switch (n.bop) {
        case BinaryOp::And:
            return sat_node(n.a, values, rates, scratch)
                .intersect(sat_node(n.b, values, rates, scratch));
        case BinaryOp::Or:
            return sat_node(n.a, values, rates, scratch)
                .unite(sat_node(n.b, values, rates, scratch));
        case BinaryOp::Implies:
            return sat_node(n.a, values, rates, scratch)
                .complement(kInf)
                .unite(sat_node(n.b, values, rates, scratch));
        default:
            break;
        }
        if (is_comparison(n.bop)) {
            const AffineForm l = affine_node(n.a, values, rates, scratch);
            const AffineForm r = affine_node(n.b, values, rates, scratch);
            return solve_comparison(n.bop, {l.a - r.a, l.b - r.b});
        }
        non_affine(n);
    }
    case ExprKind::Ite: {
        const IntervalSet cond = sat_node(n.a, values, rates, scratch);
        const IntervalSet then_s = sat_node(n.b, values, rates, scratch);
        const IntervalSet else_s = sat_node(n.c, values, rates, scratch);
        return cond.intersect(then_s).unite(cond.complement(kInf).intersect(else_s));
    }
    case ExprKind::Literal:
    case ExprKind::Var:
        // Literals / Boolean variables are never time-dependent; handled above.
        SLIMSIM_ASSERT(false);
    }
    SLIMSIM_ASSERT(false);
    return IntervalSet::empty_set();
}

IntervalSet Program::satisfying_times(std::span<const Value> values,
                                      std::span<const double> rates,
                                      EvalScratch& scratch) const {
    if (fast_ == Fast::Load) {
        // A lone Boolean variable or literal; never time-dependent.
        const ProgramNode& n = nodes_[0];
        SLIMSIM_ASSERT(n.is_bool);
        const bool holds = n.kind == ExprKind::Literal
                               ? consts_[n.payload].as_bool()
                               : values[n.payload].as_bool();
        return holds ? IntervalSet::all() : IntervalSet::empty_set();
    }
    if (fast_ == Fast::Compare) {
        // The affine forms of the two leaves directly: {value, rate} for a
        // variable (its rate is 0 exactly when it is time-independent, so
        // this agrees with the generic constant-subtree evaluation) and
        // {constant, 0} for a literal.
        const auto operand = [&](const FastOperand& o) -> AffineForm {
            if (o.var == kFastConst) return {o.constant, 0.0};
            SLIMSIM_ASSERT(o.var < rates.size());
            return {values[o.var].as_real(), rates[o.var]};
        };
        const AffineForm l = operand(fast_lhs_);
        const AffineForm r = operand(fast_rhs_);
        if (l.constant() && r.constant()) {
            // Both operands time-independent: the generic walk evaluates the
            // comparison directly (not via the l-r difference); match it so
            // IEEE corner cases (infinities) stay bit-identical.
            return compare_reals(fast_bop_, l.a, r.a) ? IntervalSet::all()
                                                      : IntervalSet::empty_set();
        }
        return solve_comparison(fast_bop_, {l.a - r.a, l.b - r.b});
    }
    ensure_scratch(scratch);
    compute_time_dep(rates, scratch);
    return sat_node(static_cast<std::uint32_t>(nodes_.size() - 1), values, rates,
                    scratch);
}

AffineForm Program::eval_affine(std::span<const Value> values,
                                std::span<const double> rates,
                                EvalScratch& scratch) const {
    if (fast_ == Fast::Load) {
        const ProgramNode& n = nodes_[0];
        if (n.kind == ExprKind::Literal) return {consts_[n.payload].as_real(), 0.0};
        SLIMSIM_ASSERT(n.payload < rates.size());
        return {values[n.payload].as_real(), rates[n.payload]};
    }
    ensure_scratch(scratch);
    compute_time_dep(rates, scratch);
    return affine_node(static_cast<std::uint32_t>(nodes_.size() - 1), values, rates,
                       scratch);
}

// --- the hash-consing cache -------------------------------------------------

struct ProgramCache::Impl {
    std::mutex mu;
    std::unordered_map<ProgramKey, ProgramPtr, ProgramKeyHash> map;
};

ProgramCache::ProgramCache() : impl_(std::make_shared<Impl>()) {}

ProgramPtr ProgramCache::get_or_compile(const Expr& e, std::span<const VarId> bindings) {
    ProgramKey key;
    append_key(e, bindings, key.words);
    key.hash = hash_words(key.words.data(), key.words.size());

    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->map.find(key);
    if (it != impl_->map.end()) return it->second;

    auto program = std::make_shared<Program>();
    detail::Compiler(*program, bindings).compile(e);
    program->key_hash_ = key.hash;
    program->classify();
    ProgramPtr shared = std::move(program);
    impl_->map.emplace(std::move(key), shared);
    return shared;
}

std::size_t ProgramCache::size() const {
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->map.size();
}

ProgramCache& program_cache() {
    static ProgramCache cache;
    return cache;
}

ProgramPtr compile(const Expr& e, std::span<const VarId> bindings) {
    return program_cache().get_or_compile(e, bindings);
}

} // namespace slimsim::expr
