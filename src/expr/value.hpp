// Runtime values of SLIM data components.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "expr/type.hpp"
#include "support/diagnostics.hpp"

namespace slimsim {

/// A runtime value: Boolean, integer or real. Clock/continuous variables
/// hold reals.
class Value {
public:
    Value() : v_(false) {}
    explicit Value(bool b) : v_(b) {}
    explicit Value(std::int64_t i) : v_(i) {}
    explicit Value(double d) : v_(d) {}

    [[nodiscard]] static Value default_for(const Type& t);

    [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
    [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
    [[nodiscard]] bool is_real() const { return std::holds_alternative<double>(v_); }
    [[nodiscard]] bool is_numeric() const { return !is_bool(); }

    [[nodiscard]] bool as_bool() const {
        SLIMSIM_ASSERT(is_bool());
        return std::get<bool>(v_);
    }
    [[nodiscard]] std::int64_t as_int() const {
        SLIMSIM_ASSERT(is_int());
        return std::get<std::int64_t>(v_);
    }
    /// Numeric value widened to double (ints are converted).
    [[nodiscard]] double as_real() const {
        if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
        SLIMSIM_ASSERT(is_real());
        return std::get<double>(v_);
    }

    /// Converts a numeric value into the representation of `t`
    /// (real -> int truncates toward zero; used for typed assignment).
    [[nodiscard]] Value coerce_to(const Type& t) const;

    /// Exact equality: bools compare as bools; numerics compare as reals.
    friend bool operator==(const Value& a, const Value& b);

    [[nodiscard]] std::string to_string() const;

    /// Hash combining used by the explicit state-space builder.
    [[nodiscard]] std::size_t hash() const;

private:
    std::variant<bool, std::int64_t, double> v_;
};

} // namespace slimsim
