// Expression AST shared by the SLIM front-end and the simulation engine.
//
// Variable references carry a *slot*: an index into a per-context binding
// table mapping slots to global variable ids. Component definitions are
// instantiated many times; each instance supplies its own binding table, so
// the same (resolved) expression tree is shared by all instances.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "expr/type.hpp"
#include "expr/value.hpp"
#include "support/diagnostics.hpp"

namespace slimsim::expr {

enum class UnaryOp : std::uint8_t { Not, Neg };
enum class BinaryOp : std::uint8_t {
    Add, Sub, Mul, Div, Mod,
    And, Or, Implies,
    Eq, Ne, Lt, Le, Gt, Ge,
};

[[nodiscard]] std::string to_string(UnaryOp op);
[[nodiscard]] std::string to_string(BinaryOp op);
[[nodiscard]] bool is_comparison(BinaryOp op);
[[nodiscard]] bool is_logical(BinaryOp op);
[[nodiscard]] bool is_arithmetic(BinaryOp op);

enum class ExprKind : std::uint8_t { Literal, Var, Unary, Binary, Ite };

struct Expr;
/// Trees are uniquely owned while being built by the parser, then frozen by
/// the resolver and shared read-only afterwards.
using ExprPtr = std::shared_ptr<Expr>;

/// Slot index local to a binding context.
using Slot = std::uint32_t;
inline constexpr Slot kInvalidSlot = static_cast<Slot>(-1);

struct Expr {
    ExprKind kind;
    SourceLoc loc;

    // Literal
    Value literal;
    // Var
    std::string var_name;        // as written; kept for diagnostics
    Slot slot = kInvalidSlot;    // filled by the resolver
    // Unary / Binary / Ite
    UnaryOp uop = UnaryOp::Not;
    BinaryOp bop = BinaryOp::Add;
    ExprPtr a, b, c;             // operands; Ite uses a=cond, b=then, c=else

    /// Static type; filled by the resolver (defaults to bool pre-resolution).
    Type type;

    [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] ExprPtr make_literal(Value v, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_bool(bool v);
[[nodiscard]] ExprPtr make_int(std::int64_t v);
[[nodiscard]] ExprPtr make_real(double v);
[[nodiscard]] ExprPtr make_var(std::string name, SourceLoc loc = {});
/// Pre-resolved variable reference (used by programmatic model builders).
[[nodiscard]] ExprPtr make_var_slot(Slot slot, Type type, std::string name = {});
[[nodiscard]] ExprPtr make_unary(UnaryOp op, ExprPtr operand, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_ite(ExprPtr cond, ExprPtr then_e, ExprPtr else_e, SourceLoc loc = {});

/// True if the expression is the literal `true`.
[[nodiscard]] bool is_literal_true(const Expr& e);

/// Deep copy (used when one declaration must be resolved in several scopes).
[[nodiscard]] ExprPtr clone(const Expr& e);

} // namespace slimsim::expr
