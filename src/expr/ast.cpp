#include "expr/ast.hpp"

#include <sstream>

namespace slimsim::expr {

std::string to_string(UnaryOp op) {
    switch (op) {
    case UnaryOp::Not: return "not";
    case UnaryOp::Neg: return "-";
    }
    return "?";
}

std::string to_string(BinaryOp op) {
    switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "mod";
    case BinaryOp::And: return "and";
    case BinaryOp::Or: return "or";
    case BinaryOp::Implies: return "=>";
    case BinaryOp::Eq: return "=";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    }
    return "?";
}

bool is_comparison(BinaryOp op) {
    switch (op) {
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: return true;
    default: return false;
    }
}

bool is_logical(BinaryOp op) {
    return op == BinaryOp::And || op == BinaryOp::Or || op == BinaryOp::Implies;
}

bool is_arithmetic(BinaryOp op) {
    switch (op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod: return true;
    default: return false;
    }
}

std::string Expr::to_string() const {
    std::ostringstream os;
    switch (kind) {
    case ExprKind::Literal:
        os << literal.to_string();
        break;
    case ExprKind::Var:
        os << (var_name.empty() ? "$" + std::to_string(slot) : var_name);
        break;
    case ExprKind::Unary:
        os << slimsim::expr::to_string(uop) << ' ' << '(' << a->to_string() << ')';
        break;
    case ExprKind::Binary:
        os << '(' << a->to_string() << ' ' << slimsim::expr::to_string(bop) << ' '
           << b->to_string() << ')';
        break;
    case ExprKind::Ite:
        os << "(if " << a->to_string() << " then " << b->to_string() << " else "
           << c->to_string() << ')';
        break;
    }
    return os.str();
}

ExprPtr make_literal(Value v, SourceLoc loc) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Literal;
    e->loc = std::move(loc);
    if (v.is_bool()) {
        e->type = Type::boolean();
    } else if (v.is_int()) {
        e->type = Type::integer();
    } else {
        e->type = Type::real();
    }
    e->literal = v;
    return e;
}

ExprPtr make_bool(bool v) { return make_literal(Value(v)); }
ExprPtr make_int(std::int64_t v) { return make_literal(Value(v)); }
ExprPtr make_real(double v) { return make_literal(Value(v)); }

ExprPtr make_var(std::string name, SourceLoc loc) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Var;
    e->loc = std::move(loc);
    e->var_name = std::move(name);
    return e;
}

ExprPtr make_var_slot(Slot slot, Type type, std::string name) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Var;
    e->slot = slot;
    e->type = type;
    e->var_name = std::move(name);
    return e;
}

ExprPtr make_unary(UnaryOp op, ExprPtr operand, SourceLoc loc) {
    SLIMSIM_ASSERT(operand != nullptr);
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Unary;
    e->loc = std::move(loc);
    e->uop = op;
    e->type = op == UnaryOp::Not ? Type::boolean() : operand->type;
    e->a = std::move(operand);
    return e;
}

ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc) {
    SLIMSIM_ASSERT(lhs != nullptr && rhs != nullptr);
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Binary;
    e->loc = std::move(loc);
    e->bop = op;
    if (is_comparison(op) || is_logical(op)) {
        e->type = Type::boolean();
    } else if (lhs->type.is_int() && rhs->type.is_int()) {
        e->type = Type::integer();
    } else {
        e->type = Type::real();
    }
    e->a = std::move(lhs);
    e->b = std::move(rhs);
    return e;
}

ExprPtr make_ite(ExprPtr cond, ExprPtr then_e, ExprPtr else_e, SourceLoc loc) {
    SLIMSIM_ASSERT(cond != nullptr && then_e != nullptr && else_e != nullptr);
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Ite;
    e->loc = std::move(loc);
    e->type = then_e->type;
    e->a = std::move(cond);
    e->b = std::move(then_e);
    e->c = std::move(else_e);
    return e;
}

bool is_literal_true(const Expr& e) {
    return e.kind == ExprKind::Literal && e.literal.is_bool() && e.literal.as_bool();
}

ExprPtr clone(const Expr& e) {
    auto copy = std::make_shared<Expr>(e);
    if (e.a) copy->a = clone(*e.a);
    if (e.b) copy->b = clone(*e.b);
    if (e.c) copy->c = clone(*e.c);
    return copy;
}

} // namespace slimsim::expr
