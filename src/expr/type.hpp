// The SLIM data type system.
//
// SLIM data components are Booleans, (ranged) integers, reals, clocks and
// continuous variables. Clocks and continuous variables hold real values that
// evolve under time elapse (clocks with fixed slope 1, continuous variables
// with a mode-dependent constant slope); both are "timed" kinds.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace slimsim {

/// Index of a variable in the instantiated model's global variable table.
using VarId = std::uint32_t;
inline constexpr VarId kInvalidVar = static_cast<VarId>(-1);

enum class TypeKind : std::uint8_t { Bool, Int, Real, Clock, Continuous };

[[nodiscard]] std::string to_string(TypeKind k);

/// A SLIM data type; integer types may carry a range [lo, hi].
struct Type {
    TypeKind kind = TypeKind::Bool;
    std::optional<std::int64_t> lo; // integer range bounds, if any
    std::optional<std::int64_t> hi;

    [[nodiscard]] static Type boolean() { return {TypeKind::Bool, {}, {}}; }
    [[nodiscard]] static Type integer() { return {TypeKind::Int, {}, {}}; }
    [[nodiscard]] static Type integer_range(std::int64_t lo, std::int64_t hi) {
        return {TypeKind::Int, lo, hi};
    }
    [[nodiscard]] static Type real() { return {TypeKind::Real, {}, {}}; }
    [[nodiscard]] static Type clock() { return {TypeKind::Clock, {}, {}}; }
    [[nodiscard]] static Type continuous() { return {TypeKind::Continuous, {}, {}}; }

    [[nodiscard]] bool is_bool() const { return kind == TypeKind::Bool; }
    [[nodiscard]] bool is_int() const { return kind == TypeKind::Int; }
    /// True for any type holding a numeric value (int, real, clock, continuous).
    [[nodiscard]] bool is_numeric() const { return kind != TypeKind::Bool; }
    /// True for types whose value changes under time elapse.
    [[nodiscard]] bool is_timed() const {
        return kind == TypeKind::Clock || kind == TypeKind::Continuous;
    }
    /// True if values of `from` may appear where this type is expected
    /// (int widens to real/clock/continuous contexts; timed kinds are reals).
    [[nodiscard]] bool accepts(const Type& from) const;

    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const Type&, const Type&) = default;
};

} // namespace slimsim
