#include "expr/type.hpp"

#include <sstream>

namespace slimsim {

std::string to_string(TypeKind k) {
    switch (k) {
    case TypeKind::Bool: return "bool";
    case TypeKind::Int: return "int";
    case TypeKind::Real: return "real";
    case TypeKind::Clock: return "clock";
    case TypeKind::Continuous: return "continuous";
    }
    return "?";
}

bool Type::accepts(const Type& from) const {
    if (kind == TypeKind::Bool) return from.kind == TypeKind::Bool;
    // Any numeric value may flow into any numeric slot; integer ranges are
    // enforced dynamically on assignment (see eda::NetworkState).
    return from.is_numeric();
}

std::string Type::to_string() const {
    std::ostringstream os;
    os << slimsim::to_string(kind);
    if (lo && hi) os << '[' << *lo << ".." << *hi << ']';
    return os.str();
}

} // namespace slimsim
