// Affine-in-time expression analysis.
//
// Under time elapse, every timed variable v evolves as v(t) = v(0) + rate_v*t
// with a constant, location-dependent rate (linear-hybrid dynamics). Numeric
// expressions that are affine in the elapsed time t therefore evaluate to a
// linear form a + b*t, and Boolean expressions evaluate to *sets of time
// points* at which they hold — finite unions of intervals.
//
// This module is the machinery behind the simulation strategies: guard
// enablement intervals (Progressive), first enablement (ASAP), and invariant
// horizons (Local / MaxTime) are all computed here, exactly.
#pragma once

#include <span>

#include "expr/eval.hpp"
#include "support/intervals.hpp"

namespace slimsim::expr {

/// Value of a numeric expression as a function of the elapsed time t:
/// value(t) = a + b * t.
struct LinForm {
    double a = 0.0;
    double b = 0.0;

    [[nodiscard]] bool constant() const { return b == 0.0; }
    [[nodiscard]] double at(double t) const { return a + b * t; }
};

/// Context for timed evaluation: the current valuation, the evaluating
/// instance's binding table, and the per-global-variable derivative in the
/// network's current location vector (0 for discrete variables).
struct TimedEvalContext {
    std::span<const Value> values;
    std::span<const VarId> bindings = {};
    std::span<const double> rates; // indexed by global VarId

    [[nodiscard]] EvalContext untimed() const { return {values, bindings}; }
    [[nodiscard]] VarId global_id(Slot slot) const {
        return bindings.empty() ? slot : bindings[slot];
    }
};

/// True if the expression's value can change under time elapse, i.e. it
/// references a variable with a non-zero rate.
[[nodiscard]] bool is_time_dependent(const Expr& e, const TimedEvalContext& ctx);

/// Evaluates a numeric expression to a linear form in t. Throws
/// slimsim::Error if the expression is not affine in t (e.g. the product of
/// two clock expressions) — the validator rejects such models up front.
[[nodiscard]] LinForm eval_affine(const Expr& e, const TimedEvalContext& ctx);

/// Computes the exact set of delays t >= 0 after which the Boolean
/// expression holds (strict bounds closed over-approximated, see
/// support/intervals.hpp). Throws slimsim::Error on non-affine expressions.
[[nodiscard]] IntervalSet satisfying_times(const Expr& e, const TimedEvalContext& ctx);

} // namespace slimsim::expr
