#include "rare/splitting.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "expr/compile.hpp"
#include "expr/eval.hpp"
#include "sim/coverage.hpp"
#include "sim/property.hpp"
#include "sim/runner.hpp"
#include "slim/parser.hpp"
#include "stat/bernoulli.hpp"

namespace slimsim::rare {

std::string SplittingResult::to_string() const {
    // Deliberately no wall time here: this line is deterministic in
    // (seed, workers); wall clock lives in the report's runtime section.
    std::ostringstream os;
    os << "p^ = " << estimate << " (" << base_runs << " roots, " << total_paths
       << " paths, " << goal_hits << " goal hits, max level " << max_level_seen
       << ", rel. half-width " << relative_half_width << ")";
    return os.str();
}

expr::ExprPtr make_level_function(const slim::InstanceModel& model,
                                  std::string_view source) {
    // Any failure surfaces as the one-line `--split: ...` diagnostic the CLI
    // convention expects (docs/robustness.md).
    try {
        expr::ExprPtr e = slim::parse_expression(source, "<level>");
        // Resolve against the global table; reuse the property plumbing but
        // require an integer result. resolve_goal() insists on bool, so
        // resolve manually here.
        slim::SymbolTable table;
        for (const auto& v : model.vars) {
            slim::Symbol sym;
            sym.name = v.full_name;
            sym.kind = slim::SymKind::Data;
            sym.type = v.type;
            table.add(std::move(sym));
        }
        DiagnosticSink sink;
        slim::resolve_expr(*e, table, sink);
        sink.throw_if_errors("level function resolution");
        if (!e->type.is_int()) {
            throw Error(e->loc, "the level function must be integer-valued");
        }
        return e;
    } catch (const Error& err) {
        std::string msg = err.what();
        // One line only: fold the first diagnostic of a multi-line resolution
        // summary into the headline and drop the rest.
        if (const auto nl = msg.find('\n'); nl != std::string::npos) {
            std::string first = msg.substr(nl + 1, msg.find('\n', nl + 1) - nl - 1);
            msg.resize(nl);
            if (const auto start = first.find_first_not_of(" \t");
                start != std::string::npos) {
                msg += ' ';
                msg.append(first, start, std::string::npos);
            }
        }
        throw Error("--split: " + msg);
    }
}

namespace {

/// Level-function configuration shared by every worker: either a compiled
/// user expression, or the structural auto level — the number of
/// error-model processes outside their initial location, thresholded at the
/// pilot-derived raw values.
struct LevelConfig {
    expr::ProgramPtr program; // null selects the structural level
    /// (process index, initial location) of every error-model process.
    std::vector<std::pair<std::size_t, int>> error_procs;
    /// Ascending raw values promoted to splitting levels (auto mode); the
    /// mapped level of raw r is the number of thresholds <= r.
    std::vector<int> thresholds;
};

/// Per-worker level evaluator (owns its EvalScratch).
class LevelFn {
public:
    explicit LevelFn(const LevelConfig& cfg) : cfg_(&cfg) {}

    /// The raw level: the user expression's value, or the error-state count.
    int raw(const eda::NetworkState& s) {
        if (cfg_->program != nullptr) {
            return static_cast<int>(cfg_->program->run(s.values, scratch_).as_int());
        }
        int n = 0;
        for (const auto& [p, init] : cfg_->error_procs) {
            n += static_cast<int>(s.locations[p] != init);
        }
        return n;
    }

    /// The splitting level: raw for expression levels, thresholded for auto.
    int operator()(const eda::NetworkState& s) {
        const int r = raw(s);
        if (cfg_->program != nullptr) return r;
        int level = 0;
        for (const int t : cfg_->thresholds) {
            if (r < t) break;
            ++level;
        }
        return level;
    }

private:
    const LevelConfig* cfg_;
    expr::EvalScratch scratch_;
};

/// A path in flight: its state, RNG stream, progress counters and splitting
/// bookkeeping (weight and highest level already rewarded).
struct Job {
    eda::NetworkState state;
    Rng rng;
    std::size_t steps = 0;
    double weight = 1.0;
    int level = 0;
};

struct LevelAccum {
    std::uint64_t crossings = 0;
    std::uint64_t clones = 0;
};

/// Everything one root tree (the root path plus all clones) contributes to
/// the estimate. Samples merge in global root order, so every accumulation
/// below is deterministic in the seed alone.
struct RootSample {
    double weighted_hits = 0.0;
    std::uint64_t paths = 0;
    std::uint64_t steps = 0; // discrete steps newly simulated in this tree
    std::uint64_t goal_hits = 0;
    int max_level = 0;
    std::map<int, LevelAccum> levels;
    std::array<std::size_t, sim::kPathTerminalCount> terminals{};
    bool error = false; // the tree threw; the fault policy decides
    std::string error_msg;
    bool aborted = false; // abandoned (stop flag / interrupt / path cap)
    bool cap_hit = false; // aborted because it alone exceeded max_total_paths
};

struct TreeContext {
    const sim::PathGenerator* gen = nullptr;
    LevelFn* level = nullptr;
    std::size_t factor = 1;
    std::size_t max_total_paths = 0;
    const std::atomic<bool>* stop = nullptr;      // consumer's drain flag
    const std::atomic<bool>* interrupt = nullptr; // SIGINT/SIGTERM flag
};

/// Simulates root tree `root_index`. Every stream of the tree comes from the
/// family Rng(seed).split(root_index): the root path uses child 0, clones
/// take children 1, 2, ... in spawn order — a pure function of the tree
/// itself, never of scheduling, so the tree is byte-identical no matter
/// which worker runs it.
RootSample simulate_tree(const TreeContext& ctx, const eda::Network& net,
                         std::uint64_t seed, std::size_t root_index) {
    RootSample out;
    const Rng root_master = Rng(seed).split(root_index);
    std::uint64_t stream = 0;

    std::vector<Job> stack;
    {
        Job job;
        job.state = net.initial_state();
        job.rng = root_master.split(stream++);
        job.level = (*ctx.level)(job.state);
        stack.push_back(std::move(job));
    }
    while (!stack.empty()) {
        // The clone loop is the liveness point: budgets and SIGINT are acted
        // on here, between paths, never mid-path.
        if ((ctx.stop != nullptr && ctx.stop->load(std::memory_order_relaxed)) ||
            (ctx.interrupt != nullptr &&
             ctx.interrupt->load(std::memory_order_relaxed))) {
            out.aborted = true;
            return out;
        }
        if (out.paths >= ctx.max_total_paths) {
            out.aborted = true;
            out.cap_hit = true;
            return out;
        }
        Job job = std::move(stack.back());
        stack.pop_back();
        ++out.paths;
        const std::size_t steps0 = job.steps;
        std::optional<sim::PathOutcome> outcome;
        for (;;) {
            // First crossing of a higher level by this lineage: clone and
            // share the statistical weight. A single step that jumps d
            // levels splits d times — once per level, each division paired
            // with factor-1 clones at the divided weight — so total weight
            // is conserved at every crossing and the estimator stays
            // unbiased on multi-level jumps.
            const int now = (*ctx.level)(job.state);
            while (now > job.level) {
                ++job.level;
                out.max_level = std::max(out.max_level, job.level);
                LevelAccum& acc = out.levels[job.level];
                ++acc.crossings;
                if (ctx.factor > 1) {
                    job.weight /= static_cast<double>(ctx.factor);
                    for (std::size_t c = 1; c < ctx.factor; ++c) {
                        Job clone;
                        clone.state = job.state;
                        clone.rng = root_master.split(stream++);
                        clone.steps = job.steps;
                        clone.weight = job.weight;
                        clone.level = job.level;
                        stack.push_back(std::move(clone));
                        ++acc.clones;
                    }
                }
            }
            outcome = ctx.gen->step(job.state, job.rng, job.steps);
            if (outcome) break;
        }
        out.steps += job.steps - steps0;
        ++out.terminals[static_cast<std::size_t>(outcome->terminal)];
        if (outcome->satisfied) {
            out.weighted_hits += job.weight;
            ++out.goal_hits;
        }
    }
    return out;
}

/// simulate_tree with fault isolation: a throwing tree becomes an
/// error-tagged sample; the consumer applies the fault policy at the tree's
/// deterministic root position (workers must never throw — a worker running
/// ahead could otherwise fail on a root the accepted prefix never reaches).
RootSample run_tree_guarded(const TreeContext& ctx, const eda::Network& net,
                            std::uint64_t seed, std::size_t root_index) {
    try {
        return simulate_tree(ctx, net, seed, root_index);
    } catch (const std::exception& e) {
        RootSample s;
        s.error = true;
        s.error_msg = e.what();
        return s;
    }
}

/// Live splitting instruments (docs/observability.md); all updates happen on
/// the consuming thread at merge time, so the gauges follow the accepted
/// (deterministic) prefix.
struct SplitMetrics {
    metrics::Registry* reg = nullptr;
    metrics::Counter* roots = nullptr;
    metrics::Counter* paths = nullptr;
    metrics::Counter* clones = nullptr;
    metrics::Counter* hits = nullptr;
    metrics::Gauge* estimate = nullptr;
    metrics::Gauge* max_level = nullptr;
    std::map<int, metrics::Counter*> level_paths;

    explicit SplitMetrics(metrics::Registry* r) : reg(r) {
        if (reg == nullptr) return;
        roots = &reg->counter("slimsim_splitting_roots_total",
                              "Root trees accepted into the splitting estimate");
        paths = &reg->counter("slimsim_splitting_paths_total",
                              "Paths simulated by importance splitting (roots + clones)");
        clones = &reg->counter("slimsim_splitting_clones_total",
                               "Clones spawned at level crossings");
        hits = &reg->counter("slimsim_splitting_goal_hits_total",
                             "Raw (unweighted) goal observations");
        estimate = &reg->gauge("slimsim_splitting_estimate",
                               "Current weighted splitting estimate");
        max_level = &reg->gauge("slimsim_splitting_max_level",
                                "Highest level crossed so far");
    }

    void on_accept(const RootSample& s, double current_estimate, int current_max) {
        if (reg == nullptr) return;
        roots->add(0, 1);
        paths->add(0, s.paths);
        hits->add(0, s.goal_hits);
        estimate->set(current_estimate);
        max_level->set(static_cast<double>(current_max));
        for (const auto& [level, acc] : s.levels) {
            auto it = level_paths.find(level);
            if (it == level_paths.end()) {
                metrics::Counter& c = reg->counter(
                    "slimsim_splitting_level_crossings_total",
                    "Lineages that first reached a splitting level",
                    metrics::label("level", std::to_string(level)));
                it = level_paths.emplace(level, &c).first;
            }
            it->second->add(0, acc.crossings);
            clones->add(0, acc.clones);
        }
    }
};

/// Accepted-prefix accumulator; every mutation happens in global root order.
struct Merge {
    stat::RunningSummary roots; // per-root weighted contributions
    std::uint64_t total_paths = 0;
    std::uint64_t total_steps = 0;
    std::uint64_t goal_hits = 0;
    int max_level = 0;
    std::map<int, LevelAccum> levels;
    std::array<std::size_t, sim::kPathTerminalCount> terminals{};
    std::uint64_t error_roots = 0;
    std::vector<std::string> error_log;
};

/// Accepts root `root`'s sample into `merge`, or stops the run. Returns
/// false when the run must stop *before* this root counts (path cap, abort);
/// throws when the fault policy is FailFast and the tree errored.
bool accept_sample(Merge& merge, std::size_t root, const RootSample& s,
                   const SplittingOptions& options, SplitMetrics& metrics,
                   sim::RunStatus& status, std::string& stop_cause) {
    if (s.aborted) {
        if (s.cap_hit) {
            status = sim::RunStatus::BudgetExhausted;
            stop_cause = "--split-max-paths budget reached within one root tree (" +
                         std::to_string(options.max_total_paths) + " paths)";
        }
        // Otherwise the governor already latched the (interrupt/stop) cause.
        return false;
    }
    if (merge.total_paths + s.paths > options.max_total_paths) {
        status = sim::RunStatus::BudgetExhausted;
        stop_cause = "--split-max-paths budget reached (" +
                     std::to_string(options.max_total_paths) + " paths)";
        return false;
    }
    if (s.error) {
        if (options.sim.control.fault.kind == sim::FaultPolicyKind::FailFast) {
            throw Error(s.error_msg);
        }
        ++merge.error_roots;
        sim::quarantine_error(merge.error_log, root, s.error_msg.c_str());
        // Serial event: accepts happen in global root order on the consuming
        // thread, so this is deterministic without a worker ring.
        if (options.sim.journal != nullptr) {
            options.sim.journal->emit(journal::Level::Debug, "quarantine",
                                      s.error_msg,
                                      {{"root", static_cast<std::uint64_t>(root)}});
        }
        ++merge.terminals[static_cast<std::size_t>(sim::PathTerminal::Error)];
        ++merge.total_paths; // the failed root path itself
        merge.roots.add(0.0);
        metrics.on_accept(s, merge.roots.mean(), merge.max_level);
        return true;
    }
    merge.roots.add(s.weighted_hits);
    merge.total_paths += s.paths;
    merge.total_steps += s.steps;
    merge.goal_hits += s.goal_hits;
    if (s.max_level > merge.max_level && options.sim.journal != nullptr) {
        // First root to reach a new highest level; deterministic in root
        // order like everything else merged here.
        options.sim.journal->emit(journal::Level::Debug, "level_reached",
                                  "new highest splitting level",
                                  {{"level", s.max_level},
                                   {"root", static_cast<std::uint64_t>(root)}});
    }
    merge.max_level = std::max(merge.max_level, s.max_level);
    for (const auto& [level, acc] : s.levels) {
        LevelAccum& dst = merge.levels[level];
        dst.crossings += acc.crossings;
        dst.clones += acc.clones;
    }
    for (std::size_t t = 0; t < sim::kPathTerminalCount; ++t) {
        merge.terminals[t] += s.terminals[t];
    }
    metrics.on_accept(s, merge.roots.mean(), merge.max_level);
    return true;
}

/// Automatic level placement (docs/rare-events.md): a crude pilot run
/// profiles how deep into the error space paths get. The raw level is the
/// number of error processes outside their initial location; raw values
/// that *every* pilot path reaches are free and get no splitting level,
/// every rarer value becomes one. The pilot doubles as a coverage/occupancy
/// profile of where paths die (sim/coverage.hpp).
struct AutoPlacement {
    std::vector<int> thresholds;
    std::size_t pilot_paths = 0;
    telemetry::CoverageReport coverage;
};

AutoPlacement place_levels(const eda::Network& net, const sim::PathFormula& formula,
                           sim::Strategy& strategy, LevelConfig& cfg,
                           std::uint64_t seed, const SplittingOptions& options) {
    const auto& model = net.model();
    for (std::size_t p = 0; p < model.processes.size(); ++p) {
        if (model.processes[p].is_error) {
            cfg.error_procs.emplace_back(p, model.processes[p].initial_location);
        }
    }
    if (cfg.error_procs.empty()) {
        throw Error("--split-auto: the model has no error-model processes to derive "
                    "levels from; supply a level expression with --split");
    }
    const eda::ElementIndex element_index(model);
    sim::CoverageShard shard(element_index);
    sim::SimOptions pilot_options;
    pilot_options.max_steps = options.sim.max_steps;
    pilot_options.coverage_shard = &shard;
    const sim::PathGenerator gen(net, formula, strategy, pilot_options);
    LevelFn raw_fn(cfg); // thresholds still empty: raw() only

    const std::size_t max_raw = cfg.error_procs.size();
    std::vector<std::uint64_t> reached(max_raw + 1, 0); // paths with max raw >= v
    // A stream family disjoint from the root families Rng(seed).split(j).
    const Rng pilot_master = Rng(seed).split(0x9e3779b97f4a7c15ull);
    const std::size_t pilot_runs = std::max<std::size_t>(1, options.pilot_runs);
    for (std::size_t i = 0; i < pilot_runs; ++i) {
        Rng rng = pilot_master.split(i);
        eda::NetworkState s = net.initial_state();
        std::size_t steps = 0;
        shard.begin_path(s);
        int best = raw_fn.raw(s);
        try {
            for (;;) {
                const auto outcome = gen.step(s, rng, steps);
                best = std::max(best, raw_fn.raw(s));
                if (outcome) break;
            }
        } catch (const std::exception&) {
            // A throwing pilot path still profiles how far it got.
        }
        shard.end_path();
        for (int v = 1; v <= best && v <= static_cast<int>(max_raw); ++v) {
            ++reached[static_cast<std::size_t>(v)];
        }
    }

    AutoPlacement placement;
    placement.pilot_paths = pilot_runs;
    for (std::size_t v = 1; v <= max_raw; ++v) {
        // Raw values every pilot path visited are free — splitting there
        // only multiplies paths without reducing variance.
        if (reached[v] < pilot_runs) {
            placement.thresholds.push_back(static_cast<int>(v));
        }
    }
    cfg.thresholds = placement.thresholds;
    const sim::CoverageShard* shard_ptr = &shard;
    const std::uint64_t accepted = pilot_runs;
    placement.coverage = sim::merge_coverage({&shard_ptr, 1}, {&accepted, 1});
    return placement;
}

} // namespace

SplittingResult estimate_splitting(const eda::Network& net,
                                   const sim::PathFormula& formula,
                                   sim::StrategyKind strategy, const LevelSpec& level,
                                   std::uint64_t seed, const SplittingOptions& options,
                                   telemetry::RunReport* report) {
    if (formula.kind != sim::FormulaKind::Reach) {
        throw Error("importance splitting supports reachability formulas only");
    }
    if (options.splitting_factor < 1) throw Error("splitting factor must be >= 1");
    if (options.base_runs < 1) throw Error("base_runs must be >= 1");
    if (!level.auto_levels && level.expression == nullptr) {
        throw Error("--split: a level expression (or --split-auto) is required");
    }
    const auto& control = options.sim.control;
    if (control.resume != nullptr || !control.checkpoint_path.empty() ||
        control.checkpoint_every > 0) {
        throw Error("--split does not support checkpoint/resume");
    }

    const auto start = std::chrono::steady_clock::now();
    const std::size_t workers = std::max<std::size_t>(1, options.workers);

    SplittingResult result;
    result.strategy = sim::to_string(strategy);

    journal::Journal* jnl = options.sim.journal;
    LevelConfig cfg;
    if (level.auto_levels) {
        const auto pilot_strategy = sim::make_strategy(strategy);
        const AutoPlacement placement =
            place_levels(net, formula, *pilot_strategy, cfg, seed, options);
        result.auto_thresholds = placement.thresholds;
        result.pilot_paths = placement.pilot_paths;
        result.pilot_coverage = placement.coverage;
        if (jnl != nullptr) {
            jnl->emit(journal::Level::Info, "levels_placed",
                      "auto splitting levels placed from pilot run",
                      {{"thresholds",
                        static_cast<std::uint64_t>(result.auto_thresholds.size())},
                       {"pilot_paths",
                        static_cast<std::uint64_t>(result.pilot_paths)}});
        }
    } else {
        cfg.program = expr::compile(*level.expression);
    }

    sim::RunGovernor governor(control, start);
    Merge merge;
    SplitMetrics metrics(options.sim.metrics);
    sim::RunStatus status = sim::RunStatus::Converged;
    std::string stop_cause;

    if (workers == 1) {
        const auto strat = sim::make_strategy(strategy);
        sim::SimOptions tree_options = options.sim;
        tree_options.coverage_shard = nullptr;
        const sim::PathGenerator gen(net, formula, *strat, tree_options);
        LevelFn level_fn(cfg);
        TreeContext ctx;
        ctx.gen = &gen;
        ctx.level = &level_fn;
        ctx.factor = options.splitting_factor;
        ctx.max_total_paths = options.max_total_paths;
        ctx.interrupt = control.interrupt;
        for (std::size_t root = 0; root < options.base_runs; ++root) {
            if (governor.should_stop(merge.roots.count, merge.total_steps,
                                     merge.error_roots)) {
                status = governor.status();
                stop_cause = governor.stop_cause();
                break;
            }
            const RootSample sample = run_tree_guarded(ctx, net, seed, root);
            if (!accept_sample(merge, root, sample, options, metrics, status,
                               stop_cause)) {
                if (sample.aborted && !sample.cap_hit) {
                    // The interrupt fired mid-tree; latch its cause.
                    governor.should_stop(merge.roots.count, merge.total_steps,
                                         merge.error_roots);
                    status = governor.status();
                    stop_cause = governor.stop_cause();
                }
                break;
            }
        }
    } else {
        // Parallel runner: worker w of k owns root trees w, w+k, w+2k, ...;
        // the consumer merges finished trees in global root order, so the
        // accepted prefix — and every float accumulation — is identical to
        // the sequential run.
        struct Shared {
            std::mutex mutex;
            std::condition_variable cv;
            std::vector<std::optional<RootSample>> slots;
            std::atomic<bool> stop{false};
        };
        Shared shared;
        shared.slots.resize(options.base_runs);

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&, w] {
                const auto strat = sim::make_strategy(strategy);
                sim::SimOptions tree_options = options.sim;
                tree_options.coverage_shard = nullptr;
                tree_options.metrics_shard =
                    tree_options.metrics != nullptr
                        ? w % tree_options.metrics->shards()
                        : 0;
                const sim::PathGenerator gen(net, formula, *strat, tree_options);
                LevelFn level_fn(cfg);
                TreeContext ctx;
                ctx.gen = &gen;
                ctx.level = &level_fn;
                ctx.factor = options.splitting_factor;
                ctx.max_total_paths = options.max_total_paths;
                ctx.stop = &shared.stop;
                ctx.interrupt = control.interrupt;
                for (std::size_t root = w; root < options.base_runs; root += workers) {
                    if (shared.stop.load(std::memory_order_relaxed)) break;
                    RootSample sample = run_tree_guarded(ctx, net, seed, root);
                    {
                        const std::lock_guard<std::mutex> lock(shared.mutex);
                        shared.slots[root] = std::move(sample);
                    }
                    shared.cv.notify_all();
                }
            });
        }

        try {
            for (std::size_t root = 0; root < options.base_runs; ++root) {
                if (governor.should_stop(merge.roots.count, merge.total_steps,
                                         merge.error_roots)) {
                    status = governor.status();
                    stop_cause = governor.stop_cause();
                    break;
                }
                RootSample sample;
                {
                    std::unique_lock<std::mutex> lock(shared.mutex);
                    shared.cv.wait(lock,
                                   [&] { return shared.slots[root].has_value(); });
                    sample = std::move(*shared.slots[root]);
                    shared.slots[root].reset();
                }
                if (!accept_sample(merge, root, sample, options, metrics, status,
                                   stop_cause)) {
                    if (sample.aborted && !sample.cap_hit) {
                        governor.should_stop(merge.roots.count, merge.total_steps,
                                             merge.error_roots);
                        status = governor.status();
                        stop_cause = governor.stop_cause();
                    }
                    break;
                }
            }
        } catch (...) {
            shared.stop.store(true, std::memory_order_relaxed);
            for (auto& t : pool) t.join();
            throw;
        }
        shared.stop.store(true, std::memory_order_relaxed);
        for (auto& t : pool) t.join();
    }

    result.estimate = merge.roots.mean();
    result.base_runs = merge.roots.count;
    result.total_paths = merge.total_paths;
    result.goal_hits = merge.goal_hits;
    result.max_level_seen = merge.max_level;
    result.variance_per_root = merge.roots.variance();
    const double half_width = merge.roots.half_width(0.05);
    result.relative_half_width =
        result.estimate > 0.0 ? half_width / result.estimate : 0.0;
    result.levels.reserve(merge.levels.size());
    for (const auto& [lvl, acc] : merge.levels) {
        result.levels.push_back({lvl, acc.crossings, acc.clones});
    }
    result.terminals = merge.terminals;
    result.status = status;
    result.stop_cause = stop_cause;
    result.path_errors = merge.error_roots;
    result.error_log = std::move(merge.error_log);
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (jnl != nullptr) {
        jnl->emit(journal::Level::Info, "stop", stop_cause,
                  {{"status", sim::to_string(status)},
                   {"roots", result.base_runs},
                   {"max_level", result.max_level_seen}});
    }

    if (report != nullptr) {
        report->samples = result.base_runs;
        report->successes = result.goal_hits;
        report->value = result.estimate;
        report->strategy = result.strategy;
        report->criterion = "fixed-roots(" + std::to_string(options.base_runs) + ")";
        report->terminals = sim::terminal_histogram(result.terminals);
        sim::fill_run_status(report, result.status, result.stop_cause, half_width,
                             result.path_errors, result.error_log);
        auto& sp = report->splitting;
        sp.enabled = true;
        sp.level = level.auto_levels ? "auto" : level.text;
        sp.factor = options.splitting_factor;
        sp.roots = result.base_runs;
        sp.total_paths = result.total_paths;
        sp.goal_hits = result.goal_hits;
        sp.max_level = result.max_level_seen;
        sp.variance_per_root = result.variance_per_root;
        sp.relative_half_width = result.relative_half_width;
        sp.pilot_paths = result.pilot_paths;
        sp.auto_thresholds.assign(result.auto_thresholds.begin(),
                                  result.auto_thresholds.end());
        sp.levels.clear();
        for (const auto& row : result.levels) {
            sp.levels.push_back({row.level, row.crossings, row.clones});
        }
        if (level.auto_levels) report->coverage = result.pilot_coverage;
    }
    return result;
}

SplittingResult estimate_splitting(const eda::Network& net,
                                   const sim::PathFormula& formula,
                                   sim::StrategyKind strategy, const expr::ExprPtr& level,
                                   std::uint64_t seed, const SplittingOptions& options,
                                   telemetry::RunReport* report) {
    LevelSpec spec;
    spec.expression = level;
    return estimate_splitting(net, formula, strategy, spec, seed, options, report);
}

} // namespace slimsim::rare
