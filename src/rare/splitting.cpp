#include "rare/splitting.hpp"

#include <chrono>
#include <sstream>
#include <vector>

#include "expr/compile.hpp"
#include "expr/eval.hpp"
#include "sim/property.hpp"
#include "slim/parser.hpp"

namespace slimsim::rare {

std::string SplittingResult::to_string() const {
    std::ostringstream os;
    os << "p^ = " << estimate << " (" << base_runs << " roots, " << total_paths
       << " paths, " << goal_hits << " goal hits, max level " << max_level_seen << ", "
       << wall_seconds << " s)";
    return os.str();
}

expr::ExprPtr make_level_function(const slim::InstanceModel& model,
                                  std::string_view source) {
    expr::ExprPtr e = slim::parse_expression(source, "<level>");
    // Resolve against the global table; reuse the property plumbing but
    // require an integer result.
    // resolve_goal() insists on bool, so resolve manually here.
    slim::SymbolTable table;
    for (const auto& v : model.vars) {
        slim::Symbol sym;
        sym.name = v.full_name;
        sym.kind = slim::SymKind::Data;
        sym.type = v.type;
        table.add(std::move(sym));
    }
    DiagnosticSink sink;
    slim::resolve_expr(*e, table, sink);
    sink.throw_if_errors("level function resolution");
    if (!e->type.is_int()) {
        throw Error(e->loc, "the level function must be integer-valued");
    }
    return e;
}

namespace {

/// A path in flight: its state, RNG stream, progress counters and splitting
/// bookkeeping (weight and highest level already rewarded).
struct Job {
    eda::NetworkState state;
    Rng rng;
    std::size_t steps = 0;
    double weight = 1.0;
    int level = 0;
};

/// Level function compiled once per run; one program evaluation per probe.
class LevelFn {
public:
    explicit LevelFn(const expr::Expr& level) : prog_(expr::compile(level)) {}
    int operator()(const eda::NetworkState& s) {
        return static_cast<int>(prog_->run(s.values, scratch_).as_int());
    }

private:
    expr::ProgramPtr prog_;
    expr::EvalScratch scratch_;
};

} // namespace

SplittingResult estimate_splitting(const eda::Network& net,
                                   const sim::PathFormula& formula,
                                   sim::StrategyKind strategy, const expr::ExprPtr& level,
                                   std::uint64_t seed, const SplittingOptions& options) {
    if (formula.kind != sim::FormulaKind::Reach) {
        throw Error("importance splitting supports reachability formulas only");
    }
    if (options.splitting_factor < 1) throw Error("splitting factor must be >= 1");
    if (options.base_runs < 1) throw Error("base_runs must be >= 1");

    const auto start = std::chrono::steady_clock::now();
    const auto strat = sim::make_strategy(strategy);
    const sim::PathGenerator gen(net, formula, *strat, options.sim);
    LevelFn eval_level(*level);
    const Rng master(seed);
    std::uint64_t stream = 0;

    SplittingResult result;
    result.base_runs = options.base_runs;
    double weighted_hits = 0.0;

    std::vector<Job> stack;
    for (std::size_t root = 0; root < options.base_runs; ++root) {
        {
            Job job;
            job.state = net.initial_state();
            job.rng = master.split(stream++);
            job.level = eval_level(job.state);
            stack.push_back(std::move(job));
        }
        while (!stack.empty()) {
            Job job = std::move(stack.back());
            stack.pop_back();
            ++result.total_paths;
            if (result.total_paths > options.max_total_paths) {
                throw Error("importance splitting exceeded " +
                            std::to_string(options.max_total_paths) +
                            " paths; the level function splits too aggressively");
            }
            for (;;) {
                const auto outcome = gen.step(job.state, job.rng, job.steps);
                if (outcome) {
                    if (outcome->satisfied) {
                        weighted_hits += job.weight;
                        ++result.goal_hits;
                    }
                    break;
                }
                const int now = eval_level(job.state);
                if (now > job.level) {
                    // First crossing of a higher level by this lineage:
                    // clone and share the statistical weight.
                    job.level = now;
                    result.max_level_seen = std::max(result.max_level_seen, now);
                    job.weight /= static_cast<double>(options.splitting_factor);
                    for (std::size_t c = 1; c < options.splitting_factor; ++c) {
                        Job clone;
                        clone.state = job.state;
                        clone.rng = master.split(stream++);
                        clone.steps = job.steps;
                        clone.weight = job.weight;
                        clone.level = job.level;
                        stack.push_back(std::move(clone));
                    }
                }
            }
        }
    }

    result.estimate = weighted_hits / static_cast<double>(options.base_runs);
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

} // namespace slimsim::rare
