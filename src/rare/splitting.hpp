// Rare-event simulation by importance splitting (paper, Sec. VI).
//
// Crude Monte Carlo needs ~1/p paths to see an event of probability p even
// once; the paper's related-work section points at importance
// splitting/sampling as the standard remedy. This module implements *fixed
// splitting*: an integer-valued level function over the model state
// increases toward the goal (e.g. the number of failed components). Whenever
// a path first crosses a new level, it is cloned `splitting_factor` times
// and each clone's weight is divided accordingly; the weighted goal
// frequency is an unbiased estimator of the reachability probability, with
// far lower variance on rare events (docs/rare-events.md).
//
// The engine runs on the compiled-model path and follows the repo's
// determinism discipline: the unit of work is one root *tree* (the root
// path plus every clone it spawns), root j draws all of its streams from
// the family Rng(seed).split(j), and trees are merged into the estimate in
// global root order — so the result is byte-identical for every worker
// count at a fixed seed. Runs are governed by sim::RunControlOptions
// (budgets, SIGINT draining, fault policy) and degrade to a partial result
// instead of throwing.
#pragma once

#include "sim/path_generator.hpp"

namespace slimsim::rare {

/// How the splitting levels are defined.
struct LevelSpec {
    /// Integer-valued expression over fully-qualified data element names
    /// (make_level_function); null selects automatic placement.
    expr::ExprPtr expression;
    /// Source text of the expression (reports); "auto" when auto_levels.
    std::string text;
    /// Automatic placement: the raw level is the number of error-model
    /// processes outside their initial location, and a pilot run profiles
    /// which raw values are rare enough to deserve a splitting level.
    bool auto_levels = false;
};

struct SplittingOptions {
    std::size_t splitting_factor = 8; // clones per first upward level crossing
    std::size_t base_runs = 4096;     // independent root trees
    /// Cap on simulated paths (roots + clones), consumed in root order; on
    /// exhaustion the run stops with RunStatus::BudgetExhausted and a
    /// partial (still unbiased) result — never an exception.
    std::size_t max_total_paths = 10'000'000;
    /// Worker threads; the estimate is byte-identical for every count.
    std::size_t workers = 1;
    /// Crude pilot paths used by automatic level placement (LevelSpec::
    /// auto_levels); drawn from a stream family disjoint from the roots.
    std::size_t pilot_runs = 256;
    /// Run hardening rides in sim.control; sim.metrics enables live
    /// splitting instruments. Checkpoint/resume is not supported.
    sim::SimOptions sim;
};

/// Per-level crossing statistics (levels above the initial one only).
struct LevelStats {
    int level = 0;
    std::uint64_t crossings = 0; // lineages that first reached this level
    std::uint64_t clones = 0;    // clones spawned at this level
};

struct SplittingResult {
    double estimate = 0.0;       // weighted goal frequency over accepted roots
    std::size_t base_runs = 0;   // root trees accepted into the estimate
    std::size_t total_paths = 0; // roots + clones actually simulated
    std::size_t goal_hits = 0;   // raw (unweighted) goal observations
    int max_level_seen = 0;
    /// Sample variance of the per-root weighted contributions (root order);
    /// the paths-to-convergence currency of bench_rare's speedup_vs_crude.
    double variance_per_root = 0.0;
    /// 95% CLT half-width relative to the estimate (0 when the estimate is).
    double relative_half_width = 0.0;
    std::vector<LevelStats> levels; // ascending by level
    /// Auto placement only: the raw values promoted to splitting levels and
    /// the pilot profile (coverage/occupancy of the pilot paths).
    std::vector<int> auto_thresholds;
    std::size_t pilot_paths = 0;
    telemetry::CoverageReport pilot_coverage;
    /// How each completed path terminated (indexed by sim::PathTerminal).
    std::array<std::size_t, sim::kPathTerminalCount> terminals{};
    /// How the run ended (docs/robustness.md): Converged unless a budget,
    /// an interrupt or the fault-error budget stopped it first — then the
    /// estimate is the partial result over `base_runs` accepted roots.
    sim::RunStatus status = sim::RunStatus::Converged;
    std::string stop_cause; // "" when converged
    /// Root trees accepted as PathTerminal::Error (FaultPolicy::Tolerate)
    /// and their quarantined diagnostics.
    std::uint64_t path_errors = 0;
    std::vector<std::string> error_log;
    std::string strategy;
    /// Wall time lives here for the report's runtime section; to_string()
    /// deliberately omits it so splitting output is byte-stable in
    /// (seed, workers) like every other mode.
    double wall_seconds = 0.0;

    [[nodiscard]] std::string to_string() const;
};

/// Resolves an integer-valued level expression over fully-qualified data
/// element names (identity bindings), e.g.
/// "(if a.failed then 1 else 0) + (if b.failed then 1 else 0)".
/// Diagnostics follow the one-line CLI convention and name the --split flag.
[[nodiscard]] expr::ExprPtr make_level_function(const slim::InstanceModel& model,
                                                std::string_view source);

/// Estimates P(formula) by fixed splitting along `level`. Only reachability
/// formulas are supported (splitting accelerates hitting a goal; Until and
/// Globally do not fit the level-crossing scheme). Byte-identical in
/// (seed) for every `options.workers`. When `report` is non-null the
/// sampling statistics are recorded into it; identity fields are the
/// caller's responsibility — run_analysis() fills them.
[[nodiscard]] SplittingResult estimate_splitting(const eda::Network& net,
                                                 const sim::PathFormula& formula,
                                                 sim::StrategyKind strategy,
                                                 const LevelSpec& level, std::uint64_t seed,
                                                 const SplittingOptions& options = {},
                                                 telemetry::RunReport* report = nullptr);

/// Convenience overload wrapping a resolved expression into a LevelSpec.
[[nodiscard]] SplittingResult estimate_splitting(const eda::Network& net,
                                                 const sim::PathFormula& formula,
                                                 sim::StrategyKind strategy,
                                                 const expr::ExprPtr& level,
                                                 std::uint64_t seed,
                                                 const SplittingOptions& options = {},
                                                 telemetry::RunReport* report = nullptr);

} // namespace slimsim::rare
