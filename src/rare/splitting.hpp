// Rare-event simulation by importance splitting (paper, Sec. VI).
//
// Crude Monte Carlo needs ~1/p paths to see an event of probability p even
// once; the paper's related-work section points at importance
// splitting/sampling as the standard remedy. This module implements *fixed
// splitting*: the user supplies an integer-valued level function over the
// model state that increases toward the goal (e.g. the number of failed
// components). Whenever a path first crosses a new level, it is cloned
// `splitting_factor` times and each clone's weight is divided accordingly;
// the weighted goal frequency is an unbiased estimator of the reachability
// probability, with far lower variance on rare events.
#pragma once

#include "sim/path_generator.hpp"

namespace slimsim::rare {

struct SplittingOptions {
    std::size_t splitting_factor = 8; // clones per first upward level crossing
    std::size_t base_runs = 4096;     // independent root paths
    /// Hard cap on simulated paths (roots + clones); exceeding it indicates
    /// a runaway level function and raises an error.
    std::size_t max_total_paths = 10'000'000;
    sim::SimOptions sim;
};

struct SplittingResult {
    double estimate = 0.0;
    std::size_t base_runs = 0;
    std::size_t total_paths = 0; // roots + clones actually simulated
    std::size_t goal_hits = 0;   // raw (unweighted) goal observations
    int max_level_seen = 0;
    double wall_seconds = 0.0;

    [[nodiscard]] std::string to_string() const;
};

/// Resolves an integer-valued level expression over fully-qualified data
/// element names (identity bindings), e.g.
/// "(if a.failed then 1 else 0) + (if b.failed then 1 else 0)".
[[nodiscard]] expr::ExprPtr make_level_function(const slim::InstanceModel& model,
                                                std::string_view source);

/// Estimates P(formula) by fixed splitting along `level`. Only reachability
/// formulas are supported (splitting accelerates hitting a goal; Until and
/// Globally do not fit the level-crossing scheme). Deterministic in `seed`.
[[nodiscard]] SplittingResult estimate_splitting(const eda::Network& net,
                                                 const sim::PathFormula& formula,
                                                 sim::StrategyKind strategy,
                                                 const expr::ExprPtr& level,
                                                 std::uint64_t seed,
                                                 const SplittingOptions& options = {});

} // namespace slimsim::rare
