// A pump fail-over system: event-port synchronization showcase.
//
// Two pumps (primary + cold-standby backup) and a monitor. The monitor
// starts the primary at t = 0 by an event, watches its flow signal, and on
// loss *sends a start event to the backup* — an explicit event-port
// synchronization (paper Sec. II-D/E: processes synchronizing on a shared
// alphabet), unlike the launcher's pure data-flow redundancy. Pumps fail
// permanently with an exponential rate; the system has failed when the
// active pump's flow is lost and no spare remains.
//
// With `detection_latency` = 0 the model is untimed, so the exhaustive CTMC
// flow can cross-check the simulator (including synchronized transitions in
// the state-space builder). A positive latency adds a timed detection
// window and makes the model strategy-sensitive.
#pragma once

#include <string>

namespace slimsim::models {

struct FailoverOptions {
    double pump_fail_per_hour = 0.5;
    double detection_latency = 0.0; // seconds; 0 = untimed model
};

[[nodiscard]] std::string failover_source(const FailoverOptions& options = {});

/// Goal of the reliability property: the monitor has given up.
[[nodiscard]] std::string failover_goal();

} // namespace slimsim::models
