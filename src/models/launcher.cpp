#include "models/launcher.hpp"

#include <sstream>

#include "support/diagnostics.hpp"

namespace slimsim::models {

std::string launcher_source(const LauncherOptions& opt) {
    if (opt.rate_scale <= 0.0) throw Error("rate_scale must be positive");
    if (opt.battery_capacity_hours <= 0.0) throw Error("battery capacity must be positive");
    const double s = opt.rate_scale;
    std::ostringstream os;
    os << "-- Generated launcher case study ("
       << (opt.recoverable_dpu ? "recoverable" : "permanent") << " DPU faults)\n";
    os << "root Launcher.Imp;\n\n";

    // --- Power: battery with continuous linear dynamics inside a PCDU -----
    os << "device Battery\n"
          "features\n"
          "  power: out data port bool default true;\n"
          "end Battery;\n"
          "device implementation Battery.Imp\n"
          "subcomponents\n"
          "  energy: data continuous default "
       << opt.battery_capacity_hours * 3600.0
       << ";\n"
          "modes\n"
          "  discharging: initial mode while energy >= 0;\n"
          "  depleted: mode;\n"
          "transitions\n"
          "  discharging -[when energy <= 0 then power := false]-> depleted;\n"
          "trends\n"
          "  energy' = -1.0 in discharging;\n"
          "end Battery.Imp;\n\n";

    // Power outputs: each PCDU distributes its battery over three switched
    // output channels ("a battery and a number of power outputs", Sec. V).
    os << "device PowerOutput\n"
          "features\n"
          "  supply: in data port bool default true;\n"
          "  power: out data port bool default true;\n"
          "end PowerOutput;\n"
          "device implementation PowerOutput.Imp\n"
          "flows\n"
          "  power := supply;\n"
          "end PowerOutput.Imp;\n\n";

    os << "system PCDU\n"
          "features\n"
          "  power_a: out data port bool default true;\n"
          "  power_b: out data port bool default true;\n"
          "  power_c: out data port bool default true;\n"
          "end PCDU;\n"
          "system implementation PCDU.Imp\n"
          "subcomponents\n"
          "  battery: device Battery.Imp;\n"
          "  out_a: device PowerOutput.Imp;\n"
          "  out_b: device PowerOutput.Imp;\n"
          "  out_c: device PowerOutput.Imp;\n"
          "connections\n"
          "  data port battery.power -> out_a.supply;\n"
          "  data port battery.power -> out_b.supply;\n"
          "  data port battery.power -> out_c.supply;\n"
          "  data port out_a.power -> power_a;\n"
          "  data port out_b.power -> power_b;\n"
          "  data port out_c.power -> power_c;\n"
          "end PCDU.Imp;\n\n";

    os << "error model BatteryFailure\n"
          "features\n"
          "  ok: initial state;\n"
          "  dead: error state;\n"
          "end BatteryFailure;\n"
          "error model implementation BatteryFailure.Imp\n"
          "events\n"
          "  fault: error event occurrence poisson "
       << 0.02 * s
       << " per hour;\n"
          "transitions\n"
          "  ok -[fault]-> dead;\n"
          "end BatteryFailure.Imp;\n\n";

    // --- Sensors (GPS / gyro): transient + permanent faults ----------------
    os << "device Sensor\n"
          "features\n"
          "  power_in: in data port bool default true;\n"
          "  signal: out data port bool default true;\n"
          "end Sensor;\n"
          "device implementation Sensor.Imp\n"
          "subcomponents\n"
          "  broken: data bool default false;\n"
          "flows\n"
          "  signal := power_in and not broken;\n"
          "end Sensor.Imp;\n\n";

    os << "error model SensorFailure\n"
          "features\n"
          "  ok: initial state;\n"
          "  transient: error state while @timer <= 300 msec;\n"
          "  permanent: error state;\n"
          "end SensorFailure;\n"
          "error model implementation SensorFailure.Imp\n"
          "events\n"
          "  fault_transient: error event occurrence poisson "
       << 0.5 * s
       << " per hour;\n"
          "  fault_permanent: error event occurrence poisson "
       << 0.05 * s
       << " per hour;\n"
          "transitions\n"
          "  ok -[fault_transient]-> transient;\n"
          "  ok -[fault_permanent]-> permanent;\n"
          "  transient -[when @timer >= 200 msec]-> ok;\n"
          "end SensorFailure.Imp;\n\n";

    // --- DPUs (the \"triplexes\") ------------------------------------------
    os << "device Dpu\n"
          "features\n"
          "  power_in: in data port bool default true;\n"
          "  nav_in: in data port bool default true;\n"
          "  command: out data port bool default true;\n"
          "end Dpu;\n"
          "device implementation Dpu.Imp\n"
          "subcomponents\n"
          "  broken: data bool default false;\n"
          "flows\n"
          "  command := power_in and nav_in and not broken;\n"
          "end Dpu.Imp;\n\n";

    if (opt.recoverable_dpu) {
        os << "error model DpuFailure\n"
              "features\n"
              "  ok: initial state;\n"
              "  hot: error state while @timer <= 300 msec;\n"
              "  permanent: error state;\n"
              "end DpuFailure;\n"
              "error model implementation DpuFailure.Imp\n"
              "events\n"
              "  fault_hot: error event occurrence poisson "
           << 1.0 * s
           << " per hour;\n"
              "  fault_permanent: error event occurrence poisson "
           << 0.05 * s
           << " per hour;\n"
              "transitions\n"
              "  ok -[fault_hot]-> hot;\n"
              "  ok -[fault_permanent]-> permanent;\n"
              "  -- a repair attempted before the unit finished its power-down\n"
              "  -- cycle (250 msec) fails for good; a later one succeeds\n"
              "  hot -[when @timer >= 200 msec and @timer < 250 msec]-> permanent;\n"
              "  hot -[when @timer >= 250 msec]-> ok;\n"
              "end DpuFailure.Imp;\n\n";
    } else {
        os << "error model DpuFailure\n"
              "features\n"
              "  ok: initial state;\n"
              "  permanent: error state;\n"
              "end DpuFailure;\n"
              "error model implementation DpuFailure.Imp\n"
              "events\n"
              "  fault_hot: error event occurrence poisson "
           << 1.0 * s
           << " per hour;\n"
              "  fault_permanent: error event occurrence poisson "
           << 0.05 * s
           << " per hour;\n"
              "transitions\n"
              "  ok -[fault_hot]-> permanent;\n"
              "  ok -[fault_permanent]-> permanent;\n"
              "end DpuFailure.Imp;\n\n";
    }

    // --- Thrusters and opaque buses -----------------------------------------
    os << "device Thruster\n"
          "features\n"
          "  command_in: in data port bool default true;\n"
          "  thrust: out data port bool default true;\n"
          "end Thruster;\n"
          "device implementation Thruster.Imp\n"
          "subcomponents\n"
          "  broken: data bool default false;\n"
          "flows\n"
          "  thrust := command_in and not broken;\n"
          "end Thruster.Imp;\n\n";

    os << "error model ThrusterFailure\n"
          "features\n"
          "  ok: initial state;\n"
          "  stuck: error state;\n"
          "end ThrusterFailure;\n"
          "error model implementation ThrusterFailure.Imp\n"
          "events\n"
          "  fault: error event occurrence poisson "
       << 0.02 * s
       << " per hour;\n"
          "transitions\n"
          "  ok -[fault]-> stuck;\n"
          "end ThrusterFailure.Imp;\n\n";

    os << "bus PowerBus\n"
          "end PowerBus;\n"
          "bus implementation PowerBus.Imp\n"
          "end PowerBus.Imp;\n\n";

    // --- Root architecture -----------------------------------------------------
    os << "system Launcher\n"
          "features\n"
          "  failure: out data port bool default false;\n"
          "end Launcher;\n"
          "system implementation Launcher.Imp\n"
          "subcomponents\n"
          "  pcdu1: system PCDU.Imp;\n"
          "  pcdu2: system PCDU.Imp;\n"
          "  gps1: device Sensor.Imp;\n"
          "  gps2: device Sensor.Imp;\n"
          "  gyro1: device Sensor.Imp;\n"
          "  gyro2: device Sensor.Imp;\n"
          "  dpu1: device Dpu.Imp;\n"
          "  dpu2: device Dpu.Imp;\n"
          "  thruster1: device Thruster.Imp;\n"
          "  thruster2: device Thruster.Imp;\n"
          "  thruster3: device Thruster.Imp;\n"
          "  thruster4: device Thruster.Imp;\n"
          "  powerbus: bus PowerBus.Imp;\n"
          "  databus: bus PowerBus.Imp;\n"
          "connections\n"
          "  data port pcdu1.power_a -> gps1.power_in;\n"
          "  data port pcdu1.power_b -> gyro1.power_in;\n"
          "  data port pcdu1.power_c -> dpu1.power_in;\n"
          "  data port pcdu2.power_a -> gps2.power_in;\n"
          "  data port pcdu2.power_b -> gyro2.power_in;\n"
          "  data port pcdu2.power_c -> dpu2.power_in;\n"
          "  data port dpu1.command -> thruster1.command_in;\n"
          "  data port dpu1.command -> thruster2.command_in;\n"
          "  data port dpu2.command -> thruster3.command_in;\n"
          "  data port dpu2.command -> thruster4.command_in;\n"
          "flows\n"
          "  dpu1.nav_in := (gps1.signal or gps2.signal) and (gyro1.signal or "
          "gyro2.signal);\n"
          "  dpu2.nav_in := (gps1.signal or gps2.signal) and (gyro1.signal or "
          "gyro2.signal);\n"
          "  failure := not dpu1.command and not dpu2.command;\n"
          "end Launcher.Imp;\n\n";

    os << "fault injections\n"
          "  component pcdu1.battery uses error model BatteryFailure.Imp;\n"
          "  component pcdu1.battery in state dead effect power := false;\n"
          "  component pcdu2.battery uses error model BatteryFailure.Imp;\n"
          "  component pcdu2.battery in state dead effect power := false;\n";
    for (const char* sensor : {"gps1", "gps2", "gyro1", "gyro2"}) {
        os << "  component " << sensor << " uses error model SensorFailure.Imp;\n";
        os << "  component " << sensor << " in state transient effect broken := true;\n";
        os << "  component " << sensor << " in state permanent effect broken := true;\n";
    }
    for (const char* dpu : {"dpu1", "dpu2"}) {
        os << "  component " << dpu << " uses error model DpuFailure.Imp;\n";
        if (opt.recoverable_dpu) {
            os << "  component " << dpu << " in state hot effect broken := true;\n";
        }
        os << "  component " << dpu << " in state permanent effect broken := true;\n";
    }
    for (const char* thr : {"thruster1", "thruster2", "thruster3", "thruster4"}) {
        os << "  component " << thr << " uses error model ThrusterFailure.Imp;\n";
        os << "  component " << thr << " in state stuck effect broken := true;\n";
    }
    os << "end fault injections;\n";
    return os.str();
}

std::string launcher_goal() { return "failure"; }

} // namespace slimsim::models
