// The GPS running example (paper, Listings 1-2, Fig. 2), embedded so tests
// and examples do not depend on the models/ directory location.
#pragma once

#include <string>

namespace slimsim::models {

/// SLIM source of the GPS example (same content as models/gps.slim).
[[nodiscard]] std::string gps_source();

/// Goal: the GPS has a fix ("gps.measurement").
[[nodiscard]] std::string gps_goal();

/// The GPS example extended with a supervising controller that power-cycles
/// the unit when the fix stays lost (dynamic reconfiguration: the GPS is
/// only active in the satellite's `on` mode; reactivation fires @activation,
/// which recovers hot faults — the restart story of the paper's Fig. 2).
/// Same content as models/gps_restart.slim. With `with_controller` false the
/// same satellite (same GPS, same exaggerated fault rates) runs without the
/// supervising controller, for a like-for-like comparison of the restart
/// policy's value.
[[nodiscard]] std::string gps_restart_source(bool with_controller = true);

/// Goal for the comparison: a fix is (still or again) available after the
/// 30-minute mark — hot faults without restart lose it for good.
[[nodiscard]] std::string gps_restart_goal();

} // namespace slimsim::models
