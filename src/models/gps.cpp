#include "models/gps.hpp"

namespace slimsim::models {

std::string gps_source() {
    return R"slim(
-- GPS unit with fault behaviour (paper Listings 1-2, Fig. 2).
root Satellite.Imp;

system GPS
features
  activation: in event port;
  measurement: out data port bool default false;
end GPS;

system implementation GPS.Imp
subcomponents
  x: data clock;
modes
  acquisition: initial mode while x <= 120 sec;
  active: mode;
transitions
  acquisition -[when x >= 10 sec then measurement := true]-> active;
end GPS.Imp;

error model GPSFailure
features
  ok: initial state;
  transient: error state while @timer <= 300 msec;
  hot: error state;
  permanent: error state;
end GPSFailure;

error model implementation GPSFailure.Imp
events
  fault_transient: error event occurrence poisson 0.1 per hour;
  fault_hot: error event occurrence poisson 0.05 per hour;
  fault_permanent: error event occurrence poisson 0.01 per hour;
transitions
  ok -[fault_transient]-> transient;
  ok -[fault_hot]-> hot;
  ok -[fault_permanent]-> permanent;
  transient -[when @timer >= 200 msec]-> ok;
  hot -[@activation]-> ok;
end GPSFailure.Imp;

system Satellite
end Satellite;

system implementation Satellite.Imp
subcomponents
  gps: system GPS.Imp;
end Satellite.Imp;

fault injections
  component gps uses error model GPSFailure.Imp;
  component gps in state transient effect measurement := false;
  component gps in state hot effect measurement := false;
  component gps in state permanent effect measurement := false;
end fault injections;
)slim";
}

std::string gps_goal() { return "gps.measurement"; }

std::string gps_restart_source(bool with_controller) {
    std::string src = R"slim(
-- GPS with a supervising controller that power-cycles the unit when the fix
-- stays lost: @activation recovers hot faults (paper Fig. 2 restart story).
root Satellite.Imp;

system GPS
features
  measurement: out data port bool default false;
end GPS;

system implementation GPS.Imp
subcomponents
  x: data clock;
modes
  acquisition: initial mode while x <= 120 sec;
  active: mode;
transitions
  acquisition -[when x >= 10 sec then measurement := true]-> active;
  -- a restart puts the unit back into acquisition
  active -[@activation then measurement := false; x := 0]-> acquisition;
  acquisition -[@activation then x := 0]-> acquisition;
end GPS.Imp;

error model GPSFailure
features
  ok: initial state;
  transient: error state while @timer <= 300 msec;
  hot: error state;
  permanent: error state;
end GPSFailure;

error model implementation GPSFailure.Imp
events
  -- exaggerated rates (as the paper does for Fig. 5) so the restart
  -- policy's effect is visible at mission time scales
  fault_transient: error event occurrence poisson 2 per hour;
  fault_hot: error event occurrence poisson 4 per hour;
  fault_permanent: error event occurrence poisson 0.1 per hour;
transitions
  ok -[fault_transient]-> transient;
  ok -[fault_hot]-> hot;
  ok -[fault_permanent]-> permanent;
  transient -[when @timer >= 200 msec]-> ok;
  hot -[@activation]-> ok;
end GPSFailure.Imp;

system Satellite
end Satellite;
)slim";
    if (with_controller) {
        src += R"slim(
system implementation Satellite.Imp
subcomponents
  gps: system GPS.Imp in modes (on);
  mission: data clock;
modes
  on: initial mode;
  cycling: mode while @timer <= 2 sec;
transitions
  -- patience exceeds the worst-case acquisition time (120 s), so only a
  -- persistently lost fix triggers a power cycle
  on -[when not gps.measurement and @timer >= 180 sec]-> cycling;
  cycling -[when @timer >= 1 sec]-> on;
end Satellite.Imp;
)slim";
    } else {
        src += R"slim(
system implementation Satellite.Imp
subcomponents
  gps: system GPS.Imp;
  mission: data clock;
end Satellite.Imp;
)slim";
    }
    src += R"slim(
fault injections
  component gps uses error model GPSFailure.Imp;
  component gps in state transient effect measurement := false;
  component gps in state hot effect measurement := false;
  component gps in state permanent effect measurement := false;
end fault injections;
)slim";
    return src;
}

std::string gps_restart_goal() { return "gps.measurement and mission >= 30 min"; }

} // namespace slimsim::models
