#include "models/sensor_filter.hpp"

#include <sstream>

#include "support/diagnostics.hpp"

namespace slimsim::models {

std::string sensor_filter_source(int redundancy, double sensor_fail_per_hour,
                                 double filter_fail_per_hour) {
    if (redundancy < 1) throw Error("redundancy degree must be >= 1");
    const int r = redundancy;
    std::ostringstream os;
    os << "-- Generated sensor/filter redundancy benchmark, R = " << r << "\n";
    os << "root System.Imp;\n\n";

    os << "device Sensor\n"
          "features\n"
          "  reading: out data port int [0..20] default 3;\n"
          "end Sensor;\n"
          "device implementation Sensor.Imp\n"
          "end Sensor.Imp;\n\n";

    os << "device Filter\n"
          "features\n"
          "  raw_in: in data port int [0..20] default 3;\n"
          "  filtered: out data port int [0..40] default 6;\n"
          "end Filter;\n"
          "device implementation Filter.Imp\n"
          "flows\n"
          "  filtered := raw_in * 2;\n"
          "end Filter.Imp;\n\n";

    os << "error model UnitFailure\n"
          "features\n"
          "  ok: initial state;\n"
          "  failed: error state;\n"
          "end UnitFailure;\n";
    os << "error model implementation UnitFailure.Sensor\n"
          "events\n"
          "  fault: error event occurrence poisson "
       << sensor_fail_per_hour
       << " per hour;\n"
          "transitions\n"
          "  ok -[fault]-> failed;\n"
          "end UnitFailure.Sensor;\n";
    os << "error model implementation UnitFailure.Filter\n"
          "events\n"
          "  fault: error event occurrence poisson "
       << filter_fail_per_hour
       << " per hour;\n"
          "transitions\n"
          "  ok -[fault]-> failed;\n"
          "end UnitFailure.Filter;\n\n";

    // Root system: the monitor. Modes track the active (sensor, filter)
    // pair; mode-dependent connections route the active sensor through the
    // active filter.
    os << "system System\n"
          "features\n"
          "  failed: out data port bool default false;\n"
          "end System;\n";
    os << "system implementation System.Imp\n"
          "subcomponents\n";
    for (int i = 0; i < r; ++i) os << "  sensor" << i << ": device Sensor.Imp;\n";
    for (int j = 0; j < r; ++j) os << "  filter" << j << ": device Filter.Imp;\n";
    os << "connections\n";
    for (int i = 0; i < r; ++i) {
        for (int j = 0; j < r; ++j) {
            os << "  data port sensor" << i << ".reading -> filter" << j
               << ".raw_in in modes (m_" << i << "_" << j << ");\n";
        }
    }
    os << "modes\n";
    for (int i = 0; i < r; ++i) {
        for (int j = 0; j < r; ++j) {
            os << "  m_" << i << "_" << j << ": " << (i == 0 && j == 0 ? "initial " : "")
               << "mode;\n";
        }
    }
    os << "  dead: mode;\n";
    os << "transitions\n";
    for (int i = 0; i < r; ++i) {
        for (int j = 0; j < r; ++j) {
            // Sensor failure signature: filtered too high.
            if (i + 1 < r) {
                os << "  m_" << i << "_" << j << " -[when filter" << j
                   << ".filtered > 10]-> m_" << i + 1 << "_" << j << ";\n";
            } else {
                os << "  m_" << i << "_" << j << " -[when filter" << j
                   << ".filtered > 10 then failed := true]-> dead;\n";
            }
            // Filter failure signature: filtered zero.
            if (j + 1 < r) {
                os << "  m_" << i << "_" << j << " -[when filter" << j
                   << ".filtered = 0]-> m_" << i << "_" << j + 1 << ";\n";
            } else {
                os << "  m_" << i << "_" << j << " -[when filter" << j
                   << ".filtered = 0 then failed := true]-> dead;\n";
            }
        }
    }
    os << "end System.Imp;\n\n";

    os << "fault injections\n";
    for (int i = 0; i < r; ++i) {
        os << "  component sensor" << i << " uses error model UnitFailure.Sensor;\n";
        os << "  component sensor" << i << " in state failed effect reading := 9;\n";
    }
    for (int j = 0; j < r; ++j) {
        os << "  component filter" << j << " uses error model UnitFailure.Filter;\n";
        os << "  component filter" << j << " in state failed effect filtered := 0;\n";
    }
    os << "end fault injections;\n";
    return os.str();
}

std::string sensor_filter_goal() { return "failed"; }

std::string sensor_filter_panic_source(double sensor_fail_per_hour,
                                       double filter_fail_per_hour) {
    std::ostringstream os;
    os << "-- Sensor/filter monitor that panics on simultaneous failure\n"
          "-- signatures. The panic transition only becomes enabled when the\n"
          "-- second failure preempts the monitor's reaction to the first:\n"
          "-- impossible under ASAP (zero reaction delay), possible under\n"
          "-- Progressive (uniform reaction delay).\n";
    os << "root System.Imp;\n\n";

    os << "device Sensor\n"
          "features\n"
          "  reading: out data port int [0..20] default 3;\n"
          "end Sensor;\n"
          "device implementation Sensor.Imp\n"
          "end Sensor.Imp;\n\n";

    os << "device Filter\n"
          "features\n"
          "  raw_in: in data port int [0..20] default 3;\n"
          "  filtered: out data port int [0..40] default 6;\n"
          "end Filter;\n"
          "device implementation Filter.Imp\n"
          "flows\n"
          "  filtered := raw_in * 2;\n"
          "end Filter.Imp;\n\n";

    os << "error model UnitFailure\n"
          "features\n"
          "  ok: initial state;\n"
          "  failed: error state;\n"
          "end UnitFailure;\n";
    os << "error model implementation UnitFailure.Sensor\n"
          "events\n"
          "  fault: error event occurrence poisson "
       << sensor_fail_per_hour
       << " per hour;\n"
          "transitions\n"
          "  ok -[fault]-> failed;\n"
          "end UnitFailure.Sensor;\n";
    os << "error model implementation UnitFailure.Filter\n"
          "events\n"
          "  fault: error event occurrence poisson "
       << filter_fail_per_hour
       << " per hour;\n"
          "transitions\n"
          "  ok -[fault]-> failed;\n"
          "end UnitFailure.Filter;\n\n";

    os << "system System\n"
          "features\n"
          "  failed: out data port bool default false;\n"
          "  panicked: out data port bool default false;\n"
          "end System;\n";
    os << "system implementation System.Imp\n"
          "subcomponents\n"
          "  sensor0: device Sensor.Imp;\n"
          "  filter0: device Filter.Imp;\n"
          "connections\n"
          "  data port sensor0.reading -> filter0.raw_in in modes (m_0_0);\n"
          "modes\n"
          "  m_0_0: initial mode;\n"
          "  dead: mode;\n"
          "  panic: mode;\n"
          "transitions\n"
          "  m_0_0 -[when filter0.filtered > 10 then failed := true]-> dead;\n"
          "  m_0_0 -[when filter0.filtered = 0 then failed := true]-> dead;\n"
          "  m_0_0 -[when sensor0.reading = 9 and filter0.filtered = 0 then "
          "panicked := true]-> panic;\n"
          "end System.Imp;\n\n";

    os << "fault injections\n"
          "  component sensor0 uses error model UnitFailure.Sensor;\n"
          "  component sensor0 in state failed effect reading := 9;\n"
          "  component filter0 uses error model UnitFailure.Filter;\n"
          "  component filter0 in state failed effect filtered := 0;\n"
          "end fault injections;\n";
    return os.str();
}

std::string sensor_filter_panic_goal() { return "panicked"; }

} // namespace slimsim::models
