#include "models/failover.hpp"

#include <sstream>

#include "support/diagnostics.hpp"

namespace slimsim::models {

std::string failover_source(const FailoverOptions& opt) {
    if (opt.pump_fail_per_hour <= 0.0) throw Error("pump failure rate must be positive");
    if (opt.detection_latency < 0.0) throw Error("detection latency must be >= 0");
    const bool timed = opt.detection_latency > 0.0;
    const auto latency_guard = [&](const char* base) {
        std::ostringstream os;
        os << base;
        if (timed) os << " and @timer >= " << opt.detection_latency;
        return os.str();
    };

    std::ostringstream os;
    os << "-- Generated pump fail-over model ("
       << (timed ? "timed detection" : "untimed") << ")\n";
    os << "root System.Imp;\n\n";

    os << "device Pump\n"
          "features\n"
          "  start: in event port;\n"
          "  flow_ok: out data port bool default false;\n"
          "end Pump;\n"
          "device implementation Pump.Imp\n"
          "subcomponents\n"
          "  broken: data bool default false;\n"
          "flows\n"
          "  flow_ok := not broken in modes (running);\n"
          "  flow_ok := false in modes (standby);\n"
          "modes\n"
          "  standby: initial mode;\n"
          "  running: mode;\n"
          "transitions\n"
          "  standby -[start]-> running;\n"
          "end Pump.Imp;\n\n";

    os << "error model PumpFailure\n"
          "features\n"
          "  ok: initial state;\n"
          "  worn: error state;\n"
          "end PumpFailure;\n"
          "error model implementation PumpFailure.Imp\n"
          "events\n"
          "  fault: error event occurrence poisson "
       << opt.pump_fail_per_hour
       << " per hour;\n"
          "transitions\n"
          "  ok -[fault]-> worn;\n"
          "end PumpFailure.Imp;\n\n";

    os << "device Controller\n"
          "features\n"
          "  p_flow: in data port bool default false;\n"
          "  b_flow: in data port bool default false;\n"
          "  go_primary: out event port;\n"
          "  go_backup: out event port;\n"
          "  failed: out data port bool default false;\n"
          "end Controller;\n"
          "device implementation Controller.Imp\n"
          "modes\n"
          "  boot: initial mode;\n"
          "  watch_primary: mode;\n"
          "  watch_backup: mode;\n"
          "  dead: mode;\n"
          "transitions\n"
          "  boot -[go_primary]-> watch_primary;\n"
          "  watch_primary -[go_backup when "
       << latency_guard("not p_flow")
       << "]-> watch_backup;\n"
          "  watch_backup -[when "
       << latency_guard("not b_flow")
       << " then failed := true]-> dead;\n"
          "end Controller.Imp;\n\n";

    os << "system System\n"
          "features\n"
          "  failed: out data port bool default false;\n"
          "end System;\n"
          "system implementation System.Imp\n"
          "subcomponents\n"
          "  controller: device Controller.Imp;\n"
          "  primary: device Pump.Imp;\n"
          "  backup: device Pump.Imp;\n"
          "connections\n"
          "  event port controller.go_primary -> primary.start;\n"
          "  event port controller.go_backup -> backup.start;\n"
          "  data port primary.flow_ok -> controller.p_flow;\n"
          "  data port backup.flow_ok -> controller.b_flow;\n"
          "  data port controller.failed -> failed;\n"
          "end System.Imp;\n\n";

    os << "fault injections\n"
          "  component primary uses error model PumpFailure.Imp;\n"
          "  component primary in state worn effect broken := true;\n"
          "  component backup uses error model PumpFailure.Imp;\n"
          "  component backup in state worn effect broken := true;\n"
          "end fault injections;\n";
    return os.str();
}

std::string failover_goal() { return "failed"; }

} // namespace slimsim::models
