// The sensor/filter redundancy benchmark (paper, Sec. IV, Fig. 3).
//
// A sensor provides a discrete output in 1..5 (we use 3); a filter
// multiplies it by a constant (2). Sensors fail high (reading 9 -> filtered
// 18), filters fail to zero. A monitor distinguishes the two failure
// signatures and switches to the next redundant unit; when either all
// sensors or all filters have failed, the system has failed. Increasing the
// redundancy degree R grows the state space combinatorially (2^(2R) failure
// combinations x R^2 monitor modes), which drives Table I.
//
// The model is untimed (no clocks), so both the CTMC flow and the simulator
// can analyze it; the goal atom is the root's `failed` port.
#pragma once

#include <string>

namespace slimsim::models {

/// SLIM source with R redundant sensors and R redundant filters (R >= 1).
/// The paper's "model size" column corresponds to 2R.
[[nodiscard]] std::string sensor_filter_source(int redundancy,
                                               double sensor_fail_per_hour = 0.01,
                                               double filter_fail_per_hour = 0.005);

/// Goal expression for the benchmark property P( <> [0,u] failed ).
[[nodiscard]] std::string sensor_filter_goal();

/// Strategy-sensitive single-redundancy variant for coverage profiling: the
/// monitor additionally *panics* when it observes both failure signatures at
/// once (sensor stuck high AND filter output zero). Under the ASAP strategy
/// the monitor reacts to the first failure with zero delay, so the panic
/// transition never fires and the panic mode stays unreached — the coverage
/// profiler flags both — while the Progressive strategy's random reaction
/// delay lets the second failure slip in first, making the panic goal
/// reachable. The failure rates default to 0.9/hour so short horizons see
/// plenty of double failures.
[[nodiscard]] std::string sensor_filter_panic_source(double sensor_fail_per_hour = 0.9,
                                                     double filter_fail_per_hour = 0.9);

/// Goal expression for the panic property P( <> [0,u] panicked ).
[[nodiscard]] std::string sensor_filter_panic_goal();

} // namespace slimsim::models
