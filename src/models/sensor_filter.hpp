// The sensor/filter redundancy benchmark (paper, Sec. IV, Fig. 3).
//
// A sensor provides a discrete output in 1..5 (we use 3); a filter
// multiplies it by a constant (2). Sensors fail high (reading 9 -> filtered
// 18), filters fail to zero. A monitor distinguishes the two failure
// signatures and switches to the next redundant unit; when either all
// sensors or all filters have failed, the system has failed. Increasing the
// redundancy degree R grows the state space combinatorially (2^(2R) failure
// combinations x R^2 monitor modes), which drives Table I.
//
// The model is untimed (no clocks), so both the CTMC flow and the simulator
// can analyze it; the goal atom is the root's `failed` port.
#pragma once

#include <string>

namespace slimsim::models {

/// SLIM source with R redundant sensors and R redundant filters (R >= 1).
/// The paper's "model size" column corresponds to 2R.
[[nodiscard]] std::string sensor_filter_source(int redundancy,
                                               double sensor_fail_per_hour = 0.01,
                                               double filter_fail_per_hour = 0.005);

/// Goal expression for the benchmark property P( <> [0,u] failed ).
[[nodiscard]] std::string sensor_filter_goal();

} // namespace slimsim::models
