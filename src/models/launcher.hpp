// The launcher case study (paper, Sec. V, Fig. 4/5).
//
// Re-modelled from the paper's description (the Airbus SLIM sources are not
// public): two PCDUs whose batteries have continuous linear dynamics and a
// permanent failure mode; GPS and gyro sensors with transient (self-
// recovering within a [200,300] ms window) and permanent faults; two DPUs
// ("triplexes") computing thruster commands from power and navigation
// signals; four thrusters; two opaque buses. The system has failed when
// neither DPU can issue a command.
//
// Two DPU fault variants reproduce Fig. 5:
//  * permanent  - every DPU fault is unrecoverable; the model then contains
//    only probabilistic/deterministic timing, so all strategies coincide
//    (left graph);
//  * recoverable - a hot DPU fault must be repaired within its [200,300] ms
//    window, but a repair before 250 ms fails and makes the fault permanent.
//    The repair instant is non-deterministic, so the strategies diverge:
//    ASAP always repairs too early (fails), MaxTime never does, Local and
//    Progressive land in between (right graph).
//
// Fault rates are exaggerated (as in the paper) so the strategy effects are
// visible at mission time scales; `rate_scale` scales them uniformly.
#pragma once

#include <string>

namespace slimsim::models {

struct LauncherOptions {
    bool recoverable_dpu = false;
    double rate_scale = 1.0;
    double battery_capacity_hours = 4.0; // drives the continuous dynamics
};

[[nodiscard]] std::string launcher_source(const LauncherOptions& options = {});

/// Goal of the reliability property P( <> [0,u] failure ).
[[nodiscard]] std::string launcher_goal();

} // namespace slimsim::models
