#include "safety/fault_tree.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "ctmc/uniformization.hpp"

namespace slimsim::safety {

double basic_event_probability(const eda::Network& net, const FailureMode& mode,
                               double t) {
    const auto& proc = net.model().processes[static_cast<std::size_t>(mode.process)];
    SLIMSIM_ASSERT(proc.is_error);
    // The error automaton in isolation: Markovian transitions only; the mode
    // of interest is absorbing ("entered within t").
    ctmc::CtmcModel chain;
    chain.transitions.resize(proc.locations.size());
    chain.goal.assign(proc.locations.size(), 0);
    chain.goal[static_cast<std::size_t>(mode.state)] = 1;
    chain.initial = {{static_cast<ctmc::StateId>(proc.initial_location), 1.0}};
    for (const auto& tr : proc.transitions) {
        if (!tr.markovian()) continue;
        if (tr.src == mode.state) continue; // absorbing
        chain.transitions[static_cast<std::size_t>(tr.src)].emplace_back(
            static_cast<ctmc::StateId>(tr.dst), tr.rate);
    }
    return ctmc::transient_reachability(chain, t);
}

FaultTree build_fault_tree(const eda::Network& net, const expr::ExprPtr& goal, double t,
                           int max_order) {
    FaultTree tree;
    tree.mission_time = t;
    const std::vector<CutSet> cuts = minimal_cut_sets(net, goal, max_order);

    // Deduplicate basic events across cut sets.
    const auto event_index = [&](const FailureMode& fm) -> std::size_t {
        for (std::size_t i = 0; i < tree.events.size(); ++i) {
            if (tree.events[i].mode.process == fm.process &&
                tree.events[i].mode.state == fm.state) {
                return i;
            }
        }
        BasicEvent ev;
        ev.mode = fm;
        ev.probability = basic_event_probability(net, fm, t);
        tree.events.push_back(std::move(ev));
        return tree.events.size() - 1;
    };

    for (const CutSet& cs : cuts) {
        FaultTreeGate gate;
        gate.probability = 1.0;
        for (const FailureMode& fm : cs.modes) {
            const std::size_t idx = event_index(fm);
            gate.events.push_back(idx);
            gate.probability *= tree.events[idx].probability;
        }
        tree.cut_sets.push_back(std::move(gate));
    }

    // Top event by inclusion-exclusion over cut sets (independent basic
    // events, shared between cut sets via the event-union masks). Exact up
    // to 20 cut sets / 64 distinct events; beyond that, fall back to the
    // independent-gates approximation.
    const std::size_t n = tree.cut_sets.size();
    if (n == 0) {
        tree.top_probability = 0.0;
    } else if (n <= 20 && tree.events.size() <= 64) {
        std::vector<std::uint64_t> cut_mask(n, 0);
        for (std::size_t c = 0; c < n; ++c) {
            for (const std::size_t e : tree.cut_sets[c].events) {
                cut_mask[c] |= std::uint64_t{1} << e;
            }
        }
        const std::size_t subsets = std::size_t{1} << n;
        std::vector<std::uint64_t> union_mask(subsets, 0);
        double top = 0.0;
        for (std::size_t s = 1; s < subsets; ++s) {
            const std::size_t low = s & (~s + 1);
            const auto low_idx = static_cast<std::size_t>(std::countr_zero(low));
            union_mask[s] = union_mask[s ^ low] | cut_mask[low_idx];
            double p = 1.0;
            std::uint64_t m = union_mask[s];
            while (m != 0) {
                const auto e = static_cast<std::size_t>(std::countr_zero(m));
                p *= tree.events[e].probability;
                m &= m - 1;
            }
            const bool odd = (std::popcount(s) % 2) == 1;
            top += odd ? p : -p;
        }
        tree.top_probability = top;
    } else {
        double none = 1.0;
        for (const auto& gate : tree.cut_sets) none *= 1.0 - gate.probability;
        tree.top_probability = 1.0 - none;
    }
    return tree;
}

std::string FaultTree::to_string() const {
    std::ostringstream os;
    os << "TOP event: P = " << top_probability << " within t = " << mission_time
       << " s (OR over " << cut_sets.size() << " minimal cut sets)\n";
    for (const auto& gate : cut_sets) {
        os << "  AND (P = " << gate.probability << "): ";
        bool first = true;
        for (const std::size_t e : gate.events) {
            if (!first) os << " & ";
            first = false;
            const auto& fm = events[e].mode;
            os << (fm.component.empty() ? "root" : fm.component) << ":" << fm.mode;
        }
        os << '\n';
    }
    os << "basic events:\n";
    for (const auto& ev : events) {
        os << "  " << (ev.mode.component.empty() ? "root" : ev.mode.component) << ":"
           << ev.mode.mode << "  P = " << ev.probability << '\n';
    }
    return os.str();
}

} // namespace slimsim::safety
