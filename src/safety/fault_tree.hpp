// Fault-tree construction and evaluation (paper, Sec. II-C).
//
// COMPASS generates fault trees from models with failure modes and evaluates
// them "to determine the probabilities of the various events". We build the
// two-level tree induced by the minimal static cut sets:
//
//      TOP  =  OR over minimal cut sets
//      cut  =  AND over its basic events (failure modes)
//
// Basic-event probabilities come from the error models themselves: the
// probability that the mode is entered within the mission time, computed
// exactly on the error model's own (small) CTMC via the uniformization
// engine. The top event is evaluated under the standard independence
// assumption with inclusion-exclusion (exact for the usual handful of cut
// sets), and cross-checkable against the simulator's estimate of the same
// failure condition.
#pragma once

#include "safety/fmea.hpp"

namespace slimsim::safety {

struct BasicEvent {
    FailureMode mode;
    double probability = 0.0; // P(mode entered within the mission time)
};

struct FaultTreeGate {
    std::vector<std::size_t> events; // indices into FaultTree::events
    double probability = 0.0;        // AND of the basic events
};

struct FaultTree {
    std::vector<BasicEvent> events; // deduplicated basic events
    std::vector<FaultTreeGate> cut_sets;
    double top_probability = 0.0; // OR over cut sets (inclusion-exclusion)
    double mission_time = 0.0;

    [[nodiscard]] std::string to_string() const;
};

/// Probability that `mode`'s error process, started in its initial state,
/// occupies `mode.state` *at some point* within [0, t] — computed exactly on
/// the isolated error automaton (Markovian transitions only; guarded
/// recovery transitions are conservatively ignored, i.e. treated as leaving
/// the state irrelevant for "entered within t").
[[nodiscard]] double basic_event_probability(const eda::Network& net,
                                             const FailureMode& mode, double t);

/// Builds and evaluates the fault tree for the failure condition `goal`
/// over mission time `t`, from the minimal cut sets up to `max_order`.
[[nodiscard]] FaultTree build_fault_tree(const eda::Network& net,
                                         const expr::ExprPtr& goal, double t,
                                         int max_order = 2);

} // namespace slimsim::safety
