#include "safety/fdir.hpp"

#include <sstream>

namespace slimsim::safety {

namespace {

double reach_from(const eda::Network& net, const expr::ExprPtr& goal, double window,
                  const eda::NetworkState& start, const FdirOptions& options,
                  std::uint64_t seed) {
    sim::PathFormula f;
    f.kind = sim::FormulaKind::Reach;
    f.goal = goal;
    f.bound = window;
    f.text = "<fdir>";
    const auto strat = sim::make_strategy(options.strategy);
    const sim::PathGenerator gen(net, f, *strat, options.sim);
    const stat::ChernoffHoeffding criterion(options.delta, options.eps);
    const std::size_t n = *criterion.fixed_sample_count();
    Rng rng(seed);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
        eda::NetworkState s = start;
        std::size_t steps = 0;
        for (;;) {
            if (const auto out = gen.step(s, rng, steps)) {
                if (out->satisfied) ++hits;
                break;
            }
        }
    }
    return static_cast<double>(hits) / static_cast<double>(n);
}

} // namespace

std::vector<FdirRow> fdir_coverage(const eda::Network& net, const expr::ExprPtr& alarm,
                                   const expr::ExprPtr& nominal_ok, double window,
                                   std::uint64_t seed, const FdirOptions& options) {
    std::vector<FdirRow> rows;
    for (const FailureMode& fm : failure_modes(net)) {
        const eda::NetworkState start =
            net.forced_initial_state({{std::pair{fm.process, fm.state}}});
        FdirRow row;
        row.mode = fm;
        row.detection_probability = reach_from(net, alarm, window, start, options, seed);
        row.recovery_probability =
            reach_from(net, nominal_ok, window, start, options, seed + 1);
        rows.push_back(std::move(row));
    }
    return rows;
}

std::string format_fdir(const std::vector<FdirRow>& rows) {
    std::ostringstream os;
    os << "component:mode                 P(detected)  P(recovered)\n";
    for (const auto& r : rows) {
        std::string label =
            (r.mode.component.empty() ? std::string("root") : r.mode.component) + ":" +
            r.mode.mode;
        label.resize(30, ' ');
        char buf[48];
        std::snprintf(buf, sizeof buf, "%-12.3f %-12.3f", r.detection_probability,
                      r.recovery_probability);
        os << label << ' ' << buf << '\n';
    }
    return os.str();
}

} // namespace slimsim::safety
