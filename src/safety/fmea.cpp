#include "safety/fmea.hpp"

#include <algorithm>
#include <sstream>

namespace slimsim::safety {

std::vector<FailureMode> failure_modes(const eda::Network& net) {
    const auto& m = net.model();
    std::vector<FailureMode> modes;
    for (std::size_t p = 0; p < m.processes.size(); ++p) {
        const auto& proc = m.processes[p];
        if (!proc.is_error) continue;
        for (std::size_t loc = 0; loc < proc.locations.size(); ++loc) {
            if (static_cast<int>(loc) == proc.initial_location) continue;
            FailureMode fm;
            fm.process = static_cast<slim::ProcessId>(p);
            fm.state = static_cast<int>(loc);
            fm.component = m.instances[static_cast<std::size_t>(proc.instance)].path;
            fm.mode = proc.locations[loc].name;
            modes.push_back(std::move(fm));
        }
    }
    return modes;
}

namespace {

/// Simulates P( <> formula ) from a forced start state.
double estimate_from(const eda::Network& net, const sim::PathFormula& formula,
                     const eda::NetworkState& start, const FmeaOptions& options,
                     std::uint64_t seed) {
    const auto strat = sim::make_strategy(options.strategy);
    const sim::PathGenerator gen(net, formula, *strat, options.sim);
    const stat::ChernoffHoeffding criterion(options.delta, options.eps);
    const std::size_t n = *criterion.fixed_sample_count();
    Rng rng(seed);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
        eda::NetworkState s = start;
        std::size_t steps = 0;
        for (;;) {
            if (const auto out = gen.step(s, rng, steps)) {
                if (out->satisfied) ++hits;
                break;
            }
        }
    }
    return static_cast<double>(hits) / static_cast<double>(n);
}

std::string mode_label(const FailureMode& fm) {
    return (fm.component.empty() ? std::string("root") : fm.component) + ":" + fm.mode;
}

} // namespace

std::vector<FmeaRow> fmea(const eda::Network& net, const expr::ExprPtr& goal, double bound,
                          std::uint64_t seed, const FmeaOptions& options) {
    const auto& m = net.model();
    sim::PathFormula formula;
    formula.kind = sim::FormulaKind::Reach;
    formula.goal = goal;
    formula.bound = bound;
    formula.text = "<fmea failure condition>";

    const eda::NetworkState nominal = net.initial_state();
    const double baseline = estimate_from(net, formula, nominal, options, seed);

    std::vector<FmeaRow> rows;
    for (const FailureMode& fm : failure_modes(net)) {
        FmeaRow row;
        row.mode = fm;
        row.baseline_probability = baseline;
        const eda::NetworkState forced =
            net.forced_initial_state({{std::pair{fm.process, fm.state}}});
        for (VarId v = 0; v < m.vars.size(); ++v) {
            if (m.vars[v].type.is_timed()) continue;
            if (!(nominal.values[v] == forced.values[v])) {
                row.immediate_effects.push_back(m.vars[v].full_name + ": " +
                                                nominal.values[v].to_string() + " -> " +
                                                forced.values[v].to_string());
            }
        }
        row.immediate_failure = net.eval_global(forced, *goal);
        row.failure_probability =
            row.immediate_failure
                ? 1.0
                : estimate_from(net, formula, forced, options, seed + 1);
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(), [](const FmeaRow& a, const FmeaRow& b) {
        return a.failure_probability > b.failure_probability;
    });
    return rows;
}

std::string format_fmea(const std::vector<FmeaRow>& rows) {
    std::ostringstream os;
    os << "component:mode                 P(failure)  baseline  immediate effects\n";
    for (const auto& r : rows) {
        std::string label = mode_label(r.mode);
        label.resize(30, ' ');
        char buf[64];
        std::snprintf(buf, sizeof buf, "%-11.4f %-9.4f", r.failure_probability,
                      r.baseline_probability);
        os << label << ' ' << buf << ' ';
        if (r.immediate_failure) os << "[IMMEDIATE FAILURE] ";
        bool first = true;
        for (const auto& e : r.immediate_effects) {
            if (!first) os << "; ";
            first = false;
            os << e;
        }
        if (first) os << "(none)";
        os << '\n';
    }
    return os.str();
}

std::vector<CutSet> minimal_cut_sets(const eda::Network& net, const expr::ExprPtr& goal,
                                     int max_order) {
    const std::vector<FailureMode> modes = failure_modes(net);
    std::vector<CutSet> result;

    // True if `combo` contains every mode of `smaller` (same process+state).
    const auto contains_set = [](const std::vector<const FailureMode*>& combo,
                                 const CutSet& smaller) {
        for (const FailureMode& need : smaller.modes) {
            const bool found =
                std::any_of(combo.begin(), combo.end(), [&](const FailureMode* fm) {
                    return fm->process == need.process && fm->state == need.state;
                });
            if (!found) return false;
        }
        return true;
    };

    // Enumerate strictly by increasing order so that every recorded cut set
    // is minimal, pruning supersets of previously-found sets.
    std::vector<const FailureMode*> combo;
    const auto evaluate_combo = [&] {
        for (const CutSet& cs : result) {
            if (contains_set(combo, cs)) return; // superset of a minimal set
        }
        std::vector<std::pair<slim::ProcessId, int>> forced;
        forced.reserve(combo.size());
        for (const FailureMode* fm : combo) forced.emplace_back(fm->process, fm->state);
        const eda::NetworkState s = net.forced_initial_state(forced);
        if (net.eval_global(s, *goal)) {
            CutSet cs;
            for (const FailureMode* fm : combo) cs.modes.push_back(*fm);
            result.push_back(std::move(cs));
        }
    };
    auto choose = [&](auto&& self, std::size_t start, int need) -> void {
        if (need == 0) {
            evaluate_combo();
            return;
        }
        for (std::size_t i = start; i < modes.size(); ++i) {
            // At most one mode per error process.
            const bool same_proc =
                std::any_of(combo.begin(), combo.end(), [&](const FailureMode* fm) {
                    return fm->process == modes[i].process;
                });
            if (same_proc) continue;
            combo.push_back(&modes[i]);
            self(self, i + 1, need - 1);
            combo.pop_back();
        }
    };
    for (int order = 1; order <= max_order; ++order) choose(choose, 0, order);
    return result;
}

std::string format_cut_sets(const std::vector<CutSet>& sets) {
    std::ostringstream os;
    for (const auto& cs : sets) {
        os << "{ ";
        bool first = true;
        for (const auto& fm : cs.modes) {
            if (!first) os << ", ";
            first = false;
            os << mode_label(fm);
        }
        os << " }\n";
    }
    return os.str();
}

} // namespace slimsim::safety
