// FDIR coverage analysis (paper, Sec. II-C).
//
// COMPASS's FDIR analysis checks "whether certain fault conditions in the
// model can be detected, isolated and recovered from", based on alarms and
// observables — Boolean model elements triggered by conditions. This module
// measures, per failure mode:
//   detected   - P( <> [0,window] alarm      | mode at t=0 )
//   recovered  - P( <> [0,window] nominal_ok | mode at t=0 ), where
//                nominal_ok is the user's "system back to nominal" condition.
#pragma once

#include "safety/fmea.hpp"

namespace slimsim::safety {

struct FdirRow {
    FailureMode mode;
    double detection_probability = 0.0;
    double recovery_probability = 0.0;
};

struct FdirOptions {
    double delta = 0.1;
    double eps = 0.03;
    sim::StrategyKind strategy = sim::StrategyKind::Asap;
    sim::SimOptions sim;
};

/// Evaluates detection and recovery coverage of every failure mode within
/// `window` seconds. `alarm` and `nominal_ok` are Boolean expressions over
/// global names (resolve with sim::resolve_goal / make via parse).
[[nodiscard]] std::vector<FdirRow> fdir_coverage(const eda::Network& net,
                                                 const expr::ExprPtr& alarm,
                                                 const expr::ExprPtr& nominal_ok,
                                                 double window, std::uint64_t seed,
                                                 const FdirOptions& options = {});

[[nodiscard]] std::string format_fdir(const std::vector<FdirRow>& rows);

} // namespace slimsim::safety
