// Safety analysis: FMEA tables and minimal cut sets (paper, Sec. II-C).
//
// The COMPASS toolset generates FMEA (Failure Mode and Effects Analysis)
// tables and fault trees from models with failure modes. This module
// provides the corresponding analyses on top of the simulator:
//
//  * fmea(): for every failure mode (a non-initial error state of a bound
//    error model), force the mode at t = 0 and report its immediate effects
//    on the nominal data (through injections and flows) plus the Monte
//    Carlo probability that the system-level failure condition is reached
//    within the mission time given the mode.
//  * minimal_cut_sets(): minimal combinations of failure modes (at most one
//    per component) whose *injected* effects alone make the failure
//    condition true — the static cut sets of the fault tree induced by the
//    fault injections and data flows. Dynamic effects (monitor reactions,
//    timed recovery) are deliberately outside this static analysis; use
//    fmea() probabilities for those.
#pragma once

#include "sim/runner.hpp"

namespace slimsim::safety {

/// A failure mode: one non-initial state of one bound error model.
struct FailureMode {
    slim::ProcessId process = -1;
    int state = 0;
    std::string component; // instance path ("" = root)
    std::string mode;      // error state name
};

/// Enumerates all failure modes of the model.
[[nodiscard]] std::vector<FailureMode> failure_modes(const eda::Network& net);

struct FmeaRow {
    FailureMode mode;
    /// Data elements whose value differs from nominal at t = 0 with the
    /// mode active ("name: nominal -> failed").
    std::vector<std::string> immediate_effects;
    /// True if the failure condition holds immediately with the mode active.
    bool immediate_failure = false;
    /// P( <> [0,u] failure | mode active at t = 0 ), estimated.
    double failure_probability = 0.0;
    /// Baseline P( <> [0,u] failure ) without the forced mode, for severity.
    double baseline_probability = 0.0;
};

struct FmeaOptions {
    double delta = 0.1;
    double eps = 0.02;
    sim::StrategyKind strategy = sim::StrategyKind::Asap;
    sim::SimOptions sim;
};

/// Builds the FMEA table for the failure condition P( <> [0,bound] goal ).
[[nodiscard]] std::vector<FmeaRow> fmea(const eda::Network& net, const expr::ExprPtr& goal,
                                        double bound, std::uint64_t seed,
                                        const FmeaOptions& options = {});

/// Renders the table for terminal output.
[[nodiscard]] std::string format_fmea(const std::vector<FmeaRow>& rows);

/// A cut set: failure modes (at most one per component) that jointly make
/// the failure condition true at t = 0.
struct CutSet {
    std::vector<FailureMode> modes;
};

/// Minimal static cut sets up to the given order. Supersets of smaller cut
/// sets are pruned.
[[nodiscard]] std::vector<CutSet> minimal_cut_sets(const eda::Network& net,
                                                   const expr::ExprPtr& goal,
                                                   int max_order = 2);

[[nodiscard]] std::string format_cut_sets(const std::vector<CutSet>& sets);

} // namespace slimsim::safety
