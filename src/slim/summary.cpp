#include "slim/summary.hpp"

#include <sstream>

namespace slimsim::slim {

namespace {

void print_instance(std::ostringstream& os, const InstanceModel& m, InstanceId id,
                    int depth) {
    const Instance& inst = m.instances[static_cast<std::size_t>(id)];
    for (int i = 0; i < depth; ++i) os << "  ";
    os << (inst.path.empty() ? "<root>" : inst.path.substr(inst.path.rfind('.') + 1));
    os << " (" << inst.impl->impl->full_name() << ")";
    if (inst.process >= 0) {
        const auto& p = m.processes[static_cast<std::size_t>(inst.process)];
        os << " [" << p.locations.size() << " modes, " << p.transitions.size()
           << " transitions]";
    }
    if (inst.error_process >= 0) {
        const auto& p = m.processes[static_cast<std::size_t>(inst.error_process)];
        os << " +error[" << p.locations.size() << " states]";
    }
    if (!inst.parent_modes.empty()) os << " (mode-gated)";
    os << '\n';
    for (const InstanceId child : inst.children) print_instance(os, m, child, depth + 1);
}

} // namespace

std::string model_summary(const InstanceModel& m) {
    std::ostringstream os;
    os << "instances (" << m.instances.size() << "):\n";
    print_instance(os, m, 0, 1);

    std::size_t error_procs = 0;
    std::size_t transitions = 0;
    std::size_t markovian = 0;
    for (const auto& p : m.processes) {
        if (p.is_error) ++error_procs;
        transitions += p.transitions.size();
        for (const auto& t : p.transitions) {
            if (t.markovian()) ++markovian;
        }
    }
    os << "processes: " << m.processes.size() << " (" << error_procs
       << " error models), " << transitions << " transitions (" << markovian
       << " Markovian)\n";

    std::size_t timed_vars = 0;
    for (const auto& v : m.vars) {
        if (v.type.is_timed()) ++timed_vars;
    }
    os << "variables: " << m.vars.size() << " (" << timed_vars << " clocks/continuous)\n";
    os << "sync actions: " << m.actions.size();
    for (const auto& a : m.actions) {
        os << "  [" << a.name << ": " << a.participants.size() << " participants]";
    }
    os << '\n';
    os << "broadcast channels: " << m.channels.size();
    for (const auto& c : m.channels) os << "  [" << c.name << "]";
    os << '\n';
    os << "data flows: " << m.flows.size() << ", fault injections: " << m.injections.size()
       << '\n';
    return os.str();
}

} // namespace slimsim::slim
