#include "slim/parser.hpp"

#include <optional>

#include "slim/lexer.hpp"

namespace slimsim::slim {

namespace {

using expr::BinaryOp;
using expr::ExprPtr;
using expr::UnaryOp;

/// Canonical time unit is the second.
std::optional<double> time_unit_seconds(std::string_view folded) {
    if (folded == "msec") return 0.001;
    if (folded == "sec") return 1.0;
    if (folded == "min") return 60.0;
    if (folded == "hour") return 3600.0;
    if (folded == "day") return 86400.0;
    return std::nullopt;
}

class Parser {
public:
    explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

    ModelFile parse_file() {
        ModelFile file;
        while (!at(TokenKind::EndOfFile)) {
            if (accept_kw("root")) {
                file.root = parse_dotted_name();
                expect(TokenKind::Semicolon);
            } else if (peek_kw("error")) {
                parse_error_decl(file);
            } else if (peek_kw("fault")) {
                parse_fault_block(file);
            } else if (auto cat = category_from(peek().folded);
                       cat && peek().kind == TokenKind::Ident) {
                parse_component_decl(file, *cat);
            } else {
                throw Error(peek().loc, "expected a declaration, found " + peek().to_string());
            }
        }
        return file;
    }

    ExprPtr parse_whole_expression() {
        ExprPtr e = parse_expr();
        if (!at(TokenKind::EndOfFile)) {
            throw Error(peek().loc, "trailing input after expression: " + peek().to_string());
        }
        return e;
    }

private:
    // --- token helpers ------------------------------------------------------

    [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
        const std::size_t i = pos_ + ahead;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }
    [[nodiscard]] bool at(TokenKind k) const { return peek().kind == k; }
    [[nodiscard]] bool peek_kw(std::string_view kw, std::size_t ahead = 0) const {
        return peek(ahead).is_ident(kw);
    }

    const Token& advance() {
        const Token& t = toks_[pos_];
        if (pos_ + 1 < toks_.size()) ++pos_;
        return t;
    }

    bool accept(TokenKind k) {
        if (!at(k)) return false;
        advance();
        return true;
    }

    bool accept_kw(std::string_view kw) {
        if (!peek_kw(kw)) return false;
        advance();
        return true;
    }

    const Token& expect(TokenKind k) {
        if (!at(k)) {
            throw Error(peek().loc, "expected " + std::string(to_string(k)) + ", found " +
                                        peek().to_string());
        }
        return advance();
    }

    void expect_kw(std::string_view kw) {
        if (!accept_kw(kw)) {
            throw Error(peek().loc,
                        "expected `" + std::string(kw) + "`, found " + peek().to_string());
        }
    }

    std::string expect_ident() { return expect(TokenKind::Ident).text; }

    /// `a` or `a.b` (component-qualified names and implementation names).
    std::string parse_dotted_name() {
        std::string name = expect_ident();
        while (accept(TokenKind::Dot)) {
            name += '.';
            name += expect_ident();
        }
        return name;
    }

    std::vector<std::string> parse_ident_list() {
        std::vector<std::string> names;
        names.push_back(expect_ident());
        while (accept(TokenKind::Comma)) names.push_back(expect_ident());
        return names;
    }

    /// `in modes (m1, m2)` clause; returns empty when absent.
    std::vector<std::string> parse_in_modes_opt() {
        if (!peek_kw("in") || !peek_kw("modes", 1)) return {};
        expect_kw("in");
        expect_kw("modes");
        expect(TokenKind::LParen);
        auto names = parse_ident_list();
        expect(TokenKind::RParen);
        return names;
    }

    PortRef parse_port_ref() {
        PortRef ref;
        ref.loc = peek().loc;
        ref.port = expect_ident();
        if (accept(TokenKind::Dot)) {
            ref.component = std::move(ref.port);
            ref.port = expect_ident();
        }
        return ref;
    }

    // --- types --------------------------------------------------------------

    Type parse_data_type() {
        const Token& t = expect(TokenKind::Ident);
        if (t.folded == "bool") return Type::boolean();
        if (t.folded == "real") return Type::real();
        if (t.folded == "clock") return Type::clock();
        if (t.folded == "continuous") return Type::continuous();
        if (t.folded == "int") {
            if (accept(TokenKind::LBracket)) {
                const std::int64_t lo = parse_signed_int();
                expect(TokenKind::DotDot);
                const std::int64_t hi = parse_signed_int();
                expect(TokenKind::RBracket);
                if (lo > hi) throw Error(t.loc, "empty integer range");
                return Type::integer_range(lo, hi);
            }
            return Type::integer();
        }
        throw Error(t.loc, "expected a data type (bool, int, real, clock, continuous)");
    }

    std::int64_t parse_signed_int() {
        const bool neg = accept(TokenKind::Minus);
        const Token& t = expect(TokenKind::Integer);
        return neg ? -t.int_value : t.int_value;
    }

    // --- expressions ----------------------------------------------------------
    //
    // expr    := implies
    // implies := or ('=>' implies)?          (right associative)
    // or      := and ('or' and)*
    // and     := cmp ('and' cmp)*
    // cmp     := add (cmpop add)?            (non associative)
    // add     := mul (('+'|'-') mul)*
    // mul     := unary (('*'|'/'|'mod') unary)*
    // unary   := ('not'|'-') unary | primary
    // primary := literal [time-unit] | 'true' | 'false' | dotted-name
    //          | '(' expr ')' | 'if' expr 'then' expr 'else' expr

    ExprPtr parse_expr() { return parse_implies(); }

    ExprPtr parse_implies() {
        ExprPtr lhs = parse_or();
        if (at(TokenKind::FatArrow)) {
            const SourceLoc loc = advance().loc;
            return expr::make_binary(BinaryOp::Implies, std::move(lhs), parse_implies(), loc);
        }
        return lhs;
    }

    ExprPtr parse_or() {
        ExprPtr lhs = parse_and();
        while (peek_kw("or")) {
            const SourceLoc loc = advance().loc;
            lhs = expr::make_binary(BinaryOp::Or, std::move(lhs), parse_and(), loc);
        }
        return lhs;
    }

    ExprPtr parse_and() {
        ExprPtr lhs = parse_cmp();
        while (peek_kw("and")) {
            const SourceLoc loc = advance().loc;
            lhs = expr::make_binary(BinaryOp::And, std::move(lhs), parse_cmp(), loc);
        }
        return lhs;
    }

    std::optional<BinaryOp> peek_cmp_op() const {
        switch (peek().kind) {
        case TokenKind::Lt: return BinaryOp::Lt;
        case TokenKind::Le: return BinaryOp::Le;
        case TokenKind::Gt: return BinaryOp::Gt;
        case TokenKind::Ge: return BinaryOp::Ge;
        case TokenKind::EqEq: return BinaryOp::Eq;
        case TokenKind::Neq: return BinaryOp::Ne;
        default: return std::nullopt;
        }
    }

    ExprPtr parse_cmp() {
        ExprPtr lhs = parse_add();
        if (auto op = peek_cmp_op()) {
            const SourceLoc loc = advance().loc;
            return expr::make_binary(*op, std::move(lhs), parse_add(), loc);
        }
        return lhs;
    }

    ExprPtr parse_add() {
        ExprPtr lhs = parse_mul();
        for (;;) {
            if (at(TokenKind::Plus)) {
                const SourceLoc loc = advance().loc;
                lhs = expr::make_binary(BinaryOp::Add, std::move(lhs), parse_mul(), loc);
            } else if (at(TokenKind::Minus)) {
                const SourceLoc loc = advance().loc;
                lhs = expr::make_binary(BinaryOp::Sub, std::move(lhs), parse_mul(), loc);
            } else {
                return lhs;
            }
        }
    }

    ExprPtr parse_mul() {
        ExprPtr lhs = parse_unary();
        for (;;) {
            if (at(TokenKind::Star)) {
                const SourceLoc loc = advance().loc;
                lhs = expr::make_binary(BinaryOp::Mul, std::move(lhs), parse_unary(), loc);
            } else if (at(TokenKind::Slash)) {
                const SourceLoc loc = advance().loc;
                lhs = expr::make_binary(BinaryOp::Div, std::move(lhs), parse_unary(), loc);
            } else if (peek_kw("mod")) {
                const SourceLoc loc = advance().loc;
                lhs = expr::make_binary(BinaryOp::Mod, std::move(lhs), parse_unary(), loc);
            } else {
                return lhs;
            }
        }
    }

    ExprPtr parse_unary() {
        if (peek_kw("not")) {
            const SourceLoc loc = advance().loc;
            return expr::make_unary(UnaryOp::Not, parse_unary(), loc);
        }
        if (at(TokenKind::Minus)) {
            const SourceLoc loc = advance().loc;
            return expr::make_unary(UnaryOp::Neg, parse_unary(), loc);
        }
        return parse_primary();
    }

    ExprPtr parse_primary() {
        const Token& t = peek();
        switch (t.kind) {
        case TokenKind::Integer: {
            advance();
            if (auto unit = time_unit_seconds(peek().folded)) {
                advance();
                return expr::make_literal(Value(static_cast<double>(t.int_value) * *unit),
                                          t.loc);
            }
            return expr::make_literal(Value(t.int_value), t.loc);
        }
        case TokenKind::Real: {
            advance();
            double v = t.real_value;
            if (auto unit = time_unit_seconds(peek().folded)) {
                advance();
                v *= *unit;
            }
            return expr::make_literal(Value(v), t.loc);
        }
        case TokenKind::LParen: {
            advance();
            ExprPtr e = parse_expr();
            expect(TokenKind::RParen);
            return e;
        }
        case TokenKind::At: {
            // @timer: the implicit per-process clock, reset on every
            // discrete transition of the declaring process.
            const SourceLoc loc = advance().loc;
            const Token& name = expect(TokenKind::Ident);
            if (name.folded != "timer") {
                throw Error(loc, "unknown implicit variable @" + name.text);
            }
            return expr::make_var("@timer", loc);
        }
        case TokenKind::Ident: {
            if (t.folded == "true") {
                advance();
                return expr::make_literal(Value(true), t.loc);
            }
            if (t.folded == "false") {
                advance();
                return expr::make_literal(Value(false), t.loc);
            }
            if (t.folded == "if") {
                advance();
                ExprPtr cond = parse_expr();
                expect_kw("then");
                ExprPtr then_e = parse_expr();
                expect_kw("else");
                ExprPtr else_e = parse_expr();
                return expr::make_ite(std::move(cond), std::move(then_e), std::move(else_e),
                                      t.loc);
            }
            return expr::make_var(parse_dotted_name(), t.loc);
        }
        default:
            throw Error(t.loc, "expected an expression, found " + t.to_string());
        }
    }

    // --- component declarations ----------------------------------------------

    void parse_component_decl(ModelFile& file, Category category) {
        advance(); // category word
        if (accept_kw("implementation")) {
            file.component_impls.push_back(parse_component_impl(category));
        } else {
            file.component_types.push_back(parse_component_type(category));
        }
    }

    ComponentType parse_component_type(Category category) {
        ComponentType type;
        type.category = category;
        type.loc = peek().loc;
        type.name = expect_ident();
        if (accept_kw("features")) {
            while (!peek_kw("end")) type.features.push_back(parse_feature());
        }
        expect_kw("end");
        const std::string closing = expect_ident();
        if (closing != type.name) {
            throw Error(peek().loc, "component type `" + type.name + "` closed as `" +
                                        closing + "`");
        }
        expect(TokenKind::Semicolon);
        return type;
    }

    FeatureDecl parse_feature() {
        FeatureDecl f;
        f.loc = peek().loc;
        f.name = expect_ident();
        expect(TokenKind::Colon);
        if (accept_kw("in")) {
            f.dir = PortDir::In;
        } else if (accept_kw("out")) {
            f.dir = PortDir::Out;
        } else {
            throw Error(peek().loc, "expected `in` or `out` in feature declaration");
        }
        if (accept_kw("event")) {
            f.is_event = true;
            expect_kw("port");
        } else {
            expect_kw("data");
            expect_kw("port");
            f.data_type = parse_data_type();
            if (accept_kw("default")) f.default_value = parse_expr();
        }
        expect(TokenKind::Semicolon);
        return f;
    }

    ComponentImpl parse_component_impl(Category category) {
        ComponentImpl impl;
        impl.category = category;
        impl.loc = peek().loc;
        impl.type_name = expect_ident();
        expect(TokenKind::Dot);
        impl.impl_name = expect_ident();
        for (;;) {
            if (accept_kw("subcomponents")) {
                while (!at_section_end()) parse_subcomponent(impl);
            } else if (accept_kw("connections")) {
                while (!at_section_end()) impl.connections.push_back(parse_connection());
            } else if (accept_kw("flows")) {
                while (!at_section_end()) impl.flows.push_back(parse_flow());
            } else if (accept_kw("modes")) {
                while (!at_section_end()) impl.modes.push_back(parse_mode());
            } else if (accept_kw("transitions")) {
                while (!at_section_end()) impl.transitions.push_back(parse_transition());
            } else if (accept_kw("trends")) {
                while (!at_section_end()) impl.trends.push_back(parse_trend());
            } else {
                break;
            }
        }
        expect_kw("end");
        const std::string closing = parse_dotted_name();
        if (closing != impl.full_name()) {
            throw Error(peek().loc, "implementation `" + impl.full_name() + "` closed as `" +
                                        closing + "`");
        }
        expect(TokenKind::Semicolon);
        return impl;
    }

    [[nodiscard]] bool at_section_end() const {
        return peek_kw("end") || peek_kw("subcomponents") || peek_kw("connections") ||
               peek_kw("flows") || peek_kw("modes") || peek_kw("transitions") ||
               peek_kw("trends") || peek_kw("events") || at(TokenKind::EndOfFile);
    }

    void parse_subcomponent(ComponentImpl& impl) {
        const SourceLoc loc = peek().loc;
        std::string name = expect_ident();
        expect(TokenKind::Colon);
        if (peek_kw("data")) {
            advance();
            DataDecl d;
            d.name = std::move(name);
            d.loc = loc;
            d.type = parse_data_type();
            if (accept_kw("default")) d.default_value = parse_expr();
            expect(TokenKind::Semicolon);
            impl.data.push_back(std::move(d));
            return;
        }
        const Token& cat_tok = expect(TokenKind::Ident);
        const auto cat = category_from(cat_tok.folded);
        if (!cat) {
            throw Error(cat_tok.loc,
                        "expected `data` or a component category, found `" + cat_tok.text + "`");
        }
        SubcompDecl s;
        s.name = std::move(name);
        s.loc = loc;
        s.category = *cat;
        s.type_name = parse_dotted_name();
        s.in_modes = parse_in_modes_opt();
        expect(TokenKind::Semicolon);
        impl.subcomponents.push_back(std::move(s));
    }

    ConnectionDecl parse_connection() {
        ConnectionDecl c;
        c.loc = peek().loc;
        if (accept_kw("event")) {
            c.is_event = true;
        } else {
            expect_kw("data");
        }
        expect_kw("port");
        c.src = parse_port_ref();
        expect(TokenKind::Arrow);
        c.dst = parse_port_ref();
        c.in_modes = parse_in_modes_opt();
        expect(TokenKind::Semicolon);
        return c;
    }

    FlowDecl parse_flow() {
        FlowDecl f;
        f.loc = peek().loc;
        f.target = parse_port_ref();
        expect(TokenKind::Assign);
        f.value = parse_expr();
        f.in_modes = parse_in_modes_opt();
        expect(TokenKind::Semicolon);
        return f;
    }

    ModeDecl parse_mode() {
        ModeDecl m;
        m.loc = peek().loc;
        m.name = expect_ident();
        expect(TokenKind::Colon);
        if (accept_kw("initial")) m.initial = true;
        expect_kw("mode");
        if (accept_kw("while")) m.invariant = parse_expr();
        expect(TokenKind::Semicolon);
        return m;
    }

    TransitionDecl parse_transition() {
        TransitionDecl t;
        t.loc = peek().loc;
        t.src = expect_ident();
        expect(TokenKind::TransBegin);
        t.trigger = parse_trigger();
        if (accept_kw("when")) t.guard = parse_expr();
        if (accept_kw("then")) {
            t.effects.push_back(parse_assign());
            while (accept(TokenKind::Semicolon)) t.effects.push_back(parse_assign());
        }
        expect(TokenKind::TransEnd);
        t.dst = expect_ident();
        expect(TokenKind::Semicolon);
        return t;
    }

    Trigger parse_trigger() {
        Trigger tr;
        tr.loc = peek().loc;
        if (at(TokenKind::At)) {
            advance();
            const Token& name = expect(TokenKind::Ident);
            if (name.folded == "activation") {
                tr.kind = TriggerKind::Activation;
            } else if (name.folded == "deactivation") {
                tr.kind = TriggerKind::Deactivation;
            } else {
                throw Error(name.loc, "unknown reserved event @" + name.text);
            }
            return tr;
        }
        if (peek_kw("when") || peek_kw("then") || at(TokenKind::TransEnd)) {
            tr.kind = TriggerKind::Internal;
            return tr;
        }
        tr.kind = TriggerKind::Port;
        tr.port = parse_port_ref();
        return tr;
    }

    AssignDecl parse_assign() {
        AssignDecl a;
        a.loc = peek().loc;
        a.target = parse_port_ref();
        expect(TokenKind::Assign);
        a.value = parse_expr();
        return a;
    }

    TrendDecl parse_trend() {
        TrendDecl t;
        t.loc = peek().loc;
        t.var = expect_ident();
        expect(TokenKind::Prime);
        expect(TokenKind::EqEq);
        t.rate = parse_expr();
        if (accept_kw("in")) {
            accept_kw("modes");
            const bool parens = accept(TokenKind::LParen);
            t.modes = parse_ident_list();
            if (parens) expect(TokenKind::RParen);
        }
        expect(TokenKind::Semicolon);
        return t;
    }

    // --- error models ----------------------------------------------------------

    void parse_error_decl(ModelFile& file) {
        expect_kw("error");
        expect_kw("model");
        if (accept_kw("implementation")) {
            file.error_impls.push_back(parse_error_impl());
        } else {
            file.error_types.push_back(parse_error_type());
        }
    }

    ErrorModelType parse_error_type() {
        ErrorModelType type;
        type.loc = peek().loc;
        type.name = expect_ident();
        if (accept_kw("features")) {
            while (!peek_kw("end")) parse_error_feature(type);
        }
        expect_kw("end");
        const std::string closing = expect_ident();
        if (closing != type.name) {
            throw Error(peek().loc,
                        "error model `" + type.name + "` closed as `" + closing + "`");
        }
        expect(TokenKind::Semicolon);
        return type;
    }

    void parse_error_feature(ErrorModelType& type) {
        const SourceLoc loc = peek().loc;
        std::string name = expect_ident();
        expect(TokenKind::Colon);
        if (peek_kw("in") || peek_kw("out")) {
            PropagationDecl p;
            p.loc = loc;
            p.name = std::move(name);
            p.dir = accept_kw("in") ? PortDir::In : (expect_kw("out"), PortDir::Out);
            expect_kw("propagation");
            expect(TokenKind::Semicolon);
            type.propagations.push_back(std::move(p));
            return;
        }
        ErrorStateDecl s;
        s.loc = loc;
        s.name = std::move(name);
        if (accept_kw("initial")) s.initial = true;
        accept_kw("error"); // optional `error state` / plain `state`
        expect_kw("state");
        if (accept_kw("while")) s.invariant = parse_expr();
        expect(TokenKind::Semicolon);
        type.states.push_back(std::move(s));
    }

    ErrorModelImpl parse_error_impl() {
        ErrorModelImpl impl;
        impl.loc = peek().loc;
        impl.type_name = expect_ident();
        expect(TokenKind::Dot);
        impl.impl_name = expect_ident();
        for (;;) {
            if (accept_kw("events")) {
                while (!at_section_end()) impl.events.push_back(parse_error_event());
            } else if (accept_kw("subcomponents")) {
                while (!at_section_end()) parse_error_data(impl);
            } else if (accept_kw("transitions")) {
                while (!at_section_end()) impl.transitions.push_back(parse_transition());
            } else if (accept_kw("trends")) {
                while (!at_section_end()) impl.trends.push_back(parse_trend());
            } else {
                break;
            }
        }
        expect_kw("end");
        const std::string closing = parse_dotted_name();
        if (closing != impl.full_name()) {
            throw Error(peek().loc, "error model implementation `" + impl.full_name() +
                                        "` closed as `" + closing + "`");
        }
        expect(TokenKind::Semicolon);
        return impl;
    }

    ErrorEventDecl parse_error_event() {
        ErrorEventDecl e;
        e.loc = peek().loc;
        e.name = expect_ident();
        expect(TokenKind::Colon);
        expect_kw("error");
        expect_kw("event");
        if (accept_kw("occurrence")) {
            expect_kw("poisson");
            const Token& t = advance();
            double rate = 0.0;
            if (t.kind == TokenKind::Integer) {
                rate = static_cast<double>(t.int_value);
            } else if (t.kind == TokenKind::Real) {
                rate = t.real_value;
            } else {
                throw Error(t.loc, "expected a rate value after `poisson`");
            }
            if (accept_kw("per")) {
                const Token& u = expect(TokenKind::Ident);
                const auto unit = time_unit_seconds(u.folded);
                if (!unit) throw Error(u.loc, "unknown time unit `" + u.text + "`");
                rate /= *unit;
            }
            if (rate <= 0.0) throw Error(e.loc, "poisson rate must be positive");
            e.rate = rate;
        }
        expect(TokenKind::Semicolon);
        return e;
    }

    void parse_error_data(ErrorModelImpl& impl) {
        DataDecl d;
        d.loc = peek().loc;
        d.name = expect_ident();
        expect(TokenKind::Colon);
        expect_kw("data");
        d.type = parse_data_type();
        if (accept_kw("default")) d.default_value = parse_expr();
        expect(TokenKind::Semicolon);
        impl.data.push_back(std::move(d));
    }

    // --- fault injection block ---------------------------------------------------

    void parse_fault_block(ModelFile& file) {
        expect_kw("fault");
        expect_kw("injections");
        while (!peek_kw("end")) {
            expect_kw("component");
            const SourceLoc loc = peek().loc;
            std::vector<std::string> path = parse_component_path();
            if (accept_kw("uses")) {
                expect_kw("error");
                expect_kw("model");
                ErrorBindingDecl b;
                b.loc = loc;
                b.component_path = std::move(path);
                b.error_impl = parse_dotted_name();
                expect(TokenKind::Semicolon);
                file.error_bindings.push_back(std::move(b));
            } else {
                expect_kw("in");
                expect_kw("state");
                InjectionDecl inj;
                inj.loc = loc;
                inj.component_path = std::move(path);
                inj.state = expect_ident();
                expect_kw("effect");
                inj.target_var = expect_ident();
                expect(TokenKind::Assign);
                inj.value = parse_expr();
                expect(TokenKind::Semicolon);
                file.injections.push_back(std::move(inj));
            }
        }
        expect_kw("end");
        expect_kw("fault");
        expect_kw("injections");
        expect(TokenKind::Semicolon);
    }

    /// `root` (the root component itself) or `a.b.c` (subcomponent path).
    std::vector<std::string> parse_component_path() {
        if (accept_kw("root")) return {};
        std::vector<std::string> path;
        path.push_back(expect_ident());
        while (accept(TokenKind::Dot)) path.push_back(expect_ident());
        return path;
    }

    std::vector<Token> toks_;
    std::size_t pos_ = 0;
};

} // namespace

ModelFile parse_model(std::string_view source, std::string filename) {
    return Parser(tokenize(source, std::move(filename))).parse_file();
}

expr::ExprPtr parse_expression(std::string_view source, std::string filename) {
    return Parser(tokenize(source, std::move(filename))).parse_whole_expression();
}

} // namespace slimsim::slim
