// Name resolution and type checking of a parsed SLIM model.
//
// Each component implementation gets a *symbol table* assigning a slot to
// every data-valued entity visible inside it: its own data subcomponents,
// its own data ports, the data ports of its direct subcomponents (dotted
// `sub.port` names) and the implicit per-process clock `@timer`. Expressions
// are resolved in place: variable references receive their slot and every
// node its static type. Component *instances* later provide a binding table
// mapping slots to global variable ids, so resolved expression trees are
// shared between all instances of an implementation.
#pragma once

#include <unordered_map>

#include "slim/ast.hpp"

namespace slimsim::slim {

enum class SymKind : std::uint8_t {
    Data,           // own data subcomponent
    InDataPort,     // own in data port
    OutDataPort,    // own out data port
    SubInDataPort,  // in data port of a direct subcomponent
    SubOutDataPort, // out data port of a direct subcomponent
    Timer,          // implicit @timer clock
};

struct Symbol {
    std::string name; // as referenced: "x", "port", "sub.port", "@timer"
    SymKind kind = SymKind::Data;
    Type type;
    expr::ExprPtr default_value; // may be null (type default)
    std::string sub;             // for Sub*DataPort: subcomponent name
    std::string port;            // for Sub*DataPort / ports: the port name
};

class SymbolTable {
public:
    /// Adds a symbol; returns its slot. Duplicate names are the caller's
    /// responsibility to diagnose (lookup returns the first).
    expr::Slot add(Symbol sym);

    [[nodiscard]] const Symbol* find(std::string_view name) const;
    [[nodiscard]] std::optional<expr::Slot> slot_of(std::string_view name) const;

    [[nodiscard]] const std::vector<Symbol>& all() const { return symbols_; }
    [[nodiscard]] const Symbol& at(expr::Slot s) const { return symbols_[s]; }
    [[nodiscard]] std::size_t size() const { return symbols_.size(); }

private:
    std::vector<Symbol> symbols_;
    std::unordered_map<std::string, expr::Slot> by_name_;
};

/// A resolved component implementation.
struct ResolvedImpl {
    const ComponentImpl* impl = nullptr;
    const ComponentType* type = nullptr;
    SymbolTable symbols;
    std::vector<std::string> mode_names;
    std::unordered_map<std::string, int> mode_index;
    int initial_mode = -1; // -1 when the component has no modes
    std::unordered_map<std::string, PortDir> event_ports;
    /// Maps each subcomponent name to the full name of its implementation.
    std::unordered_map<std::string, std::string> subcomp_impl;

    [[nodiscard]] bool has_behavior() const { return !mode_names.empty(); }
};

/// A resolved error model implementation.
struct ResolvedErrorImpl {
    const ErrorModelImpl* impl = nullptr;
    const ErrorModelType* type = nullptr;
    SymbolTable symbols; // own data + @timer
    std::vector<std::string> state_names;
    std::unordered_map<std::string, int> state_index;
    int initial_state = -1;
    std::unordered_map<std::string, PortDir> propagations;
    std::unordered_map<std::string, const ErrorEventDecl*> events;
    /// Per-state invariant, resolved against *this* implementation's symbols
    /// (state declarations live on the error model type, but may reference
    /// implementation data). Indexed by state; null = no invariant.
    std::vector<expr::ExprPtr> state_invariants;
};

/// The fully resolved model; owns the AST.
struct ResolvedModel {
    ModelFile file;
    std::unordered_map<std::string, const ComponentType*> types;
    std::unordered_map<std::string, ResolvedImpl> impls; // key: "Type.Impl"
    std::unordered_map<std::string, const ErrorModelType*> error_types;
    std::unordered_map<std::string, ResolvedErrorImpl> error_impls;
    std::string root_impl; // full name of the root implementation

    [[nodiscard]] const ResolvedImpl& impl_of(const std::string& full_name) const;
    [[nodiscard]] const ResolvedErrorImpl& error_impl_of(const std::string& full_name) const;
};

/// Resolves and type-checks the whole model. Collects as many diagnostics as
/// possible and throws slimsim::Error listing them all if any is an error.
[[nodiscard]] ResolvedModel resolve(ModelFile file);

/// Resolves one expression against a symbol table (exposed for the property
/// front-end and programmatic model builders). Fills slots and types in
/// place; reports unknown names / type errors to `sink`.
void resolve_expr(expr::Expr& e, const SymbolTable& symbols, DiagnosticSink& sink);

/// Resolves an expression that must be constant (no variable references).
void resolve_const_expr(expr::Expr& e, DiagnosticSink& sink);

} // namespace slimsim::slim
