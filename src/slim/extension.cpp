#include "slim/extension.hpp"

#include <algorithm>

#include "expr/eval.hpp"

namespace slimsim::slim {

namespace {

Value const_eval_resolved(const expr::Expr& e) {
    return expr::evaluate(e, expr::EvalContext{{}, {}});
}

std::string join_path(const std::vector<std::string>& parts) {
    std::string out;
    for (const auto& p : parts) {
        if (!out.empty()) out += '.';
        out += p;
    }
    return out;
}

/// Builds one error process for `binding`, appends its variables and returns
/// its ProcessId. `channel_of` interns propagation names as channels.
ProcessId build_error_process(InstanceModel& m, const ResolvedErrorImpl& eimpl,
                              InstanceId host,
                              std::unordered_map<std::string, ChannelId>& channel_ids) {
    Instance& inst = m.instances[static_cast<std::size_t>(host)];
    const std::string prefix = inst.path.empty() ? "#error" : inst.path + "#error";

    InstProcess p;
    p.name = prefix;
    p.instance = host;
    p.is_error = true;
    p.initial_location = eimpl.initial_state;

    // Variables and bindings.
    auto bindings = std::make_shared<std::vector<VarId>>();
    std::unordered_map<std::string, VarId> own;
    for (const Symbol& sym : eimpl.symbols.all()) {
        GlobalVar var;
        var.full_name = prefix + "." + sym.name;
        var.type = sym.type;
        var.owner = host;
        var.init = sym.default_value
                       ? const_eval_resolved(*sym.default_value).coerce_to(sym.type)
                       : Value::default_for(sym.type);
        const auto id = static_cast<VarId>(m.vars.size());
        own.emplace(sym.name, id);
        bindings->push_back(id);
        m.vars.push_back(std::move(var));
        m.var_by_name.emplace(m.vars.back().full_name, id);
    }
    p.bindings = bindings;
    p.timer = own.at("@timer");

    // Locations: error states, their invariants and derivative tables.
    const std::size_t n_states = eimpl.state_names.size();
    std::vector<std::vector<std::pair<VarId, double>>> rates(n_states);
    for (const DataDecl& d : eimpl.impl->data) {
        if (d.type.kind == TypeKind::Clock) {
            for (auto& r : rates) r.emplace_back(own.at(d.name), 1.0);
        }
    }
    for (const TrendDecl& t : eimpl.impl->trends) {
        const VarId v = own.at(t.var);
        const double slope = const_eval_resolved(*t.rate).as_real();
        if (t.modes.empty()) {
            for (auto& r : rates) r.emplace_back(v, slope);
        } else {
            for (const auto& sn : t.modes) {
                rates[static_cast<std::size_t>(eimpl.state_index.at(sn))].emplace_back(v,
                                                                                       slope);
            }
        }
    }
    for (auto& r : rates) r.emplace_back(p.timer, 1.0);

    for (std::size_t s = 0; s < n_states; ++s) {
        InstLocation loc;
        loc.name = eimpl.state_names[s];
        loc.invariant = eimpl.state_invariants[s];
        loc.rates = std::move(rates[s]);
        p.locations.push_back(std::move(loc));
    }

    // Transitions.
    for (const TransitionDecl& t : eimpl.impl->transitions) {
        InstTransition tr;
        tr.src = eimpl.state_index.at(t.src);
        tr.dst = eimpl.state_index.at(t.dst);
        tr.loc = t.loc;
        tr.guard = t.guard;
        switch (t.trigger.kind) {
        case TriggerKind::Internal:
            break;
        case TriggerKind::Port: {
            const std::string& name = t.trigger.port.port;
            if (const auto ev = eimpl.events.find(name); ev != eimpl.events.end()) {
                tr.label = name;
                if (ev->second->rate) tr.rate = *ev->second->rate;
            } else {
                const PortDir dir = eimpl.propagations.at(name);
                const auto [it, inserted] =
                    channel_ids.emplace(name, static_cast<ChannelId>(m.channels.size()));
                if (inserted) m.channels.push_back({name});
                tr.channel = it->second;
                tr.role = dir;
                tr.label = name;
            }
            break;
        }
        case TriggerKind::Activation:
            tr.trigger = TriggerClass::OnActivate;
            tr.label = "@activation";
            break;
        case TriggerKind::Deactivation:
            tr.trigger = TriggerClass::OnDeactivate;
            tr.label = "@deactivation";
            break;
        }
        for (const AssignDecl& a : t.effects) {
            InstAssign ia;
            ia.target = *eimpl.symbols.slot_of(a.target.to_string());
            ia.value = a.value;
            tr.effects.push_back(std::move(ia));
        }
        p.transitions.push_back(std::move(tr));
    }

    const auto pid = static_cast<ProcessId>(m.processes.size());
    inst.error_process = pid;
    m.processes.push_back(std::move(p));
    return pid;
}

/// Error processes of sibling, parent and child instances of `host`.
std::vector<ProcessId> neighbour_error_processes(const InstanceModel& m, InstanceId host) {
    std::vector<ProcessId> peers;
    const Instance& inst = m.instances[static_cast<std::size_t>(host)];
    auto add = [&](InstanceId other) {
        if (other == host) return;
        const ProcessId ep = m.instances[static_cast<std::size_t>(other)].error_process;
        if (ep >= 0) peers.push_back(ep);
    };
    if (inst.parent >= 0) {
        add(inst.parent);
        for (const InstanceId sib : m.instances[static_cast<std::size_t>(inst.parent)].children) {
            add(sib);
        }
    }
    for (const InstanceId child : inst.children) add(child);
    std::sort(peers.begin(), peers.end());
    peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
    return peers;
}

} // namespace

void extend_model(InstanceModel& m, const ResolvedModel& r) {
    std::unordered_map<std::string, ChannelId> channel_ids;
    std::unordered_map<ProcessId, const ResolvedErrorImpl*> impl_of_process;

    for (const ErrorBindingDecl& b : r.file.error_bindings) {
        const std::string path = join_path(b.component_path);
        const InstanceId host = m.instance(path); // throws on unknown path
        if (m.instances[static_cast<std::size_t>(host)].error_process >= 0) {
            throw Error(b.loc, "component `" + (path.empty() ? "root" : path) +
                                   "` already has an error model");
        }
        const ResolvedErrorImpl& eimpl = r.error_impl_of(b.error_impl);
        const ProcessId pid = build_error_process(m, eimpl, host, channel_ids);
        impl_of_process.emplace(pid, &eimpl);
    }

    // Propagation neighbourhoods (sender -> candidate receivers).
    for (auto& [pid, eimpl] : impl_of_process) {
        (void)eimpl;
        InstProcess& p = m.processes[static_cast<std::size_t>(pid)];
        p.propagation_peers = neighbour_error_processes(m, p.instance);
    }

    // Fault injections.
    for (const InjectionDecl& inj : r.file.injections) {
        const std::string path = join_path(inj.component_path);
        const InstanceId host = m.instance(path);
        const Instance& inst = m.instances[static_cast<std::size_t>(host)];
        if (inst.error_process < 0) {
            throw Error(inj.loc, "fault injection into `" + (path.empty() ? "root" : path) +
                                     "`, which has no error model bound");
        }
        const ResolvedErrorImpl& eimpl = *impl_of_process.at(inst.error_process);
        const auto state_it = eimpl.state_index.find(inj.state);
        if (state_it == eimpl.state_index.end()) {
            throw Error(inj.loc, "error model of `" + path + "` has no state `" + inj.state +
                                     "`");
        }
        const auto var_it = inst.own_vars.find(inj.target_var);
        if (var_it == inst.own_vars.end()) {
            throw Error(inj.loc, "component `" + path + "` has no data element `" +
                                     inj.target_var + "`");
        }
        const VarId target = var_it->second;
        if (m.vars[target].type.is_timed()) {
            throw Error(inj.loc, "fault injection target must not be a clock or "
                                 "continuous variable");
        }
        // The injection value must be a constant expression.
        DiagnosticSink sink;
        resolve_const_expr(*inj.value, sink);
        sink.throw_if_errors("fault injection");
        Injection out;
        out.process = inst.error_process;
        out.state = state_it->second;
        out.target = target;
        out.value = const_eval_resolved(*inj.value).coerce_to(m.vars[target].type);
        out.restore = m.vars[target].init;
        m.injections.push_back(out);
    }
}

} // namespace slimsim::slim
