#include "slim/validate.hpp"

namespace slimsim::slim {

std::vector<Diagnostic> validate(const InstanceModel& m) {
    DiagnosticSink sink;
    for (const InstProcess& p : m.processes) {
        std::vector<bool> has_rate(p.locations.size(), false);
        std::vector<bool> has_guarded_internal(p.locations.size(), false);
        for (const InstTransition& t : p.transitions) {
            const auto src = static_cast<std::size_t>(t.src);
            if (t.markovian()) {
                has_rate[src] = true;
                if (t.action != kTau || t.channel != kNoChannel) {
                    sink.error(t.loc, "process `" + p.name +
                                          "`: Markovian transitions must be internal");
                }
                if (t.guard != nullptr) {
                    sink.error(t.loc, "process `" + p.name +
                                          "`: a transition cannot have both a guard and "
                                          "an exit rate");
                }
            } else if (t.action == kTau && t.channel == kNoChannel &&
                       t.trigger == TriggerClass::Normal && t.guard != nullptr) {
                has_guarded_internal[src] = true;
            }
        }
        for (std::size_t l = 0; l < p.locations.size(); ++l) {
            if (has_rate[l] && has_guarded_internal[l]) {
                sink.warning({}, "process `" + p.name + "`, location `" +
                                     p.locations[l].name +
                                     "` mixes exit-rate and guarded internal transitions; "
                                     "the simulator resolves this as a race");
            }
            if (has_rate[l] && p.locations[l].invariant != nullptr) {
                sink.warning({}, "process `" + p.name + "`, location `" +
                                     p.locations[l].name +
                                     "` has Markovian transitions and a non-trivial "
                                     "invariant; exponential delays are truncated at the "
                                     "invariant horizon");
            }
        }
    }
    return sink.all();
}

void validate_or_throw(const InstanceModel& m) {
    const auto diags = validate(m);
    DiagnosticSink sink;
    for (const auto& d : diags) {
        if (d.severity == Severity::Error) sink.error(d.loc, d.message);
    }
    sink.throw_if_errors("validation");
}

} // namespace slimsim::slim
