// Model instantiation: from a resolved SLIM model to a flat, executable
// instance model (the input of the Event-Data Automata network).
//
// Instantiation expands the component containment hierarchy into an instance
// tree, allocates one *global variable* per data element of every instance,
// turns every behavioral component into a *process* (locations = modes,
// plus derivative tables and an implicit @timer clock), computes the event
// synchronization groups induced by event-port connections, lowers data
// connections and flow declarations into one topologically-sorted list of
// *flows*, and applies *model extension*: error-model bindings become
// additional processes, error propagations become broadcast actions between
// neighbouring components, and fault injections become state-entry effects.
#pragma once

#include <memory>
#include <unordered_map>

#include "slim/resolver.hpp"

namespace slimsim::slim {

/// Index of a process in InstanceModel::processes.
using ProcessId = std::int32_t;
/// Index of an instance in InstanceModel::instances.
using InstanceId = std::int32_t;
/// Index of an action in InstanceModel::actions; kTau means internal.
using ActionId = std::int32_t;
inline constexpr ActionId kTau = -1;

struct GlobalVar {
    std::string full_name; // e.g. "gps1.x"; root-level elements have no prefix
    Type type;
    Value init;
    InstanceId owner = -1;
};

/// A synchronization action induced by a group of connected event ports:
/// every process with the action in its alphabet must join each occurrence
/// (CSP-style synchronization on the shared alphabet).
struct ActionDef {
    std::string name;
    std::vector<ProcessId> participants; // processes with the action in their alphabet
};

/// A broadcast channel induced by an error propagation name: a sending
/// transition fires on its own; *ready* receivers in the sender's
/// neighbourhood (sibling / parent / child components) join, others do not
/// block. Receivers are matched dynamically via InstProcess::propagation_peers.
using ChannelId = std::int32_t;
inline constexpr ChannelId kNoChannel = -1;

struct ChannelDef {
    std::string name; // the propagation name
};

struct InstAssign {
    expr::Slot target = expr::kInvalidSlot; // slot in the owning process's bindings
    expr::ExprPtr value;
};

/// How a transition is triggered, beyond its action/guard/rate.
enum class TriggerClass : std::uint8_t {
    Normal,       // tau or action-labelled
    OnActivate,   // fires when the owning instance is (re)activated
    OnDeactivate, // fires when the owning instance is deactivated
};

struct InstTransition {
    int src = 0;
    int dst = 0;
    ActionId action = kTau;         // sync action, or kTau
    ChannelId channel = kNoChannel; // broadcast channel (error propagations)
    PortDir role = PortDir::Out;    // sender (Out) or receiver (In)
    TriggerClass trigger = TriggerClass::Normal;
    double rate = 0.0;              // > 0: Markovian (action must be kTau)
    expr::ExprPtr guard;            // null = true
    std::vector<InstAssign> effects;
    std::string label;              // for traces: trigger spelling or ""
    SourceLoc loc;

    [[nodiscard]] bool markovian() const { return rate > 0.0; }
    /// A broadcast receive only fires when dragged along by a sender.
    [[nodiscard]] bool receive_only() const {
        return channel != kNoChannel && role == PortDir::In;
    }
};

struct InstLocation {
    std::string name;
    expr::ExprPtr invariant; // null = true
    /// Derivatives of this process's timed variables while in this location
    /// (global var id -> slope). Variables not listed have slope 0.
    std::vector<std::pair<VarId, double>> rates;
};

struct InstProcess {
    std::string name; // instance path, or "<path>#error"
    InstanceId instance = -1;
    bool is_error = false;
    std::vector<InstLocation> locations;
    int initial_location = 0;
    std::vector<InstTransition> transitions;
    /// Maps expression slots to global variable ids; shared by all
    /// expressions of this process.
    std::shared_ptr<const std::vector<VarId>> bindings;
    VarId timer = kInvalidVar; // the process's implicit @timer variable
    /// Error processes that may receive this process's propagations
    /// (error processes of sibling / parent / child component instances).
    std::vector<ProcessId> propagation_peers;
};

/// An immediate data propagation: target := value, re-evaluated after every
/// discrete step (in list order, which is topological).
struct InstFlow {
    VarId target = kInvalidVar;
    expr::ExprPtr value;
    std::shared_ptr<const std::vector<VarId>> bindings;
    InstanceId owner = -1;            // flow is inert while this instance is inactive
    ProcessId gate_process = -1;      // mode-gated flows: owner's process
    std::vector<int> gate_locations;  // sorted; empty = all locations
};

/// A fault-injection effect: while `process` is in `state`, `target` is
/// forced to `value`; on leaving the state it is restored to `restore`.
struct Injection {
    ProcessId process = -1;
    int state = 0;
    VarId target = kInvalidVar;
    Value value;
    Value restore;
};

struct Instance {
    std::string path; // "" for the root
    InstanceId parent = -1;
    const ResolvedImpl* impl = nullptr;
    ProcessId process = -1;       // -1 when the component has no modes
    ProcessId error_process = -1; // -1 when no error model is bound
    /// Active iff the parent is active and the parent process's location is
    /// in this set (empty = unconditional). Only set when the parent has a
    /// process.
    std::vector<int> parent_modes;
    std::vector<InstanceId> children;
    /// Maps this instance's own symbol names (data, ports) to global vars.
    std::unordered_map<std::string, VarId> own_vars;
};

struct InstanceModel {
    std::shared_ptr<const ResolvedModel> resolved; // keeps the AST alive
    std::vector<GlobalVar> vars;
    std::vector<InstProcess> processes;
    std::vector<ActionDef> actions;
    std::vector<ChannelDef> channels;
    std::vector<Instance> instances;
    std::vector<InstFlow> flows; // topologically sorted
    std::vector<Injection> injections;
    std::unordered_map<std::string, VarId> var_by_name;
    std::unordered_map<std::string, InstanceId> instance_by_path;

    /// Looks up a variable by its full dotted name; throws slimsim::Error.
    [[nodiscard]] VarId var(const std::string& full_name) const;
    [[nodiscard]] InstanceId instance(const std::string& path) const;
    /// Builds the initial valuation (defaults, then initial flow evaluation).
    [[nodiscard]] std::vector<Value> initial_valuation() const;
};

/// Instantiates the resolved model from its root implementation.
/// Throws slimsim::Error on instantiation errors (flow cycles, bad fault
/// injection paths, ...).
[[nodiscard]] InstanceModel instantiate(std::shared_ptr<const ResolvedModel> model);

} // namespace slimsim::slim
