// Lexer for SLIM source text.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "slim/token.hpp"

namespace slimsim::slim {

/// Tokenizes an entire SLIM source. Comments run from `--` to end of line.
/// Throws slimsim::Error on malformed input (bad characters, bad numbers).
[[nodiscard]] std::vector<Token> tokenize(std::string_view source,
                                          std::string filename = "<input>");

} // namespace slimsim::slim
