// Human-readable inventory of an instantiated model (CLI `--info`).
#pragma once

#include <string>

#include "slim/instantiate.hpp"

namespace slimsim::slim {

/// Multi-line summary: instance tree, processes with location/transition
/// counts, variables, synchronization actions, broadcast channels, flows
/// and fault injections.
[[nodiscard]] std::string model_summary(const InstanceModel& m);

} // namespace slimsim::slim
