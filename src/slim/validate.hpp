// Post-instantiation well-formedness checks (paper, Sec. II-E).
#pragma once

#include "slim/instantiate.hpp"

namespace slimsim::slim {

/// Checks the semantic restrictions the paper places on processes:
///  * a location should not mix Markovian (exit-rate) transitions with
///    guarded internal transitions (reported as a warning; the simulator
///    resolves the mix as a race),
///  * a location with Markovian transitions should have invariant `true`
///    (warning; the exponential delay is truncated by the invariant horizon),
///  * Markovian transitions must be internal (error).
/// Returns all diagnostics; errors are also thrown via `validate_or_throw`.
[[nodiscard]] std::vector<Diagnostic> validate(const InstanceModel& m);

/// Runs validate() and throws slimsim::Error if any diagnostic is an error.
void validate_or_throw(const InstanceModel& m);

} // namespace slimsim::slim
