#include "slim/ast.hpp"

namespace slimsim::slim {

std::string to_string(Category c) {
    switch (c) {
    case Category::System: return "system";
    case Category::Device: return "device";
    case Category::Processor: return "processor";
    case Category::Process: return "process";
    case Category::Thread: return "thread";
    case Category::Bus: return "bus";
    case Category::Memory: return "memory";
    case Category::Abstract: return "abstract";
    }
    return "?";
}

std::optional<Category> category_from(std::string_view folded_word) {
    if (folded_word == "system") return Category::System;
    if (folded_word == "device") return Category::Device;
    if (folded_word == "processor") return Category::Processor;
    if (folded_word == "process") return Category::Process;
    if (folded_word == "thread") return Category::Thread;
    if (folded_word == "bus") return Category::Bus;
    if (folded_word == "memory") return Category::Memory;
    if (folded_word == "abstract") return Category::Abstract;
    return std::nullopt;
}

} // namespace slimsim::slim
