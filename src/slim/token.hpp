// Tokens of the SLIM language (the COMPASS dialect of AADL).
//
// SLIM/AADL keywords are *contextual*: the lexer only distinguishes
// identifiers, numbers and punctuation, and the parser matches keywords by
// spelling. This mirrors AADL, where e.g. `data` and `mode` also appear in
// identifier positions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/diagnostics.hpp"

namespace slimsim::slim {

enum class TokenKind : std::uint8_t {
    Ident,
    Integer,
    Real,
    // punctuation / operators
    LParen, RParen, LBracket, RBracket,
    Colon, Semicolon, Comma, Dot, DotDot,
    Arrow,      // ->
    TransBegin, // -[
    TransEnd,   // ]->
    Assign,     // :=
    Prime,      // '
    Plus, Minus, Star, Slash,
    Lt, Le, Gt, Ge, EqEq, Neq, // =  is EqEq; != is Neq
    FatArrow,   // =>
    At,         // @
    EndOfFile,
};

[[nodiscard]] std::string_view to_string(TokenKind k);

struct Token {
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;            // identifier spelling (lowercased copy in `folded`)
    std::string folded;          // case-folded identifier for keyword matching
    std::int64_t int_value = 0;  // for Integer
    double real_value = 0.0;     // for Real
    SourceLoc loc;

    [[nodiscard]] bool is_ident(std::string_view keyword) const {
        return kind == TokenKind::Ident && folded == keyword;
    }
    [[nodiscard]] std::string to_string() const;
};

} // namespace slimsim::slim
