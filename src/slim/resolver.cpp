#include "slim/resolver.hpp"

#include <algorithm>
#include <unordered_set>

namespace slimsim::slim {

using expr::BinaryOp;
using expr::Expr;
using expr::ExprKind;
using expr::UnaryOp;

// --- SymbolTable -------------------------------------------------------------

expr::Slot SymbolTable::add(Symbol sym) {
    const auto slot = static_cast<expr::Slot>(symbols_.size());
    by_name_.emplace(sym.name, slot);
    symbols_.push_back(std::move(sym));
    return slot;
}

const Symbol* SymbolTable::find(std::string_view name) const {
    const auto it = by_name_.find(std::string(name));
    return it == by_name_.end() ? nullptr : &symbols_[it->second];
}

std::optional<expr::Slot> SymbolTable::slot_of(std::string_view name) const {
    const auto it = by_name_.find(std::string(name));
    if (it == by_name_.end()) return std::nullopt;
    return it->second;
}

// --- expression resolution ----------------------------------------------------

namespace {

void resolve_expr_rec(Expr& e, const SymbolTable* symbols, DiagnosticSink& sink) {
    switch (e.kind) {
    case ExprKind::Literal:
        return; // typed at construction
    case ExprKind::Var: {
        if (symbols == nullptr) {
            sink.error(e.loc, "expression must be constant, but references `" +
                                  e.var_name + "`");
            e.type = Type::real();
            return;
        }
        const Symbol* sym = symbols->find(e.var_name);
        if (sym == nullptr) {
            sink.error(e.loc, "unknown data element `" + e.var_name + "`");
            e.type = Type::real();
            return;
        }
        e.slot = *symbols->slot_of(e.var_name);
        e.type = sym->type;
        return;
    }
    case ExprKind::Unary: {
        resolve_expr_rec(*e.a, symbols, sink);
        if (e.uop == UnaryOp::Not) {
            if (!e.a->type.is_bool()) {
                sink.error(e.loc, "`not` requires a Boolean operand");
            }
            e.type = Type::boolean();
        } else {
            if (!e.a->type.is_numeric()) {
                sink.error(e.loc, "unary `-` requires a numeric operand");
            }
            e.type = e.a->type.is_int() ? Type::integer() : Type::real();
        }
        return;
    }
    case ExprKind::Binary: {
        resolve_expr_rec(*e.a, symbols, sink);
        resolve_expr_rec(*e.b, symbols, sink);
        const Type& l = e.a->type;
        const Type& r = e.b->type;
        if (expr::is_logical(e.bop)) {
            if (!l.is_bool() || !r.is_bool()) {
                sink.error(e.loc, "`" + expr::to_string(e.bop) +
                                      "` requires Boolean operands");
            }
            e.type = Type::boolean();
        } else if (expr::is_comparison(e.bop)) {
            const bool eq = e.bop == BinaryOp::Eq || e.bop == BinaryOp::Ne;
            const bool ok = (l.is_numeric() && r.is_numeric()) ||
                            (eq && l.is_bool() && r.is_bool());
            if (!ok) {
                sink.error(e.loc, "invalid operand types for `" +
                                      expr::to_string(e.bop) + "`: " + l.to_string() +
                                      " and " + r.to_string());
            }
            e.type = Type::boolean();
        } else { // arithmetic
            if (e.bop == BinaryOp::Mod) {
                if (!l.is_int() || !r.is_int()) {
                    sink.error(e.loc, "`mod` requires integer operands");
                }
                e.type = Type::integer();
            } else {
                if (!l.is_numeric() || !r.is_numeric()) {
                    sink.error(e.loc, "arithmetic requires numeric operands");
                }
                e.type = (l.is_int() && r.is_int()) ? Type::integer() : Type::real();
            }
        }
        return;
    }
    case ExprKind::Ite: {
        resolve_expr_rec(*e.a, symbols, sink);
        resolve_expr_rec(*e.b, symbols, sink);
        resolve_expr_rec(*e.c, symbols, sink);
        if (!e.a->type.is_bool()) {
            sink.error(e.loc, "`if` condition must be Boolean");
        }
        const Type& t = e.b->type;
        const Type& f = e.c->type;
        if (t.is_bool() && f.is_bool()) {
            e.type = Type::boolean();
        } else if (t.is_numeric() && f.is_numeric()) {
            e.type = (t.is_int() && f.is_int()) ? Type::integer() : Type::real();
        } else {
            sink.error(e.loc, "`if` branches have incompatible types");
            e.type = t;
        }
        return;
    }
    }
}

/// Checks a resolved default/initial-value expression for assignability.
void check_assignable(const Type& target, const Expr& value, DiagnosticSink& sink,
                      const SourceLoc& loc, std::string_view what) {
    if (!target.accepts(value.type)) {
        sink.error(loc, std::string(what) + ": cannot assign " + value.type.to_string() +
                            " to " + target.to_string());
    }
}

// --- model resolution -----------------------------------------------------------

class Resolver {
public:
    explicit Resolver(ModelFile file) : model_{} { model_.file = std::move(file); }

    ResolvedModel run() {
        index_declarations();
        sink_.throw_if_errors("resolution");
        for (auto& impl : model_.file.component_impls) resolve_impl_pass1(impl);
        for (auto& eimpl : model_.file.error_impls) resolve_error_impl_pass1(eimpl);
        sink_.throw_if_errors("resolution");
        check_recursion();
        sink_.throw_if_errors("resolution");
        for (auto& impl : model_.file.component_impls) resolve_impl_pass2(impl);
        for (auto& eimpl : model_.file.error_impls) resolve_error_impl_pass2(eimpl);
        resolve_root();
        sink_.throw_if_errors("resolution");
        return std::move(model_);
    }

private:
    void index_declarations() {
        for (const auto& t : model_.file.component_types) {
            if (!model_.types.emplace(t.name, &t).second) {
                sink_.error(t.loc, "duplicate component type `" + t.name + "`");
            }
            std::unordered_set<std::string> seen;
            for (const auto& f : t.features) {
                if (!seen.insert(f.name).second) {
                    sink_.error(f.loc, "duplicate feature `" + f.name + "` in `" + t.name + "`");
                }
            }
        }
        for (const auto& t : model_.file.error_types) {
            if (!model_.error_types.emplace(t.name, &t).second) {
                sink_.error(t.loc, "duplicate error model type `" + t.name + "`");
            }
        }
        for (auto& impl : model_.file.component_impls) {
            ResolvedImpl r;
            r.impl = &impl;
            if (!model_.impls.emplace(impl.full_name(), std::move(r)).second) {
                sink_.error(impl.loc, "duplicate implementation `" + impl.full_name() + "`");
            }
        }
        for (auto& eimpl : model_.file.error_impls) {
            ResolvedErrorImpl r;
            r.impl = &eimpl;
            if (!model_.error_impls.emplace(eimpl.full_name(), std::move(r)).second) {
                sink_.error(eimpl.loc,
                            "duplicate error model implementation `" + eimpl.full_name() + "`");
            }
        }
    }

    /// Finds the implementation a subcomponent's `type_name` refers to:
    /// either "Type.Impl" directly or "Type" when the type has exactly one
    /// implementation.
    const std::string* lookup_impl_name(const std::string& type_name, const SourceLoc& loc) {
        if (type_name.find('.') != std::string::npos) {
            const auto it = model_.impls.find(type_name);
            if (it == model_.impls.end()) {
                sink_.error(loc, "unknown implementation `" + type_name + "`");
                return nullptr;
            }
            return &it->first;
        }
        const std::string* found = nullptr;
        for (const auto& [name, r] : model_.impls) {
            if (r.impl->type_name == type_name) {
                if (found != nullptr) {
                    sink_.error(loc, "component type `" + type_name +
                                         "` has multiple implementations; qualify the name");
                    return nullptr;
                }
                found = &name;
            }
        }
        if (found == nullptr) {
            sink_.error(loc, "no implementation found for component type `" + type_name + "`");
        }
        return found;
    }

    // Pass 1: component type link, modes, event ports, subcomponent impls,
    // symbol table construction.
    void resolve_impl_pass1(ComponentImpl& impl) {
        ResolvedImpl& r = model_.impls.at(impl.full_name());
        const auto type_it = model_.types.find(impl.type_name);
        if (type_it == model_.types.end()) {
            sink_.error(impl.loc, "implementation of unknown component type `" +
                                      impl.type_name + "`");
            return;
        }
        r.type = type_it->second;
        if (r.type->category != impl.category) {
            sink_.error(impl.loc, "implementation category `" + to_string(impl.category) +
                                      "` does not match type category `" +
                                      to_string(r.type->category) + "`");
        }

        // Modes.
        for (const auto& m : impl.modes) {
            if (r.mode_index.contains(m.name)) {
                sink_.error(m.loc, "duplicate mode `" + m.name + "`");
                continue;
            }
            r.mode_index.emplace(m.name, static_cast<int>(r.mode_names.size()));
            r.mode_names.push_back(m.name);
            if (m.initial) {
                if (r.initial_mode >= 0) {
                    sink_.error(m.loc, "multiple initial modes in `" + impl.full_name() + "`");
                }
                r.initial_mode = r.mode_index.at(m.name);
            }
        }
        if (!impl.modes.empty() && r.initial_mode < 0) {
            sink_.error(impl.loc, "`" + impl.full_name() + "` declares modes but no initial mode");
        }
        if (impl.modes.empty() && !impl.transitions.empty()) {
            sink_.error(impl.loc,
                        "`" + impl.full_name() + "` has transitions but declares no modes");
        }

        // Symbols: own data ports, own data subcomponents.
        for (const auto& f : r.type->features) {
            if (f.is_event) {
                r.event_ports.emplace(f.name, f.dir);
                continue;
            }
            if (f.data_type.is_timed()) {
                // Data connections are limited to the discrete and real
                // types (paper, Sec. II-D).
                sink_.error(f.loc, "data port `" + f.name +
                                       "` must not be a clock or continuous variable");
            }
            Symbol sym;
            sym.name = f.name;
            sym.kind = f.dir == PortDir::In ? SymKind::InDataPort : SymKind::OutDataPort;
            sym.type = f.data_type;
            sym.default_value = f.default_value;
            sym.port = f.name;
            r.symbols.add(std::move(sym));
        }
        std::unordered_set<std::string> local_names;
        for (const auto& f : r.type->features) local_names.insert(f.name);
        for (const auto& d : impl.data) {
            if (!local_names.insert(d.name).second) {
                sink_.error(d.loc, "duplicate data element `" + d.name + "`");
                continue;
            }
            Symbol sym;
            sym.name = d.name;
            sym.kind = SymKind::Data;
            sym.type = d.type;
            sym.default_value = d.default_value;
            r.symbols.add(std::move(sym));
        }

        // Subcomponents: record impls and expose their data ports as symbols.
        for (const auto& s : impl.subcomponents) {
            if (!local_names.insert(s.name).second) {
                sink_.error(s.loc, "duplicate subcomponent `" + s.name + "`");
                continue;
            }
            const std::string* child_name = lookup_impl_name(s.type_name, s.loc);
            if (child_name == nullptr) continue;
            r.subcomp_impl.emplace(s.name, *child_name);
            const ResolvedImpl& child = model_.impls.at(*child_name);
            const auto child_type_it = model_.types.find(child.impl->type_name);
            if (child_type_it == model_.types.end()) continue; // already diagnosed
            if (child.impl->category != s.category) {
                sink_.error(s.loc, "subcomponent `" + s.name + "` declared as `" +
                                       to_string(s.category) + "` but `" + *child_name +
                                       "` is a `" + to_string(child.impl->category) + "`");
            }
            for (const auto& f : child_type_it->second->features) {
                if (f.is_event) continue;
                Symbol sym;
                sym.name = s.name + "." + f.name;
                sym.kind = f.dir == PortDir::In ? SymKind::SubInDataPort
                                                : SymKind::SubOutDataPort;
                sym.type = f.data_type;
                sym.sub = s.name;
                sym.port = f.name;
                r.symbols.add(std::move(sym));
            }
        }

        // Implicit per-process clock.
        Symbol timer;
        timer.name = "@timer";
        timer.kind = SymKind::Timer;
        timer.type = Type::clock();
        r.symbols.add(std::move(timer));
    }

    void resolve_error_impl_pass1(ErrorModelImpl& eimpl) {
        ResolvedErrorImpl& r = model_.error_impls.at(eimpl.full_name());
        const auto type_it = model_.error_types.find(eimpl.type_name);
        if (type_it == model_.error_types.end()) {
            sink_.error(eimpl.loc,
                        "implementation of unknown error model type `" + eimpl.type_name + "`");
            return;
        }
        r.type = type_it->second;
        for (const auto& s : r.type->states) {
            if (r.state_index.contains(s.name)) {
                sink_.error(s.loc, "duplicate error state `" + s.name + "`");
                continue;
            }
            r.state_index.emplace(s.name, static_cast<int>(r.state_names.size()));
            r.state_names.push_back(s.name);
            if (s.initial) {
                if (r.initial_state >= 0) {
                    sink_.error(s.loc, "multiple initial states in `" + r.type->name + "`");
                }
                r.initial_state = r.state_index.at(s.name);
            }
        }
        if (r.initial_state < 0) {
            sink_.error(r.type->loc, "error model `" + r.type->name + "` has no initial state");
        }
        for (const auto& p : r.type->propagations) {
            if (!r.propagations.emplace(p.name, p.dir).second) {
                sink_.error(p.loc, "duplicate propagation `" + p.name + "`");
            }
        }
        for (const auto& ev : eimpl.events) {
            if (!r.events.emplace(ev.name, &ev).second) {
                sink_.error(ev.loc, "duplicate error event `" + ev.name + "`");
            }
            if (r.propagations.contains(ev.name)) {
                sink_.error(ev.loc, "error event `" + ev.name + "` collides with a propagation");
            }
        }
        std::unordered_set<std::string> names;
        for (const auto& d : eimpl.data) {
            if (!names.insert(d.name).second) {
                sink_.error(d.loc, "duplicate data element `" + d.name + "`");
                continue;
            }
            Symbol sym;
            sym.name = d.name;
            sym.kind = SymKind::Data;
            sym.type = d.type;
            sym.default_value = d.default_value;
            r.symbols.add(std::move(sym));
        }
        Symbol timer;
        timer.name = "@timer";
        timer.kind = SymKind::Timer;
        timer.type = Type::clock();
        r.symbols.add(std::move(timer));
    }

    /// Rejects recursive component containment (a component containing
    /// itself directly or transitively).
    void check_recursion() {
        enum class Mark : std::uint8_t { White, Grey, Black };
        std::unordered_map<std::string, Mark> marks;
        for (const auto& [name, r] : model_.impls) {
            (void)r;
            marks.emplace(name, Mark::White);
        }
        auto dfs = [&](auto&& self, const std::string& name) -> void {
            Mark& m = marks.at(name);
            if (m != Mark::White) return;
            m = Mark::Grey;
            for (const auto& [sub, child] : model_.impls.at(name).subcomp_impl) {
                (void)sub;
                if (marks.at(child) == Mark::Grey) {
                    sink_.error(model_.impls.at(name).impl->loc,
                                "recursive component containment involving `" + child + "`");
                } else {
                    self(self, child);
                }
            }
            m = Mark::Black;
        };
        for (const auto& [name, r] : model_.impls) {
            (void)r;
            dfs(dfs, name);
        }
    }

    // Pass 2: expressions, transitions, connections, flows, trends.
    void resolve_impl_pass2(ComponentImpl& impl) {
        ResolvedImpl& r = model_.impls.at(impl.full_name());
        if (r.type == nullptr) return;
        const SymbolTable& syms = r.symbols;

        // Defaults must be constant and assignable (resolve once per type;
        // defaults are constant, so the resolution is scope-independent).
        if (resolved_types_.insert(r.type).second) {
            for (auto& f : const_cast<ComponentType*>(r.type)->features) {
                if (f.default_value) {
                    resolve_expr_rec(*f.default_value, nullptr, sink_);
                    check_assignable(f.data_type, *f.default_value, sink_, f.loc,
                                     "default of `" + f.name + "`");
                }
            }
        }
        for (auto& d : impl.data) {
            if (d.default_value) {
                resolve_expr_rec(*d.default_value, nullptr, sink_);
                check_assignable(d.type, *d.default_value, sink_, d.loc,
                                 "default of `" + d.name + "`");
            }
        }

        auto check_modes_exist = [&](const std::vector<std::string>& names,
                                     const SourceLoc& loc) {
            for (const auto& m : names) {
                if (!r.mode_index.contains(m)) {
                    sink_.error(loc, "unknown mode `" + m + "`");
                }
            }
        };

        for (auto& m : impl.modes) {
            if (m.invariant) {
                resolve_expr_rec(*m.invariant, &syms, sink_);
                if (!m.invariant->type.is_bool()) {
                    sink_.error(m.loc, "mode invariant must be Boolean");
                }
            }
        }

        for (auto& s : impl.subcomponents) check_modes_exist(s.in_modes, s.loc);

        for (auto& t : impl.transitions) resolve_transition(t, r);

        for (auto& c : impl.connections) resolve_connection(c, r);

        for (auto& f : impl.flows) {
            resolve_expr_rec(*f.value, &syms, sink_);
            const Symbol* target = syms.find(f.target.to_string());
            if (target == nullptr) {
                sink_.error(f.loc, "unknown flow target `" + f.target.to_string() + "`");
            } else if (target->kind != SymKind::OutDataPort &&
                       target->kind != SymKind::SubInDataPort) {
                sink_.error(f.loc, "flow target `" + f.target.to_string() +
                                       "` must be an own out data port or a subcomponent "
                                       "in data port");
            } else {
                check_assignable(target->type, *f.value, sink_, f.loc, "flow");
                if (target->type.is_timed()) {
                    sink_.error(f.loc, "flow target must not be a clock or continuous variable");
                }
            }
            check_modes_exist(f.in_modes, f.loc);
        }

        for (auto& tr : impl.trends) {
            const Symbol* var = syms.find(tr.var);
            if (var == nullptr || var->kind != SymKind::Data ||
                var->type.kind != TypeKind::Continuous) {
                sink_.error(tr.loc, "trend target `" + tr.var +
                                        "` must be an own continuous data element");
            }
            resolve_expr_rec(*tr.rate, nullptr, sink_); // must be constant
            if (!tr.rate->type.is_numeric()) {
                sink_.error(tr.loc, "trend rate must be numeric");
            }
            check_modes_exist(tr.modes, tr.loc);
        }
    }

    void resolve_transition(TransitionDecl& t, ResolvedImpl& r) {
        if (!r.mode_index.contains(t.src)) {
            sink_.error(t.loc, "unknown source mode `" + t.src + "`");
        }
        if (!r.mode_index.contains(t.dst)) {
            sink_.error(t.loc, "unknown target mode `" + t.dst + "`");
        }
        if (t.trigger.kind == TriggerKind::Port) {
            if (!t.trigger.port.component.empty() ||
                !r.event_ports.contains(t.trigger.port.port)) {
                sink_.error(t.trigger.loc, "transition trigger `" + t.trigger.port.to_string() +
                                               "` is not an event port of this component");
            }
        }
        if (t.guard) {
            resolve_expr_rec(*t.guard, &r.symbols, sink_);
            if (!t.guard->type.is_bool()) {
                sink_.error(t.loc, "transition guard must be Boolean");
            }
        }
        for (auto& eff : t.effects) {
            resolve_expr_rec(*eff.value, &r.symbols, sink_);
            const Symbol* target = r.symbols.find(eff.target.to_string());
            if (target == nullptr) {
                sink_.error(eff.loc, "unknown effect target `" + eff.target.to_string() + "`");
                continue;
            }
            if (target->kind != SymKind::Data && target->kind != SymKind::OutDataPort) {
                sink_.error(eff.loc, "effect target `" + eff.target.to_string() +
                                         "` must be an own data element or out data port");
                continue;
            }
            check_assignable(target->type, *eff.value, sink_, eff.loc, "effect");
        }
    }

    /// Validates a connection's endpoints and directionality. Legal shapes:
    ///   sub.out -> sub.in | sub.out -> own out | own in -> sub.in
    ///   | own in -> own out.
    void resolve_connection(ConnectionDecl& c, ResolvedImpl& r) {
        const auto port_info = [&](const PortRef& ref, bool& is_event, PortDir& dir,
                                   Type& type) -> bool {
            if (ref.component.empty()) {
                if (const auto it = r.event_ports.find(ref.port); it != r.event_ports.end()) {
                    is_event = true;
                    dir = it->second;
                    return true;
                }
                const Symbol* s = r.symbols.find(ref.port);
                if (s != nullptr &&
                    (s->kind == SymKind::InDataPort || s->kind == SymKind::OutDataPort)) {
                    is_event = false;
                    dir = s->kind == SymKind::InDataPort ? PortDir::In : PortDir::Out;
                    type = s->type;
                    return true;
                }
                sink_.error(ref.loc, "unknown port `" + ref.to_string() + "`");
                return false;
            }
            const auto sub_it = r.subcomp_impl.find(ref.component);
            if (sub_it == r.subcomp_impl.end()) {
                sink_.error(ref.loc, "unknown subcomponent `" + ref.component + "`");
                return false;
            }
            const ResolvedImpl& child = model_.impls.at(sub_it->second);
            if (const auto it = child.event_ports.find(ref.port);
                it != child.event_ports.end()) {
                is_event = true;
                dir = it->second;
                return true;
            }
            const Symbol* s = child.symbols.find(ref.port);
            if (s != nullptr &&
                (s->kind == SymKind::InDataPort || s->kind == SymKind::OutDataPort)) {
                is_event = false;
                dir = s->kind == SymKind::InDataPort ? PortDir::In : PortDir::Out;
                type = s->type;
                return true;
            }
            sink_.error(ref.loc, "`" + ref.component + "` has no port `" + ref.port + "`");
            return false;
        };

        bool src_event = false, dst_event = false;
        PortDir src_dir = PortDir::Out, dst_dir = PortDir::In;
        Type src_type, dst_type;
        const bool src_ok = port_info(c.src, src_event, src_dir, src_type);
        const bool dst_ok = port_info(c.dst, dst_event, dst_dir, dst_type);
        if (!src_ok || !dst_ok) return;
        if (src_event != c.is_event || dst_event != c.is_event) {
            sink_.error(c.loc, "connection kind does not match the ports");
            return;
        }
        // Effective role: a port is a valid source if it produces data at this
        // level (sub.out or own in), and a valid destination if it consumes
        // data at this level (sub.in or own out).
        const bool src_produces = c.src.component.empty() ? src_dir == PortDir::In
                                                          : src_dir == PortDir::Out;
        const bool dst_consumes = c.dst.component.empty() ? dst_dir == PortDir::Out
                                                          : dst_dir == PortDir::In;
        if (!src_produces) {
            sink_.error(c.loc, "`" + c.src.to_string() + "` cannot be a connection source here");
        }
        if (!dst_consumes) {
            sink_.error(c.loc,
                        "`" + c.dst.to_string() + "` cannot be a connection destination here");
        }
        if (!c.is_event && !dst_type.accepts(src_type)) {
            sink_.error(c.loc, "data connection type mismatch: " + src_type.to_string() +
                                   " -> " + dst_type.to_string());
        }
        for (const auto& m : c.in_modes) {
            if (!r.mode_index.contains(m)) sink_.error(c.loc, "unknown mode `" + m + "`");
        }
    }

    void resolve_error_impl_pass2(ErrorModelImpl& eimpl) {
        ResolvedErrorImpl& r = model_.error_impls.at(eimpl.full_name());
        if (r.type == nullptr) return;
        for (auto& d : eimpl.data) {
            if (d.default_value) {
                resolve_expr_rec(*d.default_value, nullptr, sink_);
                check_assignable(d.type, *d.default_value, sink_, d.loc,
                                 "default of `" + d.name + "`");
            }
        }
        // State invariants are declared on the type but may reference
        // implementation data; resolve a private clone per implementation.
        r.state_invariants.assign(r.state_names.size(), nullptr);
        for (const auto& s : r.type->states) {
            if (!s.invariant) continue;
            const auto idx_it = r.state_index.find(s.name);
            if (idx_it == r.state_index.end()) continue;
            expr::ExprPtr inv = expr::clone(*s.invariant);
            resolve_expr_rec(*inv, &r.symbols, sink_);
            if (!inv->type.is_bool()) {
                sink_.error(s.loc, "error state invariant must be Boolean");
            }
            r.state_invariants[static_cast<std::size_t>(idx_it->second)] = std::move(inv);
        }
        for (auto& t : eimpl.transitions) {
            if (!r.state_index.contains(t.src)) {
                sink_.error(t.loc, "unknown source state `" + t.src + "`");
            }
            if (!r.state_index.contains(t.dst)) {
                sink_.error(t.loc, "unknown target state `" + t.dst + "`");
            }
            if (t.trigger.kind == TriggerKind::Port) {
                const std::string& name = t.trigger.port.port;
                if (!t.trigger.port.component.empty() ||
                    (!r.events.contains(name) && !r.propagations.contains(name))) {
                    sink_.error(t.trigger.loc, "trigger `" + t.trigger.port.to_string() +
                                                   "` is neither an error event nor a "
                                                   "propagation of this error model");
                } else if (const auto ev = r.events.find(name);
                           ev != r.events.end() && ev->second->rate && t.guard) {
                    sink_.error(t.loc, "transition on Poisson event `" + name +
                                           "` must not carry a guard");
                }
            }
            if (t.guard) {
                resolve_expr_rec(*t.guard, &r.symbols, sink_);
                if (!t.guard->type.is_bool()) {
                    sink_.error(t.loc, "transition guard must be Boolean");
                }
            }
            for (auto& eff : t.effects) {
                resolve_expr_rec(*eff.value, &r.symbols, sink_);
                const Symbol* target = r.symbols.find(eff.target.to_string());
                if (target == nullptr || target->kind != SymKind::Data) {
                    sink_.error(eff.loc, "effect target `" + eff.target.to_string() +
                                             "` must be a data element of the error model");
                    continue;
                }
                check_assignable(target->type, *eff.value, sink_, eff.loc, "effect");
            }
        }
        for (auto& tr : eimpl.trends) {
            const Symbol* var = r.symbols.find(tr.var);
            if (var == nullptr || var->kind != SymKind::Data ||
                var->type.kind != TypeKind::Continuous) {
                sink_.error(tr.loc, "trend target `" + tr.var +
                                        "` must be an own continuous data element");
            }
            resolve_expr_rec(*tr.rate, nullptr, sink_);
            for (const auto& m : tr.modes) {
                if (!r.state_index.contains(m)) {
                    sink_.error(tr.loc, "unknown error state `" + m + "`");
                }
            }
        }
    }

    void resolve_root() {
        if (!model_.file.root.empty()) {
            if (!model_.impls.contains(model_.file.root)) {
                sink_.error({}, "root implementation `" + model_.file.root + "` not found");
                return;
            }
            model_.root_impl = model_.file.root;
            return;
        }
        // No explicit root: pick the unique implementation that is not used
        // as a subcomponent anywhere.
        std::unordered_set<std::string> used;
        for (const auto& [name, r] : model_.impls) {
            (void)name;
            for (const auto& [sub, child] : r.subcomp_impl) {
                (void)sub;
                used.insert(child);
            }
        }
        std::vector<std::string> candidates;
        for (const auto& [name, r] : model_.impls) {
            (void)r;
            if (!used.contains(name)) candidates.push_back(name);
        }
        if (candidates.size() == 1) {
            model_.root_impl = candidates.front();
            return;
        }
        if (candidates.empty()) {
            sink_.error({}, "cannot determine a root component; add a `root Type.Impl;` "
                            "declaration");
        } else {
            std::sort(candidates.begin(), candidates.end());
            std::string list;
            for (const auto& c : candidates) list += " " + c;
            sink_.error({}, "multiple root candidates:" + list +
                                "; add a `root Type.Impl;` declaration");
        }
    }

    ResolvedModel model_;
    DiagnosticSink sink_;
    std::unordered_set<const ComponentType*> resolved_types_;
};

} // namespace

const ResolvedImpl& ResolvedModel::impl_of(const std::string& full_name) const {
    const auto it = impls.find(full_name);
    if (it == impls.end()) throw Error("unknown implementation `" + full_name + "`");
    return it->second;
}

const ResolvedErrorImpl& ResolvedModel::error_impl_of(const std::string& full_name) const {
    const auto it = error_impls.find(full_name);
    if (it == error_impls.end()) {
        throw Error("unknown error model implementation `" + full_name + "`");
    }
    return it->second;
}

ResolvedModel resolve(ModelFile file) { return Resolver(std::move(file)).run(); }

void resolve_expr(expr::Expr& e, const SymbolTable& symbols, DiagnosticSink& sink) {
    resolve_expr_rec(e, &symbols, sink);
}

void resolve_const_expr(expr::Expr& e, DiagnosticSink& sink) {
    resolve_expr_rec(e, nullptr, sink);
}

} // namespace slimsim::slim
