#include "slim/printer.hpp"

#include <iomanip>
#include <sstream>

namespace slimsim::slim {

namespace {

void print_modes_clause(std::ostringstream& os, const std::vector<std::string>& modes) {
    if (modes.empty()) return;
    os << " in modes (";
    for (std::size_t i = 0; i < modes.size(); ++i) {
        if (i > 0) os << ", ";
        os << modes[i];
    }
    os << ')';
}

void print_data_type(std::ostringstream& os, const Type& t) {
    switch (t.kind) {
    case TypeKind::Bool: os << "bool"; break;
    case TypeKind::Int:
        os << "int";
        if (t.lo && t.hi) os << " [" << *t.lo << ".." << *t.hi << ']';
        break;
    case TypeKind::Real: os << "real"; break;
    case TypeKind::Clock: os << "clock"; break;
    case TypeKind::Continuous: os << "continuous"; break;
    }
}

void print_transition(std::ostringstream& os, const TransitionDecl& t) {
    os << "  " << t.src << " -[";
    switch (t.trigger.kind) {
    case TriggerKind::Internal: break;
    case TriggerKind::Port: os << t.trigger.port.to_string(); break;
    case TriggerKind::Activation: os << "@activation"; break;
    case TriggerKind::Deactivation: os << "@deactivation"; break;
    }
    if (t.guard != nullptr) {
        if (t.trigger.kind != TriggerKind::Internal) os << ' ';
        os << "when " << t.guard->to_string();
    }
    if (!t.effects.empty()) {
        if (t.trigger.kind != TriggerKind::Internal || t.guard != nullptr) os << ' ';
        os << "then ";
        for (std::size_t i = 0; i < t.effects.size(); ++i) {
            if (i > 0) os << "; ";
            os << t.effects[i].target.to_string() << " := "
               << t.effects[i].value->to_string();
        }
    }
    os << "]-> " << t.dst << ";\n";
}

void print_data_decl(std::ostringstream& os, const DataDecl& d) {
    os << "  " << d.name << ": data ";
    print_data_type(os, d.type);
    if (d.default_value != nullptr) os << " default " << d.default_value->to_string();
    os << ";\n";
}

void print_trend(std::ostringstream& os, const TrendDecl& t) {
    os << "  " << t.var << "' = " << t.rate->to_string();
    if (!t.modes.empty()) {
        os << " in ";
        for (std::size_t i = 0; i < t.modes.size(); ++i) {
            if (i > 0) os << ", ";
            os << t.modes[i];
        }
    }
    os << ";\n";
}

std::string path_or_root(const std::vector<std::string>& path) {
    if (path.empty()) return "root";
    std::string out;
    for (const auto& p : path) {
        if (!out.empty()) out += '.';
        out += p;
    }
    return out;
}

} // namespace

std::string print_component_type(const ComponentType& t) {
    std::ostringstream os;
    os << to_string(t.category) << ' ' << t.name << '\n';
    if (!t.features.empty()) {
        os << "features\n";
        for (const auto& f : t.features) {
            os << "  " << f.name << ": " << (f.dir == PortDir::In ? "in" : "out") << ' ';
            if (f.is_event) {
                os << "event port";
            } else {
                os << "data port ";
                print_data_type(os, f.data_type);
                if (f.default_value != nullptr) {
                    os << " default " << f.default_value->to_string();
                }
            }
            os << ";\n";
        }
    }
    os << "end " << t.name << ";\n";
    return os.str();
}

std::string print_component_impl(const ComponentImpl& impl) {
    std::ostringstream os;
    os << to_string(impl.category) << " implementation " << impl.full_name() << '\n';
    if (!impl.data.empty() || !impl.subcomponents.empty()) {
        os << "subcomponents\n";
        for (const auto& d : impl.data) print_data_decl(os, d);
        for (const auto& s : impl.subcomponents) {
            os << "  " << s.name << ": " << to_string(s.category) << ' ' << s.type_name;
            print_modes_clause(os, s.in_modes);
            os << ";\n";
        }
    }
    if (!impl.connections.empty()) {
        os << "connections\n";
        for (const auto& c : impl.connections) {
            os << "  " << (c.is_event ? "event" : "data") << " port "
               << c.src.to_string() << " -> " << c.dst.to_string();
            print_modes_clause(os, c.in_modes);
            os << ";\n";
        }
    }
    if (!impl.flows.empty()) {
        os << "flows\n";
        for (const auto& f : impl.flows) {
            os << "  " << f.target.to_string() << " := " << f.value->to_string();
            print_modes_clause(os, f.in_modes);
            os << ";\n";
        }
    }
    if (!impl.modes.empty()) {
        os << "modes\n";
        for (const auto& m : impl.modes) {
            os << "  " << m.name << ": " << (m.initial ? "initial " : "") << "mode";
            if (m.invariant != nullptr) os << " while " << m.invariant->to_string();
            os << ";\n";
        }
    }
    if (!impl.transitions.empty()) {
        os << "transitions\n";
        for (const auto& t : impl.transitions) print_transition(os, t);
    }
    if (!impl.trends.empty()) {
        os << "trends\n";
        for (const auto& t : impl.trends) print_trend(os, t);
    }
    os << "end " << impl.full_name() << ";\n";
    return os.str();
}

std::string print_error_type(const ErrorModelType& t) {
    std::ostringstream os;
    os << "error model " << t.name << '\n';
    os << "features\n";
    for (const auto& s : t.states) {
        os << "  " << s.name << ": " << (s.initial ? "initial " : "") << "state";
        if (s.invariant != nullptr) os << " while " << s.invariant->to_string();
        os << ";\n";
    }
    for (const auto& p : t.propagations) {
        os << "  " << p.name << ": " << (p.dir == PortDir::In ? "in" : "out")
           << " propagation;\n";
    }
    os << "end " << t.name << ";\n";
    return os.str();
}

std::string print_error_impl(const ErrorModelImpl& impl) {
    std::ostringstream os;
    os << "error model implementation " << impl.full_name() << '\n';
    if (!impl.events.empty()) {
        os << "events\n";
        for (const auto& e : impl.events) {
            os << "  " << e.name << ": error event";
            if (e.rate) {
                os << " occurrence poisson " << std::setprecision(17) << *e.rate
                   << " per sec";
            }
            os << ";\n";
        }
    }
    if (!impl.data.empty()) {
        os << "subcomponents\n";
        for (const auto& d : impl.data) print_data_decl(os, d);
    }
    if (!impl.transitions.empty()) {
        os << "transitions\n";
        for (const auto& t : impl.transitions) print_transition(os, t);
    }
    if (!impl.trends.empty()) {
        os << "trends\n";
        for (const auto& t : impl.trends) print_trend(os, t);
    }
    os << "end " << impl.full_name() << ";\n";
    return os.str();
}

std::string print_model(const ModelFile& file) {
    std::ostringstream os;
    if (!file.root.empty()) os << "root " << file.root << ";\n\n";
    for (const auto& t : file.component_types) os << print_component_type(t) << '\n';
    for (const auto& i : file.component_impls) os << print_component_impl(i) << '\n';
    for (const auto& t : file.error_types) os << print_error_type(t) << '\n';
    for (const auto& i : file.error_impls) os << print_error_impl(i) << '\n';
    if (!file.error_bindings.empty() || !file.injections.empty()) {
        os << "fault injections\n";
        for (const auto& b : file.error_bindings) {
            os << "  component " << path_or_root(b.component_path)
               << " uses error model " << b.error_impl << ";\n";
        }
        for (const auto& inj : file.injections) {
            os << "  component " << path_or_root(inj.component_path) << " in state "
               << inj.state << " effect " << inj.target_var << " := "
               << inj.value->to_string() << ";\n";
        }
        os << "end fault injections;\n";
    }
    return os.str();
}

} // namespace slimsim::slim
