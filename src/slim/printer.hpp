// Pretty-printer for SLIM declaration ASTs.
//
// Produces concrete syntax in the dialect the parser accepts, such that
// parse(print(parse(src))) is equivalent to parse(src) — verified by the
// round-trip test suite. Useful for emitting programmatically-built models
// and for normalizing model files.
#pragma once

#include <string>

#include "slim/ast.hpp"

namespace slimsim::slim {

/// Prints a complete model file.
[[nodiscard]] std::string print_model(const ModelFile& file);

/// Individual declaration printers (used by print_model; exposed for tools).
[[nodiscard]] std::string print_component_type(const ComponentType& t);
[[nodiscard]] std::string print_component_impl(const ComponentImpl& impl);
[[nodiscard]] std::string print_error_type(const ErrorModelType& t);
[[nodiscard]] std::string print_error_impl(const ErrorModelImpl& impl);

} // namespace slimsim::slim
