#include "slim/lexer.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace slimsim::slim {

namespace {

class Lexer {
public:
    Lexer(std::string_view source, std::string filename)
        : src_(source), filename_(std::move(filename)) {}

    std::vector<Token> run() {
        std::vector<Token> tokens;
        for (;;) {
            skip_trivia();
            Token t = next_token();
            const bool done = t.kind == TokenKind::EndOfFile;
            tokens.push_back(std::move(t));
            if (done) return tokens;
        }
    }

private:
    [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
    [[nodiscard]] char peek(std::size_t ahead = 0) const {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }

    char advance() {
        const char c = src_[pos_++];
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    [[nodiscard]] SourceLoc here() const { return {filename_, line_, column_}; }

    void skip_trivia() {
        for (;;) {
            while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
            if (peek() == '-' && peek(1) == '-') {
                while (!at_end() && peek() != '\n') advance();
                continue;
            }
            return;
        }
    }

    Token next_token() {
        const SourceLoc loc = here();
        if (at_end()) return make(TokenKind::EndOfFile, loc);
        const char c = peek();
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return lex_ident(loc);
        if (std::isdigit(static_cast<unsigned char>(c))) return lex_number(loc);
        return lex_punct(loc);
    }

    Token make(TokenKind k, SourceLoc loc) const {
        Token t;
        t.kind = k;
        t.loc = loc;
        return t;
    }

    Token lex_ident(SourceLoc loc) {
        const std::size_t start = pos_;
        while (!at_end()) {
            const char c = peek();
            if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
                advance();
            } else {
                break;
            }
        }
        Token t = make(TokenKind::Ident, std::move(loc));
        t.text = std::string(src_.substr(start, pos_ - start));
        t.folded = t.text;
        for (char& ch : t.folded) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
        return t;
    }

    Token lex_number(SourceLoc loc) {
        const std::size_t start = pos_;
        while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
        bool is_real = false;
        // A '.' starts a fraction only if followed by a digit ('..' is a range).
        if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
            is_real = true;
            advance();
            while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
        }
        if (peek() == 'e' || peek() == 'E') {
            const std::size_t mark = pos_;
            advance();
            if (peek() == '+' || peek() == '-') advance();
            if (std::isdigit(static_cast<unsigned char>(peek()))) {
                is_real = true;
                while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
            } else {
                // Not an exponent after all (e.g. `2 end`): back out.
                pos_ = mark;
            }
        }
        const std::string text(src_.substr(start, pos_ - start));
        if (is_real) {
            Token t = make(TokenKind::Real, std::move(loc));
            t.real_value = std::strtod(text.c_str(), nullptr);
            t.text = text;
            return t;
        }
        Token t = make(TokenKind::Integer, std::move(loc));
        auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), t.int_value);
        if (ec != std::errc()) throw Error(t.loc, "integer literal out of range: " + text);
        t.text = text;
        return t;
    }

    Token lex_punct(SourceLoc loc) {
        const char c = advance();
        switch (c) {
        case '(': return make(TokenKind::LParen, loc);
        case ')': return make(TokenKind::RParen, loc);
        case '[': return make(TokenKind::LBracket, loc);
        case ',': return make(TokenKind::Comma, loc);
        case ';': return make(TokenKind::Semicolon, loc);
        case '\'': return make(TokenKind::Prime, loc);
        case '@': return make(TokenKind::At, loc);
        case '+': return make(TokenKind::Plus, loc);
        case '*': return make(TokenKind::Star, loc);
        case '/': return make(TokenKind::Slash, loc);
        case ':':
            if (peek() == '=') {
                advance();
                return make(TokenKind::Assign, loc);
            }
            return make(TokenKind::Colon, loc);
        case '.':
            if (peek() == '.') {
                advance();
                return make(TokenKind::DotDot, loc);
            }
            return make(TokenKind::Dot, loc);
        case '-':
            if (peek() == '[') {
                advance();
                return make(TokenKind::TransBegin, loc);
            }
            if (peek() == '>') {
                advance();
                return make(TokenKind::Arrow, loc);
            }
            return make(TokenKind::Minus, loc);
        case ']':
            if (peek() == '-' && peek(1) == '>') {
                advance();
                advance();
                return make(TokenKind::TransEnd, loc);
            }
            return make(TokenKind::RBracket, loc);
        case '<':
            if (peek() == '=') {
                advance();
                return make(TokenKind::Le, loc);
            }
            return make(TokenKind::Lt, loc);
        case '>':
            if (peek() == '=') {
                advance();
                return make(TokenKind::Ge, loc);
            }
            return make(TokenKind::Gt, loc);
        case '=':
            if (peek() == '>') {
                advance();
                return make(TokenKind::FatArrow, loc);
            }
            return make(TokenKind::EqEq, loc);
        case '!':
            if (peek() == '=') {
                advance();
                return make(TokenKind::Neq, loc);
            }
            throw Error(loc, "unexpected character `!` (use `!=` or `not`)");
        default:
            throw Error(loc, std::string("unexpected character `") + c + "`");
        }
    }

    std::string_view src_;
    std::string filename_;
    std::size_t pos_ = 0;
    std::uint32_t line_ = 1;
    std::uint32_t column_ = 1;
};

} // namespace

std::vector<Token> tokenize(std::string_view source, std::string filename) {
    return Lexer(source, std::move(filename)).run();
}

} // namespace slimsim::slim
