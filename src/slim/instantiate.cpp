#include "slim/instantiate.hpp"

#include <algorithm>
#include <numeric>

#include "expr/eval.hpp"
#include "slim/extension.hpp"

namespace slimsim::slim {

namespace {

Value const_eval(const expr::Expr& e) {
    return expr::evaluate(e, expr::EvalContext{{}, {}});
}

void check_range(const Type& t, const Value& v, const std::string& name,
                 const SourceLoc& loc) {
    if (!t.is_int() || !t.lo) return;
    const std::int64_t i = v.as_int();
    if (i < *t.lo || i > *t.hi) {
        throw Error(loc, "initial value " + v.to_string() + " of `" + name +
                             "` is outside its range " + t.to_string());
    }
}

/// Union-find over event-port instances.
class UnionFind {
public:
    int make() {
        parent_.push_back(static_cast<int>(parent_.size()));
        return parent_.back();
    }
    int find(int x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }
    void unite(int a, int b) { parent_[find(a)] = find(b); }

private:
    std::vector<int> parent_;
};

class Instantiator {
public:
    explicit Instantiator(std::shared_ptr<const ResolvedModel> model) {
        m_.resolved = std::move(model);
    }

    InstanceModel run() {
        build_instance(m_.resolved->root_impl, "", -1, {});
        assign_process_ids();
        build_bindings();
        build_sync_groups();
        for (std::size_t i = 0; i < m_.instances.size(); ++i) {
            build_process(static_cast<InstanceId>(i));
        }
        build_flows();
        extend_model(m_, *m_.resolved);
        for (std::size_t v = 0; v < m_.vars.size(); ++v) {
            m_.var_by_name.emplace(m_.vars[v].full_name, static_cast<VarId>(v));
        }
        return std::move(m_);
    }

private:
    [[nodiscard]] static std::string joined(const std::string& path,
                                            const std::string& name) {
        return path.empty() ? name : path + "." + name;
    }

    InstanceId build_instance(const std::string& impl_name, const std::string& path,
                              InstanceId parent, std::vector<int> parent_modes) {
        const ResolvedImpl& impl = m_.resolved->impl_of(impl_name);
        const auto id = static_cast<InstanceId>(m_.instances.size());
        m_.instances.push_back({});
        {
            Instance& inst = m_.instances.back();
            inst.path = path;
            inst.parent = parent;
            inst.impl = &impl;
            inst.parent_modes = std::move(parent_modes);
        }
        m_.instance_by_path.emplace(path, id);

        // Allocate global variables for the instance's own data elements.
        for (const Symbol& sym : impl.symbols.all()) {
            if (sym.kind == SymKind::SubInDataPort || sym.kind == SymKind::SubOutDataPort) {
                continue;
            }
            GlobalVar var;
            var.full_name = joined(path, sym.name);
            var.type = sym.type;
            var.owner = id;
            var.init = sym.default_value
                           ? const_eval(*sym.default_value).coerce_to(sym.type)
                           : Value::default_for(sym.type);
            check_range(var.type, var.init, var.full_name, {});
            m_.instances[id].own_vars.emplace(sym.name,
                                              static_cast<VarId>(m_.vars.size()));
            m_.vars.push_back(std::move(var));
        }

        // Recurse into subcomponents.
        for (const SubcompDecl& s : impl.impl->subcomponents) {
            const auto child_it = impl.subcomp_impl.find(s.name);
            if (child_it == impl.subcomp_impl.end()) continue; // diagnosed earlier
            std::vector<int> modes;
            modes.reserve(s.in_modes.size());
            for (const auto& mn : s.in_modes) modes.push_back(impl.mode_index.at(mn));
            std::sort(modes.begin(), modes.end());
            const InstanceId child =
                build_instance(child_it->second, joined(path, s.name), id, std::move(modes));
            m_.instances[id].children.push_back(child);
        }
        return id;
    }

    void assign_process_ids() {
        ProcessId next = 0;
        for (auto& inst : m_.instances) {
            if (inst.impl->has_behavior()) inst.process = next++;
        }
    }

    void build_bindings() {
        bindings_.resize(m_.instances.size());
        for (std::size_t i = 0; i < m_.instances.size(); ++i) {
            const Instance& inst = m_.instances[i];
            auto table = std::make_shared<std::vector<VarId>>();
            table->reserve(inst.impl->symbols.size());
            for (const Symbol& sym : inst.impl->symbols.all()) {
                if (sym.kind == SymKind::SubInDataPort ||
                    sym.kind == SymKind::SubOutDataPort) {
                    const InstanceId child = m_.instance(joined(inst.path, sym.sub));
                    table->push_back(m_.instances[child].own_vars.at(sym.port));
                } else {
                    table->push_back(inst.own_vars.at(sym.name));
                }
            }
            bindings_[i] = std::move(table);
        }
    }

    /// Computes event synchronization groups from event-port connections.
    void build_sync_groups() {
        UnionFind uf;
        std::unordered_map<std::string, int> port_node; // "inst:port" -> node
        auto node_of = [&](InstanceId inst, const std::string& port) {
            const std::string key = std::to_string(inst) + ":" + port;
            const auto it = port_node.find(key);
            if (it != port_node.end()) return it->second;
            const int n = uf.make();
            port_node.emplace(key, n);
            return n;
        };

        for (std::size_t i = 0; i < m_.instances.size(); ++i) {
            const Instance& inst = m_.instances[i];
            for (const ConnectionDecl& c : inst.impl->impl->connections) {
                if (!c.is_event) continue;
                if (!c.in_modes.empty()) {
                    throw Error(c.loc,
                                "mode-dependent event connections are not supported");
                }
                const auto endpoint = [&](const PortRef& ref) {
                    if (ref.component.empty()) {
                        return node_of(static_cast<InstanceId>(i), ref.port);
                    }
                    return node_of(m_.instance(joined(inst.path, ref.component)), ref.port);
                };
                uf.unite(endpoint(c.src), endpoint(c.dst));
            }
        }

        // Which ports are actually used by transitions (and with which role)?
        struct Use {
            InstanceId inst;
            std::string port;
        };
        std::vector<Use> uses;
        for (std::size_t i = 0; i < m_.instances.size(); ++i) {
            const Instance& inst = m_.instances[i];
            for (const TransitionDecl& t : inst.impl->impl->transitions) {
                if (t.trigger.kind == TriggerKind::Port) {
                    uses.push_back({static_cast<InstanceId>(i), t.trigger.port.port});
                }
            }
        }

        // One action per connection group containing a used port.
        std::unordered_map<int, ActionId> action_of_root;
        for (const Use& u : uses) {
            const int root = uf.find(node_of(u.inst, u.port));
            auto [it, inserted] =
                action_of_root.emplace(root, static_cast<ActionId>(m_.actions.size()));
            if (inserted) {
                ActionDef def;
                def.name = joined(m_.instances[u.inst].path, u.port);
                m_.actions.push_back(std::move(def));
            }
            action_of_port_.emplace(std::to_string(u.inst) + ":" + u.port, it->second);
            // Register the process as a participant.
            const ProcessId pid = m_.instances[u.inst].process;
            SLIMSIM_ASSERT(pid >= 0);
            auto& parts = m_.actions[it->second].participants;
            if (std::find(parts.begin(), parts.end(), pid) == parts.end()) {
                parts.push_back(pid);
            }
        }
        for (auto& a : m_.actions) std::sort(a.participants.begin(), a.participants.end());
    }

    /// Computes per-mode derivative tables for an implementation's timed
    /// variables. Returns rates[mode] = {(var, slope)...}.
    std::vector<std::vector<std::pair<VarId, double>>>
    build_rate_tables(const Instance& inst, std::size_t mode_count,
                      const std::unordered_map<std::string, int>& mode_index,
                      const std::vector<DataDecl>& data,
                      const std::vector<TrendDecl>& trends, VarId timer) {
        std::vector<std::vector<std::pair<VarId, double>>> rates(mode_count);
        // Clocks tick at slope 1 everywhere; continuous variables default to 0.
        std::vector<std::pair<VarId, std::vector<double>>> continuous;
        for (const DataDecl& d : data) {
            const VarId v = inst.own_vars.at(d.name);
            if (d.type.kind == TypeKind::Clock) {
                for (auto& r : rates) r.emplace_back(v, 1.0);
            } else if (d.type.kind == TypeKind::Continuous) {
                continuous.emplace_back(v, std::vector<double>(mode_count, 0.0));
            }
        }
        for (const TrendDecl& t : trends) {
            const VarId v = inst.own_vars.at(t.var);
            const double slope = const_eval(*t.rate).as_real();
            auto it = std::find_if(continuous.begin(), continuous.end(),
                                   [v](const auto& c) { return c.first == v; });
            SLIMSIM_ASSERT(it != continuous.end());
            if (t.modes.empty()) {
                for (double& s : it->second) s = slope;
            } else {
                for (const auto& mn : t.modes) {
                    it->second[static_cast<std::size_t>(mode_index.at(mn))] = slope;
                }
            }
        }
        for (const auto& [v, slopes] : continuous) {
            for (std::size_t mode = 0; mode < mode_count; ++mode) {
                if (slopes[mode] != 0.0) rates[mode].emplace_back(v, slopes[mode]);
            }
        }
        for (auto& r : rates) r.emplace_back(timer, 1.0);
        return rates;
    }

    void build_process(InstanceId i) {
        const Instance& inst = m_.instances[i];
        const ResolvedImpl& impl = *inst.impl;
        if (!impl.has_behavior()) return;

        InstProcess p;
        p.name = inst.path.empty() ? "<root>" : inst.path;
        p.instance = i;
        p.bindings = bindings_[i];
        p.timer = inst.own_vars.at("@timer");
        p.initial_location = impl.initial_mode;

        auto rate_tables =
            build_rate_tables(inst, impl.mode_names.size(), impl.mode_index,
                              impl.impl->data, impl.impl->trends, p.timer);
        for (std::size_t mode = 0; mode < impl.mode_names.size(); ++mode) {
            InstLocation loc;
            loc.name = impl.mode_names[mode];
            loc.invariant = impl.impl->modes[mode].invariant;
            loc.rates = std::move(rate_tables[mode]);
            p.locations.push_back(std::move(loc));
        }

        for (const TransitionDecl& t : impl.impl->transitions) {
            InstTransition tr;
            tr.src = impl.mode_index.at(t.src);
            tr.dst = impl.mode_index.at(t.dst);
            tr.loc = t.loc;
            tr.guard = t.guard;
            switch (t.trigger.kind) {
            case TriggerKind::Internal:
                break;
            case TriggerKind::Port: {
                tr.action = action_of_port_.at(std::to_string(i) + ":" + t.trigger.port.port);
                tr.role = impl.event_ports.at(t.trigger.port.port);
                tr.label = t.trigger.port.port;
                break;
            }
            case TriggerKind::Activation:
                tr.trigger = TriggerClass::OnActivate;
                tr.label = "@activation";
                break;
            case TriggerKind::Deactivation:
                tr.trigger = TriggerClass::OnDeactivate;
                tr.label = "@deactivation";
                break;
            }
            for (const AssignDecl& a : t.effects) {
                InstAssign ia;
                ia.target = *impl.symbols.slot_of(a.target.to_string());
                ia.value = a.value;
                tr.effects.push_back(std::move(ia));
            }
            p.transitions.push_back(std::move(tr));
        }

        SLIMSIM_ASSERT(static_cast<ProcessId>(m_.processes.size()) == inst.process);
        m_.processes.push_back(std::move(p));
    }

    /// Collects the global variables read by a bound expression.
    static void collect_reads(const expr::Expr& e, const std::vector<VarId>& bindings,
                              std::vector<VarId>& out) {
        if (e.kind == expr::ExprKind::Var) {
            SLIMSIM_ASSERT(e.slot != expr::kInvalidSlot);
            out.push_back(bindings[e.slot]);
            return;
        }
        if (e.a) collect_reads(*e.a, bindings, out);
        if (e.b) collect_reads(*e.b, bindings, out);
        if (e.c) collect_reads(*e.c, bindings, out);
    }

    void build_flows() {
        std::vector<InstFlow> flows;
        for (std::size_t i = 0; i < m_.instances.size(); ++i) {
            const Instance& inst = m_.instances[i];
            const ResolvedImpl& impl = *inst.impl;
            const auto& bindings = *bindings_[i];

            auto gate_for = [&](const std::vector<std::string>& in_modes, InstFlow& f) {
                f.owner = static_cast<InstanceId>(i);
                if (in_modes.empty()) return;
                f.gate_process = inst.process;
                for (const auto& mn : in_modes) {
                    f.gate_locations.push_back(impl.mode_index.at(mn));
                }
                std::sort(f.gate_locations.begin(), f.gate_locations.end());
            };

            for (const ConnectionDecl& c : impl.impl->connections) {
                if (c.is_event) continue;
                InstFlow f;
                const expr::Slot dst_slot = *impl.symbols.slot_of(c.dst.to_string());
                const expr::Slot src_slot = *impl.symbols.slot_of(c.src.to_string());
                f.target = bindings[dst_slot];
                f.value = expr::make_var_slot(src_slot, impl.symbols.at(src_slot).type,
                                              c.src.to_string());
                f.bindings = bindings_[i];
                gate_for(c.in_modes, f);
                flows.push_back(std::move(f));
            }
            for (const FlowDecl& fd : impl.impl->flows) {
                InstFlow f;
                f.target = bindings[*impl.symbols.slot_of(fd.target.to_string())];
                f.value = fd.value;
                f.bindings = bindings_[i];
                gate_for(fd.in_modes, f);
                flows.push_back(std::move(f));
            }
        }

        // Reject flows reading timed variables (their value would be stale
        // between discrete steps). Several flows may target the same data
        // element only when their mode gates are provably disjoint (the
        // mode-switched routing pattern, e.g. redundancy switch-over).
        std::unordered_map<VarId, std::vector<std::size_t>> targets_of;
        for (std::size_t fi = 0; fi < flows.size(); ++fi) {
            const InstFlow& f = flows[fi];
            std::vector<VarId> reads;
            collect_reads(*f.value, *f.bindings, reads);
            for (const VarId v : reads) {
                if (m_.vars[v].type.is_timed()) {
                    throw Error("flow into `" + m_.vars[f.target].full_name +
                                "` reads the clock/continuous variable `" +
                                m_.vars[v].full_name +
                                "`; latch the value with a transition effect instead");
                }
            }
            targets_of[f.target].push_back(fi);
        }
        for (const auto& [var, writers] : targets_of) {
            for (std::size_t a = 0; a < writers.size(); ++a) {
                for (std::size_t b = a + 1; b < writers.size(); ++b) {
                    const InstFlow& fa = flows[writers[a]];
                    const InstFlow& fb = flows[writers[b]];
                    const bool disjoint =
                        fa.gate_process >= 0 && fa.gate_process == fb.gate_process &&
                        !fa.gate_locations.empty() && !fb.gate_locations.empty() &&
                        std::find_first_of(fa.gate_locations.begin(),
                                           fa.gate_locations.end(),
                                           fb.gate_locations.begin(),
                                           fb.gate_locations.end()) ==
                            fa.gate_locations.end();
                    if (!disjoint) {
                        throw Error("data element `" + m_.vars[var].full_name +
                                    "` is the target of multiple flows/connections that "
                                    "can be active in the same mode");
                    }
                }
            }
        }

        // Topological sort: a flow reading v runs after every flow writing v.
        const std::size_t n = flows.size();
        std::vector<std::vector<std::size_t>> succ(n);
        std::vector<std::size_t> indegree(n, 0);
        for (std::size_t fi = 0; fi < n; ++fi) {
            std::vector<VarId> reads;
            collect_reads(*flows[fi].value, *flows[fi].bindings, reads);
            for (const VarId v : reads) {
                if (const auto it = targets_of.find(v); it != targets_of.end()) {
                    for (const std::size_t writer : it->second) {
                        succ[writer].push_back(fi);
                        ++indegree[fi];
                    }
                }
            }
        }
        std::vector<std::size_t> order;
        order.reserve(n);
        for (std::size_t fi = 0; fi < n; ++fi) {
            if (indegree[fi] == 0) order.push_back(fi);
        }
        for (std::size_t head = 0; head < order.size(); ++head) {
            for (const std::size_t next : succ[order[head]]) {
                if (--indegree[next] == 0) order.push_back(next);
            }
        }
        if (order.size() != n) {
            throw Error("cyclic data flow between connections/flows");
        }
        m_.flows.reserve(n);
        for (const std::size_t fi : order) m_.flows.push_back(std::move(flows[fi]));
    }

    InstanceModel m_;
    std::vector<std::shared_ptr<const std::vector<VarId>>> bindings_;
    std::unordered_map<std::string, ActionId> action_of_port_;
};

} // namespace

VarId InstanceModel::var(const std::string& full_name) const {
    const auto it = var_by_name.find(full_name);
    if (it == var_by_name.end()) {
        throw Error("unknown data element `" + full_name + "`");
    }
    return it->second;
}

InstanceId InstanceModel::instance(const std::string& path) const {
    const auto it = instance_by_path.find(path);
    if (it == instance_by_path.end()) {
        throw Error("unknown component instance `" + path + "`");
    }
    return it->second;
}

std::vector<Value> InstanceModel::initial_valuation() const {
    std::vector<Value> vals;
    vals.reserve(vars.size());
    for (const auto& v : vars) vals.push_back(v.init);

    // Static initial activation: an instance is active iff its parent is and
    // the parent's *initial* mode permits it.
    std::vector<bool> active(instances.size(), true);
    for (std::size_t i = 0; i < instances.size(); ++i) {
        const Instance& inst = instances[i];
        if (inst.parent < 0) continue;
        const Instance& par = instances[static_cast<std::size_t>(inst.parent)];
        bool a = active[static_cast<std::size_t>(inst.parent)];
        if (a && !inst.parent_modes.empty()) {
            SLIMSIM_ASSERT(par.process >= 0);
            const int init_mode = processes[static_cast<std::size_t>(par.process)]
                                      .initial_location;
            a = std::binary_search(inst.parent_modes.begin(), inst.parent_modes.end(),
                                   init_mode);
        }
        active[i] = a;
    }

    for (const InstFlow& f : flows) {
        if (!active[static_cast<std::size_t>(f.owner)]) continue;
        if (f.gate_process >= 0 && !f.gate_locations.empty()) {
            const int loc =
                processes[static_cast<std::size_t>(f.gate_process)].initial_location;
            if (!std::binary_search(f.gate_locations.begin(), f.gate_locations.end(), loc)) {
                continue;
            }
        }
        const expr::EvalContext ctx{vals, *f.bindings};
        vals[f.target] = expr::evaluate(*f.value, ctx).coerce_to(vars[f.target].type);
    }
    return vals;
}

InstanceModel instantiate(std::shared_ptr<const ResolvedModel> model) {
    return Instantiator(std::move(model)).run();
}

} // namespace slimsim::slim
