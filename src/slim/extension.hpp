// Model extension: attaches error models to component instances.
//
// Implements the COMPASS "model extension" step: each error-model binding
// becomes an additional process running in parallel with its host component;
// error propagations become broadcast channels between error models of
// neighbouring (sibling / parent / child) components; fault injections
// become state-entry effects forcing nominal data elements to failure values
// (restored to their nominal defaults when the error state is left).
#pragma once

#include "slim/instantiate.hpp"

namespace slimsim::slim {

/// Applies all error bindings and fault injections of the model file to an
/// instance model under construction. Called by instantiate().
void extend_model(InstanceModel& m, const ResolvedModel& r);

} // namespace slimsim::slim
