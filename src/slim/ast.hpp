// Declaration-level AST of a SLIM model file.
//
// Our concrete dialect (documented in docs/slim-language.md) covers the
// subset the paper's tool supports: component types with event/data port
// features; implementations with data subcomponents (bool / ranged int /
// real / clock / continuous), component subcomponents with mode-dependent
// activation (dynamic reconfiguration), data & event port connections,
// flows, modes with invariants ("while" clauses), guarded transitions with
// effects, mode-dependent trends (derivatives); error models with error
// states, error events (optionally Poisson-distributed), error propagations;
// and a fault-injection block binding error models to components.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "expr/ast.hpp"

namespace slimsim::slim {

enum class Category : std::uint8_t {
    System, Device, Processor, Process, Thread, Bus, Memory, Abstract,
};

[[nodiscard]] std::string to_string(Category c);
[[nodiscard]] std::optional<Category> category_from(std::string_view folded_word);

enum class PortDir : std::uint8_t { In, Out };

/// A feature of a component type: an event port or a data port.
struct FeatureDecl {
    std::string name;
    SourceLoc loc;
    bool is_event = false;
    PortDir dir = PortDir::In;
    Type data_type;                 // data ports only
    expr::ExprPtr default_value;    // data ports only; may be null
};

/// A data subcomponent (a state variable).
struct DataDecl {
    std::string name;
    SourceLoc loc;
    Type type;
    expr::ExprPtr default_value; // may be null -> type default
};

/// A component subcomponent, optionally active only in some parent modes.
struct SubcompDecl {
    std::string name;
    SourceLoc loc;
    Category category = Category::System;
    std::string type_name; // "Type" or "Type.Impl"
    std::vector<std::string> in_modes; // empty = active in all modes
};

struct ModeDecl {
    std::string name;
    SourceLoc loc;
    bool initial = false;
    expr::ExprPtr invariant; // may be null -> true
};

/// Reference to a port: `port` (own feature) or `sub.port`.
struct PortRef {
    std::string component; // empty = the declaring component itself
    std::string port;
    SourceLoc loc;

    [[nodiscard]] std::string to_string() const {
        return component.empty() ? port : component + "." + port;
    }
};

struct ConnectionDecl {
    bool is_event = false;
    PortRef src;
    PortRef dst;
    std::vector<std::string> in_modes; // empty = all modes
    SourceLoc loc;
};

/// Immediate data flow: target port := expression over data elements,
/// re-evaluated whenever the model takes a discrete step.
struct FlowDecl {
    PortRef target;
    expr::ExprPtr value;
    std::vector<std::string> in_modes;
    SourceLoc loc;
};

enum class TriggerKind : std::uint8_t {
    Internal,     // no event: tau
    Port,         // event port (nominal) / error event / propagation (error)
    Activation,   // reserved @activation broadcast
    Deactivation, // reserved @deactivation broadcast
};

struct Trigger {
    TriggerKind kind = TriggerKind::Internal;
    PortRef port; // for TriggerKind::Port
    SourceLoc loc;
};

struct AssignDecl {
    PortRef target;
    expr::ExprPtr value;
    SourceLoc loc;
};

struct TransitionDecl {
    std::string src;
    std::string dst;
    SourceLoc loc;
    Trigger trigger;
    expr::ExprPtr guard; // may be null -> true
    std::vector<AssignDecl> effects;
};

/// Derivative specification: `v' = <const-expr> in m1, m2;` (continuous vars).
struct TrendDecl {
    std::string var;
    expr::ExprPtr rate;
    std::vector<std::string> modes; // empty = all modes
    SourceLoc loc;
};

struct ComponentType {
    Category category = Category::System;
    std::string name;
    SourceLoc loc;
    std::vector<FeatureDecl> features;
};

struct ComponentImpl {
    Category category = Category::System;
    std::string type_name;
    std::string impl_name;
    SourceLoc loc;
    std::vector<DataDecl> data;
    std::vector<SubcompDecl> subcomponents;
    std::vector<ConnectionDecl> connections;
    std::vector<FlowDecl> flows;
    std::vector<ModeDecl> modes;
    std::vector<TransitionDecl> transitions;
    std::vector<TrendDecl> trends;

    [[nodiscard]] std::string full_name() const { return type_name + "." + impl_name; }
};

// --- Error models ---------------------------------------------------------

struct ErrorStateDecl {
    std::string name;
    SourceLoc loc;
    bool initial = false;
    expr::ExprPtr invariant; // may be null
};

struct PropagationDecl {
    std::string name;
    SourceLoc loc;
    PortDir dir = PortDir::Out;
};

struct ErrorModelType {
    std::string name;
    SourceLoc loc;
    std::vector<ErrorStateDecl> states;
    std::vector<PropagationDecl> propagations;
};

/// An error event; with a rate it fires with an exponential distribution,
/// without one it is a non-deterministic internal event.
struct ErrorEventDecl {
    std::string name;
    SourceLoc loc;
    std::optional<double> rate; // canonical unit: events per second
};

struct ErrorModelImpl {
    std::string type_name;
    std::string impl_name;
    SourceLoc loc;
    std::vector<ErrorEventDecl> events;
    std::vector<DataDecl> data;
    std::vector<TransitionDecl> transitions;
    std::vector<TrendDecl> trends;

    [[nodiscard]] std::string full_name() const { return type_name + "." + impl_name; }
};

// --- Fault injection block -------------------------------------------------

/// `component <path> uses error model <Impl>;`
struct ErrorBindingDecl {
    std::vector<std::string> component_path; // from the root system, may be empty
    std::string error_impl;                  // "Type.Impl"
    SourceLoc loc;
};

/// `component <path> in state <s> effect <var> := <expr>;`
struct InjectionDecl {
    std::vector<std::string> component_path;
    std::string state;
    std::string target_var; // data element of the bound component
    expr::ExprPtr value;
    SourceLoc loc;
};

/// A parsed SLIM model file (pre-resolution).
struct ModelFile {
    std::vector<ComponentType> component_types;
    std::vector<ComponentImpl> component_impls;
    std::vector<ErrorModelType> error_types;
    std::vector<ErrorModelImpl> error_impls;
    std::vector<ErrorBindingDecl> error_bindings;
    std::vector<InjectionDecl> injections;
    std::string root; // "Type.Impl"; empty = sole/last system implementation
};

} // namespace slimsim::slim
