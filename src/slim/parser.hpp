// Recursive-descent parser for SLIM model files.
//
// See docs/slim-language.md for the concrete grammar of our dialect.
#pragma once

#include <string_view>

#include "slim/ast.hpp"

namespace slimsim::slim {

/// Parses a complete model file. Throws slimsim::Error on the first syntax
/// error (with source location).
[[nodiscard]] ModelFile parse_model(std::string_view source,
                                    std::string filename = "<input>");

/// Parses a single expression (used by the property front-end and tests).
[[nodiscard]] expr::ExprPtr parse_expression(std::string_view source,
                                             std::string filename = "<expr>");

} // namespace slimsim::slim
