#include "slim/token.hpp"

namespace slimsim::slim {

std::string_view to_string(TokenKind k) {
    switch (k) {
    case TokenKind::Ident: return "identifier";
    case TokenKind::Integer: return "integer";
    case TokenKind::Real: return "real";
    case TokenKind::LParen: return "(";
    case TokenKind::RParen: return ")";
    case TokenKind::LBracket: return "[";
    case TokenKind::RBracket: return "]";
    case TokenKind::Colon: return ":";
    case TokenKind::Semicolon: return ";";
    case TokenKind::Comma: return ",";
    case TokenKind::Dot: return ".";
    case TokenKind::DotDot: return "..";
    case TokenKind::Arrow: return "->";
    case TokenKind::TransBegin: return "-[";
    case TokenKind::TransEnd: return "]->";
    case TokenKind::Assign: return ":=";
    case TokenKind::Prime: return "'";
    case TokenKind::Plus: return "+";
    case TokenKind::Minus: return "-";
    case TokenKind::Star: return "*";
    case TokenKind::Slash: return "/";
    case TokenKind::Lt: return "<";
    case TokenKind::Le: return "<=";
    case TokenKind::Gt: return ">";
    case TokenKind::Ge: return ">=";
    case TokenKind::EqEq: return "=";
    case TokenKind::Neq: return "!=";
    case TokenKind::FatArrow: return "=>";
    case TokenKind::At: return "@";
    case TokenKind::EndOfFile: return "<eof>";
    }
    return "?";
}

std::string Token::to_string() const {
    switch (kind) {
    case TokenKind::Ident: return "identifier `" + text + "`";
    case TokenKind::Integer: return "integer " + std::to_string(int_value);
    case TokenKind::Real: return "real literal";
    default: return "`" + std::string(slimsim::slim::to_string(kind)) + "`";
    }
}

} // namespace slimsim::slim
