#include "ctmc/bisim.hpp"

#include <map>
#include <unordered_map>

#include "support/diagnostics.hpp"

namespace slimsim::ctmc {

namespace {

/// A state's refinement signature: its current block plus its total rate
/// into every block (sorted, merged).
struct Signature {
    StateId own_block = 0;
    std::vector<std::pair<StateId, double>> rates;

    friend bool operator==(const Signature&, const Signature&) = default;
    friend bool operator<(const Signature& a, const Signature& b) {
        if (a.own_block != b.own_block) return a.own_block < b.own_block;
        return a.rates < b.rates;
    }
};

} // namespace

LumpResult lump(const CtmcModel& m) {
    const std::size_t n = m.state_count();
    LumpResult res;
    res.block_of.assign(n, 0);
    // Initial partition: goal vs non-goal.
    for (StateId s = 0; s < n; ++s) res.block_of[s] = m.goal[s] ? 1 : 0;
    res.block_count = 2;
    if (n == 0) {
        res.block_count = 0;
        return res;
    }

    for (;;) {
        ++res.iterations;
        std::map<Signature, StateId> sig_block;
        std::vector<StateId> next(n);
        for (StateId s = 0; s < n; ++s) {
            Signature sig;
            sig.own_block = res.block_of[s];
            std::map<StateId, double> acc;
            for (const auto& [t, r] : m.transitions[s]) acc[res.block_of[t]] += r;
            sig.rates.assign(acc.begin(), acc.end());
            const auto [it, inserted] =
                sig_block.emplace(std::move(sig), static_cast<StateId>(sig_block.size()));
            (void)inserted;
            next[s] = it->second;
        }
        const auto new_count = static_cast<StateId>(sig_block.size());
        const bool stable = new_count == res.block_count;
        res.block_of = std::move(next);
        res.block_count = new_count;
        if (stable) return res;
    }
}

CtmcModel minimize(const CtmcModel& m, LumpResult* result) {
    LumpResult r = lump(m);
    CtmcModel q = quotient(m, r.block_of, r.block_count);
    if (result != nullptr) *result = std::move(r);
    return q;
}

} // namespace slimsim::ctmc
