#include "ctmc/imc.hpp"

#include <map>
#include <optional>

#include "support/diagnostics.hpp"

namespace slimsim::ctmc {

std::size_t Imc::vanishing_count() const {
    std::size_t n = 0;
    for (const auto& s : states) {
        if (s.vanishing) ++n;
    }
    return n;
}

namespace {

using Dist = std::map<StateId, double>; // over *old* tangible state ids

/// Memoized distribution of a vanishing state over tangible states.
class Eliminator {
public:
    explicit Eliminator(const Imc& imc) : imc_(imc), memo_(imc.states.size()) {}

    const Dist& dist_of(StateId v) {
        SLIMSIM_ASSERT(imc_.states[v].vanishing);
        if (memo_[v]) return *memo_[v];
        if (on_stack_.size() < imc_.states.size()) on_stack_.resize(imc_.states.size(), 0);
        if (on_stack_[v]) {
            throw Error("cycle of immediate transitions in the state space "
                        "(divergent/Zeno model); the CTMC flow cannot handle it");
        }
        on_stack_[v] = 1;
        Dist d;
        for (const auto& [t, p] : imc_.states[v].immediate) {
            if (imc_.states[t].vanishing) {
                for (const auto& [u, q] : dist_of(t)) d[u] += p * q;
            } else {
                d[t] += p;
            }
        }
        on_stack_[v] = 0;
        memo_[v] = std::move(d);
        return *memo_[v];
    }

private:
    const Imc& imc_;
    std::vector<std::optional<Dist>> memo_;
    std::vector<char> on_stack_;
};

} // namespace

CtmcModel eliminate_vanishing(const Imc& imc) {
    // Index tangible states.
    std::vector<StateId> new_id(imc.states.size(), 0);
    StateId count = 0;
    for (StateId s = 0; s < imc.states.size(); ++s) {
        if (!imc.states[s].vanishing) new_id[s] = count++;
    }
    if (count == 0) {
        throw Error("the model has no tangible states (all behaviour is immediate)");
    }

    Eliminator elim(imc);
    CtmcModel m;
    m.transitions.resize(count);
    m.goal.assign(count, 0);

    for (StateId s = 0; s < imc.states.size(); ++s) {
        const ImcState& st = imc.states[s];
        if (st.vanishing) continue;
        m.goal[new_id[s]] = st.goal ? 1 : 0;
        Dist out;
        for (const auto& [t, rate] : st.markovian) {
            if (imc.states[t].vanishing) {
                for (const auto& [u, q] : elim.dist_of(t)) out[u] += rate * q;
            } else {
                out[t] += rate;
            }
        }
        auto& edges = m.transitions[new_id[s]];
        edges.reserve(out.size());
        for (const auto& [t, rate] : out) edges.emplace_back(new_id[t], rate);
    }

    if (imc.states[imc.initial].vanishing) {
        for (const auto& [t, p] : elim.dist_of(imc.initial)) {
            m.initial.emplace_back(new_id[t], p);
        }
    } else {
        m.initial.emplace_back(new_id[imc.initial], 1.0);
    }
    m.check();
    return m;
}

} // namespace slimsim::ctmc
