#include "ctmc/ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/diagnostics.hpp"

namespace slimsim::ctmc {

std::size_t CtmcModel::transition_count() const {
    std::size_t n = 0;
    for (const auto& t : transitions) n += t.size();
    return n;
}

double CtmcModel::exit_rate(StateId s) const {
    double total = 0.0;
    for (const auto& [t, r] : transitions[s]) {
        (void)t;
        total += r;
    }
    return total;
}

double CtmcModel::max_exit_rate() const {
    double m = 0.0;
    for (StateId s = 0; s < state_count(); ++s) m = std::max(m, exit_rate(s));
    return m;
}

void CtmcModel::check() const {
    SLIMSIM_ASSERT(goal.size() == transitions.size());
    double mass = 0.0;
    for (const auto& [s, p] : initial) {
        SLIMSIM_ASSERT(s < state_count());
        SLIMSIM_ASSERT(p > 0.0);
        mass += p;
    }
    SLIMSIM_ASSERT(std::abs(mass - 1.0) < 1e-9);
    for (StateId s = 0; s < state_count(); ++s) {
        if (goal[s]) SLIMSIM_ASSERT(transitions[s].empty()); // absorbing
        for (const auto& [t, r] : transitions[s]) {
            SLIMSIM_ASSERT(t < state_count());
            SLIMSIM_ASSERT(r > 0.0);
        }
    }
}

CtmcModel quotient(const CtmcModel& m, const std::vector<StateId>& block_of,
                   StateId block_count) {
    SLIMSIM_ASSERT(block_of.size() == m.state_count());
    CtmcModel q;
    q.transitions.resize(block_count);
    q.goal.assign(block_count, 0);
    std::vector<char> done(block_count, 0);
    for (StateId s = 0; s < m.state_count(); ++s) {
        const StateId b = block_of[s];
        SLIMSIM_ASSERT(b < block_count);
        if (m.goal[s]) q.goal[b] = 1;
        if (done[b]) continue; // rates are block-invariant; one representative suffices
        done[b] = 1;
        std::map<StateId, double> out;
        for (const auto& [t, r] : m.transitions[s]) out[block_of[t]] += r;
        q.transitions[b].assign(out.begin(), out.end());
    }
    std::map<StateId, double> init;
    for (const auto& [s, p] : m.initial) init[block_of[s]] += p;
    q.initial.assign(init.begin(), init.end());
    return q;
}

} // namespace slimsim::ctmc
