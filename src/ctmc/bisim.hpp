// Signature-based bisimulation minimization (sigref-style).
//
// Partition refinement with rate signatures: states are bisimilar iff they
// carry the same label (goal) and, for every block of the current partition,
// the same total rate into that block. The quotient (ordinary lumpability)
// preserves transient probabilities, hence time-bounded reachability —
// the reduction the original tool chain obtains from the Sigref library.
#pragma once

#include "ctmc/ctmc.hpp"

namespace slimsim::ctmc {

struct LumpResult {
    std::vector<StateId> block_of; // per state
    StateId block_count = 0;
    std::size_t iterations = 0;
};

/// Computes the coarsest lumping partition that respects goal labels.
[[nodiscard]] LumpResult lump(const CtmcModel& m);

/// Convenience: lump and build the quotient chain.
[[nodiscard]] CtmcModel minimize(const CtmcModel& m, LumpResult* result = nullptr);

} // namespace slimsim::ctmc
