#include "ctmc/state_space.hpp"

#include <chrono>
#include <limits>
#include <unordered_map>

namespace slimsim::ctmc {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// True if the expression reads any clock/continuous variable.
bool reads_timed(const expr::Expr& e, const slim::InstanceModel& m,
                 const std::vector<VarId>* bindings) {
    if (e.kind == expr::ExprKind::Var) {
        const VarId id = bindings == nullptr ? e.slot : (*bindings)[e.slot];
        return m.vars[id].type.is_timed();
    }
    return (e.a && reads_timed(*e.a, m, bindings)) ||
           (e.b && reads_timed(*e.b, m, bindings)) ||
           (e.c && reads_timed(*e.c, m, bindings));
}

} // namespace

void ensure_untimed(const eda::Network& net, const expr::Expr& goal) {
    const slim::InstanceModel& m = net.model();
    for (const auto& p : m.processes) {
        for (const auto& loc : p.locations) {
            if (loc.invariant != nullptr) {
                throw Error("process `" + p.name + "` location `" + loc.name +
                            "` has an invariant; the CTMC flow handles untimed models "
                            "only (use the simulator)");
            }
        }
        for (const auto& t : p.transitions) {
            if (t.guard != nullptr && reads_timed(*t.guard, m, p.bindings.get())) {
                throw Error(t.loc, "process `" + p.name +
                                       "` has a guard over clock/continuous variables; the "
                                       "CTMC flow handles untimed models only");
            }
        }
    }
    if (reads_timed(goal, m, nullptr)) {
        throw Error("the property goal references clock/continuous variables; the CTMC "
                    "flow handles untimed models only");
    }
}

namespace {

/// Discrete key extraction: locations + non-timed values + activation.
class KeyMaker {
public:
    explicit KeyMaker(const slim::InstanceModel& m) {
        for (VarId v = 0; v < m.vars.size(); ++v) {
            if (!m.vars[v].type.is_timed()) discrete_vars_.push_back(v);
        }
    }

    [[nodiscard]] eda::DiscreteKey key_of(const eda::NetworkState& s) const {
        eda::DiscreteKey k;
        k.locations = s.locations;
        k.values.reserve(discrete_vars_.size());
        for (const VarId v : discrete_vars_) k.values.push_back(s.values[v]);
        k.active = s.active;
        return k;
    }

private:
    std::vector<VarId> discrete_vars_;
};

} // namespace

Imc build_state_space(const eda::Network& net, const expr::Expr& goal,
                      const BuildOptions& options, BuildStats* stats) {
    const auto start = std::chrono::steady_clock::now();
    ensure_untimed(net, goal);

    const KeyMaker keys(net.model());
    std::unordered_map<eda::DiscreteKey, StateId, eda::DiscreteKeyHash> index;
    std::vector<eda::NetworkState> frontier; // state per IMC state, by id
    Imc imc;

    auto intern = [&](eda::NetworkState&& s) -> StateId {
        eda::DiscreteKey k = keys.key_of(s);
        if (const auto it = index.find(k); it != index.end()) return it->second;
        const auto id = static_cast<StateId>(imc.states.size());
        if (imc.states.size() >= options.max_states) {
            throw Error("state space exceeds " + std::to_string(options.max_states) +
                        " states");
        }
        index.emplace(std::move(k), id);
        imc.states.emplace_back();
        frontier.push_back(std::move(s));
        return id;
    };

    imc.initial = intern(net.initial_state());

    std::size_t transition_count = 0;
    for (StateId id = 0; id < imc.states.size(); ++id) {
        const eda::NetworkState s = frontier[id]; // copy: frontier grows below
        ImcState st;
        if (net.eval_global(s, goal)) {
            st.goal = true; // absorbing
            imc.states[id] = std::move(st);
            continue;
        }
        const std::vector<eda::Candidate> cands = net.candidates(s, kInf);
        if (!cands.empty()) {
            // Maximal progress: immediate steps preempt Markovian ones;
            // the candidate and its sub-choices are resolved equiprobably.
            st.vanishing = true;
            const double cand_prob = 1.0 / static_cast<double>(cands.size());
            for (const auto& c : cands) {
                for (const auto& move : net.resolve_moves(s, c)) {
                    eda::NetworkState succ = s;
                    net.apply_firing(succ, move.firing);
                    st.immediate.emplace_back(intern(std::move(succ)),
                                              cand_prob * move.probability);
                }
            }
        } else {
            for (const auto& [proc, total] : net.markovian_rates(s)) {
                (void)total;
                const auto& p = net.model().processes[static_cast<std::size_t>(proc)];
                for (const int t : net.outgoing(s, proc)) {
                    const double rate = p.transitions[static_cast<std::size_t>(t)].rate;
                    if (rate <= 0.0) continue;
                    eda::NetworkState succ = s;
                    net.apply_firing(succ, {{proc, t}});
                    st.markovian.emplace_back(intern(std::move(succ)), rate);
                }
            }
        }
        transition_count += st.immediate.size() + st.markovian.size();
        imc.states[id] = std::move(st);
    }

    if (stats != nullptr) {
        stats->states = imc.states.size();
        stats->vanishing = imc.vanishing_count();
        stats->transitions = transition_count;
        stats->seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    }
    return imc;
}

} // namespace slimsim::ctmc
