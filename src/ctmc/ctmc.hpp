// Sparse continuous-time Markov chain model (the baseline analysis flow).
#pragma once

#include <cstdint>
#include <vector>

namespace slimsim::ctmc {

using StateId = std::uint32_t;

/// A CTMC with goal labelling and an initial distribution. Goal states are
/// absorbing by construction (the builder cuts their outgoing transitions),
/// so transient analysis at time u directly yields P( <> [0,u] goal ).
struct CtmcModel {
    /// transitions[s] = {(target, rate)...}; parallel edges already merged.
    std::vector<std::vector<std::pair<StateId, double>>> transitions;
    std::vector<char> goal;                           // per state
    std::vector<std::pair<StateId, double>> initial;  // distribution (sums to 1)

    [[nodiscard]] std::size_t state_count() const { return transitions.size(); }
    [[nodiscard]] std::size_t transition_count() const;
    [[nodiscard]] double exit_rate(StateId s) const;
    [[nodiscard]] double max_exit_rate() const;

    /// Internal consistency (sizes, probabilities, absorbing goals).
    void check() const;
};

/// Builds the quotient of a CTMC under a partition (block index per state).
/// Transition rates between blocks are the (bisimulation-invariant) sums of
/// member rates from any representative.
[[nodiscard]] CtmcModel quotient(const CtmcModel& m, const std::vector<StateId>& block_of,
                                 StateId block_count);

} // namespace slimsim::ctmc
