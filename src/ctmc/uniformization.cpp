#include "ctmc/uniformization.hpp"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hpp"

namespace slimsim::ctmc {

PoissonWeights poisson_weights(double lambda, double precision) {
    SLIMSIM_ASSERT(lambda >= 0.0);
    SLIMSIM_ASSERT(precision > 0.0 && precision < 1.0);
    PoissonWeights out;
    if (lambda == 0.0) {
        out.left = 0;
        out.weights = {1.0};
        return out;
    }
    // Start at the mode and extend outward until the unnormalized tail mass
    // is negligible; normalize at the end (Fox-Glynn in spirit, adequate for
    // lambda up to ~1e6 thanks to the mode-relative scaling).
    const auto mode = static_cast<std::size_t>(lambda);
    std::vector<double> up;   // weights at mode, mode+1, ...
    std::vector<double> down; // weights at mode-1, mode-2, ...
    up.push_back(1.0);
    // Upward: w_{k+1} = w_k * lambda / (k+1).
    for (std::size_t k = mode;; ++k) {
        const double next = up.back() * lambda / static_cast<double>(k + 1);
        if (next < precision * 1e-4 && static_cast<double>(k) > lambda) break;
        up.push_back(next);
        if (up.size() > 20'000'000) throw Error("Poisson truncation did not converge");
    }
    // Downward: w_{k-1} = w_k * k / lambda.
    double w = 1.0;
    for (std::size_t k = mode; k > 0; --k) {
        w = w * static_cast<double>(k) / lambda;
        if (w < precision * 1e-4 && static_cast<double>(k) < lambda) break;
        down.push_back(w);
    }
    out.left = mode - down.size();
    out.weights.reserve(down.size() + up.size());
    for (auto it = down.rbegin(); it != down.rend(); ++it) out.weights.push_back(*it);
    for (const double u : up) out.weights.push_back(u);
    double total = 0.0;
    for (const double x : out.weights) total += x;
    for (double& x : out.weights) x /= total;
    return out;
}

double transient_reachability(const CtmcModel& m, double time,
                              const TransientOptions& options, TransientStats* stats) {
    if (time < 0.0) throw Error("transient analysis time must be non-negative");
    m.check();
    const std::size_t n = m.state_count();

    std::vector<double> pi(n, 0.0);
    for (const auto& [s, p] : m.initial) pi[s] += p;

    const double lambda_rate = m.max_exit_rate();
    const double q = lambda_rate * time;
    if (stats != nullptr) stats->uniformization_rate = lambda_rate;
    if (q == 0.0 || time == 0.0) {
        double mass = 0.0;
        for (StateId s = 0; s < n; ++s) {
            if (m.goal[s]) mass += pi[s];
        }
        return mass;
    }

    const PoissonWeights pw = poisson_weights(q, options.precision);
    std::vector<double> acc(n, 0.0);
    std::vector<double> next(n, 0.0);
    const std::size_t last = pw.left + pw.weights.size() - 1;
    for (std::size_t k = 0; k <= last; ++k) {
        if (k >= pw.left) {
            const double w = pw.weights[k - pw.left];
            for (std::size_t s = 0; s < n; ++s) acc[s] += w * pi[s];
        }
        if (k == last) break;
        // pi <- pi * P with P = I + Q/lambda (self-loop completes the row).
        std::fill(next.begin(), next.end(), 0.0);
        for (StateId s = 0; s < n; ++s) {
            const double mass = pi[s];
            if (mass == 0.0) continue;
            double exit = 0.0;
            for (const auto& [t, r] : m.transitions[s]) {
                next[t] += mass * r / lambda_rate;
                exit += r;
            }
            next[s] += mass * (1.0 - exit / lambda_rate);
        }
        pi.swap(next);
        if (stats != nullptr) ++stats->iterations;
    }

    double goal_mass = 0.0;
    for (StateId s = 0; s < n; ++s) {
        if (m.goal[s]) goal_mass += acc[s];
    }
    return std::min(1.0, goal_mass);
}

} // namespace slimsim::ctmc
