// Transient analysis by uniformization (the MRMC leg of the tool chain).
//
// With goal states absorbing, P( <> [0,u] goal ) equals the transient
// probability mass on goal states at time u:
//   pi(u) = sum_k  Poisson(Lambda*u; k) * pi0 * P^k,
// with P the uniformized DTMC at rate Lambda >= max exit rate. Poisson
// weights use Fox-Glynn-style left/right truncation at the requested
// precision.
#pragma once

#include "ctmc/ctmc.hpp"

namespace slimsim::ctmc {

struct TransientOptions {
    double precision = 1e-10; // total truncated Poisson mass
};

struct TransientStats {
    std::size_t iterations = 0; // matrix-vector products
    double uniformization_rate = 0.0;
};

/// Probability that the chain is in a goal state at time `time`
/// (== time-bounded reachability, since goal states are absorbing).
[[nodiscard]] double transient_reachability(const CtmcModel& m, double time,
                                            const TransientOptions& options = {},
                                            TransientStats* stats = nullptr);

/// Poisson(lambda) probabilities for k in [left, right] with truncation;
/// exposed for testing. Returns normalized weights and the range.
struct PoissonWeights {
    std::size_t left = 0;
    std::vector<double> weights; // weights[i] = P(K = left + i), normalized
};
[[nodiscard]] PoissonWeights poisson_weights(double lambda, double precision);

} // namespace slimsim::ctmc
