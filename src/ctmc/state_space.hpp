// Explicit state-space construction for untimed models (paper, Sec. IV).
//
// Replaces the NuSMV/BDD leg of the COMPASS tool chain: a breadth-first
// exploration of the network's reachable *discrete* states (locations +
// non-timed variable values + activation flags), producing an IMC.
// Interactive transitions are resolved by maximal progress (immediate steps
// preempt Markovian ones) and equiprobable choice, exactly as the simulator
// resolves them; goal states are made absorbing.
#pragma once

#include "ctmc/imc.hpp"
#include "eda/network.hpp"

namespace slimsim::ctmc {

struct BuildOptions {
    std::size_t max_states = 5'000'000;
};

struct BuildStats {
    std::size_t states = 0;     // total IMC states explored
    std::size_t vanishing = 0;  // immediate states eliminated later
    std::size_t transitions = 0;
    double seconds = 0.0;
};

/// Throws slimsim::Error if the model is not untimed: a location invariant,
/// or a guard/property referencing a clock or continuous variable, makes the
/// CTMC abstraction unsound (the simulator handles those models instead).
void ensure_untimed(const eda::Network& net, const expr::Expr& goal);

/// Explores the reachable state space and returns the IMC.
[[nodiscard]] Imc build_state_space(const eda::Network& net, const expr::Expr& goal,
                                    const BuildOptions& options = {},
                                    BuildStats* stats = nullptr);

} // namespace slimsim::ctmc
