// The complete exhaustive analysis flow (paper, Sec. IV):
//   state space -> IMC -> vanishing elimination -> bisimulation
//   minimization -> uniformization,
// mirroring COMPASS's NuSMV -> Sigref -> MRMC chain.
#pragma once

#include "ctmc/bisim.hpp"
#include "ctmc/state_space.hpp"
#include "ctmc/uniformization.hpp"
#include "support/telemetry.hpp"
#include "support/tracer/tracer.hpp"

namespace slimsim::ctmc {

struct FlowOptions {
    bool minimize = true; // apply bisimulation reduction (sigref step)
    BuildOptions build;
    TransientOptions transient;
    /// Optional execution-trace lane: the flow phases (ctmc.explore,
    /// ctmc.eliminate, ctmc.minimize, ctmc.transient) are recorded as spans
    /// with the resulting state counts as arguments.
    tracer::Lane* trace_lane = nullptr;
};

struct FlowResult {
    double probability = 0.0;
    BuildStats build;                 // exploration
    std::size_t ctmc_states = 0;      // after vanishing elimination
    std::size_t ctmc_transitions = 0;
    std::size_t lumped_states = 0;    // after minimization (== ctmc_states if off)
    TransientStats transient;         // uniformization statistics
    double eliminate_seconds = 0.0;
    double bisim_seconds = 0.0;
    double analysis_seconds = 0.0;
    double total_seconds = 0.0;
    std::size_t peak_rss_bytes = 0;

    [[nodiscard]] std::string to_string() const;
};

/// Runs the full flow for P( <> [0,bound] goal ) on an untimed model. When
/// `report` is non-null, the phase breakdown (explore/eliminate/minimize/
/// transient), state-space counters and the probability are recorded.
[[nodiscard]] FlowResult run_ctmc_flow(const eda::Network& net, const expr::Expr& goal,
                                       double bound, const FlowOptions& options = {},
                                       telemetry::RunReport* report = nullptr);

} // namespace slimsim::ctmc
