// Interactive Markov chain representation and vanishing-state elimination.
//
// The explicit state-space builder produces an IMC: states with *immediate*
// probabilistic transitions (interactive transitions after maximal-progress
// and equiprobable resolution) or *Markovian* rate transitions. Elimination
// of the vanishing (immediate) states yields the CTMC that MRMC-style
// transient analysis consumes — the role sigref's weak-bisimulation
// reduction plays in the original COMPASS tool chain.
#pragma once

#include "ctmc/ctmc.hpp"

namespace slimsim::ctmc {

struct ImcState {
    bool vanishing = false; // has immediate transitions (maximal progress)
    bool goal = false;      // goal states are absorbing (no transitions kept)
    std::vector<std::pair<StateId, double>> immediate; // probabilities, sum 1
    std::vector<std::pair<StateId, double>> markovian; // rates
};

struct Imc {
    std::vector<ImcState> states;
    StateId initial = 0;

    [[nodiscard]] std::size_t vanishing_count() const;
};

/// Eliminates vanishing states: every immediate distribution is pushed until
/// only tangible (Markovian / absorbing) states remain. Cycles among
/// vanishing states (probabilistic immediate loops) are rejected with an
/// error — they indicate a Zeno/divergent model.
[[nodiscard]] CtmcModel eliminate_vanishing(const Imc& imc);

} // namespace slimsim::ctmc
