#include "ctmc/flow.hpp"

#include <chrono>
#include <sstream>

#include "support/memprobe.hpp"

namespace slimsim::ctmc {

std::string FlowResult::to_string() const {
    std::ostringstream os;
    os << "p = " << probability << " (" << build.states << " IMC states, " << ctmc_states
       << " CTMC states, " << lumped_states << " after lumping, " << total_seconds << " s)";
    return os.str();
}

FlowResult run_ctmc_flow(const eda::Network& net, const expr::Expr& goal, double bound,
                         const FlowOptions& options) {
    const auto t0 = std::chrono::steady_clock::now();
    FlowResult res;

    const Imc imc = build_state_space(net, goal, options.build, &res.build);

    const auto t1 = std::chrono::steady_clock::now();
    CtmcModel chain = eliminate_vanishing(imc);
    res.ctmc_states = chain.state_count();
    res.ctmc_transitions = chain.transition_count();
    const auto t2 = std::chrono::steady_clock::now();
    res.eliminate_seconds = std::chrono::duration<double>(t2 - t1).count();

    if (options.minimize) {
        chain = minimize(chain);
    }
    res.lumped_states = chain.state_count();
    const auto t3 = std::chrono::steady_clock::now();
    res.bisim_seconds = std::chrono::duration<double>(t3 - t2).count();

    res.probability = transient_reachability(chain, bound, options.transient);
    const auto t4 = std::chrono::steady_clock::now();
    res.analysis_seconds = std::chrono::duration<double>(t4 - t3).count();
    res.total_seconds = std::chrono::duration<double>(t4 - t0).count();
    res.peak_rss_bytes = peak_rss_bytes();
    return res;
}

} // namespace slimsim::ctmc
