#include "ctmc/flow.hpp"

#include <chrono>
#include <sstream>

#include "support/memprobe.hpp"

namespace slimsim::ctmc {

std::string FlowResult::to_string() const {
    std::ostringstream os;
    os << "p = " << probability << " (" << build.states << " IMC states, " << ctmc_states
       << " CTMC states, " << lumped_states << " after lumping, " << total_seconds << " s)";
    return os.str();
}

FlowResult run_ctmc_flow(const eda::Network& net, const expr::Expr& goal, double bound,
                         const FlowOptions& options, telemetry::RunReport* report) {
    const auto t0 = std::chrono::steady_clock::now();
    FlowResult res;

    tracer::Lane* lane = options.trace_lane;
    tracer::NameId n_states = tracer::kNoName;
    if (lane != nullptr) n_states = lane->intern("states");

    if (lane != nullptr) lane->begin(lane->intern("ctmc.explore"));
    const Imc imc = build_state_space(net, goal, options.build, &res.build);
    if (lane != nullptr) lane->end(n_states, static_cast<double>(res.build.states));

    const auto t1 = std::chrono::steady_clock::now();
    if (lane != nullptr) lane->begin(lane->intern("ctmc.eliminate"));
    CtmcModel chain = eliminate_vanishing(imc);
    res.ctmc_states = chain.state_count();
    res.ctmc_transitions = chain.transition_count();
    if (lane != nullptr) lane->end(n_states, static_cast<double>(res.ctmc_states));
    const auto t2 = std::chrono::steady_clock::now();
    res.eliminate_seconds = std::chrono::duration<double>(t2 - t1).count();

    if (lane != nullptr) lane->begin(lane->intern("ctmc.minimize"));
    if (options.minimize) {
        chain = minimize(chain);
    }
    res.lumped_states = chain.state_count();
    if (lane != nullptr) lane->end(n_states, static_cast<double>(res.lumped_states));
    const auto t3 = std::chrono::steady_clock::now();
    res.bisim_seconds = std::chrono::duration<double>(t3 - t2).count();

    if (lane != nullptr) lane->begin(lane->intern("ctmc.transient"));
    res.probability = transient_reachability(chain, bound, options.transient,
                                             &res.transient);
    if (lane != nullptr) {
        lane->end(lane->intern("iterations"),
                  static_cast<double>(res.transient.iterations));
    }
    const auto t4 = std::chrono::steady_clock::now();
    res.analysis_seconds = std::chrono::duration<double>(t4 - t3).count();
    res.total_seconds = std::chrono::duration<double>(t4 - t0).count();
    res.peak_rss_bytes = peak_rss_bytes();

    if (report != nullptr) {
        report->value = res.probability;
        report->workers = 1;
        report->phases.push_back({"explore", res.build.seconds});
        report->phases.push_back({"eliminate", res.eliminate_seconds});
        report->phases.push_back({"minimize", res.bisim_seconds});
        report->phases.push_back({"transient", res.analysis_seconds});
        report->counters.emplace_back("ctmc.ctmc_states", res.ctmc_states);
        report->counters.emplace_back("ctmc.ctmc_transitions", res.ctmc_transitions);
        report->counters.emplace_back("ctmc.imc_states", res.build.states);
        report->counters.emplace_back("ctmc.imc_transitions", res.build.transitions);
        report->counters.emplace_back("ctmc.lumped_states", res.lumped_states);
        report->counters.emplace_back("ctmc.uniformization_iterations",
                                      res.transient.iterations);
        report->counters.emplace_back("ctmc.vanishing_states", res.build.vanishing);
    }
    return res;
}

} // namespace slimsim::ctmc
