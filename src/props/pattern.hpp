// Property specification patterns (paper, Sec. II-C).
//
// COMPASS exposes user-friendly specification patterns instead of raw
// temporal logic. slimsim's quantitative analysis consumes time-bounded
// path formulas; the accepted spellings are:
//
//   probabilistic existence (the paper's pattern):
//     "probability of reaching GOAL within TIME"
//     "probability of reaching GOAL between TIME and TIME"
//     "P( <> [LO, HI] GOAL )"
//   until:
//     "probability of HOLD until GOAL within TIME"
//     "probability of HOLD until GOAL between TIME and TIME"
//     "P( (HOLD) U [LO, HI] (GOAL) )"
//   invariance:
//     "probability of maintaining GOAL for TIME"
//     "P( [] [0, TIME] GOAL )"
//
// TIME is a number with an optional unit (msec/sec/min/hour/day).
#pragma once

#include <string>
#include <string_view>

#include "slim/instantiate.hpp"

namespace slimsim::props {

enum class PatternKind : std::uint8_t { Reach, Until, Globally };

struct ParsedPattern {
    PatternKind kind = PatternKind::Reach;
    std::string hold_text; // Until only
    std::string goal_text;
    double lo = 0.0;    // seconds
    double bound = 0.0; // seconds
};

/// Parses a duration like "1800", "300 msec", "2 hour", "1.5h".
[[nodiscard]] double parse_duration(std::string_view text);

/// Parses a property pattern; throws slimsim::Error on malformed input.
[[nodiscard]] ParsedPattern parse_pattern(std::string_view text);

} // namespace slimsim::props
