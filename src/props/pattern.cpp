#include "props/pattern.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "support/diagnostics.hpp"

namespace slimsim::props {

namespace {

std::string lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
        s.remove_prefix(1);
    }
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
        s.remove_suffix(1);
    }
    return s;
}

/// Finds ` keyword ` (case-insensitive, space-delimited) in `folded`,
/// searching from the right so that goal expressions containing the word as
/// part of a name are not split. Returns npos if absent.
std::size_t rfind_keyword(const std::string& folded, std::string_view keyword) {
    const std::string needle = " " + std::string(keyword) + " ";
    return folded.rfind(needle);
}

/// Parses "[LO, HI]" starting at `pos` in `text`; returns the bounds and
/// advances `pos` past the closing bracket.
std::pair<double, double> parse_interval(std::string_view text, std::size_t& pos) {
    const std::size_t lb = text.find('[', pos);
    const std::size_t comma = text.find(',', lb);
    const std::size_t rb = text.find(']', lb);
    if (lb == std::string_view::npos || comma == std::string_view::npos ||
        rb == std::string_view::npos || comma > rb) {
        throw Error("malformed time interval; expected [LO, HI]");
    }
    const double lo = parse_duration(text.substr(lb + 1, comma - lb - 1));
    const double hi = parse_duration(text.substr(comma + 1, rb - comma - 1));
    pos = rb + 1;
    return {lo, hi};
}

/// "probability of ..." spellings.
ParsedPattern parse_verbose(std::string_view trimmed, const std::string& folded) {
    ParsedPattern p;
    static constexpr std::string_view kReach = "probability of reaching ";
    static constexpr std::string_view kMaintain = "probability of maintaining ";
    static constexpr std::string_view kOf = "probability of ";

    // Splits "... within T" / "... between T1 and T2" off `body`, filling
    // p.lo/p.bound and returning the leading expression text.
    auto split_time_suffix = [&](std::string_view body) -> std::string {
        const std::string bf = lower(body);
        if (const std::size_t between = rfind_keyword(bf, "between");
            between != std::string::npos) {
            const std::string_view tail = body.substr(between + 9); // past " between "
            const std::size_t and_pos = rfind_keyword(lower(tail), "and");
            if (and_pos == std::string::npos) {
                throw Error("`between` requires `and`: between T1 and T2");
            }
            p.lo = parse_duration(tail.substr(0, and_pos));
            p.bound = parse_duration(tail.substr(and_pos + 5)); // past " and "
            return std::string(trim(body.substr(0, between)));
        }
        const std::size_t within = rfind_keyword(bf, "within");
        if (within == std::string::npos) {
            throw Error("pattern is missing `within TIME` (or `between T1 and T2`)");
        }
        p.lo = 0.0;
        p.bound = parse_duration(body.substr(within + 8)); // past " within "
        return std::string(trim(body.substr(0, within)));
    };

    if (folded.rfind(kReach, 0) == 0) {
        p.kind = PatternKind::Reach;
        p.goal_text = split_time_suffix(trimmed.substr(kReach.size()));
    } else if (folded.rfind(kMaintain, 0) == 0) {
        p.kind = PatternKind::Globally;
        const std::string_view body = trimmed.substr(kMaintain.size());
        const std::size_t for_pos = rfind_keyword(lower(body), "for");
        if (for_pos == std::string::npos) {
            throw Error("`maintaining` requires `for TIME`");
        }
        p.bound = parse_duration(body.substr(for_pos + 5)); // past " for "
        p.goal_text = std::string(trim(body.substr(0, for_pos)));
    } else if (folded.rfind(kOf, 0) == 0) {
        // "probability of HOLD until GOAL within/between ..."
        const std::string_view body = trimmed.substr(kOf.size());
        const std::size_t until = lower(body).find(" until ");
        if (until == std::string::npos) {
            throw Error("unrecognized pattern; expected `reaching`, `maintaining` or "
                        "`HOLD until GOAL`");
        }
        p.kind = PatternKind::Until;
        p.hold_text = std::string(trim(body.substr(0, until)));
        p.goal_text = split_time_suffix(body.substr(until + 7)); // past " until "
        if (p.hold_text.empty()) throw Error("pattern has an empty hold expression");
    } else {
        throw Error("unrecognized property pattern");
    }
    if (p.goal_text.empty()) throw Error("pattern has an empty goal expression");
    if (p.lo < 0.0 || p.lo > p.bound) {
        throw Error("property time interval must satisfy 0 <= LO <= HI");
    }
    return p;
}

/// "P( ... )" CSL spellings.
ParsedPattern parse_csl(std::string_view trimmed) {
    const std::size_t open = trimmed.find('(');
    const std::size_t close = trimmed.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close <= open) {
        throw Error("malformed CSL pattern; expected P( ... )");
    }
    const std::string_view body = trim(trimmed.substr(open + 1, close - open - 1));
    ParsedPattern p;

    if (body.rfind("<>", 0) == 0) {
        p.kind = PatternKind::Reach;
        std::size_t pos = 2;
        const auto [lo, hi] = parse_interval(body, pos);
        p.lo = lo;
        p.bound = hi;
        p.goal_text = std::string(trim(body.substr(pos)));
    } else if (body.rfind("[]", 0) == 0 || body.rfind("G ", 0) == 0 ||
               body.rfind("G[", 0) == 0) {
        p.kind = PatternKind::Globally;
        std::size_t pos = body.rfind("[]", 0) == 0 ? 2 : 1;
        const auto [lo, hi] = parse_interval(body, pos);
        if (lo != 0.0) {
            throw Error("only [0,TIME] intervals are supported for invariance");
        }
        p.bound = hi;
        p.goal_text = std::string(trim(body.substr(pos)));
    } else if (!body.empty() && body.front() == '(') {
        // (HOLD) U [LO,HI] (GOAL)
        int depth = 0;
        std::size_t hold_end = std::string_view::npos;
        for (std::size_t i = 0; i < body.size(); ++i) {
            if (body[i] == '(') ++depth;
            if (body[i] == ')' && --depth == 0) {
                hold_end = i;
                break;
            }
        }
        if (hold_end == std::string_view::npos) throw Error("unbalanced parentheses");
        p.kind = PatternKind::Until;
        p.hold_text = std::string(trim(body.substr(1, hold_end - 1)));
        std::size_t pos = hold_end + 1;
        while (pos < body.size() && std::isspace(static_cast<unsigned char>(body[pos]))) {
            ++pos;
        }
        if (pos >= body.size() || (body[pos] != 'U' && body[pos] != 'u')) {
            throw Error("expected `U [LO,HI]` after the hold expression");
        }
        ++pos;
        const auto [lo, hi] = parse_interval(body, pos);
        p.lo = lo;
        p.bound = hi;
        std::string_view goal = trim(body.substr(pos));
        if (goal.size() >= 2 && goal.front() == '(' && goal.back() == ')') {
            goal = trim(goal.substr(1, goal.size() - 2));
        }
        p.goal_text = std::string(goal);
        if (p.hold_text.empty()) throw Error("pattern has an empty hold expression");
    } else {
        throw Error("malformed CSL pattern; expected <>, [], or (HOLD) U [..] (GOAL)");
    }
    if (p.goal_text.empty()) throw Error("pattern has an empty goal expression");
    if (p.lo < 0.0 || p.lo > p.bound) {
        throw Error("property time interval must satisfy 0 <= LO <= HI");
    }
    return p;
}

} // namespace

double parse_duration(std::string_view text) {
    const std::string t(trim(text));
    std::istringstream is(t);
    double value = 0.0;
    if (!(is >> value)) throw Error("cannot parse duration `" + t + "`");
    std::string unit;
    is >> unit;
    const std::string u = lower(unit);
    if (u.empty() || u == "sec" || u == "s") return value;
    if (u == "msec" || u == "ms") return value * 1e-3;
    if (u == "min" || u == "m") return value * 60.0;
    if (u == "hour" || u == "h") return value * 3600.0;
    if (u == "day" || u == "d") return value * 86400.0;
    throw Error("unknown time unit `" + unit + "`");
}

ParsedPattern parse_pattern(std::string_view text) {
    const std::string_view trimmed = trim(text);
    if (trimmed.empty()) throw Error("empty property pattern");
    const std::string folded = lower(trimmed);
    if (folded.rfind("probability of ", 0) == 0) return parse_verbose(trimmed, folded);
    if (folded.front() == 'p') return parse_csl(trimmed);
    throw Error("unrecognized property pattern: `" + std::string(trimmed) + "`");
}

} // namespace slimsim::props
