// slimsim - statistical model checker for SLIM (AADL dialect) models.
//
// Usage:
//   slimsim MODEL.slim --goal EXPR --bound TIME [options]
//
// Estimates P( <> [0,TIME] EXPR ) by Monte Carlo simulation (the paper's
// tool), or exactly via the CTMC flow for untimed models (--ctmc).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "api/analysis.hpp"
#include "eda/network.hpp"
#include <filesystem>
#include <fstream>

#include "support/atomic_file.hpp"

#include "props/pattern.hpp"
#include "support/journal.hpp"
#include "support/metrics_text.hpp"
#include "safety/fmea.hpp"
#include "sim/vcd.hpp"
#include "slim/parser.hpp"
#include "slim/printer.hpp"
#include "slim/summary.hpp"
#include "slim/validate.hpp"

namespace {

using namespace slimsim;

void usage() {
    std::puts(
        "slimsim - statistical model checker for SLIM (AADL dialect) models\n"
        "\n"
        "usage: slimsim MODEL.slim (--goal EXPR --bound TIME | --property PATTERN)\n"
        "               [options]\n"
        "\n"
        "property:\n"
        "  --goal EXPR          Boolean goal over data elements (e.g. 'gps.measurement')\n"
        "  --bound TIME         upper time bound, e.g. '1800', '30 min', '2 hour'\n"
        "  --property PATTERN   one of:\n"
        "                         probability of reaching EXPR within TIME\n"
        "                         probability of reaching EXPR between T1 and T2\n"
        "                         probability of EXPR until EXPR within TIME\n"
        "                         probability of maintaining EXPR for TIME\n"
        "                         P( <> [LO,HI] EXPR ) | P( [] [0,T] EXPR )\n"
        "                         P( (EXPR) U [LO,HI] (EXPR) )\n"
        "\n"
        "analysis (default: Monte Carlo simulation):\n"
        "  --strategy NAME      asap | progressive (default) | local | maxtime | input\n"
        "  --delta D            1 - confidence, in (0,1) (default 0.05)\n"
        "  --eps E              error bound, in (0,1) (default 0.01)\n"
        "  --criterion NAME     ch (default) | gauss | chow-robbins\n"
        "  --seed N             RNG seed (default 1)\n"
        "  --workers K          parallel workers (default 1 = sequential)\n"
        "  --curve U1,U2,...    estimate the whole curve P( <> [0,u] goal ) at the\n"
        "                       given ascending bounds from ONE shared path set\n"
        "  --curve-grid N       same, over a uniform N-point grid up to --bound\n"
        "  --curve-band NAME    simultaneous confidence band over the grid:\n"
        "                       dkw (default) | bonferroni\n"
        "  --curve-csv FILE     also write the curve as CSV\n"
        "                       (header: bound,estimate,successes,samples)\n"
        "  --paths N            print N simulated paths instead of estimating\n"
        "  --deadlock POLICY    falsify (default) | error\n"
        "  --timelock POLICY    falsify (default) | error\n"
        "  --memory POLICY      restart (default) | continue\n"
        "  --ctmc               exhaustive CTMC flow (untimed models only)\n"
        "  --no-minimize        skip bisimulation minimization in the CTMC flow\n"
        "  --test THRESHOLD     qualitative mode: SPRT test of P >= THRESHOLD\n"
        "  --indifference W     SPRT indifference half-width (default 0.01)\n"
        "  --fmea               FMEA table for the failure condition (the goal)\n"
        "\n"
        "rare events (docs/rare-events.md):\n"
        "  --split EXPR         estimate a rare event by fixed importance\n"
        "                       splitting: EXPR is an integer level function\n"
        "                       over data elements that grows toward the goal\n"
        "                       (e.g. 'sys.failed_count')\n"
        "  --split-auto         derive the level function automatically from\n"
        "                       the error-model state profile via a pilot run\n"
        "  --split-factor N     clones per first upward level crossing\n"
        "                       (default 8)\n"
        "  --split-roots N      root paths at level 0 (default 4096)\n"
        "  --split-max-paths N  budget on total simulated paths across all\n"
        "                       levels (default 10000000); on exhaustion the\n"
        "                       partial estimate is returned (exit 0)\n"
        "  --split-pilot N      pilot paths for --split-auto level placement\n"
        "                       (default 256)\n"
        "  --cut-sets K         minimal static cut sets up to order K\n"
        "  --validate           parse, instantiate and validate only\n"
        "  --info               print the instantiated model inventory\n"
        "  --print              print the normalized (pretty-printed) model\n"
        "  --vcd FILE           dump one simulated path as a VCD waveform\n"
        "\n"
        "reporting:\n"
        "  --json FILE          write the structured run report as versioned JSON\n"
        "                       ('-' for stdout; schema: docs/run-report.md)\n"
        "  --report             print the human-readable run report\n"
        "  --no-telemetry       skip engine counters/histograms (identity and\n"
        "                       result sections of the report only)\n"
        "  --compile-stats      print the compiled model's statistics (programs,\n"
        "                       hash-consing dedup, bytecode size, content hash;\n"
        "                       docs/compiled-model.md)\n"
        "\n"
        "observability (docs/tracing.md):\n"
        "  --trace FILE         write a Chrome trace-event JSON timeline of the\n"
        "                       run (open in Perfetto / chrome://tracing)\n"
        "  --witness DIR        save the first accepting and non-accepting paths\n"
        "                       as text + VCD witness files under DIR\n"
        "  --progress           stream live progress (samples, estimate, CI\n"
        "                       half-width, ETA) to stderr while estimating\n"
        "  --coverage [FILE.csv]\n"
        "                       profile model coverage over the accepted paths:\n"
        "                       mode visits and time-in-mode occupancy, transition\n"
        "                       fire counts, strategy decision histograms and the\n"
        "                       coverage-saturation series; warns about unreached\n"
        "                       modes and never-fired transitions; optionally also\n"
        "                       written as CSV (docs/coverage.md)\n"
        "  --metrics-out FILE   write run metrics in Prometheus text exposition\n"
        "                       format (result/coverage gauges + engine counters;\n"
        "                       docs/coverage.md)\n"
        "  --serve-metrics PORT serve live run introspection over HTTP on\n"
        "                       127.0.0.1:PORT while the analysis runs:\n"
        "                       /metrics (Prometheus text), /status (JSON\n"
        "                       progress snapshot), /healthz. PORT 0 binds an\n"
        "                       ephemeral port, printed to stderr\n"
        "                       (docs/observability.md); with --log the server\n"
        "                       also exposes /series (progress time series) and\n"
        "                       /journal?tail=N (journal tail as JSONL)\n"
        "  --log FILE           write a structured run journal as JSONL: run\n"
        "                       lifecycle, stop-criterion marks, checkpoint\n"
        "                       writes, fault quarantines and splitting level\n"
        "                       events (docs/observability.md)\n"
        "  --log-level LEVEL    journal verbosity: info | debug | trace\n"
        "                       (default info; needs --log)\n"
        "\n"
        "run hardening (docs/robustness.md):\n"
        "  --max-seconds T      wall-clock budget; on exhaustion the partial\n"
        "                       estimate is returned with its achieved half-width\n"
        "                       (one-line warning, exit 0)\n"
        "  --max-samples N      accepted-sample budget\n"
        "  --max-steps N        budget on discrete steps over accepted paths\n"
        "  --max-path-steps N   per-path step cap (Zeno guard; default 1000000)\n"
        "  --fault POLICY       failfast (default) | tolerate: a throwing path\n"
        "                       becomes an error-tagged sample instead of\n"
        "                       aborting the run\n"
        "  --max-path-errors N  tolerate only: error samples beyond N stop the\n"
        "                       run as degraded (default 100)\n"
        "  --checkpoint FILE    write a resumable snapshot when the run stops\n"
        "                       (also on SIGINT/SIGTERM and budget exhaustion)\n"
        "  --checkpoint-every N also snapshot every N accepted samples\n"
        "  --resume FILE        continue a checkpointed run; byte-identical to\n"
        "                       the uninterrupted run at any worker count\n"
        "\n"
        "process isolation (docs/supervision.md):\n"
        "  --processes N        run the estimation across N supervised worker\n"
        "                       subprocesses: a worker that crashes, stalls or\n"
        "                       corrupts a frame is killed and restarted, its\n"
        "                       unacknowledged paths reassigned; the result is\n"
        "                       byte-identical to the in-process run at every\n"
        "                       process count and crash schedule\n"
        "  --worker-timeout T   heartbeat deadline before a silent worker is\n"
        "                       declared stalled and replaced (default 10s)\n"
        "  --worker-retries R   restarts per worker slot before the run degrades\n"
        "                       to a partial result (default 3)\n"
        "  --inject KIND@PATH   deterministic fault injection for testing:\n"
        "                       worker-crash@N | worker-stall@N | frame-corrupt@N\n"
        "                       fires when the worker owning global path N\n"
        "                       reaches it (repeatable)\n");
}

/// Validates confidence-style flags at the CLI boundary so a bad value
/// yields one diagnostic naming the flag instead of a bare engine error.
double parse_unit_interval(const std::string& text, const char* flag) {
    double value = 0.0;
    std::size_t used = 0;
    try {
        value = std::stod(text, &used);
    } catch (const std::exception&) {
        used = 0;
    }
    if (used != text.size() || !(value > 0.0 && value < 1.0)) {
        throw Error(std::string(flag) + " expects a value in (0,1), got `" + text + "`");
    }
    return value;
}

/// Integer flags (counts, budgets): one diagnostic naming the flag instead
/// of a bare std::stoul exception or a silently-wrapped negative.
std::uint64_t parse_count(const std::string& text, const char* flag,
                          std::uint64_t min_value = 1) {
    std::uint64_t value = 0;
    std::size_t used = 0;
    try {
        if (text.empty() || text[0] == '-') throw Error("negative");
        value = std::stoull(text, &used);
    } catch (const std::exception&) {
        used = 0;
    }
    if (used != text.size() || value < min_value) {
        throw Error(std::string(flag) + " expects an integer >= " +
                    std::to_string(min_value) + ", got `" + text + "`");
    }
    return value;
}

double parse_duration(const std::string& text) {
    std::istringstream is(text);
    double value = 0.0;
    if (!(is >> value)) throw Error("cannot parse duration `" + text + "`");
    std::string unit;
    is >> unit;
    if (unit.empty() || unit == "sec" || unit == "s") return value;
    if (unit == "msec" || unit == "ms") return value * 1e-3;
    if (unit == "min") return value * 60.0;
    if (unit == "hour" || unit == "h") return value * 3600.0;
    if (unit == "day") return value * 86400.0;
    throw Error("unknown time unit `" + unit + "`");
}

/// Interactive step resolution (the paper's Input strategy).
std::optional<sim::ScheduledChoice> interactive_choice(const eda::Network& net,
                                                       const eda::NetworkState& state,
                                                       std::span<const eda::Candidate> cands,
                                                       double horizon) {
    std::printf("\n-- state: %s\n", sim::describe_state(net, state).c_str());
    std::printf("-- invariant horizon: %g\n", horizon);
    for (std::size_t i = 0; i < cands.size(); ++i) {
        std::printf("  [%zu] %s\n", i, cands[i].describe(net.model()).c_str());
    }
    std::printf("enter: INDEX DELAY (fire candidate after delay), 'd DELAY' (delay only),"
                " or 'q' (give up)\n> ");
    std::fflush(stdout);
    std::string line;
    while (std::getline(std::cin, line)) {
        std::istringstream is(line);
        std::string first;
        if (!(is >> first)) {
            std::printf("> ");
            std::fflush(stdout);
            continue;
        }
        if (first == "q") return std::nullopt;
        if (first == "d") {
            double d = 0.0;
            if (is >> d && d >= 0.0 && d <= horizon) return sim::ScheduledChoice{d, -1};
        } else {
            const int idx = std::atoi(first.c_str());
            double d = 0.0;
            if (!(is >> d)) d = cands.empty() ? 0.0 : 0.0;
            if (idx >= 0 && static_cast<std::size_t>(idx) < cands.size() &&
                cands[static_cast<std::size_t>(idx)].enabled.contains(d)) {
                return sim::ScheduledChoice{d, idx};
            }
        }
        std::printf("invalid input; try again\n> ");
        std::fflush(stdout);
    }
    return std::nullopt;
}

int run(int argc, char** argv) {
    std::string model_path;
    std::string goal_text;
    std::string property_text;
    double bound = -1.0;
    std::string strategy_name = "progressive";
    double delta = 0.05;
    double eps = 0.01;
    std::string criterion_name = "ch";
    std::uint64_t seed = 1;
    std::size_t workers = 1;
    std::size_t trace_paths = 0;
    bool use_ctmc = false;
    bool minimize = true;
    bool validate_only = false;
    bool compile_stats = false;
    double test_threshold = -1.0;
    double indifference = 0.01;
    bool run_fmea = false;
    int cut_set_order = 0;
    bool show_info = false;
    bool print_normalized = false;
    std::string vcd_path;
    std::string json_path;
    std::string trace_path;
    std::string witness_dir;
    std::string curve_list;
    std::size_t curve_grid = 0;
    std::string curve_band_name = "dkw";
    std::string curve_csv_path;
    bool show_progress = false;
    bool show_report = false;
    bool telemetry = true;
    bool coverage = false;
    std::string coverage_csv_path;
    std::string metrics_path;
    std::string log_path;
    std::string log_level_name;
    bool serve_enabled = false;
    std::uint64_t serve_port = 0;
    std::string checkpoint_path;
    std::string resume_path;
    std::uint64_t checkpoint_every = 0;
    std::string split_level;
    bool split_auto = false;
    std::size_t split_factor = 8;
    std::size_t split_roots = 4096;
    std::size_t split_max_paths = 10'000'000;
    std::size_t split_pilot = 256;
    std::size_t processes = 0;
    double worker_timeout = 10.0;
    std::uint64_t worker_retries = 3;
    bool worker_timeout_set = false;
    bool worker_retries_set = false;
    std::vector<sim::supervise::FaultInjection> injections;
    sim::RunBudget budget;
    sim::FaultPolicy fault;
    sim::SimOptions sim_options;

    auto need_value = [&](int& i, const char* flag) -> std::string {
        if (i + 1 >= argc) throw Error(std::string("missing value for ") + flag);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--goal") {
            goal_text = need_value(i, "--goal");
        } else if (arg == "--bound") {
            bound = parse_duration(need_value(i, "--bound"));
        } else if (arg == "--property") {
            property_text = need_value(i, "--property");
        } else if (arg == "--strategy") {
            strategy_name = need_value(i, "--strategy");
        } else if (arg == "--delta") {
            delta = parse_unit_interval(need_value(i, "--delta"), "--delta");
        } else if (arg == "--eps") {
            eps = parse_unit_interval(need_value(i, "--eps"), "--eps");
        } else if (arg == "--criterion") {
            criterion_name = need_value(i, "--criterion");
        } else if (arg == "--seed") {
            seed = parse_count(need_value(i, "--seed"), "--seed", 0);
        } else if (arg == "--workers") {
            workers = parse_count(need_value(i, "--workers"), "--workers");
        } else if (arg == "--processes") {
            processes = parse_count(need_value(i, "--processes"), "--processes");
        } else if (arg == "--worker-timeout") {
            worker_timeout = parse_duration(need_value(i, "--worker-timeout"));
            if (worker_timeout <= 0.0) {
                throw Error("--worker-timeout expects a positive duration");
            }
            worker_timeout_set = true;
        } else if (arg == "--worker-retries") {
            worker_retries = parse_count(need_value(i, "--worker-retries"),
                                         "--worker-retries", 0);
            worker_retries_set = true;
        } else if (arg == "--inject") {
            injections.push_back(
                sim::supervise::parse_injection(need_value(i, "--inject")));
        } else if (arg == "--curve") {
            curve_list = need_value(i, "--curve");
        } else if (arg == "--curve-grid") {
            curve_grid = parse_count(need_value(i, "--curve-grid"), "--curve-grid");
        } else if (arg == "--curve-band") {
            curve_band_name = need_value(i, "--curve-band");
        } else if (arg == "--curve-csv") {
            curve_csv_path = need_value(i, "--curve-csv");
        } else if (arg == "--paths") {
            trace_paths = parse_count(need_value(i, "--paths"), "--paths");
        } else if (arg == "--max-seconds") {
            budget.max_wall_seconds = parse_duration(need_value(i, "--max-seconds"));
            if (budget.max_wall_seconds <= 0.0) {
                throw Error("--max-seconds expects a positive duration");
            }
        } else if (arg == "--max-samples") {
            budget.max_samples = parse_count(need_value(i, "--max-samples"),
                                             "--max-samples");
        } else if (arg == "--max-steps") {
            budget.max_total_steps = parse_count(need_value(i, "--max-steps"),
                                                 "--max-steps");
        } else if (arg == "--max-path-steps") {
            sim_options.max_steps = parse_count(need_value(i, "--max-path-steps"),
                                                "--max-path-steps");
        } else if (arg == "--fault") {
            const std::string policy = need_value(i, "--fault");
            if (policy == "tolerate") {
                fault.kind = sim::FaultPolicyKind::Tolerate;
            } else if (policy != "failfast") {
                throw Error("--fault expects failfast | tolerate, got `" + policy + "`");
            }
        } else if (arg == "--max-path-errors") {
            fault.max_path_errors =
                parse_count(need_value(i, "--max-path-errors"), "--max-path-errors", 0);
        } else if (arg == "--checkpoint") {
            checkpoint_path = need_value(i, "--checkpoint");
        } else if (arg == "--checkpoint-every") {
            checkpoint_every = parse_count(need_value(i, "--checkpoint-every"),
                                           "--checkpoint-every");
        } else if (arg == "--resume") {
            resume_path = need_value(i, "--resume");
        } else if (arg == "--trace") {
            trace_path = need_value(i, "--trace");
        } else if (arg == "--witness") {
            witness_dir = need_value(i, "--witness");
        } else if (arg == "--progress") {
            show_progress = true;
        } else if (arg == "--coverage") {
            coverage = true;
            // The CSV path is optional; only a *.csv value is consumed so a
            // following flag or model path is never swallowed.
            if (i + 1 < argc) {
                const std::string next = argv[i + 1];
                if (next.size() > 4 && next.substr(next.size() - 4) == ".csv") {
                    coverage_csv_path = argv[++i];
                }
            }
        } else if (arg == "--metrics-out") {
            metrics_path = need_value(i, "--metrics-out");
        } else if (arg == "--log") {
            log_path = need_value(i, "--log");
        } else if (arg == "--log-level") {
            log_level_name = need_value(i, "--log-level");
        } else if (arg == "--serve-metrics") {
            serve_enabled = true;
            serve_port = parse_count(need_value(i, "--serve-metrics"),
                                     "--serve-metrics", 0);
            if (serve_port > 65535) {
                throw Error("--serve-metrics: port must be in [0, 65535]");
            }
        } else if (arg == "--split") {
            split_level = need_value(i, "--split");
        } else if (arg == "--split-auto") {
            split_auto = true;
        } else if (arg == "--split-factor") {
            split_factor = parse_count(need_value(i, "--split-factor"), "--split-factor");
        } else if (arg == "--split-roots") {
            split_roots = parse_count(need_value(i, "--split-roots"), "--split-roots");
        } else if (arg == "--split-max-paths") {
            split_max_paths = parse_count(need_value(i, "--split-max-paths"),
                                          "--split-max-paths");
        } else if (arg == "--split-pilot") {
            split_pilot = parse_count(need_value(i, "--split-pilot"), "--split-pilot");
        } else if (arg == "--ctmc") {
            use_ctmc = true;
        } else if (arg == "--test") {
            test_threshold = std::stod(need_value(i, "--test"));
        } else if (arg == "--indifference") {
            indifference = std::stod(need_value(i, "--indifference"));
        } else if (arg == "--fmea") {
            run_fmea = true;
        } else if (arg == "--cut-sets") {
            cut_set_order =
                static_cast<int>(parse_count(need_value(i, "--cut-sets"), "--cut-sets"));
        } else if (arg == "--no-minimize") {
            minimize = false;
        } else if (arg == "--compile-stats") {
            compile_stats = true;
        } else if (arg == "--validate") {
            validate_only = true;
        } else if (arg == "--info") {
            show_info = true;
        } else if (arg == "--print") {
            print_normalized = true;
        } else if (arg == "--vcd") {
            vcd_path = need_value(i, "--vcd");
        } else if (arg == "--json") {
            json_path = need_value(i, "--json");
        } else if (arg == "--report") {
            show_report = true;
        } else if (arg == "--no-telemetry") {
            telemetry = false;
        } else if (arg == "--deadlock") {
            sim_options.deadlock = need_value(i, "--deadlock") == std::string("error")
                                       ? sim::StuckPolicy::Error
                                       : sim::StuckPolicy::Falsify;
        } else if (arg == "--timelock") {
            sim_options.timelock = need_value(i, "--timelock") == std::string("error")
                                       ? sim::StuckPolicy::Error
                                       : sim::StuckPolicy::Falsify;
        } else if (arg == "--memory") {
            sim_options.memory = need_value(i, "--memory") == std::string("continue")
                                     ? sim::MemoryPolicy::Continue
                                     : sim::MemoryPolicy::Restart;
        } else if (!arg.empty() && arg[0] == '-') {
            throw Error("unknown option `" + arg + "` (see --help)");
        } else if (model_path.empty()) {
            model_path = arg;
        } else {
            throw Error("unexpected argument `" + arg + "`");
        }
    }

    if (model_path.empty()) {
        usage();
        return 2;
    }

    if (print_normalized) {
        std::ifstream in(model_path);
        if (!in) throw Error("cannot open model file `" + model_path + "`");
        std::ostringstream buf;
        buf << in.rdbuf();
        std::fputs(slim::print_model(slim::parse_model(buf.str(), model_path)).c_str(),
                   stdout);
        return 0;
    }

    eda::LoadPhases load_phases;
    const eda::Network net = eda::build_network_from_file(model_path, &load_phases);
    const auto& m = net.model();
    std::printf("model: %zu instances, %zu processes, %zu variables, %zu sync actions\n",
                m.instances.size(), m.processes.size(), m.vars.size(), m.actions.size());
    for (const auto& d : slim::validate(m)) {
        std::fprintf(stderr, "%s\n", d.to_string().c_str());
    }
    if (compile_stats) {
        const eda::CompiledModelPtr& cm = net.compiled();
        const eda::CompileStats& cs = cm->stats();
        std::printf("compiled model: %zu programs (%zu unique after hash-consing), "
                    "%zu nodes, %zu bytecode bytes\n",
                    cs.programs, cs.unique_programs, cs.nodes, cs.bytecode_bytes);
        std::printf("content hash: %016llx\n",
                    static_cast<unsigned long long>(cm->content_hash()));
    }
    if (show_info) {
        std::fputs(slim::model_summary(m).c_str(), stdout);
        return 0;
    }
    if (validate_only) {
        std::puts("validation ok");
        return 0;
    }

    sim::PathFormula prop;
    if (!property_text.empty()) {
        const props::ParsedPattern pat = props::parse_pattern(property_text);
        switch (pat.kind) {
        case props::PatternKind::Reach:
            prop = sim::make_reachability_interval(m, pat.goal_text, pat.lo, pat.bound);
            break;
        case props::PatternKind::Until:
            prop = sim::make_until(m, pat.hold_text, pat.goal_text, pat.lo, pat.bound);
            break;
        case props::PatternKind::Globally:
            prop = sim::make_globally(m, pat.goal_text, pat.bound);
            break;
        }
        bound = pat.bound;
    } else {
        if (goal_text.empty() || bound <= 0.0) {
            throw Error("a property is required: --goal EXPR --bound TIME (or --property)");
        }
        prop = sim::make_reachability(m, goal_text, bound);
    }

    if (!vcd_path.empty()) {
        const auto kind = sim::strategy_from_string(strategy_name);
        if (!kind) throw Error("unknown strategy `" + strategy_name + "`");
        auto strat = sim::make_strategy(*kind);
        const sim::PathGenerator gen(net, prop, *strat, sim_options);
        std::ofstream out(vcd_path);
        if (!out) throw Error("cannot open `" + vcd_path + "` for writing");
        Rng rng(seed);
        const sim::PathOutcome res = sim::write_vcd(gen, rng, out);
        std::printf("wrote %s: path %s (%s) after %zu steps, t=%g\n", vcd_path.c_str(),
                    res.satisfied ? "SATISFIED" : "not satisfied",
                    sim::to_string(res.terminal).c_str(), res.steps, res.end_time);
        return 0;
    }

    if (trace_paths > 0 || strategy_name == "input") {
        std::unique_ptr<sim::Strategy> strat;
        if (strategy_name == "input") {
            strat = sim::make_input_strategy(interactive_choice);
        } else {
            const auto kind = sim::strategy_from_string(strategy_name);
            if (!kind) throw Error("unknown strategy `" + strategy_name + "`");
            strat = sim::make_strategy(*kind);
        }
        const sim::PathGenerator gen(net, prop, *strat, sim_options);
        Rng rng(seed);
        const std::size_t n = trace_paths == 0 ? 1 : trace_paths;
        for (std::size_t i = 0; i < n; ++i) {
            sim::Trace trace;
            const sim::PathOutcome out = gen.run_traced(rng, trace);
            std::printf("--- path %zu: %s (%s) after %zu steps, t=%g\n", i + 1,
                        out.satisfied ? "SATISFIED" : "not satisfied",
                        sim::to_string(out.terminal).c_str(), out.steps, out.end_time);
            std::fputs(trace.to_string().c_str(), stdout);
        }
        return 0;
    }

    const auto kind = sim::strategy_from_string(strategy_name);
    if (!kind) throw Error("unknown strategy `" + strategy_name + "`");

    if (cut_set_order > 0) {
        const auto sets = safety::minimal_cut_sets(net, prop.goal, cut_set_order);
        std::printf("minimal cut sets (order <= %d) for `%s`:\n%s(%zu sets)\n",
                    cut_set_order, prop.text.c_str(),
                    safety::format_cut_sets(sets).c_str(), sets.size());
        if (!run_fmea) return 0;
    }
    if (run_fmea) {
        safety::FmeaOptions fo;
        fo.delta = delta;
        fo.eps = eps;
        fo.strategy = *kind;
        fo.sim = sim_options;
        const auto rows = safety::fmea(net, prop.goal, prop.bound, seed, fo);
        std::fputs(safety::format_fmea(rows).c_str(), stdout);
        return 0;
    }

    // Everything below is a proper analysis: one AnalysisRequest, one
    // run_analysis() call, one structured run report.
    AnalysisRequest req;
    req.property = prop;
    req.model_label = model_path;
    req.strategy = *kind;
    req.delta = delta;
    req.eps = eps;
    req.seed = seed;
    req.sim = sim_options;
    req.telemetry = telemetry;
    req.frontend_phases = {{"parse", load_phases.parse_seconds},
                           {"instantiate", load_phases.instantiate_seconds}};

    if (criterion_name == "gauss") {
        req.criterion = stat::CriterionKind::Gauss;
    } else if (criterion_name == "chow-robbins") {
        req.criterion = stat::CriterionKind::ChowRobbins;
    } else if (criterion_name != "ch" && criterion_name != "chernoff-hoeffding") {
        throw Error("unknown criterion `" + criterion_name + "`");
    }

    // Curve mode: a grid of bounds, all estimated from one shared path set.
    if (!curve_list.empty() && curve_grid > 0) {
        throw Error("--curve and --curve-grid are mutually exclusive");
    }
    if (!curve_list.empty()) {
        std::stringstream items(curve_list);
        std::string item;
        while (std::getline(items, item, ',')) {
            if (!item.empty()) req.curve_bounds.push_back(parse_duration(item));
        }
        if (req.curve_bounds.empty()) throw Error("--curve expects at least one bound");
    } else if (curve_grid > 0) {
        for (std::size_t i = 1; i <= curve_grid; ++i) {
            req.curve_bounds.push_back(prop.bound * static_cast<double>(i) /
                                       static_cast<double>(curve_grid));
        }
    }
    // Rare-event splitting mode (docs/rare-events.md).
    const bool splitting_mode = split_auto || !split_level.empty();
    if (split_auto && !split_level.empty()) {
        throw Error("--split and --split-auto are mutually exclusive");
    }
    if (splitting_mode && (use_ctmc || test_threshold >= 0.0)) {
        throw Error("--split is an estimation mode (not --ctmc / --test)");
    }
    if (splitting_mode && !witness_dir.empty()) {
        throw Error("--split cannot be combined with witness capture");
    }

    if (!req.curve_bounds.empty()) {
        if (use_ctmc || test_threshold >= 0.0) {
            throw Error("--curve is an estimation mode (not --ctmc / --test)");
        }
        if (splitting_mode) {
            throw Error("--split cannot be combined with curve estimation");
        }
        if (curve_band_name == "bonferroni") {
            req.curve_band = stat::BandKind::Bonferroni;
        } else if (curve_band_name != "dkw") {
            throw Error("unknown curve band `" + curve_band_name +
                        "` (dkw | bonferroni)");
        }
    } else if (!curve_csv_path.empty()) {
        throw Error("--curve-csv needs --curve or --curve-grid");
    }

    if (coverage && (use_ctmc || test_threshold >= 0.0 || splitting_mode)) {
        throw Error("--coverage is an estimation-mode option (not --ctmc / --test / "
                    "--split; --split-auto fills the report's coverage section from "
                    "the pilot run)");
    }
    req.coverage = coverage;

    // Process-isolated supervision (docs/supervision.md).
    if (processes == 0 &&
        (worker_timeout_set || worker_retries_set || !injections.empty())) {
        throw Error("--worker-timeout, --worker-retries and --inject need "
                    "--processes N");
    }
    if (processes > 0) {
        if (use_ctmc || test_threshold >= 0.0 || splitting_mode) {
            throw Error("--processes is an estimation-mode option (not --ctmc / "
                        "--test / --split)");
        }
        if (coverage) throw Error("--processes cannot be combined with --coverage");
        if (!witness_dir.empty()) {
            throw Error("--processes cannot be combined with --witness");
        }
        if (!trace_path.empty()) {
            throw Error("--processes cannot be combined with --trace");
        }
        req.supervision.processes = processes;
        req.supervision.worker_timeout_seconds = worker_timeout;
        req.supervision.worker_retries = worker_retries;
        req.supervision.injections = injections;
        req.supervision.model_path = model_path;
    }

    if (use_ctmc) {
        req.mode = AnalysisMode::CtmcFlow;
        req.flow.minimize = minimize;
    } else if (test_threshold >= 0.0) {
        req.mode = AnalysisMode::HypothesisTest;
        req.threshold = test_threshold;
        req.indifference = indifference;
    } else if (splitting_mode) {
        req.mode = AnalysisMode::EstimateSplitting;
        req.workers = workers;
        req.splitting.level = split_level;
        req.splitting.auto_levels = split_auto;
        req.splitting.factor = split_factor;
        req.splitting.base_runs = split_roots;
        req.splitting.max_total_paths = split_max_paths;
        req.splitting.pilot_runs = split_pilot;
    } else if (workers > 1) {
        req.mode = AnalysisMode::EstimateParallel;
        req.workers = workers;
    } else {
        req.mode = AnalysisMode::Estimate;
    }

    // Run hardening (docs/robustness.md): budgets, fault policy,
    // checkpoint/resume and cooperative SIGINT/SIGTERM interruption.
    const bool hardening = budget.active() ||
                           fault.kind == sim::FaultPolicyKind::Tolerate ||
                           !checkpoint_path.empty() || checkpoint_every > 0 ||
                           !resume_path.empty();
    if (hardening && (use_ctmc || test_threshold >= 0.0)) {
        throw Error("--max-seconds/--max-samples/--max-steps, --fault, --checkpoint "
                    "and --resume are estimation-mode options (not --ctmc / --test)");
    }
    if (checkpoint_every > 0 && checkpoint_path.empty()) {
        throw Error("--checkpoint-every needs --checkpoint FILE");
    }
    if (splitting_mode &&
        (!checkpoint_path.empty() || checkpoint_every > 0 || !resume_path.empty())) {
        throw Error("--split does not support --checkpoint / --resume");
    }
    if (!resume_path.empty() && coverage) {
        throw Error("--resume cannot be combined with --coverage");
    }
    if (!resume_path.empty() && !witness_dir.empty()) {
        throw Error("--resume cannot be combined with --witness");
    }
    sim::RunControlOptions& control = req.sim.control;
    control.budget = budget;
    control.fault = fault;
    control.checkpoint_path = checkpoint_path;
    control.checkpoint_every = checkpoint_every;
    std::optional<sim::RunCheckpoint> resume_ck; // must outlive run_analysis
    if (!checkpoint_path.empty() || !resume_path.empty()) {
        // The compiled model's content hash (not a file-byte hash): resuming
        // accepts reformatted model files and rejects behavioral changes.
        control.model_hash = net.compiled()->content_hash();
    }
    if (!resume_path.empty()) {
        resume_ck = sim::RunCheckpoint::load(resume_path);
        control.resume = &*resume_ck;
    }
    if (req.mode == AnalysisMode::Estimate ||
        req.mode == AnalysisMode::EstimateParallel ||
        req.mode == AnalysisMode::EstimateSplitting) {
        sim::install_signal_handlers();
        control.interrupt = sim::interrupt_flag();
    }

    // Live metrics registry (docs/observability.md): one shard per worker so
    // the hot path stays contention-free. --metrics-out and --serve-metrics
    // share it — file and HTTP expositions are one code path. Must outlive
    // run_analysis (the engines hold instrument pointers into it).
    std::optional<metrics::Registry> registry;
    if (serve_enabled || !metrics_path.empty()) {
        registry.emplace(
            std::max({std::size_t{1}, workers, processes}));
        req.metrics = &*registry;
    }
    // Structured run journal (docs/observability.md). The journal must
    // outlive run_analysis (the engines hold a pointer into it).
    if (!log_level_name.empty() && log_path.empty()) {
        throw Error("--log-level needs --log FILE");
    }
    std::optional<journal::Journal> journal_store;
    support::AtomicFile log_file;
    if (!log_path.empty()) {
        log_file.open(log_path, "--log");
        journal_store.emplace(log_level_name.empty()
                                  ? journal::Level::Info
                                  : journal::parse_level(log_level_name));
        req.journal = &*journal_store;
    }
    if (serve_enabled) {
        req.serve.enabled = true;
        req.serve.port = static_cast<std::uint16_t>(serve_port);
        req.serve.on_bound = [](std::uint16_t port) {
            std::fprintf(stderr, "serving metrics on http://127.0.0.1:%u/metrics\n",
                         static_cast<unsigned>(port));
        };
    }

    // Open the output files / directories up front so a bad path fails
    // before the analysis runs. All run artifacts stream into a temp file
    // and are renamed over the final name only when complete
    // (support/atomic_file.hpp): a crash mid-run never leaves a torn
    // artifact behind a trusted path.
    support::AtomicFile json_file;
    if (!json_path.empty() && json_path != "-") {
        json_file.open(json_path, "--json");
    }
    support::AtomicFile curve_csv_file;
    if (!curve_csv_path.empty()) {
        curve_csv_file.open(curve_csv_path, "--curve-csv");
    }
    support::AtomicFile coverage_csv_file;
    if (!coverage_csv_path.empty()) {
        coverage_csv_file.open(coverage_csv_path, "--coverage");
    }
    support::AtomicFile metrics_file;
    if (!metrics_path.empty()) {
        metrics_file.open(metrics_path, "--metrics-out");
    }
    support::AtomicFile trace_file;
    tracer::Tracer tracer(tracer::Tracer::Options{!trace_path.empty(), 1 << 16});
    if (!trace_path.empty()) {
        trace_file.open(trace_path, "--trace");
        req.tracer = &tracer;
    }
    if (!witness_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(witness_dir, ec);
        if (ec) {
            throw Error("cannot create witness directory `" + witness_dir +
                        "`: " + ec.message());
        }
        req.witness.per_kind = 2;
    }
    if (show_progress) {
        req.progress.callback = [](const sim::ProgressSnapshot& p) {
            std::string eta = "?";
            if (p.eta_seconds >= 0.0) {
                char buf[32];
                std::snprintf(buf, sizeof buf, "%.1fs", p.eta_seconds);
                eta = buf;
            }
            std::fprintf(stderr,
                         "\r%12llu samples   p^ = %.6f +- %.6f   elapsed %.1fs   eta %s   ",
                         static_cast<unsigned long long>(p.samples), p.estimate,
                         p.half_width, p.elapsed_seconds, eta.c_str());
        };
    }

    const AnalysisResult res = run_analysis(net, req);
    if (show_progress) std::fputc('\n', stderr);

    if (!trace_path.empty()) {
        trace_file.stream() << tracer.to_chrome_json().dump(1) << "\n";
        trace_file.commit();
        std::printf("wrote execution trace %s (open in Perfetto / chrome://tracing)\n",
                    trace_path.c_str());
    }
    if (!witness_dir.empty()) {
        // Witness export: text from the replayed trace, VCD by replaying the
        // captured pre-path RNG state once more through the VCD writer.
        auto witness_strat = sim::make_strategy(*kind);
        const sim::PathGenerator witness_gen(net, prop, *witness_strat, sim_options);
        std::size_t n_accepting = 0;
        std::size_t n_rejecting = 0;
        for (const sim::Witness& w : res.estimation.witnesses) {
            const bool acc = w.outcome.satisfied;
            const std::string base =
                witness_dir + "/" + (acc ? "accepting-" : "rejecting-") +
                std::to_string(acc ? ++n_accepting : ++n_rejecting);
            std::ofstream text(base + ".txt");
            if (!text) throw Error("cannot open `" + base + ".txt` for writing");
            text << "# slimsim witness path\n"
                 << "# model: " << model_path << "\n"
                 << "# property: " << prop.text << "\n"
                 << "# worker " << w.worker << ", path " << w.path_index
                 << ", terminal " << sim::to_string(w.outcome.terminal) << ", "
                 << (acc ? "satisfied" : "not satisfied") << ", " << w.outcome.steps
                 << " steps, end t=" << w.outcome.end_time << "\n"
                 << w.trace.to_string();
            std::ofstream vcd(base + ".vcd");
            if (!vcd) throw Error("cannot open `" + base + ".vcd` for writing");
            Rng replay_rng = w.rng;
            (void)sim::write_vcd(witness_gen, replay_rng, vcd);
        }
        std::printf("wrote %zu witness path(s) (%zu accepting, %zu non-accepting) to %s\n",
                    res.estimation.witnesses.size(), n_accepting, n_rejecting,
                    witness_dir.c_str());
    }
    if (!curve_csv_path.empty()) {
        curve_csv_file.stream() << "bound,estimate,successes,samples\n";
        for (const auto& p : res.curve.points) {
            curve_csv_file.stream() << p.bound << ',' << p.estimate << ','
                                    << p.successes << ',' << res.curve.samples << '\n';
        }
        curve_csv_file.commit();
        std::printf("wrote curve CSV %s (%zu bounds)\n", curve_csv_path.c_str(),
                    res.curve.points.size());
    }
    if (compile_stats) {
        // Runtime companion of the compile-time summary printed at load: how
        // many distinct discrete configurations the workers interned.
        for (const auto& [name, n] : res.report.counters) {
            if (name == "sim.interned_states") {
                std::printf("interned discrete states: %llu\n",
                            static_cast<unsigned long long>(n));
            }
        }
    }
    std::printf("%s\n", res.to_string().c_str());
    if (req.mode == AnalysisMode::Estimate ||
        req.mode == AnalysisMode::EstimateParallel ||
        req.mode == AnalysisMode::EstimateSplitting) {
        // A budget, signal or error-budget stop is a *partial* result, not a
        // failure: one warning line, exit 0 (docs/robustness.md).
        const bool curve_mode = !res.curve.points.empty();
        const bool split_mode = req.mode == AnalysisMode::EstimateSplitting;
        const sim::RunStatus status =
            split_mode ? res.splitting.status
            : curve_mode ? res.curve.status
                         : res.estimation.status;
        const std::string& cause =
            split_mode ? res.splitting.stop_cause
            : curve_mode ? res.curve.stop_cause
                         : res.estimation.stop_cause;
        if (status != sim::RunStatus::Converged) {
            std::fprintf(stderr, "warning: run %s: %s\n",
                         sim::to_string(status).c_str(), cause.c_str());
        }
        if (!checkpoint_path.empty()) {
            std::printf("wrote checkpoint %s (continue with --resume %s)\n",
                        checkpoint_path.c_str(), checkpoint_path.c_str());
        }
    }
    if (coverage) {
        std::fputs(res.coverage.summary_text().c_str(), stdout);
        if (!coverage_csv_path.empty()) {
            coverage_csv_file.stream() << res.coverage.to_csv();
            coverage_csv_file.commit();
            std::printf("wrote coverage CSV %s\n", coverage_csv_path.c_str());
        }
    }
    if (!metrics_path.empty()) {
        metrics_file.stream() << telemetry::prometheus_text(res.report, req.metrics);
        metrics_file.commit();
        std::printf("wrote Prometheus metrics %s\n", metrics_path.c_str());
    }
    if (journal_store) {
        log_file.stream() << journal_store->to_jsonl(false);
        log_file.commit();
        std::printf("wrote run journal %s (%zu events", log_path.c_str(),
                    journal_store->size());
        if (journal_store->dropped() > 0) {
            std::printf(", %llu dropped past ring capacity",
                        static_cast<unsigned long long>(journal_store->dropped()));
        }
        std::puts(")");
    }
    if (show_report) std::fputs(res.report.to_text().c_str(), stdout);
    if (!json_path.empty()) {
        const std::string doc = res.report.to_json().dump(2) + "\n";
        if (json_path == "-") {
            std::fputs(doc.c_str(), stdout);
        } else {
            json_file.stream() << doc;
            json_file.commit();
        }
    }
    if (req.mode == AnalysisMode::HypothesisTest &&
        res.hypothesis.verdict == sim::HypothesisVerdict::Inconclusive) {
        return 3;
    }
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    // Supervised-run worker entry (docs/supervision.md): the coordinator
    // execs `slimsim --worker-mode FD` with a socketpair end on FD. Checked
    // before anything else so no CLI plumbing runs in worker subprocesses.
    if (argc >= 3 && std::strcmp(argv[1], "--worker-mode") == 0) {
        return slimsim::sim::supervise::run_worker_mode(std::atoi(argv[2]));
    }
    try {
        return run(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
