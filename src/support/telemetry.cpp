#include "support/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <tuple>

namespace slimsim::telemetry {

void Histogram::add(std::uint64_t value) {
    const std::size_t bucket = value == 0 ? 0 : std::bit_width(value);
    buckets_[std::min(bucket, kBuckets - 1)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

std::string Histogram::bucket_label(std::size_t bucket) {
    if (bucket == 0) return "0";
    if (bucket == 1) return "1";
    const std::uint64_t lo = std::uint64_t{1} << (bucket - 1);
    const std::uint64_t hi = (std::uint64_t{1} << bucket) - 1;
    return std::to_string(lo) + "-" + std::to_string(hi);
}

std::vector<std::pair<std::string, std::uint64_t>> Histogram::bins() const {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        const std::uint64_t n = buckets_[b].load(std::memory_order_relaxed);
        if (n > 0) out.emplace_back(bucket_label(b), n);
    }
    return out;
}

template <typename T>
T& Recorder::lookup(std::deque<std::pair<std::string, T>>& registry,
                    std::string_view name) {
    std::lock_guard lock(mutex_);
    for (auto& [n, instrument] : registry) {
        if (n == name) return instrument;
    }
    // Instruments hold atomics (immovable): construct the pair in place.
    registry.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                          std::forward_as_tuple());
    return registry.back().second;
}

Counter& Recorder::counter(std::string_view name) { return lookup(counters_, name); }
Timer& Recorder::timer(std::string_view name) { return lookup(timers_, name); }
Histogram& Recorder::histogram(std::string_view name) { return lookup(histograms_, name); }

std::vector<std::pair<std::string, std::uint64_t>> Recorder::counters() const {
    std::lock_guard lock(mutex_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::pair<std::string, double>> Recorder::timers() const {
    std::lock_guard lock(mutex_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(timers_.size());
    for (const auto& [name, t] : timers_) out.emplace_back(name, t.seconds());
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::pair<std::string, const Histogram*>> Recorder::histograms() const {
    std::lock_guard lock(mutex_);
    std::vector<std::pair<std::string, const Histogram*>> out;
    out.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) out.emplace_back(name, &h);
    std::sort(out.begin(), out.end());
    return out;
}

namespace {

/// CSV field quoting: always quoted, internal quotes doubled (RFC 4180), so
/// element names containing commas or spaces stay one column.
std::string csv_quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
    }
    out += "\"";
    return out;
}

} // namespace

std::uint64_t CoverageReport::covered_elements() const {
    std::uint64_t n = 0;
    for (const auto& m : modes) n += covered(m) ? 1 : 0;
    for (const auto& t : transitions) n += t.fires > 0 ? 1 : 0;
    return n;
}

std::vector<std::string> CoverageReport::unreached_modes() const {
    std::vector<std::string> out;
    for (const auto& m : modes) {
        if (!covered(m)) out.push_back(m.name);
    }
    return out;
}

std::vector<std::string> CoverageReport::never_fired_transitions() const {
    std::vector<std::string> out;
    for (const auto& t : transitions) {
        if (t.fires == 0) out.push_back(t.name);
    }
    return out;
}

json::Value CoverageReport::to_json() const {
    json::Value doc = json::Value::object();
    doc["paths"] = paths;
    json::Value elements = json::Value::object();
    elements["total"] = total_elements();
    elements["covered"] = covered_elements();
    doc["elements"] = std::move(elements);

    json::Value ms = json::Value::array();
    for (const auto& m : modes) {
        json::Value entry = json::Value::object();
        entry["name"] = m.name;
        entry["visits"] = m.visits;
        entry["occupancy_seconds"] = m.occupancy_seconds;
        ms.push_back(std::move(entry));
    }
    doc["modes"] = std::move(ms);

    json::Value ts = json::Value::array();
    for (const auto& t : transitions) {
        json::Value entry = json::Value::object();
        entry["name"] = t.name;
        entry["fires"] = t.fires;
        entry["error_event"] = t.error_event;
        ts.push_back(std::move(entry));
    }
    doc["transitions"] = std::move(ts);

    json::Value cps = json::Value::array();
    for (const auto& cp : choice_points) {
        json::Value entry = json::Value::object();
        entry["key"] = cp.key;
        entry["decisions"] = cp.decisions;
        json::Value alts = json::Value::array();
        for (const auto& a : cp.alternatives) {
            json::Value alt = json::Value::object();
            alt["name"] = a.name;
            alt["count"] = a.count;
            alts.push_back(std::move(alt));
        }
        entry["alternatives"] = std::move(alts);
        cps.push_back(std::move(entry));
    }
    doc["choice_points"] = std::move(cps);

    json::Value sat = json::Value::array();
    for (const auto& p : saturation) {
        json::Value entry = json::Value::object();
        entry["paths"] = p.paths;
        entry["covered"] = p.covered;
        sat.push_back(std::move(entry));
    }
    doc["saturation"] = std::move(sat);

    json::Value unreached = json::Value::array();
    for (const auto& name : unreached_modes()) unreached.push_back(name);
    doc["unreached_modes"] = std::move(unreached);
    json::Value never = json::Value::array();
    for (const auto& name : never_fired_transitions()) never.push_back(name);
    doc["never_fired_transitions"] = std::move(never);
    return doc;
}

std::string CoverageReport::to_csv() const {
    std::string out = "kind,name,count,occupancy_seconds\n";
    for (const auto& m : modes) {
        out += "mode," + csv_quote(m.name) + "," + std::to_string(m.visits) + "," +
               json::format_double(m.occupancy_seconds) + "\n";
    }
    for (const auto& t : transitions) {
        out += std::string(t.error_event ? "error-event," : "transition,") +
               csv_quote(t.name) + "," + std::to_string(t.fires) + ",\n";
    }
    for (const auto& cp : choice_points) {
        for (const auto& a : cp.alternatives) {
            out += "decision," + csv_quote(cp.key + " => " + a.name) + "," +
                   std::to_string(a.count) + ",\n";
        }
    }
    for (const auto& p : saturation) {
        out += "saturation," + csv_quote("paths=" + std::to_string(p.paths)) + "," +
               std::to_string(p.covered) + ",\n";
    }
    return out;
}

std::string CoverageReport::summary_text() const {
    std::ostringstream os;
    std::uint64_t modes_covered = 0;
    for (const auto& m : modes) modes_covered += covered(m) ? 1 : 0;
    std::uint64_t fired = 0;
    std::uint64_t decisions = 0;
    for (const auto& t : transitions) fired += t.fires > 0 ? 1 : 0;
    for (const auto& cp : choice_points) decisions += cp.decisions;
    os << "coverage: " << covered_elements() << "/" << total_elements()
       << " elements over " << paths << " paths (" << modes_covered << "/" << modes.size()
       << " modes, " << fired << "/" << transitions.size() << " transitions)\n";
    os << "  choice points: " << choice_points.size() << " (" << decisions
       << " strategy decisions)\n";
    const auto unreached = unreached_modes();
    if (!unreached.empty()) {
        os << "  warning: " << unreached.size() << " mode(s) never reached:\n";
        for (const auto& name : unreached) os << "    " << name << "\n";
    }
    const auto never = never_fired_transitions();
    if (!never.empty()) {
        os << "  warning: " << never.size() << " transition(s) never fired:\n";
        for (const auto& name : never) os << "    " << name << "\n";
    }
    if (unreached.empty() && never.empty()) {
        os << "  all modes reached and all transitions fired\n";
    }
    return os.str();
}

void RunReport::absorb(const Recorder& recorder) {
    for (const auto& entry : recorder.counters()) counters.push_back(entry);
    std::sort(counters.begin(), counters.end());
    for (const auto& entry : recorder.timers()) timers.push_back(entry);
    std::sort(timers.begin(), timers.end());
    for (const auto& [name, h] : recorder.histograms()) {
        histograms.emplace_back(name, h->bins());
    }
    std::sort(histograms.begin(), histograms.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
}

json::Value RunReport::to_json() const {
    json::Value doc = json::Value::object();
    doc["schema"] = "slimsim-run-report";
    doc["version"] = kSchemaVersion;
    doc["mode"] = mode;
    doc["model"] = model;
    doc["property"] = property;

    json::Value analysis = json::Value::object();
    if (!strategy.empty()) analysis["strategy"] = strategy;
    if (!criterion.empty()) analysis["criterion"] = criterion;
    analysis["seed"] = seed;
    analysis["workers"] = workers;
    for (const auto& [name, v] : params) analysis[name] = v;
    doc["analysis"] = std::move(analysis);

    json::Value result = json::Value::object();
    result["value"] = value;
    if (!verdict.empty()) result["verdict"] = verdict;
    result["samples"] = samples;
    result["successes"] = successes;
    doc["result"] = std::move(result);

    // How the run ended (docs/robustness.md). Deterministic except when the
    // stop cause itself is wall-clock dependent (--max-seconds, SIGINT).
    {
        json::Value rs = json::Value::object();
        rs["status"] = run_status.status;
        if (!run_status.stop_cause.empty()) rs["stop_cause"] = run_status.stop_cause;
        rs["achieved_half_width"] = run_status.achieved_half_width;
        if (run_status.path_errors > 0) rs["path_errors"] = run_status.path_errors;
        if (!run_status.error_log.empty()) {
            json::Value log = json::Value::array();
            for (const auto& msg : run_status.error_log) log.push_back(msg);
            rs["error_log"] = std::move(log);
        }
        doc["run_status"] = std::move(rs);
    }

    if (!terminals.empty()) {
        json::Value t = json::Value::object();
        for (const auto& [name, n] : terminals) t[name] = n;
        doc["terminals"] = std::move(t);
    }

    // Per-worker *accepted* sample counts are deterministic in
    // (seed, workers); *generated* counts depend on thread scheduling and
    // go into the "runtime" section below.
    if (!worker_stats.empty()) {
        json::Value ws = json::Value::array();
        for (const auto& w : worker_stats) {
            json::Value entry = json::Value::object();
            entry["worker"] = w.worker;
            entry["rng_stream"] = w.rng_stream;
            entry["samples"] = w.accepted;
            ws.push_back(std::move(entry));
        }
        doc["workers"] = std::move(ws);
    }

    if (collector.rounds > 0 || collector.accepted > 0) {
        json::Value c = json::Value::object();
        c["rounds"] = collector.rounds;
        c["accepted"] = collector.accepted;
        doc["collector"] = std::move(c);
    }

    if (!stop_trajectory.empty()) {
        json::Value traj = json::Value::array();
        for (const auto& p : stop_trajectory) {
            json::Value entry = json::Value::object();
            entry["samples"] = p.samples;
            entry["required"] = p.required;
            entry["successes"] = p.successes;
            traj.push_back(std::move(entry));
        }
        json::Value sc = json::Value::object();
        sc["trajectory"] = std::move(traj);
        doc["stop_criterion"] = std::move(sc);
    }

    // The curve section is deterministic in (seed, workers) like the result
    // section — with per-path RNG streams it is in fact identical for every
    // worker count.
    if (!curve.points.empty()) {
        json::Value pts = json::Value::array();
        for (const auto& p : curve.points) {
            json::Value entry = json::Value::object();
            entry["bound"] = p.bound;
            entry["estimate"] = p.estimate;
            entry["successes"] = p.successes;
            pts.push_back(std::move(entry));
        }
        json::Value c = json::Value::object();
        c["band"] = curve.band;
        c["simultaneous_eps"] = curve.simultaneous_eps;
        c["points"] = std::move(pts);
        doc["curve"] = std::move(c);
    }

    // The supervision section (docs/supervision.md) is deterministic under
    // a deterministic fault-injection schedule; real-world failures make it
    // run-dependent, which is why byte-identity comparisons exclude it (the
    // result/terminals/curve sections above stay identical regardless).
    if (supervision.enabled) {
        json::Value sv = json::Value::object();
        sv["processes"] = supervision.processes;
        sv["spawns"] = supervision.spawns;
        sv["restarts"] = supervision.restarts;
        sv["reassigned_paths"] = supervision.reassigned_paths;
        sv["injected_faults"] = supervision.injected_faults;
        json::Value by = json::Value::object();
        for (const auto& [reason, n] : supervision.restarts_by_reason) by[reason] = n;
        sv["restarts_by_reason"] = std::move(by);
        sv["worker_timeout_seconds"] = supervision.worker_timeout_seconds;
        sv["worker_retries"] = supervision.worker_retries;
        doc["supervision"] = std::move(sv);
    }

    // The splitting section is deterministic in the seed alone: root trees
    // merge into the estimate in global root order (docs/rare-events.md).
    if (splitting.enabled) {
        json::Value sp = json::Value::object();
        sp["level"] = splitting.level;
        sp["factor"] = splitting.factor;
        sp["roots"] = splitting.roots;
        sp["total_paths"] = splitting.total_paths;
        sp["goal_hits"] = splitting.goal_hits;
        sp["max_level"] = splitting.max_level;
        sp["variance_per_root"] = splitting.variance_per_root;
        sp["relative_half_width"] = splitting.relative_half_width;
        if (splitting.pilot_paths > 0) {
            sp["pilot_paths"] = splitting.pilot_paths;
            json::Value th = json::Value::array();
            for (const auto t : splitting.auto_thresholds) th.push_back(t);
            sp["auto_thresholds"] = std::move(th);
        }
        json::Value rows = json::Value::array();
        for (const auto& row : splitting.levels) {
            json::Value entry = json::Value::object();
            entry["level"] = row.level;
            entry["crossings"] = row.crossings;
            entry["clones"] = row.clones;
            rows.push_back(std::move(entry));
        }
        sp["levels"] = std::move(rows);
        doc["splitting"] = std::move(sp);
    }

    // The coverage profile is deterministic in the seed alone (coverage
    // runs use per-path RNG streams; occupancy is model time), so it lives
    // in the deterministic part of the document.
    if (coverage.enabled) doc["coverage"] = coverage.to_json();

    // Compile-time facts are a pure function of the model text and live in
    // the deterministic part of the document.
    if (compiled_model.present) {
        json::Value cmj = json::Value::object();
        cmj["content_hash"] = compiled_model.content_hash;
        cmj["programs"] = compiled_model.programs;
        cmj["unique_programs"] = compiled_model.unique_programs;
        cmj["nodes"] = compiled_model.nodes;
        cmj["bytecode_bytes"] = compiled_model.bytecode_bytes;
        doc["compiled_model"] = std::move(cmj);
    }

    // Estimator health checks (stat/diagnostics) are computed from the
    // deterministic fields above, so the section itself is deterministic.
    if (diagnostics.enabled) {
        json::Value dg = json::Value::object();
        dg["warnings"] = diagnostics.warnings;
        json::Value checks = json::Value::array();
        for (const auto& item : diagnostics.items) {
            json::Value entry = json::Value::object();
            entry["check"] = item.check;
            entry["severity"] = item.severity;
            entry["value"] = item.value;
            if (!item.hint.empty()) entry["hint"] = item.hint;
            checks.push_back(std::move(entry));
        }
        dg["checks"] = std::move(checks);
        doc["diagnostics"] = std::move(dg);
    }

    // Recorder counters/histograms count events over *generated* paths;
    // with one worker that is deterministic, with several it depends on
    // when the stop flag lands, so they move under "runtime".
    const bool shared_instruments = workers > 1;
    json::Value counter_obj = json::Value::object();
    for (const auto& [name, n] : counters) counter_obj[name] = n;
    json::Value histo_obj = json::Value::object();
    for (const auto& [name, bins] : histograms) {
        json::Value h = json::Value::object();
        for (const auto& [label, n] : bins) h[label] = n;
        histo_obj[name] = std::move(h);
    }
    if (!shared_instruments) {
        if (counter_obj.size() > 0) doc["counters"] = std::move(counter_obj);
        if (histo_obj.size() > 0) doc["histograms"] = std::move(histo_obj);
    }

    // Everything below is wall-clock or scheduling dependent: two runs with
    // the same (seed, workers) may differ here and nowhere else.
    json::Value runtime = json::Value::object();
    runtime["wall_seconds"] = wall_seconds;
    if (!phases.empty()) {
        json::Value ph = json::Value::object();
        for (const auto& p : phases) ph[p.name] = p.seconds;
        runtime["phases"] = std::move(ph);
    }
    if (!timers.empty()) {
        json::Value ts = json::Value::object();
        for (const auto& [name, s] : timers) ts[name] = s;
        runtime["timers"] = std::move(ts);
    }
    if (shared_instruments) {
        json::Value gen = json::Value::array();
        for (const auto& w : worker_stats) gen.push_back(w.generated);
        runtime["generated"] = std::move(gen);
        json::Value c = json::Value::object();
        c["discarded"] = collector.discarded;
        c["max_buffered"] = collector.max_buffered;
        runtime["collector"] = std::move(c);
        if (counter_obj.size() > 0) runtime["counters"] = std::move(counter_obj);
        if (histo_obj.size() > 0) runtime["histograms"] = std::move(histo_obj);
    }
    doc["runtime"] = std::move(runtime);

    json::Value resources = json::Value::object();
    resources["peak_rss_bytes"] = peak_rss_bytes;
    doc["resources"] = std::move(resources);
    return doc;
}

std::string RunReport::to_text() const {
    std::ostringstream os;
    os << "run report (schema v" << kSchemaVersion << ")\n";
    os << "  mode:       " << mode << "\n";
    os << "  model:      " << model << "\n";
    os << "  property:   " << property << "\n";
    if (!strategy.empty()) os << "  strategy:   " << strategy << "\n";
    if (!criterion.empty()) os << "  criterion:  " << criterion << "\n";
    os << "  seed:       " << seed << "   workers: " << workers << "\n";
    for (const auto& [name, v] : params) os << "  " << name << ": " << v << "\n";
    os << "  value:      " << value;
    if (!verdict.empty()) os << "  (" << verdict << ")";
    os << "\n";
    os << "  samples:    " << samples << " (" << successes << " successes)\n";
    os << "  status:     " << run_status.status;
    if (!run_status.stop_cause.empty()) os << " (" << run_status.stop_cause << ")";
    if (run_status.achieved_half_width > 0.0) {
        os << "  achieved +-" << run_status.achieved_half_width;
    }
    os << "\n";
    if (run_status.path_errors > 0) {
        os << "  path errors: " << run_status.path_errors << " quarantined";
        os << " (" << run_status.error_log.size() << " messages kept)\n";
        for (const auto& msg : run_status.error_log) os << "    " << msg << "\n";
    }
    if (!terminals.empty()) {
        os << "  terminals:  ";
        bool first = true;
        for (const auto& [name, n] : terminals) {
            if (!first) os << "  ";
            os << name << "=" << n;
            first = false;
        }
        os << "\n";
    }
    if (!worker_stats.empty()) {
        os << "  workers:\n";
        for (const auto& w : worker_stats) {
            os << "    [" << w.worker << "] stream=" << w.rng_stream
               << " generated=" << w.generated << " accepted=" << w.accepted << "\n";
        }
    }
    if (collector.rounds > 0 || collector.discarded > 0) {
        os << "  collector:  rounds=" << collector.rounds
           << " accepted=" << collector.accepted << " discarded=" << collector.discarded
           << " max_buffered=" << collector.max_buffered << "\n";
    }
    if (!stop_trajectory.empty()) {
        os << "  stop criterion trajectory (n / required):";
        for (const auto& p : stop_trajectory) {
            os << " " << p.samples << "/" << (p.required == 0 ? std::string("-")
                                                              : std::to_string(p.required));
        }
        os << "\n";
    }
    if (!curve.points.empty()) {
        os << "  curve (" << curve.band << ", +-" << curve.simultaneous_eps << "):\n";
        for (const auto& p : curve.points) {
            os << "    u=" << p.bound << "  p^=" << p.estimate << "  successes="
               << p.successes << "\n";
        }
    }
    if (supervision.enabled) {
        os << "  supervision: processes=" << supervision.processes
           << " spawns=" << supervision.spawns << " restarts=" << supervision.restarts
           << " reassigned_paths=" << supervision.reassigned_paths << "\n";
        os << "    restarts by reason:";
        for (const auto& [reason, n] : supervision.restarts_by_reason) {
            os << " " << reason << "=" << n;
        }
        os << "\n";
    }
    if (splitting.enabled) {
        os << "  splitting:  level=" << splitting.level << " factor=" << splitting.factor
           << " roots=" << splitting.roots << " paths=" << splitting.total_paths
           << " goal_hits=" << splitting.goal_hits << " max_level="
           << splitting.max_level << "\n";
        os << "    variance/root=" << splitting.variance_per_root
           << "  rel. half-width=" << splitting.relative_half_width << "\n";
        if (splitting.pilot_paths > 0) {
            os << "    auto placement: " << splitting.pilot_paths
               << " pilot paths, thresholds [";
            bool first = true;
            for (const auto t : splitting.auto_thresholds) {
                if (!first) os << " ";
                os << t;
                first = false;
            }
            os << "]\n";
        }
        for (const auto& row : splitting.levels) {
            os << "    level " << row.level << ": crossings=" << row.crossings
               << " clones=" << row.clones << "\n";
        }
    }
    if (coverage.enabled) {
        os << "  " << coverage.summary_text();
    }
    if (diagnostics.enabled) {
        os << "  diagnostics: " << diagnostics.warnings << " warning(s) over "
           << diagnostics.items.size() << " check(s)\n";
        for (const auto& item : diagnostics.items) {
            if (item.severity == "ok") continue;
            os << "    [" << item.severity << "] " << item.check << " = "
               << item.value;
            if (!item.hint.empty()) os << " — " << item.hint;
            os << "\n";
        }
    }
    if (compiled_model.present) {
        os << "  compiled:   " << compiled_model.unique_programs << "/"
           << compiled_model.programs << " unique programs, " << compiled_model.nodes
           << " nodes, " << compiled_model.bytecode_bytes << " bytecode bytes, hash "
           << compiled_model.content_hash << "\n";
    }
    for (const auto& [name, n] : counters) {
        os << "  counter " << name << " = " << n << "\n";
    }
    for (const auto& [name, bins] : histograms) {
        os << "  histogram " << name << ":";
        for (const auto& [label, n] : bins) os << " [" << label << "]=" << n;
        os << "\n";
    }
    if (!phases.empty()) {
        os << "  phases:     ";
        bool first = true;
        for (const auto& p : phases) {
            if (!first) os << "  ";
            os << p.name << "=" << p.seconds << "s";
            first = false;
        }
        os << "\n";
    }
    for (const auto& [name, s] : timers) {
        os << "  timer " << name << " = " << s << " s\n";
    }
    os << "  wall:       " << wall_seconds << " s\n";
    os << "  peak rss:   " << peak_rss_bytes << " bytes\n";
    return os.str();
}

json::Value deterministic_view(const json::Value& report) {
    json::Value out = json::Value::object();
    for (const auto& [key, value] : report.members()) {
        if (key == "runtime" || key == "resources") continue;
        out[key] = value;
    }
    return out;
}

} // namespace slimsim::telemetry
