// Minimal fixed-size thread pool used by the parallel simulation runner.
//
// Tasks are plain std::function<void()>; completion is coordinated by the
// caller (the runner uses the round-robin sample collector, see
// stat/collector.hpp). Destruction joins all workers after draining.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/metrics.hpp"
#include "support/tracer/tracer.hpp"

namespace slimsim {

class ThreadPool {
public:
    /// Spawns `worker_count` threads (at least 1). With a tracer, each
    /// worker records its tasks as "pool.task" spans on a "pool worker N"
    /// lane (lanes are created in worker order before the threads start,
    /// so lane ids are deterministic). With a metrics registry, each worker
    /// observes its task durations into a per-shard histogram
    /// (slimsim_pool_task_seconds; count × mean over wall time = worker
    /// utilization), shard = worker index % registry shards.
    explicit ThreadPool(std::size_t worker_count, tracer::Tracer* tracer = nullptr,
                        metrics::Registry* metrics = nullptr);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task; never blocks.
    void submit(std::function<void()> task);

    [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

    /// Blocks until the queue is empty and all running tasks have finished.
    void wait_idle();

private:
    void worker_loop(tracer::Lane* lane, tracer::NameId task_name, std::size_t shard);

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t active_ = 0;
    bool stopping_ = false;
    metrics::Histogram* task_seconds_ = nullptr;
};

} // namespace slimsim
