// Crash-atomic file writes: every run artifact (report JSON, curve CSV,
// coverage CSV, metrics exposition, traces, journals, checkpoints) goes
// through a temp-file + rename pair so a crash, SIGKILL or torn write never
// leaves a half-written artifact behind the final name (docs/robustness.md).
//
// Two surfaces:
//   * write_file_atomic(): one-shot — serialize the whole artifact to a
//     string, then persist it atomically (the checkpoint path).
//   * AtomicFile: an ofstream wrapper for artifacts the caller streams
//     incrementally; nothing appears at the final path until commit().
//     Destruction without commit() removes the temp file (best effort), so
//     an exception between open and commit leaves no debris.
#pragma once

#include <fstream>
#include <string>
#include <string_view>

namespace slimsim::support {

/// Serializes `bytes` to `path` atomically (write `path + ".tmp"`, rename).
/// Throws Error("<what>: ...") on any I/O failure; `what` names the flag or
/// artifact for the diagnostic (e.g. "cannot write checkpoint file").
/// Returns the number of bytes written.
std::size_t write_file_atomic(const std::string& path, std::string_view bytes,
                              const std::string& what);

/// Stream-style atomic writer. open() creates `path + ".tmp"`; commit()
/// flushes, closes and renames it over `path`. Without commit() the temp
/// file is unlinked on destruction.
class AtomicFile {
public:
    AtomicFile() = default;
    AtomicFile(const AtomicFile&) = delete;
    AtomicFile& operator=(const AtomicFile&) = delete;
    ~AtomicFile();

    /// Opens the temp file for writing; throws Error("<what>: cannot open
    /// `path` for writing") on failure, so a bad artifact path fails before
    /// the analysis runs.
    void open(const std::string& path, const std::string& what);

    /// True between open() and commit()/discard().
    [[nodiscard]] explicit operator bool() const { return out_.is_open(); }

    /// The stream to write artifact bytes into (open() must have succeeded).
    [[nodiscard]] std::ofstream& stream() { return out_; }

    /// Flush + close + rename over the final path; throws Error on failure
    /// (and removes the temp file so nothing is left behind).
    void commit();

    /// Close and unlink the temp file without publishing (error paths).
    void discard() noexcept;

private:
    std::ofstream out_;
    std::string path_;
    std::string tmp_;
    std::string what_;
};

} // namespace slimsim::support
