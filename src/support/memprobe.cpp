#include "support/memprobe.hpp"

#include <cstdio>
#include <cstring>

#include <sys/resource.h>
#include <unistd.h>

namespace slimsim {

std::size_t current_rss_bytes() {
    // /proc/self/statm field 2 is resident pages.
    std::FILE* f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr) return 0;
    long size = 0, resident = 0;
    const int n = std::fscanf(f, "%ld %ld", &size, &resident);
    std::fclose(f);
    if (n != 2) return 0;
    return static_cast<std::size_t>(resident) *
           static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

std::size_t peak_rss_bytes() {
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
    // ru_maxrss is in kilobytes on Linux.
    return static_cast<std::size_t>(usage.ru_maxrss) * 1024u;
}

double bytes_to_mib(std::size_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

} // namespace slimsim
