#include "support/rng.hpp"

#include <cmath>

namespace slimsim {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

/// SplitMix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
    // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
    // zeros from any seed, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

Rng Rng::split(std::uint64_t index) const {
    // Mix the current state with the child index through SplitMix64 so that
    // child streams are decorrelated from the parent and from each other.
    std::uint64_t sm = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 43);
    sm ^= 0xD1B54A32D192ED03ULL * (index + 1);
    return Rng(splitmix64(sm));
}

double Rng::uniform01() {
    // 53 random bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    SLIMSIM_ASSERT(lo <= hi);
    if (lo == hi) return lo;
    return lo + uniform01() * (hi - lo);
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
    SLIMSIM_ASSERT(n > 0);
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold) return r % n;
    }
}

double Rng::exponential(double rate) {
    SLIMSIM_ASSERT(rate > 0.0);
    // Inverse transform; 1 - U in (0,1] avoids log(0).
    return -std::log1p(-uniform01()) / rate;
}

bool Rng::bernoulli(double p) {
    SLIMSIM_ASSERT(p >= 0.0 && p <= 1.0);
    return uniform01() < p;
}

} // namespace slimsim
