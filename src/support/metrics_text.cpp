#include "support/metrics_text.hpp"

#include <string>
#include <vector>

namespace slimsim::telemetry {

namespace {

using metrics::label;

/// Every family name prometheus_text may emit; appended live-registry
/// families with these names are skipped so the merged exposition never
/// repeats a `# TYPE` header.
const std::vector<std::string>& report_family_names() {
    static const std::vector<std::string> kNames = {
        "slimsim_info",
        "slimsim_param",
        "slimsim_result_value",
        "slimsim_samples_total",
        "slimsim_successes_total",
        "slimsim_terminal_paths_total",
        "slimsim_curve_simultaneous_eps",
        "slimsim_curve_estimate",
        "slimsim_curve_successes_total",
        "slimsim_splitting_estimate",
        "slimsim_splitting_factor",
        "slimsim_splitting_roots_total",
        "slimsim_splitting_paths_total",
        "slimsim_splitting_clones_total",
        "slimsim_splitting_goal_hits_total",
        "slimsim_splitting_max_level",
        "slimsim_splitting_variance_per_root",
        "slimsim_splitting_relative_half_width",
        "slimsim_splitting_pilot_paths_total",
        "slimsim_splitting_level_crossings_total",
        "slimsim_splitting_level_clones_total",
        "slimsim_coverage_paths_total",
        "slimsim_coverage_elements_known",
        "slimsim_coverage_elements_covered",
        "slimsim_coverage_unreached_modes",
        "slimsim_coverage_never_fired_transitions",
        "slimsim_coverage_mode_visits_total",
        "slimsim_coverage_mode_occupancy_seconds",
        "slimsim_coverage_transition_fires_total",
        "slimsim_coverage_decisions_total",
        "slimsim_run_info",
        "slimsim_workers",
        "slimsim_wall_seconds",
        "slimsim_phase_seconds",
        "slimsim_timer_seconds_total",
        "slimsim_counter_total",
        "slimsim_histogram_events_total",
        "slimsim_collector_rounds_total",
        "slimsim_collector_discarded_total",
        "slimsim_collector_max_buffered",
        "slimsim_peak_rss_bytes",
    };
    return kNames;
}

} // namespace

std::string prometheus_text(const RunReport& report, const metrics::Registry* live) {
    metrics::Exposition x;

    // --- deterministic section (see header) -------------------------------
    std::string info = label("model", report.model) + "," +
                       label("property", report.property);
    if (!report.strategy.empty()) info += "," + label("strategy", report.strategy);
    if (!report.criterion.empty()) info += "," + label("criterion", report.criterion);
    if (!report.verdict.empty()) info += "," + label("verdict", report.verdict);
    info += "," + label("seed", std::to_string(report.seed));
    x.gauge("slimsim_info", info, 1.0);

    if (!report.params.empty()) {
        x.family("slimsim_param", "gauge");
        for (const auto& [name, v] : report.params) {
            x.sample(label("name", name), json::format_double(v));
        }
    }

    x.gauge("slimsim_result_value", "", report.value);
    x.counter("slimsim_samples_total", "", report.samples);
    x.counter("slimsim_successes_total", "", report.successes);

    if (!report.terminals.empty()) {
        x.family("slimsim_terminal_paths_total", "counter");
        for (const auto& [name, n] : report.terminals) {
            x.sample(label("terminal", name), std::to_string(n));
        }
    }

    if (!report.curve.points.empty()) {
        x.gauge("slimsim_curve_simultaneous_eps", "", report.curve.simultaneous_eps);
        x.family("slimsim_curve_estimate", "gauge");
        for (const auto& p : report.curve.points) {
            x.sample(label("bound", json::format_double(p.bound)),
                     json::format_double(p.estimate));
        }
        x.family("slimsim_curve_successes_total", "counter");
        for (const auto& p : report.curve.points) {
            x.sample(label("bound", json::format_double(p.bound)),
                     std::to_string(p.successes));
        }
    }

    if (report.splitting.enabled) {
        // Final splitting figures from the report: deterministic in
        // (seed, workers), so they live in the deterministic section; the
        // live registry's same-named families are skipped on render.
        const SplittingReport& sp = report.splitting;
        x.gauge("slimsim_splitting_estimate", "", report.value);
        x.gauge("slimsim_splitting_factor", "", static_cast<double>(sp.factor));
        x.counter("slimsim_splitting_roots_total", "", sp.roots);
        x.counter("slimsim_splitting_paths_total", "", sp.total_paths);
        x.counter("slimsim_splitting_goal_hits_total", "", sp.goal_hits);
        x.gauge("slimsim_splitting_max_level", "", static_cast<double>(sp.max_level));
        x.gauge("slimsim_splitting_variance_per_root", "", sp.variance_per_root);
        x.gauge("slimsim_splitting_relative_half_width", "", sp.relative_half_width);
        if (sp.pilot_paths > 0) {
            x.counter("slimsim_splitting_pilot_paths_total", "", sp.pilot_paths);
        }
        std::uint64_t total_clones = 0;
        for (const auto& l : sp.levels) total_clones += l.clones;
        x.counter("slimsim_splitting_clones_total", "", total_clones);
        if (!sp.levels.empty()) {
            x.family("slimsim_splitting_level_crossings_total", "counter");
            for (const auto& l : sp.levels) {
                x.sample(label("level", std::to_string(l.level)),
                         std::to_string(l.crossings));
            }
            x.family("slimsim_splitting_level_clones_total", "counter");
            for (const auto& l : sp.levels) {
                x.sample(label("level", std::to_string(l.level)),
                         std::to_string(l.clones));
            }
        }
    }

    if (report.coverage.enabled) {
        const CoverageReport& cov = report.coverage;
        x.counter("slimsim_coverage_paths_total", "", cov.paths);
        x.gauge("slimsim_coverage_elements_known", "",
                static_cast<double>(cov.total_elements()));
        x.gauge("slimsim_coverage_elements_covered", "",
                static_cast<double>(cov.covered_elements()));
        x.gauge("slimsim_coverage_unreached_modes", "",
                static_cast<double>(cov.unreached_modes().size()));
        x.gauge("slimsim_coverage_never_fired_transitions", "",
                static_cast<double>(cov.never_fired_transitions().size()));
        x.family("slimsim_coverage_mode_visits_total", "counter");
        for (const auto& m : cov.modes) {
            x.sample(label("mode", m.name), std::to_string(m.visits));
        }
        x.family("slimsim_coverage_mode_occupancy_seconds", "gauge");
        for (const auto& m : cov.modes) {
            x.sample(label("mode", m.name), json::format_double(m.occupancy_seconds));
        }
        x.family("slimsim_coverage_transition_fires_total", "counter");
        for (const auto& t : cov.transitions) {
            x.sample(label("transition", t.name) + "," +
                         label("error", t.error_event ? "true" : "false"),
                     std::to_string(t.fires));
        }
        if (!cov.choice_points.empty()) {
            x.family("slimsim_coverage_decisions_total", "counter");
            for (const auto& cp : cov.choice_points) {
                for (const auto& a : cp.alternatives) {
                    x.sample(label("choice_point", cp.key) + "," +
                                 label("alternative", a.name),
                             std::to_string(a.count));
                }
            }
        }
    }

    // --- runtime section ---------------------------------------------------
    x.raw(std::string(kMetricsRuntimeMarker) + "\n");
    x.gauge("slimsim_run_info",
            label("mode", report.mode) + "," +
                label("schema_version", std::to_string(RunReport::kSchemaVersion)),
            1.0);
    x.gauge("slimsim_workers", "", static_cast<double>(report.workers));
    x.gauge("slimsim_wall_seconds", "", report.wall_seconds);
    if (!report.phases.empty()) {
        x.family("slimsim_phase_seconds", "gauge");
        for (const auto& p : report.phases) x.sample(label("phase", p.name), json::format_double(p.seconds));
    }
    if (!report.timers.empty()) {
        x.family("slimsim_timer_seconds_total", "counter");
        for (const auto& [name, s] : report.timers) {
            x.sample(label("name", name), json::format_double(s));
        }
    }
    if (!report.counters.empty()) {
        x.family("slimsim_counter_total", "counter");
        for (const auto& [name, n] : report.counters) {
            x.sample(label("name", name), std::to_string(n));
        }
    }
    if (!report.histograms.empty()) {
        x.family("slimsim_histogram_events_total", "counter");
        for (const auto& [name, bins] : report.histograms) {
            for (const auto& [bucket, n] : bins) {
                x.sample(label("name", name) + "," + label("bucket", bucket),
                         std::to_string(n));
            }
        }
    }
    if (report.collector.rounds > 0 || report.collector.accepted > 0) {
        x.counter("slimsim_collector_rounds_total", "", report.collector.rounds);
        x.counter("slimsim_collector_discarded_total", "", report.collector.discarded);
        x.gauge("slimsim_collector_max_buffered", "",
                static_cast<double>(report.collector.max_buffered));
    }
    x.gauge("slimsim_peak_rss_bytes", "", static_cast<double>(report.peak_rss_bytes));

    if (live != nullptr) live->render(x, report_family_names());
    return x.take();
}

std::string prometheus_deterministic_section(std::string_view text) {
    const std::size_t pos = text.find(kMetricsRuntimeMarker);
    if (pos == std::string_view::npos) return std::string(text);
    return std::string(text.substr(0, pos));
}

} // namespace slimsim::telemetry
