#include "support/metrics_text.hpp"

#include <string>
#include <vector>

namespace slimsim::telemetry {

namespace {

/// Escapes a label value (backslash, double quote, newline).
std::string label_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out.push_back(c);
        }
    }
    return out;
}

std::string label(std::string_view name, std::string_view value) {
    return std::string(name) + "=\"" + label_escape(value) + "\"";
}

/// One metric family: a # TYPE line followed by all its samples.
class Exposition {
public:
    void family(std::string_view name, std::string_view type) {
        out_ += "# TYPE ";
        out_ += name;
        out_ += ' ';
        out_ += type;
        out_ += '\n';
        family_ = name;
    }

    void sample(std::string_view labels, std::string_view value) {
        out_ += family_;
        if (!labels.empty()) {
            out_ += '{';
            out_ += labels;
            out_ += '}';
        }
        out_ += ' ';
        out_ += value;
        out_ += '\n';
    }

    void gauge(std::string_view name, std::string_view labels, double value) {
        family(name, "gauge");
        sample(labels, json::format_double(value));
    }

    void counter(std::string_view name, std::string_view labels, std::uint64_t value) {
        family(name, "counter");
        sample(labels, std::to_string(value));
    }

    void raw(std::string_view text) { out_ += text; }

    [[nodiscard]] std::string take() { return std::move(out_); }

private:
    std::string out_;
    std::string family_;
};

} // namespace

std::string prometheus_text(const RunReport& report) {
    Exposition x;

    // --- deterministic section (see header) -------------------------------
    std::string info = label("model", report.model) + "," +
                       label("property", report.property);
    if (!report.strategy.empty()) info += "," + label("strategy", report.strategy);
    if (!report.criterion.empty()) info += "," + label("criterion", report.criterion);
    if (!report.verdict.empty()) info += "," + label("verdict", report.verdict);
    info += "," + label("seed", std::to_string(report.seed));
    x.gauge("slimsim_info", info, 1.0);

    if (!report.params.empty()) {
        x.family("slimsim_param", "gauge");
        for (const auto& [name, v] : report.params) {
            x.sample(label("name", name), json::format_double(v));
        }
    }

    x.gauge("slimsim_result_value", "", report.value);
    x.counter("slimsim_samples_total", "", report.samples);
    x.counter("slimsim_successes_total", "", report.successes);

    if (!report.terminals.empty()) {
        x.family("slimsim_terminal_paths_total", "counter");
        for (const auto& [name, n] : report.terminals) {
            x.sample(label("terminal", name), std::to_string(n));
        }
    }

    if (!report.curve.points.empty()) {
        x.gauge("slimsim_curve_simultaneous_eps", "", report.curve.simultaneous_eps);
        x.family("slimsim_curve_estimate", "gauge");
        for (const auto& p : report.curve.points) {
            x.sample(label("bound", json::format_double(p.bound)),
                     json::format_double(p.estimate));
        }
        x.family("slimsim_curve_successes_total", "counter");
        for (const auto& p : report.curve.points) {
            x.sample(label("bound", json::format_double(p.bound)),
                     std::to_string(p.successes));
        }
    }

    if (report.coverage.enabled) {
        const CoverageReport& cov = report.coverage;
        x.counter("slimsim_coverage_paths_total", "", cov.paths);
        x.gauge("slimsim_coverage_elements_known", "",
                static_cast<double>(cov.total_elements()));
        x.gauge("slimsim_coverage_elements_covered", "",
                static_cast<double>(cov.covered_elements()));
        x.gauge("slimsim_coverage_unreached_modes", "",
                static_cast<double>(cov.unreached_modes().size()));
        x.gauge("slimsim_coverage_never_fired_transitions", "",
                static_cast<double>(cov.never_fired_transitions().size()));
        x.family("slimsim_coverage_mode_visits_total", "counter");
        for (const auto& m : cov.modes) {
            x.sample(label("mode", m.name), std::to_string(m.visits));
        }
        x.family("slimsim_coverage_mode_occupancy_seconds", "gauge");
        for (const auto& m : cov.modes) {
            x.sample(label("mode", m.name), json::format_double(m.occupancy_seconds));
        }
        x.family("slimsim_coverage_transition_fires_total", "counter");
        for (const auto& t : cov.transitions) {
            x.sample(label("transition", t.name) + "," +
                         label("error", t.error_event ? "true" : "false"),
                     std::to_string(t.fires));
        }
        if (!cov.choice_points.empty()) {
            x.family("slimsim_coverage_decisions_total", "counter");
            for (const auto& cp : cov.choice_points) {
                for (const auto& a : cp.alternatives) {
                    x.sample(label("choice_point", cp.key) + "," +
                                 label("alternative", a.name),
                             std::to_string(a.count));
                }
            }
        }
    }

    // --- runtime section ---------------------------------------------------
    x.raw(std::string(kMetricsRuntimeMarker) + "\n");
    x.gauge("slimsim_run_info",
            label("mode", report.mode) + "," +
                label("schema_version", std::to_string(RunReport::kSchemaVersion)),
            1.0);
    x.gauge("slimsim_workers", "", static_cast<double>(report.workers));
    x.gauge("slimsim_wall_seconds", "", report.wall_seconds);
    if (!report.phases.empty()) {
        x.family("slimsim_phase_seconds", "gauge");
        for (const auto& p : report.phases) x.sample(label("phase", p.name), json::format_double(p.seconds));
    }
    if (!report.timers.empty()) {
        x.family("slimsim_timer_seconds_total", "counter");
        for (const auto& [name, s] : report.timers) {
            x.sample(label("name", name), json::format_double(s));
        }
    }
    if (!report.counters.empty()) {
        x.family("slimsim_counter_total", "counter");
        for (const auto& [name, n] : report.counters) {
            x.sample(label("name", name), std::to_string(n));
        }
    }
    if (!report.histograms.empty()) {
        x.family("slimsim_histogram_events_total", "counter");
        for (const auto& [name, bins] : report.histograms) {
            for (const auto& [bucket, n] : bins) {
                x.sample(label("name", name) + "," + label("bucket", bucket),
                         std::to_string(n));
            }
        }
    }
    if (report.collector.rounds > 0 || report.collector.accepted > 0) {
        x.counter("slimsim_collector_rounds_total", "", report.collector.rounds);
        x.counter("slimsim_collector_discarded_total", "", report.collector.discarded);
        x.gauge("slimsim_collector_max_buffered", "",
                static_cast<double>(report.collector.max_buffered));
    }
    x.gauge("slimsim_peak_rss_bytes", "", static_cast<double>(report.peak_rss_bytes));
    return x.take();
}

std::string prometheus_deterministic_section(std::string_view text) {
    const std::size_t pos = text.find(kMetricsRuntimeMarker);
    if (pos == std::string_view::npos) return std::string(text);
    return std::string(text.substr(0, pos));
}

} // namespace slimsim::telemetry
