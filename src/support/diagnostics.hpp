// Diagnostics: source locations, user-facing errors and warning collection.
//
// All errors caused by user input (bad SLIM syntax, type errors, ill-formed
// models, invalid CLI arguments) are reported as slimsim::Error carrying an
// optional source location. Internal invariant violations use SLIMSIM_ASSERT.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace slimsim {

/// A position in a SLIM source file (1-based line/column; 0 means unknown).
struct SourceLoc {
    std::string file;
    std::uint32_t line = 0;
    std::uint32_t column = 0;

    [[nodiscard]] bool known() const { return line != 0; }
    [[nodiscard]] std::string to_string() const;
};

/// User-facing error (parse error, type error, invalid model, bad property).
class Error : public std::runtime_error {
public:
    explicit Error(std::string message);
    Error(SourceLoc loc, std::string message);

    [[nodiscard]] const SourceLoc& where() const { return loc_; }

private:
    SourceLoc loc_;
};

/// Severity of a collected diagnostic.
enum class Severity { Note, Warning, Error };

[[nodiscard]] std::string_view to_string(Severity s);

/// One collected diagnostic message.
struct Diagnostic {
    Severity severity = Severity::Error;
    SourceLoc loc;
    std::string message;

    [[nodiscard]] std::string to_string() const;
};

/// Accumulates diagnostics during parsing / validation so that multiple
/// problems can be reported in one pass.
class DiagnosticSink {
public:
    void note(SourceLoc loc, std::string message);
    void warning(SourceLoc loc, std::string message);
    void error(SourceLoc loc, std::string message);

    [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }
    [[nodiscard]] std::size_t error_count() const { return errors_; }
    [[nodiscard]] bool has_errors() const { return errors_ > 0; }

    /// Throws slimsim::Error summarizing all collected errors, if any.
    void throw_if_errors(std::string_view phase) const;

private:
    std::vector<Diagnostic> diags_;
    std::size_t errors_ = 0;
};

namespace detail {
[[noreturn]] void assert_fail(const char* cond, const char* file, int line);
}

} // namespace slimsim

/// Internal invariant check; active in all build types (cheap conditions only).
#define SLIMSIM_ASSERT(cond)                                                   \
    do {                                                                       \
        if (!(cond)) ::slimsim::detail::assert_fail(#cond, __FILE__, __LINE__); \
    } while (false)
