// Engine telemetry: counters, timers and histograms feeding a structured,
// machine-readable run report.
//
// Instrumented code holds plain pointers into a Recorder; a null Recorder
// (or a disabled one) costs one branch per event, so simulation hot paths
// pay nearly nothing when telemetry is off. Event *counts* are
// deterministic in (seed, workers); wall-clock data is kept in separate
// report sections so deterministic content can be diffed across runs (see
// RunReport::to_json and deterministic_view).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace slimsim::telemetry {

/// Monotonic event counter; thread-safe (relaxed increments).
class Counter {
public:
    void add(std::uint64_t delta = 1) { n_.fetch_add(delta, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const { return n_.load(std::memory_order_relaxed); }
    void reset() { n_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> n_{0};
};

/// Accumulates elapsed wall time over any number of measured sections;
/// thread-safe.
class Timer {
public:
    void record_ns(std::int64_t ns) {
        // A caller differencing a non-steady clock can hand us a negative
        // delta; adding it would silently unwind the accumulated total, so
        // clamp at zero (the section still counts as one measurement).
        total_ns_.fetch_add(std::max<std::int64_t>(ns, 0), std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
    }
    [[nodiscard]] double seconds() const {
        return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) * 1e-9;
    }
    [[nodiscard]] std::uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> total_ns_{0};
    std::atomic<std::uint64_t> count_{0};
};

/// RAII section timer; a null Timer makes it a no-op.
class ScopedTimer {
public:
    explicit ScopedTimer(Timer* timer) : timer_(timer) {
        if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    ~ScopedTimer() { stop(); }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    /// Records the elapsed time now instead of at destruction.
    void stop() {
        if (timer_ == nullptr) return;
        timer_->record_ns(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - start_)
                              .count());
        timer_ = nullptr;
    }

private:
    Timer* timer_;
    std::chrono::steady_clock::time_point start_;
};

/// Power-of-two bucket histogram over non-negative integer values
/// (value v lands in bucket floor(log2(v))+1; 0 in bucket 0). Thread-safe.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 64;

    void add(std::uint64_t value);
    [[nodiscard]] std::uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

    /// Non-empty buckets as (range label, count), smallest value first.
    [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> bins() const;

    /// Label of the bucket `value` falls into ("0", "1", "2-3", "4-7", ...).
    [[nodiscard]] static std::string bucket_label(std::size_t bucket);

private:
    std::atomic<std::uint64_t> buckets_[kBuckets]{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/// Named instrument registry. Instruments are created on first use and live
/// as long as the recorder; returned references stay valid as the registry
/// grows. Lookup is meant for setup code — hot paths should resolve their
/// instruments once and keep the pointers.
class Recorder {
public:
    explicit Recorder(bool enabled = true) : enabled_(enabled) {}

    [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

    [[nodiscard]] Counter& counter(std::string_view name);
    [[nodiscard]] Timer& timer(std::string_view name);
    [[nodiscard]] Histogram& histogram(std::string_view name);

    /// Snapshots sorted by name; counters/histograms are deterministic in
    /// (seed, workers), timers are wall-clock.
    [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters() const;
    [[nodiscard]] std::vector<std::pair<std::string, double>> timers() const;
    [[nodiscard]] std::vector<std::pair<std::string, const Histogram*>> histograms() const;

private:
    template <typename T>
    T& lookup(std::deque<std::pair<std::string, T>>& registry, std::string_view name);

    mutable std::mutex mutex_;
    std::atomic<bool> enabled_;
    std::deque<std::pair<std::string, Counter>> counters_;
    std::deque<std::pair<std::string, Timer>> timers_;
    std::deque<std::pair<std::string, Histogram>> histograms_;
};

/// One named phase of an analysis (parse, instantiate, simulate, ...).
struct Phase {
    std::string name;
    double seconds = 0.0;
};

/// Per-worker sampling statistics of a (possibly single-worker) run.
struct WorkerStats {
    std::size_t worker = 0;       // worker index
    std::uint64_t rng_stream = 0; // RNG stream id (split index of the master seed)
    std::uint64_t generated = 0;  // paths simulated by this worker
    std::uint64_t accepted = 0;   // samples consumed into the estimate
};

/// Round statistics of the bias-free parallel sample collector.
struct CollectorStats {
    std::uint64_t rounds = 0;       // complete rounds consumed
    std::uint64_t accepted = 0;     // samples consumed into the summary
    std::uint64_t discarded = 0;    // samples buffered but never consumed
    std::uint64_t max_buffered = 0; // high-water mark of buffered samples
};

/// One point of the stop-criterion trajectory: after `samples` accepted
/// samples (`successes` of them positive), the criterion required
/// `required` (0 = adaptive, no a-priori n). Successes make the trajectory
/// a running-estimate record, which the estimator health diagnostics
/// (stat/diagnostics) read for drift and CI-calibration checks.
struct StopPoint {
    std::uint64_t samples = 0;
    std::uint64_t required = 0;
    std::uint64_t successes = 0;
};

/// One bound of a multi-bound curve estimate P( <> [0,u] goal ).
struct CurvePoint {
    double bound = 0.0;
    std::uint64_t successes = 0;
    double estimate = 0.0;
};

/// The curve section of a run report; empty points = no curve estimated.
struct CurveReport {
    std::string band;              // dkw | bonferroni-chernoff
    double simultaneous_eps = 0.0; // achieved band half-width at the final n
    std::vector<CurvePoint> points;
};

/// One mode (process location) of the coverage profile. Occupancy is
/// sojourn-time weighted *model* time spent in the mode, summed over all
/// accepted paths — deterministic, unlike wall-clock timers.
struct CoverageMode {
    std::string name;
    std::uint64_t visits = 0;
    double occupancy_seconds = 0.0;
};

/// One transition of the coverage profile; error-model transitions double
/// as error-event activations.
struct CoverageTransition {
    std::string name;
    std::uint64_t fires = 0;
    bool error_event = false;
};

/// One alternative of a strategy choice point with its decision count.
struct CoverageAlternative {
    std::string name;
    std::uint64_t count = 0;
};

/// Decision histogram of one choice point (a distinct set of simultaneously
/// schedulable alternatives the strategy chose among).
struct CoverageChoicePoint {
    std::string key; // alternative names joined with " | "
    std::uint64_t decisions = 0;
    std::vector<CoverageAlternative> alternatives;
};

/// One point of the coverage-saturation series: after `paths` accepted
/// paths, `covered` distinct elements (modes + transitions) had been seen.
struct CoverageSaturationPoint {
    std::uint64_t paths = 0;
    std::uint64_t covered = 0;
};

/// The coverage section of a run report (sim/coverage, docs/coverage.md).
/// Fully deterministic in the seed: coverage runs use per-path RNG streams,
/// so the profile is byte-identical for every worker count.
struct CoverageReport {
    bool enabled = false;
    std::uint64_t paths = 0; // accepted paths profiled
    std::vector<CoverageMode> modes;
    std::vector<CoverageTransition> transitions;
    std::vector<CoverageChoicePoint> choice_points;
    std::vector<CoverageSaturationPoint> saturation;

    /// A mode counts as covered when it was entered or time passed in it.
    [[nodiscard]] static bool covered(const CoverageMode& m) {
        return m.visits > 0 || m.occupancy_seconds > 0.0;
    }
    [[nodiscard]] std::uint64_t covered_elements() const;
    [[nodiscard]] std::uint64_t total_elements() const {
        return modes.size() + transitions.size();
    }
    /// Dead-model warnings: modes no path reached / transitions that never
    /// fired across the entire run.
    [[nodiscard]] std::vector<std::string> unreached_modes() const;
    [[nodiscard]] std::vector<std::string> never_fired_transitions() const;

    /// The "coverage" report section (schema: docs/coverage.md).
    [[nodiscard]] json::Value to_json() const;
    /// CSV rendering (header kind,name,count,occupancy_seconds).
    [[nodiscard]] std::string to_csv() const;
    /// Human-readable summary with dead-model warnings (CLI --coverage).
    [[nodiscard]] std::string summary_text() const;
};

/// The "compiled_model" report section: deterministic compile-time facts of
/// the model the analysis ran on (eda::CompiledModel, docs/compiled-model.md).
struct CompiledModelReport {
    bool present = false;
    std::uint64_t programs = 0;        // expressions lowered (before dedup)
    std::uint64_t unique_programs = 0; // distinct hash-consed programs
    std::uint64_t nodes = 0;           // expression nodes over unique programs
    std::uint64_t bytecode_bytes = 0;  // code + node tables over unique programs
    std::string content_hash;          // 16 lowercase hex digits
};

/// One splitting level's crossing statistics (rare/splitting.hpp).
struct SplittingLevelReport {
    std::int64_t level = 0;
    std::uint64_t crossings = 0; // lineages that first reached this level
    std::uint64_t clones = 0;    // clones spawned at this level
};

/// The "splitting" section of a run report (importance splitting,
/// docs/rare-events.md). Fully deterministic in (seed, workers): root trees
/// merge in global root order.
struct SplittingReport {
    bool enabled = false;
    std::string level; // level expression text, or "auto"
    std::uint64_t factor = 0;
    std::uint64_t roots = 0;       // root trees accepted into the estimate
    std::uint64_t total_paths = 0; // roots + clones simulated
    std::uint64_t goal_hits = 0;   // raw (unweighted) goal observations
    std::int64_t max_level = 0;
    double variance_per_root = 0.0;
    double relative_half_width = 0.0;
    /// Auto placement only: pilot size and the raw values promoted to levels.
    std::uint64_t pilot_paths = 0;
    std::vector<std::int64_t> auto_thresholds;
    std::vector<SplittingLevelReport> levels; // ascending by level
};

/// One estimator health check result (stat/diagnostics,
/// docs/observability.md). `value` is the check's headline number (a rate,
/// a ratio, a drift in half-widths); `hint` is the actionable advice shown
/// to the user when the severity is above "ok".
struct DiagnosticItem {
    std::string check;    // e.g. "estimate-drift", "splitting-level"
    std::string severity; // ok | warning | critical
    double value = 0.0;
    std::string hint; // empty when severity is "ok"
};

/// The "diagnostics" report section (schema v5): deterministic post-hoc
/// estimator health checks computed from the deterministic report fields,
/// so the section is byte-identical across worker counts whenever the run
/// itself is.
struct DiagnosticsReport {
    bool enabled = false;
    std::uint64_t warnings = 0; // items with severity above "ok"
    std::vector<DiagnosticItem> items;
};

/// How an estimation run ended plus the partial-result context (run
/// hardening, docs/robustness.md). Deterministic except for wall-clock stop
/// causes (budget_exhausted via --max-seconds, interrupted).
struct RunStatusReport {
    std::string status = "converged"; // converged | budget_exhausted | interrupted | degraded
    std::string stop_cause;           // "" when converged
    /// Half-width actually guaranteed at the accepted sample count (the
    /// simultaneous band half-width for curve runs).
    double achieved_half_width = 0.0;
    std::uint64_t path_errors = 0; // accepted PathTerminal::Error samples
    /// Quarantined per-path error diagnostics (bounded,
    /// sim::kMaxQuarantinedErrors).
    std::vector<std::string> error_log;
};

/// The "supervision" report section (schema v6): what the process-isolated
/// coordinator observed (sim/supervise, docs/supervision.md). Under a
/// deterministic fault-injection schedule every field is deterministic; the
/// section is emitted only for supervised runs, so unsupervised reports are
/// byte-identical to schema-v5 documents apart from the version field.
struct SupervisionReport {
    bool enabled = false;
    std::uint64_t processes = 0; // worker subprocesses (slots)
    std::uint64_t spawns = 0;    // initial spawns + restarts
    std::uint64_t restarts = 0;
    /// Accepted path indices that were reassigned to a replacement worker
    /// at least once.
    std::uint64_t reassigned_paths = 0;
    std::uint64_t injected_faults = 0; // scheduled injections
    /// Restarts by failure classification, fixed order: crash, stall,
    /// corrupt-frame (shape-stable; zero entries are kept).
    std::vector<std::pair<std::string, std::uint64_t>> restarts_by_reason;
    double worker_timeout_seconds = 0.0;
    std::uint64_t worker_retries = 0;
};

/// The structured result record every analysis emits. Everything outside
/// the "runtime"/"resources" sections is deterministic in (seed, workers).
struct RunReport {
    static constexpr std::uint64_t kSchemaVersion = 6;

    // estimate | estimate-parallel | hypothesis-test | ctmc-flow |
    // estimate-splitting
    std::string mode;
    std::string model;    // model path (or a caller-chosen label)
    std::string property; // property text, e.g. "<> [0,1800] gps.measurement"
    std::string strategy; // empty for ctmc-flow
    std::string criterion;
    std::uint64_t seed = 0;
    std::size_t workers = 1;
    /// Mode-specific numeric parameters (delta, eps, threshold, ...), in
    /// insertion order.
    std::vector<std::pair<std::string, double>> params;

    double value = 0.0; // headline result: estimate / probability
    std::string verdict; // hypothesis-test only ("" otherwise)
    std::uint64_t samples = 0;
    std::uint64_t successes = 0;
    RunStatusReport run_status; // how the run ended (docs/robustness.md)

    std::vector<std::pair<std::string, std::uint64_t>> terminals; // path-terminal histogram
    std::vector<WorkerStats> worker_stats;
    CollectorStats collector;
    std::vector<StopPoint> stop_trajectory;
    CurveReport curve;       // multi-bound curve estimation (empty otherwise)
    SupervisionReport supervision; // process-isolated runs (disabled otherwise)
    SplittingReport splitting; // importance splitting (disabled otherwise)
    CoverageReport coverage; // model coverage profile (disabled otherwise)
    CompiledModelReport compiled_model; // compile-time model facts (when compiled)
    DiagnosticsReport diagnostics; // estimator health checks (schema v5)
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::vector<std::pair<std::string, std::uint64_t>>>>
        histograms;

    std::vector<Phase> phases; // wall-clock phase breakdown
    std::vector<std::pair<std::string, double>> timers;
    double wall_seconds = 0.0;
    std::uint64_t peak_rss_bytes = 0;

    /// Pulls counter/timer/histogram snapshots out of `recorder`.
    void absorb(const Recorder& recorder);

    /// The versioned JSON document (schema: docs/run-report.md).
    [[nodiscard]] json::Value to_json() const;

    /// Human-readable rendering (the CLI's --report output).
    [[nodiscard]] std::string to_text() const;
};

/// Copy of a report document with the wall-clock / scheduling-dependent
/// sections ("runtime", "resources") removed: the remainder is
/// deterministic in (seed, workers).
[[nodiscard]] json::Value deterministic_view(const json::Value& report);

} // namespace slimsim::telemetry
