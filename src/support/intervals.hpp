// Interval sets over the non-negative time axis.
//
// The timing analysis of slimsim reduces "when is this guard/invariant true
// under time elapse?" to finite unions of closed intervals of the delay t.
// IntervalSet is the normalized representation used by the strategies:
//   ASAP        -> earliest()
//   MaxTime     -> latest()
//   Progressive -> sample_uniform() over the set's measure
//   Local       -> sample over the invariant horizon interval
//
// Bounds are closed; strict comparisons are closed over-approximated at their
// boundary, a measure-zero effect on sampled paths (see DESIGN.md §3).
// Upper bounds may be +infinity.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace slimsim {

/// A closed interval [lo, hi] with lo <= hi; hi may be +infinity.
/// Point intervals (lo == hi) are allowed and meaningful (equality guards).
struct Interval {
    double lo = 0.0;
    double hi = 0.0;

    [[nodiscard]] bool is_point() const { return lo == hi; }
    [[nodiscard]] bool unbounded() const;
    [[nodiscard]] double length() const; // +inf when unbounded
    [[nodiscard]] bool contains(double t) const { return lo <= t && t <= hi; }

    friend bool operator==(const Interval&, const Interval&) = default;
};

/// A finite union of disjoint, non-adjacent, sorted closed intervals.
class IntervalSet {
public:
    IntervalSet() = default;
    /// Singleton set {[lo, hi]}; requires lo <= hi.
    IntervalSet(double lo, double hi);
    /// Builds from arbitrary (possibly overlapping, unsorted) intervals.
    explicit IntervalSet(std::vector<Interval> intervals);

    [[nodiscard]] static IntervalSet empty_set() { return IntervalSet(); }
    /// The full time axis [0, +inf).
    [[nodiscard]] static IntervalSet all();
    [[nodiscard]] static IntervalSet point(double t) { return {t, t}; }

    [[nodiscard]] bool empty() const { return parts_.empty(); }
    [[nodiscard]] const std::vector<Interval>& parts() const { return parts_; }
    [[nodiscard]] bool contains(double t) const;

    /// Total length; +inf if any part is unbounded. Point parts contribute 0.
    [[nodiscard]] double measure() const;
    /// Smallest element, if non-empty.
    [[nodiscard]] std::optional<double> earliest() const;
    /// Largest element; nullopt if empty or unbounded above.
    [[nodiscard]] std::optional<double> latest() const;

    [[nodiscard]] IntervalSet unite(const IntervalSet& other) const;
    [[nodiscard]] IntervalSet intersect(const IntervalSet& other) const;
    /// Complement within [0, bound] (bound may be +inf).
    [[nodiscard]] IntervalSet complement(double bound) const;
    /// Intersection with [lo, hi].
    [[nodiscard]] IntervalSet clamp(double lo, double hi) const;

    /// Largest T such that [0, T] is entirely contained in the set;
    /// nullopt if 0 is not in the set. Used for invariant horizons.
    [[nodiscard]] std::optional<double> prefix_horizon() const;

    /// Uniform sample by measure. Sets of positive measure sample by length
    /// (point parts then have probability zero); pure point sets sample
    /// uniformly among the points. Requires non-empty and finite measure.
    [[nodiscard]] double sample_uniform(Rng& rng) const;

    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

private:
    void normalize();

    std::vector<Interval> parts_; // sorted, disjoint, non-adjacent
};

} // namespace slimsim
