// Interval sets over the non-negative time axis.
//
// The timing analysis of slimsim reduces "when is this guard/invariant true
// under time elapse?" to finite unions of closed intervals of the delay t.
// IntervalSet is the normalized representation used by the strategies:
//   ASAP        -> earliest()
//   MaxTime     -> latest()
//   Progressive -> sample_uniform() over the set's measure
//   Local       -> sample over the invariant horizon interval
//
// Bounds are closed; strict comparisons are closed over-approximated at their
// boundary, a measure-zero effect on sampled paths (see DESIGN.md §3).
// Upper bounds may be +infinity.
#pragma once

#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace slimsim {

/// A closed interval [lo, hi] with lo <= hi; hi may be +infinity.
/// Point intervals (lo == hi) are allowed and meaningful (equality guards).
struct Interval {
    double lo = 0.0;
    double hi = 0.0;

    [[nodiscard]] bool is_point() const { return lo == hi; }
    [[nodiscard]] bool unbounded() const;
    [[nodiscard]] double length() const; // +inf when unbounded
    [[nodiscard]] bool contains(double t) const { return lo <= t && t <= hi; }

    friend bool operator==(const Interval&, const Interval&) = default;
};

/// Inline-capacity storage for interval parts. The timing analysis builds
/// and destroys millions of sets per second, and nearly all of them have one
/// or two parts — those live inside the set object and never touch the
/// heap; larger sets spill to a heap array. Interval is trivially copyable,
/// so growth and copies are memcpy.
class IntervalParts {
public:
    IntervalParts() = default;
    IntervalParts(const IntervalParts& other) { assign(other.data_, other.size_); }
    IntervalParts(IntervalParts&& other) noexcept { steal(other); }
    IntervalParts& operator=(const IntervalParts& other) {
        if (this != &other) assign(other.data_, other.size_);
        return *this;
    }
    IntervalParts& operator=(IntervalParts&& other) noexcept {
        if (this != &other) {
            release();
            steal(other);
        }
        return *this;
    }
    ~IntervalParts() { release(); }

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] const Interval* begin() const { return data_; }
    [[nodiscard]] const Interval* end() const { return data_ + size_; }
    [[nodiscard]] Interval* begin() { return data_; }
    [[nodiscard]] Interval* end() { return data_ + size_; }
    [[nodiscard]] const Interval& operator[](std::size_t i) const { return data_[i]; }
    [[nodiscard]] Interval& operator[](std::size_t i) { return data_[i]; }
    [[nodiscard]] const Interval& front() const { return data_[0]; }
    [[nodiscard]] const Interval& back() const { return data_[size_ - 1]; }
    [[nodiscard]] Interval& back() { return data_[size_ - 1]; }

    void clear() { size_ = 0; }
    /// Drops elements past the first `n`; requires n <= size().
    void truncate(std::size_t n) { size_ = static_cast<std::uint32_t>(n); }
    void push_back(const Interval& iv) {
        if (size_ == cap_) grow(cap_ * 2);
        data_[size_++] = iv;
    }
    void append(const Interval* src, std::size_t n) {
        const auto need = static_cast<std::uint32_t>(size_ + n);
        if (need > cap_) grow(need > cap_ * 2 ? need : cap_ * 2);
        std::memcpy(data_ + size_, src, n * sizeof(Interval));
        size_ += static_cast<std::uint32_t>(n);
    }

    friend bool operator==(const IntervalParts& a, const IntervalParts& b) {
        if (a.size_ != b.size_) return false;
        for (std::size_t i = 0; i < a.size_; ++i) {
            if (!(a.data_[i] == b.data_[i])) return false;
        }
        return true;
    }

private:
    static constexpr std::uint32_t kInline = 2;

    void assign(const Interval* src, std::uint32_t n) {
        if (n > cap_) grow(n);
        std::memcpy(data_, src, n * sizeof(Interval));
        size_ = n;
    }
    void steal(IntervalParts& other) {
        if (other.data_ == other.inline_) {
            data_ = inline_;
            cap_ = kInline;
            std::memcpy(inline_, other.inline_, other.size_ * sizeof(Interval));
        } else {
            data_ = other.data_;
            cap_ = other.cap_;
            other.data_ = other.inline_;
            other.cap_ = kInline;
        }
        size_ = other.size_;
        other.size_ = 0;
    }
    void grow(std::uint32_t cap);
    void release() {
        if (data_ != inline_) delete[] data_;
    }

    Interval inline_[kInline];
    Interval* data_ = inline_;
    std::uint32_t size_ = 0;
    std::uint32_t cap_ = kInline;
};

/// A finite union of disjoint, non-adjacent, sorted closed intervals.
class IntervalSet {
public:
    IntervalSet() = default;
    /// Singleton set {[lo, hi]}; requires lo <= hi.
    IntervalSet(double lo, double hi);
    /// Builds from arbitrary (possibly overlapping, unsorted) intervals.
    explicit IntervalSet(std::vector<Interval> intervals);

    [[nodiscard]] static IntervalSet empty_set() { return IntervalSet(); }
    /// The full time axis [0, +inf).
    [[nodiscard]] static IntervalSet all();
    [[nodiscard]] static IntervalSet point(double t) { return {t, t}; }

    [[nodiscard]] bool empty() const { return parts_.empty(); }
    [[nodiscard]] std::span<const Interval> parts() const {
        return {parts_.begin(), parts_.size()};
    }
    [[nodiscard]] bool contains(double t) const;

    /// Total length; +inf if any part is unbounded. Point parts contribute 0.
    [[nodiscard]] double measure() const;
    /// Smallest element, if non-empty.
    [[nodiscard]] std::optional<double> earliest() const;
    /// Largest element; nullopt if empty or unbounded above.
    [[nodiscard]] std::optional<double> latest() const;

    [[nodiscard]] IntervalSet unite(const IntervalSet& other) const;
    [[nodiscard]] IntervalSet intersect(const IntervalSet& other) const;
    /// Complement within [0, bound] (bound may be +inf).
    [[nodiscard]] IntervalSet complement(double bound) const;
    /// Intersection with [lo, hi].
    [[nodiscard]] IntervalSet clamp(double lo, double hi) const;

    /// Largest T such that [0, T] is entirely contained in the set;
    /// nullopt if 0 is not in the set. Used for invariant horizons.
    [[nodiscard]] std::optional<double> prefix_horizon() const;

    /// Uniform sample by measure. Sets of positive measure sample by length
    /// (point parts then have probability zero); pure point sets sample
    /// uniformly among the points. Requires non-empty and finite measure.
    [[nodiscard]] double sample_uniform(Rng& rng) const;

    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

private:
    void normalize();

    IntervalParts parts_; // sorted, disjoint, non-adjacent
};

} // namespace slimsim
