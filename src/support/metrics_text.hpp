// Prometheus text-exposition (version 0.0.4) rendering of a run report, so
// long-running estimation jobs are scrapeable by standard infrastructure
// (CLI --metrics-out, docs/coverage.md, docs/observability.md).
//
// The exposition is split in two by a marker comment: everything *above*
// kMetricsRuntimeMarker is deterministic — result values, terminal counts,
// curve points and the coverage profile, none of which depend on wall
// clocks; for coverage/curve runs at a fixed seed the section is
// byte-identical for every worker count. Everything below the marker
// (workers, wall clock, phase/timer data, recorder instruments, RSS, and
// any appended live-registry families) is runtime- or scheduling-dependent.
//
// Rendering goes through metrics::Exposition — the same writer the live
// /metrics endpoint uses (support/metrics.hpp) — so the file and HTTP
// expositions are one code path.
#pragma once

#include <string>
#include <string_view>

#include "support/metrics.hpp"
#include "support/telemetry.hpp"

namespace slimsim::telemetry {

inline constexpr std::string_view kMetricsRuntimeMarker = metrics::kRuntimeMarker;

/// Renders `report` as Prometheus text exposition: every metric family is
/// announced by a `# TYPE` line before its samples and family names are
/// unique (instruments become labels, not name fragments). When `live` is
/// non-null its families are appended below the runtime marker, skipping any
/// family name the report already emitted.
[[nodiscard]] std::string prometheus_text(const RunReport& report,
                                          const metrics::Registry* live = nullptr);

/// The deterministic prefix of an exposition produced by prometheus_text
/// (everything before kMetricsRuntimeMarker; the whole text if absent).
[[nodiscard]] std::string prometheus_deterministic_section(std::string_view text);

} // namespace slimsim::telemetry
