// Deterministic random number generation for reproducible simulation.
//
// slimsim never uses global RNG state: every stochastic component receives an
// explicit Rng (or a seed). Parallel workers receive independent streams
// derived from the master seed via SplitMix64 jumps, so a run is fully
// reproducible given (seed, worker count).
#pragma once

#include <cstdint>
#include <limits>

#include "support/diagnostics.hpp"

namespace slimsim {

/// xoshiro256++ PRNG (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the four state words from `seed` via SplitMix64.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return std::numeric_limits<std::uint64_t>::max(); }

    result_type operator()();

    /// Derives an independent child stream; deterministic in (state, index).
    [[nodiscard]] Rng split(std::uint64_t index) const;

    /// Uniform double in [0, 1).
    double uniform01();

    /// Uniform double in [lo, hi]; requires lo <= hi. Degenerate interval
    /// returns lo.
    double uniform(double lo, double hi);

    /// Uniform integer in [0, n); requires n > 0. Unbiased (rejection).
    std::uint64_t uniform_index(std::uint64_t n);

    /// Exponentially distributed value with the given rate (> 0).
    double exponential(double rate);

    /// Bernoulli trial with success probability p in [0,1].
    bool bernoulli(double p);

private:
    std::uint64_t s_[4];
};

} // namespace slimsim
