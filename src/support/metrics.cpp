#include "support/metrics.hpp"

#include <array>
#include <cmath>
#include <cstring>
#include <limits>

#include "support/diagnostics.hpp"
#include "support/json.hpp"

namespace slimsim::metrics {

std::string label_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out.push_back(c);
        }
    }
    return out;
}

std::string label(std::string_view name, std::string_view value) {
    return std::string(name) + "=\"" + label_escape(value) + "\"";
}

// ---------------------------------------------------------------------------
// Exposition

void Exposition::family(std::string_view name, std::string_view type,
                        std::string_view help) {
    if (!help.empty()) {
        out_ += "# HELP ";
        out_ += name;
        out_ += ' ';
        out_ += help;
        out_ += '\n';
    }
    out_ += "# TYPE ";
    out_ += name;
    out_ += ' ';
    out_ += type;
    out_ += '\n';
    family_ = name;
}

void Exposition::sample(std::string_view labels, std::string_view value) {
    out_ += family_;
    if (!labels.empty()) {
        out_ += '{';
        out_ += labels;
        out_ += '}';
    }
    out_ += ' ';
    out_ += value;
    out_ += '\n';
}

void Exposition::series(std::string_view suffix, std::string_view labels,
                        std::string_view value) {
    out_ += family_;
    out_ += suffix;
    if (!labels.empty()) {
        out_ += '{';
        out_ += labels;
        out_ += '}';
    }
    out_ += ' ';
    out_ += value;
    out_ += '\n';
}

void Exposition::gauge(std::string_view name, std::string_view labels, double value,
                       std::string_view help) {
    family(name, "gauge", help);
    sample(labels, json::format_double(value));
}

void Exposition::counter(std::string_view name, std::string_view labels,
                         std::uint64_t value, std::string_view help) {
    family(name, "counter", help);
    sample(labels, std::to_string(value));
}

void Exposition::raw(std::string_view text) { out_ += text; }

std::string Exposition::take() { return std::move(out_); }

std::span<const double> time_buckets() {
    static constexpr std::array<double, 8> kBuckets = {1e-6, 1e-5, 1e-4, 1e-3,
                                                       1e-2, 0.1,  1.0,  10.0};
    return kBuckets;
}

// ---------------------------------------------------------------------------
// Instruments

std::uint64_t Gauge::pack(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double Gauge::unpack(std::uint64_t bits) {
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

Histogram::Histogram(std::size_t shards, std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
    double prev = -std::numeric_limits<double>::infinity();
    for (const double b : bounds_) {
        SLIMSIM_ASSERT(b > prev);
        prev = b;
    }
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
    }
}

std::uint64_t Histogram::to_nano(double v) {
    if (!(v > 0.0)) return 0;
    return static_cast<std::uint64_t>(std::llround(v * 1e9));
}

std::vector<std::uint64_t> Histogram::bucket_totals() const {
    std::vector<std::uint64_t> totals(bounds_.size() + 1, 0);
    for (const auto& s : shards_) {
        for (std::size_t b = 0; b < totals.size(); ++b) {
            totals[b] += s->buckets[b].value.load(std::memory_order_relaxed);
        }
    }
    return totals;
}

std::uint64_t Histogram::count() const {
    std::uint64_t n = 0;
    for (const std::uint64_t b : bucket_totals()) n += b;
    return n;
}

double Histogram::sum() const {
    std::uint64_t nano = 0;
    for (const auto& s : shards_) nano += s->sum_nano.load(std::memory_order_relaxed);
    return static_cast<double>(nano) * 1e-9;
}

// ---------------------------------------------------------------------------
// Registry

Registry::Registry(std::size_t shards) : shards_(shards) {
    SLIMSIM_ASSERT(shards >= 1);
}

Registry::Family& Registry::family_locked(std::string_view name, std::string_view help,
                                          Kind kind) {
    for (auto& f : families_) {
        if (f->name == name) {
            if (f->kind != kind) {
                throw Error("metrics family `" + std::string(name) +
                            "` re-registered with a different kind");
            }
            return *f;
        }
    }
    auto f = std::make_unique<Family>();
    f->name = name;
    f->help = help;
    f->kind = kind;
    families_.push_back(std::move(f));
    return *families_.back();
}

Registry::Child& Registry::child_locked(Family& family, std::string_view labels) {
    for (auto& c : family.children) {
        if (c->labels == labels) return *c;
    }
    auto c = std::make_unique<Child>();
    c->labels = labels;
    family.children.push_back(std::move(c));
    return *family.children.back();
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           std::string_view labels) {
    if (!name.ends_with("_total")) {
        throw Error("metrics counter `" + std::string(name) + "` must end in _total");
    }
    std::lock_guard lock(mutex_);
    Child& c = child_locked(family_locked(name, help, Kind::Counter), labels);
    if (c.counter == nullptr) c.counter = std::make_unique<Counter>(shards_);
    return *c.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       std::string_view labels) {
    std::lock_guard lock(mutex_);
    Child& c = child_locked(family_locked(name, help, Kind::Gauge), labels);
    if (c.gauge == nullptr) c.gauge = std::make_unique<Gauge>();
    return *c.gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::span<const double> bounds,
                               std::string_view labels) {
    std::lock_guard lock(mutex_);
    Child& c = child_locked(family_locked(name, help, Kind::Histogram), labels);
    if (c.histogram == nullptr) c.histogram = std::make_unique<Histogram>(shards_, bounds);
    return *c.histogram;
}

void Registry::render(Exposition& x, std::span<const std::string> skip) const {
    std::lock_guard lock(mutex_);
    for (const auto& f : families_) {
        bool skipped = false;
        for (const std::string& name : skip) {
            if (name == f->name) {
                skipped = true;
                break;
            }
        }
        if (skipped) continue;
        switch (f->kind) {
        case Kind::Counter:
            x.family(f->name, "counter", f->help);
            for (const auto& c : f->children) {
                x.sample(c->labels, std::to_string(c->counter->total()));
            }
            break;
        case Kind::Gauge:
            x.family(f->name, "gauge", f->help);
            for (const auto& c : f->children) {
                x.sample(c->labels, json::format_double(c->gauge->value()));
            }
            break;
        case Kind::Histogram:
            x.family(f->name, "histogram", f->help);
            for (const auto& c : f->children) {
                const Histogram& h = *c->histogram;
                const std::vector<std::uint64_t> totals = h.bucket_totals();
                const std::string sep = c->labels.empty() ? "" : ",";
                std::uint64_t cumulative = 0;
                for (std::size_t b = 0; b < h.bounds().size(); ++b) {
                    cumulative += totals[b];
                    x.series("_bucket",
                             c->labels + sep +
                                 label("le", json::format_double(h.bounds()[b])),
                             std::to_string(cumulative));
                }
                cumulative += totals.back();
                x.series("_bucket", c->labels + sep + label("le", "+Inf"),
                         std::to_string(cumulative));
                x.series("_sum", c->labels, json::format_double(h.sum()));
                x.series("_count", c->labels, std::to_string(cumulative));
            }
            break;
        }
    }
}

std::string Registry::expose() const {
    Exposition x;
    // Everything a live registry carries depends on wall clocks or
    // scheduling, so the deterministic prefix is empty by construction.
    x.raw(std::string(kRuntimeMarker) + "\n");
    render(x);
    return x.take();
}

} // namespace slimsim::metrics
