#include "support/diagnostics.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace slimsim {

std::string SourceLoc::to_string() const {
    if (!known()) return file.empty() ? std::string("<unknown>") : file;
    std::ostringstream os;
    os << (file.empty() ? "<input>" : file) << ':' << line << ':' << column;
    return os.str();
}

Error::Error(std::string message) : std::runtime_error(std::move(message)) {}

Error::Error(SourceLoc loc, std::string message)
    : std::runtime_error(loc.to_string() + ": " + message), loc_(std::move(loc)) {}

std::string_view to_string(Severity s) {
    switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    }
    return "?";
}

std::string Diagnostic::to_string() const {
    std::ostringstream os;
    if (loc.known() || !loc.file.empty()) os << loc.to_string() << ": ";
    os << slimsim::to_string(severity) << ": " << message;
    return os.str();
}

void DiagnosticSink::note(SourceLoc loc, std::string message) {
    diags_.push_back({Severity::Note, std::move(loc), std::move(message)});
}

void DiagnosticSink::warning(SourceLoc loc, std::string message) {
    diags_.push_back({Severity::Warning, std::move(loc), std::move(message)});
}

void DiagnosticSink::error(SourceLoc loc, std::string message) {
    diags_.push_back({Severity::Error, std::move(loc), std::move(message)});
    ++errors_;
}

void DiagnosticSink::throw_if_errors(std::string_view phase) const {
    if (!has_errors()) return;
    std::ostringstream os;
    os << phase << " failed with " << errors_ << " error(s):";
    for (const auto& d : diags_) os << '\n' << "  " << d.to_string();
    throw Error(os.str());
}

namespace detail {
void assert_fail(const char* cond, const char* file, int line) {
    std::fprintf(stderr, "slimsim internal error: assertion `%s` failed at %s:%d\n",
                 cond, file, line);
    std::abort();
}
} // namespace detail

} // namespace slimsim
