#include "support/http_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/diagnostics.hpp"

namespace slimsim::http {

namespace {

const char* status_text(int status) {
    switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 400: return "Bad Request";
    default: return "Internal Server Error";
    }
}

void send_all(int fd, std::string_view data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return; // client went away; nothing to do
        }
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace

std::uint16_t Server::start(std::uint16_t port, Handler handler) {
    if (thread_.joinable()) throw Error("http server already started");
    SLIMSIM_ASSERT(handler);

    if (::pipe(wake_fds_) != 0) {
        throw Error(std::string("http server: pipe failed: ") + std::strerror(errno));
    }

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        stop();
        throw Error(std::string("http server: socket failed: ") + std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const std::string why = std::strerror(errno);
        stop();
        throw Error("http server: bind to 127.0.0.1:" + std::to_string(port) +
                    " failed: " + why);
    }
    if (::listen(listen_fd_, 16) != 0) {
        const std::string why = std::strerror(errno);
        stop();
        throw Error(std::string("http server: listen failed: ") + why);
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        const std::string why = std::strerror(errno);
        stop();
        throw Error(std::string("http server: getsockname failed: ") + why);
    }
    port_ = ntohs(bound.sin_port);

    handler_ = std::move(handler);
    thread_ = std::thread([this] { loop(); });
    return port_;
}

void Server::stop() {
    if (thread_.joinable()) {
        const char byte = 'x';
        [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
        thread_.join();
    }
    for (int* fd : {&listen_fd_, &wake_fds_[0], &wake_fds_[1]}) {
        if (*fd >= 0) {
            ::close(*fd);
            *fd = -1;
        }
    }
    port_ = 0;
    handler_ = nullptr;
}

void Server::loop() {
    for (;;) {
        pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR) continue;
            return;
        }
        if ((fds[1].revents & POLLIN) != 0) return; // stop() woke us
        if ((fds[0].revents & POLLIN) == 0) continue;
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) continue;
        serve_connection(client);
        ::close(client);
    }
}

void Server::serve_connection(int fd) {
    // Bound the time a stalled client can hold the (single) server thread.
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    // Read until the end of the request head; the body (if any) is ignored.
    std::string head;
    char buf[1024];
    while (head.find("\r\n\r\n") == std::string::npos && head.size() < 16 * 1024) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return;
        }
        head.append(buf, static_cast<std::size_t>(n));
    }

    Response res;
    bool head_only = false;
    bool method_not_allowed = false;
    const std::size_t line_end = head.find("\r\n");
    const std::string request_line =
        head.substr(0, line_end == std::string::npos ? head.size() : line_end);
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        res = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else {
        const std::string method = request_line.substr(0, sp1);
        if (method != "GET" && method != "HEAD") {
            method_not_allowed = true;
            res = {405, "text/plain; charset=utf-8", "method not allowed\n"};
        } else {
            head_only = method == "HEAD";
            Request req;
            req.path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
            const std::size_t query = req.path.find('?');
            if (query != std::string::npos) {
                req.query = req.path.substr(query + 1);
                req.path.resize(query);
            }
            res = handler_(req);
        }
    }

    std::string out = "HTTP/1.1 " + std::to_string(res.status) + " " +
                      status_text(res.status) + "\r\n";
    out += "Content-Type: " + res.content_type + "\r\n";
    // A HEAD response advertises the length the GET body would have had.
    out += "Content-Length: " + std::to_string(res.body.size()) + "\r\n";
    if (method_not_allowed) out += "Allow: GET, HEAD\r\n";
    out += "Connection: close\r\n\r\n";
    if (!head_only) out += res.body;
    send_all(fd, out);
}

} // namespace slimsim::http
