// Structured run journal (docs/observability.md): a leveled JSONL event log
// of what an analysis run *did* — lifecycle, phase transitions, checkpoint
// writes, fault quarantines, splitting level placement, budget/signal stops.
//
// Design constraints, in order:
//   1. Results must be byte-identical with the journal on or off: the
//      journal only observes. Nothing here feeds back into sampling order
//      or RNG streams, and the hot path pays one null/level check per
//      (rare) event site.
//   2. Deterministic fields must be byte-identical across worker counts.
//      Events fall in two classes: *serial* events are emitted by the
//      lifecycle/consuming thread in an order that is already deterministic
//      in (seed) under per-path streams (checkpoints and stop-criterion
//      marks fire at accepted-sample counts); *worker* events (fault
//      quarantines) are buffered in per-worker lock-free bounded rings
//      tagged with the worker-local path index and merged after join in
//      global path order — worker w of k owns paths base + w, base + w + k,
//      ..., so local index r maps to global base + r*k + w, exactly like
//      the parallel runner's fault-log merge.
//   3. Wall-clock fields are zeroed under the deterministic view, like the
//      tracer: every line carries "t" (seconds since journal construction)
//      and nothing else that is timing dependent.
//
// One line per event: {"seq","t","level","event","msg",["path"],...fields}.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/json.hpp"

namespace slimsim::journal {

/// Event severity/verbosity. Each level includes the ones above it:
/// info = lifecycle + placement, debug = checkpoints/quarantines/levels,
/// trace = stop-criterion trajectory marks.
enum class Level : std::uint8_t { Info = 0, Debug = 1, Trace = 2 };

[[nodiscard]] std::string_view to_string(Level level);

/// Parses "info" | "debug" | "trace"; throws Error with a one-line
/// diagnostic naming --log-level otherwise (the CLI convention).
[[nodiscard]] Level parse_level(std::string_view text);

/// One extra key/value on an event line, rendered in insertion order.
struct Field {
    std::string key;
    json::Value value;
};

/// A recorded event. `t` is the only wall-clock field; `path` is the global
/// path index for worker events (absent on serial events).
struct Event {
    Level level = Level::Info;
    std::string name;
    std::string message;
    std::vector<Field> fields;
    double t = 0.0;
    bool has_path = false;
    std::uint64_t path = 0;
};

class Journal {
public:
    explicit Journal(Level level = Level::Info, std::size_t worker_capacity = 1024);

    [[nodiscard]] Level level() const { return level_; }
    [[nodiscard]] bool enabled(Level l) const {
        return static_cast<std::uint8_t>(l) <= static_cast<std::uint8_t>(level_);
    }

    /// Serial emission: lifecycle / consuming thread only. Events below the
    /// configured level are dropped. Thread-safe against concurrent readers
    /// (tail_jsonl from the HTTP thread).
    void emit(Level l, std::string_view event, std::string_view message,
              std::vector<Field> fields = {});

    /// Single-producer bounded event ring owned by one worker thread; no
    /// locks — the consumer only reads it after the worker joined. On
    /// overflow the ring keeps the *first* `worker_capacity` events (the
    /// deterministic prefix) and counts the rest as dropped.
    class WorkerLog {
    public:
        void emit(Level l, std::uint64_t local_path, std::string_view event,
                  std::string_view message, std::vector<Field> fields = {});

    private:
        friend class Journal;
        WorkerLog(Journal* parent, std::size_t capacity);

        struct Entry {
            std::uint64_t local = 0;
            Event event;
        };
        Journal* parent_;
        std::size_t capacity_;
        std::vector<Entry> entries_;
        std::uint64_t dropped_ = 0;
    };

    /// (Re)creates the per-worker rings; called by a runner before spawning
    /// workers. The sequential runner uses one ring (k = 1) so journals are
    /// byte-identical across worker counts.
    void begin_workers(std::size_t workers);
    [[nodiscard]] WorkerLog& worker(std::size_t w) { return *workers_[w]; }

    /// Merges worker events into the serial stream after all workers
    /// joined: events of worker w with local index < accepted[w] map to
    /// global path base + local*k + w; the rest (beyond the accepted
    /// prefix) are discarded. Merged events are appended in global path
    /// order, so the journal is deterministic at every worker count.
    void merge_workers(std::span<const std::uint64_t> accepted, std::uint64_t base);

    /// Events recorded so far (serial + merged).
    [[nodiscard]] std::size_t size() const;
    /// Events lost to worker-ring overflow (0 in any healthy run).
    [[nodiscard]] std::uint64_t dropped() const;

    /// The full journal as JSONL, one event per line, "seq" equal to the
    /// line's position. The deterministic view zeroes the wall-clock "t"
    /// field so journals diff cleanly across runs and worker counts.
    [[nodiscard]] std::string to_jsonl(bool deterministic_view = false) const;

    /// The last `n` events currently in the serial stream (live tail for
    /// the /journal?tail=N endpoint); worker-ring events appear once merged.
    [[nodiscard]] std::string tail_jsonl(std::size_t n) const;

private:
    [[nodiscard]] double now() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_)
            .count();
    }
    static void write_line(std::string& out, const Event& e, std::size_t seq,
                           bool deterministic_view);

    const Level level_;
    const std::size_t worker_capacity_;
    const std::chrono::steady_clock::time_point start_;

    mutable std::mutex mutex_;
    std::vector<Event> entries_;
    std::uint64_t merged_dropped_ = 0;
    std::vector<std::unique_ptr<WorkerLog>> workers_;
};

} // namespace slimsim::journal
