#include "support/journal.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace slimsim::journal {

std::string_view to_string(Level level) {
    switch (level) {
    case Level::Info: return "info";
    case Level::Debug: return "debug";
    case Level::Trace: return "trace";
    }
    return "info";
}

Level parse_level(std::string_view text) {
    if (text == "info") return Level::Info;
    if (text == "debug") return Level::Debug;
    if (text == "trace") return Level::Trace;
    throw Error("--log-level: unknown level '" + std::string(text) +
                "' (expected info, debug or trace)");
}

Journal::Journal(Level level, std::size_t worker_capacity)
    : level_(level), worker_capacity_(std::max<std::size_t>(1, worker_capacity)),
      start_(std::chrono::steady_clock::now()) {}

void Journal::emit(Level l, std::string_view event, std::string_view message,
                   std::vector<Field> fields) {
    if (!enabled(l)) return;
    Event e;
    e.level = l;
    e.name = std::string(event);
    e.message = std::string(message);
    e.fields = std::move(fields);
    e.t = now();
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(std::move(e));
}

Journal::WorkerLog::WorkerLog(Journal* parent, std::size_t capacity)
    : parent_(parent), capacity_(capacity) {
    entries_.reserve(capacity);
}

void Journal::WorkerLog::emit(Level l, std::uint64_t local_path,
                              std::string_view event, std::string_view message,
                              std::vector<Field> fields) {
    if (!parent_->enabled(l)) return;
    if (entries_.size() >= capacity_) {
        // Keep the first `capacity_` events: the deterministic prefix. A
        // keep-newest policy would make which events survive depend on how
        // far past the accepted prefix this worker happened to run.
        ++dropped_;
        return;
    }
    Entry entry;
    entry.local = local_path;
    entry.event.level = l;
    entry.event.name = std::string(event);
    entry.event.message = std::string(message);
    entry.event.fields = std::move(fields);
    entry.event.t = parent_->now();
    entries_.push_back(std::move(entry));
}

void Journal::begin_workers(std::size_t workers) {
    const std::lock_guard<std::mutex> lock(mutex_);
    workers_.clear();
    workers_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        workers_.emplace_back(new WorkerLog(this, worker_capacity_));
    }
}

void Journal::merge_workers(std::span<const std::uint64_t> accepted,
                            std::uint64_t base) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t k = workers_.size();
    std::vector<Event> merged;
    for (std::size_t w = 0; w < k && w < accepted.size(); ++w) {
        WorkerLog& log = *workers_[w];
        merged_dropped_ += log.dropped_;
        for (WorkerLog::Entry& entry : log.entries_) {
            if (entry.local >= accepted[w]) continue; // beyond the accepted prefix
            entry.event.has_path = true;
            entry.event.path = base + entry.local * k + w;
            merged.push_back(std::move(entry.event));
        }
        log.entries_.clear();
        log.dropped_ = 0;
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Event& a, const Event& b) { return a.path < b.path; });
    for (Event& e : merged) entries_.push_back(std::move(e));
}

std::size_t Journal::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t Journal::dropped() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = merged_dropped_;
    for (const auto& w : workers_) n += w->dropped_;
    return n;
}

void Journal::write_line(std::string& out, const Event& e, std::size_t seq,
                         bool deterministic_view) {
    json::Value line = json::Value::object();
    line["seq"] = static_cast<std::uint64_t>(seq);
    line["t"] = deterministic_view ? 0.0 : e.t;
    line["level"] = to_string(e.level);
    line["event"] = e.name;
    line["msg"] = e.message;
    if (e.has_path) line["path"] = e.path;
    for (const Field& f : e.fields) line[f.key] = f.value;
    out += line.dump();
    out += '\n';
}

std::string Journal::to_jsonl(bool deterministic_view) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        write_line(out, entries_[i], i, deterministic_view);
    }
    return out;
}

std::string Journal::tail_jsonl(std::size_t n) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    const std::size_t first = entries_.size() > n ? entries_.size() - n : 0;
    for (std::size_t i = first; i < entries_.size(); ++i) {
        write_line(out, entries_[i], i, false);
    }
    return out;
}

} // namespace slimsim::journal
