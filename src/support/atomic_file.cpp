#include "support/atomic_file.hpp"

#include <cstdio>

#include "support/diagnostics.hpp"

namespace slimsim::support {

std::size_t write_file_atomic(const std::string& path, std::string_view bytes,
                              const std::string& what) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
        if (!file) throw Error(what + ": " + tmp);
        file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        file.flush();
        if (!file) {
            std::remove(tmp.c_str());
            throw Error(what + ": " + tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw Error(what + ": " + path);
    }
    return bytes.size();
}

AtomicFile::~AtomicFile() { discard(); }

void AtomicFile::open(const std::string& path, const std::string& what) {
    path_ = path;
    tmp_ = path + ".tmp";
    what_ = what;
    out_.open(tmp_, std::ios::trunc);
    if (!out_) throw Error(what_ + ": cannot open `" + path + "` for writing");
}

void AtomicFile::commit() {
    if (!out_.is_open()) return;
    out_.flush();
    const bool ok = static_cast<bool>(out_);
    out_.close();
    if (!ok) {
        std::remove(tmp_.c_str());
        throw Error(what_ + ": cannot write `" + path_ + "`");
    }
    if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
        std::remove(tmp_.c_str());
        throw Error(what_ + ": cannot write `" + path_ + "`");
    }
}

void AtomicFile::discard() noexcept {
    if (!out_.is_open()) return;
    out_.close();
    std::remove(tmp_.c_str());
}

} // namespace slimsim::support
