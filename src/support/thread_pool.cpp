#include "support/thread_pool.hpp"

#include <chrono>
#include <string>

#include "support/diagnostics.hpp"

namespace slimsim {

ThreadPool::ThreadPool(std::size_t worker_count, tracer::Tracer* tracer,
                       metrics::Registry* metrics) {
    SLIMSIM_ASSERT(worker_count >= 1);
    workers_.reserve(worker_count);
    tracer::NameId task_name = tracer::kNoName;
    if (tracer != nullptr && tracer->enabled()) task_name = tracer->intern("pool.task");
    if (metrics != nullptr) {
        task_seconds_ = &metrics->histogram(
            "slimsim_pool_task_seconds",
            "Wall-clock seconds per thread-pool task (utilization = sum over "
            "elapsed wall time).",
            metrics::time_buckets());
    }
    for (std::size_t i = 0; i < worker_count; ++i) {
        tracer::Lane* lane =
            tracer != nullptr && tracer->enabled()
                ? tracer->lane("pool worker " + std::to_string(i))
                : nullptr;
        const std::size_t shard = metrics != nullptr ? i % metrics->shards() : 0;
        workers_.emplace_back(
            [this, lane, task_name, shard] { worker_loop(lane, task_name, shard); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard lock(mutex_);
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(tracer::Lane* lane, tracer::NameId task_name,
                             std::size_t shard) {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        {
            tracer::Span span(lane, task_name);
            std::chrono::steady_clock::time_point start;
            if (task_seconds_ != nullptr) start = std::chrono::steady_clock::now();
            task();
            if (task_seconds_ != nullptr) {
                task_seconds_->observe(
                    shard, std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count());
            }
        }
        {
            std::lock_guard lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0) idle_.notify_all();
        }
    }
}

} // namespace slimsim
