// Process memory measurement for the benchmark harness (Table I reports MB).
#pragma once

#include <cstddef>

namespace slimsim {

/// Current resident set size of this process in bytes (0 if unavailable).
[[nodiscard]] std::size_t current_rss_bytes();

/// Peak resident set size of this process in bytes (0 if unavailable).
[[nodiscard]] std::size_t peak_rss_bytes();

/// Convenience conversion used by the bench tables.
[[nodiscard]] double bytes_to_mib(std::size_t bytes);

} // namespace slimsim
