#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/diagnostics.hpp"

namespace slimsim::json {

Value Value::array() {
    Value v;
    v.kind_ = Kind::Array;
    return v;
}

Value Value::object() {
    Value v;
    v.kind_ = Kind::Object;
    return v;
}

bool Value::as_bool() const {
    if (kind_ != Kind::Bool) throw Error("json: value is not a boolean");
    return bool_;
}

std::int64_t Value::as_int() const {
    if (kind_ == Kind::Int) return int_;
    if (kind_ == Kind::Uint) return static_cast<std::int64_t>(uint_);
    throw Error("json: value is not an integer");
}

std::uint64_t Value::as_uint() const {
    if (kind_ == Kind::Uint) return uint_;
    if (kind_ == Kind::Int && int_ >= 0) return static_cast<std::uint64_t>(int_);
    throw Error("json: value is not a non-negative integer");
}

double Value::as_double() const {
    switch (kind_) {
    case Kind::Int: return static_cast<double>(int_);
    case Kind::Uint: return static_cast<double>(uint_);
    case Kind::Double: return double_;
    default: throw Error("json: value is not a number");
    }
}

const std::string& Value::as_string() const {
    if (kind_ != Kind::String) throw Error("json: value is not a string");
    return string_;
}

void Value::push_back(Value v) {
    if (kind_ == Kind::Null) kind_ = Kind::Array;
    if (kind_ != Kind::Array) throw Error("json: push_back on a non-array");
    array_.push_back(std::move(v));
}

std::size_t Value::size() const {
    if (kind_ == Kind::Array) return array_.size();
    if (kind_ == Kind::Object) return object_.size();
    throw Error("json: size() on a non-container");
}

const Value& Value::at(std::size_t index) const {
    if (kind_ != Kind::Array) throw Error("json: indexing a non-array");
    if (index >= array_.size()) throw Error("json: array index out of range");
    return array_[index];
}

Value& Value::operator[](std::string_view key) {
    if (kind_ == Kind::Null) kind_ = Kind::Object;
    if (kind_ != Kind::Object) throw Error("json: member access on a non-object");
    for (auto& [k, v] : object_) {
        if (k == key) return v;
    }
    object_.emplace_back(std::string(key), Value());
    return object_.back().second;
}

const Value* Value::find(std::string_view key) const {
    if (kind_ != Kind::Object) return nullptr;
    for (const auto& [k, v] : object_) {
        if (k == key) return &v;
    }
    return nullptr;
}

const Value& Value::at(std::string_view key) const {
    const Value* v = find(key);
    if (v == nullptr) throw Error("json: missing member `" + std::string(key) + "`");
    return *v;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
    if (kind_ != Kind::Object) throw Error("json: members() on a non-object");
    return object_;
}

bool Value::operator==(const Value& other) const {
    if (is_number() && other.is_number()) {
        // Integers compare exactly when both sides are integral.
        if (kind_ != Kind::Double && other.kind_ != Kind::Double) {
            const bool neg = kind_ == Kind::Int && int_ < 0;
            const bool other_neg = other.kind_ == Kind::Int && other.int_ < 0;
            if (neg != other_neg) return false;
            return neg ? as_int() == other.as_int() : as_uint() == other.as_uint();
        }
        return as_double() == other.as_double();
    }
    if (kind_ != other.kind_) return false;
    switch (kind_) {
    case Kind::Null: return true;
    case Kind::Bool: return bool_ == other.bool_;
    case Kind::String: return string_ == other.string_;
    case Kind::Array: return array_ == other.array_;
    case Kind::Object: {
        if (object_.size() != other.object_.size()) return false;
        for (const auto& [k, v] : object_) {
            const Value* ov = other.find(k);
            if (ov == nullptr || !(v == *ov)) return false;
        }
        return true;
    }
    default: return false; // numbers handled above
    }
}

std::string escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string format_double(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
    SLIMSIM_ASSERT(ec == std::errc());
    std::string out(buf, ptr);
    // Bare shortest forms like "1" are valid JSON numbers; keep them as-is.
    return out;
}

void Value::write(std::string& out, int indent, int depth) const {
    const auto newline = [&](int d) {
        if (indent < 0) return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Int: out += std::to_string(int_); break;
    case Kind::Uint: out += std::to_string(uint_); break;
    case Kind::Double: out += format_double(double_); break;
    case Kind::String: out += escape(string_); break;
    case Kind::Array: {
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i > 0) out += ',';
            newline(depth + 1);
            array_[i].write(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
    }
    case Kind::Object: {
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i > 0) out += ',';
            newline(depth + 1);
            out += escape(object_[i].first);
            out += indent < 0 ? ":" : ": ";
            object_[i].second.write(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
    }
}

std::string Value::dump(int indent) const {
    std::string out;
    write(out, indent, 0);
    return out;
}

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value parse_document() {
        Value v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing garbage after document");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw Error("json: " + what + " at offset " + std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    bool consume(char c) {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void expect(char c) {
        if (!consume(c)) fail(std::string("expected `") + c + "`");
    }

    bool consume_word(std::string_view w) {
        if (text_.substr(pos_, w.size()) == w) {
            pos_ += w.size();
            return true;
        }
        return false;
    }

    Value parse_value() {
        skip_ws();
        const char c = peek();
        switch (c) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': return Value(parse_string());
        case 't':
            if (consume_word("true")) return Value(true);
            fail("invalid literal");
        case 'f':
            if (consume_word("false")) return Value(false);
            fail("invalid literal");
        case 'n':
            if (consume_word("null")) return Value(nullptr);
            fail("invalid literal");
        default: return parse_number();
        }
    }

    Value parse_object() {
        expect('{');
        Value obj = Value::object();
        skip_ws();
        if (consume('}')) return obj;
        for (;;) {
            skip_ws();
            if (peek() != '"') fail("expected member name");
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj[key] = parse_value();
            skip_ws();
            if (consume('}')) return obj;
            expect(',');
        }
    }

    Value parse_array() {
        expect('[');
        Value arr = Value::array();
        skip_ws();
        if (consume(']')) return arr;
        for (;;) {
            arr.push_back(parse_value());
            skip_ws();
            if (consume(']')) return arr;
            expect(',');
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
                    else fail("invalid \\u escape");
                }
                // UTF-8 encode the code point (surrogate pairs are passed
                // through as two 3-byte sequences; reports are ASCII anyway).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
            }
            default: fail("invalid escape");
            }
        }
    }

    Value parse_number() {
        const std::size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' || c == 'e' ||
                c == 'E') {
                ++pos_;
            } else {
                break;
            }
        }
        const std::string_view tok = text_.substr(start, pos_ - start);
        if (tok.empty()) fail("invalid value");
        const bool integral = tok.find_first_of(".eE") == std::string_view::npos;
        if (integral) {
            if (tok[0] == '-') {
                std::int64_t v = 0;
                const auto [p, ec] = std::from_chars(tok.begin(), tok.end(), v);
                if (ec == std::errc() && p == tok.end()) return Value(v);
            } else {
                std::uint64_t v = 0;
                const auto [p, ec] = std::from_chars(tok.begin(), tok.end(), v);
                if (ec == std::errc() && p == tok.end()) return Value(v);
            }
            // Fall through to double on overflow.
        }
        double v = 0.0;
        const auto [p, ec] = std::from_chars(tok.begin(), tok.end(), v);
        if (ec != std::errc() || p != tok.end()) fail("invalid number");
        return Value(v);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

Value Value::parse(std::string_view text) { return Parser(text).parse_document(); }

} // namespace slimsim::json
