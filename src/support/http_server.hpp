// Embedded HTTP/1.1 exporter (docs/observability.md): a minimal
// blocking-accept server on one dedicated thread, serving the live
// observability endpoints (/metrics, /status, /healthz) of a running
// analysis to Prometheus scrapers and curl.
//
// Deliberately tiny: GET and HEAD only (HEAD answers with the same headers
// and no body; other methods get a 405 with an Allow header), one request
// per connection (Connection: close), loopback bind. The accept loop
// multiplexes the listening socket against a self-pipe with poll(), so
// stop() — called on run end or from the SIGINT path's normal unwind —
// wakes the thread immediately instead of waiting for the next connection.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace slimsim::http {

struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
};

/// One parsed request: the path with its query string split off (no '?'),
/// so handlers route on `path` and endpoints that take parameters
/// (/journal?tail=N) read `query`.
struct Request {
    std::string path;
    std::string query;
};

/// Invoked on the server thread; must be thread-safe against the run it
/// observes. HEAD requests reach the handler like GETs — the server
/// suppresses the body but keeps the Content-Length it would have had.
using Handler = std::function<Response(const Request& request)>;

class Server {
public:
    Server() = default;
    ~Server() { stop(); }

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Binds 127.0.0.1:`port` (0 = ephemeral), starts the accept thread and
    /// returns the bound port. Throws Error on bind failure or double start.
    std::uint16_t start(std::uint16_t port, Handler handler);

    /// Joins the accept thread and closes the socket; idempotent.
    void stop();

    /// Bound port while running, 0 otherwise.
    [[nodiscard]] std::uint16_t port() const { return port_; }

private:
    void loop();
    void serve_connection(int fd);

    int listen_fd_ = -1;
    int wake_fds_[2] = {-1, -1}; // self-pipe: stop() writes, loop() polls
    std::uint16_t port_ = 0;
    Handler handler_;
    std::thread thread_;
};

} // namespace slimsim::http
