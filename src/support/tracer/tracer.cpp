#include "support/tracer/tracer.hpp"

#include "support/diagnostics.hpp"

namespace slimsim::tracer {

Lane::Lane(Tracer& tracer, std::uint32_t id, std::string label, std::size_t capacity,
           std::chrono::steady_clock::time_point epoch)
    : tracer_(&tracer), id_(id), label_(std::move(label)), epoch_(epoch),
      capacity_(capacity) {
    SLIMSIM_ASSERT(capacity_ >= 1);
    open_.reserve(8);
}

NameId Lane::intern(std::string_view name) { return tracer_->intern(name); }

std::int64_t Lane::now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void Lane::push(const Event& event) {
    if (ring_.size() < capacity_) {
        ring_.push_back(event);
        ++total_;
        return;
    }
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
    ++total_;
}

void Lane::begin(NameId name) { open_.push_back({now_ns(), name}); }

void Lane::end() { end(kNoName, 0.0); }

void Lane::end(NameId arg_name, double arg) {
    if (open_.empty()) return;
    const OpenSpan span = open_.back();
    open_.pop_back();
    Event e;
    e.ts_ns = span.ts_ns;
    e.dur_ns = now_ns() - span.ts_ns;
    if (e.dur_ns < 0) e.dur_ns = 0;
    e.name = span.name;
    e.arg_name = arg_name;
    e.arg = arg;
    push(e);
}

void Lane::instant(NameId name) { instant(name, kNoName, 0.0); }

void Lane::instant(NameId name, NameId arg_name, double arg) {
    Event e;
    e.ts_ns = now_ns();
    e.name = name;
    e.arg_name = arg_name;
    e.arg = arg;
    push(e);
}

std::vector<Event> Lane::events() const {
    std::vector<Event> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
        out = ring_;
        return out;
    }
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
    return out;
}

Tracer::Tracer(Options options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

Lane* Tracer::lane(std::string_view label) {
    if (!options_.enabled) return nullptr;
    std::lock_guard lock(mutex_);
    for (Lane& l : lanes_) {
        if (l.label() == label) return &l;
    }
    const auto id = static_cast<std::uint32_t>(lanes_.size());
    lanes_.emplace_back(
        Lane(*this, id, std::string(label), options_.lane_capacity, epoch_));
    return &lanes_.back();
}

NameId Tracer::intern(std::string_view name) {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name) return static_cast<NameId>(i);
    }
    SLIMSIM_ASSERT(names_.size() < kNoName);
    names_.emplace_back(name);
    return static_cast<NameId>(names_.size() - 1);
}

const std::string& Tracer::name(NameId id) const {
    std::lock_guard lock(mutex_);
    SLIMSIM_ASSERT(id < names_.size());
    return names_[id];
}

json::Value Tracer::to_chrome_json() const {
    std::lock_guard lock(mutex_);
    json::Value events = json::Value::array();

    auto base = [](std::string_view name, const char* ph, std::uint32_t tid) {
        json::Value e = json::Value::object();
        e["name"] = name;
        e["ph"] = ph;
        e["pid"] = 1;
        e["tid"] = tid;
        return e;
    };

    // Process + per-lane thread metadata first: named, ordered lanes.
    {
        json::Value meta = base("process_name", "M", 0);
        meta["args"] = json::Value::object();
        meta["args"]["name"] = "slimsim";
        events.push_back(std::move(meta));
    }
    for (const Lane& lane : lanes_) {
        json::Value meta = base("thread_name", "M", lane.id());
        meta["args"] = json::Value::object();
        meta["args"]["name"] = lane.label();
        events.push_back(std::move(meta));
        json::Value sort = base("thread_sort_index", "M", lane.id());
        sort["args"] = json::Value::object();
        sort["args"]["sort_index"] = lane.id();
        events.push_back(std::move(sort));
    }

    for (const Lane& lane : lanes_) {
        for (const Event& ev : lane.events()) {
            const bool span = ev.dur_ns >= 0;
            json::Value e = base(names_[ev.name], span ? "X" : "i", lane.id());
            e["ts"] = static_cast<double>(ev.ts_ns) / 1000.0; // microseconds
            if (span) {
                e["dur"] = static_cast<double>(ev.dur_ns) / 1000.0;
            } else {
                e["s"] = "t"; // thread-scoped instant
            }
            if (ev.arg_name != kNoName) {
                e["args"] = json::Value::object();
                e["args"][names_[ev.arg_name]] = ev.arg;
            }
            events.push_back(std::move(e));
        }
        if (lane.dropped() > 0) {
            json::Value e = base("tracer.dropped", "i", lane.id());
            e["ts"] = 0.0;
            e["s"] = "t";
            e["args"] = json::Value::object();
            e["args"]["events"] = lane.dropped();
            events.push_back(std::move(e));
        }
    }

    json::Value doc = json::Value::object();
    doc["traceEvents"] = std::move(events);
    doc["displayTimeUnit"] = "ms";
    return doc;
}

json::Value deterministic_view(const json::Value& chrome_doc) {
    json::Value out = chrome_doc;
    const json::Value* events = chrome_doc.find("traceEvents");
    if (events == nullptr || events->kind() != json::Kind::Array) return out;
    json::Value scrubbed = json::Value::array();
    for (std::size_t i = 0; i < events->size(); ++i) {
        json::Value e = events->at(i);
        if (e.find("ts") != nullptr) e["ts"] = 0.0;
        if (e.find("dur") != nullptr) e["dur"] = 0.0;
        scrubbed.push_back(std::move(e));
    }
    out["traceEvents"] = std::move(scrubbed);
    return out;
}

} // namespace slimsim::tracer
