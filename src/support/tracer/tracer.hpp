// Execution tracing: thread-aware span/instant events on per-lane bounded
// ring buffers, exported as Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing).
//
// Design mirrors support/telemetry: instrumented code holds a plain
// `Lane*`; a null lane costs one branch per event, so hot paths pay nearly
// nothing when tracing is off. Recording takes no locks — each lane is
// owned by exactly one thread at a time; creating lanes and interning event
// names (setup-time operations) take the tracer mutex. Each lane keeps a
// fixed-capacity ring of events: on overflow the oldest events are dropped
// and the newest kept, so a bounded trace always shows the run's tail.
//
// Determinism contract (same as the run report, docs/run-report.md): event
// names, arguments, per-lane ordering and counts are deterministic in
// (seed, workers); only the "ts"/"dur" timestamp fields are wall-clock.
// deterministic_view() strips them so traces can be diffed across runs.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/json.hpp"

namespace slimsim::tracer {

/// Interned event-name handle (see Tracer::intern / Lane::intern).
using NameId = std::uint16_t;
inline constexpr NameId kNoName = 0xFFFF;

/// One recorded event. dur_ns >= 0: completed span; dur_ns < 0: instant.
struct Event {
    std::int64_t ts_ns = 0;   // wall clock, ns since the tracer epoch
    std::int64_t dur_ns = -1; // span duration; -1 for instant events
    double arg = 0.0;         // numeric argument (valid iff arg_name != kNoName)
    NameId name = kNoName;
    NameId arg_name = kNoName;
};

class Tracer;

/// One timeline (a worker thread, the collector, the CTMC flow, ...).
/// Recording methods are lock-free and must only be called by the lane's
/// owning thread; spans nest (begin/end pairs) within a lane.
class Lane {
public:
    /// Interns `name` in the owning tracer (setup-time; takes the lock).
    [[nodiscard]] NameId intern(std::string_view name);

    /// Opens a span; close it with end(). Unclosed spans are discarded.
    void begin(NameId name);
    /// Closes the innermost open span, optionally attaching a numeric arg.
    void end();
    void end(NameId arg_name, double arg);
    /// Records a zero-duration instant event.
    void instant(NameId name);
    void instant(NameId name, NameId arg_name, double arg);

    [[nodiscard]] std::uint32_t id() const { return id_; }
    [[nodiscard]] const std::string& label() const { return label_; }
    /// Events ever recorded (kept + overwritten).
    [[nodiscard]] std::uint64_t total() const { return total_; }
    /// Oldest events overwritten by ring overflow.
    [[nodiscard]] std::uint64_t dropped() const {
        return total_ > ring_.size() ? total_ - ring_.size() : 0;
    }
    /// Retained events, oldest first.
    [[nodiscard]] std::vector<Event> events() const;

private:
    friend class Tracer;
    Lane(Tracer& tracer, std::uint32_t id, std::string label, std::size_t capacity,
         std::chrono::steady_clock::time_point epoch);
    [[nodiscard]] std::int64_t now_ns() const;
    void push(const Event& event);

    struct OpenSpan {
        std::int64_t ts_ns = 0;
        NameId name = kNoName;
    };

    Tracer* tracer_;
    std::uint32_t id_;
    std::string label_;
    std::chrono::steady_clock::time_point epoch_;
    std::size_t capacity_;
    std::vector<Event> ring_; // grows to capacity_, then wraps
    std::size_t next_ = 0;    // ring write position once full
    std::uint64_t total_ = 0;
    std::vector<OpenSpan> open_;
};

/// RAII span over an optional lane; a null lane makes it a no-op.
class Span {
public:
    Span(Lane* lane, NameId name) : lane_(lane) {
        if (lane_ != nullptr) lane_->begin(name);
    }
    ~Span() { end(); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Closes the span now, optionally with a numeric argument.
    void end() {
        if (lane_ == nullptr) return;
        lane_->end();
        lane_ = nullptr;
    }
    void end(NameId arg_name, double arg) {
        if (lane_ == nullptr) return;
        lane_->end(arg_name, arg);
        lane_ = nullptr;
    }

private:
    Lane* lane_;
};

/// The trace sink: owns lanes and the interned name table. Create lanes in
/// deterministic order (before spawning the threads that use them) so lane
/// ids — and thus the exported tid values — are stable across runs.
class Tracer {
public:
    struct Options {
        bool enabled = true;
        /// Ring capacity per lane, in events (newest kept on overflow).
        std::size_t lane_capacity = 1 << 16;
    };

    // Two constructors instead of `Options options = {}`: GCC rejects
    // brace-init default arguments of a nested class with member
    // initializers while the enclosing class is incomplete.
    Tracer() : Tracer(Options{}) {}
    explicit Tracer(Options options);

    [[nodiscard]] bool enabled() const { return options_.enabled; }

    /// Returns the lane labelled `label`, creating it on first use; null
    /// when tracing is disabled (instrumentation then short-circuits).
    [[nodiscard]] Lane* lane(std::string_view label);

    /// Interns an event name; ids are assigned in interning order.
    [[nodiscard]] NameId intern(std::string_view name);

    [[nodiscard]] const std::string& name(NameId id) const;

    /// The Chrome trace-event document: {"traceEvents": [...], ...} with
    /// one tid per lane, thread_name metadata, "X" spans and "i" instants.
    /// Call after all recording threads have finished.
    [[nodiscard]] json::Value to_chrome_json() const;

private:
    mutable std::mutex mutex_;
    Options options_;
    std::chrono::steady_clock::time_point epoch_;
    std::deque<Lane> lanes_; // deque: lane addresses stay valid as it grows
    std::vector<std::string> names_;
};

/// Copy of a Chrome trace document with the wall-clock "ts"/"dur" fields
/// zeroed: the remainder is deterministic in (seed, workers).
[[nodiscard]] json::Value deterministic_view(const json::Value& chrome_doc);

} // namespace slimsim::tracer
