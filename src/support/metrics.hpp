// Live metrics registry (docs/observability.md): typed counters, gauges and
// histograms backed by per-worker lock-free shards, aggregated only at
// scrape time.
//
// Design constraints, in order:
//   1. The hot path must stay allocation-free and contention-free: every
//      instrument is an array of cache-line-padded cells (one per shard ==
//      one per worker) updated with relaxed atomics; worker w only ever
//      touches cell w, so instrumented workers never share a cache line.
//   2. Estimation results must be byte-identical with metrics on or off:
//      instruments only *count* — registration happens once at generator /
//      runner construction (under the registry mutex, off the hot path) and
//      nothing here feeds back into sampling order or RNG streams.
//   3. One exposition writer: the Exposition class below renders Prometheus
//      text (version 0.0.4) for both this registry (the /metrics endpoint)
//      and the run-report exposition in support/metrics_text.
//
// Everything a live registry carries is wall-clock or scheduling dependent,
// so Registry::expose() puts all families below the runtime marker; the
// deterministic section of a live scrape is intentionally empty.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace slimsim::metrics {

/// Marker splitting a Prometheus exposition into the deterministic prefix
/// (byte-identical in (seed, workers)) and the runtime remainder. Shared
/// with the run-report exposition (support/metrics_text).
inline constexpr std::string_view kRuntimeMarker =
    "# -- runtime metrics (wall-clock / scheduling dependent) --";

/// Escapes a label value (backslash, double quote, newline) per the
/// Prometheus text format.
[[nodiscard]] std::string label_escape(std::string_view s);

/// Renders one `name="escaped value"` label pair.
[[nodiscard]] std::string label(std::string_view name, std::string_view value);

/// The single Prometheus text writer: a # HELP / # TYPE header per family
/// followed by its samples. Both the live registry and the run-report
/// exposition render through this class, so format fixes land in one place.
class Exposition {
public:
    /// Starts a family: optional # HELP, then # TYPE. Subsequent sample()
    /// calls emit under this family name.
    void family(std::string_view name, std::string_view type,
                std::string_view help = {});

    void sample(std::string_view labels, std::string_view value);
    /// Histogram series sample (`_bucket`, `_sum`, `_count`): the family
    /// name plus `suffix`, with `labels`.
    void series(std::string_view suffix, std::string_view labels,
                std::string_view value);

    /// One-sample families.
    void gauge(std::string_view name, std::string_view labels, double value,
               std::string_view help = {});
    void counter(std::string_view name, std::string_view labels, std::uint64_t value,
                 std::string_view help = {});

    void raw(std::string_view text);

    [[nodiscard]] std::string take();

private:
    std::string out_;
    std::string family_;
};

/// Fixed histogram bucket bounds for wall-time observations in seconds
/// (1 µs .. 10 s, decades). Deterministic: bucket layout never depends on
/// the data, so expositions are shape-stable across runs and worker counts.
[[nodiscard]] std::span<const double> time_buckets();

namespace detail {
/// One cache line per shard: workers incrementing their own cell never
/// invalidate another worker's line.
struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
};
static_assert(sizeof(Cell) == 64);
} // namespace detail

/// Monotonic counter. Hot path: one relaxed fetch_add on the caller's cell.
class Counter {
public:
    explicit Counter(std::size_t shards) : cells_(shards) {}

    void add(std::size_t shard, std::uint64_t n = 1) {
        cells_[shard].value.fetch_add(n, std::memory_order_relaxed);
    }

    /// Scrape-time aggregation over all shards.
    [[nodiscard]] std::uint64_t total() const {
        std::uint64_t sum = 0;
        for (const auto& c : cells_) sum += c.value.load(std::memory_order_relaxed);
        return sum;
    }

private:
    std::vector<detail::Cell> cells_;
};

/// Last-write-wins gauge. Updated from one thread at a time by convention
/// (the runners' consuming thread); reads are relaxed atomic loads.
class Gauge {
public:
    void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }
    [[nodiscard]] double value() const {
        return unpack(bits_.load(std::memory_order_relaxed));
    }

private:
    static std::uint64_t pack(double v);
    static double unpack(std::uint64_t bits);
    std::atomic<std::uint64_t> bits_{pack(0.0)};
};

/// Histogram over fixed, deterministic bucket bounds. Per-shard bucket
/// counts plus a sum-of-observations accumulator (integer nanounits, so the
/// hot path needs no atomic<double> CAS loop); cumulative `le` series,
/// `+Inf`, `_sum` and `_count` are derived at scrape time.
class Histogram {
public:
    Histogram(std::size_t shards, std::span<const double> bounds);

    void observe(std::size_t shard, double v) {
        Shard& s = *shards_[shard];
        std::size_t b = 0;
        while (b < bounds_.size() && v > bounds_[b]) ++b;
        s.buckets[b].value.fetch_add(1, std::memory_order_relaxed);
        s.sum_nano.fetch_add(to_nano(v), std::memory_order_relaxed);
    }

    [[nodiscard]] std::span<const double> bounds() const { return bounds_; }
    /// Per-bucket (non-cumulative) totals, +Inf last.
    [[nodiscard]] std::vector<std::uint64_t> bucket_totals() const;
    [[nodiscard]] std::uint64_t count() const;
    [[nodiscard]] double sum() const;

private:
    struct Shard {
        explicit Shard(std::size_t buckets) : buckets(buckets) {}
        std::vector<detail::Cell> buckets; // bounds.size() + 1 (+Inf)
        alignas(64) std::atomic<std::uint64_t> sum_nano{0};
    };
    static std::uint64_t to_nano(double v);

    std::vector<double> bounds_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

/// Typed metrics registry. Registration (counter()/gauge()/histogram())
/// takes a mutex and may allocate — it happens once, at construction of the
/// instrumented component; the returned instrument references are stable
/// for the registry's lifetime and their update paths are lock-free.
/// Families render in registration order; children within a family render
/// in registration order too, so the exposition is deterministic given the
/// same registration sequence (and shard-count independent: totals are
/// sums).
class Registry {
public:
    explicit Registry(std::size_t shards = 1);

    [[nodiscard]] std::size_t shards() const { return shards_; }

    /// Finds or creates the counter `name{labels}`. `name` must end in
    /// `_total`; re-registration with a different kind throws.
    Counter& counter(std::string_view name, std::string_view help,
                     std::string_view labels = {});
    Gauge& gauge(std::string_view name, std::string_view help,
                 std::string_view labels = {});
    /// `bounds` must be strictly ascending; all children of a family share
    /// the first registration's bounds.
    Histogram& histogram(std::string_view name, std::string_view help,
                         std::span<const double> bounds, std::string_view labels = {});

    /// Renders every family into `x`, skipping family names in `skip`
    /// (used when appending the live registry to a run-report exposition
    /// that already emitted a family of the same name).
    void render(Exposition& x, std::span<const std::string> skip = {}) const;

    /// Full /metrics document: the runtime marker followed by every family
    /// (see the header comment — live metrics are all runtime-dependent).
    [[nodiscard]] std::string expose() const;

private:
    enum class Kind : std::uint8_t { Counter, Gauge, Histogram };
    struct Child {
        std::string labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };
    struct Family {
        std::string name;
        std::string help;
        Kind kind = Kind::Counter;
        std::vector<std::unique_ptr<Child>> children;
    };

    Family& family_locked(std::string_view name, std::string_view help, Kind kind);
    Child& child_locked(Family& family, std::string_view labels);

    const std::size_t shards_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Family>> families_;
};

} // namespace slimsim::metrics
