// Minimal dependency-free JSON document model: build, serialize, parse.
//
// Backs the machine-readable run reports (--json): the writer emits stable,
// deterministic output — object members keep insertion order, doubles use
// shortest round-trip formatting — so equal documents serialize to equal
// bytes and reports can be diffed across runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace slimsim::json {

enum class Kind : std::uint8_t { Null, Bool, Int, Uint, Double, String, Array, Object };

class Value {
public:
    Value() = default; // null
    Value(std::nullptr_t) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(int v) : kind_(Kind::Int), int_(v) {}
    Value(long v) : kind_(Kind::Int), int_(v) {}
    Value(long long v) : kind_(Kind::Int), int_(v) {}
    Value(unsigned v) : kind_(Kind::Uint), uint_(v) {}
    Value(unsigned long v) : kind_(Kind::Uint), uint_(v) {}
    Value(unsigned long long v) : kind_(Kind::Uint), uint_(v) {}
    Value(double v) : kind_(Kind::Double), double_(v) {}
    Value(const char* s) : kind_(Kind::String), string_(s) {}
    Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    Value(std::string_view s) : kind_(Kind::String), string_(s) {}

    [[nodiscard]] static Value array();
    [[nodiscard]] static Value object();

    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
    [[nodiscard]] bool is_number() const {
        return kind_ == Kind::Int || kind_ == Kind::Uint || kind_ == Kind::Double;
    }

    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] std::int64_t as_int() const;
    [[nodiscard]] std::uint64_t as_uint() const;
    [[nodiscard]] double as_double() const; // any numeric kind
    [[nodiscard]] const std::string& as_string() const;

    /// Array access.
    void push_back(Value v);
    [[nodiscard]] std::size_t size() const; // array/object element count
    [[nodiscard]] const Value& at(std::size_t index) const;

    /// Object access: operator[] inserts a null member if absent (in
    /// insertion order); find returns nullptr if absent.
    Value& operator[](std::string_view key);
    [[nodiscard]] const Value* find(std::string_view key) const;
    [[nodiscard]] const Value& at(std::string_view key) const; // throws if absent
    [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members() const;

    /// Structural equality (object member *order* is ignored).
    [[nodiscard]] bool operator==(const Value& other) const;

    /// Serializes the document. indent < 0: compact single line;
    /// indent >= 0: pretty-printed with that many spaces per level.
    [[nodiscard]] std::string dump(int indent = -1) const;

    /// Parses a complete JSON document. Throws slimsim::Error on malformed
    /// input or trailing garbage.
    [[nodiscard]] static Value parse(std::string_view text);

private:
    void write(std::string& out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::vector<std::pair<std::string, Value>> object_;
};

/// Escapes `s` as a JSON string literal including the quotes.
[[nodiscard]] std::string escape(std::string_view s);

/// Shortest round-trip decimal form of `v` (to_chars); "null" for
/// non-finite values, which JSON cannot represent.
[[nodiscard]] std::string format_double(double v);

} // namespace slimsim::json
